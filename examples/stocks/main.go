// Stocks: the introduction's motivating scenario — a financial
// information provider pushes historical prices to proxy servers near
// users. Demonstrates:
//
//   - range selection over a time window with projection (the Volume
//     column stays at the publisher, shipped only as digests);
//   - a PK-FK join between trades (signed on their symbol-id foreign
//     key) and a company directory (signed on its primary key);
//   - client-side verified aggregates (COUNT/AVG) over a verified window.
//
// Run: go run ./examples/stocks
package main

import (
	"fmt"
	"log"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

func main() {
	h := hashx.New()
	own, err := owner.New(h, 0)
	if err != nil {
		log.Fatal(err)
	}

	// --- Price history: 500 ticks over a day of timestamps -----------
	prices, err := workload.Stocks(500, 0, 86400, []string{"ACME", "GLOBEX"}, 42)
	if err != nil {
		log.Fatal(err)
	}
	pricesSR, err := own.Publish(prices, core.DefaultBase)
	if err != nil {
		log.Fatal(err)
	}

	// --- Trades by company id (FK) and the company directory (PK) ----
	trades, err := relation.New(relation.Schema{
		Name: "Trades", KeyName: "CompanyID",
		Cols: []relation.Column{{Name: "Qty", Type: relation.TypeInt}},
	}, 0, 1000)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range []struct {
		company uint64
		qty     int64
	}{{10, 100}, {10, 250}, {20, 75}, {30, 300}} {
		if _, err := trades.Insert(relation.Tuple{Key: t.company, Attrs: []relation.Value{
			relation.IntVal(t.qty),
		}}); err != nil {
			log.Fatal(err)
		}
	}
	companies, err := relation.New(relation.Schema{
		Name: "Companies", KeyName: "CompanyID",
		Cols: []relation.Column{{Name: "Symbol", Type: relation.TypeString}},
	}, 0, 1000)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		id  uint64
		sym string
	}{{10, "ACME"}, {20, "GLOBEX"}, {30, "INITECH"}, {40, "UMBRELLA"}} {
		if _, err := companies.Insert(relation.Tuple{Key: c.id, Attrs: []relation.Value{
			relation.StringVal(c.sym),
		}}); err != nil {
			log.Fatal(err)
		}
	}
	tradesSR, err := own.Publish(trades, core.DefaultBase)
	if err != nil {
		log.Fatal(err)
	}
	companiesSR, err := own.Publish(companies, core.DefaultBase)
	if err != nil {
		log.Fatal(err)
	}

	role := accessctl.Role{Name: "analyst"}
	pub := engine.NewPublisher(h, own.PublicKey(), accessctl.NewPolicy(role))
	for _, sr := range []*core.SignedRelation{pricesSR, tradesSR, companiesSR} {
		if err := pub.AddRelation(sr, true); err != nil {
			log.Fatal(err)
		}
	}

	// --- Verified window query with projection -----------------------
	q := engine.Query{
		Relation: "Prices", KeyLo: 30000, KeyHi: 40000,
		Project: []string{"Symbol", "Price"}, // Volume stays behind
	}
	res, err := pub.Execute("analyst", q)
	if err != nil {
		log.Fatal(err)
	}
	v := verify.New(h, own.PublicKey(), pricesSR.Params, pricesSR.Schema)
	rows, err := v.VerifyResult(q, role, res)
	if err != nil {
		log.Fatalf("price window rejected: %v", err)
	}
	lo, hi, _ := verify.MinMaxKeys(rows)
	fmt.Printf("verified %d price ticks in window [30000, 40000] (first %d, last %d); Volume never left the publisher\n",
		verify.Count(rows), lo, hi)

	// --- PK-FK join: trades with their company symbols ---------------
	jq := engine.JoinQuery{R: "Trades", S: "Companies", KeyLo: 1, KeyHi: 25}
	jres, err := pub.ExecuteJoin("analyst", jq)
	if err != nil {
		log.Fatal(err)
	}
	jv := &verify.JoinVerifier{
		R: verify.New(h, own.PublicKey(), tradesSR.Params, tradesSR.Schema),
		S: verify.New(h, own.PublicKey(), companiesSR.Params, companiesSR.Schema),
	}
	joined, err := jv.VerifyJoin(jq, role, jres)
	if err != nil {
		log.Fatalf("join rejected: %v", err)
	}
	fmt.Printf("verified PK-FK join (company id <= 25): %d rows\n", len(joined))
	for _, jr := range joined {
		fmt.Printf("  company=%d qty=%v symbol=%v\n",
			jr.RRow.Key, jr.RRow.Values[0].Val, jr.SRow.Values[0].Val)
	}

	// --- Verified aggregate: trades per company band ------------------
	aq := engine.Query{Relation: "Trades", KeyLo: 1, KeyHi: 25}
	ares, err := pub.Execute("analyst", aq)
	if err != nil {
		log.Fatal(err)
	}
	tv := verify.New(h, own.PublicKey(), tradesSR.Params, tradesSR.Schema)
	arows, err := tv.VerifyResult(aq, role, ares)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := verify.SumInt(tradesSR.Schema, arows, "Qty")
	if err != nil {
		log.Fatal(err)
	}
	avg, err := verify.AvgInt(tradesSR.Schema, arows, "Qty")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified aggregate over companies [1,25]: COUNT=%d SUM(Qty)=%d AVG(Qty)=%.1f\n",
		verify.Count(arows), sum, avg)
}
