// Quickstart: the Section 3.1 running example, end to end.
//
// The owner signs the sorted list (2000, 3500, 8010, 12100, 25000) over
// the domain (0, 100000). A user asks for entries >= 10000; the untrusted
// publisher returns (12100, 25000) with a verification object proving the
// result is complete — without revealing that the record just below the
// range has key 8010.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
)

func main() {
	h := hashx.New()

	// --- Owner: build and sign the list -----------------------------
	schema := relation.Schema{Name: "List", KeyName: "Value",
		Cols: []relation.Column{{Name: "Note", Type: relation.TypeString}}}
	rel, err := relation.New(schema, 0, 100000)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []uint64{2000, 3500, 8010, 12100, 25000} {
		if _, err := rel.Insert(relation.Tuple{Key: v, Attrs: []relation.Value{
			relation.StringVal(fmt.Sprintf("entry-%d", v)),
		}}); err != nil {
			log.Fatal(err)
		}
	}
	own, err := owner.New(h, 0)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := own.Publish(rel, core.DefaultBase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner signed %d entries (+2 delimiters) over domain (0, 100000)\n", sr.Len())

	// --- Publisher: execute the greater-than query ------------------
	role := accessctl.Role{Name: "user"}
	pub := engine.NewPublisher(h, own.PublicKey(), accessctl.NewPolicy(role))
	if err := pub.AddRelation(sr, true); err != nil {
		log.Fatal(err)
	}
	q := engine.Query{Relation: "List", KeyLo: 10000} // Value >= 10000
	res, err := pub.Execute("user", q)
	if err != nil {
		log.Fatal(err)
	}
	acc := res.VO.Account(h.Size(), own.PublicKey().SigBytes())
	fmt.Printf("publisher returned %d rows with a %d-byte VO (%d digests, %d signature)\n",
		len(res.Rows()), acc.Bytes(), acc.Digests, acc.Signatures)

	// --- User: verify completeness and authenticity -----------------
	v := verify.New(h, own.PublicKey(), sr.Params, schema)
	rows, err := v.VerifyResult(q, role, res)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("VERIFIED — the result is complete and authentic:")
	for _, r := range rows {
		fmt.Printf("  %d %s\n", r.Key, r.Values[0].Val)
	}

	// --- And the point: a truncated result is rejected ---------------
	adv := engine.NewAdversary(pub)
	evil, err := adv.Execute("user", q, engine.AttackOmitFirst)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := v.VerifyResult(q, role, evil); err != nil {
		fmt.Printf("cheating publisher omitting 12100 was caught: %v\n", err)
	} else {
		log.Fatal("BUG: omission not detected")
	}
}
