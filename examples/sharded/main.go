// Sharded: a partitioned publisher and the hand-off checks, live.
//
// The owner signs one relation and range-partitions it into four shards
// — a free operation, because every shard is a contiguous slice of the
// same signature chain. A query spanning three of the four shards is
// answered as one fan-out stream whose chunks carry shard tags, and the
// shard-aware verifier checks both the chain (soundness) and the
// hand-off bookkeeping (fail-fast attribution).
//
// Then the publisher turns hostile: it serves the same stream with the
// interior shard's chunks dropped. The naive version trips the chunk
// sequencing immediately; the careful version — sequence numbers
// renumbered, footer accounting rewritten — is named by the shard
// checks at the exact hand-off where shard 2 should have begun, and
// even a publisher that forges all the framing cannot survive the
// condensed-signature check that anchors the chain to the owner's key.
//
// Run: go run ./examples/sharded
package main

import (
	"fmt"
	"io"
	"log"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/partition"
	"vcqr/internal/server"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

func main() {
	h := hashx.New()
	own, err := owner.New(h, 0)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 48, L: 0, U: 1 << 20, PhotoSize: 16, HiddenPct: 0, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	sr, err := own.Publish(rel, core.DefaultBase)
	if err != nil {
		log.Fatal(err)
	}

	// Partition four ways: no re-signing, just slicing the chain.
	set, err := partition.Split(sr, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %d records into %d shards at cuts %v\n",
		sr.Len(), set.Spec.K(), set.Spec.Cuts[1:len(set.Spec.Cuts)-1])

	role := accessctl.Role{Name: "manager"}
	srv := server.New(server.Config{
		Hasher: h, Pub: own.PublicKey(), Policy: accessctl.NewPolicy(role),
	})
	defer srv.Close()
	if err := srv.AddPartition(set, true); err != nil {
		log.Fatal(err)
	}
	v := verify.New(h, own.PublicKey(), sr.Params, sr.Schema)

	// A range spanning shards 0-2: from the lowest key into shard 2.
	sl2 := set.Slices[2]
	q := engine.Query{
		Relation: sr.Schema.Name,
		KeyLo:    1,
		KeyHi:    sl2.Recs[len(sl2.Recs)-2].Key(),
	}
	chunks := drain(srv, q)
	fmt.Printf("\ncross-shard query [%d, %d]: %d chunks from shards ", q.KeyLo, q.KeyHi, len(chunks))
	seen := map[int]bool{}
	for _, c := range chunks {
		if c.Type == engine.ChunkEntries && !seen[c.Shard] {
			seen[c.Shard] = true
			fmt.Printf("%d ", c.Shard)
		}
	}
	fmt.Println()

	rows, err := verifyChunks(v, set.Spec, q, role, chunks)
	if err != nil {
		log.Fatalf("honest stream rejected: %v", err)
	}
	fmt.Printf("VERIFIED: %d rows complete and authentic across %d shards\n", rows, len(seen))

	// Attack 1: drop shard 1's chunks outright. The Seq gap is caught on
	// the first chunk after the hole.
	if _, err := verifyChunks(v, set.Spec, q, role, dropShard(chunks, 1, false)); err != nil {
		fmt.Printf("\ndrop shard 1 (naive):      REJECTED: %v\n", err)
	} else {
		log.Fatal("naive interior-shard drop verified!")
	}

	// Attack 2: drop shard 1's chunks and renumber Seq contiguously. The
	// shard tags now skip a covering shard — named at the hand-off.
	if _, err := verifyChunks(v, set.Spec, q, role, dropShard(chunks, 1, true)); err != nil {
		fmt.Printf("drop shard 1 (renumbered): REJECTED: %v\n", err)
	} else {
		log.Fatal("renumbered interior-shard drop verified!")
	}

	// Attack 3: swap two entry chunks across the shard 0/1 hand-off.
	swapped := append([]*engine.Chunk(nil), chunks...)
	a, b := -1, -1
	for i, c := range swapped {
		if c.Type != engine.ChunkEntries {
			continue
		}
		if c.Shard == 0 && a < 0 {
			a = i
		}
		if c.Shard == 1 && b < 0 {
			b = i
		}
	}
	swapped[a], swapped[b] = swapped[b], swapped[a]
	if _, err := verifyChunks(v, set.Spec, q, role, renumber(swapped)); err != nil {
		fmt.Printf("reorder across hand-off:   REJECTED: %v\n", err)
	} else {
		log.Fatal("reordered hand-off verified!")
	}

	fmt.Println("\nevery mutilated stream was rejected; the honest one verified.")
}

// drain pulls every chunk of a partitioned stream from the server.
func drain(srv *server.Server, q engine.Query) []*engine.Chunk {
	st, err := srv.QueryStream("manager", q, 8)
	if err != nil {
		log.Fatal(err)
	}
	var out []*engine.Chunk
	for {
		c, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, c)
	}
}

// verifyChunks runs a chunk sequence through a fresh shard-aware
// verifier and returns the verified row count.
func verifyChunks(v *verify.Verifier, spec partition.Spec, q engine.Query, role accessctl.Role, chunks []*engine.Chunk) (int, error) {
	sv, err := v.NewShardStreamVerifier(spec, q, role)
	if err != nil {
		return 0, err
	}
	rows := 0
	for _, c := range chunks {
		released, err := sv.Consume(c)
		if err != nil {
			return rows, err
		}
		rows += len(released)
	}
	return rows, sv.Finish()
}

// dropShard removes the entries chunks of one shard; with renumber set
// it also restores contiguous Seq numbers and rewrites the footer's
// accounting — the careful attacker.
func dropShard(chunks []*engine.Chunk, shard int, fix bool) []*engine.Chunk {
	var out []*engine.Chunk
	for _, c := range chunks {
		if c.Type == engine.ChunkEntries && c.Shard == shard {
			continue
		}
		cp := *c
		if fix && cp.Type == engine.ChunkFooter {
			feet := append([]engine.ShardFoot(nil), cp.ShardFeet...)
			for i := range feet {
				if feet[i].Shard == shard {
					feet[i].Entries = 0
				}
			}
			cp.ShardFeet = feet
		}
		out = append(out, &cp)
	}
	if fix {
		out = renumber(out)
	}
	return out
}

// renumber restamps Seq contiguously.
func renumber(chunks []*engine.Chunk) []*engine.Chunk {
	out := make([]*engine.Chunk, len(chunks))
	for i, c := range chunks {
		cp := *c
		cp.Seq = uint64(i)
		out[i] = &cp
	}
	return out
}
