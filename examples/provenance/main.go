// Provenance: the paper's future-work DAG extension, applied to a
// software supply chain.
//
// A registry owner signs a package dependency DAG; untrusted mirrors
// answer dependency queries. Completeness makes *negative* answers
// trustworthy: a mirror can prove "package 100 does NOT depend on the
// vulnerable package 666 within 4 hops" — and cannot hide an edge to
// fake that answer.
//
// Run: go run ./examples/provenance
package main

import (
	"fmt"
	"log"

	"vcqr/internal/graphauth"
	"vcqr/internal/hashx"
	"vcqr/internal/sig"
)

func main() {
	h := hashx.New()
	key, err := sig.Generate(0, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Package ids; 666 is the known-vulnerable one.
	//   100 -> {200, 300}; 200 -> {400}; 300 -> {400, 500}; 400 -> {666}
	//   700 -> {500}  (the "clean" application)
	deps := map[uint64][]uint64{
		100: {200, 300},
		200: {400},
		300: {400, 500},
		400: {666},
		700: {500},
	}
	dag, err := graphauth.Build(h, key, deps, 0, 100000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner signed a DAG with %d nodes (one signed adjacency list each)\n", len(dag.Adj))

	mirror, err := graphauth.NewPublisher(h, key.Public(), dag)
	if err != nil {
		log.Fatal(err)
	}
	v := graphauth.NewVerifier(h, key.Public(), dag.Params)

	// Verified direct dependencies.
	cr, err := mirror.Children(100, 1, 99999)
	if err != nil {
		log.Fatal(err)
	}
	succs, _, err := v.VerifyChildren(100, 1, 99999, cr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified direct deps of 100: %v\n", succs)

	// Verified positive: 100 transitively depends on 666.
	res, err := mirror.Reachable(100, 666, 4)
	if err != nil {
		log.Fatal(err)
	}
	found, err := v.VerifyReachable(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: package 100 depends on vulnerable 666 within 4 hops: %v\n", found)

	// Verified negative: 700 does NOT depend on 666 — and the mirror
	// cannot claim otherwise or hide edges to fabricate the answer.
	res, err = mirror.Reachable(700, 666, 4)
	if err != nil {
		log.Fatal(err)
	}
	found, err = v.VerifyReachable(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: package 700 depends on vulnerable 666 within 4 hops: %v\n", found)

	// A lying mirror is caught.
	res.Found = true
	if _, err := v.VerifyReachable(res); err != nil {
		fmt.Printf("mirror claiming a fake dependency was caught: %v\n", err)
	} else {
		log.Fatal("BUG: lie not detected")
	}
}
