// Payroll: the Figure 1 access-control scenario.
//
// The Employee table is published with a policy: the HR manager sees all
// records, the HR executive only salaries below 9000, and clerks cannot
// see records flagged confidential. The same query — "Salary < 10000" —
// produces three different, individually verifiable results, and in no
// case does the completeness proof disclose data beyond the caller's
// rights (the flaw of boundary-disclosure schemes).
//
// Run: go run ./examples/payroll
package main

import (
	"fmt"
	"log"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
)

func main() {
	h := hashx.New()

	schema := relation.Schema{
		Name:    "Emp",
		KeyName: "Salary",
		Cols: []relation.Column{
			{Name: "ID", Type: relation.TypeInt},
			{Name: "Name", Type: relation.TypeString},
			{Name: "Dept", Type: relation.TypeInt},
			{Name: "Photo", Type: relation.TypeBytes},
			{Name: "vis_clerk", Type: relation.TypeBool},
		},
	}
	rel, err := relation.New(schema, 0, 100000)
	if err != nil {
		log.Fatal(err)
	}
	// The exact Figure 1 rows; record D (8010) is confidential to clerks.
	for _, r := range []struct {
		salary   uint64
		id       int64
		name     string
		dept     int64
		clerkVis bool
	}{
		{2000, 5, "A", 1, true}, {3500, 2, "C", 2, true}, {8010, 1, "D", 1, false},
		{12100, 4, "B", 3, true}, {25000, 3, "E", 2, true},
	} {
		if _, err := rel.Insert(relation.Tuple{Key: r.salary, Attrs: []relation.Value{
			relation.IntVal(r.id), relation.StringVal(r.name), relation.IntVal(r.dept),
			relation.BytesVal(make([]byte, 128)), relation.BoolVal(r.clerkVis),
		}}); err != nil {
			log.Fatal(err)
		}
	}

	own, err := owner.New(h, 0)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := own.Publish(rel, core.DefaultBase)
	if err != nil {
		log.Fatal(err)
	}

	roles := map[string]accessctl.Role{
		"manager": {Name: "manager"},
		"exec":    {Name: "exec", KeyHi: 8999},
		"clerk":   {Name: "clerk", VisibilityCol: "vis_clerk", Cols: []string{"ID", "Name", "Dept", "vis_clerk"}},
	}
	pub := engine.NewPublisher(h, own.PublicKey(), accessctl.NewPolicy(
		roles["manager"], roles["exec"], roles["clerk"]))
	if err := pub.AddRelation(sr, true); err != nil {
		log.Fatal(err)
	}
	v := verify.New(h, own.PublicKey(), sr.Params, schema)

	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 9999, Project: []string{"Name", "Dept"}}
	for _, roleName := range []string{"manager", "exec", "clerk"} {
		res, err := pub.Execute(roleName, q)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := v.VerifyResult(q, roles[roleName], res)
		if err != nil {
			log.Fatalf("%s: verification failed: %v", roleName, err)
		}
		fmt.Printf("%-8s query 'Salary < 10000' -> rewritten to [%d, %d], %d verified rows:\n",
			roleName, res.Effective.KeyLo, res.Effective.KeyHi, len(rows))
		for _, r := range rows {
			fmt.Printf("  salary=%-6d", r.Key)
			for _, d := range r.Values {
				fmt.Printf(" %s=%v", schema.Cols[d.Col].Name, d.Val)
			}
			fmt.Println()
		}
		hidden := 0
		for _, e := range res.VO.Entries {
			if e.Mode == engine.EntryFilteredHidden {
				hidden++
			}
		}
		if hidden > 0 {
			fmt.Printf("  (+%d record(s) proven present but hidden by policy — count disclosed, contents not)\n", hidden)
		}
	}

	// A multipoint query: Salary < 10000 AND Dept = 1 (Section 4.4).
	mq := engine.Query{
		Relation: "Emp", KeyLo: 1, KeyHi: 9999,
		Filters: []engine.Filter{{Col: "Dept", Op: engine.OpEq, Val: relation.IntVal(1)}},
	}
	res, err := pub.Execute("manager", mq)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := v.VerifyResult(mq, roles["manager"], res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multipoint 'Salary < 10000 AND Dept = 1': %d verified rows (record 3500 proven filtered, not omitted)\n", len(rows))
}
