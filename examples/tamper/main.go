// Tamper: the Section 3.2 security analysis, live.
//
// A compromised publisher mounts every attack in the paper's case
// analysis — wrong origin, fake empty result, truncated terminal, gap in
// the chain, spurious record — plus value tampering, value swapping,
// ignored access policy, fake filtering, and signature replay. Each
// attack is built as strongly as the adversary can (re-aggregating real
// signatures, regenerating boundary proofs) and each is rejected by the
// verifier.
//
// Run: go run ./examples/tamper
package main

import (
	"fmt"
	"log"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

func main() {
	h := hashx.New()
	own, err := owner.New(h, 0)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 50, L: 0, U: 1 << 20, PhotoSize: 32, HiddenPct: 0, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sr, err := own.Publish(rel, core.DefaultBase)
	if err != nil {
		log.Fatal(err)
	}
	roles := map[string]accessctl.Role{
		"manager": {Name: "manager"},
		"exec":    {Name: "exec", KeyHi: 1 << 18},
	}
	pub := engine.NewPublisher(h, own.PublicKey(), accessctl.NewPolicy(roles["manager"], roles["exec"]))
	if err := pub.AddRelation(sr, true); err != nil {
		log.Fatal(err)
	}
	v := verify.New(h, own.PublicKey(), sr.Params, sr.Schema)
	adv := engine.NewAdversary(pub)

	fmt.Println("honest baseline:")
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	res, err := pub.Execute("manager", q)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := v.VerifyResult(q, roles["manager"], res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d rows verified\n\n", len(rows))

	fmt.Println("attack matrix (every attack must be rejected):")
	detected, mounted := 0, 0
	for _, attack := range engine.Attacks() {
		aq := q
		role := "manager"
		switch attack {
		case engine.AttackHideAsFiltered:
			aq.Filters = []engine.Filter{{Col: "Dept", Op: engine.OpLe, Val: relation.IntVal(3)}}
		case engine.AttackWidenRewrite:
			role = "exec"
		}
		evil, err := adv.Execute(role, aq, attack)
		if err != nil {
			fmt.Printf("  %-18s could not even be mounted (%v)\n", attack, err)
			continue
		}
		mounted++
		if _, err := v.VerifyResult(aq, roles[role], evil); err != nil {
			detected++
			fmt.Printf("  %-18s REJECTED: %v\n", attack, short(err.Error()))
		} else {
			fmt.Printf("  %-18s *** NOT DETECTED — THIS IS A BUG ***\n", attack)
		}
	}
	fmt.Printf("\n%d/%d mounted attacks detected\n", detected, mounted)
	if detected != mounted {
		log.Fatal("some attacks were not detected")
	}
}

func short(s string) string {
	if len(s) > 90 {
		return s[:90] + "..."
	}
	return s
}
