module vcqr

go 1.24
