package owner_test

import (
	"errors"
	"sync"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

func newOwner(t testing.TB) (*hashx.Hasher, *owner.Owner) {
	h := hashx.New()
	return h, owner.NewWithKey(h, signKey(t))
}

func empRel(t testing.TB, n int) *relation.Relation {
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: n, L: 0, U: 1 << 20, PhotoSize: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestPublishAndLookup(t *testing.T) {
	h, o := newOwner(t)
	sr, err := o.Publish(empRel(t, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Validate(h, o.PublicKey()); err != nil {
		t.Fatalf("published relation invalid: %v", err)
	}
	got, err := o.Relation("Emp")
	if err != nil {
		t.Fatal(err)
	}
	if got != sr {
		t.Fatal("Relation returned a different snapshot")
	}
	if _, err := o.Relation("Nope"); !errors.Is(err, owner.ErrUnknownRelation) {
		t.Fatalf("unknown relation: %v", err)
	}
}

func TestPublishRejectsBadBase(t *testing.T) {
	_, o := newOwner(t)
	if _, err := o.Publish(empRel(t, 5), 1); err == nil {
		t.Fatal("base 1 accepted")
	}
}

func TestIncrementalOpsKeepRelationsValid(t *testing.T) {
	h, o := newOwner(t)
	sr, err := o.Publish(empRel(t, 15), 2)
	if err != nil {
		t.Fatal(err)
	}
	attrs := sr.Recs[1].Tuple.Attrs

	n, err := o.Insert("Emp", relation.Tuple{Key: 777, Attrs: attrs})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("insert re-signed %d, want 3", n)
	}
	n, err = o.UpdateAttrs("Emp", 777, 0, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("update re-signed %d, want 3", n)
	}
	n, err = o.Delete("Emp", 777, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("delete re-signed %d, want 2", n)
	}
	if err := sr.Validate(h, o.PublicKey()); err != nil {
		t.Fatalf("relation invalid after update cycle: %v", err)
	}
	// Ops on unknown relations fail cleanly.
	if _, err := o.Insert("Nope", relation.Tuple{}); err == nil {
		t.Fatal("insert into unknown relation succeeded")
	}
	if _, err := o.Delete("Nope", 1, 0); err == nil {
		t.Fatal("delete from unknown relation succeeded")
	}
	if _, err := o.UpdateAttrs("Nope", 1, 0, nil); err == nil {
		t.Fatal("update of unknown relation succeeded")
	}
}

func TestSignOpsCounting(t *testing.T) {
	_, o := newOwner(t)
	before := o.SignOps()
	if _, err := o.Publish(empRel(t, 5), 2); err != nil {
		t.Fatal(err)
	}
	// 5 records + 2 delimiters.
	if got := o.SignOps() - before; got != 7 {
		t.Fatalf("publish signed %d times, want 7", got)
	}
}

// TestUpdatedRelationServesVerifiableQueries is the full loop: publish,
// mutate, query, verify.
func TestUpdatedRelationServesVerifiableQueries(t *testing.T) {
	h, o := newOwner(t)
	sr, err := o.Publish(empRel(t, 20), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Insert("Emp", relation.Tuple{Key: 12345, Attrs: sr.Recs[1].Tuple.Attrs}); err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	pub := engine.NewPublisher(h, o.PublicKey(), accessctl.NewPolicy(role))
	if err := pub.AddRelation(sr, true); err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Relation: "Emp", KeyLo: 12000, KeyHi: 13000}
	res, err := pub.Execute("all", q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := verify.New(h, o.PublicKey(), sr.Params, sr.Schema).VerifyResult(q, role, res)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Key == 12345 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted record not in verified result")
	}
}

func TestNewGeneratesKey(t *testing.T) {
	h := hashx.New()
	o, err := owner.New(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.PublicKey().N.BitLen() != sig.DefaultBits {
		t.Fatalf("key size %d", o.PublicKey().N.BitLen())
	}
	_ = core.DefaultBase
}
