// Package owner is the data-owner role of Figure 3: it keeps the master
// relations, holds the signing key, produces signed snapshots for
// publishers, and applies incremental updates with minimal re-signing
// (Section 6.3).
package owner

import (
	"errors"
	"fmt"

	"vcqr/internal/core"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// ErrUnknownRelation reports an unregistered relation name.
var ErrUnknownRelation = errors.New("owner: unknown relation")

// Owner maintains master relations and their signed forms.
type Owner struct {
	h    *hashx.Hasher
	key  *sig.PrivateKey
	rels map[string]*core.SignedRelation
}

// New creates an owner with a fresh signing key. keyBits 0 selects the
// paper's 1024-bit default.
func New(h *hashx.Hasher, keyBits int) (*Owner, error) {
	key, err := sig.Generate(keyBits, nil)
	if err != nil {
		return nil, err
	}
	return &Owner{h: h, key: key, rels: make(map[string]*core.SignedRelation)}, nil
}

// NewWithKey creates an owner around an existing key (for tests and
// deterministic tooling).
func NewWithKey(h *hashx.Hasher, key *sig.PrivateKey) *Owner {
	return &Owner{h: h, key: key, rels: make(map[string]*core.SignedRelation)}
}

// PublicKey returns the verification key users obtain through an
// authenticated channel.
func (o *Owner) PublicKey() *sig.PublicKey { return o.key.Public() }

// Publish signs a relation with the given base parameter and registers it
// under its schema name. It returns the signed snapshot to hand to
// publishers.
func (o *Owner) Publish(rel *relation.Relation, base uint64) (*core.SignedRelation, error) {
	p, err := core.NewParams(rel.L, rel.U, base)
	if err != nil {
		return nil, err
	}
	sr, err := core.Build(o.h, o.key, p, rel)
	if err != nil {
		return nil, err
	}
	o.rels[rel.Schema.Name] = sr
	return sr, nil
}

// Relation returns a registered signed relation.
func (o *Owner) Relation(name string) (*core.SignedRelation, error) {
	sr, ok := o.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	return sr, nil
}

// Insert adds a tuple to a published relation, re-signing only the
// affected neighbourhood. It returns the number of signatures recomputed.
func (o *Owner) Insert(name string, t relation.Tuple) (int, error) {
	sr, err := o.Relation(name)
	if err != nil {
		return 0, err
	}
	return sr.Insert(o.h, o.key, t)
}

// Delete removes a tuple; returns signatures recomputed.
func (o *Owner) Delete(name string, key, rowID uint64) (int, error) {
	sr, err := o.Relation(name)
	if err != nil {
		return 0, err
	}
	return sr.Delete(o.h, o.key, key, rowID)
}

// UpdateAttrs replaces a tuple's non-key attributes; returns signatures
// recomputed (3: the record and its two neighbours).
func (o *Owner) UpdateAttrs(name string, key, rowID uint64, attrs []relation.Value) (int, error) {
	sr, err := o.Relation(name)
	if err != nil {
		return 0, err
	}
	return sr.UpdateAttrs(o.h, o.key, key, rowID, attrs)
}

// SignOps reports how many signatures the owner has produced — the
// update-cost metric of Section 6.3.
func (o *Owner) SignOps() uint64 { return o.key.SignOps() }
