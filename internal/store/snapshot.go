package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot files compact the WAL: [magic][8-byte BE payload length]
// [4-byte BE CRC-32C][payload]. The file is written to a sibling
// *.tmp, fsynced, and renamed into place — the atomic-replace idiom —
// so a reader only ever sees no snapshot, the old snapshot, or the new
// one, never a half-written file under the real name. A leftover *.tmp
// (crash before rename) is ignored and removed at open.

// ErrSnapshotTorn reports a snapshot file that is not a whole,
// checksummed image: wrong magic, short body, or CRC mismatch. The
// store starts empty instead of guessing — an honest refusal the
// coordinator repairs by re-installing, never a wrong answer.
var ErrSnapshotTorn = errors.New("store: torn snapshot")

var snapMagic = []byte("vcqr-store-snap-1\n")

const maxSnapshot = 1 << 32 // corruption bound on the length prefix

// EncodeSnapshotFile frames a snapshot payload for disk.
func EncodeSnapshotFile(payload []byte) []byte {
	out := make([]byte, 0, len(snapMagic)+12+len(payload))
	out = append(out, snapMagic...)
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, walCRC))
	out = append(out, hdr[:]...)
	return append(out, payload...)
}

// ReadSnapshot unframes a snapshot file image, returning the payload.
// Every failure is ErrSnapshotTorn-wrapped. Exported so the fuzz
// target drives exactly the production decode path.
func ReadSnapshot(data []byte) ([]byte, error) {
	if !bytes.HasPrefix(data, snapMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotTorn)
	}
	rest := data[len(snapMagic):]
	if len(rest) < 12 {
		return nil, fmt.Errorf("%w: short header (%d of 12 bytes)", ErrSnapshotTorn, len(rest))
	}
	size := binary.BigEndian.Uint64(rest[0:8])
	if size > maxSnapshot || size != uint64(len(rest)-12) {
		return nil, fmt.Errorf("%w: length prefix %d for %d payload bytes", ErrSnapshotTorn, size, len(rest)-12)
	}
	payload := rest[12:]
	if got, want := crc32.Checksum(payload, walCRC), binary.BigEndian.Uint32(rest[8:12]); got != want {
		return nil, fmt.Errorf("%w: payload CRC mismatch (got %08x want %08x)", ErrSnapshotTorn, got, want)
	}
	return payload, nil
}

// writeSnapshotFile writes a framed snapshot atomically: temp file,
// fsync, rename, directory fsync — threading the two snapshot-side
// crash points. A before-rename death leaves only the *.tmp (ignored
// at open); an after-rename death leaves the new snapshot in place
// with the WAL untouched, which sequence numbers absorb.
func writeSnapshotFile(path string, crash *Crasher, payload []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, EncodeSnapshotFile(payload), 0o644); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		return err
	}
	if crash.hit(CrashBeforeRename) {
		return ErrCrash
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	if crash.hit(CrashAfterRename) {
		return ErrCrash
	}
	return nil
}

// loadSnapshotFile reads and unframes a snapshot, removing any *.tmp
// leftover from a crashed writer. A missing file is (nil, nil): a
// fresh store. A torn file returns the payload nil and the tear error;
// the caller starts empty and surfaces the refusal.
func loadSnapshotFile(path string) ([]byte, error) {
	os.Remove(path + ".tmp") // crashed writer's leftover, never authoritative
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ReadSnapshot(data)
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// syncDir fsyncs a directory so a rename is durable; best-effort on
// filesystems that refuse directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
