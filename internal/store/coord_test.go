package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCoordRoutingReplay(t *testing.T) {
	dir := t.TempDir()
	cl, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 || rep.RoutingEpoch != 0 {
		t.Fatalf("fresh log report off: %+v", rep)
	}
	if _, _, ok := cl.Routing(); ok {
		t.Fatal("fresh log claims a routing table")
	}
	r1 := [][]string{{"http://a"}, {"http://b"}}
	r2 := [][]string{{"http://b", "http://a"}, {"http://a"}}
	if err := cl.LogRouting(1, r1); err != nil {
		t.Fatal(err)
	}
	if err := cl.LogRouting(2, r2); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	cl2, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 2 || rep.RoutingEpoch != 2 {
		t.Fatalf("replay report off: %+v", rep)
	}
	epoch, route, ok := cl2.Routing()
	if !ok || epoch != 2 || !reflect.DeepEqual(route, r2) {
		t.Fatalf("recovered routing epoch=%d route=%v", epoch, route)
	}
	cl2.Close()

	// Open compacted the 2-record log down to its latest state: the
	// next replay reads exactly one record.
	cl3, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl3.Close()
	if rep.Replayed != 1 || rep.RoutingEpoch != 2 {
		t.Fatalf("post-compaction replay off: %+v", rep)
	}
}

// The two-phase bracket: a begin without an end survives restarts as an
// open staged transaction — the ambiguous crash window Recover must
// surface — and an end closes it.
func TestCoordStagedLifecycle(t *testing.T) {
	dir := t.TempDir()
	cl, _, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	tokens := map[string]uint64{"http://a": 7, "http://b": 9}
	if err := cl.LogStagedBegin("Uniform", tokens); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	cl2, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.OpenStaged, []string{"Uniform"}) {
		t.Fatalf("open staged after crash: %v", rep.OpenStaged)
	}
	if got := cl2.OpenStaged()["Uniform"]; !reflect.DeepEqual(got, tokens) {
		t.Fatalf("staged tokens lost: %v", got)
	}
	if err := cl2.LogStagedEnd("Uniform", false); err != nil {
		t.Fatal(err)
	}
	cl2.Close()

	cl3, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl3.Close()
	if len(rep.OpenStaged) != 0 || len(cl3.OpenStaged()) != 0 {
		t.Fatalf("resolved transaction still open: %+v", rep)
	}
}

// Compaction rewrites the log atomically; a crash on either side of the
// rename leaves a complete, consistent image.
func TestCoordCompactionCrash(t *testing.T) {
	route := [][]string{{"http://a"}, {"http://b"}}
	for _, p := range []CrashPoint{CrashBeforeRename, CrashAfterRename} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			crash := &Crasher{}
			cl, _, err := OpenCoord(dir, CoordOptions{CompactEvery: -1, Crash: crash})
			if err != nil {
				t.Fatal(err)
			}
			for e := uint64(1); e <= 5; e++ {
				if err := cl.LogRouting(e, route); err != nil {
					t.Fatal(err)
				}
			}
			if err := cl.LogStagedBegin("Uniform", map[string]uint64{"http://a": 3}); err != nil {
				t.Fatal(err)
			}
			crash.Arm(p)
			if err := cl.Compact(); !errors.Is(err, ErrCrash) {
				t.Fatalf("armed compaction returned %v, want ErrCrash", err)
			}
			cl.Close()

			cl2, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer cl2.Close()
			epoch, got, ok := cl2.Routing()
			if !ok || epoch != 5 || !reflect.DeepEqual(got, route) {
				t.Fatalf("after %s: routing epoch=%d ok=%v", p, epoch, ok)
			}
			if !reflect.DeepEqual(rep.OpenStaged, []string{"Uniform"}) {
				t.Fatalf("after %s: open staged %v", p, rep.OpenStaged)
			}
			if p == CrashBeforeRename {
				if _, err := os.Stat(filepath.Join(dir, "coord.wal.tmp")); !os.IsNotExist(err) {
					// openWAL does not clean coord.wal.tmp; the next
					// successful compaction overwrites it. Either way the
					// leftover is never read — assert only that the real
					// log decided the state above.
					t.Log("compaction temp file left on disk (never read)")
				}
			}
		})
	}
}

// A torn tail in the coordinator log truncates to the last whole
// record, keeping everything before it.
func TestCoordTornTail(t *testing.T) {
	dir := t.TempDir()
	cl, _, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LogRouting(3, [][]string{{"http://a"}}); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	path := filepath.Join(dir, "coord.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01}) // partial header
	f.Close()

	cl2, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if !errors.Is(rep.TornTail, ErrWALTorn) {
		t.Fatalf("torn tail reported %v", rep.TornTail)
	}
	if epoch, _, ok := cl2.Routing(); !ok || epoch != 3 {
		t.Fatalf("whole records before the tear lost (epoch=%d ok=%v)", epoch, ok)
	}
}

// Automatic compaction keeps the log bounded without losing state.
func TestCoordAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	cl, _, err := OpenCoord(dir, CoordOptions{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 9; e++ {
		if err := cl.LogRouting(e, [][]string{{"http://a"}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := cl.Stats(); st.Compactions < 2 || st.CompactFailures != 0 {
		t.Fatalf("auto compaction stats off: %+v", st)
	}
	cl.Close()

	cl2, rep, err := OpenCoord(dir, CoordOptions{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if rep.RoutingEpoch != 9 {
		t.Fatalf("recovered epoch %d, want 9", rep.RoutingEpoch)
	}
	if rep.Replayed > 4 {
		t.Fatalf("compaction left %d records to replay", rep.Replayed)
	}
}
