package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vcqr/internal/core"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/workload"
)

var (
	testKey *sig.PrivateKey
	keyOnce sync.Once
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		testKey = k
	})
	return testKey
}

// buildSet signs a k-shard publication — real slices with real chained
// signatures, because the store's commit records must round-trip the
// same record structure production does.
func buildSet(t *testing.T, h *hashx.Hasher, n, k int) *partition.Set {
	t.Helper()
	rel, err := workload.Uniform(workload.UniformConfig{
		N: n, L: 0, U: 1 << 20, PayloadSize: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	set, err := partition.Split(sr, k)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// evolve returns a successor of sl with one owned record's payload
// re-signed — the post-state of a committed delta.
func evolve(t *testing.T, h *hashx.Hasher, sl *core.SignedRelation, idx int, payload []byte) *core.SignedRelation {
	t.Helper()
	next := sl.Clone()
	rec := next.Recs[idx]
	if _, err := next.UpdateAttrs(h, signKey(t), rec.Key(), rec.Tuple.RowID,
		[]relation.Value{relation.BytesVal(payload)}); err != nil {
		t.Fatal(err)
	}
	return next
}

func install(t *testing.T, ns *NodeStore, rel string, set *partition.Set) {
	t.Helper()
	for i, sl := range set.Slices {
		if err := ns.LogInstall(rel, set.Spec, i, sl, partition.SliceDigest(ns.h, sl)); err != nil {
			t.Fatalf("install shard %d: %v", i, err)
		}
	}
}

// compareStates asserts two stores recovered byte-identical state:
// same relations, specs, shards, slice digests (the canonical content
// hash), install digests and delta counters.
func compareStates(t *testing.T, got, want *NodeStore) {
	t.Helper()
	g, w := got.Recovered(), want.Recovered()
	if len(g) != len(w) {
		t.Fatalf("recovered %d relations, want %d", len(g), len(w))
	}
	for rel, wr := range w {
		gr, ok := g[rel]
		if !ok {
			t.Fatalf("relation %q missing", rel)
		}
		if gr.Spec.Version != wr.Spec.Version {
			t.Fatalf("%s: spec v%d, want v%d", rel, gr.Spec.Version, wr.Spec.Version)
		}
		if len(gr.Shards) != len(wr.Shards) {
			t.Fatalf("%s: %d shards, want %d", rel, len(gr.Shards), len(wr.Shards))
		}
		for i, ws := range wr.Shards {
			gs := gr.Shards[i]
			if gs.Shard != ws.Shard || gs.Deltas != ws.Deltas {
				t.Fatalf("%s/%d: shard=%d deltas=%d, want shard=%d deltas=%d",
					rel, ws.Shard, gs.Shard, gs.Deltas, ws.Shard, ws.Deltas)
			}
			if !gs.InstallDigest.Equal(ws.InstallDigest) {
				t.Fatalf("%s/%d: install digest diverged", rel, ws.Shard)
			}
			gd := partition.SliceDigest(got.h, gs.Slice)
			wd := partition.SliceDigest(want.h, ws.Slice)
			if !gd.Equal(wd) {
				t.Fatalf("%s/%d: slice content diverged", rel, ws.Shard)
			}
		}
	}
}

// Cold start replays the full operation log: installs, a committed
// delta, a removal.
func TestNodeStoreColdStartReplay(t *testing.T) {
	h := hashx.New()
	set := buildSet(t, h, 24, 2)
	dir := t.TempDir()
	opts := Options{Hasher: h, SnapshotEvery: -1}
	ns, _, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	install(t, ns, "Uniform", set)
	old := set.Slices[0]
	next := evolve(t, h, old, len(old.Recs)/2, []byte("v2-payload-bytes"))
	postDg := partition.SliceDigest(h, next)
	if err := ns.LogCommit("Uniform", []CommitShard{{Shard: 0, Old: old, New: next, PostDigest: postDg}}); err != nil {
		t.Fatal(err)
	}
	if err := ns.LogRemove("Uniform", 1); err != nil {
		t.Fatal(err)
	}
	ns.Close()

	ns2, rep, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	if rep.Replayed != 4 || rep.TornTail != nil || len(rep.Refused) != 0 {
		t.Fatalf("replay report off: %+v", rep)
	}
	rec := ns2.Recovered()["Uniform"]
	if len(rec.Shards) != 1 || rec.Shards[0].Shard != 0 {
		t.Fatalf("recovered shards %+v, want only shard 0 (shard 1 was removed)", rec.Shards)
	}
	sh := rec.Shards[0]
	if sh.Deltas != 1 || !partition.SliceDigest(h, sh.Slice).Equal(postDg) {
		t.Fatalf("shard 0 recovered pre-delta state (deltas=%d)", sh.Deltas)
	}
	if st := ns2.Stats(); st.ColdStarts != 1 || st.Seq != 4 {
		t.Fatalf("stats off: %+v", st)
	}
}

// An automatic snapshot folds the WAL away; the next cold start loads
// the image and replays nothing.
func TestNodeAutoSnapshotCompaction(t *testing.T) {
	h := hashx.New()
	set := buildSet(t, h, 24, 2)
	dir := t.TempDir()
	opts := Options{Hasher: h, SnapshotEvery: 2}
	ns, _, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	install(t, ns, "Uniform", set) // 2 appends → snapshot fires
	if st := ns.Stats(); st.Snapshots != 1 || st.Pending != 0 || st.SnapshotSeq != 2 {
		t.Fatalf("auto snapshot did not fire: %+v", st)
	}
	if fi, err := os.Stat(filepath.Join(dir, "node.wal")); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated after snapshot: %v / %d bytes", err, fi.Size())
	}
	ns.Close()

	ns2, rep, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	if rep.SnapshotSeq != 2 || rep.Replayed != 0 || rep.SnapshotErr != nil {
		t.Fatalf("cold start from snapshot off: %+v", rep)
	}
	if rec := ns2.Recovered()["Uniform"]; len(rec.Shards) != 2 {
		t.Fatalf("recovered %d shards from snapshot, want 2", len(rec.Shards))
	}
}

// The crash matrix: one injected death at each of the five points, then
// a cold start. Before-append and mid-record crashes recover the
// pre-operation state (the record never became durable — and was never
// acknowledged); after-append recovers the post-operation state (the
// record was durable even though the caller never heard success);
// either side of the snapshot rename recovers the committed state
// exactly, with sequence numbers preventing a double apply.
func TestNodeCrashMatrix(t *testing.T) {
	h := hashx.New()
	set := buildSet(t, h, 24, 2)
	for _, p := range CrashPoints {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			crash := &Crasher{}
			opts := Options{Hasher: h, SnapshotEvery: -1, Crash: crash}
			ns, _, err := OpenNode(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			install(t, ns, "Uniform", set)
			old := set.Slices[0]
			next := evolve(t, h, old, len(old.Recs)/2, []byte("matrix-payload-1"))
			postDg := partition.SliceDigest(h, next)
			commit := []CommitShard{{Shard: 0, Old: old, New: next, PostDigest: postDg}}

			switch p {
			case CrashBeforeAppend, CrashMidRecord, CrashAfterAppend:
				crash.Arm(p)
				if err := ns.LogCommit("Uniform", commit); !errors.Is(err, ErrCrash) {
					t.Fatalf("armed commit returned %v, want ErrCrash", err)
				}
			case CrashBeforeRename, CrashAfterRename:
				if err := ns.LogCommit("Uniform", commit); err != nil {
					t.Fatal(err)
				}
				crash.Arm(p)
				if err := ns.Snapshot(); !errors.Is(err, ErrCrash) {
					t.Fatalf("armed snapshot returned %v, want ErrCrash", err)
				}
			}
			if crash.Fired() != 1 {
				t.Fatalf("crash fired %d times, want exactly 1", crash.Fired())
			}
			ns.Close()

			ns2, rep, err := OpenNode(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer ns2.Close()

			wantDeltas, wantDg := uint64(0), partition.SliceDigest(h, old)
			switch p {
			case CrashAfterAppend, CrashBeforeRename, CrashAfterRename:
				wantDeltas, wantDg = 1, postDg
			}
			rec := ns2.Recovered()["Uniform"]
			if len(rec.Shards) != 2 {
				t.Fatalf("recovered %d shards, want 2", len(rec.Shards))
			}
			sh0 := rec.Shards[0]
			if sh0.Deltas != wantDeltas || !partition.SliceDigest(h, sh0.Slice).Equal(wantDg) {
				t.Fatalf("shard 0 after %s: deltas=%d, want %d (digest match %v)",
					p, sh0.Deltas, wantDeltas, partition.SliceDigest(h, sh0.Slice).Equal(wantDg))
			}
			if dg1 := partition.SliceDigest(h, rec.Shards[1].Slice); !dg1.Equal(partition.SliceDigest(h, set.Slices[1])) {
				t.Fatalf("shard 1 (untouched) diverged after %s", p)
			}

			switch p {
			case CrashMidRecord:
				if !errors.Is(rep.TornTail, ErrWALTorn) {
					t.Fatalf("mid-record crash not reported as a torn tail: %v", rep.TornTail)
				}
			case CrashBeforeRename:
				// The half-finished snapshot must be gone, not adopted.
				if _, err := os.Stat(filepath.Join(dir, "node.snap.tmp")); !os.IsNotExist(err) {
					t.Fatal("leftover snapshot temp file survived recovery")
				}
				if rep.SnapshotSeq != 0 {
					t.Fatalf("unrenamed snapshot was adopted (seq %d)", rep.SnapshotSeq)
				}
			case CrashAfterRename:
				// Snapshot renamed, WAL never truncated: the replay must
				// skip every absorbed record instead of double-applying.
				if rep.SnapshotSeq == 0 {
					t.Fatal("renamed snapshot was not adopted")
				}
				if rep.Skipped != 3 || rep.Replayed != 0 {
					t.Fatalf("double-apply guard: skipped=%d replayed=%d, want 3/0", rep.Skipped, rep.Replayed)
				}
			}
		})
	}
}

// The recovery property: across shard counts 1–4 and a stream of
// random deltas each interrupted at every crash point, a store that
// crashed and replayed is indistinguishable from one that never did.
func TestNodeCrashRecoveryProperty(t *testing.T) {
	h := hashx.New()
	for k := 1; k <= 4; k++ {
		t.Run(fmt.Sprintf("shards-%d", k), func(t *testing.T) {
			set := buildSet(t, h, 12*k, k)
			rng := rand.New(rand.NewSource(int64(100 + k)))
			crash := &Crasher{}
			dutOpts := Options{Hasher: h, SnapshotEvery: -1, Crash: crash}
			ctlOpts := Options{Hasher: h, SnapshotEvery: -1}
			dut, _, err := OpenNode(t.TempDir(), dutOpts)
			if err != nil {
				t.Fatal(err)
			}
			ctl, _, err := OpenNode(t.TempDir(), ctlOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { dut.Close(); ctl.Close() }()
			install(t, dut, "Uniform", set)
			install(t, ctl, "Uniform", set)
			cur := append([]*core.SignedRelation{}, set.Slices...)

			step := 0
			for _, p := range CrashPoints {
				for round := 0; round < 2; round++ {
					step++
					shard := rng.Intn(k)
					old := cur[shard]
					next := evolve(t, h, old, 1+rng.Intn(len(old.Recs)-2),
						[]byte(fmt.Sprintf("step-%02d-payload", step)))
					commit := []CommitShard{{
						Shard: shard, Old: old, New: next,
						PostDigest: partition.SliceDigest(h, next),
					}}
					durable := false
					switch p {
					case CrashBeforeAppend, CrashMidRecord, CrashAfterAppend:
						crash.Arm(p)
						if err := dut.LogCommit("Uniform", commit); !errors.Is(err, ErrCrash) {
							t.Fatalf("step %d: armed commit returned %v", step, err)
						}
						durable = p == CrashAfterAppend
					case CrashBeforeRename, CrashAfterRename:
						if err := dut.LogCommit("Uniform", commit); err != nil {
							t.Fatal(err)
						}
						crash.Arm(p)
						if err := dut.Snapshot(); !errors.Is(err, ErrCrash) {
							t.Fatalf("step %d: armed snapshot returned %v", step, err)
						}
						durable = true
					}

					// Reboot the crashed store from its own disk.
					dir := dut.Dir()
					dut.Close()
					dut, _, err = OpenNode(dir, dutOpts)
					if err != nil {
						t.Fatalf("step %d: reopen: %v", step, err)
					}
					if !durable {
						// The op died before its record was durable — it
						// never happened, and was never acknowledged. Redo.
						if err := dut.LogCommit("Uniform", commit); err != nil {
							t.Fatal(err)
						}
					}
					if err := ctl.LogCommit("Uniform", commit); err != nil {
						t.Fatal(err)
					}
					cur[shard] = next
					compareStates(t, dut, ctl)
				}
			}

			// Final check across one more clean reboot of both.
			dDir, cDir := dut.Dir(), ctl.Dir()
			dut.Close()
			ctl.Close()
			dut, _, err = OpenNode(dDir, dutOpts)
			if err != nil {
				t.Fatal(err)
			}
			ctl, _, err = OpenNode(cDir, ctlOpts)
			if err != nil {
				t.Fatal(err)
			}
			compareStates(t, dut, ctl)
		})
	}
}

// A torn snapshot under the real name is refused by name and the store
// starts empty — an honest refusal the coordinator repairs by
// re-installing, never a guess.
func TestNodeTornSnapshotStartsEmpty(t *testing.T) {
	h := hashx.New()
	set := buildSet(t, h, 24, 2)
	dir := t.TempDir()
	opts := Options{Hasher: h, SnapshotEvery: -1}
	ns, _, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	install(t, ns, "Uniform", set)
	if err := ns.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ns.Close()

	snapPath := filepath.Join(dir, "node.snap")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ns2, rep, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	if !errors.Is(rep.SnapshotErr, ErrSnapshotTorn) {
		t.Fatalf("corrupt snapshot reported %v, want ErrSnapshotTorn", rep.SnapshotErr)
	}
	if len(ns2.Recovered()) != 0 {
		t.Fatal("corrupt snapshot produced state instead of an honest refusal")
	}
}

// A crashed snapshot writer's temp file is never authoritative: it is
// ignored and removed at open, and the WAL remains the truth.
func TestNodeSnapshotTmpLeftoverIgnored(t *testing.T) {
	h := hashx.New()
	set := buildSet(t, h, 12, 1)
	dir := t.TempDir()
	opts := Options{Hasher: h, SnapshotEvery: -1}
	ns, _, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	install(t, ns, "Uniform", set)
	ns.Close()

	tmp := filepath.Join(dir, "node.snap.tmp")
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ns2, rep, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	if rep.SnapshotErr != nil || rep.Replayed != 1 {
		t.Fatalf("tmp leftover disturbed recovery: %+v", rep)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("tmp leftover not removed at open")
	}
	if len(ns2.Recovered()["Uniform"].Shards) != 1 {
		t.Fatal("WAL state lost")
	}
}

// A CRC-valid but undecodable record (version skew, silent corruption
// past the checksum) refuses the record and everything after it.
func TestNodeUndecodableRecordStopsReplay(t *testing.T) {
	h := hashx.New()
	set := buildSet(t, h, 12, 1)
	dir := t.TempDir()
	opts := Options{Hasher: h, SnapshotEvery: -1}
	ns, _, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	install(t, ns, "Uniform", set)
	ns.Close()

	f, err := os.OpenFile(filepath.Join(dir, "node.wal"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := appendWALFrame(f, []byte("not a gob record")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ns2, rep, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	if !errors.Is(rep.TornTail, ErrWALTorn) || rep.Replayed != 1 {
		t.Fatalf("undecodable record: torn=%v replayed=%d, want ErrWALTorn/1", rep.TornTail, rep.Replayed)
	}
	if len(ns2.Recovered()["Uniform"].Shards) != 1 {
		t.Fatal("records before the undecodable one were lost")
	}
}

// LogCommit's full-slice fallback: with no prior slice to diff from,
// the record carries the whole successor and replays exactly.
func TestNodeCommitFullSliceFallback(t *testing.T) {
	h := hashx.New()
	set := buildSet(t, h, 12, 1)
	dir := t.TempDir()
	opts := Options{Hasher: h, SnapshotEvery: -1}
	ns, _, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	install(t, ns, "Uniform", set)
	next := evolve(t, h, set.Slices[0], len(set.Slices[0].Recs)/2, []byte("fallback-payload"))
	postDg := partition.SliceDigest(h, next)
	// Old nil forces the FullSnap path — the probe cannot round-trip.
	if err := ns.LogCommit("Uniform", []CommitShard{{Shard: 0, Old: nil, New: next, PostDigest: postDg}}); err != nil {
		t.Fatal(err)
	}
	ns.Close()

	ns2, rep, err := OpenNode(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	if len(rep.Refused) != 0 {
		t.Fatalf("full-slice commit refused on replay: %v", rep.Refused)
	}
	sh := ns2.Recovered()["Uniform"].Shards[0]
	if sh.Deltas != 1 || !partition.SliceDigest(h, sh.Slice).Equal(postDg) {
		t.Fatal("full-slice fallback did not replay to the committed state")
	}
}
