package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record framing: [4-byte BE payload length][4-byte BE CRC-32C of
// the payload][payload]. The CRC makes a bit flip a named refusal
// instead of a gob decode surprise; the length prefix makes a torn
// write (partial record at the tail) detectable without trusting file
// size to be record-aligned.

// ErrWALTorn reports a WAL whose tail is not a whole, checksummed
// record: a crash mid-append, a truncated copy, or a flipped bit in
// the final record. Recovery keeps every record before the tear and
// truncates the rest — the torn record was never acknowledged (the
// append syncs before the caller hears success), so dropping it is the
// correct crash semantics, and the error is surfaced so operators see
// the tear rather than a silent skip.
var ErrWALTorn = errors.New("store: torn WAL record")

// maxWALRecord bounds one record's payload. Anything larger than this
// in a length prefix is corruption, not data: the largest legitimate
// record is a full slice install, bounded by the same 256 MiB the wire
// transfer cap enforces.
const maxWALRecord = 256 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

const walHeaderLen = 8

// appendWALFrame writes one framed record. The caller syncs.
func appendWALFrame(w io.Writer, payload []byte) error {
	var hdr [walHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadWALRecord reads one framed record from r. It returns io.EOF at a
// clean end of input and an ErrWALTorn-wrapped error for anything that
// is not a whole, checksummed record: a short header, an absurd length
// prefix, a short payload, or a CRC mismatch. Exported so the fuzz
// target drives exactly the production decode path.
func ReadWALRecord(r io.Reader) ([]byte, error) {
	var hdr [walHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("%w: short header (%d of %d bytes)", ErrWALTorn, n, walHeaderLen)
	}
	size := binary.BigEndian.Uint32(hdr[0:4])
	if size > maxWALRecord {
		return nil, fmt.Errorf("%w: length prefix %d exceeds %d", ErrWALTorn, size, maxWALRecord)
	}
	payload := make([]byte, size)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload (%d of %d bytes)", ErrWALTorn, m, size)
	}
	if got, want := crc32.Checksum(payload, walCRC), binary.BigEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: payload CRC mismatch (got %08x want %08x)", ErrWALTorn, got, want)
	}
	return payload, nil
}

// scanWAL walks a WAL image record by record, returning every intact
// payload, the byte offset of the end of the last intact record (the
// truncation point), and the tear error if the tail was not clean.
func scanWAL(data []byte) (payloads [][]byte, valid int64, torn error) {
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		if int64(len(rest)) < walHeaderLen {
			return payloads, off, fmt.Errorf("%w: short header (%d of %d bytes)", ErrWALTorn, len(rest), walHeaderLen)
		}
		size := binary.BigEndian.Uint32(rest[0:4])
		if size > maxWALRecord || walHeaderLen+int64(size) > int64(len(rest)) {
			// Re-derive the precise reason through the shared reader so
			// the message matches what the stream path would report.
			_, err := ReadWALRecord(newByteReader(rest))
			return payloads, off, err
		}
		payload := rest[walHeaderLen : walHeaderLen+int64(size)]
		if got, want := crc32.Checksum(payload, walCRC), binary.BigEndian.Uint32(rest[4:8]); got != want {
			return payloads, off, fmt.Errorf("%w: payload CRC mismatch (got %08x want %08x)", ErrWALTorn, got, want)
		}
		payloads = append(payloads, payload)
		off += walHeaderLen + int64(size)
	}
	return payloads, off, nil
}

// newByteReader is a minimal bytes.Reader stand-in that avoids pulling
// bytes into the torn-tail error path's allocations.
func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// openWAL opens (creating if absent) a WAL file for appending, after
// scanning it: the intact payloads are returned, and a torn tail is
// truncated away so the next append starts on a record boundary.
func openWAL(path string) (*os.File, [][]byte, error, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, nil, err
	}
	payloads, valid, torn := scanWAL(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	if torn != nil {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return f, payloads, torn, nil
}

// appendRecord appends one payload to the WAL through the crash seam
// and syncs it durable. On a mid-record injection the header and half
// the payload land on disk — exactly the torn tail recovery handles.
func appendRecord(f *os.File, crash *Crasher, payload []byte) error {
	if crash.hit(CrashBeforeAppend) {
		return ErrCrash
	}
	if crash.hit(CrashMidRecord) {
		var hdr [walHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walCRC))
		f.Write(hdr[:])
		f.Write(payload[:len(payload)/2])
		f.Sync()
		return ErrCrash
	}
	if err := appendWALFrame(f, payload); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if crash.hit(CrashAfterAppend) {
		return ErrCrash
	}
	return nil
}
