package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func frames(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := appendWALFrame(&buf, p); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

func TestWALRoundTrip(t *testing.T) {
	want := [][]byte{[]byte("a"), {}, []byte("third-record"), bytes.Repeat([]byte{0xAB}, 4096)}
	r := bytes.NewReader(frames(want...))
	for i, w := range want {
		got, err := ReadWALRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(got), len(w))
		}
	}
	if _, err := ReadWALRecord(r); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
}

// A crash mid-append leaves a partial record at the tail: recovery must
// keep every whole record before the tear, name the tear ErrWALTorn,
// and truncate the file so the next append lands on a record boundary.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	whole := frames([]byte("one"), []byte("two"), []byte("three"))
	torn := frames([]byte("four"))
	partial := torn[:len(torn)-2] // header + most of the payload
	if err := os.WriteFile(path, append(append([]byte{}, whole...), partial...), 0o644); err != nil {
		t.Fatal(err)
	}

	f, payloads, tornErr, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !errors.Is(tornErr, ErrWALTorn) {
		t.Fatalf("torn tail reported %v, want ErrWALTorn", tornErr)
	}
	if len(payloads) != 3 || string(payloads[2]) != "three" {
		t.Fatalf("kept %d records, want the 3 whole ones", len(payloads))
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(len(whole)) {
		t.Fatalf("file is %d bytes after truncation, want %d", fi.Size(), len(whole))
	}

	// A second open finds a clean log.
	f, payloads, tornErr, err = openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if tornErr != nil || len(payloads) != 3 {
		t.Fatalf("reopen after truncation: torn=%v records=%d", tornErr, len(payloads))
	}
}

// A flipped bit in the final record is a CRC mismatch, not a panic and
// not a silent skip: the record is refused by name and earlier records
// survive.
func TestWALBitFlipFinalRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	img := frames([]byte("alpha"), []byte("beta"), []byte("gamma"))
	img[len(img)-1] ^= 0x40 // inside the final payload
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	f, payloads, tornErr, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !errors.Is(tornErr, ErrWALTorn) {
		t.Fatalf("bit flip reported %v, want ErrWALTorn", tornErr)
	}
	if len(payloads) != 2 || string(payloads[0]) != "alpha" || string(payloads[1]) != "beta" {
		t.Fatalf("kept %d records, want the 2 intact ones", len(payloads))
	}
}

func TestWALOversizeLengthPrefix(t *testing.T) {
	var hdr [walHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], maxWALRecord+1)
	_, err := ReadWALRecord(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrWALTorn) {
		t.Fatalf("oversize length prefix: got %v, want ErrWALTorn", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	payload := []byte("snapshot-payload")
	got, err := ReadSnapshot(EncodeSnapshotFile(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip returned %q", got)
	}
}

// Half-written or corrupted snapshot images are ErrSnapshotTorn-named
// refusals: bad magic, truncated body, flipped payload bit.
func TestSnapshotTornVariants(t *testing.T) {
	img := EncodeSnapshotFile([]byte("payload-bytes"))
	cases := map[string][]byte{
		"bad magic":    append([]byte("not-a-snapshot!!!!"), img[18:]...),
		"short header": img[:len(snapMagic)+4],
		"short body":   img[:len(img)-3],
		"bit flip":     append(append([]byte{}, img[:len(img)-1]...), img[len(img)-1]^0x01),
		"empty":        {},
	}
	for name, data := range cases {
		if _, err := ReadSnapshot(data); !errors.Is(err, ErrSnapshotTorn) {
			t.Errorf("%s: got %v, want ErrSnapshotTorn", name, err)
		}
	}
}
