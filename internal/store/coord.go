package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Coordinator log record: exactly one of the three kinds. The routing
// table is tiny, so instead of a separate snapshot file the log
// compacts by atomically rewriting itself (latest routing + still-open
// staged transactions) — the same temp+fsync+rename idiom the node
// snapshot uses, so there is no partial-compaction window and no need
// for sequence numbers.
type coordRecord struct {
	Routing     *routingRecord
	StagedBegin *stagedBeginRecord
	StagedEnd   *stagedEndRecord
}

type routingRecord struct {
	Epoch uint64
	Route [][]string
}

// stagedBeginRecord is written before phase 4 (commit fan-out) of a
// distributed delta: the relation and every node's staged token. If
// the coordinator dies inside the commit fan-out, recovery finds the
// open transaction here and knows the ambiguity is real — some nodes
// may have committed — instead of guessing from digests alone.
type stagedBeginRecord struct {
	Relation string
	Tokens   map[string]uint64
}

type stagedEndRecord struct {
	Relation  string
	Committed bool
}

// DefaultCompactEvery is the appends-per-compaction cadence when
// CoordOptions.CompactEvery is zero.
const DefaultCompactEvery = 128

// CoordOptions parameterizes OpenCoord.
type CoordOptions struct {
	// CompactEvery is how many appends trigger an atomic log rewrite;
	// 0 = DefaultCompactEvery, negative disables automatic compaction.
	CompactEvery int
	// Crash is the injection seam; nil (production) never fires.
	Crash *Crasher
}

// CoordReport describes what OpenCoord recovered.
type CoordReport struct {
	// TornTail is the ErrWALTorn-wrapped reason the log tail was
	// truncated, when it was.
	TornTail error
	// Replayed counts log records applied.
	Replayed int
	// RoutingEpoch is the recovered routing epoch (0 if none logged).
	RoutingEpoch uint64
	// OpenStaged lists relations whose two-phase delta was begun but
	// never resolved before the crash — the ambiguous commit windows.
	OpenStaged []string
}

// CoordLog is the coordinator's durable state: the latest routing
// table (with its epoch) and the set of in-flight two-phase delta
// commits. All methods are goroutine-safe.
type CoordLog struct {
	path  string
	crash *Crasher
	every int

	mu      sync.Mutex
	f       *os.File
	pending int // appends since last compaction
	repoch  uint64
	route   [][]string
	haveRt  bool
	staged  map[string]map[string]uint64

	appends, compactions, compactFailures atomic.Uint64
}

// OpenCoord opens (creating if needed) a coordinator log in dir and
// replays it. A torn tail is truncated (reported, not fatal); only
// environmental I/O failures return an error. If the replayed log had
// grown, it is compacted before returning.
func OpenCoord(dir string, opts CoordOptions) (*CoordLog, *CoordReport, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	every := opts.CompactEvery
	if every == 0 {
		every = DefaultCompactEvery
	}
	cl := &CoordLog{
		path:   filepath.Join(dir, "coord.wal"),
		crash:  opts.Crash,
		every:  every,
		staged: map[string]map[string]uint64{},
	}
	rep := &CoordReport{}
	f, payloads, torn, err := openWAL(cl.path)
	if err != nil {
		return nil, nil, err
	}
	cl.f = f
	rep.TornTail = torn
	for _, payload := range payloads {
		var rec coordRecord
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); derr != nil {
			rep.TornTail = fmt.Errorf("%w: undecodable record: %v", ErrWALTorn, derr)
			break
		}
		cl.applyRecord(&rec)
		rep.Replayed++
	}
	rep.RoutingEpoch = cl.repoch
	rep.OpenStaged = cl.openStagedLocked()
	// Compact what we replayed so restart cost stays bounded; failure
	// here is an I/O problem worth surfacing at open.
	if rep.Replayed > 1 {
		if err := cl.compactLocked(); err != nil {
			cl.f.Close()
			return nil, nil, err
		}
	}
	return cl, rep, nil
}

func (cl *CoordLog) applyRecord(rec *coordRecord) {
	switch {
	case rec.Routing != nil:
		cl.repoch = rec.Routing.Epoch
		cl.route = cloneRoute(rec.Routing.Route)
		cl.haveRt = true
	case rec.StagedBegin != nil:
		toks := make(map[string]uint64, len(rec.StagedBegin.Tokens))
		for k, v := range rec.StagedBegin.Tokens {
			toks[k] = v
		}
		cl.staged[rec.StagedBegin.Relation] = toks
	case rec.StagedEnd != nil:
		delete(cl.staged, rec.StagedEnd.Relation)
	}
}

func (cl *CoordLog) append(rec *coordRecord) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return err
	}
	if err := appendRecord(cl.f, cl.crash, buf.Bytes()); err != nil {
		return err
	}
	cl.appends.Add(1)
	cl.pending++
	cl.applyRecord(rec)
	if cl.every > 0 && cl.pending >= cl.every {
		// Best-effort: the log already holds everything.
		if err := cl.compactLocked(); err != nil {
			cl.compactFailures.Add(1)
		}
	}
	return nil
}

// LogRouting durably records a routing table at a given epoch.
func (cl *CoordLog) LogRouting(epoch uint64, route [][]string) error {
	return cl.append(&coordRecord{Routing: &routingRecord{Epoch: epoch, Route: cloneRoute(route)}})
}

// LogStagedBegin durably records that a two-phase delta for rel is
// about to enter its commit fan-out, with every node's staged token.
// Call before the first NodeTx commit is sent.
func (cl *CoordLog) LogStagedBegin(rel string, tokens map[string]uint64) error {
	toks := make(map[string]uint64, len(tokens))
	for k, v := range tokens {
		toks[k] = v
	}
	return cl.append(&coordRecord{StagedBegin: &stagedBeginRecord{Relation: rel, Tokens: toks}})
}

// LogStagedEnd durably records that the delta for rel resolved
// (committed or aborted everywhere).
func (cl *CoordLog) LogStagedEnd(rel string, committed bool) error {
	return cl.append(&coordRecord{StagedEnd: &stagedEndRecord{Relation: rel, Committed: committed}})
}

// Routing returns the recovered routing table and epoch; ok is false
// if no routing was ever logged.
func (cl *CoordLog) Routing() (epoch uint64, route [][]string, ok bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if !cl.haveRt {
		return 0, nil, false
	}
	return cl.repoch, cloneRoute(cl.route), true
}

// OpenStaged returns the two-phase deltas that were begun but never
// resolved, keyed by relation: the crash windows Recover must treat as
// possibly-committed.
func (cl *CoordLog) OpenStaged() map[string]map[string]uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make(map[string]map[string]uint64, len(cl.staged))
	for rel, toks := range cl.staged {
		cp := make(map[string]uint64, len(toks))
		for k, v := range toks {
			cp[k] = v
		}
		out[rel] = cp
	}
	return out
}

func (cl *CoordLog) openStagedLocked() []string {
	out := make([]string, 0, len(cl.staged))
	for rel := range cl.staged {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

// Compact forces an atomic log rewrite now.
func (cl *CoordLog) Compact() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.compactLocked()
}

// compactLocked rewrites the log as [latest routing][open staged
// begins] via temp+fsync+rename, then reopens the handle for appends.
// Threads the rename-side crash points: a before-rename death leaves
// the old log intact, an after-rename death leaves the new one — both
// complete, consistent images.
func (cl *CoordLog) compactLocked() error {
	var buf bytes.Buffer
	writeRec := func(rec *coordRecord) error {
		var pb bytes.Buffer
		if err := gob.NewEncoder(&pb).Encode(rec); err != nil {
			return err
		}
		return appendWALFrame(&buf, pb.Bytes())
	}
	if cl.haveRt {
		if err := writeRec(&coordRecord{Routing: &routingRecord{Epoch: cl.repoch, Route: cl.route}}); err != nil {
			return err
		}
	}
	for _, rel := range cl.openStagedLocked() {
		if err := writeRec(&coordRecord{StagedBegin: &stagedBeginRecord{Relation: rel, Tokens: cl.staged[rel]}}); err != nil {
			return err
		}
	}
	tmp := cl.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		return err
	}
	if cl.crash.hit(CrashBeforeRename) {
		return ErrCrash
	}
	if err := os.Rename(tmp, cl.path); err != nil {
		return err
	}
	syncDir(filepath.Dir(cl.path))
	if cl.crash.hit(CrashAfterRename) {
		return ErrCrash
	}
	f, err := os.OpenFile(cl.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The rename already happened, so the old handle points at an
		// unlinked inode: appends there would silently vanish at the
		// next open. Drop the handle so later appends fail loudly.
		cl.f.Close()
		cl.f = nil
		return err
	}
	cl.f.Close()
	cl.f = f
	cl.pending = 0
	cl.compactions.Add(1)
	return nil
}

// CoordStats is the log's observability view.
type CoordStats struct {
	Appends, Compactions, CompactFailures uint64
	OpenStaged                            int
}

// Stats snapshots the counters.
func (cl *CoordLog) Stats() CoordStats {
	cl.mu.Lock()
	open := len(cl.staged)
	cl.mu.Unlock()
	return CoordStats{
		Appends:         cl.appends.Load(),
		Compactions:     cl.compactions.Load(),
		CompactFailures: cl.compactFailures.Load(),
		OpenStaged:      open,
	}
}

// Close releases the log file handle.
func (cl *CoordLog) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.f == nil {
		return nil
	}
	err := cl.f.Close()
	cl.f = nil
	return err
}

func cloneRoute(route [][]string) [][]string {
	out := make([][]string, len(route))
	for i, set := range route {
		out[i] = append([]string(nil), set...)
	}
	return out
}
