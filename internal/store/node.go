package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/wire"
)

// Node WAL record: exactly one of the three operation kinds, tagged
// with a monotonically increasing sequence number. The snapshot
// records the last sequence it covers, so replay after a crash between
// snapshot-rename and WAL-truncation skips already-absorbed records
// instead of double-applying them (ApplyOps would refuse a replayed
// delete, and a replayed install would roll committed deltas back).
type nodeRecord struct {
	Seq     uint64
	Install *installRecord
	Remove  *removeRecord
	Commit  *commitRecord
}

// installRecord carries a full slice — the wire.Snapshot encoding the
// rest of the system already uses for relation images.
type installRecord struct {
	Relation string
	Spec     partition.Spec
	Shard    int
	Snap     []byte
}

type removeRecord struct {
	Relation string
	Shard    int
}

// commitShardRecord is one shard's share of a committed distributed
// delta: the identity-keyed ops that transform the previously durable
// slice into the committed one, and the digest the result must hash
// to. FullSnap is the self-healing fallback: if at log time the ops
// replay does not reproduce PostDigest on a clone (the store's mirror
// drifted from the serving state, e.g. after an injected crash the
// process survived), the record carries the full slice instead —
// correctness never rests on the diff round-tripping.
type commitShardRecord struct {
	Shard      int
	Ops        []delta.Op
	PostDigest hashx.Digest
	FullSnap   []byte
}

type commitRecord struct {
	Relation string
	Shards   []commitShardRecord
}

// nodeSnapshot is the compaction image: every hosted slice (as
// wire.Snapshot bytes) plus the per-shard bookkeeping, and the WAL
// sequence it absorbs.
type nodeSnapshot struct {
	Seq  uint64
	Rels []snapRelation
}

type snapRelation struct {
	Relation string
	Spec     partition.Spec
	Shards   []snapShard
}

type snapShard struct {
	Shard         int
	InstallDigest hashx.Digest
	Deltas        uint64
	Snap          []byte
}

// relMirror is the in-memory double of one relation's durable state.
// The store maintains it on every append so snapshots never have to
// read the serving layer's tables (and so never touch its locks); the
// slice pointers are the same immutable published snapshots the
// serving store holds.
type relMirror struct {
	spec    partition.Spec
	slices  map[int]*core.SignedRelation
	install map[int]hashx.Digest
	deltas  map[int]uint64
}

func newRelMirror(spec partition.Spec) *relMirror {
	return &relMirror{
		spec:    spec,
		slices:  map[int]*core.SignedRelation{},
		install: map[int]hashx.Digest{},
		deltas:  map[int]uint64{},
	}
}

// DefaultSnapshotEvery is the appends-per-snapshot compaction cadence
// when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 64

// Options parameterizes OpenNode.
type Options struct {
	Hasher *hashx.Hasher
	// SnapshotEvery is how many WAL appends trigger a compacting
	// snapshot; 0 = DefaultSnapshotEvery, negative disables automatic
	// snapshots (Snapshot can still be called explicitly).
	SnapshotEvery int
	// Crash is the injection seam; nil (production) never fires.
	Crash *Crasher
}

// LoadReport describes what a cold start found on disk. Nothing in it
// is fatal: corruption yields refusals (empty or partial state the
// coordinator repairs), never a wrong answer — but every refusal is
// named here so operators see what the disk lost.
type LoadReport struct {
	// SnapshotSeq is the WAL sequence the loaded snapshot absorbed (0
	// when starting without one).
	SnapshotSeq uint64
	// SnapshotErr is the ErrSnapshotTorn-wrapped reason the snapshot
	// was refused, when it was; the store started from an empty image.
	SnapshotErr error
	// TornTail is the ErrWALTorn-wrapped reason the WAL tail was
	// truncated, when it was. Records before the tear replayed.
	TornTail error
	// Replayed counts WAL records applied on top of the snapshot;
	// Skipped counts records the snapshot had already absorbed.
	Replayed, Skipped int
	// Refused lists slices dropped during replay ("relation/shard:
	// reason") — decode failures or post-replay digest mismatches. The
	// serving layer re-checks everything that remains against the
	// owner's key before serving it.
	Refused []string
}

// NodeStore is a shard node's durable state: an append-only WAL of
// installs, removes and committed deltas, compacted by periodic
// snapshots. Every mutation is synced to the WAL before the caller
// hears success (append-before-acknowledge). All methods are
// goroutine-safe.
type NodeStore struct {
	dir      string
	walPath  string
	snapPath string
	h        *hashx.Hasher
	every    int
	crash    *Crasher

	mu      sync.Mutex
	f       *os.File
	seq     uint64 // last appended sequence
	snapSeq uint64 // sequence absorbed by the latest snapshot
	pending int    // WAL records not yet absorbed by a snapshot
	rels    map[string]*relMirror

	appends, snapshots, snapFailures, coldStarts atomic.Uint64
	lastSnapUnix                                 atomic.Int64
}

// OpenNode opens (creating if needed) a node store in dir and recovers
// its state: latest snapshot, plus every WAL record after it. Disk
// corruption is never fatal — a torn snapshot starts empty, a torn WAL
// tail is truncated, an inconsistent slice is dropped — and every such
// refusal lands in the LoadReport. Only environmental I/O failures
// (permissions, full disk) return an error.
func OpenNode(dir string, opts Options) (*NodeStore, *LoadReport, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	h := opts.Hasher
	if h == nil {
		h = hashx.New()
	}
	every := opts.SnapshotEvery
	if every == 0 {
		every = DefaultSnapshotEvery
	}
	ns := &NodeStore{
		dir:      dir,
		walPath:  filepath.Join(dir, "node.wal"),
		snapPath: filepath.Join(dir, "node.snap"),
		h:        h,
		every:    every,
		crash:    opts.Crash,
		rels:     map[string]*relMirror{},
	}
	rep := &LoadReport{}

	// 1. Snapshot: the base image. Torn or undecodable → start empty.
	if payload, err := loadSnapshotFile(ns.snapPath); err != nil {
		if !isTorn(err) {
			return nil, nil, err
		}
		rep.SnapshotErr = err
	} else if payload != nil {
		var snap nodeSnapshot
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); derr != nil {
			rep.SnapshotErr = fmt.Errorf("%w: undecodable payload: %v", ErrSnapshotTorn, derr)
		} else {
			ns.snapSeq = snap.Seq
			ns.seq = snap.Seq
			rep.SnapshotSeq = snap.Seq
			for _, sr := range snap.Rels {
				rm := newRelMirror(sr.Spec)
				for _, sh := range sr.Shards {
					sl, derr := decodeSlice(sh.Snap)
					if derr != nil {
						rep.Refused = append(rep.Refused,
							fmt.Sprintf("%s/%d: snapshot slice: %v", sr.Relation, sh.Shard, derr))
						continue
					}
					rm.slices[sh.Shard] = sl
					rm.install[sh.Shard] = sh.InstallDigest
					rm.deltas[sh.Shard] = sh.Deltas
				}
				if len(rm.slices) > 0 {
					ns.rels[sr.Relation] = rm
				}
			}
		}
	}

	// 2. WAL: replay everything after the snapshot. A torn tail is
	// truncated at open so the next append lands on a record boundary.
	f, payloads, torn, err := openWAL(ns.walPath)
	if err != nil {
		return nil, nil, err
	}
	ns.f = f
	rep.TornTail = torn
	for _, payload := range payloads {
		var rec nodeRecord
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); derr != nil {
			// CRC-valid but undecodable: version skew or silent disk
			// corruption. Refuse the record and everything after it —
			// later records may depend on this one's effect.
			rep.TornTail = fmt.Errorf("%w: undecodable record after seq %d: %v", ErrWALTorn, ns.seq, derr)
			break
		}
		if rec.Seq <= ns.snapSeq {
			rep.Skipped++
			continue
		}
		ns.applyRecord(&rec, rep)
		ns.seq = rec.Seq
		ns.pending++
		rep.Replayed++
	}
	ns.coldStarts.Add(1)
	return ns, rep, nil
}

func isTorn(err error) bool {
	return errors.Is(err, ErrSnapshotTorn) || errors.Is(err, ErrWALTorn)
}

// applyRecord folds one replayed WAL record into the mirror. Failures
// refuse the affected slice (dropping it) rather than guessing.
func (ns *NodeStore) applyRecord(rec *nodeRecord, rep *LoadReport) {
	switch {
	case rec.Install != nil:
		in := rec.Install
		sl, err := decodeSlice(in.Snap)
		if err != nil {
			rep.Refused = append(rep.Refused, fmt.Sprintf("%s/%d: install replay: %v", in.Relation, in.Shard, err))
			return
		}
		rm := ns.rels[in.Relation]
		if rm == nil {
			rm = newRelMirror(in.Spec)
			ns.rels[in.Relation] = rm
		} else if in.Spec.Version >= rm.spec.Version {
			rm.spec = in.Spec
		}
		rm.slices[in.Shard] = sl
		rm.install[in.Shard] = partition.SliceDigest(ns.h, sl)
		rm.deltas[in.Shard] = 0
	case rec.Remove != nil:
		rm := ns.rels[rec.Remove.Relation]
		if rm == nil {
			return
		}
		delete(rm.slices, rec.Remove.Shard)
		delete(rm.install, rec.Remove.Shard)
		delete(rm.deltas, rec.Remove.Shard)
		if len(rm.slices) == 0 {
			delete(ns.rels, rec.Remove.Relation)
		}
	case rec.Commit != nil:
		cr := rec.Commit
		rm := ns.rels[cr.Relation]
		for _, cs := range cr.Shards {
			refuse := func(why string) {
				rep.Refused = append(rep.Refused, fmt.Sprintf("%s/%d: commit replay: %s", cr.Relation, cs.Shard, why))
				if rm != nil {
					delete(rm.slices, cs.Shard)
					delete(rm.install, cs.Shard)
					delete(rm.deltas, cs.Shard)
				}
			}
			if rm == nil || rm.slices[cs.Shard] == nil {
				refuse("commit for a slice the log never installed")
				continue
			}
			var next *core.SignedRelation
			if len(cs.FullSnap) > 0 {
				sl, err := decodeSlice(cs.FullSnap)
				if err != nil {
					refuse(fmt.Sprintf("full-slice fallback: %v", err))
					continue
				}
				next = sl
			} else {
				sl := rm.slices[cs.Shard].Clone()
				if _, err := delta.ApplyOps(sl, delta.Delta{Relation: cr.Relation, Ops: cs.Ops}); err != nil {
					refuse(fmt.Sprintf("ops replay: %v", err))
					continue
				}
				next = sl
			}
			if dg := partition.SliceDigest(ns.h, next); !dg.Equal(cs.PostDigest) {
				refuse("post-delta digest mismatch")
				continue
			}
			rm.slices[cs.Shard] = next
			rm.deltas[cs.Shard]++
		}
		if rm != nil && len(rm.slices) == 0 {
			delete(ns.rels, cr.Relation)
		}
	}
}

// append encodes and durably appends one record, then updates the
// mirror via apply and possibly compacts. apply runs only after the
// record is synced — the mirror never gets ahead of the disk.
func (ns *NodeStore) append(build func(seq uint64) *nodeRecord, apply func()) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	rec := build(ns.seq + 1)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return err
	}
	if err := appendRecord(ns.f, ns.crash, buf.Bytes()); err != nil {
		return err
	}
	ns.seq++
	ns.pending++
	ns.appends.Add(1)
	apply()
	if ns.every > 0 && ns.pending >= ns.every {
		// Compaction is best-effort: the WAL already holds everything,
		// so a failed snapshot costs replay time, never durability.
		if err := ns.snapshotLocked(); err != nil {
			ns.snapFailures.Add(1)
		}
	}
	return nil
}

// LogInstall durably records hosting a slice. Call before publishing
// or acknowledging the install; an error means the install must be
// refused. digest is the slice digest at install time.
func (ns *NodeStore) LogInstall(rel string, spec partition.Spec, shard int, sl *core.SignedRelation, digest hashx.Digest) error {
	snap, err := encodeSlice(sl)
	if err != nil {
		return err
	}
	return ns.append(func(seq uint64) *nodeRecord {
		return &nodeRecord{Seq: seq, Install: &installRecord{Relation: rel, Spec: spec, Shard: shard, Snap: snap}}
	}, func() {
		rm := ns.rels[rel]
		if rm == nil {
			rm = newRelMirror(spec)
			ns.rels[rel] = rm
		} else if spec.Version >= rm.spec.Version {
			rm.spec = spec
		}
		rm.slices[shard] = sl
		rm.install[shard] = digest
		rm.deltas[shard] = 0
	})
}

// LogRemove durably records dropping a slice.
func (ns *NodeStore) LogRemove(rel string, shard int) error {
	return ns.append(func(seq uint64) *nodeRecord {
		return &nodeRecord{Seq: seq, Remove: &removeRecord{Relation: rel, Shard: shard}}
	}, func() {
		if rm := ns.rels[rel]; rm != nil {
			delete(rm.slices, shard)
			delete(rm.install, shard)
			delete(rm.deltas, shard)
			if len(rm.slices) == 0 {
				delete(ns.rels, rel)
			}
		}
	})
}

// CommitShard is one shard's transition in a committed delta: the
// previously published slice, the staged successor, and the
// successor's digest (computed by the caller, reused for serving).
type CommitShard struct {
	Shard      int
	Old, New   *core.SignedRelation
	PostDigest hashx.Digest
}

// LogCommit durably records a committed distributed delta as per-shard
// identity-keyed ops. Call before publishing; an error means the
// commit must be refused. Each shard's ops are proven to reproduce the
// staged slice on a clone before they are trusted to the log; a shard
// whose diff does not round-trip is logged as a full slice instead.
func (ns *NodeStore) LogCommit(rel string, shards []CommitShard) error {
	recs := make([]commitShardRecord, 0, len(shards))
	for _, cs := range shards {
		rec := commitShardRecord{Shard: cs.Shard, PostDigest: cs.PostDigest}
		ok := false
		if cs.Old != nil {
			d := delta.Diff(cs.Old, cs.New)
			probe := cs.Old.Clone()
			if _, err := delta.ApplyOps(probe, d); err == nil &&
				partition.SliceDigest(ns.h, probe).Equal(cs.PostDigest) {
				rec.Ops = d.Ops
				ok = true
			}
		}
		if !ok {
			snap, err := encodeSlice(cs.New)
			if err != nil {
				return err
			}
			rec.FullSnap = snap
		}
		recs = append(recs, rec)
	}
	return ns.append(func(seq uint64) *nodeRecord {
		return &nodeRecord{Seq: seq, Commit: &commitRecord{Relation: rel, Shards: recs}}
	}, func() {
		rm := ns.rels[rel]
		if rm == nil {
			return
		}
		for _, cs := range shards {
			if rm.slices[cs.Shard] != nil {
				rm.slices[cs.Shard] = cs.New
				rm.deltas[cs.Shard]++
			}
		}
	})
}

// Snapshot forces a compacting snapshot now.
func (ns *NodeStore) Snapshot() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.snapshotLocked()
}

func (ns *NodeStore) snapshotLocked() error {
	img := nodeSnapshot{Seq: ns.seq}
	for _, rel := range sortedRelNames(ns.rels) {
		rm := ns.rels[rel]
		sr := snapRelation{Relation: rel, Spec: rm.spec}
		shards := make([]int, 0, len(rm.slices))
		for i := range rm.slices {
			shards = append(shards, i)
		}
		sort.Ints(shards)
		for _, i := range shards {
			snap, err := encodeSlice(rm.slices[i])
			if err != nil {
				return err
			}
			sr.Shards = append(sr.Shards, snapShard{
				Shard: i, InstallDigest: rm.install[i], Deltas: rm.deltas[i], Snap: snap,
			})
		}
		img.Rels = append(img.Rels, sr)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		return err
	}
	if err := writeSnapshotFile(ns.snapPath, ns.crash, buf.Bytes()); err != nil {
		return err
	}
	// The snapshot is durable under its real name: the WAL records it
	// absorbed are dead weight. A crash inside this truncation replays
	// them against the snapshot's sequence and skips every one.
	if err := ns.f.Truncate(0); err != nil {
		return err
	}
	if _, err := ns.f.Seek(0, 0); err != nil {
		return err
	}
	if err := ns.f.Sync(); err != nil {
		return err
	}
	ns.snapSeq = ns.seq
	ns.pending = 0
	ns.snapshots.Add(1)
	ns.lastSnapUnix.Store(time.Now().Unix())
	return nil
}

// RecoveredShard is one slice as recovered from disk, for the serving
// layer to self-check and publish.
type RecoveredShard struct {
	Shard         int
	Slice         *core.SignedRelation
	InstallDigest hashx.Digest
	Deltas        uint64
}

// RecoveredRelation is one relation's recovered hosting state.
type RecoveredRelation struct {
	Spec   partition.Spec
	Shards []RecoveredShard
}

// Recovered snapshots the store's current state — after OpenNode, the
// cold-start image the serving layer verifies against the owner's key
// before publishing any of it.
func (ns *NodeStore) Recovered() map[string]RecoveredRelation {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make(map[string]RecoveredRelation, len(ns.rels))
	for _, rel := range sortedRelNames(ns.rels) {
		rm := ns.rels[rel]
		rr := RecoveredRelation{Spec: rm.spec}
		shards := make([]int, 0, len(rm.slices))
		for i := range rm.slices {
			shards = append(shards, i)
		}
		sort.Ints(shards)
		for _, i := range shards {
			rr.Shards = append(rr.Shards, RecoveredShard{
				Shard: i, Slice: rm.slices[i],
				InstallDigest: rm.install[i], Deltas: rm.deltas[i],
			})
		}
		out[rel] = rr
	}
	return out
}

// Drop removes a slice from the store's mirror and logs the removal —
// the serving layer calls it when a recovered slice fails its crypto
// self-check, so the refusal is durable too.
func (ns *NodeStore) Drop(rel string, shard int) error {
	return ns.LogRemove(rel, shard)
}

// NodeStats is the store's /statsz and /metrics view.
type NodeStats struct {
	// WALAppends counts durable record appends; Snapshots counts
	// compactions; SnapshotFailures counts best-effort compactions
	// that failed (durability unaffected — the WAL retains the tail).
	WALAppends, Snapshots, SnapshotFailures uint64
	// ColdStarts counts recoveries from disk (1 per process).
	ColdStarts uint64
	// LastSnapshotUnix is the wall time of the last successful
	// snapshot (0 before the first in this process).
	LastSnapshotUnix int64
	// Seq is the last appended WAL sequence; SnapshotSeq is the last
	// sequence a snapshot absorbed; Pending is the replay depth a
	// crash right now would pay.
	Seq, SnapshotSeq uint64
	Pending          int
}

// Stats snapshots the counters.
func (ns *NodeStore) Stats() NodeStats {
	ns.mu.Lock()
	seq, snapSeq, pending := ns.seq, ns.snapSeq, ns.pending
	ns.mu.Unlock()
	return NodeStats{
		WALAppends:       ns.appends.Load(),
		Snapshots:        ns.snapshots.Load(),
		SnapshotFailures: ns.snapFailures.Load(),
		ColdStarts:       ns.coldStarts.Load(),
		LastSnapshotUnix: ns.lastSnapUnix.Load(),
		Seq:              seq,
		SnapshotSeq:      snapSeq,
		Pending:          pending,
	}
}

// Dir returns the store's directory.
func (ns *NodeStore) Dir() string { return ns.dir }

// Close releases the WAL file handle. No flush is needed: every append
// synced before acknowledging.
func (ns *NodeStore) Close() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.f == nil {
		return nil
	}
	err := ns.f.Close()
	ns.f = nil
	return err
}

// encodeSlice serializes one slice in the wire.Snapshot format the
// rest of the system uses for relation images.
func encodeSlice(sl *core.SignedRelation) ([]byte, error) {
	return wire.EncodeSnapshot(&wire.Snapshot{Relation: sl})
}

func decodeSlice(b []byte) (*core.SignedRelation, error) {
	snap, err := wire.DecodeSnapshot(b)
	if err != nil {
		return nil, err
	}
	if snap.Relation == nil {
		return nil, fmt.Errorf("store: slice snapshot holds no relation")
	}
	return snap.Relation, nil
}

func sortedRelNames(m map[string]*relMirror) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
