package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadWALRecord drives the production WAL decode path with
// arbitrary bytes: every outcome must be a whole record, io.EOF, or an
// ErrWALTorn-named refusal — never a panic, never a silent skip.
func FuzzReadWALRecord(f *testing.F) {
	f.Add(frames([]byte("seed-record")))
	f.Add(frames([]byte("one"), []byte("two")))
	f.Add(frames([]byte{})[:4])           // short header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length, short header
	f.Add(frames(bytes.Repeat([]byte{7}, 300))[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadWALRecord(r)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrWALTorn) {
					t.Fatalf("unnamed decode failure: %v", err)
				}
				return
			}
			// A record that decoded must re-encode to a frame that
			// decodes to itself.
			re, err := ReadWALRecord(bytes.NewReader(frames(payload)))
			if err != nil || !bytes.Equal(re, payload) {
				t.Fatalf("re-encode round trip broke: %v", err)
			}
		}
	})
}

// FuzzReadSnapshot drives the production snapshot unframing with
// arbitrary bytes: success means an exact canonical round trip, failure
// must be ErrSnapshotTorn-named.
func FuzzReadSnapshot(f *testing.F) {
	f.Add(EncodeSnapshotFile([]byte("seed-payload")))
	f.Add(EncodeSnapshotFile(nil))
	f.Add([]byte("vcqr-store-snap-1\n"))
	f.Add(EncodeSnapshotFile([]byte("truncated"))[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrSnapshotTorn) {
				t.Fatalf("unnamed decode failure: %v", err)
			}
			return
		}
		// The framing is canonical: a payload that read back must
		// re-encode to exactly the input image.
		if !bytes.Equal(EncodeSnapshotFile(payload), data) {
			t.Fatalf("accepted image is not the canonical encoding of its payload")
		}
	})
}
