// Package store is the durable storage tier of the cluster: a per-node
// append-only WAL plus periodic snapshots (NodeStore), and the
// coordinator's routing/staged-token log (CoordLog).
//
// The store is untrusted by construction — the same argument that lets
// the system add replicas, caches and peers without trusting them. A
// node restarting from disk replays its WAL on top of the latest
// snapshot and then self-checks every recovered slice against the
// owner's public key (AggIndex.VerifyRange over the owned region, plus
// the full install-time validation) before serving a byte of it. A
// corrupted, truncated or rolled-back disk therefore yields an honest
// refusal — the slice is dropped and the coordinator re-installs it —
// never a wrong answer. Nothing downstream changes: the unmodified
// client verifier remains the only trust boundary.
//
// Durability discipline: every mutation appends to the WAL (and syncs)
// BEFORE the node acknowledges it — append-before-acknowledge — so an
// acknowledged install or delta commit survives a SIGKILL. Snapshots
// are pure compaction: written to a temp file, fsynced, renamed into
// place, and only then is the WAL truncated; every record carries a
// sequence number and the snapshot records the last one it covers, so
// a crash between rename and truncation replays idempotently.
package store

import (
	"errors"
	"sync"
)

// CrashPoint names one injection site in the write path. The five
// points cover every distinct durability state a crash can leave:
// before anything hit disk, mid-record (a torn tail), after the record
// is durable but before the caller was acknowledged, and either side
// of a snapshot's atomic rename.
type CrashPoint int

// Crash points, in write-path order.
const (
	// CrashNone is the zero value: nothing armed.
	CrashNone CrashPoint = iota
	// CrashBeforeAppend dies before any byte of the record is written.
	CrashBeforeAppend
	// CrashMidRecord dies with the record's header and half its payload
	// on disk — the torn tail recovery must truncate away.
	CrashMidRecord
	// CrashAfterAppend dies after the record is durable (synced) but
	// before the store's in-memory state or the caller saw it — the
	// acknowledged-or-not ambiguity window.
	CrashAfterAppend
	// CrashBeforeRename dies with the snapshot fully written to its
	// temp file but not yet renamed into place.
	CrashBeforeRename
	// CrashAfterRename dies with the snapshot renamed into place but
	// the WAL not yet truncated — the double-apply window sequence
	// numbers exist for.
	CrashAfterRename
)

// CrashPoints lists every injectable point, for matrix tests.
var CrashPoints = []CrashPoint{
	CrashBeforeAppend, CrashMidRecord, CrashAfterAppend,
	CrashBeforeRename, CrashAfterRename,
}

func (p CrashPoint) String() string {
	switch p {
	case CrashNone:
		return "none"
	case CrashBeforeAppend:
		return "before-append"
	case CrashMidRecord:
		return "mid-record"
	case CrashAfterAppend:
		return "after-append"
	case CrashBeforeRename:
		return "before-rename"
	case CrashAfterRename:
		return "after-rename"
	}
	return "unknown"
}

// ErrCrash is the injected-death error: a write path that hits an armed
// crash point stops exactly there, as a SIGKILL at that instant would.
var ErrCrash = errors.New("store: injected crash")

// Crasher is the deterministic crash-point seam, in the spirit of
// cluster.Injector: production code never constructs one — a nil
// *Crasher never fires — it is exported because the recovery matrix
// tests in other packages drive the same seam the real write path runs
// through. Arming is one-shot: the first write that reaches the armed
// point consumes it, so a test kills exactly one operation.
type Crasher struct {
	mu    sync.Mutex
	armed CrashPoint
	fired int
}

// Arm sets the next crash point. CrashNone disarms.
func (c *Crasher) Arm(p CrashPoint) {
	c.mu.Lock()
	c.armed = p
	c.mu.Unlock()
}

// Fired reports how many injected crashes have fired.
func (c *Crasher) Fired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// hit consumes the armed point if it matches. Nil-safe: the production
// path passes a nil Crasher and never fires.
func (c *Crasher) hit(p CrashPoint) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.armed != p {
		return false
	}
	c.armed = CrashNone
	c.fired++
	return true
}
