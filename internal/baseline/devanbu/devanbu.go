// Package devanbu implements the baseline scheme of Devanbu, Gertz,
// Martel and Stubblebine, "Authentic Data Publication over the Internet"
// (IFIP 11.3, 2000) — the only prior work providing completeness
// verification, and the comparison target throughout Pang et al. (SIGMOD
// 2005).
//
// The owner builds one Merkle hash tree over each sort order of a table
// and signs the root. To prove a range result [a, b] complete, the
// publisher expands it with the tuples immediately beyond both boundaries
// and ships a contiguous-range proof against the signed root. The
// characteristics Section 2.3 of Pang et al. enumerates — and that this
// implementation deliberately reproduces — are:
//
//  1. one tree per sort order;
//  2. the VO grows logarithmically with the base table;
//  3. whole tuples are hashed, so projected-out attributes (BLOBs
//     included) must still be shipped for verification;
//  4. the two boundary tuples are disclosed to the user, which can
//     contradict row-level access control (the Figure 1 problem);
//  5. every update propagates to the root digest (a locking hot-spot).
package devanbu

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"vcqr/internal/hashx"
	"vcqr/internal/mht"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// Verification failures.
var (
	ErrRange     = errors.New("devanbu: malformed query range")
	ErrBoundary  = errors.New("devanbu: boundary tuples do not bracket the range")
	ErrProof     = errors.New("devanbu: range proof does not match the signed root")
	ErrSignature = errors.New("devanbu: root signature invalid")
	ErrOrder     = errors.New("devanbu: result tuples out of order")
)

// SignedTable is a table authenticated the Devanbu way: sentinel tuples at
// the domain ends (so every query has boundary tuples), a Merkle tree over
// the encoded tuples, and a signed root.
type SignedTable struct {
	Schema relation.Schema
	L, U   uint64
	// Tuples holds sentinel(L), data..., sentinel(U), sorted by key.
	Tuples []relation.Tuple
	tree   *mht.Tree
	// RootSig is the owner's signature on the root digest.
	RootSig sig.Signature
}

// encodeTuple produces the canonical byte encoding hashed into each leaf.
// The whole tuple is encoded — characteristic (3) above.
func encodeTuple(t relation.Tuple) []byte {
	var buf bytes.Buffer
	buf.Write(hashx.U64(t.Key))
	buf.Write(hashx.U64(t.RowID))
	for _, a := range t.Attrs {
		buf.Write(a.Encode())
	}
	return buf.Bytes()
}

// Build signs a relation. The relation's tuples are copied; sentinels with
// keys L and U are added at the ends.
func Build(h *hashx.Hasher, key *sig.PrivateKey, rel *relation.Relation) (*SignedTable, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	st := &SignedTable{Schema: rel.Schema, L: rel.L, U: rel.U}
	st.Tuples = make([]relation.Tuple, 0, rel.Len()+2)
	st.Tuples = append(st.Tuples, relation.Tuple{Key: rel.L})
	for _, t := range rel.Tuples {
		st.Tuples = append(st.Tuples, t.Clone())
	}
	st.Tuples = append(st.Tuples, relation.Tuple{Key: rel.U})
	leaves := make([][]byte, len(st.Tuples))
	for i, t := range st.Tuples {
		leaves[i] = encodeTuple(t)
	}
	st.tree = mht.Build(h, leaves)
	st.RootSig = key.Sign(hashx.Digest(st.tree.Root()))
	return st, nil
}

// Root returns the tree root (for tests and size accounting).
func (st *SignedTable) Root() hashx.Digest { return st.tree.Root() }

// QueryResult is the expanded result the scheme ships: the qualifying
// tuples plus the two boundary tuples (disclosed in full — characteristic
// (4)), a contiguous-range Merkle proof, and the signed root.
type QueryResult struct {
	// Lo, Hi is the inclusive key range queried.
	Lo, Hi uint64
	// Tuples covers boundary-left, matches..., boundary-right.
	Tuples []relation.Tuple
	Proof  mht.RangeProof
	// Root and RootSig authenticate the tree.
	Root    hashx.Digest
	RootSig sig.Signature
}

// Query answers an inclusive range [lo, hi].
func (st *SignedTable) Query(h *hashx.Hasher, lo, hi uint64) (*QueryResult, error) {
	if lo > hi || lo <= st.L || hi >= st.U {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrRange, lo, hi)
	}
	a := sort.Search(len(st.Tuples), func(i int) bool { return st.Tuples[i].Key >= lo })
	b := sort.Search(len(st.Tuples), func(i int) bool { return st.Tuples[i].Key > hi })
	// Expand by one on each side: sentinels guarantee a-1 >= 0, b < len.
	proof, err := st.tree.ProveRange(a-1, b)
	if err != nil {
		return nil, err
	}
	out := &QueryResult{Lo: lo, Hi: hi, Proof: proof, Root: st.Root().Clone(), RootSig: st.RootSig.Clone()}
	for i := a - 1; i <= b; i++ {
		out.Tuples = append(out.Tuples, st.Tuples[i].Clone())
	}
	return out, nil
}

// Update replaces the tuple at data index i (0-based among data tuples)
// and re-signs the root. It returns the number of tree nodes recomputed —
// always the full path to the root, the Section 6.3 contrast with the
// chained-signature scheme's 3 local signatures.
func (st *SignedTable) Update(h *hashx.Hasher, key *sig.PrivateKey, i int, t relation.Tuple) (int, error) {
	if i < 0 || i >= len(st.Tuples)-2 {
		return 0, fmt.Errorf("devanbu: update index %d out of range", i)
	}
	st.Tuples[i+1] = t.Clone()
	work := st.tree.Update(i+1, h.Leaf(encodeTuple(t)))
	st.RootSig = key.Sign(hashx.Digest(st.tree.Root()))
	return work, nil
}

// Verify checks a query result: root signature, tuple ordering, boundary
// bracketing, and the Merkle range proof. On success it returns the
// qualifying tuples (without the boundary tuples).
func Verify(h *hashx.Hasher, pub *sig.PublicKey, res *QueryResult) ([]relation.Tuple, error) {
	if len(res.Tuples) < 2 {
		return nil, fmt.Errorf("%w: need at least the two boundary tuples", ErrBoundary)
	}
	if !pub.Verify(hashx.Digest(res.Root), res.RootSig) {
		return nil, ErrSignature
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i-1].Key > res.Tuples[i].Key {
			return nil, ErrOrder
		}
	}
	first, last := res.Tuples[0], res.Tuples[len(res.Tuples)-1]
	if first.Key >= res.Lo || last.Key <= res.Hi {
		return nil, fmt.Errorf("%w: [%d .. %d] vs query [%d, %d]", ErrBoundary, first.Key, last.Key, res.Lo, res.Hi)
	}
	for _, t := range res.Tuples[1 : len(res.Tuples)-1] {
		if t.Key < res.Lo || t.Key > res.Hi {
			return nil, fmt.Errorf("%w: interior tuple key %d outside range", ErrBoundary, t.Key)
		}
	}
	leaves := make([]hashx.Digest, len(res.Tuples))
	for i, t := range res.Tuples {
		leaves[i] = h.Leaf(encodeTuple(t))
	}
	if !mht.VerifyRange(h, res.Proof, leaves, hashx.Digest(res.Root)) {
		return nil, ErrProof
	}
	out := make([]relation.Tuple, len(res.Tuples)-2)
	copy(out, res.Tuples[1:len(res.Tuples)-1])
	return out, nil
}

// VOBytes returns the authentication overhead of a result in bytes:
// proof digests, root digest, root signature, plus the two boundary
// tuples (which the Pang scheme does not ship). Characteristic (3) means
// the *result* tuples also carry every attribute, but that is accounted
// as (inflated) payload, not VO.
func (res *QueryResult) VOBytes(digestSize, sigSize int) int {
	n := res.Proof.ProofSize()*digestSize + digestSize + sigSize
	n += res.Tuples[0].Size() + res.Tuples[len(res.Tuples)-1].Size()
	return n
}
