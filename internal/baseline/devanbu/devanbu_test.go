package devanbu

import (
	"math/rand"
	"sync"
	"testing"

	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		testKey = k
	})
	return testKey
}

func schema() relation.Schema {
	return relation.Schema{
		Name:    "Emp",
		KeyName: "Salary",
		Cols: []relation.Column{
			{Name: "Name", Type: relation.TypeString},
			{Name: "Photo", Type: relation.TypeBytes},
		},
	}
}

func buildTable(t testing.TB, keys []uint64) (*hashx.Hasher, *SignedTable) {
	t.Helper()
	h := hashx.New()
	rel, err := relation.New(schema(), 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, err := rel.Insert(relation.Tuple{Key: k, Attrs: []relation.Value{
			relation.StringVal(string(rune('A' + i%26))), relation.BytesVal(make([]byte, 32)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Build(h, signKey(t), rel)
	if err != nil {
		t.Fatal(err)
	}
	return h, st
}

var paperKeys = []uint64{2000, 3500, 8010, 12100, 25000}

func TestQueryRoundTrip(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	pub := signKey(t).Public()
	res, err := st.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := Verify(h, pub, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 {
		t.Fatalf("got %d tuples, want 3", len(tuples))
	}
	// Characteristic (4): the scheme disclosed the 12100 boundary tuple.
	last := res.Tuples[len(res.Tuples)-1]
	if last.Key != 12100 {
		t.Fatalf("boundary tuple key = %d, want 12100 (disclosure characteristic)", last.Key)
	}
}

func TestAllRangesRoundTrip(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	pub := signKey(t).Public()
	cases := []struct {
		lo, hi uint64
		n      int
	}{
		{1, 99999, 5},     // whole table
		{2000, 2000, 1},   // point
		{4000, 8000, 0},   // empty interior
		{30000, 99999, 0}, // beyond last
		{1, 1999, 0},      // before first
		{3500, 12100, 3},  // middle
	}
	for _, c := range cases {
		res, err := st.Query(h, c.lo, c.hi)
		if err != nil {
			t.Fatalf("[%d,%d]: %v", c.lo, c.hi, err)
		}
		tuples, err := Verify(h, pub, res)
		if err != nil {
			t.Fatalf("[%d,%d] verify: %v", c.lo, c.hi, err)
		}
		if len(tuples) != c.n {
			t.Fatalf("[%d,%d]: %d tuples, want %d", c.lo, c.hi, len(tuples), c.n)
		}
	}
}

func TestQueryRangeValidation(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	for _, c := range [][2]uint64{{50, 10}, {0, 10}, {10, 100000}} {
		if _, err := st.Query(h, c[0], c[1]); err == nil {
			t.Errorf("range [%d,%d] accepted", c[0], c[1])
		}
	}
}

func TestOmissionDetected(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	pub := signKey(t).Public()
	res, err := st.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	// Drop an interior tuple: the range proof no longer matches.
	res.Tuples = append(res.Tuples[:2], res.Tuples[3:]...)
	if _, err := Verify(h, pub, res); err == nil {
		t.Fatal("omitted tuple not detected")
	}
}

func TestBoundaryTrimDetected(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	pub := signKey(t).Public()
	res, err := st.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last qualifying tuple AND present the range proof of the
	// narrower window, relabelled: the boundary check must catch it.
	inner, err := st.Query(h, 1, 8009)
	if err != nil {
		t.Fatal(err)
	}
	inner.Lo, inner.Hi = res.Lo, res.Hi
	if _, err := Verify(h, pub, inner); err == nil {
		t.Fatal("trimmed result accepted")
	}
}

func TestTamperDetected(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	pub := signKey(t).Public()
	res, err := st.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	res.Tuples[1].Attrs[0] = relation.StringVal("X")
	if _, err := Verify(h, pub, res); err == nil {
		t.Fatal("tampered value not detected")
	}
}

func TestForgedRootDetected(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	pub := signKey(t).Public()
	res, err := st.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	res.Root[0] ^= 0xff
	if _, err := Verify(h, pub, res); err == nil {
		t.Fatal("forged root not detected")
	}
}

func TestUpdatePropagatesToRoot(t *testing.T) {
	h, st := buildTable(t, paperKeys)
	k := signKey(t)
	oldRoot := st.Root().Clone()
	work, err := st.Update(h, k, 2, relation.Tuple{Key: 8010, Attrs: []relation.Value{
		relation.StringVal("updated"), relation.BytesVal(nil),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if work < 2 {
		t.Fatalf("update touched %d nodes; root propagation expected", work)
	}
	if st.Root().Equal(oldRoot) {
		t.Fatal("root unchanged after update")
	}
	// Queries still verify after the update.
	res, err := st.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(h, k.Public(), res); err != nil {
		t.Fatalf("verify after update: %v", err)
	}
}

func TestVOBytesGrowWithTableSize(t *testing.T) {
	// Characteristic (2): VO grows logarithmically with table size.
	h1, st1 := buildTable(t, paperKeys)
	rng := rand.New(rand.NewSource(5))
	big := make([]uint64, 1000)
	seen := map[uint64]bool{}
	for i := range big {
		for {
			k := uint64(rng.Intn(99998)) + 1
			if !seen[k] {
				seen[k] = true
				big[i] = k
				break
			}
		}
	}
	h2, st2 := buildTable(t, big)
	r1, err := st1.Query(h1, 40000, 40001)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st2.Query(h2, 40000, 40001)
	if err != nil {
		t.Fatal(err)
	}
	b1 := r1.VOBytes(h1.Size(), signKey(t).Public().SigBytes())
	b2 := r2.VOBytes(h2.Size(), signKey(t).Public().SigBytes())
	if b2 <= b1 {
		t.Fatalf("VO bytes did not grow with table size: %d vs %d", b1, b2)
	}
}

func TestEmptyTable(t *testing.T) {
	h, st := buildTable(t, nil)
	pub := signKey(t).Public()
	res, err := st.Query(h, 1, 99999)
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := Verify(h, pub, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 0 {
		t.Fatalf("empty table returned %d tuples", len(tuples))
	}
}
