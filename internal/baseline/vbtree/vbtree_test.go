package vbtree

import (
	"sync"
	"testing"

	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		testKey = k
	})
	return testKey
}

func buildIndex(t testing.TB, keys []uint64) (*hashx.Hasher, *SignedIndex) {
	t.Helper()
	h := hashx.New()
	rel, err := relation.New(relation.Schema{
		Name: "T", KeyName: "K",
		Cols: []relation.Column{{Name: "V", Type: relation.TypeString}},
	}, 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, err := rel.Insert(relation.Tuple{Key: k, Attrs: []relation.Value{
			relation.StringVal(string(rune('a' + i%26))),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	si, err := Build(h, signKey(t), rel)
	if err != nil {
		t.Fatal(err)
	}
	return h, si
}

var keys = []uint64{2000, 3500, 8010, 12100, 25000, 30000, 44000}

func TestAuthenticityRoundTrip(t *testing.T) {
	h, si := buildIndex(t, keys)
	pub := signKey(t).Public()
	for _, c := range [][2]uint64{{1, 9999}, {3500, 30000}, {2000, 2000}, {1, 99999}} {
		res, err := si.Query(h, c[0], c[1])
		if err != nil {
			t.Fatalf("[%d,%d]: %v", c[0], c[1], err)
		}
		tuples, err := Verify(h, pub, res)
		if err != nil {
			t.Fatalf("[%d,%d] verify: %v", c[0], c[1], err)
		}
		for _, tp := range tuples {
			if tp.Key < c[0] || tp.Key > c[1] {
				t.Fatalf("[%d,%d]: out-of-range tuple %d", c[0], c[1], tp.Key)
			}
		}
	}
}

func TestTamperDetected(t *testing.T) {
	h, si := buildIndex(t, keys)
	pub := signKey(t).Public()
	res, err := si.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	res.Tuples[0].Attrs[0] = relation.StringVal("evil")
	if _, err := Verify(h, pub, res); err == nil {
		t.Fatal("tampered tuple not detected")
	}
}

func TestSpuriousDetected(t *testing.T) {
	h, si := buildIndex(t, keys)
	pub := signKey(t).Public()
	res, err := si.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	res.Tuples = append(res.Tuples, relation.Tuple{Key: 9000, Attrs: []relation.Value{
		relation.StringVal("ghost"),
	}})
	if _, err := Verify(h, pub, res); err == nil {
		t.Fatal("spurious tuple not detected")
	}
}

// TestCompletenessGap demonstrates the limitation Pang et al. address:
// a truncated result — the last qualifying tuple silently dropped —
// still VERIFIES under the VB-tree, because nothing ties the enveloping
// subtree to the query range.
func TestCompletenessGap(t *testing.T) {
	h, si := buildIndex(t, keys)
	pub := signKey(t).Public()
	honest, err := si.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	honestTuples, err := Verify(h, pub, honest)
	if err != nil {
		t.Fatal(err)
	}
	cheat, err := si.QueryTruncated(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	cheatTuples, err := Verify(h, pub, cheat)
	if err != nil {
		t.Fatalf("the whole point: truncated result should still verify, got %v", err)
	}
	if len(cheatTuples) != len(honestTuples)-1 {
		t.Fatalf("truncated result has %d tuples, honest %d", len(cheatTuples), len(honestTuples))
	}
}

func TestVerifyShapeChecks(t *testing.T) {
	h, si := buildIndex(t, keys)
	pub := signKey(t).Public()
	res, err := si.Query(h, 1, 9999)
	if err != nil {
		t.Fatal(err)
	}
	bad := *res
	bad.Fill = bad.Fill[:0]
	if _, err := Verify(h, pub, &bad); err == nil {
		t.Fatal("wrong fill count accepted")
	}
}
