// Package vbtree implements a simplified VB-tree in the spirit of Pang and
// Tan, "Authenticating Query Results in Edge Computing" (ICDE 2004) — the
// second related-work baseline of Section 2.3.
//
// Every node digest of a binary index over the tuples is individually
// signed by the owner, so a verification object only needs the smallest
// signed subtree enveloping the query result (no path to the root), and
// the tree is built from attribute digests so projection works. The
// crucial property Pang et al. (SIGMOD 2005) point out — and that the
// tests demonstrate — is that the VB-tree authenticates *values* but does
// NOT verify completeness: a publisher can drop boundary tuples and prove
// a smaller enveloping subtree instead.
package vbtree

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"vcqr/internal/hashx"
	"vcqr/internal/mht"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// Verification failures.
var (
	ErrSignature = errors.New("vbtree: node signature invalid")
	ErrProof     = errors.New("vbtree: tuples do not reproduce the signed node digest")
	ErrShape     = errors.New("vbtree: malformed proof")
)

// SignedIndex is a binary index with a signature per node.
type SignedIndex struct {
	Tuples []relation.Tuple
	tree   *mht.Tree
	// sigs[level][idx] signs the node digest at that position.
	sigs [][]sig.Signature
	// width is the padded leaf count.
	width int
}

// encodeTuple hashes the whole tuple into its leaf.
func encodeTuple(t relation.Tuple) []byte {
	var buf bytes.Buffer
	buf.Write(hashx.U64(t.Key))
	buf.Write(hashx.U64(t.RowID))
	for _, a := range t.Attrs {
		buf.Write(a.Encode())
	}
	return buf.Bytes()
}

// Build constructs the index and signs every node. Signing cost is O(n)
// signatures — the VB-tree's heavy build-time price, which the paper's
// update analysis (Section 6.3) also counts against digest hierarchies.
func Build(h *hashx.Hasher, key *sig.PrivateKey, rel *relation.Relation) (*SignedIndex, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	si := &SignedIndex{}
	si.Tuples = make([]relation.Tuple, rel.Len())
	leaves := make([][]byte, rel.Len())
	for i, t := range rel.Tuples {
		si.Tuples[i] = t.Clone()
		leaves[i] = encodeTuple(t)
	}
	si.tree = mht.Build(h, leaves)
	// Sign every node at every level.
	width := 1
	for width < len(leaves) {
		width <<= 1
	}
	if len(leaves) == 0 {
		width = 1
	}
	si.width = width
	for lvl, w := 0, width; w >= 1; lvl, w = lvl+1, w/2 {
		row := make([]sig.Signature, w)
		for i := 0; i < w; i++ {
			row[i] = key.Sign(si.nodeDigest(h, lvl, i))
		}
		si.sigs = append(si.sigs, row)
		if w == 1 {
			break
		}
	}
	return si, nil
}

// nodeDigest recomputes the digest of node (level, idx) from the tree.
func (si *SignedIndex) nodeDigest(h *hashx.Hasher, level, idx int) hashx.Digest {
	// Rebuild from leaf digests to avoid exposing mht internals: walk the
	// subtree.
	span := 1 << level
	lo := idx * span
	digs := make([]hashx.Digest, span)
	pad := h.Leaf([]byte("mht/pad"))
	for i := 0; i < span; i++ {
		if lo+i < len(si.Tuples) {
			digs[i] = h.Leaf(encodeTuple(si.Tuples[lo+i]))
		} else {
			digs[i] = pad
		}
	}
	for w := span; w > 1; w /= 2 {
		for i := 0; i < w/2; i++ {
			digs[i] = h.Node(digs[2*i], digs[2*i+1])
		}
	}
	return digs[0]
}

// QueryResult ships the tuples, the enveloping node coordinates, its
// signature, and the digests of subtree leaves outside the result.
type QueryResult struct {
	Lo, Hi uint64
	Tuples []relation.Tuple
	// Level, Index identify the signed enveloping node.
	Level, Index int
	NodeSig      sig.Signature
	// Fill holds digests for subtree leaf positions outside the result,
	// in position order.
	Fill []hashx.Digest
}

// Query answers [lo, hi] with the smallest signed enveloping subtree.
func (si *SignedIndex) Query(h *hashx.Hasher, lo, hi uint64) (*QueryResult, error) {
	a := sort.Search(len(si.Tuples), func(i int) bool { return si.Tuples[i].Key >= lo })
	b := sort.Search(len(si.Tuples), func(i int) bool { return si.Tuples[i].Key > hi })
	return si.proveWindow(h, lo, hi, a, b)
}

// proveWindow builds the proof for tuple window [a, b); exported behaviour
// for the completeness-gap demonstration lives in QueryTruncated.
func (si *SignedIndex) proveWindow(h *hashx.Hasher, lo, hi uint64, a, b int) (*QueryResult, error) {
	// The smallest enveloping node is the lowest level at which a and b-1
	// fall under the same node. An empty window degenerates to a single
	// leaf (clamped into the padded width).
	level := 0
	idx := a
	if b > a {
		for (a >> level) != ((b - 1) >> level) {
			level++
		}
		idx = a >> level
	} else if idx >= si.width {
		idx = si.width - 1
	}
	res := &QueryResult{Lo: lo, Hi: hi, Level: level, Index: idx, NodeSig: si.sigs[level][idx].Clone()}
	span := 1 << level
	start := idx * span
	pad := h.Leaf([]byte("mht/pad"))
	for i := start; i < start+span; i++ {
		if i >= a && i < b {
			res.Tuples = append(res.Tuples, si.Tuples[i].Clone())
			continue
		}
		if i < len(si.Tuples) {
			res.Fill = append(res.Fill, h.Leaf(encodeTuple(si.Tuples[i])))
		} else {
			res.Fill = append(res.Fill, pad)
		}
	}
	return res, nil
}

// QueryTruncated mimics a cheating publisher: it serves [lo, hi] but
// silently drops the last qualifying tuple, enveloping only the rest.
// The result still VERIFIES — the completeness gap the SIGMOD 2005 paper
// addresses.
func (si *SignedIndex) QueryTruncated(h *hashx.Hasher, lo, hi uint64) (*QueryResult, error) {
	a := sort.Search(len(si.Tuples), func(i int) bool { return si.Tuples[i].Key >= lo })
	b := sort.Search(len(si.Tuples), func(i int) bool { return si.Tuples[i].Key > hi })
	if b-a < 1 {
		return nil, fmt.Errorf("vbtree: nothing to truncate in [%d, %d]", lo, hi)
	}
	return si.proveWindow(h, lo, hi, a, b-1)
}

// Verify checks authenticity of the returned tuples: they must reproduce
// the signed enveloping-node digest. Note what is NOT checked — and
// cannot be, in this scheme: that the window covers the whole query range.
func Verify(h *hashx.Hasher, pub *sig.PublicKey, res *QueryResult) ([]relation.Tuple, error) {
	span := 1 << res.Level
	if len(res.Tuples)+len(res.Fill) != span {
		return nil, fmt.Errorf("%w: %d tuples + %d fill != %d", ErrShape, len(res.Tuples), len(res.Fill), span)
	}
	for _, t := range res.Tuples {
		if t.Key < res.Lo || t.Key > res.Hi {
			return nil, fmt.Errorf("%w: tuple key %d outside [%d, %d]", ErrShape, t.Key, res.Lo, res.Hi)
		}
	}
	// Reassemble the subtree: result tuples occupy a contiguous window;
	// fill digests cover the rest, in order. The publisher tells us where
	// the window starts implicitly by how many leading fill digests there
	// are — recompute both splits and accept either (left fill count is
	// determined by the smallest key position).
	for lead := 0; lead <= len(res.Fill); lead++ {
		digs := make([]hashx.Digest, 0, span)
		digs = append(digs, res.Fill[:lead]...)
		for _, t := range res.Tuples {
			digs = append(digs, h.Leaf(encodeTuple(t)))
		}
		digs = append(digs, res.Fill[lead:]...)
		d := digs
		for w := span; w > 1; w /= 2 {
			next := make([]hashx.Digest, w/2)
			for i := range next {
				next[i] = h.Node(d[2*i], d[2*i+1])
			}
			d = next
		}
		if pub.Verify(d[0], res.NodeSig) {
			out := make([]relation.Tuple, len(res.Tuples))
			copy(out, res.Tuples)
			return out, nil
		}
	}
	return nil, ErrProof
}
