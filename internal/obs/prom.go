package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4). The format is simple
// enough that writing it directly keeps the layer zero-dependency; the
// scrape-and-parse tests in the consuming packages pin the output shape.

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promLabels renders sorted key=value pairs as a {...} block ("" when
// empty).
func promLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = kv[0] + `="` + promEscape(kv[1]) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// CounterSeries is one sample of a counter family.
type CounterSeries struct {
	Labels [][2]string
	Value  float64
}

// WriteCounterFamily writes one counter family: TYPE/HELP header plus
// every series.
func WriteCounterFamily(w io.Writer, name, help string, series []CounterSeries) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(s.Labels), formatFloat(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteGaugeFamily writes one gauge family.
func WriteGaugeFamily(w io.Writer, name, help string, series []CounterSeries) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(s.Labels), formatFloat(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// HistSeries is one labeled histogram of a family.
type HistSeries struct {
	Labels [][2]string
	Snap   Snapshot
}

// WriteHistogramFamily writes one histogram family in seconds, with
// cumulative le buckets, _sum and _count per series.
func WriteHistogramFamily(w io.Writer, name, help string, series []HistSeries) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	bounds := BucketBounds()
	for _, s := range series {
		var cum uint64
		for i, b := range bounds {
			if i < len(s.Snap.Counts) {
				cum += s.Snap.Counts[i]
			}
			le := formatFloat(float64(b) / 1e9)
			lbl := append(append([][2]string{}, s.Labels...), [2]string{"le", le})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(lbl), cum); err != nil {
				return err
			}
		}
		cum = s.Snap.Count()
		lbl := append(append([][2]string{}, s.Labels...), [2]string{"le", "+Inf"})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(lbl), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.Labels), formatFloat(float64(s.Snap.SumNS)/1e9)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.Labels), cum); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// HistFamily converts a registry snapshot into a sorted histogram
// family: registry keys become a stage label plus any extra labels
// embedded via Labeled, and every series gains the fixed labels (e.g.
// the scraped node's address at the coordinator).
func HistFamily(hists map[string]Snapshot, fixed ...string) []HistSeries {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]HistSeries, 0, len(keys))
	for _, k := range keys {
		stage, extra := SplitName(k)
		labels := [][2]string{{"stage", stage}}
		for i := 0; i+1 < len(fixed); i += 2 {
			labels = append(labels, [2]string{fixed[i], fixed[i+1]})
		}
		labels = append(labels, extra...)
		out = append(out, HistSeries{Labels: labels, Snap: hists[k]})
	}
	return out
}

// MergeAll folds a set of snapshots (e.g. one registry's worth from each
// scraped node) into per-stage cluster aggregates, dropping embedded
// labels so every node's "substream|node=..." series merge into one
// "substream" total.
func MergeAll(sets ...map[string]Snapshot) map[string]Snapshot {
	out := make(map[string]Snapshot)
	for _, set := range sets {
		for k, s := range set {
			stage, _ := SplitName(k)
			out[stage] = out[stage].Merge(s)
		}
	}
	return out
}

// Export is the machine-readable snapshot a process serves at
// /metrics.json and a coordinator scrapes for cluster aggregation.
type Export struct {
	// Role identifies the process flavor: server, node, coordinator.
	Role string
	// BoundsNS echoes the bucket geometry so a reader can sanity-check
	// mergeability.
	BoundsNS []int64
	Hists    map[string]Snapshot
	// Counters carries the flat counters alongside (queries, errors...).
	Counters map[string]uint64
}

// WriteExport serves an Export as JSON.
func WriteExport(w http.ResponseWriter, e Export) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(e)
}

// DecodeExport parses a scraped /metrics.json body.
func DecodeExport(r io.Reader) (Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return Export{}, fmt.Errorf("obs: decode export: %w", err)
	}
	return e, nil
}

// SlowLogHandler serves the slow-query log as JSON, newest first.
// ?threshold=250ms adjusts the retention threshold live.
func SlowLogHandler(l *SlowLog) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if th := r.URL.Query().Get("threshold"); th != "" {
			d, err := parseDuration(th)
			if err != nil {
				http.Error(w, "bad threshold: "+err.Error(), http.StatusBadRequest)
				return
			}
			l.SetThreshold(d)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			ThresholdNS int64
			Entries     []SlowEntry
		}{int64(l.Threshold()), l.Entries()})
	}
}

func parseDuration(s string) (d time.Duration, err error) {
	return time.ParseDuration(s)
}

// RegisterDebug mounts the standard debug surface on a mux: expvar at
// /debug/vars, pprof under /debug/pprof/, and the slow log at
// /debug/slowlog when one is supplied. Every serving mode (server, node,
// coordinator) calls this so the debug surface is uniform; vcserve
// -debug-addr serves the same mux on a separate listener for deployments
// that keep diagnostics off the query port.
func RegisterDebug(mux *http.ServeMux, slow *SlowLog) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if slow != nil {
		mux.Handle("/debug/slowlog", SlowLogHandler(slow))
	}
}

// DebugMux returns a standalone debug mux (for -debug-addr).
func DebugMux(slow *SlowLog) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, slow)
	return mux
}
