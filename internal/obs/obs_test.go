package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramMergeProperty pins the mergeability contract the
// coordinator's cluster aggregation depends on:
// merge(snap(a), snap(b)) == snap(a+b) for any observation split.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var a, b, both Histogram
		n := 1 + rng.Intn(400)
		for i := 0; i < n; i++ {
			// Spread over nine decades, like real stage latencies.
			d := time.Duration(rng.Int63n(int64(40 * time.Second)))
			if rng.Intn(2) == 0 {
				d = time.Duration(rng.Int63n(int64(50 * time.Microsecond)))
			}
			if rng.Intn(2) == 0 {
				a.Observe(d)
			} else {
				b.Observe(d)
			}
			both.Observe(d)
		}
		merged := a.Snapshot().Merge(b.Snapshot())
		want := both.Snapshot()
		if merged.SumNS != want.SumNS {
			t.Fatalf("trial %d: merged sum %d, want %d", trial, merged.SumNS, want.SumNS)
		}
		if merged.Count() != want.Count() {
			t.Fatalf("trial %d: merged count %d, want %d", trial, merged.Count(), want.Count())
		}
		for i := range want.Counts {
			if merged.Counts[i] != want.Counts[i] {
				t.Fatalf("trial %d: bucket %d: merged %d, want %d", trial, i, merged.Counts[i], want.Counts[i])
			}
		}
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	a := Snapshot{Counts: []uint64{1, 2}, SumNS: 10}
	b := Snapshot{Counts: []uint64{0, 0, 5}, SumNS: 7}
	m := a.Merge(b)
	if len(m.Counts) != 3 || m.Counts[0] != 1 || m.Counts[1] != 2 || m.Counts[2] != 5 || m.SumNS != 17 {
		t.Fatalf("padded merge wrong: %+v", m)
	}
}

// TestQuantileBounds checks that quantile estimates land within the
// bucket geometry's worst-case error (one x1.5 bucket) of the truth.
func TestQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond) // uniform 0..10ms
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 5 * time.Millisecond},
		{0.95, 9500 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
	} {
		got := s.Quantile(tc.p)
		lo := time.Duration(float64(tc.want) / 1.6)
		hi := time.Duration(float64(tc.want) * 1.6)
		if got < lo || got > hi {
			t.Errorf("p%v = %v, want within [%v, %v]", tc.p, got, lo, hi)
		}
	}
	if s.Mean() < 4*time.Millisecond || s.Mean() > 6*time.Millisecond {
		t.Errorf("mean %v outside [4ms, 6ms]", s.Mean())
	}
	if (Snapshot{}).Quantile(0.5) != 0 {
		t.Errorf("empty snapshot quantile not 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != workers*per {
		t.Fatalf("count %d, want %d", got, workers*per)
	}
}

func TestNilAndDisabled(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Snapshot().Count() != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	d := Disabled()
	if d.Enabled() {
		t.Fatal("Disabled() registry reports enabled")
	}
	d.Observe(StageVerify, time.Second)
	if n := len(d.Snapshot()); n != 0 {
		t.Fatalf("disabled registry recorded %d hists", n)
	}
	if d.Slow.Record(SlowEntry{NS: int64(time.Hour)}) {
		t.Fatal("disabled slow log recorded")
	}
}

func TestLabeledRoundTrip(t *testing.T) {
	key := Labeled(StageSubStream, "node", "http://127.0.0.1:9000", "shard", "3")
	stage, labels := SplitName(key)
	if stage != StageSubStream {
		t.Fatalf("stage %q", stage)
	}
	if len(labels) != 2 || labels[0] != [2]string{"node", "http://127.0.0.1:9000"} || labels[1] != [2]string{"shard", "3"} {
		t.Fatalf("labels %v", labels)
	}
	if s, l := SplitName("plain"); s != "plain" || l != nil {
		t.Fatalf("plain split: %q %v", s, l)
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	l := NewSlowLog(4, 10*time.Millisecond)
	if l.Record(SlowEntry{Trace: "fast", NS: int64(time.Millisecond)}) {
		t.Fatal("below-threshold entry retained")
	}
	for i := 0; i < 10; i++ {
		ok := l.Record(SlowEntry{Trace: string(rune('a' + i)), NS: int64(time.Second) + int64(i)})
		if !ok {
			t.Fatalf("entry %d dropped", i)
		}
	}
	got := l.Entries()
	if len(got) != 4 {
		t.Fatalf("retained %d entries, want 4", len(got))
	}
	// Newest first: j, i, h, g.
	for i, want := range []string{"j", "i", "h", "g"} {
		if got[i].Trace != want {
			t.Fatalf("entry %d trace %q, want %q (all: %+v)", i, got[i].Trace, want, got)
		}
	}
	if l.Seen() != 10 {
		t.Fatalf("seen %d, want 10", l.Seen())
	}
	l.SetThreshold(-1)
	if l.Record(SlowEntry{NS: int64(time.Hour)}) {
		t.Fatal("disabled threshold retained entry")
	}
}

func TestSpan(t *testing.T) {
	sp := StartSpan("")
	if len(sp.Trace) != 16 {
		t.Fatalf("minted trace %q", sp.Trace)
	}
	sp2 := StartSpan("deadbeefdeadbeef")
	if sp2.Trace != "deadbeefdeadbeef" {
		t.Fatalf("propagated trace %q", sp2.Trace)
	}
	sp.Add(StageVerify, time.Millisecond)
	sp.AddNS(StageWireEncode, 2000)
	st := sp.Stages()
	if len(st) != 2 || st[0].Stage != StageVerify || st[1].NS != 2000 {
		t.Fatalf("stages %+v", st)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestPromHistogramOutput(t *testing.T) {
	var h Histogram
	h.Observe(50 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	var sb strings.Builder
	err := WriteHistogramFamily(&sb, "vcqr_stage_seconds", "per-stage latency",
		HistFamily(map[string]Snapshot{Labeled(StageSubStream, "node", "n1"): h.Snapshot()}))
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE vcqr_stage_seconds histogram",
		`vcqr_stage_seconds_bucket{stage="substream",node="n1",le="+Inf"} 3`,
		`vcqr_stage_seconds_count{stage="substream",node="n1"} 3`,
		`vcqr_stage_seconds_sum{stage="substream",node="n1"} 0.00405`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at the total.
	if strings.Count(out, "_bucket{") != NumBuckets+1 {
		t.Errorf("want %d bucket lines, got %d", NumBuckets+1, strings.Count(out, "_bucket{"))
	}
}

func TestMergeAllDropsLabels(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	m := MergeAll(
		map[string]Snapshot{Labeled(StageSubStream, "node", "n1"): a.Snapshot()},
		map[string]Snapshot{Labeled(StageSubStream, "node", "n2"): b.Snapshot()},
	)
	if len(m) != 1 {
		t.Fatalf("merged into %d series, want 1: %v", len(m), m)
	}
	if m[StageSubStream].Count() != 2 {
		t.Fatalf("merged count %d, want 2", m[StageSubStream].Count())
	}
}
