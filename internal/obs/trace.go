package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing. A trace ID is minted where a query enters the system
// (the coordinator, or a single-process server) and propagated to shard
// nodes in an *optional* wire field that old peers simply never decode —
// gob ignores unknown fields, so tracing deploys without a protocol
// version bump. Trace IDs are advisory: they label operational records
// (slow-log entries, timing trailers) and are never part of the verified
// material.

// traceSeed is mixed into every minted ID so IDs from different
// processes don't collide on a shared counter start.
var traceSeed = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var traceCtr atomic.Uint64

// NewTraceID mints a process-unique 16-hex-digit trace ID. The counter
// is mixed through a splitmix64 finalizer so successive IDs share no
// visible structure.
func NewTraceID() string {
	x := traceSeed + traceCtr.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	const hex = "0123456789abcdef"
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hex[x&0xf]
		x >>= 4
	}
	return string(out[:])
}

// StageDur is one stage's share of a request, serialized into slow-log
// entries and stream timing trailers (gob + JSON friendly).
type StageDur struct {
	Stage string
	NS    int64
}

// D returns the duration.
func (s StageDur) D() time.Duration { return time.Duration(s.NS) }

// Span accumulates the per-stage breakdown of one request under a trace
// ID. It is cheap enough to build unconditionally on serving paths; the
// slow log decides afterwards whether the finished span is worth keeping.
type Span struct {
	Trace string
	start time.Time

	mu     sync.Mutex
	stages []StageDur
}

// StartSpan opens a span. An empty trace mints a fresh ID, so every
// entry point can call StartSpan(req.Trace) and get propagation and
// minting in one line.
func StartSpan(trace string) *Span {
	if trace == "" {
		trace = NewTraceID()
	}
	return &Span{Trace: trace, start: time.Now()}
}

// Add appends one stage duration.
func (s *Span) Add(stage string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stages = append(s.stages, StageDur{Stage: stage, NS: int64(d)})
	s.mu.Unlock()
}

// AddNS appends one stage duration given in nanoseconds (the wire form).
func (s *Span) AddNS(stage string, ns int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stages = append(s.stages, StageDur{Stage: stage, NS: ns})
	s.mu.Unlock()
}

// Stages returns a copy of the recorded breakdown.
func (s *Span) Stages() []StageDur {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StageDur, len(s.stages))
	copy(out, s.stages)
	return out
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Elapsed returns the time since the span started.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// Slow-query log defaults.
const (
	// DefaultSlowLogCap bounds retained entries; the log is a ring, so
	// memory is fixed no matter how many queries cross the threshold.
	DefaultSlowLogCap = 128
	// DefaultSlowThreshold is the minimum total duration for a span to
	// be retained when the operator configures nothing.
	DefaultSlowThreshold = 100 * time.Millisecond
)

// SlowEntry is one retained slow request.
type SlowEntry struct {
	Trace string
	// Op names the serving path: query, batch, stream, delta, substream,
	// rebalance...
	Op string
	// Detail is free-form context (role/relation/span), never trusted.
	Detail string
	Start  time.Time
	NS     int64
	Stages []StageDur
}

// Total returns the entry's end-to-end duration.
func (e SlowEntry) Total() time.Duration { return time.Duration(e.NS) }

// SlowLog is a bounded ring of SlowEntry with an atomically adjustable
// threshold. Threshold <= 0 with capacity 0 disables it; threshold 0
// with capacity retains everything (useful in tests).
type SlowLog struct {
	thresholdNS atomic.Int64
	// capacity is fixed at construction; Record consults it before
	// taking the lock, so it must not live in the buf slice header
	// (which append rewrites under mu).
	capacity int

	mu   sync.Mutex
	buf  []SlowEntry
	next int
	seen uint64
}

// NewSlowLog creates a log retaining up to capacity entries at or above
// threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	l := &SlowLog{}
	if capacity > 0 {
		l.capacity = capacity
		l.buf = make([]SlowEntry, 0, capacity)
	}
	l.thresholdNS.Store(int64(threshold))
	return l
}

// SetThreshold adjusts the retention threshold; negative disables
// recording entirely.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.thresholdNS.Store(int64(d))
}

// Threshold returns the current retention threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return -1
	}
	return time.Duration(l.thresholdNS.Load())
}

// Record retains the entry when it meets the threshold, evicting the
// oldest entry once the ring is full. It reports whether the entry was
// kept.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil || l.capacity == 0 {
		return false
	}
	th := l.thresholdNS.Load()
	if th < 0 || e.NS < th {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return true
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	return true
}

// Finish closes a span into the log: one call records the span's stages
// under the given op/detail with the elapsed total.
func (l *SlowLog) Finish(sp *Span, op, detail string) {
	if l == nil || sp == nil {
		return
	}
	l.Record(SlowEntry{
		Trace:  sp.Trace,
		Op:     op,
		Detail: detail,
		Start:  sp.start,
		NS:     int64(time.Since(sp.start)),
		Stages: sp.Stages(),
	})
}

// Entries returns retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.buf))
	for i := 0; i < len(l.buf); i++ {
		// Walk backwards from the most recently written slot.
		idx := (l.next - 1 - i + 2*len(l.buf)) % len(l.buf)
		if len(l.buf) < cap(l.buf) {
			// Ring not yet wrapped: slots fill 0..len-1 in order.
			idx = len(l.buf) - 1 - i
		}
		out = append(out, l.buf[idx])
	}
	return out
}

// Seen returns how many entries have ever been retained (including ones
// since evicted).
func (l *SlowLog) Seen() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// FormatNS renders a nanosecond count for human output (vcquery
// -timing): microsecond precision below 10ms, millisecond above.
func FormatNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < 10*time.Millisecond:
		return strconv.FormatFloat(float64(ns)/1e3, 'f', 1, 64) + "µs"
	case d < 10*time.Second:
		return strconv.FormatFloat(float64(ns)/1e6, 'f', 2, 64) + "ms"
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}
