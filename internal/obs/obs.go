// Package obs is the observability layer: stage timers, lock-free
// log-bucketed latency histograms, request tracing with a bounded
// slow-query log, and a Prometheus-text export tier. It depends only on
// the standard library so every other package can import it freely.
//
// The histogram is custom (rather than a fixed-quantile sketch) for one
// reason: mergeability. A coordinator scrapes its shard nodes' snapshots
// and folds them into cluster-level aggregates; log-spaced buckets with
// plain counters merge by addition with no loss beyond the bucket
// resolution itself. Buckets grow by a factor of ~1.5, which keeps the
// worst-case quantile error under ~25% across nine decades of latency
// (100ns to ~40s) in a fixed 48+1 slots of 8 bytes each.
//
// Nothing recorded here participates in verification: trace IDs, stage
// durations and histogram state are advisory operational data. The
// signature chain alone proves result integrity (see DESIGN.md,
// "Observability").
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i spans
// (bounds[i-1], bounds[i]] nanoseconds; one extra overflow bucket counts
// observations beyond the last bound.
const NumBuckets = 48

// bucketBounds holds the upper bound of each finite bucket in
// nanoseconds: 100ns × 1.5^i, precomputed at init so Observe is a binary
// search over a read-only table.
var bucketBounds [NumBuckets]int64

func init() {
	b := 100.0
	for i := range bucketBounds {
		bucketBounds[i] = int64(b)
		b *= 1.5
	}
}

// BucketBounds returns the shared bucket upper bounds in nanoseconds.
// All histograms in a process (and across processes built from the same
// source) use the same geometry — that is what makes snapshots mergeable.
func BucketBounds() []int64 {
	out := make([]int64, NumBuckets)
	copy(out[:], bucketBounds[:])
	return out
}

// Histogram is a lock-free latency histogram: one atomic counter per
// bucket plus an atomic sum. Observe is safe from any number of
// goroutines and never allocates. A nil *Histogram is a valid no-op
// recorder, so disabled instrumentation costs one branch.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Uint64
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(NumBuckets, func(i int) bool { return bucketBounds[i] >= ns })
	h.counts[i].Add(1)
	h.sumNS.Add(ns)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0))
}

// Snapshot captures a consistent-enough copy of the histogram for
// merging, quantile extraction and export. Counters are read
// individually, so a snapshot taken under concurrent writes may be off
// by in-flight observations — fine for monitoring, never used for
// verification.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	s.Counts = make([]uint64, NumBuckets+1)
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumNS = h.sumNS.Load()
	return s
}

// Snapshot is the portable state of a histogram: per-bucket counts plus
// the exact sum of observed nanoseconds. Snapshots from any process
// sharing the bucket geometry merge by addition.
type Snapshot struct {
	Counts []uint64
	SumNS  int64
}

// Count returns the total number of observations.
func (s Snapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge returns the sum of two snapshots. Length mismatches (snapshots
// from a build with different bucket geometry) are handled by padding to
// the longer shape so no counts are silently dropped.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	n := len(s.Counts)
	if len(o.Counts) > n {
		n = len(o.Counts)
	}
	out := Snapshot{Counts: make([]uint64, n), SumNS: s.SumNS + o.SumNS}
	for i := range s.Counts {
		out.Counts[i] += s.Counts[i]
	}
	for i := range o.Counts {
		out.Counts[i] += o.Counts[i]
	}
	return out
}

// Quantile returns an estimate of the p-quantile (0 < p <= 1) with
// linear interpolation inside the landing bucket. An empty snapshot
// returns 0; ranks landing in the overflow bucket return the last finite
// bound (a floor, not an estimate).
func (s Snapshot) Quantile(p float64) time.Duration {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= NumBuckets {
			return time.Duration(bucketBounds[NumBuckets-1])
		}
		lo := int64(0)
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := bucketBounds[i]
		frac := (rank - prev) / float64(c)
		return time.Duration(lo + int64(frac*float64(hi-lo)))
	}
	return time.Duration(bucketBounds[NumBuckets-1])
}

// Mean returns the exact mean of observed durations.
func (s Snapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(n))
}

// Stage names recorded across the serving stack. A registry key is
// either a bare stage name or "stage|key=value[,key=value...]" when the
// series carries extra labels (e.g. per-node sub-stream latency).
const (
	StageCacheLookup  = "cache_lookup"      // server: VO cache probe
	StageVOAssemble   = "vo_assemble"       // server/engine: materialized VO build
	StageStreamChunk  = "stream_chunk"      // per-chunk assembly (ResultStream.Next)
	StageStreamTotal  = "stream_total"      // whole-stream drain, first byte to footer
	StageAggIndex     = "agg_index"         // engine: product-tree range aggregate
	StageSeamCheck    = "seam_check"        // cluster: hand-off / seam proof checks
	StageFanoutMerge  = "fanout_merge"      // engine/cluster: cross-shard merge wait
	StageWireEncode   = "wire_encode"       // server: chunk frame encode + flush
	StageVerify       = "verify"            // client: per-chunk verifier cost
	StageQueryTotal   = "query_total"       // server: materialized query end to end
	StageDeltaApply   = "delta_apply"       // server: single-process delta ingest
	StageSubStream    = "substream"         // coordinator: per-node shard sub-stream
	StagePinFeeds     = "pin_feeds"         // coordinator: epoch-pinned fan-out open
	StageDeltaPrepare = "delta_prepare"     // cluster: two-phase delta, prepare
	StageDeltaMirror  = "delta_mirror"      // cluster: two-phase delta, mirror fixes
	StageDeltaSeam    = "delta_seam"        // cluster: two-phase delta, seam re-proof
	StageDeltaCommit  = "delta_commit"      // cluster: two-phase delta, commit
	StageRebalCopy    = "rebalance_copy"    // cluster: migration copy + catch-up
	StageRebalCutover = "rebalance_cutover" // cluster: migration cutover lock window
	StageCacheGet     = "cache_get"         // cluster: edge-cache tier probe
	StageCacheFill    = "cache_fill"        // cluster: origin tee into an async cache fill
	StageFailover     = "failover"          // cluster: mid-stream re-pin to a sibling replica
)

// Labeled builds a registry key carrying extra labels:
// Labeled(StageSubStream, "node", url) -> "substream|node=<url>".
func Labeled(stage string, kv ...string) string {
	key := stage
	for i := 0; i+1 < len(kv); i += 2 {
		sep := "|"
		if i > 0 {
			sep = ","
		}
		key += sep + kv[i] + "=" + kv[i+1]
	}
	return key
}

// SplitName splits a registry key back into the stage name and its extra
// label pairs.
func SplitName(key string) (stage string, labels [][2]string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			stage = key[:i]
			rest := key[i+1:]
			for len(rest) > 0 {
				part := rest
				if j := indexByte(rest, ','); j >= 0 {
					part, rest = rest[:j], rest[j+1:]
				} else {
					rest = ""
				}
				if j := indexByte(part, '='); j >= 0 {
					labels = append(labels, [2]string{part[:j], part[j+1:]})
				}
			}
			return stage, labels
		}
	}
	return key, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Registry holds a process's named stage histograms and its slow-query
// log. Hist is get-or-create; hot paths should resolve their histogram
// pointers once and call Observe directly. A disabled registry (see
// Disabled) hands out nil histograms so instrumentation collapses to a
// nil check.
type Registry struct {
	disabled bool
	mu       sync.RWMutex
	hists    map[string]*Histogram

	// Slow is the bounded slow-query log fed by the serving layers.
	Slow *SlowLog
}

// NewRegistry creates an enabled registry with a default slow-query log
// (capacity DefaultSlowLogCap, threshold DefaultSlowThreshold).
func NewRegistry() *Registry {
	return &Registry{
		hists: make(map[string]*Histogram),
		Slow:  NewSlowLog(DefaultSlowLogCap, DefaultSlowThreshold),
	}
}

// Disabled returns a registry whose histograms are nil no-op recorders
// and whose slow log never records — the baseline for measuring
// instrumentation overhead (vcbench -exp obs).
func Disabled() *Registry {
	return &Registry{
		disabled: true,
		hists:    make(map[string]*Histogram),
		Slow:     NewSlowLog(0, -1),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// Hist returns the named histogram, creating it on first use. On a nil
// or disabled registry it returns nil, which is a valid no-op recorder.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil || r.disabled {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Observe records d into the named histogram (convenience for cold
// paths; hot paths cache the *Histogram).
func (r *Registry) Observe(name string, d time.Duration) {
	r.Hist(name).Observe(d)
}

// Snapshot captures every histogram in the registry.
func (r *Registry) Snapshot() map[string]Snapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Snapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}
