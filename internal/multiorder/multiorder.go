// Package multiorder supports range-verifiable queries on more than one
// attribute of the same relation.
//
// Section 6.3 of the paper: "the owner has to pre-generate signatures on
// each attribute or group of attributes that are expected to participate
// in the query conditions. This is analogous to creating B+-trees on
// those attributes." And the conclusion lists avoiding the per-sort-order
// signature sets (via multi-dimensional indices) as future work.
//
// This package implements the scheme's present answer: one signed
// ordering per interesting attribute, built from the same master tuples,
// with a router that picks the ordering matching a query's range column
// and an accounting of the signing-cost multiplier — the baseline any
// future multi-dimensional extension has to beat.
//
// A secondary ordering on column A re-keys the relation by A's value
// (mapped into a declared uint64 domain) and stores the original sort key
// as an ordinary column, so results from a secondary ordering still carry
// the primary key and verify with the standard machinery.
package multiorder

import (
	"errors"
	"fmt"

	"vcqr/internal/core"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// PrimaryKeyCol is the column name under which a secondary ordering
// stores the relation's original sort-key value.
const PrimaryKeyCol = "__primary"

// Errors.
var (
	ErrNoOrder  = errors.New("multiorder: no signed ordering for that column")
	ErrColType  = errors.New("multiorder: ordering column must be an int column")
	ErrColRange = errors.New("multiorder: column value outside the declared domain")
)

// OrderSpec declares a secondary ordering: the column, its value domain
// (open interval, like the primary key's), and the chain base.
type OrderSpec struct {
	Col  string
	L, U uint64
	Base uint64
}

// Table bundles the primary signed ordering with any number of secondary
// orderings over the same tuples.
type Table struct {
	// Primary is the relation signed on its natural sort key.
	Primary *core.SignedRelation
	// Secondary maps column name -> the signed re-keyed relation.
	Secondary map[string]*core.SignedRelation
	// Signatures is the total number of record signatures across all
	// orderings — the multiplier the future-work extension targets.
	Signatures int
}

// orderName builds the derived relation name.
func orderName(base, col string) string { return base + "/by-" + col }

// OrderRelationName returns the name under which the ordering for col is
// registered with a publisher (the primary ordering keeps the relation's
// own name).
func OrderRelationName(rel string, col string) string { return orderName(rel, col) }

// deriveSchema builds the schema of a secondary ordering: keyed by col,
// with the original key prepended as PrimaryKeyCol and every other
// original column retained (so projection and filters keep working).
func deriveSchema(s relation.Schema, col string) (relation.Schema, int, error) {
	idx := s.ColIndex(col)
	if idx < 0 {
		return relation.Schema{}, 0, fmt.Errorf("multiorder: no column %q in %q", col, s.Name)
	}
	if s.Cols[idx].Type != relation.TypeInt {
		return relation.Schema{}, 0, fmt.Errorf("%w: %q is %v", ErrColType, col, s.Cols[idx].Type)
	}
	out := relation.Schema{
		Name:    orderName(s.Name, col),
		KeyName: col,
		Cols:    []relation.Column{{Name: PrimaryKeyCol, Type: relation.TypeInt}},
	}
	for i, c := range s.Cols {
		if i == idx {
			continue
		}
		out.Cols = append(out.Cols, c)
	}
	return out, idx, nil
}

// Build signs the relation under its primary order and under each
// requested secondary ordering.
func Build(h *hashx.Hasher, key *sig.PrivateKey, rel *relation.Relation, primaryBase uint64, specs []OrderSpec) (*Table, error) {
	p, err := core.NewParams(rel.L, rel.U, primaryBase)
	if err != nil {
		return nil, err
	}
	primary, err := core.Build(h, key, p, rel)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Primary:    primary,
		Secondary:  make(map[string]*core.SignedRelation, len(specs)),
		Signatures: rel.Len() + 2,
	}
	for _, spec := range specs {
		schema, idx, err := deriveSchema(rel.Schema, spec.Col)
		if err != nil {
			return nil, err
		}
		derived, err := relation.New(schema, spec.L, spec.U)
		if err != nil {
			return nil, err
		}
		for _, tp := range rel.Tuples {
			v := tp.Attrs[idx]
			if v.Int < 0 || uint64(v.Int) <= spec.L || uint64(v.Int) >= spec.U {
				return nil, fmt.Errorf("%w: %q = %d not in (%d, %d)", ErrColRange, spec.Col, v.Int, spec.L, spec.U)
			}
			attrs := make([]relation.Value, 0, len(tp.Attrs))
			attrs = append(attrs, relation.IntVal(int64(tp.Key)))
			for i, a := range tp.Attrs {
				if i == idx {
					continue
				}
				attrs = append(attrs, a)
			}
			if _, err := derived.Insert(relation.Tuple{Key: uint64(v.Int), Attrs: attrs}); err != nil {
				return nil, err
			}
		}
		sp, err := core.NewParams(spec.L, spec.U, spec.Base)
		if err != nil {
			return nil, err
		}
		sr, err := core.Build(h, key, sp, derived)
		if err != nil {
			return nil, err
		}
		t.Secondary[spec.Col] = sr
		t.Signatures += derived.Len() + 2
	}
	return t, nil
}

// For routes a range predicate on the named column to the signed ordering
// that can prove it: the primary relation when col is the primary key
// attribute, otherwise the matching secondary ordering.
func (t *Table) For(col string) (*core.SignedRelation, error) {
	if col == t.Primary.Schema.KeyName {
		return t.Primary, nil
	}
	sr, ok := t.Secondary[col]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoOrder, col)
	}
	return sr, nil
}

// All returns every signed ordering, primary first — convenient for
// registering with a publisher.
func (t *Table) All() []*core.SignedRelation {
	out := []*core.SignedRelation{t.Primary}
	for _, spec := range t.orderedCols() {
		out = append(out, t.Secondary[spec])
	}
	return out
}

// orderedCols returns secondary columns in deterministic order.
func (t *Table) orderedCols() []string {
	cols := make([]string, 0, len(t.Secondary))
	for c := range t.Secondary {
		cols = append(cols, c)
	}
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	return cols
}

// CostMultiplier returns the signing-cost ratio over a single ordering:
// the quantity a multi-dimensional scheme would aim to bring back to 1.
func (t *Table) CostMultiplier() float64 {
	base := t.Primary.Len() + 2
	if base == 0 {
		return 0
	}
	return float64(t.Signatures) / float64(base)
}
