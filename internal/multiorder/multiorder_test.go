package multiorder_test

import (
	"errors"
	"sync"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/multiorder"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

func empRel(t testing.TB) *relation.Relation {
	schema := relation.Schema{
		Name:    "Emp",
		KeyName: "Salary",
		Cols: []relation.Column{
			{Name: "ID", Type: relation.TypeInt},
			{Name: "Name", Type: relation.TypeString},
			{Name: "Dept", Type: relation.TypeInt},
		},
	}
	rel, err := relation.New(schema, 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		salary uint64
		id     int64
		name   string
		dept   int64
	}{
		{2000, 5, "A", 1}, {3500, 2, "C", 2}, {8010, 1, "D", 1},
		{12100, 4, "B", 3}, {25000, 3, "E", 2},
	} {
		if _, err := rel.Insert(relation.Tuple{Key: r.salary, Attrs: []relation.Value{
			relation.IntVal(r.id), relation.StringVal(r.name), relation.IntVal(r.dept),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func buildTable(t testing.TB) (*hashx.Hasher, *multiorder.Table) {
	t.Helper()
	h := hashx.New()
	tab, err := multiorder.Build(h, signKey(t), empRel(t), 2, []multiorder.OrderSpec{
		{Col: "Dept", L: 0, U: 64, Base: 2},
		{Col: "ID", L: 0, U: 1024, Base: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, tab
}

func TestBuildShapeAndCost(t *testing.T) {
	_, tab := buildTable(t)
	if len(tab.Secondary) != 2 {
		t.Fatalf("secondary orderings = %d", len(tab.Secondary))
	}
	// 3 orderings x (5 records + 2 delimiters) = 21 signatures.
	if tab.Signatures != 21 {
		t.Fatalf("Signatures = %d, want 21", tab.Signatures)
	}
	if m := tab.CostMultiplier(); m != 3 {
		t.Fatalf("CostMultiplier = %v, want 3", m)
	}
	if len(tab.All()) != 3 {
		t.Fatalf("All() = %d relations", len(tab.All()))
	}
}

func TestRouting(t *testing.T) {
	_, tab := buildTable(t)
	if sr, err := tab.For("Salary"); err != nil || sr != tab.Primary {
		t.Fatalf("For(Salary): %v", err)
	}
	if sr, err := tab.For("Dept"); err != nil || sr.Schema.KeyName != "Dept" {
		t.Fatalf("For(Dept): %v", err)
	}
	if _, err := tab.For("Name"); !errors.Is(err, multiorder.ErrNoOrder) {
		t.Fatalf("For(Name): %v", err)
	}
}

// TestRangeOnSecondaryAttribute is the point of the package: "Dept = 1"
// — a range predicate on an unsorted attribute of the base table —
// becomes a completeness-verifiable range query on the Dept ordering,
// with the salary recoverable from the PrimaryKeyCol column.
func TestRangeOnSecondaryAttribute(t *testing.T) {
	h, tab := buildTable(t)
	sr, err := tab.For("Dept")
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	pub := engine.NewPublisher(h, signKey(t).Public(), accessctl.NewPolicy(role))
	for _, o := range tab.All() {
		if err := pub.AddRelation(o, true); err != nil {
			t.Fatal(err)
		}
	}
	q := engine.Query{Relation: sr.Schema.Name, KeyLo: 1, KeyHi: 1} // Dept = 1
	res, err := pub.Execute("all", q)
	if err != nil {
		t.Fatal(err)
	}
	v := verify.New(h, signKey(t).Public(), sr.Params, sr.Schema)
	rows, err := v.VerifyResult(q, role, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Dept=1 rows = %d, want 2", len(rows))
	}
	// Recover the primary keys (salaries 2000 and 8010).
	pkIdx := sr.Schema.ColIndex(multiorder.PrimaryKeyCol)
	salaries := map[int64]bool{}
	for _, r := range rows {
		for _, d := range r.Values {
			if d.Col == pkIdx {
				salaries[d.Val.Int] = true
			}
		}
	}
	if !salaries[2000] || !salaries[8010] || len(salaries) != 2 {
		t.Fatalf("recovered salaries %v, want {2000, 8010}", salaries)
	}
}

// TestSecondaryOrderingDetectsOmission: the completeness guarantee holds
// on secondary orderings too.
func TestSecondaryOrderingDetectsOmission(t *testing.T) {
	h, tab := buildTable(t)
	sr, err := tab.For("Dept")
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	pub := engine.NewPublisher(h, signKey(t).Public(), accessctl.NewPolicy(role))
	if err := pub.AddRelation(sr, false); err != nil {
		t.Fatal(err)
	}
	adv := engine.NewAdversary(pub)
	q := engine.Query{Relation: sr.Schema.Name, KeyLo: 1, KeyHi: 2}
	evil, err := adv.Execute("all", q, engine.AttackOmitFirst)
	if err != nil {
		t.Fatal(err)
	}
	v := verify.New(h, signKey(t).Public(), sr.Params, sr.Schema)
	if _, err := v.VerifyResult(q, role, evil); err == nil {
		t.Fatal("omission on secondary ordering not detected")
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	h := hashx.New()
	// Non-int column.
	if _, err := multiorder.Build(h, signKey(t), empRel(t), 2, []multiorder.OrderSpec{
		{Col: "Name", L: 0, U: 64, Base: 2},
	}); err == nil {
		t.Fatal("string ordering column accepted")
	}
	// Unknown column.
	if _, err := multiorder.Build(h, signKey(t), empRel(t), 2, []multiorder.OrderSpec{
		{Col: "Bogus", L: 0, U: 64, Base: 2},
	}); err == nil {
		t.Fatal("unknown ordering column accepted")
	}
	// Value outside the declared domain (Dept values are 1..3; domain
	// (0, 3) excludes 3).
	if _, err := multiorder.Build(h, signKey(t), empRel(t), 2, []multiorder.OrderSpec{
		{Col: "Dept", L: 0, U: 3, Base: 2},
	}); !errors.Is(err, multiorder.ErrColRange) {
		t.Fatalf("out-of-domain value: %v", err)
	}
}

func TestDuplicateSecondaryKeys(t *testing.T) {
	// Two employees share Dept 1 and Dept 2: replica numbering on the
	// derived relation must keep the orderings valid.
	h, tab := buildTable(t)
	sr, _ := tab.For("Dept")
	if err := sr.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("Dept ordering invalid: %v", err)
	}
}
