// Package graphauth generalizes the completeness-verification scheme to
// directed acyclic graphs — the second future-work direction named in the
// paper's conclusion ("generalizing the proposed scheme for
// non-relational structures, e.g. directed acyclic graphs").
//
// The construction reduces graph queries to the relational machinery:
//
//   - a signed *node index*: the sorted list of node identifiers, so the
//     existence or absence of any node is verifiable;
//   - one signed *adjacency list per node*: the sorted successor ids, so
//     "the successors of u (in an id range)" is a completeness-verifiable
//     range query — including the empty answer.
//
// Because empty adjacency ranges are provable, *negative* facts become
// verifiable: a publisher can prove "u has no edge to any node in
// [a, b]", and by induction over verified frontiers, "v is not reachable
// from u within k hops" (VerifyUnreachable). That is exactly the
// completeness property lifted from tuples to edges.
package graphauth

import (
	"errors"
	"fmt"
	"sort"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
)

// Relation naming inside the publisher.
const (
	nodesRelation = "graph/nodes"
	adjPrefix     = "graph/adj/"
)

// Errors.
var (
	ErrCycle  = errors.New("graphauth: graph has a cycle")
	ErrNode   = errors.New("graphauth: node id outside the open domain")
	ErrNoSuch = errors.New("graphauth: no such node")
	ErrDepth  = errors.New("graphauth: depth must be positive")
)

// adjName returns the relation name of node u's adjacency list.
func adjName(u uint64) string { return fmt.Sprintf("%s%d", adjPrefix, u) }

// nodeSchema and adjSchema are the derived relational schemas. Adjacency
// tuples have no non-key attributes: the successor id IS the key, and the
// row-id leaf alone feeds the per-record attribute tree.
func nodeSchema() relation.Schema {
	return relation.Schema{Name: nodesRelation, KeyName: "node"}
}
func adjSchema(u uint64) relation.Schema {
	return relation.Schema{Name: adjName(u), KeyName: "succ"}
}

// SignedDAG is the owner-produced authenticated graph.
type SignedDAG struct {
	Params core.Params
	// Nodes is the signed node index.
	Nodes *core.SignedRelation
	// Adj maps node id -> its signed adjacency list.
	Adj map[uint64]*core.SignedRelation
}

// Build signs a DAG given its adjacency map. Node ids must lie in the
// open interval (l, u); the graph must be acyclic (checked).
func Build(h *hashx.Hasher, key *sig.PrivateKey, adj map[uint64][]uint64, l, u, base uint64) (*SignedDAG, error) {
	p, err := core.NewParams(l, u, base)
	if err != nil {
		return nil, err
	}
	// Collect the node set: every source and every target.
	set := map[uint64]bool{}
	for v, succs := range adj {
		set[v] = true
		for _, s := range succs {
			set[s] = true
		}
	}
	ids := make([]uint64, 0, len(set))
	for v := range set {
		if v <= l || v >= u {
			return nil, fmt.Errorf("%w: %d", ErrNode, v)
		}
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if err := checkAcyclic(adj); err != nil {
		return nil, err
	}

	nodes, err := relation.New(nodeSchema(), l, u)
	if err != nil {
		return nil, err
	}
	for _, v := range ids {
		if _, err := nodes.Insert(relation.Tuple{Key: v}); err != nil {
			return nil, err
		}
	}
	signedNodes, err := core.Build(h, key, p, nodes)
	if err != nil {
		return nil, err
	}
	out := &SignedDAG{Params: p, Nodes: signedNodes, Adj: make(map[uint64]*core.SignedRelation, len(ids))}
	for _, v := range ids {
		list, err := relation.New(adjSchema(v), l, u)
		if err != nil {
			return nil, err
		}
		seen := map[uint64]bool{}
		for _, s := range adj[v] {
			if seen[s] {
				continue // parallel edges collapse
			}
			seen[s] = true
			if _, err := list.Insert(relation.Tuple{Key: s}); err != nil {
				return nil, err
			}
		}
		sr, err := core.Build(h, key, p, list)
		if err != nil {
			return nil, err
		}
		out.Adj[v] = sr
	}
	return out, nil
}

// checkAcyclic runs a colouring DFS.
func checkAcyclic(adj map[uint64][]uint64) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := map[uint64]int{}
	var visit func(v uint64) error
	visit = func(v uint64) error {
		colour[v] = grey
		for _, s := range adj[v] {
			switch colour[s] {
			case grey:
				return fmt.Errorf("%w: back edge %d -> %d", ErrCycle, v, s)
			case white:
				if err := visit(s); err != nil {
					return err
				}
			}
		}
		colour[v] = black
		return nil
	}
	for v := range adj {
		if colour[v] == white {
			if err := visit(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Publisher hosts a signed DAG and answers graph queries with VOs.
type Publisher struct {
	pub  *engine.Publisher
	dag  *SignedDAG
	role accessctl.Role
}

// NewPublisher wraps a signed DAG. The graph model has no row-level
// access policy; a single all-access role is used throughout.
func NewPublisher(h *hashx.Hasher, pub *sig.PublicKey, dag *SignedDAG) (*Publisher, error) {
	role := accessctl.Role{Name: "all"}
	ep := engine.NewPublisher(h, pub, accessctl.NewPolicy(role))
	if err := ep.AddRelation(dag.Nodes, false); err != nil {
		return nil, err
	}
	for _, sr := range dag.Adj {
		if err := ep.AddRelation(sr, false); err != nil {
			return nil, err
		}
	}
	return &Publisher{pub: ep, dag: dag, role: role}, nil
}

// ChildrenResult is the verifiable answer to "successors of u in
// [lo, hi]": the node-existence proof for u plus the adjacency range
// result.
type ChildrenResult struct {
	U uint64
	// NodeProof proves u exists in the node index (point query [u, u]).
	NodeProof *engine.Result
	// Edges is the adjacency range result.
	Edges *engine.Result
}

// Children answers the successors-of-u query.
func (p *Publisher) Children(u, lo, hi uint64) (*ChildrenResult, error) {
	nodeQ := engine.Query{Relation: nodesRelation, KeyLo: u, KeyHi: u}
	nodeRes, err := p.pub.Execute("all", nodeQ)
	if err != nil {
		return nil, err
	}
	if _, ok := p.dag.Adj[u]; !ok {
		// u is not a node: the point proof (an empty result) is the
		// verifiable answer; there are no edges to query.
		return &ChildrenResult{U: u, NodeProof: nodeRes}, nil
	}
	edgeQ := engine.Query{Relation: adjName(u), KeyLo: lo, KeyHi: hi}
	edges, err := p.pub.Execute("all", edgeQ)
	if err != nil {
		return nil, err
	}
	return &ChildrenResult{U: u, NodeProof: nodeRes, Edges: edges}, nil
}

// Verifier checks graph query results.
type Verifier struct {
	h      *hashx.Hasher
	pub    *sig.PublicKey
	params core.Params
	role   accessctl.Role
}

// NewVerifier constructs a graph verifier from the owner's public data.
func NewVerifier(h *hashx.Hasher, pub *sig.PublicKey, params core.Params) *Verifier {
	return &Verifier{h: h, pub: pub, params: params, role: accessctl.Role{Name: "all"}}
}

// VerifyChildren checks a ChildrenResult and returns the verified
// successor ids. A nil slice with nil error means "u verifiably does not
// exist" — itself a complete answer.
func (v *Verifier) VerifyChildren(u, lo, hi uint64, res *ChildrenResult) (succs []uint64, exists bool, err error) {
	if res.U != u {
		return nil, false, fmt.Errorf("graphauth: result for node %d, asked %d", res.U, u)
	}
	nodeQ := engine.Query{Relation: nodesRelation, KeyLo: u, KeyHi: u}
	nv := verify.New(v.h, v.pub, v.params, nodeSchema())
	nodeRows, err := nv.VerifyResult(nodeQ, v.role, res.NodeProof)
	if err != nil {
		return nil, false, fmt.Errorf("graphauth: node proof: %w", err)
	}
	if len(nodeRows) == 0 {
		if res.Edges != nil {
			return nil, false, fmt.Errorf("graphauth: edges for a non-existent node")
		}
		return nil, false, nil
	}
	if res.Edges == nil {
		return nil, true, fmt.Errorf("graphauth: missing adjacency result for existing node %d", u)
	}
	edgeQ := engine.Query{Relation: adjName(u), KeyLo: lo, KeyHi: hi}
	ev := verify.New(v.h, v.pub, v.params, adjSchema(u))
	rows, err := ev.VerifyResult(edgeQ, v.role, res.Edges)
	if err != nil {
		return nil, true, fmt.Errorf("graphauth: adjacency proof: %w", err)
	}
	out := make([]uint64, len(rows))
	for i, r := range rows {
		out[i] = r.Key
	}
	return out, true, nil
}

// ReachResult is a verified bounded-depth reachability answer: the
// frontier expansions, each individually verifiable.
type ReachResult struct {
	From, To uint64
	Depth    int
	// Layers holds, per hop, the ChildrenResult for every node expanded
	// at that hop (full-range adjacency queries).
	Layers []map[uint64]*ChildrenResult
	// Found is the publisher's claim; verification recomputes it.
	Found bool
}

// Reachable answers "is `to` reachable from `from` within depth hops?"
// with a proof either way: each frontier expansion is a verifiable
// full-range children query, so omitted edges are detectable and the
// negative answer is as trustworthy as the positive one.
func (p *Publisher) Reachable(from, to uint64, depth int) (*ReachResult, error) {
	if depth <= 0 {
		return nil, ErrDepth
	}
	res := &ReachResult{From: from, To: to, Depth: depth}
	frontier := []uint64{from}
	visited := map[uint64]bool{from: true}
	for d := 0; d < depth && len(frontier) > 0 && !res.Found; d++ {
		layer := make(map[uint64]*ChildrenResult, len(frontier))
		var next []uint64
		for _, u := range frontier {
			cr, err := p.Children(u, p.dag.Params.L+1, p.dag.Params.U-1)
			if err != nil {
				return nil, err
			}
			layer[u] = cr
			if cr.Edges == nil {
				continue
			}
			for _, row := range cr.Edges.Rows() {
				if row.Key == to {
					res.Found = true
				}
				if !visited[row.Key] {
					visited[row.Key] = true
					next = append(next, row.Key)
				}
			}
		}
		res.Layers = append(res.Layers, layer)
		frontier = next
	}
	return res, nil
}

// VerifyReachable re-runs the BFS over the *verified* edges and checks
// the claim. It returns the verified answer.
func (v *Verifier) VerifyReachable(res *ReachResult) (bool, error) {
	if res.Depth <= 0 || len(res.Layers) > res.Depth {
		return false, fmt.Errorf("graphauth: malformed layers")
	}
	lo, hi := v.params.L+1, v.params.U-1
	frontier := []uint64{res.From}
	visited := map[uint64]bool{res.From: true}
	found := false
	for d := 0; d < res.Depth && len(frontier) > 0 && !found; d++ {
		if d >= len(res.Layers) {
			return false, fmt.Errorf("graphauth: missing layer %d with a non-empty frontier", d)
		}
		layer := res.Layers[d]
		var next []uint64
		for _, u := range frontier {
			cr, ok := layer[u]
			if !ok {
				return false, fmt.Errorf("graphauth: layer %d missing expansion of node %d", d, u)
			}
			succs, exists, err := v.VerifyChildren(u, lo, hi, cr)
			if err != nil {
				return false, err
			}
			if !exists {
				continue // verifiably a sink that is not even a node
			}
			for _, s := range succs {
				if s == res.To {
					found = true
				}
				if !visited[s] {
					visited[s] = true
					next = append(next, s)
				}
			}
		}
		frontier = next
	}
	if found != res.Found {
		return false, fmt.Errorf("graphauth: publisher claimed found=%v, verified %v", res.Found, found)
	}
	return found, nil
}
