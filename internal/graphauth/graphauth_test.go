package graphauth_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"vcqr/internal/graphauth"
	"vcqr/internal/hashx"
	"vcqr/internal/sig"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

// diamond is the test DAG:
//
//	10 -> 20 -> 40
//	10 -> 30 -> 40
//	40 -> 50          60 (isolated-ish: 20 -> 60)
func diamond() map[uint64][]uint64 {
	return map[uint64][]uint64{
		10: {20, 30},
		20: {40, 60},
		30: {40},
		40: {50},
	}
}

type gfix struct {
	h   *hashx.Hasher
	dag *graphauth.SignedDAG
	pub *graphauth.Publisher
	v   *graphauth.Verifier
}

func newGFix(t testing.TB) *gfix {
	t.Helper()
	h := hashx.New()
	dag, err := graphauth.Build(h, signKey(t), diamond(), 0, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := graphauth.NewPublisher(h, signKey(t).Public(), dag)
	if err != nil {
		t.Fatal(err)
	}
	return &gfix{
		h: h, dag: dag, pub: pub,
		v: graphauth.NewVerifier(h, signKey(t).Public(), dag.Params),
	}
}

func TestBuildValidation(t *testing.T) {
	h := hashx.New()
	// Cycle detection.
	if _, err := graphauth.Build(h, signKey(t), map[uint64][]uint64{
		1: {2}, 2: {3}, 3: {1},
	}, 0, 100, 2); !errors.Is(err, graphauth.ErrCycle) {
		t.Fatalf("cycle: %v", err)
	}
	// Self-loop is a cycle.
	if _, err := graphauth.Build(h, signKey(t), map[uint64][]uint64{
		1: {1},
	}, 0, 100, 2); !errors.Is(err, graphauth.ErrCycle) {
		t.Fatalf("self-loop: %v", err)
	}
	// Node outside domain.
	if _, err := graphauth.Build(h, signKey(t), map[uint64][]uint64{
		1: {200},
	}, 0, 100, 2); !errors.Is(err, graphauth.ErrNode) {
		t.Fatalf("out-of-domain node: %v", err)
	}
}

func TestChildrenRoundTrip(t *testing.T) {
	f := newGFix(t)
	res, err := f.pub.Children(10, 1, 1023)
	if err != nil {
		t.Fatal(err)
	}
	succs, exists, err := f.v.VerifyChildren(10, 1, 1023, res)
	if err != nil {
		t.Fatal(err)
	}
	if !exists {
		t.Fatal("node 10 must exist")
	}
	if len(succs) != 2 || succs[0] != 20 || succs[1] != 30 {
		t.Fatalf("children(10) = %v, want [20 30]", succs)
	}
}

func TestChildrenRangeFilter(t *testing.T) {
	f := newGFix(t)
	res, err := f.pub.Children(20, 50, 1023) // only successors >= 50
	if err != nil {
		t.Fatal(err)
	}
	succs, _, err := f.v.VerifyChildren(20, 50, 1023, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(succs) != 1 || succs[0] != 60 {
		t.Fatalf("children(20, >=50) = %v, want [60]", succs)
	}
}

func TestVerifiableEmptyAdjacency(t *testing.T) {
	// Node 50 is a sink: its verified successor set is empty — the
	// negative fact the completeness machinery makes trustworthy.
	f := newGFix(t)
	res, err := f.pub.Children(50, 1, 1023)
	if err != nil {
		t.Fatal(err)
	}
	succs, exists, err := f.v.VerifyChildren(50, 1, 1023, res)
	if err != nil {
		t.Fatal(err)
	}
	if !exists || len(succs) != 0 {
		t.Fatalf("children(50) = %v exists=%v, want empty and existing", succs, exists)
	}
}

func TestVerifiableNonNode(t *testing.T) {
	f := newGFix(t)
	res, err := f.pub.Children(777, 1, 1023)
	if err != nil {
		t.Fatal(err)
	}
	_, exists, err := f.v.VerifyChildren(777, 1, 1023, res)
	if err != nil {
		t.Fatal(err)
	}
	if exists {
		t.Fatal("node 777 must verifiably not exist")
	}
}

func TestChildrenOmissionDetected(t *testing.T) {
	// A publisher that withholds an edge must be caught: emulate by
	// answering a narrower range labelled as the full one.
	f := newGFix(t)
	full, err := f.pub.Children(10, 1, 1023)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := f.pub.Children(10, 25, 1023) // omits edge 10->20
	if err != nil {
		t.Fatal(err)
	}
	forged := *full
	forged.Edges = narrow.Edges
	if _, _, err := f.v.VerifyChildren(10, 1, 1023, &forged); err == nil {
		t.Fatal("withheld edge not detected")
	}
}

func TestReachablePositive(t *testing.T) {
	f := newGFix(t)
	res, err := f.pub.Reachable(10, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	found, err := f.v.VerifyReachable(res)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("50 is reachable from 10 in 3 hops")
	}
}

func TestReachableNegativeProof(t *testing.T) {
	// 10 is NOT reachable from 50 (edges point the other way): the
	// verified negative answer is the paper's completeness property
	// lifted to graphs.
	f := newGFix(t)
	res, err := f.pub.Reachable(50, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	found, err := f.v.VerifyReachable(res)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("10 must not be reachable from 50")
	}
}

func TestReachableDepthBound(t *testing.T) {
	f := newGFix(t)
	// 50 is 3 hops from 10; within 2 hops it must be verifiably absent.
	res, err := f.pub.Reachable(10, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	found, err := f.v.VerifyReachable(res)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("50 must not be reachable within 2 hops")
	}
	if _, err := f.pub.Reachable(10, 50, 0); !errors.Is(err, graphauth.ErrDepth) {
		t.Fatalf("depth 0: %v", err)
	}
}

func TestReachableLyingClaimDetected(t *testing.T) {
	f := newGFix(t)
	res, err := f.pub.Reachable(10, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	res.Found = false // publisher lies about its own verified expansion
	if _, err := f.v.VerifyReachable(res); err == nil {
		t.Fatal("false claim not detected")
	}
}

// TestReachabilityAgainstOracle builds random layered DAGs and compares
// verified reachability answers with a plain BFS oracle on the adjacency
// map, for random (from, to, depth) probes.
func TestReachabilityAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	h := hashx.New()
	for trial := 0; trial < 3; trial++ {
		// Layered construction guarantees acyclicity: edges only go from
		// layer i to layer i+1.
		const layers, perLayer = 4, 5
		adj := map[uint64][]uint64{}
		node := func(l, i int) uint64 { return uint64(l*100 + i + 1) }
		for l := 0; l < layers-1; l++ {
			for i := 0; i < perLayer; i++ {
				for j := 0; j < perLayer; j++ {
					if rng.Intn(3) == 0 {
						adj[node(l, i)] = append(adj[node(l, i)], node(l+1, j))
					}
				}
			}
		}
		if len(adj) == 0 {
			adj[node(0, 0)] = []uint64{node(1, 0)}
		}
		dag, err := graphauth.Build(h, signKey(t), adj, 0, 10000, 2)
		if err != nil {
			t.Fatal(err)
		}
		pub, err := graphauth.NewPublisher(h, signKey(t).Public(), dag)
		if err != nil {
			t.Fatal(err)
		}
		v := graphauth.NewVerifier(h, signKey(t).Public(), dag.Params)

		oracle := func(from, to uint64, depth int) bool {
			frontier := []uint64{from}
			seen := map[uint64]bool{from: true}
			for d := 0; d < depth; d++ {
				var next []uint64
				for _, u := range frontier {
					for _, s := range adj[u] {
						if s == to {
							return true
						}
						if !seen[s] {
							seen[s] = true
							next = append(next, s)
						}
					}
				}
				frontier = next
			}
			return false
		}

		for probe := 0; probe < 15; probe++ {
			from := node(rng.Intn(layers), rng.Intn(perLayer))
			to := node(rng.Intn(layers), rng.Intn(perLayer))
			depth := 1 + rng.Intn(layers)
			res, err := pub.Reachable(from, to, depth)
			if err != nil {
				t.Fatal(err)
			}
			got, err := v.VerifyReachable(res)
			if err != nil {
				t.Fatalf("trial %d probe %d (%d->%d depth %d): %v", trial, probe, from, to, depth, err)
			}
			if want := oracle(from, to, depth); got != want {
				t.Fatalf("trial %d: reach(%d->%d, %d) = %v, oracle %v", trial, from, to, depth, got, want)
			}
		}
	}
}

func TestReachableMissingLayerDetected(t *testing.T) {
	f := newGFix(t)
	res, err := f.pub.Reachable(10, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one node's expansion from the first layer.
	delete(res.Layers[0], 10)
	if _, err := f.v.VerifyReachable(res); err == nil {
		t.Fatal("missing expansion not detected")
	}
}
