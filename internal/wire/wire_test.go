package wire_test

import (
	"net/http/httptest"
	"sync"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/partition"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
	"vcqr/internal/wire"
	"vcqr/internal/workload"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

func TestRelationRoundTripThroughGob(t *testing.T) {
	h := hashx.New()
	o := owner.NewWithKey(h, signKey(t))
	rel, err := workload.Employees(workload.EmployeeConfig{N: 20, L: 0, U: 1 << 20, PhotoSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := o.Publish(rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.EncodeRelation(sr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeRelation(blob)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded relation must survive full validation — every digest
	// and signature intact.
	if err := got.Validate(h, o.PublicKey()); err != nil {
		t.Fatalf("decoded relation invalid: %v", err)
	}
	if got.Len() != sr.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), sr.Len())
	}
}

// TestHTTPEndToEnd runs the full Figure 3 deployment: owner signs, the
// publisher serves over HTTP, the user queries and verifies client-side.
func TestHTTPEndToEnd(t *testing.T) {
	h := hashx.New()
	o := owner.NewWithKey(h, signKey(t))
	rel, err := workload.Employees(workload.EmployeeConfig{N: 40, L: 0, U: 1 << 20, PhotoSize: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := o.Publish(rel, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Ship the snapshot through serialization, as a real publisher would
	// receive it.
	blob, err := wire.EncodeRelation(sr)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := wire.DecodeRelation(blob)
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "user"}
	pub := engine.NewPublisher(h, o.PublicKey(), accessctl.NewPolicy(role))
	if err := pub.AddRelation(remote, true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wire.Handler(pub))
	defer srv.Close()

	client := &wire.Client{BaseURL: srv.URL}
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	res, err := client.Query("user", q)
	if err != nil {
		t.Fatal(err)
	}
	v := verify.New(h, o.PublicKey(), sr.Params, sr.Schema)
	rows, err := v.VerifyResult(q, role, res)
	if err != nil {
		t.Fatalf("verification over HTTP transport failed: %v", err)
	}
	var want int
	for _, tp := range rel.Tuples {
		if tp.Key >= 1 && tp.Key <= 1<<19 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}

	// Publisher-side errors surface cleanly.
	if _, err := client.Query("ghost", q); err == nil {
		t.Fatal("unknown role should error through the transport")
	}
	if _, err := client.Query("user", engine.Query{Relation: "Nope"}); err == nil {
		t.Fatal("unknown relation should error through the transport")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	if _, err := wire.DecodeRelation(nil); err == nil {
		t.Error("nil relation blob accepted")
	}
	if _, err := wire.DecodeRelation([]byte("not a gob stream")); err == nil {
		t.Error("garbage relation blob accepted")
	}
	if _, err := wire.DecodeResult([]byte{0x01, 0x02}); err == nil {
		t.Error("garbage result blob accepted")
	}
	// A truncated but once-valid stream must also fail.
	h := hashx.New()
	o := owner.NewWithKey(h, signKey(t))
	rel, err := workload.Employees(workload.EmployeeConfig{N: 5, L: 0, U: 1 << 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := o.Publish(rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.EncodeRelation(sr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeRelation(blob[:len(blob)/2]); err == nil {
		t.Error("truncated relation blob accepted")
	}
}

func TestClientParamsRoundTrip(t *testing.T) {
	h := hashx.New()
	o := owner.NewWithKey(h, signKey(t))
	rel, err := workload.Employees(workload.EmployeeConfig{N: 5, L: 0, U: 1 << 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := o.Publish(rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/params.gob"
	cp := wire.ClientParams{
		N: o.PublicKey().N, E: o.PublicKey().E,
		Params: sr.Params, Schema: sr.Schema,
		Roles: map[string]accessctl.Role{"exec": {Name: "exec", KeyHi: 99}},
	}
	if err := wire.WriteClientParams(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadClientParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(cp.N) != 0 || got.E != cp.E || got.Params != cp.Params {
		t.Fatal("params did not round trip")
	}
	if got.Roles["exec"].KeyHi != 99 {
		t.Fatal("roles did not round trip")
	}
	if _, err := wire.ReadClientParams(path + ".missing"); err == nil {
		t.Fatal("missing params file accepted")
	}
}

func TestResultGobRoundTrip(t *testing.T) {
	h := hashx.New()
	o := owner.NewWithKey(h, signKey(t))
	rel, err := workload.Employees(workload.EmployeeConfig{N: 10, L: 0, U: 1 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := o.Publish(rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "user"}
	pub := engine.NewPublisher(h, o.PublicKey(), accessctl.NewPolicy(role))
	if err := pub.AddRelation(sr, false); err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Relation: "Emp"}
	res, err := pub.Execute("user", q)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	v := verify.New(h, o.PublicKey(), sr.Params, sr.Schema)
	if _, err := v.VerifyResult(q, role, got); err != nil {
		t.Fatalf("decoded result failed verification: %v", err)
	}
}

// TestSnapshotRoundTrip: the magic-prefixed snapshot format carries both
// plain and partitioned publications, and transparently falls back to
// the legacy bare-relation encoding.
func TestSnapshotRoundTrip(t *testing.T) {
	h := hashx.New()
	o := owner.NewWithKey(h, signKey(t))
	rel, err := workload.Employees(workload.EmployeeConfig{N: 24, L: 0, U: 1 << 20, PhotoSize: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := o.Publish(rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := partition.Split(sr, 4)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := wire.EncodeSnapshot(&wire.Snapshot{Partition: set})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := wire.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Partition == nil || snap.Relation != nil {
		t.Fatal("partitioned snapshot decoded wrong")
	}
	if err := snap.Partition.Validate(h, o.PublicKey()); err != nil {
		t.Fatalf("decoded partition set invalid: %v", err)
	}

	// Legacy fallback: a bare gob relation decodes as an unpartitioned
	// snapshot.
	legacy, err := wire.EncodeRelation(sr)
	if err != nil {
		t.Fatal(err)
	}
	snap, err = wire.DecodeSnapshot(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Relation == nil || snap.Partition != nil {
		t.Fatal("legacy snapshot decoded wrong")
	}
	if err := snap.Relation.Validate(h, o.PublicKey()); err != nil {
		t.Fatal(err)
	}
}
