package wire_test

import (
	"bytes"
	"io"
	"testing"

	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/wire"
)

// allocChunk builds a realistic entries chunk: n covered records, each
// with a disclosed value, hidden leaves and chain digests — the shape
// the /stream path serializes thousands of times per large result.
func allocChunk(n int) *engine.Chunk {
	h := hashx.New()
	c := &engine.Chunk{Type: engine.ChunkEntries, Seq: 1, Entries: make([]engine.VOEntry, 0, n)}
	for i := 0; i < n; i++ {
		c.Entries = append(c.Entries, engine.VOEntry{
			Mode: engine.EntryResult,
			Key:  uint64(i + 1),
			HiddenLeaves: []hashx.Digest{
				h.Hash([]byte{byte(i)}),
				h.Hash([]byte{byte(i), 1}),
			},
		})
	}
	return c
}

// TestWriteChunkFrameAllocBudget pins the per-chunk allocation cost of
// the frame encoder. The scratch buffer is pooled, so what remains is
// gob's own per-encode state — the budget catches a regression that
// reintroduces a fresh buffer (or worse, a full copy) per frame.
func TestWriteChunkFrameAllocBudget(t *testing.T) {
	c := allocChunk(256)
	// Warm the pool and the gob type registry.
	if err := wire.WriteChunkFrame(io.Discard, c); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := wire.WriteChunkFrame(io.Discard, c); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 130 // measured ~51 on go1.24 with the pooled buffer; 2.5x headroom
	t.Logf("WriteChunkFrame(256 entries): %.0f allocs/chunk (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("WriteChunkFrame allocates %.0f/chunk, budget %d", allocs, budget)
	}
}

// TestStreamFrameAllocBudget pins the full frame round trip — encode,
// frame, read back, decode — per chunk. This is the wire cost of one
// /stream chunk minus the HTTP transport itself.
func TestStreamFrameAllocBudget(t *testing.T) {
	c := allocChunk(256)
	var buf bytes.Buffer
	if err := wire.WriteChunkFrame(&buf, c); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)

	allocs := testing.AllocsPerRun(20, func() {
		if _, err := wire.ReadChunkFrame(bytes.NewReader(frame)); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 4400 // measured ~2900 on go1.24: decode must materialize every entry; 1.5x headroom
	t.Logf("ReadChunkFrame(256 entries): %.0f allocs/chunk (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("ReadChunkFrame allocates %.0f/chunk, budget %d", allocs, budget)
	}
}

// TestFrameBufferPoolDropsOversize checks a pathologically large frame
// does not pin its buffer in the pool: a follow-up small write must not
// fail, and (indirectly) the pool stays bounded. Behavioural, not
// alloc-counted — pool retention is not observable directly.
func TestFrameBufferPoolDropsOversize(t *testing.T) {
	big := allocChunk(4096)
	for i := range big.Entries {
		// Inflate each entry so the encoded frame exceeds the pool bound.
		big.Entries[i].HiddenLeaves = append(big.Entries[i].HiddenLeaves, make([]byte, 512))
	}
	var buf bytes.Buffer
	if err := wire.WriteChunkFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1<<20 {
		t.Skipf("frame only %d bytes, does not exercise the oversize path", buf.Len())
	}
	for i := 0; i < 4; i++ {
		if err := wire.WriteChunkFrame(io.Discard, allocChunk(1)); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkWriteChunkFrame reports the steady-state frame encode cost;
// run with -benchmem to see the pooled-buffer effect.
func BenchmarkWriteChunkFrame(b *testing.B) {
	c := allocChunk(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := wire.WriteChunkFrame(io.Discard, c); err != nil {
			b.Fatal(err)
		}
	}
}
