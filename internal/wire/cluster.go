package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/obs"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// This file is the coordinator/node half of the wire protocol
// (internal/cluster): per-shard sub-streams, shard slice transfer, edge
// and digest probes, and the two-phase distributed delta. Everything
// rides the same length-prefixed gob framing as the user-facing chunk
// streams, and — as everywhere in this system — nothing in the transport
// is trusted: a node that lies produces a merged stream the user's
// verifier rejects, a tampered transfer dies on the receiver's digest
// compare and signature validation.

// Cluster transport errors.
var (
	// ErrTransferDigest reports a shard transfer whose streamed records
	// do not fold to the digest its foot claims — a tampered or corrupted
	// transfer, rejected before any signature work.
	ErrTransferDigest = errors.New("wire: shard transfer digest mismatch")
	// ErrTransferTruncated reports a transfer stream that ended before
	// its foot frame.
	ErrTransferTruncated = errors.New("wire: shard transfer truncated")
)

// NotHostingMsg is the error-string marker a node uses when refusing a
// shard request for a shard it does not host. The coordinator detects it
// (IsNotHosting) and re-reads its routing table: the usual cause is a
// request raced with a migration's routing swing.
const NotHostingMsg = "not hosting shard"

// IsNotHosting reports whether a remote error is a node's stale-routing
// refusal.
func IsNotHosting(err error) bool {
	return err != nil && strings.Contains(err.Error(), NotHostingMsg)
}

// --- generic frame codec ---------------------------------------------

// writeFrame writes one length-prefixed gob frame of any payload type,
// sharing the chunk codec's pooled buffers and size cap.
func writeFrame(w io.Writer, v any) error {
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer putFrameBuf(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode frame: %w", err)
	}
	if buf.Len() > MaxChunkFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed gob frame into v. It returns
// io.EOF exactly at a frame boundary and ErrFrameTruncated when the
// stream dies mid-frame.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: length prefix: %v", ErrFrameTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxChunkFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	body := frameBufPool.Get().(*bytes.Buffer)
	defer putFrameBuf(body)
	body.Reset()
	if _, err := io.CopyN(body, r, int64(n)); err != nil {
		return fmt.Errorf("%w: body: %v", ErrFrameTruncated, err)
	}
	if err := gob.NewDecoder(body).Decode(v); err != nil {
		return fmt.Errorf("wire: decode frame: %w", err)
	}
	return nil
}

// --- shard sub-streams ------------------------------------------------

// ShardStreamRequest asks a node for one shard's partial of a fan-out:
// the entries covering [Lo, Hi] on the named shard's pinned slice, plus
// the boundary proofs its cover position (First/Last) obliges. The node
// recomputes the effective rewrite from Role and Query exactly as the
// coordinator did, so the two cannot disagree without failing fast.
type ShardStreamRequest struct {
	Role  string
	Query engine.Query
	Shard int
	// Lo, Hi is the sub-range of the effective query this shard covers.
	Lo, Hi uint64
	// First and Last mark the cover's edge positions, which must supply
	// the left/right boundary proofs of the whole effective range.
	First, Last bool
	ChunkRows   int
	// RoutingEpoch is the coordinator's routing-table version when it
	// issued the request; echoed in errors for operator diagnostics.
	RoutingEpoch uint64
	// Trace is the coordinator-minted trace ID, propagated so the node's
	// slow-query log and sub-stream timing carry the same ID as the
	// coordinator's span. Optional: old nodes decode requests without it
	// unchanged (gob skips unknown fields) and simply don't echo timing.
	// Advisory only — never part of the verified material.
	Trace string
}

// NodeHello is the first frame of a shard sub-stream: the pinned slice's
// epoch and seam material (the digest-compare input for cross-node
// hand-off checks), plus the left boundary proof when First.
type NodeHello struct {
	Shard int
	Epoch uint64
	Edges partition.Edges
	Left  *core.BoundaryProof
	// Digest is the pinned slice's identity (partition.SliceDigest) as
	// the node claims it. The coordinator uses it to pick a replica
	// hosting the byte-identical slice when a sub-stream fails over
	// mid-flight, and to attribute seam failures to a lying replica via
	// cross-replica compare. Like Edges it is a claim, not a proof: the
	// user's verifier is what catches a node lying here. Optional wire
	// field — old hellos decode with a zero digest and simply disable
	// digest-pinned failover for that sub-stream.
	Digest hashx.Digest
}

// NodeFoot is the last frame of a shard sub-stream: the shard's entry
// count and partial condensed signature, the right boundary proof when
// Last, and the empty-range predecessor material when First and empty
// (see engine.ShardFeedFoot, which this mirrors on the wire).
type NodeFoot struct {
	Entries   uint64
	Partial   sig.Signature
	Right     *core.BoundaryProof
	PredSig   sig.Signature
	PredPrevG hashx.Digest
	NeedPrevG bool

	// Timing is the node's advisory per-stage breakdown for this
	// sub-stream (assembly, agg-index lookups...), echoed so the
	// coordinator can attribute a slow merged stream to the node at
	// fault. Optional wire field, outside every digest and signature —
	// the seam material above it is what hand-off checks compare.
	Timing []obs.StageDur
}

// NodeFrame is one frame of a shard sub-stream: exactly one field set.
type NodeFrame struct {
	Hello *NodeHello
	Chunk *engine.Chunk
	Foot  *NodeFoot
	Err   string
}

// WriteNodeFrame writes one sub-stream frame; ReadNodeFrame is its
// counterpart (the client's NodeStream wraps it).
func WriteNodeFrame(w io.Writer, f *NodeFrame) error { return writeFrame(w, f) }

// ReadNodeFrame reads one sub-stream frame.
func ReadNodeFrame(r io.Reader) (*NodeFrame, error) {
	var f NodeFrame
	if err := readFrame(r, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// NodeStream is a client-side shard sub-stream in consumption order:
// Hello (already read), Next until io.EOF, Foot, Close.
type NodeStream struct {
	body  io.ReadCloser
	hello NodeHello
	foot  *NodeFoot
	err   error
}

// ShardStream opens one shard sub-stream against a node. The hello frame
// is consumed before returning, so a stale-routing refusal surfaces here
// (IsNotHosting) rather than mid-merge.
func (c *Client) ShardStream(req ShardStreamRequest) (*NodeStream, error) {
	return c.ShardStreamTee(req, nil)
}

// ShardStreamTee is ShardStream with every raw byte the node sends — the
// hello, chunk and foot frames exactly as framed — copied into tee as it
// is consumed. The edge-cache fill path records sub-streams this way: a
// fully drained tee holds the byte-exact frame sequence a later replay
// decodes back into the merge. A nil tee is ShardStream.
func (c *Client) ShardStreamTee(req ShardStreamRequest, tee io.Writer) (*NodeStream, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return nil, fmt.Errorf("wire: encode shard stream request: %w", err)
	}
	resp, err := httpc.Post(c.BaseURL+"/shard/stream", "application/octet-stream", &body)
	if err != nil {
		return nil, fmt.Errorf("wire: post shard stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		return nil, fmt.Errorf("wire: node returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	rbody := resp.Body
	if tee != nil {
		rbody = &teeReadCloser{r: io.TeeReader(resp.Body, tee), c: resp.Body}
	}
	var f NodeFrame
	if err := readFrame(rbody, &f); err != nil {
		rbody.Close()
		return nil, err
	}
	switch {
	case f.Err != "":
		rbody.Close()
		return nil, fmt.Errorf("wire: node error: %s", f.Err)
	case f.Hello == nil:
		rbody.Close()
		return nil, fmt.Errorf("wire: shard sub-stream did not open with a hello frame")
	}
	return &NodeStream{body: rbody, hello: *f.Hello}, nil
}

// teeReadCloser pairs a TeeReader with the underlying body's closer.
type teeReadCloser struct {
	r io.Reader
	c io.Closer
}

func (t *teeReadCloser) Read(p []byte) (int, error) { return t.r.Read(p) }
func (t *teeReadCloser) Close() error               { return t.c.Close() }

// Hello returns the sub-stream's opening frame.
func (ns *NodeStream) Hello() NodeHello { return ns.hello }

// Next returns the next entries chunk, io.EOF once the foot frame has
// arrived.
func (ns *NodeStream) Next() (*engine.Chunk, error) {
	if ns.err != nil {
		return nil, ns.err
	}
	if ns.foot != nil {
		return nil, io.EOF
	}
	var f NodeFrame
	if err := readFrame(ns.body, &f); err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: sub-stream ended before its foot", ErrFrameTruncated)
		}
		ns.err = err
		return nil, err
	}
	switch {
	case f.Err != "":
		ns.err = fmt.Errorf("wire: node error: %s", f.Err)
		return nil, ns.err
	case f.Foot != nil:
		ns.foot = f.Foot
		return nil, io.EOF
	case f.Chunk != nil:
		return f.Chunk, nil
	}
	ns.err = fmt.Errorf("wire: empty sub-stream frame")
	return nil, ns.err
}

// Foot returns the sub-stream's summary; valid once Next returned io.EOF.
func (ns *NodeStream) Foot() (NodeFoot, error) {
	if ns.err != nil {
		return NodeFoot{}, ns.err
	}
	if ns.foot == nil {
		return NodeFoot{}, fmt.Errorf("wire: sub-stream foot before drain")
	}
	return *ns.foot, nil
}

// Close releases the underlying response body.
func (ns *NodeStream) Close() error { return ns.body.Close() }

// --- shard transfer ---------------------------------------------------

// ShardManifest opens a shard transfer: which slice of which layout is
// being shipped, with everything the receiver needs to reconstruct a
// servable SignedRelation.
type ShardManifest struct {
	Spec   partition.Spec
	Shard  int
	Params core.Params
	Schema relation.Schema
	// Records is the total entry count (owned + both context records).
	Records int
	// Epoch and Deltas are source-side bookkeeping: the store epoch the
	// slice was read at and the deltas it had absorbed since install.
	Epoch  uint64
	Deltas uint64
}

// TransferFoot closes a shard transfer with the slice digest
// (partition.SliceDigest) of everything that was streamed.
type TransferFoot struct {
	Digest hashx.Digest
}

// TransferFrame is one frame of a shard transfer: exactly one field set.
type TransferFrame struct {
	Manifest *ShardManifest
	Recs     []core.SignedRecord
	Foot     *TransferFoot
	Err      string
}

// transferBatch bounds records per transfer frame: large enough to
// amortize framing, small enough to keep frames well under the cap.
const transferBatch = 256

// WriteShardTransfer streams one shard slice as transfer frames:
// manifest, record batches, foot with the slice digest.
func WriteShardTransfer(w io.Writer, h *hashx.Hasher, man ShardManifest, sr *core.SignedRelation) error {
	man.Records = len(sr.Recs)
	man.Params = sr.Params
	man.Schema = sr.Schema
	if err := writeFrame(w, &TransferFrame{Manifest: &man}); err != nil {
		return err
	}
	for off := 0; off < len(sr.Recs); off += transferBatch {
		end := off + transferBatch
		if end > len(sr.Recs) {
			end = len(sr.Recs)
		}
		if err := writeFrame(w, &TransferFrame{Recs: sr.Recs[off:end]}); err != nil {
			return err
		}
	}
	return writeFrame(w, &TransferFrame{Foot: &TransferFoot{Digest: partition.SliceDigest(h, sr)}})
}

// ReadShardTransfer consumes a transfer stream and reconstructs the
// slice, verifying the streamed records against the foot's slice digest
// — the transfer-integrity half of the trust story; the receiver still
// owes the signature validation of an untrusted feed.
func ReadShardTransfer(r io.Reader, h *hashx.Hasher) (ShardManifest, *core.SignedRelation, error) {
	var f TransferFrame
	if err := readFrame(r, &f); err != nil {
		if err == io.EOF {
			err = ErrTransferTruncated
		}
		return ShardManifest{}, nil, err
	}
	if f.Err != "" {
		return ShardManifest{}, nil, fmt.Errorf("wire: transfer error: %s", f.Err)
	}
	if f.Manifest == nil {
		return ShardManifest{}, nil, fmt.Errorf("wire: shard transfer did not open with a manifest")
	}
	man := *f.Manifest
	if man.Records < 3 || man.Records > MaxChunkFrame {
		return ShardManifest{}, nil, fmt.Errorf("wire: implausible transfer record count %d", man.Records)
	}
	sr := &core.SignedRelation{
		Params: man.Params,
		Schema: man.Schema,
		Recs:   make([]core.SignedRecord, 0, man.Records),
	}
	for {
		f = TransferFrame{}
		if err := readFrame(r, &f); err != nil {
			if err == io.EOF {
				err = ErrTransferTruncated
			}
			return man, nil, err
		}
		switch {
		case f.Err != "":
			return man, nil, fmt.Errorf("wire: transfer error: %s", f.Err)
		case f.Foot != nil:
			if len(sr.Recs) != man.Records {
				return man, nil, fmt.Errorf("%w: %d records streamed, manifest says %d", ErrTransferTruncated, len(sr.Recs), man.Records)
			}
			if !partition.SliceDigest(h, sr).Equal(f.Foot.Digest) {
				return man, nil, ErrTransferDigest
			}
			return man, sr, nil
		case len(f.Recs) > 0:
			if len(sr.Recs)+len(f.Recs) > man.Records {
				return man, nil, fmt.Errorf("wire: transfer overran its manifest record count")
			}
			sr.Recs = append(sr.Recs, f.Recs...)
		}
	}
}

// --- control-plane requests ------------------------------------------

// ShardRef names one shard of one relation.
type ShardRef struct {
	Relation string
	Shard    int
}

// EdgeResponse returns a hosted slice's seam material and epoch.
type EdgeResponse struct {
	Epoch uint64
	Edges partition.Edges
	Err   string
}

// DigestResponse returns a hosted slice's identity summary — the digest
// compare primitive of migration cutover and crash recovery.
type DigestResponse struct {
	Epoch  uint64
	Digest hashx.Digest
	// InstallDigest is the slice digest as it was when this copy was
	// installed on the node. Digest != InstallDigest means the copy has
	// absorbed writes since — the signal recovery uses to pick the
	// written-to copy of a double-hosted shard.
	InstallDigest hashx.Digest
	Records       int
	// Deltas counts update batches the slice absorbed since it was
	// installed on this node.
	Deltas uint64
	Err    string
}

// HostedShard is one hosted slice in a node's inventory.
type HostedShard struct {
	Shard         int
	Epoch         uint64
	Digest        hashx.Digest
	InstallDigest hashx.Digest
	Records       int
	Deltas        uint64
}

// HostedInfo is one relation's hosting state on a node.
type HostedInfo struct {
	Spec   partition.Spec
	Shards []HostedShard
}

// HostedResponse inventories everything a node hosts.
type HostedResponse struct {
	Relations map[string]HostedInfo
	Err       string
}

// OKResponse acknowledges a control operation.
type OKResponse struct {
	Epoch uint64
	Err   string
}

// --- leases / heartbeats ----------------------------------------------

// LeaseRequest is one coordinator→node heartbeat: the grant of a serving
// lease for TTLMillis, carrying the coordinator's current routing epoch
// so a node can detect it is being driven by a stale coordinator. Leases
// are an availability mechanism only — nothing in the verified material
// depends on them; a node serving past its lease can at worst waste a
// client's time, never forge a result.
type LeaseRequest struct {
	// Coordinator identifies the granting coordinator (its advertised
	// URL, or a process tag in tests) for the node's /statsz.
	Coordinator string
	// Epoch is the coordinator's routing epoch at grant time.
	Epoch uint64
	// TTLMillis is the lease duration; the node treats its lease as
	// expired TTLMillis after the last heartbeat it acknowledged.
	TTLMillis int64
	// Seq increments per heartbeat per coordinator, so a delayed
	// re-ordered heartbeat cannot roll a node's lease view backwards.
	Seq uint64
}

// LeaseResponse acknowledges a heartbeat with the node's load signals —
// the inputs to the coordinator's least-loaded replica selection.
type LeaseResponse struct {
	// Epoch echoes the highest routing epoch the node has seen.
	Epoch uint64
	// Hosted is the node's hosted-shard count across relations.
	Hosted int
	// Inflight is the node's count of active shard sub-streams.
	Inflight uint64
	Err      string
}

// WriteLeaseRequest / ReadLeaseRequest frame a heartbeat on the shared
// length-prefixed gob codec. Exported so the fuzz harness can hammer the
// decode path with raw bytes exactly as the endpoint receives them.
func WriteLeaseRequest(w io.Writer, req *LeaseRequest) error { return writeFrame(w, req) }

// ReadLeaseRequest reads one framed heartbeat.
func ReadLeaseRequest(r io.Reader) (*LeaseRequest, error) {
	var req LeaseRequest
	if err := readFrame(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// WriteLeaseResponse frames a heartbeat acknowledgement.
func WriteLeaseResponse(w io.Writer, resp *LeaseResponse) error { return writeFrame(w, resp) }

// ReadLeaseResponse reads one framed heartbeat acknowledgement.
func ReadLeaseResponse(r io.Reader) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := readFrame(r, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// --- two-phase distributed delta -------------------------------------

// NodeDeltaRequest asks a node to *stage* an update batch against the
// shards it hosts: apply, stitch co-hosted mirrors, validate everything
// checkable locally — but publish nothing. The coordinator follows with
// cross-node mirror fixes and seam checks, then commits or aborts.
type NodeDeltaRequest struct {
	Delta delta.Delta
}

// ModifiedShard reports one staged slice's post-delta seam material.
type ModifiedShard struct {
	Shard int
	Edges partition.Edges
}

// NodeDeltaResponse returns the staging token and the staged edges.
type NodeDeltaResponse struct {
	Token    uint64
	Modified []ModifiedShard
	Err      string
}

// MirrorRequest refreshes one staged slice's context record with the
// adjacent shard's (staged) edge record — the cross-node half of mirror
// stitching. Token 0 opens a new staging transaction on the node.
type MirrorRequest struct {
	Token    uint64
	Relation string
	Shard    int
	// Left selects which context record to refresh: the slice's left
	// (position 0) or right (last position).
	Left bool
	Rec  core.SignedRecord
}

// MirrorResponse acknowledges a mirror fix with the staging token (fresh
// when the request opened one) and the fixed slice's staged edges.
type MirrorResponse struct {
	Token uint64
	Edges partition.Edges
	Err   string
}

// TxRequest commits or aborts a node's staged delta.
type TxRequest struct {
	Relation string
	Token    uint64
	Commit   bool
}

// --- client methods ---------------------------------------------------

// postGob posts a gob request and decodes a gob response.
func (c *Client) postGob(path string, req, resp any) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return fmt.Errorf("wire: encode request: %w", err)
	}
	hresp, err := httpc.Post(c.BaseURL+path, "application/octet-stream", &body)
	if err != nil {
		return fmt.Errorf("wire: post %s: %w", path, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return fmt.Errorf("wire: node returned %s on %s: %s", hresp.Status, path, strings.TrimSpace(string(msg)))
	}
	if err := gob.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("wire: decode %s response: %w", path, err)
	}
	return nil
}

// ObsExport scrapes a peer's /metrics.json histogram snapshot — the
// coordinator uses it to fold node-level latency into its cluster-wide
// /metrics aggregate. The data is advisory monitoring state; a node that
// lies here can only corrupt dashboards, never results.
func (c *Client) ObsExport() (obs.Export, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Get(c.BaseURL + "/metrics.json")
	if err != nil {
		return obs.Export{}, fmt.Errorf("wire: get metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Export{}, fmt.Errorf("wire: node returned %s on /metrics.json", resp.Status)
	}
	return obs.DecodeExport(io.LimitReader(resp.Body, 8<<20))
}

// ShardEdges fetches a hosted slice's seam material.
func (c *Client) ShardEdges(ref ShardRef) (EdgeResponse, error) {
	var out EdgeResponse
	if err := c.postGob("/shard/edges", ref, &out); err != nil {
		return out, err
	}
	if out.Err != "" {
		return out, fmt.Errorf("wire: node error: %s", out.Err)
	}
	return out, nil
}

// ShardDigest fetches a hosted slice's digest summary.
func (c *Client) ShardDigest(ref ShardRef) (DigestResponse, error) {
	var out DigestResponse
	if err := c.postGob("/shard/digest", ref, &out); err != nil {
		return out, err
	}
	if out.Err != "" {
		return out, fmt.Errorf("wire: node error: %s", out.Err)
	}
	return out, nil
}

// ShardRemove drops a hosted slice from a node. In-flight streams keep
// their pinned snapshots; only new requests are refused.
func (c *Client) ShardRemove(ref ShardRef) error {
	var out OKResponse
	if err := c.postGob("/shard/remove", ref, &out); err != nil {
		return err
	}
	if out.Err != "" {
		return fmt.Errorf("wire: node error: %s", out.Err)
	}
	return nil
}

// Hosted inventories the node.
func (c *Client) Hosted() (HostedResponse, error) {
	var out HostedResponse
	if err := c.postGob("/node/hosted", struct{}{}, &out); err != nil {
		return out, err
	}
	if out.Err != "" {
		return out, fmt.Errorf("wire: node error: %s", out.Err)
	}
	return out, nil
}

// ShardFetch opens a transfer stream for a hosted slice. The caller owns
// the returned body (positioned at the manifest frame) and must close it.
func (c *Client) ShardFetch(ref ShardRef) (io.ReadCloser, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(ref); err != nil {
		return nil, fmt.Errorf("wire: encode fetch request: %w", err)
	}
	resp, err := httpc.Post(c.BaseURL+"/shard/fetch", "application/octet-stream", &body)
	if err != nil {
		return nil, fmt.Errorf("wire: post fetch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		return nil, fmt.Errorf("wire: node returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return resp.Body, nil
}

// ShardInstall streams transfer frames from r into a node's install
// endpoint. The reader is typically a ShardFetch body (migration) or a
// local WriteShardTransfer pipe (initial placement).
func (c *Client) ShardInstall(r io.Reader) (OKResponse, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Post(c.BaseURL+"/shard/install", "application/octet-stream", r)
	if err != nil {
		return OKResponse{}, fmt.Errorf("wire: post install: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return OKResponse{}, fmt.Errorf("wire: node returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var out OKResponse
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return OKResponse{}, fmt.Errorf("wire: decode install response: %w", err)
	}
	if out.Err != "" {
		return out, fmt.Errorf("wire: node rejected install: %s", out.Err)
	}
	return out, nil
}

// NodeDeltaPrepare stages an update batch on a node.
func (c *Client) NodeDeltaPrepare(d delta.Delta) (NodeDeltaResponse, error) {
	var out NodeDeltaResponse
	if err := c.postGob("/node/delta", NodeDeltaRequest{Delta: d}, &out); err != nil {
		return out, err
	}
	if out.Err != "" {
		return out, fmt.Errorf("wire: node rejected delta: %s", out.Err)
	}
	return out, nil
}

// NodeMirror applies one cross-node mirror fix to a staged delta.
func (c *Client) NodeMirror(req MirrorRequest) (MirrorResponse, error) {
	var out MirrorResponse
	if err := c.postGob("/node/mirror", req, &out); err != nil {
		return out, err
	}
	if out.Err != "" {
		return out, fmt.Errorf("wire: node rejected mirror fix: %s", out.Err)
	}
	return out, nil
}

// NodeLease sends one heartbeat to a node's lease endpoint. Unlike the
// gob control calls this rides the length-prefixed frame codec end to
// end, so the decode surface on both sides is the fuzzed one.
func (c *Client) NodeLease(req LeaseRequest) (LeaseResponse, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	if err := WriteLeaseRequest(&body, &req); err != nil {
		return LeaseResponse{}, err
	}
	hresp, err := httpc.Post(c.BaseURL+"/node/lease", "application/octet-stream", &body)
	if err != nil {
		return LeaseResponse{}, fmt.Errorf("wire: post lease: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return LeaseResponse{}, fmt.Errorf("wire: node returned %s: %s", hresp.Status, strings.TrimSpace(string(msg)))
	}
	resp, err := ReadLeaseResponse(hresp.Body)
	if err != nil {
		return LeaseResponse{}, err
	}
	if resp.Err != "" {
		return *resp, fmt.Errorf("wire: node error: %s", resp.Err)
	}
	return *resp, nil
}

// NodeTx commits or aborts a node's staged delta.
func (c *Client) NodeTx(req TxRequest) (OKResponse, error) {
	var out OKResponse
	if err := c.postGob("/node/tx", req, &out); err != nil {
		return out, err
	}
	if out.Err != "" {
		return out, fmt.Errorf("wire: node error: %s", out.Err)
	}
	return out, nil
}
