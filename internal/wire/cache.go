package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"vcqr/internal/hashx"
)

// This file is the edge-cache half of the wire protocol
// (internal/cache): memcached-shaped get/put/invalidate/stats operations
// carried as length-prefixed binary frames over a single POST endpoint,
// under the same size cap as the chunk streams. Unlike the cluster
// frames these do not ride gob: a cache hit is the hot path of a cached
// deployment and gob pays a per-frame engine setup that dwarfs the
// actual byte shuffling, so the codec here is hand-rolled — a tag byte
// plus uvarint-length-prefixed fields over a pooled scratch buffer. A
// cache peer is deliberately outside the trust model — it stores opaque
// bytes the coordinator handed it and returns them verbatim; anything it
// garbles or forges dies on the client's entry digest compare, the
// coordinator's seam checks, or ultimately the user's unmodified stream
// verifier.

// CacheGet asks a peer for one entry by its full key.
type CacheGet struct {
	Key string
}

// CachePut stores one entry. Relation/Shard/Epoch place the entry in its
// invalidation group (Shard < 0 groups whole merged streams); Sum is the
// filler's digest over Bytes, stored and echoed so a reader can detect a
// corrupted or lazily tampered entry without trusting the peer.
type CachePut struct {
	Key      string
	Relation string
	Shard    int
	Epoch    uint64
	Sum      hashx.Digest
	Bytes    []byte
}

// CacheInvalidate drops entries. With Key set, exactly that entry; with
// Keep > 0, every entry of the (Relation, Shard) group whose epoch is
// not Keep; with Keep == 0, the whole group.
type CacheInvalidate struct {
	Relation string
	Shard    int
	Keep     uint64
	Key      string
}

// CacheFrame is one cache-protocol request: exactly one operation set.
type CacheFrame struct {
	Get        *CacheGet
	Put        *CachePut
	Invalidate *CacheInvalidate
	Stats      bool
}

// CacheStats is a peer's counter snapshot.
type CacheStats struct {
	Entries       int
	Bytes, Budget int64
	Hits, Misses  uint64
	Puts          uint64
	Evictions     uint64
	Invalidations uint64
}

// CacheReply answers one cache-protocol request.
type CacheReply struct {
	// Hit, Sum, Bytes answer a Get.
	Hit   bool
	Sum   hashx.Digest
	Bytes []byte
	// Dropped answers an Invalidate.
	Dropped int
	// Stats answers a Stats request.
	Stats *CacheStats
	Err   string
}

// Cache frame layout: 4-byte big-endian payload length, then a tag byte
// and the operation's fields. Strings and byte fields carry a uvarint
// length prefix; integers are (u)varints. A decoded frame must consume
// its payload exactly — trailing bytes are a malformed frame, so every
// byte on the wire is accounted for.
const (
	cacheTagGet        = 1
	cacheTagPut        = 2
	cacheTagInvalidate = 3
	cacheTagStats      = 4
	cacheTagReply      = 5
)

var errCacheFrame = errors.New("wire: malformed cache frame")

// cacheBufPool holds encode scratch: payload bytes are built once,
// header patched in place, and the whole frame leaves in one Write.
var cacheBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func appendCacheBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendCacheString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// writeCacheRaw patches the length header into b[:4] and writes the
// frame. b includes the 4 reserved header bytes.
func writeCacheRaw(w io.Writer, b []byte) error {
	n := len(b) - 4
	if n > MaxChunkFrame {
		return fmt.Errorf("wire: cache frame of %d bytes exceeds cap %d", n, MaxChunkFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err := w.Write(b)
	return err
}

// cacheDecoder is a sticky-error cursor over one frame payload.
type cacheDecoder struct {
	b   []byte
	err error
}

func (d *cacheDecoder) fail() { d.err = errCacheFrame }

func (d *cacheDecoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *cacheDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *cacheDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// bytes returns a sub-slice aliasing the frame's backing array (each
// read allocates a fresh payload, so aliases stay valid and private).
func (d *cacheDecoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := d.b[:n:n]
	d.b = d.b[n:]
	return out
}

func (d *cacheDecoder) str() string { return string(d.bytes()) }

// done fails the decode unless the payload was consumed exactly.
func (d *cacheDecoder) done() error {
	if d.err == nil && len(d.b) != 0 {
		d.fail()
	}
	return d.err
}

// readCachePayload reads one length-prefixed frame payload. A clean EOF
// before the header surfaces as io.EOF so stream loops terminate.
func readCachePayload(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxChunkFrame {
		return nil, fmt.Errorf("wire: cache frame of %d bytes exceeds cap %d", n, MaxChunkFrame)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b, nil
}

// WriteCacheFrame writes one cache request frame.
func WriteCacheFrame(w io.Writer, f *CacheFrame) error {
	bp := cacheBufPool.Get().(*[]byte)
	b := append((*bp)[:0], 0, 0, 0, 0)
	switch {
	case f.Get != nil:
		b = append(b, cacheTagGet)
		b = appendCacheString(b, f.Get.Key)
	case f.Put != nil:
		p := f.Put
		b = append(b, cacheTagPut)
		b = appendCacheString(b, p.Key)
		b = appendCacheString(b, p.Relation)
		b = binary.AppendVarint(b, int64(p.Shard))
		b = binary.AppendUvarint(b, p.Epoch)
		b = appendCacheBytes(b, p.Sum)
		b = appendCacheBytes(b, p.Bytes)
	case f.Invalidate != nil:
		iv := f.Invalidate
		b = append(b, cacheTagInvalidate)
		b = appendCacheString(b, iv.Relation)
		b = binary.AppendVarint(b, int64(iv.Shard))
		b = binary.AppendUvarint(b, iv.Keep)
		b = appendCacheString(b, iv.Key)
	case f.Stats:
		b = append(b, cacheTagStats)
	default:
		*bp = b[:0]
		cacheBufPool.Put(bp)
		return fmt.Errorf("wire: cache frame sets no operation")
	}
	err := writeCacheRaw(w, b)
	*bp = b[:0]
	cacheBufPool.Put(bp)
	return err
}

// ReadCacheFrame reads one cache request frame.
func ReadCacheFrame(r io.Reader) (*CacheFrame, error) {
	payload, err := readCachePayload(r)
	if err != nil {
		return nil, err
	}
	d := cacheDecoder{b: payload}
	var f CacheFrame
	switch d.byte() {
	case cacheTagGet:
		f.Get = &CacheGet{Key: d.str()}
	case cacheTagPut:
		f.Put = &CachePut{
			Key:      d.str(),
			Relation: d.str(),
			Shard:    int(d.varint()),
			Epoch:    d.uvarint(),
			Sum:      hashx.Digest(d.bytes()),
			Bytes:    d.bytes(),
		}
	case cacheTagInvalidate:
		f.Invalidate = &CacheInvalidate{
			Relation: d.str(),
			Shard:    int(d.varint()),
			Keep:     d.uvarint(),
			Key:      d.str(),
		}
	case cacheTagStats:
		f.Stats = true
	default:
		return nil, errCacheFrame
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return &f, nil
}

// WriteCacheReply writes one cache reply frame.
func WriteCacheReply(w io.Writer, rp *CacheReply) error {
	bp := cacheBufPool.Get().(*[]byte)
	b := append((*bp)[:0], 0, 0, 0, 0, cacheTagReply)
	var flags byte
	if rp.Hit {
		flags |= 1
	}
	if rp.Stats != nil {
		flags |= 2
	}
	b = append(b, flags)
	b = appendCacheBytes(b, rp.Sum)
	b = appendCacheBytes(b, rp.Bytes)
	b = binary.AppendVarint(b, int64(rp.Dropped))
	if s := rp.Stats; s != nil {
		b = binary.AppendVarint(b, int64(s.Entries))
		b = binary.AppendVarint(b, s.Bytes)
		b = binary.AppendVarint(b, s.Budget)
		b = binary.AppendUvarint(b, s.Hits)
		b = binary.AppendUvarint(b, s.Misses)
		b = binary.AppendUvarint(b, s.Puts)
		b = binary.AppendUvarint(b, s.Evictions)
		b = binary.AppendUvarint(b, s.Invalidations)
	}
	b = appendCacheString(b, rp.Err)
	err := writeCacheRaw(w, b)
	*bp = b[:0]
	cacheBufPool.Put(bp)
	return err
}

// ReadCacheReply reads one cache reply frame.
func ReadCacheReply(r io.Reader) (*CacheReply, error) {
	payload, err := readCachePayload(r)
	if err != nil {
		return nil, err
	}
	d := cacheDecoder{b: payload}
	if d.byte() != cacheTagReply {
		return nil, errCacheFrame
	}
	flags := d.byte()
	rp := &CacheReply{
		Hit:     flags&1 != 0,
		Sum:     hashx.Digest(d.bytes()),
		Bytes:   d.bytes(),
		Dropped: int(d.varint()),
	}
	if flags&2 != 0 {
		rp.Stats = &CacheStats{
			Entries:       int(d.varint()),
			Bytes:         d.varint(),
			Budget:        d.varint(),
			Hits:          d.uvarint(),
			Misses:        d.uvarint(),
			Puts:          d.uvarint(),
			Evictions:     d.uvarint(),
			Invalidations: d.uvarint(),
		}
	}
	rp.Err = d.str()
	if err := d.done(); err != nil {
		return nil, err
	}
	return rp, nil
}

// CacheOp posts one cache request frame to a peer's /cache endpoint and
// reads the reply frame.
func (c *Client) CacheOp(f *CacheFrame) (*CacheReply, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	if err := WriteCacheFrame(&body, f); err != nil {
		return nil, err
	}
	resp, err := httpc.Post(c.BaseURL+"/cache", "application/octet-stream", &body)
	if err != nil {
		return nil, fmt.Errorf("wire: post cache op: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("wire: cache peer returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	rp, err := ReadCacheReply(resp.Body)
	if err != nil {
		return nil, err
	}
	if rp.Err != "" {
		return rp, fmt.Errorf("wire: cache peer error: %s", rp.Err)
	}
	return rp, nil
}
