package wire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/wire"
)

func sampleChunks() []*engine.Chunk {
	h := hashx.New()
	return []*engine.Chunk{
		{
			Type:      engine.ChunkHeader,
			Seq:       0,
			Relation:  "Emp",
			Effective: engine.Query{Relation: "Emp", KeyLo: 10, KeyHi: 99},
			KeyLo:     10,
			KeyHi:     99,
		},
		{
			Type: engine.ChunkEntries,
			Seq:  1,
			Entries: []engine.VOEntry{{
				Mode:         engine.EntryElidedDup,
				G:            h.Hash([]byte("g")),
				HiddenLeaves: []hashx.Digest{h.Hash([]byte("leaf"))},
			}},
		},
		{Type: engine.ChunkFooter, Seq: 2, PredPrevG: h.Hash([]byte("pred"))},
	}
}

// TestChunkFrameRoundTrip writes frames back to back and reads them out
// again — each frame independently decodable, clean EOF at the end.
func TestChunkFrameRoundTrip(t *testing.T) {
	chunks := sampleChunks()
	var buf bytes.Buffer
	for _, c := range chunks {
		if err := wire.WriteChunkFrame(&buf, c); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range chunks {
		got, err := wire.ReadChunkFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := wire.ReadChunkFrame(r); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestChunkFrameTruncation checks that a stream dying mid-frame is a
// named error, not a silent EOF.
func TestChunkFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := wire.WriteChunkFrame(&buf, sampleChunks()[0]); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 3, len(full) / 2, len(full) - 1} {
		if _, err := wire.ReadChunkFrame(bytes.NewReader(full[:cut])); !errors.Is(err, wire.ErrFrameTruncated) {
			t.Fatalf("cut at %d: %v, want ErrFrameTruncated", cut, err)
		}
	}
}

// TestChunkFrameSizeLimit checks the length-prefix cap: a frame claiming
// more than MaxChunkFrame bytes is rejected before allocation.
func TestChunkFrameSizeLimit(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(wire.MaxChunkFrame+1))
	if _, err := wire.ReadChunkFrame(bytes.NewReader(hdr[:])); !errors.Is(err, wire.ErrFrameTooBig) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooBig", err)
	}
}

// TestChunkFrameGarbage checks that non-gob bytes fail cleanly.
func TestChunkFrameGarbage(t *testing.T) {
	body := []byte("this is not gob")
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := wire.ReadChunkFrame(&buf); err == nil {
		t.Fatal("garbage frame decoded")
	}
}

// FuzzReadChunkFrame fuzzes the frame decoder with raw bytes: it must
// never panic, and any chunk it accepts must re-encode.
func FuzzReadChunkFrame(f *testing.F) {
	var seed bytes.Buffer
	for _, c := range sampleChunks() {
		if err := wire.WriteChunkFrame(&seed, c); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			c, err := wire.ReadChunkFrame(r)
			if err != nil {
				break
			}
			if err := wire.WriteChunkFrame(io.Discard, c); err != nil {
				t.Fatalf("accepted chunk does not re-encode: %v", err)
			}
		}
	})
}
