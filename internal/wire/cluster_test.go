package wire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"vcqr/internal/hashx"
	"vcqr/internal/owner"
	"vcqr/internal/partition"
	"vcqr/internal/wire"
	"vcqr/internal/workload"
)

// splitFrames cuts a transfer stream back into its length-prefixed
// frames so tests can splice and truncate at frame granularity.
func splitFrames(t *testing.T, blob []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for len(blob) > 0 {
		if len(blob) < 4 {
			t.Fatal("dangling frame prefix")
		}
		n := int(binary.BigEndian.Uint32(blob[:4]))
		if len(blob) < 4+n {
			t.Fatal("frame overruns stream")
		}
		frames = append(frames, blob[:4+n])
		blob = blob[4+n:]
	}
	return frames
}

// TestShardTransferIntegrity pins the transfer codec's three outcomes:
// a clean round trip, a tampered stream rejected by the slice-digest
// compare (wire.ErrTransferDigest), and a truncated stream rejected as
// such (wire.ErrTransferTruncated).
func TestShardTransferIntegrity(t *testing.T) {
	h := hashx.New()
	o := owner.NewWithKey(h, signKey(t))
	rel, err := workload.Uniform(workload.UniformConfig{N: 40, L: 0, U: 1 << 20, PayloadSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := o.Publish(rel, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := partition.Split(sr, 2)
	if err != nil {
		t.Fatal(err)
	}
	man := wire.ShardManifest{Spec: set.Spec, Shard: 0}

	var clean bytes.Buffer
	if err := wire.WriteShardTransfer(&clean, h, man, set.Slices[0]); err != nil {
		t.Fatal(err)
	}
	gotMan, got, err := wire.ReadShardTransfer(bytes.NewReader(clean.Bytes()), h)
	if err != nil {
		t.Fatalf("clean transfer rejected: %v", err)
	}
	if gotMan.Shard != 0 || len(got.Recs) != len(set.Slices[0].Recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Recs), len(set.Slices[0].Recs))
	}
	if !partition.SliceDigest(h, got).Equal(partition.SliceDigest(h, set.Slices[0])) {
		t.Fatal("round trip changed the slice digest")
	}

	// Tamper: ship the original records but a foot minted for a modified
	// slice — the receiver's recomputed digest must disagree, by name.
	tampered := set.Slices[0].Clone()
	tampered.Recs[2].Sig[0] ^= 0x01
	var evil bytes.Buffer
	if err := wire.WriteShardTransfer(&evil, h, man, tampered); err != nil {
		t.Fatal(err)
	}
	cleanFrames := splitFrames(t, clean.Bytes())
	evilFrames := splitFrames(t, evil.Bytes())
	var spliced bytes.Buffer
	for _, f := range cleanFrames[:len(cleanFrames)-1] {
		spliced.Write(f)
	}
	spliced.Write(evilFrames[len(evilFrames)-1]) // the tampered slice's foot
	if _, _, err := wire.ReadShardTransfer(bytes.NewReader(spliced.Bytes()), h); !errors.Is(err, wire.ErrTransferDigest) {
		t.Fatalf("spliced transfer error = %v, want ErrTransferDigest", err)
	}

	// Truncate: drop the foot entirely.
	var cut bytes.Buffer
	for _, f := range cleanFrames[:len(cleanFrames)-1] {
		cut.Write(f)
	}
	if _, _, err := wire.ReadShardTransfer(bytes.NewReader(cut.Bytes()), h); !errors.Is(err, wire.ErrTransferTruncated) {
		t.Fatalf("truncated transfer error = %v, want ErrTransferTruncated", err)
	}
}

// TestLeaseFrameRoundTrip pins the heartbeat codec: request and
// acknowledgement survive a frame round trip field-exact.
func TestLeaseFrameRoundTrip(t *testing.T) {
	req := &wire.LeaseRequest{Coordinator: "coord-a", Epoch: 7, TTLMillis: 15000, Seq: 42}
	var buf bytes.Buffer
	if err := wire.WriteLeaseRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	gotReq, err := wire.ReadLeaseRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *gotReq != *req {
		t.Fatalf("request round trip: %+v != %+v", gotReq, req)
	}

	resp := &wire.LeaseResponse{Epoch: 7, Hosted: 3, Inflight: 11}
	buf.Reset()
	if err := wire.WriteLeaseResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	gotResp, err := wire.ReadLeaseResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *gotResp != *resp {
		t.Fatalf("response round trip: %+v != %+v", gotResp, resp)
	}
}

// FuzzReadLeaseFrame fuzzes both heartbeat decoders with raw bytes:
// neither may panic, and any frame either accepts must re-encode. The
// coordinator feeds these decoders bytes from nodes it explicitly does
// not trust.
func FuzzReadLeaseFrame(f *testing.F) {
	var seed bytes.Buffer
	if err := wire.WriteLeaseRequest(&seed, &wire.LeaseRequest{Coordinator: "c", Epoch: 1, TTLMillis: 1000, Seq: 1}); err != nil {
		f.Fatal(err)
	}
	if err := wire.WriteLeaseResponse(&seed, &wire.LeaseResponse{Epoch: 1, Hosted: 2, Inflight: 3}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			req, err := wire.ReadLeaseRequest(r)
			if err != nil {
				break
			}
			if err := wire.WriteLeaseRequest(io.Discard, req); err != nil {
				t.Fatalf("accepted lease request does not re-encode: %v", err)
			}
		}
		r = bytes.NewReader(data)
		for {
			resp, err := wire.ReadLeaseResponse(r)
			if err != nil {
				break
			}
			if err := wire.WriteLeaseResponse(io.Discard, resp); err != nil {
				t.Fatalf("accepted lease response does not re-encode: %v", err)
			}
		}
	})
}

// FuzzReadNodeFrame fuzzes the sub-stream frame decoder — the bytes the
// coordinator's merge path and the fault injector's frame parser both
// consume from untrusted node streams. It must never panic, and accepted
// frames must re-encode.
func FuzzReadNodeFrame(f *testing.F) {
	var seed bytes.Buffer
	if err := wire.WriteNodeFrame(&seed, &wire.NodeFrame{Hello: &wire.NodeHello{Shard: 1, Epoch: 2}}); err != nil {
		f.Fatal(err)
	}
	if err := wire.WriteNodeFrame(&seed, &wire.NodeFrame{Err: "boom"}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := wire.ReadNodeFrame(r)
			if err != nil {
				break
			}
			if err := wire.WriteNodeFrame(io.Discard, fr); err != nil {
				t.Fatalf("accepted node frame does not re-encode: %v", err)
			}
		}
	})
}
