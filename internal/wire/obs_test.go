package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"vcqr/internal/engine"
	"vcqr/internal/obs"
)

// These tests pin the wire-compatibility claim of the tracing fields:
// they are *optional* gob struct fields, so a peer built before this
// change decodes the new encodings unchanged (gob drops fields the
// receiver lacks) and a new peer decodes old encodings with the fields
// zero. The "old" shapes below are literal copies of the structs as they
// existed before the trace fields landed.

// oldStreamRequest is StreamRequest before Trace/Timing.
type oldStreamRequest struct {
	Role      string
	Query     engine.Query
	ChunkRows int
}

// oldShardStreamRequest is ShardStreamRequest before Trace.
type oldShardStreamRequest struct {
	Role         string
	Query        engine.Query
	Shard        int
	Lo, Hi       uint64
	First, Last  bool
	ChunkRows    int
	RoutingEpoch uint64
}

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestOldReaderSkipsStreamRequestTrace(t *testing.T) {
	in := StreamRequest{
		Role: "all", Query: engine.Query{Relation: "r", KeyLo: 5, KeyHi: 9},
		ChunkRows: 64, Trace: "deadbeefdeadbeef", Timing: true,
	}
	var old oldStreamRequest
	gobRoundTrip(t, in, &old)
	if old.Role != "all" || old.Query.Relation != "r" || old.Query.KeyLo != 5 || old.ChunkRows != 64 {
		t.Fatalf("old reader lost pre-existing fields: %+v", old)
	}
}

func TestNewReaderAcceptsOldStreamRequest(t *testing.T) {
	in := oldStreamRequest{Role: "all", Query: engine.Query{Relation: "r", KeyHi: 7}, ChunkRows: 32}
	var cur StreamRequest
	gobRoundTrip(t, in, &cur)
	if cur.Role != "all" || cur.Query.KeyHi != 7 || cur.ChunkRows != 32 {
		t.Fatalf("new reader lost fields from old encoding: %+v", cur)
	}
	if cur.Trace != "" || cur.Timing {
		t.Fatalf("absent optional fields must decode to zero, got %+v", cur)
	}
}

func TestOldReaderSkipsShardStreamRequestTrace(t *testing.T) {
	in := ShardStreamRequest{
		Role: "all", Query: engine.Query{Relation: "r"},
		Shard: 2, Lo: 10, Hi: 20, First: true, ChunkRows: 16,
		RoutingEpoch: 3, Trace: "0123456789abcdef",
	}
	var old oldShardStreamRequest
	gobRoundTrip(t, in, &old)
	if old.Shard != 2 || old.Lo != 10 || old.Hi != 20 || !old.First || old.RoutingEpoch != 3 {
		t.Fatalf("old reader lost pre-existing fields: %+v", old)
	}
	var cur ShardStreamRequest
	gobRoundTrip(t, old, &cur)
	if cur.Trace != "" {
		t.Fatalf("absent Trace must decode empty, got %q", cur.Trace)
	}
	if cur.Shard != 2 || cur.RoutingEpoch != 3 {
		t.Fatalf("new reader lost fields: %+v", cur)
	}
}

func TestTimingTrailerFrameRoundTrip(t *testing.T) {
	in := &engine.Chunk{
		Type:  engine.ChunkTiming,
		Trace: "feedfacefeedface",
		Timing: []obs.StageDur{
			{Stage: obs.StageStreamTotal, NS: 123456},
			{Stage: obs.StageWireEncode, NS: 789},
		},
	}
	var buf bytes.Buffer
	if err := WriteChunkFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadChunkFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != engine.ChunkTiming || out.Trace != in.Trace || len(out.Timing) != 2 ||
		out.Timing[0] != in.Timing[0] || out.Timing[1] != in.Timing[1] {
		t.Fatalf("trailer round trip mismatch: %+v", out)
	}
	// An old-shaped chunk reader (no Trace/Timing fields) must decode the
	// frame without error — the trailer degrades to an unknown-typed chunk
	// it can ignore or reject at its own layer, never a decode failure.
	type oldChunk struct {
		Type engine.ChunkType
		Seq  uint64
		Err  string
	}
	buf.Reset()
	if err := WriteChunkFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := buf.Read(hdr[:]); err != nil {
		t.Fatal(err)
	}
	var old oldChunk
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old reader failed to decode timing frame: %v", err)
	}
	if old.Type != engine.ChunkTiming {
		t.Fatalf("old reader saw type %v", old.Type)
	}
}

func TestNodeFootTimingOptional(t *testing.T) {
	type oldNodeFoot struct {
		Entries uint64
	}
	in := NodeFoot{Entries: 9, Timing: []obs.StageDur{{Stage: obs.StageVOAssemble, NS: 42}}}
	var old oldNodeFoot
	gobRoundTrip(t, in, &old)
	if old.Entries != 9 {
		t.Fatalf("old reader lost Entries: %+v", old)
	}
	var cur NodeFoot
	gobRoundTrip(t, oldNodeFoot{Entries: 4}, &cur)
	if cur.Entries != 4 || cur.Timing != nil {
		t.Fatalf("optional Timing must decode nil: %+v", cur)
	}
}
