package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/verify"
)

// Chunk framing: each chunk of a streamed result travels as one
// self-delimiting frame — a 4-byte big-endian length followed by that
// many bytes of gob-encoded engine.Chunk. Frames are independently
// decodable (each carries its own gob type preamble), so a reader can
// resynchronize per frame, bound its memory by MaxChunkFrame, and hand
// chunks to the verifier the moment they arrive. Nothing in the framing
// is trusted: truncation, reordering and tampering are all caught by the
// verification layer; the frame format only needs to fail cleanly.

// MaxChunkFrame bounds one frame's payload. An engine chunk holds at
// most MaxChunkRows entries of digests and values; anything larger is a
// malformed or malicious stream, rejected before allocation.
const MaxChunkFrame = 64 << 20

// Framing errors.
var (
	// ErrFrameTooBig reports a length prefix beyond MaxChunkFrame.
	ErrFrameTooBig = errors.New("wire: chunk frame exceeds size limit")
	// ErrFrameTruncated reports a stream that ended inside a frame.
	ErrFrameTruncated = errors.New("wire: chunk frame truncated")
)

// frameBufPool recycles the per-frame scratch buffers of the chunk
// codec. A long stream writes (and reads) thousands of frames; without
// the pool every frame retires a buffer the size of its payload to the
// garbage collector. Buffers that grew beyond maxPooledFrame are dropped
// instead of pooled so one pathological frame cannot pin megabytes.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledFrame bounds the capacity of buffers returned to the pool.
const maxPooledFrame = 1 << 20

func putFrameBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledFrame {
		frameBufPool.Put(buf)
	}
}

// WriteChunkFrame writes one length-prefixed chunk frame. The encode
// scratch buffer is pooled; nothing of the chunk is retained.
func WriteChunkFrame(w io.Writer, c *engine.Chunk) error {
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer putFrameBuf(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(c); err != nil {
		return fmt.Errorf("wire: encode chunk: %w", err)
	}
	if buf.Len() > MaxChunkFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadChunkFrame reads one frame. It returns io.EOF exactly at a frame
// boundary (the clean end of a stream) and ErrFrameTruncated when the
// stream dies mid-frame.
func ReadChunkFrame(r io.Reader) (*engine.Chunk, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: length prefix: %v", ErrFrameTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxChunkFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	// Copy incrementally rather than pre-allocating the claimed length:
	// a lying length prefix on a short stream then costs a small buffer,
	// not MaxChunkFrame of allocation. The buffer is pooled — gob copies
	// everything it decodes into the chunk, so nothing aliases it after
	// the decode returns.
	body := frameBufPool.Get().(*bytes.Buffer)
	defer putFrameBuf(body)
	body.Reset()
	if _, err := io.CopyN(body, r, int64(n)); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrFrameTruncated, err)
	}
	var c engine.Chunk
	if err := gob.NewDecoder(body).Decode(&c); err != nil {
		return nil, fmt.Errorf("wire: decode chunk: %w", err)
	}
	return &c, nil
}

// StreamRequest asks a publisher to answer a query as a chunk stream.
type StreamRequest struct {
	Role  string
	Query engine.Query
	// ChunkRows bounds entries per chunk; 0 lets the publisher choose.
	ChunkRows int

	// Trace is an optional client-supplied trace ID; empty lets the
	// serving entry point mint one (internal/obs). Old servers decode
	// requests without this field untouched — gob ignores fields the
	// receiver lacks — so tracing needs no protocol version bump. Trace
	// IDs are advisory and never part of the verified material.
	Trace string
	// Timing asks the server to append an advisory engine.ChunkTiming
	// trailer after the footer carrying the per-stage latency breakdown.
	// Old servers ignore the field and send no trailer; old clients never
	// set it and so never see one.
	Timing bool
}

// WriteStream drains a result stream into w as chunk frames, flushing
// after every frame when w supports it (http.Flusher or *bufio.Writer),
// so each chunk reaches the network without waiting for the next.
// Publisher-side errors after the first frame are sent in-band as a
// ChunkError frame — the HTTP status is long gone by then.
func WriteStream(w io.Writer, st engine.ResultStream) error {
	// Fan-out streams hold per-shard workers; release them if the drain
	// aborts early (a fully drained stream's Close is a no-op).
	if c, ok := st.(io.Closer); ok {
		defer c.Close()
	}
	flush := func() {}
	switch f := w.(type) {
	case http.Flusher:
		flush = f.Flush
	case *bufio.Writer:
		flush = func() { f.Flush() }
	}
	for {
		c, err := st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			ec := &engine.Chunk{Type: engine.ChunkError, Err: err.Error()}
			if werr := WriteChunkFrame(w, ec); werr != nil {
				return werr
			}
			flush()
			return err
		}
		if err := WriteChunkFrame(w, c); err != nil {
			return err
		}
		flush()
	}
}

// StreamStats reports transport-level accounting for one streamed query.
type StreamStats struct {
	// Chunks counts frames consumed (header + entries + footer).
	Chunks int
	// Bytes counts frame payload bytes plus length prefixes.
	Bytes int64
	// Rows counts verified rows delivered to the callback.
	Rows int

	// Trace and Timing echo the server's advisory timing trailer when the
	// client requested one (Client.Timing); both stay zero otherwise.
	// Neither is verified — they are operational data for vcquery -timing
	// and friends, not evidence.
	Trace  string
	Timing []obs.StageDur
}

// countingReader tallies bytes as frames are read.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// QueryStream sends a streaming query and feeds every received chunk
// through an incremental verifier, invoking fn (when non-nil) for each
// result row as the verifier releases it. It returns only after the
// stream is fully verified — a nil error means exactly what a nil error
// from Query + VerifyResult means, but the rows were delivered (and the
// publisher's memory stayed) chunk by chunk. On any verification or
// transport failure the callback stops and the error reports what broke.
//
// Note the streaming trust caveat: with condensed signatures the rows
// delivered before the footer are chain-consistent but only anchored to
// the owner's key when QueryStream returns nil. Callers that must not
// act on provisional rows should buffer until it returns.
func (c *Client) QueryStream(v *verify.Verifier, role accessctl.Role, roleName string, q engine.Query, chunkRows int, fn func(engine.Row) error) (StreamStats, error) {
	return c.QueryStreamWith(v.NewStreamVerifier(q, role), roleName, q, chunkRows, fn)
}

// QueryStreamWith is QueryStream over an explicit chunk verifier — the
// seam that lets partitioned publications plug in the shard-aware
// verifier (verify.ShardStreamVerifier) while unpartitioned clients keep
// the plain incremental one. The verifier must be fresh: it is consumed
// by this one stream.
func (c *Client) QueryStreamWith(sv verify.ChunkVerifier, roleName string, q engine.Query, chunkRows int, fn func(engine.Row) error) (StreamStats, error) {
	var stats StreamStats
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	req := StreamRequest{Role: roleName, Query: q, ChunkRows: chunkRows,
		Trace: c.Trace, Timing: c.Timing}
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return stats, fmt.Errorf("wire: encode stream request: %w", err)
	}
	resp, err := httpc.Post(c.BaseURL+"/stream", "application/octet-stream", &body)
	if err != nil {
		return stats, fmt.Errorf("wire: post stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return stats, fmt.Errorf("wire: publisher returned %s", resp.Status)
	}

	cr := &countingReader{r: resp.Body}
	for {
		chunk, err := ReadChunkFrame(cr)
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
		if chunk.Type == engine.ChunkTiming {
			// Advisory trailer (sent only because this client asked):
			// surface it in the stats, never feed it to the verifier — it
			// is not part of the result and the verifier would reject any
			// chunk after the footer.
			stats.Trace = chunk.Trace
			stats.Timing = chunk.Timing
			continue
		}
		stats.Chunks++
		stats.Bytes = cr.n
		rows, err := sv.Consume(chunk)
		if err != nil {
			return stats, err
		}
		for _, row := range rows {
			stats.Rows++
			if fn != nil {
				if err := fn(row); err != nil {
					return stats, err
				}
			}
		}
	}
	stats.Bytes = cr.n
	if err := sv.Finish(); err != nil {
		return stats, err
	}
	return stats, nil
}
