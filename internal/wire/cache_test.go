package wire_test

import (
	"bytes"
	"io"
	"testing"

	"vcqr/internal/hashx"
	"vcqr/internal/wire"
)

// sampleCacheFrames covers every operation shape of the cache protocol.
func sampleCacheFrames() []*wire.CacheFrame {
	sum := hashx.New().Hash([]byte("entry-bytes"))
	return []*wire.CacheFrame{
		{Get: &wire.CacheGet{Key: "Uniform\x00v1\x00s2\x00e7\x00all\x000-99|c8\x000-0"}},
		{Put: &wire.CachePut{
			Key:      "Uniform\x00v1\x00s2\x00e7\x00all\x000-99|c8\x000-0",
			Relation: "Uniform",
			Shard:    2,
			Epoch:    7,
			Sum:      sum,
			Bytes:    []byte("entry-bytes"),
		}},
		{Put: &wire.CachePut{Key: "stream", Relation: "Uniform", Shard: -1, Bytes: []byte{0}}},
		{Invalidate: &wire.CacheInvalidate{Relation: "Uniform", Shard: 2, Keep: 8}},
		{Invalidate: &wire.CacheInvalidate{Relation: "Uniform", Shard: -1}},
		{Invalidate: &wire.CacheInvalidate{Key: "one-entry"}},
		{Stats: true},
	}
}

// TestCacheFrameRoundTrip pins the request and reply frames through the
// pooled codec.
func TestCacheFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleCacheFrames()
	for _, f := range frames {
		if err := wire.WriteCacheFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := wire.ReadCacheFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		switch {
		case want.Get != nil:
			if got.Get == nil || got.Get.Key != want.Get.Key {
				t.Fatalf("frame %d: get mismatch: %+v", i, got)
			}
		case want.Put != nil:
			if got.Put == nil || got.Put.Key != want.Put.Key ||
				got.Put.Relation != want.Put.Relation || got.Put.Shard != want.Put.Shard ||
				got.Put.Epoch != want.Put.Epoch || !bytes.Equal(got.Put.Bytes, want.Put.Bytes) ||
				!got.Put.Sum.Equal(want.Put.Sum) {
				t.Fatalf("frame %d: put mismatch: %+v", i, got)
			}
		case want.Invalidate != nil:
			if got.Invalidate == nil || *got.Invalidate != *want.Invalidate {
				t.Fatalf("frame %d: invalidate mismatch: %+v", i, got)
			}
		case want.Stats:
			if !got.Stats {
				t.Fatalf("frame %d: stats flag lost", i)
			}
		}
	}
	if _, err := wire.ReadCacheFrame(&buf); err != io.EOF {
		t.Fatalf("trailing read returned %v, want io.EOF", err)
	}

	sum := hashx.New().Hash([]byte("b"))
	rp := &wire.CacheReply{Hit: true, Sum: sum, Bytes: []byte("b"), Dropped: 3,
		Stats: &wire.CacheStats{Entries: 1, Bytes: 2, Budget: 3, Hits: 4}}
	if err := wire.WriteCacheReply(&buf, rp); err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadCacheReply(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Hit || !got.Sum.Equal(sum) || !bytes.Equal(got.Bytes, rp.Bytes) ||
		got.Dropped != 3 || got.Stats == nil || *got.Stats != *rp.Stats {
		t.Fatalf("reply mismatch: %+v", got)
	}
}

// FuzzReadCacheFrame fuzzes the cache request decoder with raw bytes: it
// must never panic, and any frame it accepts must re-encode.
func FuzzReadCacheFrame(f *testing.F) {
	var seed bytes.Buffer
	for _, fr := range sampleCacheFrames() {
		if err := wire.WriteCacheFrame(&seed, fr); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := wire.ReadCacheFrame(r)
			if err != nil {
				break
			}
			if err := wire.WriteCacheFrame(io.Discard, fr); err != nil {
				t.Fatalf("accepted frame does not re-encode: %v", err)
			}
		}
	})
}
