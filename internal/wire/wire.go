// Package wire provides serialization and the HTTP transport of the
// data-publishing deployment (Figure 3): the owner ships gob-encoded
// signed relations to publishers; publishers answer queries over HTTP
// with gob-encoded results; users verify client-side with the owner's
// public key. Nothing in the transport is trusted — all integrity comes
// from the verification objects.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/big"
	"net/http"
	"os"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
)

// Snapshot is the on-disk publication format vcsign writes and vcserve
// loads: either a plain signed relation or a partitioned set. The
// encoding is a short magic prefix followed by gob, so pre-partitioning
// snapshot files (bare gob relations) remain loadable via the fallback
// in DecodeSnapshot.
type Snapshot struct {
	Relation  *core.SignedRelation
	Partition *partition.Set
}

// snapMagic prefixes Snapshot encodings; bare-relation files (the
// pre-partitioning format) lack it.
var snapMagic = []byte("vcqr-snapshot-1\n")

// EncodeSnapshot serializes a publication snapshot.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(snapMagic)
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("wire: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a publication snapshot, transparently
// accepting the legacy bare-relation format. Publishers must still
// validate the contents against the owner's public key.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if !bytes.HasPrefix(data, snapMagic) {
		sr, err := DecodeRelation(data)
		if err != nil {
			return nil, err
		}
		return &Snapshot{Relation: sr}, nil
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data[len(snapMagic):])).Decode(&snap); err != nil {
		return nil, fmt.Errorf("wire: decode snapshot: %w", err)
	}
	return &snap, nil
}

// ClientParams is everything a user needs from the owner over an
// authenticated channel to verify results: the public key, the domain
// parameters, the schema, and the role definitions (so the user can check
// query rewrites against their own rights).
type ClientParams struct {
	N      *big.Int
	E      int
	Params core.Params
	Schema relation.Schema
	Roles  map[string]accessctl.Role
	// Partition is the shard layout when the publication is
	// range-partitioned, nil otherwise. It is advisory for soundness (the
	// signature chain alone proves completeness) but lets stream clients
	// run the fail-fast shard hand-off checks of
	// verify.ShardStreamVerifier.
	Partition *partition.Spec
}

// WriteClientParams writes the parameters file the owner distributes.
func WriteClientParams(path string, cp ClientParams) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wire: write params: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(cp); err != nil {
		f.Close()
		return fmt.Errorf("wire: encode params: %w", err)
	}
	return f.Close()
}

// ReadClientParams loads a parameters file.
func ReadClientParams(path string) (ClientParams, error) {
	f, err := os.Open(path)
	if err != nil {
		return ClientParams{}, fmt.Errorf("wire: read params: %w", err)
	}
	defer f.Close()
	var cp ClientParams
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return ClientParams{}, fmt.Errorf("wire: decode params: %w", err)
	}
	return cp, nil
}

// EncodeRelation serializes a signed relation for distribution.
func EncodeRelation(sr *core.SignedRelation) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sr); err != nil {
		return nil, fmt.Errorf("wire: encode relation: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRelation deserializes a signed relation. Publishers must still
// Validate it against the owner's public key.
func DecodeRelation(data []byte) (*core.SignedRelation, error) {
	var sr core.SignedRelation
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("wire: decode relation: %w", err)
	}
	return &sr, nil
}

// Request is a query addressed to a publisher.
type Request struct {
	Role  string
	Query engine.Query
}

// Response wraps either a result or a publisher-side error message.
type Response struct {
	Result *engine.Result
	Err    string
}

// BatchRequest carries several queries for one role in a single round
// trip — amortizing transport and letting the publisher serve all of
// them from one epoch snapshot.
type BatchRequest struct {
	Role    string
	Queries []engine.Query
}

// BatchResponse returns one Response per query, in order. Individual
// failures do not fail the batch.
type BatchResponse struct {
	Items []Response
}

// DeltaResponse acknowledges a delta ingest with the publisher's new
// epoch, or reports why the batch was rejected (validation failures
// leave the published epoch untouched).
type DeltaResponse struct {
	Epoch uint64
	Err   string
}

// EncodeDelta serializes an owner update batch for the ingest endpoint.
func EncodeDelta(d delta.Delta) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("wire: encode delta: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeDelta deserializes an update batch. Publishers must still apply
// it through delta.Apply, which validates against the owner's key.
func DecodeDelta(data []byte) (delta.Delta, error) {
	var d delta.Delta
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&d); err != nil {
		return delta.Delta{}, fmt.Errorf("wire: decode delta: %w", err)
	}
	return d, nil
}

// EncodeResult and DecodeResult serialize publisher responses.
func EncodeResult(res *engine.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Response{Result: res}); err != nil {
		return nil, fmt.Errorf("wire: encode result: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeResult deserializes a publisher response.
func DecodeResult(data []byte) (*engine.Result, error) {
	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("wire: decode result: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("wire: publisher error: %s", resp.Err)
	}
	return resp.Result, nil
}

// QueryHandler returns the POST /query endpoint over any query executor
// (engine.Publisher.Execute, server.Server.Query) — one implementation
// of the wire protocol shared by every front end.
func QueryHandler(exec func(role string, q engine.Query) (*engine.Result, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var resp Response
		res, err := exec(req.Role, req.Query)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Result = res
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := gob.NewEncoder(w).Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// Handler returns an http.Handler exposing a bare publisher at POST
// /query. internal/server composes QueryHandler with caching, epochs and
// more endpoints; this minimal form remains for embedding a publisher
// without the serving layer.
func Handler(pub *engine.Publisher) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/query", QueryHandler(pub.Execute))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Client queries a remote publisher.
type Client struct {
	BaseURL string
	HTTP    *http.Client

	// Trace, when non-empty, stamps outgoing streaming requests with a
	// caller-chosen trace ID; empty lets the server mint one. Timing asks
	// streaming servers for the advisory per-stage timing trailer
	// (surfaced in StreamStats). Both are optional wire fields old
	// servers ignore.
	Trace  string
	Timing bool
}

// Query sends a request and decodes the response. The result is NOT
// verified; callers pass it to verify.Verifier.
func (c *Client) Query(role string, q engine.Query) (*engine.Result, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(Request{Role: role, Query: q}); err != nil {
		return nil, fmt.Errorf("wire: encode request: %w", err)
	}
	resp, err := httpc.Post(c.BaseURL+"/query", "application/octet-stream", &body)
	if err != nil {
		return nil, fmt.Errorf("wire: post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("wire: publisher returned %s", resp.Status)
	}
	var out Response
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("wire: decode response: %w", err)
	}
	if out.Err != "" {
		return nil, fmt.Errorf("wire: publisher error: %s", out.Err)
	}
	return out.Result, nil
}

// QueryBatch sends several queries in one round trip. It returns one
// result or error per query; the returned error covers transport-level
// failures only.
func (c *Client) QueryBatch(role string, qs []engine.Query) ([]*engine.Result, []error, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(BatchRequest{Role: role, Queries: qs}); err != nil {
		return nil, nil, fmt.Errorf("wire: encode batch: %w", err)
	}
	resp, err := httpc.Post(c.BaseURL+"/batch", "application/octet-stream", &body)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: post batch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("wire: publisher returned %s", resp.Status)
	}
	var out BatchResponse
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, nil, fmt.Errorf("wire: decode batch response: %w", err)
	}
	if len(out.Items) != len(qs) {
		return nil, nil, fmt.Errorf("wire: %d batch items for %d queries", len(out.Items), len(qs))
	}
	results := make([]*engine.Result, len(qs))
	errs := make([]error, len(qs))
	for i, item := range out.Items {
		if item.Err != "" {
			errs[i] = fmt.Errorf("wire: publisher error: %s", item.Err)
			continue
		}
		results[i] = item.Result
	}
	return results, errs, nil
}

// SendDelta pushes an owner update batch to the publisher's ingest
// endpoint and returns the publisher's new epoch.
func (c *Client) SendDelta(d delta.Delta) (uint64, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	blob, err := EncodeDelta(d)
	if err != nil {
		return 0, err
	}
	resp, err := httpc.Post(c.BaseURL+"/delta", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return 0, fmt.Errorf("wire: post delta: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("wire: publisher returned %s", resp.Status)
	}
	var out DeltaResponse
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("wire: decode delta response: %w", err)
	}
	if out.Err != "" {
		return 0, fmt.Errorf("wire: publisher rejected delta: %s", out.Err)
	}
	return out.Epoch, nil
}
