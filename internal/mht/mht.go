// Package mht implements the Merkle hash tree used in three places by the
// scheme of Pang et al. (SIGMOD 2005):
//
//   - the per-record tree over attribute values, MHT(r.A) in formula (3),
//     which lets the publisher substitute digests for projected-out or
//     access-controlled attributes;
//   - the small tree over the m preferred non-canonical representations of
//     delta_t (Figures 7 and 8), whose root is folded into g(r);
//   - the whole-table tree of the Devanbu et al. baseline, including the
//     contiguous-range verification object that scheme ships to users.
//
// Trees are padded to a power of two with a fixed padding digest so that
// every leaf has a well-defined audit path and point updates are O(log n).
package mht

import (
	"fmt"

	"vcqr/internal/hashx"
)

// Tree is a Merkle hash tree over a fixed number of leaves. Leaves are
// addressed by their original index (before padding).
type Tree struct {
	h      *hashx.Hasher
	n      int              // number of real leaves
	width  int              // padded width (power of two, >= 1)
	levels [][]hashx.Digest // levels[0] = padded leaf digests, last = root
}

// padDigest is the digest stored in padding positions. It is a constant,
// publicly-computable value, so padding adds no trust assumptions.
func padDigest(h *hashx.Hasher) hashx.Digest {
	return h.Leaf([]byte("mht/pad"))
}

// nextPow2 returns the smallest power of two >= n (and >= 1).
func nextPow2(n int) int {
	w := 1
	for w < n {
		w <<= 1
	}
	return w
}

// Build constructs a tree over the given leaf data; each leaf is hashed
// with the Hasher's leaf tag first.
func Build(h *hashx.Hasher, leaves [][]byte) *Tree {
	digests := make([]hashx.Digest, len(leaves))
	for i, l := range leaves {
		digests[i] = h.Leaf(l)
	}
	return BuildFromDigests(h, digests)
}

// BuildFromDigests constructs a tree over precomputed leaf digests. The
// digest slice is not retained; an empty tree (zero leaves) is legal and
// has the padding digest as its root.
func BuildFromDigests(h *hashx.Hasher, leaves []hashx.Digest) *Tree {
	n := len(leaves)
	width := nextPow2(n)
	level0 := make([]hashx.Digest, width)
	pad := padDigest(h)
	for i := 0; i < width; i++ {
		if i < n {
			level0[i] = leaves[i].Clone()
		} else {
			level0[i] = pad
		}
	}
	t := &Tree{h: h, n: n, width: width}
	t.levels = append(t.levels, level0)
	for w := width; w > 1; w /= 2 {
		prev := t.levels[len(t.levels)-1]
		next := make([]hashx.Digest, w/2)
		for i := range next {
			next[i] = h.Node(prev[2*i], prev[2*i+1])
		}
		t.levels = append(t.levels, next)
	}
	return t
}

// Len returns the number of real (unpadded) leaves.
func (t *Tree) Len() int { return t.n }

// Root returns the root digest.
func (t *Tree) Root() hashx.Digest { return t.levels[len(t.levels)-1][0] }

// Leaf returns the digest of leaf i.
func (t *Tree) Leaf(i int) hashx.Digest {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("mht: leaf index %d out of range [0,%d)", i, t.n))
	}
	return t.levels[0][i]
}

// PathElem is one step of an audit path: the sibling digest and whether
// that sibling sits to the right of the path node.
type PathElem struct {
	Sibling hashx.Digest
	Right   bool
}

// Path returns the audit path for leaf i: the sibling digests from leaf
// level up to (but excluding) the root. Combining the leaf digest with the
// path reproduces the root; this is the VO of Section 2.1.
func (t *Tree) Path(i int) []PathElem {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("mht: leaf index %d out of range [0,%d)", i, t.n))
	}
	var path []PathElem
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		sib := idx ^ 1
		path = append(path, PathElem{
			Sibling: t.levels[lvl][sib].Clone(),
			Right:   sib > idx,
		})
		idx /= 2
	}
	return path
}

// RootFromPath recomputes the root implied by a leaf digest and its audit
// path. The caller compares the result against a trusted root.
func RootFromPath(h *hashx.Hasher, leaf hashx.Digest, path []PathElem) hashx.Digest {
	d := leaf
	for _, e := range path {
		if e.Right {
			d = h.Node(d, e.Sibling)
		} else {
			d = h.Node(e.Sibling, d)
		}
	}
	return d
}

// VerifyPath reports whether leaf+path reproduce root.
func VerifyPath(h *hashx.Hasher, leaf hashx.Digest, path []PathElem, root hashx.Digest) bool {
	return RootFromPath(h, leaf, path).Equal(root)
}

// Update replaces leaf i's digest and recomputes the O(log n) path to the
// root, returning the number of node recomputations performed (used by the
// Section 6.3 update-cost experiment).
func (t *Tree) Update(i int, leaf hashx.Digest) int {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("mht: leaf index %d out of range [0,%d)", i, t.n))
	}
	t.levels[0][i] = leaf.Clone()
	idx := i
	work := 0
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		parent := idx / 2
		t.levels[lvl+1][parent] = t.h.Node(t.levels[lvl][parent*2], t.levels[lvl][parent*2+1])
		idx = parent
		work++
	}
	return work
}

// RangeProof is the verification object for a contiguous leaf interval
// [Lo, Hi] (inclusive): the digests of the maximal subtrees disjoint from
// the interval, in deterministic left-to-right traversal order. This is
// the structure the Devanbu baseline ships alongside an expanded query
// result.
type RangeProof struct {
	Lo, Hi  int
	Total   int // number of real leaves in the tree
	Digests []hashx.Digest
}

// ProveRange builds the RangeProof for leaves [lo, hi] inclusive.
func (t *Tree) ProveRange(lo, hi int) (RangeProof, error) {
	if lo < 0 || hi >= t.n || lo > hi {
		return RangeProof{}, fmt.Errorf("mht: range [%d,%d] out of bounds [0,%d)", lo, hi, t.n)
	}
	p := RangeProof{Lo: lo, Hi: hi, Total: t.n}
	t.collectRange(len(t.levels)-1, 0, lo, hi, &p.Digests)
	return p, nil
}

// collectRange walks the node at (level, idx) covering leaves
// [idx*2^level, (idx+1)*2^level); disjoint subtrees contribute their digest,
// intersecting interior nodes recurse, covered leaves contribute nothing.
func (t *Tree) collectRange(level, idx, lo, hi int, out *[]hashx.Digest) {
	span := 1 << level
	start := idx * span
	end := start + span - 1
	if end < lo || start > hi {
		*out = append(*out, t.levels[level][idx].Clone())
		return
	}
	if level == 0 {
		return // covered leaf: the verifier supplies it
	}
	if start >= lo && end <= hi {
		// Fully covered interior node: verifier rebuilds it from leaves.
		t.collectRange(level-1, idx*2, lo, hi, out)
		t.collectRange(level-1, idx*2+1, lo, hi, out)
		return
	}
	t.collectRange(level-1, idx*2, lo, hi, out)
	t.collectRange(level-1, idx*2+1, lo, hi, out)
}

// VerifyRange recomputes the root from the claimed contiguous leaf digests
// and the proof, and compares it to root. leaves must contain exactly
// Hi-Lo+1 digests.
func VerifyRange(h *hashx.Hasher, p RangeProof, leaves []hashx.Digest, root hashx.Digest) bool {
	if p.Lo < 0 || p.Lo > p.Hi || p.Hi >= p.Total || len(leaves) != p.Hi-p.Lo+1 {
		return false
	}
	width := nextPow2(p.Total)
	levelCount := 1
	for w := width; w > 1; w /= 2 {
		levelCount++
	}
	cursor := 0
	d, ok := rebuildRange(h, levelCount-1, 0, p, leaves, &cursor)
	if !ok || cursor != len(p.Digests) {
		return false
	}
	return d.Equal(root)
}

// rebuildRange mirrors collectRange, consuming proof digests for disjoint
// subtrees and verifier-known leaf digests for covered leaves.
func rebuildRange(h *hashx.Hasher, level, idx int, p RangeProof, leaves []hashx.Digest, cursor *int) (hashx.Digest, bool) {
	span := 1 << level
	start := idx * span
	end := start + span - 1
	if end < p.Lo || start > p.Hi {
		if *cursor >= len(p.Digests) {
			return nil, false
		}
		d := p.Digests[*cursor]
		*cursor++
		return d, true
	}
	if level == 0 {
		return leaves[start-p.Lo], true
	}
	l, ok := rebuildRange(h, level-1, idx*2, p, leaves, cursor)
	if !ok {
		return nil, false
	}
	r, ok := rebuildRange(h, level-1, idx*2+1, p, leaves, cursor)
	if !ok {
		return nil, false
	}
	return h.Node(l, r), true
}

// ProofSize returns the number of digests in the proof; multiplied by the
// digest width this is the VO byte cost used in the size experiments.
func (p RangeProof) ProofSize() int { return len(p.Digests) }
