package mht

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vcqr/internal/hashx"
)

func leafData(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestBuildDeterministic(t *testing.T) {
	h := hashx.New()
	a := Build(h, leafData(7))
	b := Build(h, leafData(7))
	if !a.Root().Equal(b.Root()) {
		t.Fatal("same leaves must yield same root")
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	h := hashx.New()
	base := Build(h, leafData(8)).Root()
	for i := 0; i < 8; i++ {
		leaves := leafData(8)
		leaves[i] = []byte("tampered")
		if Build(h, leaves).Root().Equal(base) {
			t.Errorf("changing leaf %d must change root", i)
		}
	}
}

func TestRootDependsOnLeafCount(t *testing.T) {
	h := hashx.New()
	r7 := Build(h, leafData(7)).Root()
	r8 := Build(h, leafData(8)).Root()
	if r7.Equal(r8) {
		t.Fatal("appending a leaf must change the root")
	}
}

func TestEmptyAndSingleLeaf(t *testing.T) {
	h := hashx.New()
	empty := BuildFromDigests(h, nil)
	if empty.Len() != 0 {
		t.Fatal("empty tree Len")
	}
	if empty.Root() == nil {
		t.Fatal("empty tree must still have a root")
	}
	one := Build(h, leafData(1))
	if !one.Root().Equal(one.Leaf(0)) {
		t.Fatal("single-leaf tree root must equal the leaf digest")
	}
	if got := len(one.Path(0)); got != 0 {
		t.Fatalf("single-leaf path length = %d, want 0", got)
	}
}

func TestPathVerification(t *testing.T) {
	h := hashx.New()
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16, 31} {
		tr := Build(h, leafData(n))
		for i := 0; i < n; i++ {
			path := tr.Path(i)
			if !VerifyPath(h, tr.Leaf(i), path, tr.Root()) {
				t.Errorf("n=%d leaf=%d: valid path rejected", n, i)
			}
			// Wrong leaf digest must fail.
			if VerifyPath(h, h.Leaf([]byte("forged")), path, tr.Root()) {
				t.Errorf("n=%d leaf=%d: forged leaf accepted", n, i)
			}
			// Tampered path element must fail.
			if len(path) > 0 {
				bad := make([]PathElem, len(path))
				copy(bad, path)
				bad[0].Sibling = bad[0].Sibling.Clone()
				bad[0].Sibling[0] ^= 0xff
				if VerifyPath(h, tr.Leaf(i), bad, tr.Root()) {
					t.Errorf("n=%d leaf=%d: tampered path accepted", n, i)
				}
			}
		}
	}
}

func TestPathLength(t *testing.T) {
	h := hashx.New()
	tr := Build(h, leafData(16))
	if got := len(tr.Path(3)); got != 4 {
		t.Fatalf("path length over 16 leaves = %d, want 4", got)
	}
	tr = Build(h, leafData(9)) // padded to 16
	if got := len(tr.Path(3)); got != 4 {
		t.Fatalf("path length over 9 (padded 16) leaves = %d, want 4", got)
	}
}

func TestUpdate(t *testing.T) {
	h := hashx.New()
	tr := Build(h, leafData(10))
	fresh := leafData(10)
	fresh[4] = []byte("updated")
	want := Build(h, fresh).Root()
	work := tr.Update(4, h.Leaf([]byte("updated")))
	if !tr.Root().Equal(want) {
		t.Fatal("incremental update root != rebuilt root")
	}
	if work != 4 {
		t.Fatalf("update over 10 (padded 16) leaves recomputed %d nodes, want 4", work)
	}
	// Paths must still verify after the update.
	for i := 0; i < 10; i++ {
		if !VerifyPath(h, tr.Leaf(i), tr.Path(i), tr.Root()) {
			t.Errorf("leaf %d path invalid after update", i)
		}
	}
}

func TestRangeProofAllRanges(t *testing.T) {
	h := hashx.New()
	for _, n := range []int{1, 2, 3, 5, 8, 11, 16} {
		tr := Build(h, leafData(n))
		for lo := 0; lo < n; lo++ {
			for hi := lo; hi < n; hi++ {
				p, err := tr.ProveRange(lo, hi)
				if err != nil {
					t.Fatalf("n=%d [%d,%d]: %v", n, lo, hi, err)
				}
				leaves := make([]hashx.Digest, hi-lo+1)
				for i := range leaves {
					leaves[i] = tr.Leaf(lo + i)
				}
				if !VerifyRange(h, p, leaves, tr.Root()) {
					t.Errorf("n=%d [%d,%d]: valid range rejected", n, lo, hi)
				}
			}
		}
	}
}

func TestRangeProofRejectsOmission(t *testing.T) {
	// The core soundness property the Devanbu baseline rests on: a proof
	// for [lo,hi] cannot be verified with a leaf replaced or omitted.
	h := hashx.New()
	tr := Build(h, leafData(16))
	p, err := tr.ProveRange(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	leaves := make([]hashx.Digest, 6)
	for i := range leaves {
		leaves[i] = tr.Leaf(4 + i)
	}
	// Replace one covered leaf.
	bad := make([]hashx.Digest, len(leaves))
	copy(bad, leaves)
	bad[2] = h.Leaf([]byte("spurious"))
	if VerifyRange(h, p, bad, tr.Root()) {
		t.Fatal("range proof accepted a substituted leaf")
	}
	// Drop a leaf (length mismatch must be rejected).
	if VerifyRange(h, p, leaves[:5], tr.Root()) {
		t.Fatal("range proof accepted a short leaf list")
	}
	// Shifted window with same length must fail.
	shift := make([]hashx.Digest, 6)
	for i := range shift {
		shift[i] = tr.Leaf(5 + i)
	}
	if VerifyRange(h, p, shift, tr.Root()) {
		t.Fatal("range proof accepted shifted leaves")
	}
}

func TestRangeProofBoundsChecked(t *testing.T) {
	h := hashx.New()
	tr := Build(h, leafData(8))
	if _, err := tr.ProveRange(-1, 3); err == nil {
		t.Error("negative lo must error")
	}
	if _, err := tr.ProveRange(3, 8); err == nil {
		t.Error("hi >= n must error")
	}
	if _, err := tr.ProveRange(5, 4); err == nil {
		t.Error("lo > hi must error")
	}
	bogus := RangeProof{Lo: 0, Hi: 9, Total: 8}
	if VerifyRange(h, bogus, make([]hashx.Digest, 10), tr.Root()) {
		t.Error("out-of-range proof must not verify")
	}
}

func TestRangeProofSizeLogarithmic(t *testing.T) {
	// A single-leaf range over n leaves needs about log2(n) digests:
	// the property behind the baseline's "VO grows logarithmically to the
	// base table" characteristic (Section 2.3 point 2).
	h := hashx.New()
	tr := Build(h, leafData(1024))
	p, err := tr.ProveRange(512, 512)
	if err != nil {
		t.Fatal(err)
	}
	if p.ProofSize() != 10 {
		t.Fatalf("single-leaf proof over 1024 leaves has %d digests, want 10", p.ProofSize())
	}
}

func TestRangeProofQuick(t *testing.T) {
	h := hashx.New()
	tr := Build(h, leafData(64))
	f := func(a, b uint8) bool {
		lo, hi := int(a%64), int(b%64)
		if lo > hi {
			lo, hi = hi, lo
		}
		p, err := tr.ProveRange(lo, hi)
		if err != nil {
			return false
		}
		leaves := make([]hashx.Digest, hi-lo+1)
		for i := range leaves {
			leaves[i] = tr.Leaf(lo + i)
		}
		return VerifyRange(h, p, leaves, tr.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	h := hashx.New()
	tr := Build(h, leafData(4))
	for _, fn := range []func(){
		func() { tr.Leaf(4) },
		func() { tr.Leaf(-1) },
		func() { tr.Path(4) },
		func() { tr.Update(9, h.Leaf([]byte("x"))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range index")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBuild1024(b *testing.B) {
	h := hashx.New()
	data := leafData(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(h, data)
	}
}

func BenchmarkUpdateVsRebuild(b *testing.B) {
	h := hashx.New()
	tr := Build(h, leafData(4096))
	rng := rand.New(rand.NewSource(7))
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Update(rng.Intn(4096), h.Leaf([]byte{byte(i)}))
		}
	})
}
