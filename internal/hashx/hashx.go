// Package hashx provides the one-way hash substrate for the completeness
// verification scheme: a configurable-width collision-resistant hash, the
// iterated hash h^i used for the boundary chains of Pang et al. (SIGMOD
// 2005), domain-separated convenience helpers, and an operation counter so
// experiments can report costs in units of Chash (Table 1 of the paper).
//
// The paper requires the iterated hash to satisfy two properties:
//
//  1. h^i is undefined (computationally infeasible) for i < 0. We guarantee
//     h^{-1}(r) != r by making the digest length differ from the pre-image
//     length and by domain-separating the first application (tag hashFirst)
//     from subsequent ones (tag hashIter).
//  2. h is one-way, so intermediate digests do not leak the boundary key.
//
// SHA-256 provides both; digests are truncated to Size bytes (default 16,
// matching the paper's Mdigest = 128 bits so that byte counts reproduce
// formula (4)).
package hashx

import (
	"crypto/sha256"
	"encoding/binary"
	"sync/atomic"
)

// DefaultSize is the default digest width in bytes. 16 bytes = 128 bits,
// the Mdigest value used throughout the paper's cost analysis.
const DefaultSize = 16

// MaxSize is the widest digest supported (full SHA-256 output).
const MaxSize = sha256.Size

// Domain-separation tags. Every hash application is prefixed by exactly one
// tag, so digests from different roles can never collide structurally.
const (
	tagFirst byte = 0x01 // first application of the iterated hash, h^0
	tagIter  byte = 0x02 // subsequent applications, h^{i+1} = h(h^i)
	tagLeaf  byte = 0x03 // Merkle tree leaf
	tagNode  byte = 0x04 // Merkle tree interior node
	tagG     byte = 0x05 // record digest g(r), formula (3)
	tagSig   byte = 0x06 // pre-signature digest, formula (1)
	tagMisc  byte = 0x07 // application-defined digests
)

// Digest is a truncated SHA-256 digest. The slice is always exactly the
// Hasher's Size() bytes long.
type Digest []byte

// Clone returns an independent copy of d.
func (d Digest) Clone() Digest {
	out := make(Digest, len(d))
	copy(out, d)
	return out
}

// Equal reports whether two digests are byte-wise identical.
func (d Digest) Equal(o Digest) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// Hasher computes tagged, truncated SHA-256 digests and counts how many
// primitive hash operations it has performed. All methods are safe for
// concurrent use; the counter is atomic.
//
// The zero value is not usable; construct with New or NewSize.
type Hasher struct {
	size int
	ops  atomic.Uint64
}

// New returns a Hasher producing DefaultSize-byte digests.
func New() *Hasher { return NewSize(DefaultSize) }

// NewSize returns a Hasher producing size-byte digests. size is clamped to
// [8, MaxSize]: fewer than 8 bytes would be trivially forgeable, more than
// 32 exceeds SHA-256 output.
func NewSize(size int) *Hasher {
	if size < 8 {
		size = 8
	}
	if size > MaxSize {
		size = MaxSize
	}
	return &Hasher{size: size}
}

// Size returns the digest width in bytes.
func (h *Hasher) Size() int { return h.size }

// Ops returns the number of primitive hash operations performed so far.
// Experiments use this to report costs in units of Chash.
func (h *Hasher) Ops() uint64 { return h.ops.Load() }

// ResetOps zeroes the operation counter.
func (h *Hasher) ResetOps() { h.ops.Store(0) }

// hash is the single primitive: SHA-256 over tag||parts, truncated.
func (h *Hasher) hash(tag byte, parts ...[]byte) Digest {
	h.ops.Add(1)
	st := sha256.New()
	st.Write([]byte{tag})
	for _, p := range parts {
		st.Write(p)
	}
	sum := st.Sum(nil)
	return Digest(sum[:h.size])
}

// Hash computes a general-purpose digest over the concatenation of parts.
func (h *Hasher) Hash(parts ...[]byte) Digest { return h.hash(tagMisc, parts...) }

// Leaf computes a Merkle-tree leaf digest.
func (h *Hasher) Leaf(data []byte) Digest { return h.hash(tagLeaf, data) }

// Node computes a Merkle-tree interior-node digest from two children.
func (h *Hasher) Node(left, right Digest) Digest { return h.hash(tagNode, left, right) }

// GDigest computes the record digest g(r) from its components (formula (3)
// of the paper, with the concatenation hashed down to a fixed width).
func (h *Hasher) GDigest(parts ...[]byte) Digest { return h.hash(tagG, parts...) }

// SigDigest computes the digest that is signed for a record: the hash of
// g(r_{i-1}) | g(r_i) | g(r_{i+1}) per formula (1).
func (h *Hasher) SigDigest(prev, cur, next Digest) Digest {
	return h.hash(tagSig, prev, cur, next)
}

// First computes h^0(m): the first application of the iterated hash.
// Domain separation (tagFirst vs tagIter) plus the width difference between
// pre-image and digest guarantee the chain cannot be run backwards into the
// pre-image space.
func (h *Hasher) First(m []byte) Digest { return h.hash(tagFirst, m) }

// Next computes one further iteration: h^{i+1}(m) = h(h^i(m)).
func (h *Hasher) Next(d Digest) Digest { return h.hash(tagIter, d) }

// Iterate computes h^i(m): First(m) followed by i applications of Next.
// i must be >= 0; the scheme's security rests on h^i being undefined for
// negative i, so a negative argument panics rather than silently wrapping.
func (h *Hasher) Iterate(m []byte, i uint64) Digest {
	d := h.First(m)
	return h.IterateFrom(d, i)
}

// IterateFrom applies Next i times to an existing chain digest. This is the
// user-side operation of the scheme: hash the publisher's intermediate
// digest (U - alpha) more times.
func (h *Hasher) IterateFrom(d Digest, i uint64) Digest {
	for ; i > 0; i-- {
		d = h.Next(d)
	}
	return d
}

// U64 encodes v as 8 big-endian bytes; the canonical pre-image encoding for
// key values throughout the scheme.
func U64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// U64Pair encodes two values, used for the (key, digit-index) pre-images
// r|j of the base-B optimization (Section 5.1).
func U64Pair(a, b uint64) []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], a)
	binary.BigEndian.PutUint64(buf[8:], b)
	return buf[:]
}
