package hashx

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewSizeClamps(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 8}, {7, 8}, {8, 8}, {16, 16}, {32, 32}, {33, 32}, {100, 32},
	}
	for _, c := range cases {
		if got := NewSize(c.in).Size(); got != c.want {
			t.Errorf("NewSize(%d).Size() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDefaultSize(t *testing.T) {
	h := New()
	if h.Size() != DefaultSize {
		t.Fatalf("default size = %d, want %d", h.Size(), DefaultSize)
	}
	if len(h.Hash([]byte("x"))) != DefaultSize {
		t.Fatalf("digest length != %d", DefaultSize)
	}
}

func TestDigestEqualAndClone(t *testing.T) {
	h := New()
	a := h.Hash([]byte("a"))
	b := h.Hash([]byte("a"))
	c := h.Hash([]byte("b"))
	if !a.Equal(b) {
		t.Error("identical inputs must produce equal digests")
	}
	if a.Equal(c) {
		t.Error("different inputs must not produce equal digests")
	}
	if a.Equal(a[:8]) {
		t.Error("length mismatch must compare unequal")
	}
	cl := a.Clone()
	if !cl.Equal(a) {
		t.Error("clone must equal original")
	}
	cl[0] ^= 0xff
	if cl.Equal(a) {
		t.Error("mutating clone must not affect original")
	}
}

func TestDomainSeparation(t *testing.T) {
	h := New()
	m := []byte("same input")
	digests := []Digest{
		h.Hash(m), h.Leaf(m), h.First(m), h.GDigest(m),
	}
	for i := range digests {
		for j := i + 1; j < len(digests); j++ {
			if digests[i].Equal(digests[j]) {
				t.Errorf("tagged digests %d and %d collide", i, j)
			}
		}
	}
}

func TestNodeOrderMatters(t *testing.T) {
	h := New()
	a, b := h.Leaf([]byte("a")), h.Leaf([]byte("b"))
	if h.Node(a, b).Equal(h.Node(b, a)) {
		t.Error("Node must not be commutative")
	}
}

func TestIterateComposition(t *testing.T) {
	// h^{a+b}(m) == IterateFrom(h^a(m), b): the composition property the
	// user relies on when extending the publisher's intermediate digest.
	h := New()
	f := func(seed uint32, a8, b8 uint8) bool {
		m := U64(uint64(seed))
		a, b := uint64(a8%50), uint64(b8%50)
		full := h.Iterate(m, a+b)
		split := h.IterateFrom(h.Iterate(m, a), b)
		return full.Equal(split)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIterateZero(t *testing.T) {
	h := New()
	m := []byte("m")
	if !h.Iterate(m, 0).Equal(h.First(m)) {
		t.Error("h^0 must equal First")
	}
}

func TestIterateDistinctSteps(t *testing.T) {
	// Successive chain values must all differ (no short cycles in practice).
	h := New()
	m := []byte("chain")
	seen := map[string]bool{}
	d := h.First(m)
	for i := 0; i < 1000; i++ {
		k := string(d)
		if seen[k] {
			t.Fatalf("chain cycled at step %d", i)
		}
		seen[k] = true
		d = h.Next(d)
	}
}

func TestOpsCounting(t *testing.T) {
	h := New()
	h.ResetOps()
	h.Iterate([]byte("m"), 9) // First + 9 Next = 10 ops
	if got := h.Ops(); got != 10 {
		t.Errorf("Ops() = %d, want 10", got)
	}
	h.ResetOps()
	if h.Ops() != 0 {
		t.Error("ResetOps must zero the counter")
	}
}

func TestSigDigestBindsAllThree(t *testing.T) {
	h := New()
	g1, g2, g3 := h.Hash([]byte("1")), h.Hash([]byte("2")), h.Hash([]byte("3"))
	base := h.SigDigest(g1, g2, g3)
	if base.Equal(h.SigDigest(g3, g2, g1)) {
		t.Error("SigDigest must depend on order")
	}
	if base.Equal(h.SigDigest(g1, g1, g3)) {
		t.Error("SigDigest must depend on middle digest")
	}
}

func TestU64Encoding(t *testing.T) {
	if !bytes.Equal(U64(1), []byte{0, 0, 0, 0, 0, 0, 0, 1}) {
		t.Error("U64 must be big-endian")
	}
	if len(U64Pair(1, 2)) != 16 {
		t.Error("U64Pair must be 16 bytes")
	}
	if bytes.Equal(U64Pair(1, 2), U64Pair(2, 1)) {
		t.Error("U64Pair must distinguish order")
	}
}

func TestDifferentSizesDiffer(t *testing.T) {
	h16, h32 := NewSize(16), NewSize(32)
	m := []byte("m")
	a, b := h16.Hash(m), h32.Hash(m)
	if len(a) == len(b) {
		t.Fatal("sizes should differ")
	}
	if !a.Equal(Digest(b[:16])) {
		t.Error("truncation should be a prefix of the wider digest")
	}
}

func TestConcurrentHashing(t *testing.T) {
	// The hasher is shared across publisher goroutines; digests must be
	// deterministic and the ops counter race-free.
	h := New()
	const goroutines, per = 8, 200
	want := h.Hash([]byte("probe"))
	done := make(chan bool, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			ok := true
			for i := 0; i < per; i++ {
				if !h.Hash([]byte("probe")).Equal(want) {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < goroutines; g++ {
		if !<-done {
			t.Fatal("concurrent hashing produced a different digest")
		}
	}
	if h.Ops() < goroutines*per {
		t.Fatalf("ops counter lost updates: %d", h.Ops())
	}
}

func BenchmarkHashOp(b *testing.B) {
	h := New()
	m := U64Pair(12345, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.First(m)
	}
}
