package sig

import (
	"fmt"
	"math/big"
)

// ProductTree is a persistent (immutable, path-copying) order-statistic
// tree over values in Z_N, where every node additionally stores the
// product of its subtree's values mod N. It is the data structure behind
// the condensed-RSA fast path:
//
//   - Range(i, j) returns prod of leaves [i, j) mod N in O(log n)
//     modular multiplications instead of the O(j-i) a naive fold costs —
//     the move that takes per-query aggregation from O(|Q|) to O(log n).
//   - Update/Insert/Delete return a NEW tree that shares all untouched
//     nodes with the receiver, allocating only the O(log n) spine that
//     changed. The old tree stays valid forever, which is exactly the
//     copy-on-write epoch discipline of internal/server: a delta cutover
//     derives the next epoch's tree from the current one in O(log n)
//     multiplications while in-flight queries keep reading the old one,
//     lock-free.
//
// Leaves are positional (rank order, no keys): leaf i of a relation's
// tree corresponds to entry i of its record sequence, so record inserts
// and deletes map to positional Insert/Delete. Balance is maintained as
// a weight-balanced tree (Adams' variant with Δ=3, Γ=2, weights counted
// as size+1), giving height O(log n) under any update sequence.
//
// Each leaf may carry an opaque tag — the FDH tree tags leaves with the
// signed digest the cached FDH value was derived from, so consumers can
// detect a stale cache entry instead of trusting it (core.AggIndex).
//
// Values are never mutated after insertion and returned products are
// fresh allocations, so a tree (and every tree derived from it) is safe
// for concurrent readers.
type ProductTree struct {
	p    *PublicKey
	root *ptNode
}

// ptNode is one immutable tree node: a leaf value at an in-order
// position, the subtree size, and the subtree product mod N.
type ptNode struct {
	left, right *ptNode
	size        int
	val         *big.Int
	tag         []byte
	prod        *big.Int
}

func (n *ptNode) sz() int {
	if n == nil {
		return 0
	}
	return n.size
}

// weight is size+1, the Adams convention that keeps the balance
// conditions division-free and defined on empty subtrees.
func (n *ptNode) weight() int { return n.sz() + 1 }

// wbDelta and wbGamma are the (Δ, Γ) = (3, 2) weight-balance parameters,
// a pair proven to preserve balance under single-pass insert and delete
// rebalancing (Hirai & Yamamoto 2011).
const (
	wbDelta = 3
	wbGamma = 2
)

// mkNode builds an internal node, computing size and product: two
// modular multiplications when both children exist.
func (t *ProductTree) mkNode(l *ptNode, val *big.Int, tag []byte, r *ptNode) *ptNode {
	n := &ptNode{left: l, right: r, size: l.sz() + r.sz() + 1, val: val, tag: tag}
	prod := new(big.Int).Set(val)
	if l != nil {
		prod.Mul(prod, l.prod)
	}
	if r != nil {
		prod.Mul(prod, r.prod)
	}
	n.prod = prod.Mod(prod, t.p.N)
	return n
}

// balance rebuilds a node whose children differ by at most one
// insertion/deletion from a balanced state, restoring the weight
// invariant with a single or double rotation where needed.
func (t *ProductTree) balance(l *ptNode, val *big.Int, tag []byte, r *ptNode) *ptNode {
	switch {
	case l.weight()+r.weight() <= 2:
		// Both children empty (or one singleton): trivially balanced.
		return t.mkNode(l, val, tag, r)
	case r.weight() > wbDelta*l.weight():
		// Right-heavy.
		if r.left.weight() < wbGamma*r.right.weight() {
			// Single left rotation.
			return t.mkNode(t.mkNode(l, val, tag, r.left), r.val, r.tag, r.right)
		}
		// Double rotation through r.left.
		rl := r.left
		return t.mkNode(
			t.mkNode(l, val, tag, rl.left),
			rl.val, rl.tag,
			t.mkNode(rl.right, r.val, r.tag, r.right),
		)
	case l.weight() > wbDelta*r.weight():
		// Left-heavy.
		if l.right.weight() < wbGamma*l.left.weight() {
			// Single right rotation.
			return t.mkNode(l.left, l.val, l.tag, t.mkNode(l.right, val, tag, r))
		}
		// Double rotation through l.right.
		lr := l.right
		return t.mkNode(
			t.mkNode(l.left, l.val, l.tag, lr.left),
			lr.val, lr.tag,
			t.mkNode(lr.right, val, tag, r),
		)
	default:
		return t.mkNode(l, val, tag, r)
	}
}

// NewProductTree builds a tree over the given leaf values (already
// reduced mod N; the tree aliases them, callers must not mutate) with
// optional per-leaf tags (tags may be nil, or hold nil entries). Cost is
// O(n) multiplications — paid once at publish/snapshot time.
func (p *PublicKey) NewProductTree(vals []*big.Int, tags [][]byte) *ProductTree {
	t := &ProductTree{p: p}
	tag := func(i int) []byte {
		if tags == nil {
			return nil
		}
		return tags[i]
	}
	var build func(lo, hi int) *ptNode
	build = func(lo, hi int) *ptNode {
		if lo >= hi {
			return nil
		}
		mid := lo + (hi-lo)/2
		return t.mkNode(build(lo, mid), vals[mid], tag(mid), build(mid+1, hi))
	}
	t.root = build(0, len(vals))
	return t
}

// NewSigTree builds a product tree whose leaves are the decoded
// signature values, in order — the σ-product tree of a signed relation.
func (p *PublicKey) NewSigTree(sigs []Signature) (*ProductTree, error) {
	vals := make([]*big.Int, len(sigs))
	for i, s := range sigs {
		v, err := decode(s, p)
		if err != nil {
			return nil, fmt.Errorf("leaf %d: %w", i, err)
		}
		vals[i] = v
	}
	return p.NewProductTree(vals, nil), nil
}

// Len returns the leaf count.
func (t *ProductTree) Len() int { return t.root.sz() }

// Key returns the verification key the tree's arithmetic is bound to.
func (t *ProductTree) Key() *PublicKey { return t.p }

// At returns leaf i's value and tag. The value must not be mutated.
func (t *ProductTree) At(i int) (*big.Int, []byte) {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("sig: ProductTree.At(%d) with %d leaves", i, t.Len()))
	}
	n := t.root
	for {
		ls := n.left.sz()
		switch {
		case i < ls:
			n = n.left
		case i == ls:
			return n.val, n.tag
		default:
			n, i = n.right, i-ls-1
		}
	}
}

// Range returns prod of leaves [i, j) mod N as a fresh big.Int, in
// O(log n) multiplications. An empty range yields 1.
func (t *ProductTree) Range(i, j int) *big.Int {
	if i < 0 || j > t.Len() || i > j {
		panic(fmt.Sprintf("sig: ProductTree.Range(%d, %d) with %d leaves", i, j, t.Len()))
	}
	acc := big.NewInt(1)
	t.rangeProd(t.root, i, j, acc)
	return acc
}

func (t *ProductTree) rangeProd(n *ptNode, i, j int, acc *big.Int) {
	if n == nil || i >= n.size || j <= 0 || i >= j {
		return
	}
	if i <= 0 && j >= n.size {
		acc.Mul(acc, n.prod)
		acc.Mod(acc, t.p.N)
		return
	}
	ls := n.left.sz()
	t.rangeProd(n.left, i, j, acc)
	if i <= ls && ls < j {
		acc.Mul(acc, n.val)
		acc.Mod(acc, t.p.N)
	}
	t.rangeProd(n.right, i-ls-1, j-ls-1, acc)
}

// RangeSig returns the condensed signature over leaves [i, j) — the
// encoded Range product. Aggregating zero signatures is an error, as in
// Aggregate.
func (t *ProductTree) RangeSig(i, j int) (Signature, error) {
	if i >= j {
		return nil, ErrEmptyAggregate
	}
	return encode(t.Range(i, j), t.p.SigBytes()), nil
}

// Update returns a tree with leaf i replaced. O(log n) new nodes; the
// receiver is unchanged.
func (t *ProductTree) Update(i int, val *big.Int, tag []byte) *ProductTree {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("sig: ProductTree.Update(%d) with %d leaves", i, t.Len()))
	}
	var up func(n *ptNode, i int) *ptNode
	up = func(n *ptNode, i int) *ptNode {
		ls := n.left.sz()
		switch {
		case i < ls:
			return t.mkNode(up(n.left, i), n.val, n.tag, n.right)
		case i == ls:
			return t.mkNode(n.left, val, tag, n.right)
		default:
			return t.mkNode(n.left, n.val, n.tag, up(n.right, i-ls-1))
		}
	}
	return &ProductTree{p: t.p, root: up(t.root, i)}
}

// Insert returns a tree with a new leaf at position i (existing leaves
// at >= i shift right); 0 <= i <= Len. O(log n) new nodes.
func (t *ProductTree) Insert(i int, val *big.Int, tag []byte) *ProductTree {
	if i < 0 || i > t.Len() {
		panic(fmt.Sprintf("sig: ProductTree.Insert(%d) with %d leaves", i, t.Len()))
	}
	var ins func(n *ptNode, i int) *ptNode
	ins = func(n *ptNode, i int) *ptNode {
		if n == nil {
			return t.mkNode(nil, val, tag, nil)
		}
		ls := n.left.sz()
		if i <= ls {
			return t.balance(ins(n.left, i), n.val, n.tag, n.right)
		}
		return t.balance(n.left, n.val, n.tag, ins(n.right, i-ls-1))
	}
	return &ProductTree{p: t.p, root: ins(t.root, i)}
}

// Delete returns a tree with leaf i removed. O(log n) new nodes.
func (t *ProductTree) Delete(i int) *ProductTree {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("sig: ProductTree.Delete(%d) with %d leaves", i, t.Len()))
	}
	var del func(n *ptNode, i int) *ptNode
	del = func(n *ptNode, i int) *ptNode {
		ls := n.left.sz()
		switch {
		case i < ls:
			return t.balance(del(n.left, i), n.val, n.tag, n.right)
		case i > ls:
			return t.balance(n.left, n.val, n.tag, del(n.right, i-ls-1))
		default:
			// Remove this node: glue the children by pulling the
			// successor (leftmost of the right subtree) up.
			if n.left == nil {
				return n.right
			}
			if n.right == nil {
				return n.left
			}
			succ := n.right
			for succ.left != nil {
				succ = succ.left
			}
			return t.balance(n.left, succ.val, succ.tag, del(n.right, 0))
		}
	}
	return &ProductTree{p: t.p, root: del(t.root, i)}
}

// Height returns the tree height (0 for empty) — exposed for balance
// tests; queries cost O(Height) multiplications.
func (t *ProductTree) Height() int {
	var h func(n *ptNode) int
	h = func(n *ptNode) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}
