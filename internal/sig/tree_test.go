package sig

import (
	"math/big"
	"math/rand"
	"testing"
)

// treeKey builds a small deterministic "key" for tree arithmetic tests —
// the tree only needs a modulus, so a fixed prime-ish odd modulus keeps
// these tests free of RSA keygen cost.
func treeKey() *PublicKey {
	n, _ := new(big.Int).SetString("00c7f1c97f4d9c64e1d5627a1e9df6b6f9fbb4f6e8f3ad0b4d47a3fa6bfa70b1d1", 16)
	return &PublicKey{N: n, E: 65537}
}

func randVals(rng *rand.Rand, p *PublicKey, n int) []*big.Int {
	vals := make([]*big.Int, n)
	for i := range vals {
		v := new(big.Int).Rand(rng, p.N)
		if v.Sign() == 0 {
			v.SetInt64(1)
		}
		vals[i] = v
	}
	return vals
}

func naiveRange(p *PublicKey, vals []*big.Int, i, j int) *big.Int {
	acc := big.NewInt(1)
	for ; i < j; i++ {
		acc.Mul(acc, vals[i])
		acc.Mod(acc, p.N)
	}
	return acc
}

func checkAllRanges(t *testing.T, p *PublicKey, tr *ProductTree, vals []*big.Int) {
	t.Helper()
	if tr.Len() != len(vals) {
		t.Fatalf("tree has %d leaves, want %d", tr.Len(), len(vals))
	}
	for i := 0; i <= len(vals); i++ {
		for j := i; j <= len(vals); j++ {
			got, want := tr.Range(i, j), naiveRange(p, vals, i, j)
			if got.Cmp(want) != 0 {
				t.Fatalf("Range(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestProductTreeRanges(t *testing.T) {
	p := treeKey()
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 7, 16, 33} {
		vals := randVals(rng, p, n)
		checkAllRanges(t, p, p.NewProductTree(vals, nil), vals)
	}
}

// TestProductTreePersistentUpdates drives a random op sequence against a
// shadow slice, checking every range after every op AND that earlier
// tree versions are untouched (persistence).
func TestProductTreePersistentUpdates(t *testing.T) {
	p := treeKey()
	rng := rand.New(rand.NewSource(11))
	vals := randVals(rng, p, 12)
	tr := p.NewProductTree(vals, nil)
	origVals := append([]*big.Int(nil), vals...)
	orig := tr

	for op := 0; op < 200; op++ {
		v := randVals(rng, p, 1)[0]
		switch choice := rng.Intn(3); {
		case choice == 0 && tr.Len() > 0: // update
			i := rng.Intn(tr.Len())
			tr = tr.Update(i, v, nil)
			vals[i] = v
		case choice == 1 && tr.Len() > 1: // delete
			i := rng.Intn(tr.Len())
			tr = tr.Delete(i)
			vals = append(vals[:i], vals[i+1:]...)
		default: // insert
			i := rng.Intn(tr.Len() + 1)
			tr = tr.Insert(i, v, nil)
			vals = append(vals, nil)
			copy(vals[i+1:], vals[i:])
			vals[i] = v
		}
		if op%20 == 0 {
			checkAllRanges(t, p, tr, vals)
		}
	}
	checkAllRanges(t, p, tr, vals)
	// The original version must be byte-for-byte what it was.
	checkAllRanges(t, p, orig, origVals)
}

// TestProductTreeBalance checks the height stays logarithmic under an
// adversarial (sorted-position) insert sequence.
func TestProductTreeBalance(t *testing.T) {
	p := treeKey()
	one := big.NewInt(1)
	tr := p.NewProductTree(nil, nil)
	const n = 4096
	for i := 0; i < n; i++ {
		tr = tr.Insert(tr.Len(), one, nil) // always append: worst case for an unbalanced tree
	}
	if h := tr.Height(); h > 4*17 { // ~ (1/log2(Δ+1/Δ)) * log2(n) with slack
		t.Fatalf("height %d after %d appends — tree is not rebalancing", h, n)
	}
	for i := 0; i < n/2; i++ {
		tr = tr.Delete(0) // always delete leftmost: worst case the other way
	}
	if h := tr.Height(); h > 4*16 {
		t.Fatalf("height %d after deletes — tree is not rebalancing", h)
	}
	if tr.Len() != n/2 {
		t.Fatalf("len %d, want %d", tr.Len(), n/2)
	}
}

// TestProductTreeTags checks tags ride along through every operation.
func TestProductTreeTags(t *testing.T) {
	p := treeKey()
	one := big.NewInt(1)
	tr := p.NewProductTree([]*big.Int{one, one, one}, [][]byte{{0}, {1}, {2}})
	tr = tr.Insert(1, one, []byte{9})
	tr = tr.Delete(0)
	tr = tr.Update(2, one, []byte{7})
	want := [][]byte{{9}, {1}, {7}}
	for i, w := range want {
		if _, tag := tr.At(i); len(tag) != 1 || tag[0] != w[0] {
			t.Fatalf("leaf %d tag %v, want %v", i, tag, w)
		}
	}
}

// TestSigTreeMatchesAggregate ties the tree to the condensed-RSA
// primitive: RangeSig over real signatures equals Aggregate.
func TestSigTreeMatchesAggregate(t *testing.T) {
	key, err := Generate(DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := key.Public()
	var sigs []Signature
	for i := byte(0); i < 9; i++ {
		sigs = append(sigs, key.Sign([]byte{i}))
	}
	tr, err := p.NewSigTree(sigs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sigs); i++ {
		for j := i + 1; j <= len(sigs); j++ {
			want, err := p.Aggregate(sigs[i:j])
			if err != nil {
				t.Fatal(err)
			}
			got, err := tr.RangeSig(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("RangeSig(%d,%d) != Aggregate", i, j)
			}
		}
	}
	if _, err := tr.RangeSig(3, 3); err != ErrEmptyAggregate {
		t.Fatalf("empty RangeSig error = %v", err)
	}
}
