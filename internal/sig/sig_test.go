package sig

import (
	"math/rand"
	"sync"
	"testing"

	"vcqr/internal/hashx"
)

// testKey is generated once: RSA keygen dominates test time otherwise.
var (
	keyOnce sync.Once
	testKey *PrivateKey
)

func key(t testing.TB) *PrivateKey {
	keyOnce.Do(func() {
		k, err := Generate(DefaultBits, nil)
		if err != nil {
			t.Fatalf("key generation: %v", err)
		}
		testKey = k
	})
	return testKey
}

func digests(h *hashx.Hasher, n int) []hashx.Digest {
	out := make([]hashx.Digest, n)
	for i := range out {
		out[i] = h.Hash([]byte{byte(i), byte(i >> 8)})
	}
	return out
}

func TestSignVerifyRoundTrip(t *testing.T) {
	k := key(t)
	h := hashx.New()
	d := h.Hash([]byte("message"))
	s := k.Sign(d)
	if len(s) != k.Public().SigBytes() {
		t.Fatalf("signature length %d != %d", len(s), k.Public().SigBytes())
	}
	if !k.Public().Verify(d, s) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsWrongDigest(t *testing.T) {
	k := key(t)
	h := hashx.New()
	s := k.Sign(h.Hash([]byte("a")))
	if k.Public().Verify(h.Hash([]byte("b")), s) {
		t.Fatal("signature verified against wrong digest")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	k := key(t)
	h := hashx.New()
	d := h.Hash([]byte("a"))
	s := k.Sign(d).Clone()
	s[len(s)/2] ^= 0x01
	if k.Public().Verify(d, s) {
		t.Fatal("tampered signature accepted")
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	k := key(t)
	h := hashx.New()
	d := h.Hash([]byte("a"))
	if k.Public().Verify(d, nil) {
		t.Fatal("nil signature accepted")
	}
	if k.Public().Verify(d, make(Signature, 5)) {
		t.Fatal("short signature accepted")
	}
	// All-zero value of the right length decodes to 0, which is invalid.
	if k.Public().Verify(d, make(Signature, k.Public().SigBytes())) {
		t.Fatal("zero signature accepted")
	}
	// Value >= N must be rejected.
	huge := make(Signature, k.Public().SigBytes())
	for i := range huge {
		huge[i] = 0xff
	}
	if k.Public().Verify(d, huge) {
		t.Fatal("over-modulus signature accepted")
	}
}

func TestSignDeterministic(t *testing.T) {
	// RSA-FDH is deterministic: the owner can re-sign after updates and
	// the publisher can deduplicate.
	k := key(t)
	h := hashx.New()
	d := h.Hash([]byte("m"))
	if !k.Sign(d).Equal(k.Sign(d)) {
		t.Fatal("signing must be deterministic")
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	k := key(t)
	h := hashx.New()
	for _, n := range []int{1, 2, 3, 10, 50} {
		ds := digests(h, n)
		sigs := make([]Signature, n)
		for i, d := range ds {
			sigs[i] = k.Sign(d)
		}
		agg, err := k.Public().Aggregate(sigs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(agg) != k.Public().SigBytes() {
			t.Fatalf("n=%d: aggregate size %d != one signature", n, len(agg))
		}
		if !k.Public().VerifyAggregate(ds, agg) {
			t.Fatalf("n=%d: valid aggregate rejected", n)
		}
	}
}

func TestAggregateDetectsOmission(t *testing.T) {
	// Case analogues of Section 3.2: an aggregate over fewer or different
	// messages must not verify against the expected digest set.
	k := key(t)
	h := hashx.New()
	ds := digests(h, 5)
	sigs := make([]Signature, 5)
	for i, d := range ds {
		sigs[i] = k.Sign(d)
	}
	short, err := k.Public().Aggregate(sigs[:4])
	if err != nil {
		t.Fatal(err)
	}
	if k.Public().VerifyAggregate(ds, short) {
		t.Fatal("aggregate missing one signature verified against full set")
	}
	full, _ := k.Public().Aggregate(sigs)
	if k.Public().VerifyAggregate(ds[:4], full) {
		t.Fatal("full aggregate verified against reduced digest set")
	}
}

func TestAggregateRejectsForgedMember(t *testing.T) {
	k := key(t)
	h := hashx.New()
	ds := digests(h, 3)
	sigs := []Signature{k.Sign(ds[0]), k.Sign(ds[1]), k.Sign(ds[2])}
	// Replace one component with garbage of the right length; flip a low
	// byte so the forged value stays below the modulus and aggregation
	// itself succeeds.
	forged := sigs[1].Clone()
	forged[len(forged)-1] ^= 0xaa
	agg, err := k.Public().Aggregate([]Signature{sigs[0], forged, sigs[2]})
	if err != nil {
		t.Fatal(err)
	}
	if k.Public().VerifyAggregate(ds, agg) {
		t.Fatal("aggregate containing forged signature accepted")
	}
}

func TestAggregateOrderIndependent(t *testing.T) {
	// Multiplication commutes; the verifier need not know result order.
	k := key(t)
	h := hashx.New()
	ds := digests(h, 4)
	sigs := make([]Signature, 4)
	for i, d := range ds {
		sigs[i] = k.Sign(d)
	}
	a, _ := k.Public().Aggregate(sigs)
	rev := []Signature{sigs[3], sigs[2], sigs[1], sigs[0]}
	b, _ := k.Public().Aggregate(rev)
	if !a.Equal(b) {
		t.Fatal("aggregation must be order independent")
	}
}

func TestAggregateWithDuplicates(t *testing.T) {
	// Section 4.2: duplicate tuples are retained for SUM/AVG; their
	// signatures appear multiple times in the aggregate.
	k := key(t)
	h := hashx.New()
	d := h.Hash([]byte("dup"))
	s := k.Sign(d)
	agg, err := k.Public().Aggregate([]Signature{s, s, s})
	if err != nil {
		t.Fatal(err)
	}
	if !k.Public().VerifyAggregate([]hashx.Digest{d, d, d}, agg) {
		t.Fatal("triplicate aggregate rejected")
	}
	if k.Public().VerifyAggregate([]hashx.Digest{d, d}, agg) {
		t.Fatal("triplicate aggregate verified against two copies")
	}
}

func TestAggregateEmpty(t *testing.T) {
	k := key(t)
	if _, err := k.Public().Aggregate(nil); err != ErrEmptyAggregate {
		t.Fatalf("empty aggregate: got %v, want ErrEmptyAggregate", err)
	}
	if k.Public().VerifyAggregate(nil, make(Signature, k.Public().SigBytes())) {
		t.Fatal("empty digest set must not verify")
	}
}

func TestOpCounters(t *testing.T) {
	k := key(t)
	h := hashx.New()
	d := h.Hash([]byte("ops"))
	before := k.SignOps()
	s := k.Sign(d)
	if k.SignOps() != before+1 {
		t.Fatal("SignOps must count")
	}
	k.Public().ResetOps()
	k.Public().Verify(d, s)
	k.Public().VerifyAggregate([]hashx.Digest{d}, s)
	if k.Public().VerifyOps() != 2 {
		t.Fatalf("VerifyOps = %d, want 2", k.Public().VerifyOps())
	}
}

func TestGenerateDefaults(t *testing.T) {
	k, err := Generate(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k.Public().N.BitLen() != DefaultBits {
		t.Fatalf("default modulus = %d bits, want %d", k.Public().N.BitLen(), DefaultBits)
	}
	if k.Public().SigBytes() != DefaultBits/8 {
		t.Fatalf("SigBytes = %d, want %d", k.Public().SigBytes(), DefaultBits/8)
	}
}

func TestCrossKeyRejection(t *testing.T) {
	k1 := key(t)
	k2, err := Generate(DefaultBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := hashx.New()
	d := h.Hash([]byte("x"))
	if k2.Public().Verify(d, k1.Sign(d)) {
		t.Fatal("signature verified under wrong key")
	}
}

func BenchmarkSign(b *testing.B) {
	k := key(b)
	h := hashx.New()
	d := h.Hash([]byte("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Sign(d)
	}
}

// BenchmarkVerify measures Csign, the paper's Table 1 parameter for one
// signature verification.
func BenchmarkVerify(b *testing.B) {
	k := key(b)
	h := hashx.New()
	d := h.Hash([]byte("bench"))
	s := k.Sign(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Public().Verify(d, s) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkVerifyAggregate100 shows the Section 5.2 saving: one modular
// exponentiation amortized over 100 result entries.
func BenchmarkVerifyAggregate100(b *testing.B) {
	k := key(b)
	h := hashx.New()
	rng := rand.New(rand.NewSource(3))
	ds := make([]hashx.Digest, 100)
	sigs := make([]Signature, 100)
	for i := range ds {
		ds[i] = h.Hash([]byte{byte(rng.Int()), byte(i)})
		sigs[i] = k.Sign(ds[i])
	}
	agg, err := k.Public().Aggregate(sigs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Public().VerifyAggregate(ds, agg) {
			b.Fatal("aggregate verify failed")
		}
	}
}
