// Package sig provides the digital-signature substrate for the scheme:
// an RSA full-domain-hash (FDH) signer for the per-record signatures of
// formula (1), and condensed-RSA signature aggregation for the Section 5.2
// optimization.
//
// The paper proposes aggregating the per-record signatures of a query
// result into one value using either BGLS bilinear aggregation [8] or the
// single-signer condensed-RSA construction of Mykletun et al. [18]. The Go
// standard library has no pairing-friendly curves, so this package
// implements condensed-RSA, which matches the data-publishing setting
// exactly (one signer: the data owner):
//
//	sigma_i   = FDH(m_i)^d mod N
//	sigma_agg = prod_i sigma_i mod N
//	verify:     sigma_agg^e == prod_i FDH(m_i)  (mod N)
//
// This preserves the properties the paper uses: the aggregate is the size
// of one signature (Msign), and the user performs a single public-key
// operation per query result.
//
// Immutability caveat (Section 5.2): naive multiplicative aggregates are
// mutable — anyone can multiply two aggregates. Deployments should bind the
// aggregate to the query/result as described in [18]; the library exposes
// the primitive and documents the caveat, and the verifier recomputes the
// expected digest set itself so a mixed-and-matched aggregate never
// verifies against a *specific* query's digests unless it is exactly their
// product.
package sig

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"vcqr/internal/hashx"
)

// DefaultBits is the default RSA modulus size: 1024 bits, matching the
// paper's Msign = 1024 so that VO byte counts reproduce formula (4).
// (Production deployments should use >= 3072; the experiments keep the
// paper's parameter for comparability.)
const DefaultBits = 1024

var (
	// ErrEmptyAggregate reports aggregation over zero signatures.
	ErrEmptyAggregate = errors.New("sig: cannot aggregate zero signatures")
	// ErrBadSignature reports a malformed signature encoding.
	ErrBadSignature = errors.New("sig: malformed signature")
)

// Signature is a big-endian encoding of the RSA signature value, always
// exactly the modulus length (Msign/8 bytes).
type Signature []byte

// Clone returns an independent copy.
func (s Signature) Clone() Signature {
	out := make(Signature, len(s))
	copy(out, s)
	return out
}

// Equal reports byte-wise equality.
func (s Signature) Equal(o Signature) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// PublicKey is the owner's verification key, distributed to users through
// an authenticated channel (Section 2.2).
type PublicKey struct {
	N *big.Int
	E int

	verifyOps atomic.Uint64
	// ebig caches the public exponent as a big.Int. Verification is the
	// hot path of both the serving layer (delta validation) and every
	// client, and allocating the exponent per call is pure overhead; the
	// cache is lazily initialized so keys built as struct literals (the
	// cmd tools decode N and E off the wire) still benefit.
	ebig atomic.Pointer[big.Int]
}

// EBig returns the public exponent as a big.Int, computed once per key.
func (p *PublicKey) EBig() *big.Int {
	if e := p.ebig.Load(); e != nil {
		return e
	}
	e := big.NewInt(int64(p.E))
	p.ebig.Store(e)
	return e
}

// scratchPool recycles the big.Int temporaries of verification: the
// exponentiation result is needed only for one comparison, so its limb
// array is reusable across calls instead of being garbage per call.
var scratchPool = sync.Pool{New: func() any { return new(big.Int) }}

// PrivateKey is the owner's signing key.
type PrivateKey struct {
	key *rsa.PrivateKey
	pub *PublicKey

	signOps atomic.Uint64
}

// Generate creates a fresh RSA-FDH key pair. rng may be nil, in which case
// crypto/rand.Reader is used.
func Generate(bits int, rng io.Reader) (*PrivateKey, error) {
	if bits == 0 {
		bits = DefaultBits
	}
	if rng == nil {
		rng = rand.Reader
	}
	key, err := rsa.GenerateKey(rng, bits)
	if err != nil {
		return nil, fmt.Errorf("sig: key generation: %w", err)
	}
	pub := &PublicKey{N: new(big.Int).Set(key.N), E: key.E}
	return &PrivateKey{key: key, pub: pub}, nil
}

// Public returns the verification key.
func (k *PrivateKey) Public() *PublicKey { return k.pub }

// SigBytes returns the signature length in bytes (Msign/8).
func (p *PublicKey) SigBytes() int { return (p.N.BitLen() + 7) / 8 }

// SignOps returns how many signing operations the key has performed.
func (k *PrivateKey) SignOps() uint64 { return k.signOps.Load() }

// VerifyOps returns how many public-key operations the key has performed;
// the Csign unit of the paper's cost model.
func (p *PublicKey) VerifyOps() uint64 { return p.verifyOps.Load() }

// ResetOps zeroes the verify-operation counter ONLY. Signing counts live
// on the PrivateKey and are unaffected; reset them with
// PrivateKey.ResetOps. (The asymmetry is deliberate: the two counters
// belong to different parties — Csign on the user side, signing cost on
// the owner side — and experiments reset them independently.)
func (p *PublicKey) ResetOps() { p.verifyOps.Store(0) }

// ResetOps zeroes the sign-operation counter. The public key's verify
// counter is independent; see PublicKey.ResetOps.
func (k *PrivateKey) ResetOps() { k.signOps.Store(0) }

// FDH maps a digest into Z_N — the full-domain hash of formula (1),
// exported so the publisher-side crypto index (core.AggIndex) can
// precompute per-record FDH values once per epoch instead of re-deriving
// them on every verification.
func (p *PublicKey) FDH(digest hashx.Digest) *big.Int { return fdh(p.N, digest) }

// fdh maps a digest into Z_N via MGF1-SHA256 expansion reduced mod N.
// Deterministic, so signer and verifier agree; the reduction bias is
// negligible because the expansion is 64 bits wider than N.
func fdh(n *big.Int, digest hashx.Digest) *big.Int {
	byteLen := (n.BitLen()+7)/8 + 8
	out := make([]byte, 0, byteLen)
	var counter uint32
	for len(out) < byteLen {
		var ctr [4]byte
		binary.BigEndian.PutUint32(ctr[:], counter)
		sum := sha256.Sum256(append(append([]byte("vcqr/fdh"), digest...), ctr[:]...))
		out = append(out, sum[:]...)
		counter++
	}
	x := new(big.Int).SetBytes(out[:byteLen])
	return x.Mod(x, n)
}

// Sign produces the RSA-FDH signature of digest. The private operation
// uses the CRT (m^dp mod p, m^dq mod q, recombine) — ~4x faster than a
// full-width exponentiation, which matters because the owner signs once
// per record at build time.
func (k *PrivateKey) Sign(digest hashx.Digest) Signature {
	k.signOps.Add(1)
	m := fdh(k.key.N, digest)
	pr := k.key.Primes
	pre := k.key.Precomputed
	if len(pr) == 2 && pre.Dp != nil {
		m1 := new(big.Int).Exp(m, pre.Dp, pr[0])
		m2 := new(big.Int).Exp(m, pre.Dq, pr[1])
		h := new(big.Int).Sub(m1, m2)
		h.Mod(h, pr[0])
		h.Mul(h, pre.Qinv)
		h.Mod(h, pr[0])
		s := h.Mul(h, pr[1])
		s.Add(s, m2)
		return encode(s, k.pub.SigBytes())
	}
	s := new(big.Int).Exp(m, k.key.D, k.key.N)
	return encode(s, k.pub.SigBytes())
}

// Verify checks an individual signature against a digest.
func (p *PublicKey) Verify(digest hashx.Digest, sig Signature) bool {
	return p.VerifyFDH(fdh(p.N, digest), sig)
}

// VerifyFDH checks an individual signature against an already-computed
// FDH value — the seam the per-record FDH cache (core.AggIndex) uses to
// skip re-hashing on delta validation. The exponentiation result lives
// in a pooled scratch, so the call allocates only what math/big's Exp
// needs internally.
func (p *PublicKey) VerifyFDH(want *big.Int, sig Signature) bool {
	p.verifyOps.Add(1)
	s, err := decode(sig, p)
	if err != nil {
		return false
	}
	got := scratchPool.Get().(*big.Int)
	got.Exp(s, p.EBig(), p.N)
	ok := got.Cmp(want) == 0
	scratchPool.Put(got)
	return ok
}

// Aggregate condenses signatures into one by multiplication mod N.
// All signatures must come from the same key.
func (p *PublicKey) Aggregate(sigs []Signature) (Signature, error) {
	agg := p.NewAggregator()
	for _, s := range sigs {
		if err := agg.Add(s); err != nil {
			return nil, err
		}
	}
	return agg.Sum()
}

// VerifyAggregate checks a condensed signature against the digests of the
// messages it is supposed to cover. A single modular exponentiation is
// performed regardless of len(digests) — the Section 5.2 saving.
func (p *PublicKey) VerifyAggregate(digests []hashx.Digest, agg Signature) bool {
	av := p.NewAggVerifier()
	for _, d := range digests {
		av.Add(d)
	}
	return av.Verify(agg)
}

// Aggregator condenses signatures incrementally: the running product mod
// N is the only state, so a producer can fold in one signature per result
// entry as it streams a VO without ever holding the signature list. The
// zero-overhead equivalent of Aggregate for pipelines.
type Aggregator struct {
	p   *PublicKey
	acc *big.Int
	n   int
}

// NewAggregator starts an empty condensed-signature accumulator.
func (p *PublicKey) NewAggregator() *Aggregator {
	return &Aggregator{p: p, acc: big.NewInt(1)}
}

// Add folds one signature into the aggregate.
func (a *Aggregator) Add(s Signature) error {
	v, err := decode(s, a.p)
	if err != nil {
		return err
	}
	a.acc.Mul(a.acc, v)
	a.acc.Mod(a.acc, a.p.N)
	a.n++
	return nil
}

// Count returns how many signatures were folded in so far.
func (a *Aggregator) Count() int { return a.n }

// Sum returns the condensed signature over everything added so far.
func (a *Aggregator) Sum() (Signature, error) {
	if a.n == 0 {
		return nil, ErrEmptyAggregate
	}
	return encode(a.acc, a.p.SigBytes()), nil
}

// AggVerifier is the user-side dual of Aggregator: it accumulates the
// expected FDH product one digest at a time, so a streaming verifier
// needs O(1) memory regardless of result size, and performs the single
// public-key exponentiation only when the aggregate arrives.
type AggVerifier struct {
	p    *PublicKey
	want *big.Int
	n    int
}

// NewAggVerifier starts an empty expected-digest accumulator.
func (p *PublicKey) NewAggVerifier() *AggVerifier {
	return &AggVerifier{p: p, want: big.NewInt(1)}
}

// Add folds one expected message digest into the accumulator.
func (a *AggVerifier) Add(d hashx.Digest) {
	a.want.Mul(a.want, fdh(a.p.N, d))
	a.want.Mod(a.want, a.p.N)
	a.n++
}

// Count returns how many digests were folded in so far.
func (a *AggVerifier) Count() int { return a.n }

// Verify checks a condensed signature against the accumulated digests
// with one modular exponentiation.
func (a *AggVerifier) Verify(agg Signature) bool {
	a.p.verifyOps.Add(1)
	if a.n == 0 {
		return false
	}
	s, err := decode(agg, a.p)
	if err != nil {
		return false
	}
	got := scratchPool.Get().(*big.Int)
	got.Exp(s, a.p.EBig(), a.p.N)
	ok := got.Cmp(a.want) == 0
	scratchPool.Put(got)
	return ok
}

// SigValue decodes a signature into its Z_N value — the leaf material of
// a product tree. Fails on malformed or out-of-range encodings exactly
// like verification would.
func (p *PublicKey) SigValue(s Signature) (*big.Int, error) { return decode(s, p) }

func encode(v *big.Int, size int) Signature {
	out := make([]byte, size)
	v.FillBytes(out)
	return out
}

func decode(s Signature, p *PublicKey) (*big.Int, error) {
	if len(s) != p.SigBytes() {
		return nil, ErrBadSignature
	}
	v := new(big.Int).SetBytes(s)
	if v.Sign() <= 0 || v.Cmp(p.N) >= 0 {
		return nil, ErrBadSignature
	}
	return v, nil
}
