package core

import (
	"bytes"
	"fmt"
	"math/big"

	"vcqr/internal/hashx"
	"vcqr/internal/sig"
)

// AggIndex is the per-epoch crypto index of a signed relation — the
// aggregation fast path. It holds two persistent product trees
// (sig.ProductTree) with one leaf per entry of sr.Recs:
//
//   - the σ tree: leaf i is the decoded signature value of entry i, so
//     the condensed signature over any contiguous run [a, b) of the
//     chain — exactly what a range query's VO footer carries — costs
//     O(log n) modular multiplications (RangeAggregate) instead of the
//     O(b-a) the per-entry fold pays;
//
//   - the FDH tree: leaf i is FDH(sigDigest(i)), tagged with the digest
//     it was derived from, so the publisher can (a) verify any entry's
//     signature without re-hashing (VerifyEntry — the per-record FDH
//     cache the delta validator runs on) and (b) check a condensed
//     signature over any contiguous run with ONE exponentiation and
//     O(log n) multiplications (VerifyRange), never touching a record.
//
// Both trees are persistent: every mutation returns a new index sharing
// all untouched nodes, so an index is a copy-on-write snapshot member.
// The serving layer builds it once at publish time; a delta cutover
// derives the successor epoch's index with O(ops · log n) work
// (insertAt/deleteAt for structural changes, refreshed for re-signed
// neighbourhoods) while readers keep using the old epoch's index.
//
// The tags make the FDH cache self-checking rather than trusted:
// VerifyEntry recomputes the (cheap, hash-only) signed digest and falls
// back to a full FDH derivation if the cached leaf was computed from
// anything else, so a stale leaf can cost time but never correctness.
type AggIndex struct {
	h    *hashx.Hasher
	pub  *sig.PublicKey
	sigs *sig.ProductTree
	fdhs *sig.ProductTree
}

// BuildAggIndex derives the index for a signed relation: O(n)
// multiplications and FDH derivations, paid once per publication (the
// owner-side analogue of sorting before you binary-search).
func BuildAggIndex(h *hashx.Hasher, pub *sig.PublicKey, sr *SignedRelation) (*AggIndex, error) {
	n := len(sr.Recs)
	sigs := make([]sig.Signature, n)
	fdhVals := make([]*big.Int, n)
	tags := make([][]byte, n)
	for i := 0; i < n; i++ {
		sigs[i] = sig.Signature(sr.Recs[i].Sig)
		d := sr.sigDigest(h, i)
		fdhVals[i] = pub.FDH(d)
		tags[i] = d
	}
	sigT, err := pub.NewSigTree(sigs)
	if err != nil {
		return nil, fmt.Errorf("core: agg index: %w", err)
	}
	return &AggIndex{
		h:    h,
		pub:  pub,
		sigs: sigT,
		fdhs: pub.NewProductTree(fdhVals, tags),
	}, nil
}

// Len returns the number of indexed entries (including delimiters),
// which must equal len(sr.Recs) for the index to be usable.
func (ix *AggIndex) Len() int { return ix.sigs.Len() }

// Key returns the verification key the index was built against.
func (ix *AggIndex) Key() *sig.PublicKey { return ix.pub }

// RangeAggregate returns the condensed signature over entries [a, b) in
// O(log n) multiplications.
func (ix *AggIndex) RangeAggregate(a, b int) (sig.Signature, error) {
	return ix.sigs.RangeSig(a, b)
}

// RangeFDH returns the expected FDH product over entries [a, b) — what a
// verifier's accumulator would hold after folding those entries' signed
// digests — in O(log n) multiplications.
func (ix *AggIndex) RangeFDH(a, b int) *big.Int { return ix.fdhs.Range(a, b) }

// VerifyRange checks a condensed signature over entries [a, b) with a
// single public-key exponentiation, using the cached FDH product instead
// of re-hashing any record.
//
// On a partition shard slice, only ranges inside [1, len-1) — the owned
// region — are locally verifiable: the two context records' signatures
// bind g digests the slice does not hold, so a range touching them fails
// closed here exactly as their signature checks are deferred to the
// owning shard in delta.ValidateTouched.
func (ix *AggIndex) VerifyRange(a, b int, agg sig.Signature) bool {
	if a >= b {
		return false
	}
	return ix.pub.VerifyFDH(ix.RangeFDH(a, b), agg)
}

// VerifyEntry checks entry i's formula-(1) signature using the cached
// FDH leaf. The signed digest is recomputed (hash-only, cheap) and
// compared against the leaf's tag, so a leaf the refresh discipline
// missed degrades to the slow path instead of validating against stale
// material.
func (ix *AggIndex) VerifyEntry(h *hashx.Hasher, sr *SignedRelation, i int) bool {
	d := sr.sigDigest(h, i)
	want, tag := ix.fdhs.At(i)
	if !bytes.Equal(tag, d) {
		want = ix.pub.FDH(d)
	}
	return ix.pub.VerifyFDH(want, sig.Signature(sr.Recs[i].Sig))
}

// insertAt returns an index with placeholder leaves for a new entry at
// position i: the σ leaf is real (decoded from rec's signature), the FDH
// leaf is a stale-tagged unit awaiting refresh — sigDigest(i) depends on
// neighbours that may still change within the same batch.
func (ix *AggIndex) insertAt(i int, rec *SignedRecord) (*AggIndex, error) {
	v, err := ix.pub.SigValue(sig.Signature(rec.Sig))
	if err != nil {
		return nil, fmt.Errorf("core: agg index insert at %d: %w", i, err)
	}
	return &AggIndex{
		h:    ix.h,
		pub:  ix.pub,
		sigs: ix.sigs.Insert(i, v, nil),
		fdhs: ix.fdhs.Insert(i, big.NewInt(1), nil),
	}, nil
}

// deleteAt returns an index with entry i's leaves removed.
func (ix *AggIndex) deleteAt(i int) *AggIndex {
	return &AggIndex{h: ix.h, pub: ix.pub, sigs: ix.sigs.Delete(i), fdhs: ix.fdhs.Delete(i)}
}

// refreshed returns an index with the leaves of every touched entry —
// and its immediate neighbours, whose signed digests bind the touched
// g values — recomputed from the relation's current state. O(t · log n).
// The ±1 expansion deliberately overlaps with callers (delta.ApplyOps)
// whose touched sets already include neighbourhoods: refreshing a
// distance-2 leaf twice costs microseconds inside a cutover dominated
// by the O(n) clone, while an under-refreshed leaf would cost a wrong
// (client-rejected) aggregate — so every caller gets the conservative
// semantics.
func (ix *AggIndex) refreshed(sr *SignedRelation, touched []int) (*AggIndex, error) {
	out := ix
	seen := map[int]bool{}
	for _, t := range touched {
		for _, i := range []int{t - 1, t, t + 1} {
			if i < 0 || i >= len(sr.Recs) || i >= out.Len() || seen[i] {
				continue
			}
			seen[i] = true
			v, err := out.pub.SigValue(sig.Signature(sr.Recs[i].Sig))
			if err != nil {
				return nil, fmt.Errorf("core: agg index refresh at %d: %w", i, err)
			}
			d := sr.sigDigest(out.h, i)
			out = &AggIndex{
				h:    out.h,
				pub:  out.pub,
				sigs: out.sigs.Update(i, v, nil),
				fdhs: out.fdhs.Update(i, out.pub.FDH(d), d),
			}
		}
	}
	return out, nil
}

// --- SignedRelation attachment ---------------------------------------

// AggIndex returns the relation's crypto index, or nil when none is
// attached (the naive O(|Q|) aggregation path then applies).
func (sr *SignedRelation) AggIndex() *AggIndex { return sr.aggIdx }

// SetAggIndex attaches (or, with nil, detaches) a crypto index. The
// index must describe exactly this relation's entry sequence; consumers
// guard on AggIndex().Len() == len(sr.Recs) before trusting it.
func (sr *SignedRelation) SetAggIndex(ix *AggIndex) { sr.aggIdx = ix }

// BuildAggIndex builds and attaches the crypto index — the publish-time
// step of the aggregation fast path. Any error (malformed signature
// material) leaves the relation unindexed on the correct-but-slow path.
func (sr *SignedRelation) BuildAggIndex(h *hashx.Hasher, pub *sig.PublicKey) error {
	ix, err := BuildAggIndex(h, pub, sr)
	if err != nil {
		sr.aggIdx = nil
		return err
	}
	sr.aggIdx = ix
	return nil
}

// RefreshAggIndex recomputes the index leaves of the touched entries and
// their neighbours after in-place record changes (delta application,
// shard mirror stitching). A refresh failure detaches the index — the
// relation falls back to naive aggregation rather than ever serving a
// product derived from stale leaves. No-op when no index is attached.
func (sr *SignedRelation) RefreshAggIndex(touched []int) {
	if sr.aggIdx == nil {
		return
	}
	if sr.aggIdx.Len() != len(sr.Recs) {
		sr.aggIdx = nil
		return
	}
	ix, err := sr.aggIdx.refreshed(sr, touched)
	if err != nil {
		sr.aggIdx = nil
		return
	}
	sr.aggIdx = ix
}

// AggIndexInsertAt mirrors a record insertion at position pos into the
// attached index (placeholder FDH leaf; callers must RefreshAggIndex the
// touched neighbourhood afterwards). No-op when no index is attached; on
// any inconsistency the index is detached.
func (sr *SignedRelation) AggIndexInsertAt(pos int) {
	if sr.aggIdx == nil {
		return
	}
	if pos < 0 || pos >= len(sr.Recs) || sr.aggIdx.Len() != len(sr.Recs)-1 {
		sr.aggIdx = nil
		return
	}
	ix, err := sr.aggIdx.insertAt(pos, &sr.Recs[pos])
	if err != nil {
		sr.aggIdx = nil
		return
	}
	sr.aggIdx = ix
}

// AggIndexDeleteAt mirrors a record deletion at position pos into the
// attached index. No-op when no index is attached.
func (sr *SignedRelation) AggIndexDeleteAt(pos int) {
	if sr.aggIdx == nil {
		return
	}
	if pos < 0 || pos >= sr.aggIdx.Len() || sr.aggIdx.Len() != len(sr.Recs)+1 {
		sr.aggIdx = nil
		return
	}
	sr.aggIdx = sr.aggIdx.deleteAt(pos)
}
