package core_test

// Freshness-binding tests live in an external test package because they
// exercise the full publish/verify pipeline across versions.

import (
	"sync"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

func buildVersion(t testing.TB, h *hashx.Hasher, rel *relation.Relation, version uint64) *core.SignedRelation {
	t.Helper()
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Version = version
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestStaleSnapshotRejected is the freshness scenario: the owner
// republishes at version 2; a publisher still serving the version-1
// snapshot produces results that fail verification under the user's
// refreshed parameters — even though every record is individually
// authentic and the range complete for the stale state.
func TestStaleSnapshotRejected(t *testing.T) {
	h := hashx.New()
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 20, L: 0, U: 1 << 20, PhotoSize: 8, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1 := buildVersion(t, h, rel, 1)
	v2 := buildVersion(t, h, rel, 2)

	role := accessctl.Role{Name: "all"}
	stalePub := engine.NewPublisher(h, signKey(t).Public(), accessctl.NewPolicy(role))
	if err := stalePub.AddRelation(v1, false); err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1}
	res, err := stalePub.Execute("all", q)
	if err != nil {
		t.Fatal(err)
	}

	// Under the stale parameters the result verifies (the snapshot is
	// internally sound)...
	oldVerifier := verify.New(h, signKey(t).Public(), v1.Params, v1.Schema)
	if _, err := oldVerifier.VerifyResult(q, role, res); err != nil {
		t.Fatalf("version-1 result under version-1 params: %v", err)
	}
	// ...but a user holding the refreshed (version-2) parameters rejects
	// it.
	newVerifier := verify.New(h, signKey(t).Public(), v2.Params, v2.Schema)
	if _, err := newVerifier.VerifyResult(q, role, res); err == nil {
		t.Fatal("stale snapshot accepted under refreshed parameters")
	}

	// And the current snapshot verifies under the current parameters.
	freshPub := engine.NewPublisher(h, signKey(t).Public(), accessctl.NewPolicy(role))
	if err := freshPub.AddRelation(v2, false); err != nil {
		t.Fatal(err)
	}
	res2, err := freshPub.Execute("all", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newVerifier.VerifyResult(q, role, res2); err != nil {
		t.Fatalf("fresh result rejected: %v", err)
	}
}

// TestVersionZeroIsUnversioned: version 0 keeps the paper's original
// digest layout, so all pre-existing material remains valid.
func TestVersionZeroIsUnversioned(t *testing.T) {
	h := hashx.New()
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 5, L: 0, U: 1 << 20, Seed: 92,
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := buildVersion(t, h, rel, 0)
	if err := sr.Validate(h, signKey(t).Public()); err != nil {
		t.Fatal(err)
	}
}

// TestVersionsProduceDistinctSignatures: the same data at different
// versions must not share signatures (otherwise version stamps would be
// transplantable).
func TestVersionsProduceDistinctSignatures(t *testing.T) {
	h := hashx.New()
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 5, L: 0, U: 1 << 20, Seed: 93,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1 := buildVersion(t, h, rel, 1)
	v2 := buildVersion(t, h, rel, 2)
	for i := range v1.Recs {
		if sig.Signature(v1.Recs[i].Sig).Equal(sig.Signature(v2.Recs[i].Sig)) {
			t.Fatalf("entry %d shares a signature across versions", i)
		}
	}
	// G digests are version-independent (only signatures bind versions),
	// so chain material can be reused by the owner when re-publishing.
	for i := range v1.Recs {
		if !v1.Recs[i].G.Equal(v2.Recs[i].G) {
			t.Fatalf("entry %d g digest changed across versions", i)
		}
	}
}
