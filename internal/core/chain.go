package core

import (
	"fmt"

	"vcqr/internal/basep"
	"vcqr/internal/hashx"
	"vcqr/internal/mht"
)

// digitChains holds, for one (key, direction) pair, the iterated-hash
// chain of every digit position up to the maximum count any representation
// can need (2B-1, by the lemma's digit bounds). chains[j][c] = h^c(r|j).
//
// Building all of them once makes owner-side signing O(m*B) hash
// operations instead of O(m^2*B), because the canonical representation and
// all m preferred non-canonical representations share these chain values.
type digitChains struct {
	p      Params
	key    uint64
	dir    Direction
	chains [][]hashx.Digest
}

// newDigitChains computes the chains for a key in one direction.
func newDigitChains(h *hashx.Hasher, p Params, key uint64, dir Direction) *digitChains {
	maxCount := int(2*p.BP.B) - 1
	dc := &digitChains{p: p, key: key, dir: dir, chains: make([][]hashx.Digest, p.BP.Digits)}
	for j := 0; j < p.BP.Digits; j++ {
		chain := make([]hashx.Digest, maxCount+1)
		chain[0] = h.First(preimage(key, j, dir))
		for c := 1; c <= maxCount; c++ {
			chain[c] = h.Next(chain[c-1])
		}
		dc.chains[j] = chain
	}
	return dc
}

// tip returns h^count(r|j).
func (dc *digitChains) tip(j int, count uint64) hashx.Digest {
	if int(count) >= len(dc.chains[j]) {
		panic(fmt.Sprintf("core: digit %d chain count %d exceeds precomputed %d", j, count, len(dc.chains[j])-1))
	}
	return dc.chains[j][count]
}

// repDigest computes the digest of one representation: the hash over the
// concatenated per-digit chain tips, h(h^{d_0}(r|0) | .. | h^{d_m}(r|m)).
// Digit positions marked basep.InvalidDigit (the undefined component of an
// invalid preferred representation) are dropped from the concatenation, as
// prescribed in Section 5.1.
func (dc *digitChains) repDigest(h *hashx.Hasher, rep basep.Rep) hashx.Digest {
	parts := make([][]byte, 0, len(rep.Digits))
	for j, d := range rep.Digits {
		if d == basep.InvalidDigit {
			continue
		}
		parts = append(parts, dc.tip(j, d))
	}
	return h.Hash(parts...)
}

// chainSide is everything the owner derives for one (record, direction):
// the canonical-representation digest h(delta_t), the Merkle tree over the
// m preferred non-canonical representations (Figure 7), and the combined
// digest h(h(delta_t) | MHT root) that enters g(r).
type chainSide struct {
	canon    basep.Rep
	canonDig hashx.Digest
	repTree  *mht.Tree
	Combined hashx.Digest
}

// buildChainSide computes the full chain-side structure for a key.
func buildChainSide(h *hashx.Hasher, p Params, key uint64, dir Direction) (*chainSide, error) {
	dt, err := p.deltaT(key, dir)
	if err != nil {
		return nil, err
	}
	canon, err := basep.Canonical(p.BP, dt)
	if err != nil {
		return nil, err
	}
	dc := newDigitChains(h, p, key, dir)
	canonDig := dc.repDigest(h, canon)
	m := p.BP.M()
	leaves := make([]hashx.Digest, m)
	for i := 0; i < m; i++ {
		rep, _ := basep.Preferred(canon, i)
		leaves[i] = dc.repDigest(h, rep)
	}
	tree := mht.BuildFromDigests(h, leaves)
	return &chainSide{
		canon:    canon,
		canonDig: canonDig,
		repTree:  tree,
		Combined: combineChain(h, canonDig, tree.Root()),
	}, nil
}

// combineChain folds the canonical-representation digest and the
// representation-tree root into the per-direction component of g(r):
// Figure 7's h(h(delta_t) | MHT root).
func combineChain(h *hashx.Hasher, canonDig, repRoot hashx.Digest) hashx.Digest {
	return h.Hash(canonDig, repRoot)
}

// RepRoot returns the root of the non-canonical-representation tree; this
// digest is shipped per result entry so the user can recompute the
// combined digest from the known key.
func (cs *chainSide) RepRoot() hashx.Digest { return cs.repTree.Root() }

// entryCombined recomputes the per-direction combined digest for a record
// whose key the user KNOWS (a result entry, Figure 8(b)): derive the
// canonical representation digits of delta_t, walk each digit chain (at
// most B-1 iterations per digit), hash the concatenation, and fold in the
// representation-tree root received from the publisher.
func entryCombined(h *hashx.Hasher, p Params, key uint64, dir Direction, repRoot hashx.Digest) (hashx.Digest, error) {
	dt, err := p.deltaT(key, dir)
	if err != nil {
		return nil, err
	}
	canon, err := basep.Canonical(p.BP, dt)
	if err != nil {
		return nil, err
	}
	parts := make([][]byte, len(canon.Digits))
	for j, d := range canon.Digits {
		parts[j] = h.Iterate(preimage(key, j, dir), d)
	}
	return combineChain(h, h.Hash(parts...), repRoot), nil
}

// ChainProof is the publisher's proof that a *hidden* boundary key lies
// outside a query bound (Figure 8(a)). The user extends each intermediate
// digest by the canonical digits of delta_c = (bound-relative extension),
// reconstructs the digest of the representation the publisher chose, and
// folds it into the combined digest for comparison against the signature
// chain.
type ChainProof struct {
	// Canonical is true when the canonical representation of delta_t
	// dominates delta_c digitwise and was used directly.
	Canonical bool
	// Index is the preferred-representation index used when !Canonical.
	Index int
	// Intermediates holds the m+1 digests h^{deltaE_i}(r|i).
	Intermediates []hashx.Digest
	// RepRoot is the representation-tree root (when Canonical).
	RepRoot hashx.Digest
	// CanonDigest is the canonical-representation digest (when !Canonical).
	CanonDigest hashx.Digest
	// RepPath is the audit path for leaf Index (when !Canonical).
	RepPath []mht.PathElem
}

// proveChain builds the ChainProof that this side's key lies outside
// bound: key < bound for Up, key > bound for Down. Returns ErrNotOutside
// when the condition is false — precisely the case the scheme makes
// unforgeable.
func (dc *digitChains) proveChain(h *hashx.Hasher, cs *chainSide, bound uint64) (ChainProof, error) {
	p := dc.p
	dt, err := p.deltaT(dc.key, dc.dir)
	if err != nil {
		return ChainProof{}, err
	}
	dcBound, err := p.deltaC(bound, dc.dir)
	if err != nil {
		return ChainProof{}, err
	}
	if dt < dcBound {
		return ChainProof{}, fmt.Errorf("%w: key %d vs bound %d (%s)", ErrNotOutside, dc.key, bound, dc.dir)
	}
	sel, err := basep.Select(p.BP, dt, dcBound)
	if err != nil {
		return ChainProof{}, err
	}
	inter := make([]hashx.Digest, p.BP.Digits)
	for j, e := range sel.DeltaE {
		inter[j] = dc.tip(j, e)
	}
	if sel.Canonical {
		return ChainProof{
			Canonical:     true,
			Index:         -1,
			Intermediates: inter,
			RepRoot:       cs.repTree.Root(),
		}, nil
	}
	return ChainProof{
		Canonical:     false,
		Index:         sel.Index,
		Intermediates: inter,
		CanonDigest:   cs.canonDig,
		RepPath:       cs.repTree.Path(sel.Index),
	}, nil
}

// repTreeDepth returns the audit-path length of the m-leaf representation
// tree (padded to a power of two).
func repTreeDepth(m int) int {
	d := 0
	for w := 1; w < m; w <<= 1 {
		d++
	}
	return d
}

// verifyChain reconstructs the per-direction combined digest implied by a
// ChainProof and a query bound. It does NOT decide validity by itself: the
// caller folds the result into g(r) and checks the signature chain. An
// error reports a structurally malformed proof.
func verifyChain(h *hashx.Hasher, p Params, proof ChainProof, dir Direction, bound uint64) (hashx.Digest, error) {
	dcBound, err := p.deltaC(bound, dir)
	if err != nil {
		return nil, err
	}
	exps, err := basep.UserExponents(p.BP, dcBound)
	if err != nil {
		return nil, err
	}
	if len(proof.Intermediates) != p.BP.Digits {
		return nil, fmt.Errorf("%w: %d intermediates, want %d", ErrProofShape, len(proof.Intermediates), p.BP.Digits)
	}
	parts := make([][]byte, p.BP.Digits)
	for j, d := range proof.Intermediates {
		if len(d) != h.Size() {
			return nil, fmt.Errorf("%w: intermediate %d has width %d", ErrProofShape, j, len(d))
		}
		parts[j] = h.IterateFrom(d, exps[j])
	}
	repDig := h.Hash(parts...)
	m := p.BP.M()
	if proof.Canonical {
		if len(proof.RepRoot) != h.Size() {
			return nil, fmt.Errorf("%w: bad rep root width", ErrProofShape)
		}
		return combineChain(h, repDig, proof.RepRoot), nil
	}
	if proof.Index < 0 || proof.Index >= m {
		return nil, fmt.Errorf("%w: representation index %d out of [0,%d)", ErrProofShape, proof.Index, m)
	}
	if len(proof.RepPath) != repTreeDepth(m) {
		return nil, fmt.Errorf("%w: rep path length %d, want %d", ErrProofShape, len(proof.RepPath), repTreeDepth(m))
	}
	if len(proof.CanonDigest) != h.Size() {
		return nil, fmt.Errorf("%w: bad canonical digest width", ErrProofShape)
	}
	// Check the audit path is consistent with the claimed leaf index so a
	// publisher cannot place the reconstructed digest at a different leaf.
	idx := proof.Index
	for _, e := range proof.RepPath {
		wantRight := idx%2 == 0
		if e.Right != wantRight {
			return nil, fmt.Errorf("%w: rep path direction mismatch", ErrProofShape)
		}
		idx /= 2
	}
	root := mht.RootFromPath(h, repDig, proof.RepPath)
	return combineChain(h, proof.CanonDigest, root), nil
}

// Size returns the number of digests carried by the proof; the traffic
// accounting unit of formula (4).
func (cp ChainProof) Size() int {
	n := len(cp.Intermediates)
	if cp.Canonical {
		return n + 1 // + rep root
	}
	return n + 1 + len(cp.RepPath) // + canonical digest + audit path
}
