package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vcqr/internal/basep"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
)

// TestChainProofCoversEveryRepresentationIndex forces the non-canonical
// path at every preferred-representation index: for each index i we
// search for a (key, bound) pair whose Select lands on i, then run the
// full prove/verify round trip. This pins down the audit-path handling
// for every leaf of the representation tree.
func TestChainProofCoversEveryRepresentationIndex(t *testing.T) {
	p := mustParams(t, 0, 1<<16, 2)
	h := hashx.New()
	m := p.BP.M()
	covered := make(map[int]bool)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20000 && len(covered) < m-2; trial++ {
		key := uint64(rng.Intn(1<<16-2)) + 1
		bound := key + 1 + uint64(rng.Intn(int((uint64(1)<<16)-key-1)))
		if bound >= 1<<16 {
			continue
		}
		dt, err := p.deltaT(key, Up)
		if err != nil {
			continue
		}
		dc, err := p.deltaC(bound, Up)
		if err != nil || dc > dt {
			continue
		}
		sel, err := basep.Select(p.BP, dt, dc)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Canonical || covered[sel.Index] {
			continue
		}
		covered[sel.Index] = true

		side, err := buildChainSide(h, p, key, Up)
		if err != nil {
			t.Fatal(err)
		}
		dcChains := newDigitChains(h, p, key, Up)
		proof, err := dcChains.proveChain(h, side, bound)
		if err != nil {
			t.Fatalf("index %d: %v", sel.Index, err)
		}
		if proof.Canonical || proof.Index != sel.Index {
			t.Fatalf("index %d: proof landed on %d (canonical=%v)", sel.Index, proof.Index, proof.Canonical)
		}
		combined, err := verifyChain(h, p, proof, Up, bound)
		if err != nil {
			t.Fatalf("index %d verify: %v", sel.Index, err)
		}
		if !combined.Equal(side.Combined) {
			t.Fatalf("index %d: combined digest mismatch", sel.Index)
		}
	}
	if len(covered) < 5 {
		t.Fatalf("only covered %d non-canonical indexes; want broad coverage", len(covered))
	}
}

// TestAttrRootDisclosureEquivalence: for every subset of disclosed
// columns, AttrRootFromDisclosure must reproduce the owner's AttrRoot.
func TestAttrRootDisclosureEquivalence(t *testing.T) {
	h := hashx.New()
	tuple := relation.Tuple{
		Key:   42,
		RowID: 3,
		Attrs: []relation.Value{
			relation.IntVal(7),
			relation.StringVal("abc"),
			relation.BytesVal([]byte{1, 2, 3}),
			relation.BoolVal(true),
		},
	}
	want := AttrRoot(h, tuple)
	leaves := AttrLeaves(h, tuple)
	nLeaves := len(tuple.Attrs) + 1
	// All 2^4 disclosure subsets of the 4 columns (row-id always hidden).
	for mask := 0; mask < 16; mask++ {
		disclosed := map[int][]byte{}
		hidden := map[int]hashx.Digest{0: leaves[0]}
		for c := 0; c < 4; c++ {
			if mask&(1<<c) != 0 {
				disclosed[c+1] = tuple.Attrs[c].Encode()
			} else {
				hidden[c+1] = leaves[c+1]
			}
		}
		got, err := AttrRootFromDisclosure(h, nLeaves, disclosed, hidden)
		if err != nil {
			t.Fatalf("mask %04b: %v", mask, err)
		}
		if !got.Equal(want) {
			t.Fatalf("mask %04b: root mismatch", mask)
		}
	}
}

func TestAttrRootDisclosureRejectsInconsistency(t *testing.T) {
	h := hashx.New()
	tuple := relation.Tuple{Key: 1, Attrs: []relation.Value{relation.IntVal(7)}}
	leaves := AttrLeaves(h, tuple)
	// Wrong count.
	if _, err := AttrRootFromDisclosure(h, 2, map[int][]byte{}, map[int]hashx.Digest{0: leaves[0]}); err == nil {
		t.Error("short disclosure accepted")
	}
	// Overlapping leaf.
	if _, err := AttrRootFromDisclosure(h, 2,
		map[int][]byte{1: tuple.Attrs[0].Encode()},
		map[int]hashx.Digest{0: leaves[0], 1: leaves[1]}); err == nil {
		t.Error("overlapping disclosure accepted")
	}
	// Malformed digest width.
	if _, err := AttrRootFromDisclosure(h, 2,
		map[int][]byte{1: tuple.Attrs[0].Encode()},
		map[int]hashx.Digest{0: leaves[0][:4]}); err == nil {
		t.Error("short digest accepted")
	}
}

// TestGDistinctAcrossKeysAndKinds: g must separate records by key, kind,
// and attributes (quick property over random pairs).
func TestGDistinctAcrossKeysAndKinds(t *testing.T) {
	h := hashx.New()
	p := mustParams(t, 0, 1<<20, 2)
	f := func(k1, k2 uint32, a1, a2 int64) bool {
		key1 := uint64(k1)%(1<<20-2) + 1
		key2 := uint64(k2)%(1<<20-2) + 1
		t1 := relation.Tuple{Key: key1, Attrs: []relation.Value{relation.IntVal(a1)}}
		t2 := relation.Tuple{Key: key2, Attrs: []relation.Value{relation.IntVal(a2)}}
		r1, err := makeRecord(h, p, t1)
		if err != nil {
			return false
		}
		r2, err := makeRecord(h, p, t2)
		if err != nil {
			return false
		}
		if key1 == key2 && a1 == a2 {
			return r1.G.Equal(r2.G)
		}
		return !r1.G.Equal(r2.G)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVerifyEntrySigAndCheckEntryDigests covers the delta-sync helpers.
func TestVerifyEntrySigAndCheckEntryDigests(t *testing.T) {
	h, sr := buildPaper(t, 10)
	pub := signKey(t).Public()
	for i := range sr.Recs {
		if !sr.VerifyEntrySig(h, pub, i) {
			t.Fatalf("entry %d signature invalid", i)
		}
		if err := sr.CheckEntryDigests(h, i); err != nil {
			t.Fatalf("entry %d digests: %v", i, err)
		}
	}
	if sr.VerifyEntrySig(h, pub, -1) || sr.VerifyEntrySig(h, pub, len(sr.Recs)) {
		t.Fatal("out-of-range entries verified")
	}
	// Tamper one record's tuple: digests check must fail.
	sr.Recs[2].Tuple.Attrs[0] = relation.IntVal(999)
	if err := sr.CheckEntryDigests(h, 2); err == nil {
		t.Fatal("tampered tuple passed digest check")
	}
}

// TestCloneIndependence: mutations to a clone never affect the original.
func TestCloneIndependence(t *testing.T) {
	h, sr := buildPaper(t, 10)
	cl := sr.Clone()
	cl.Recs[1].Sig[0] ^= 0xff
	cl.Recs[1].G[0] ^= 0xff
	cl.Recs = cl.Recs[:3]
	if err := sr.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

// TestDirectionSeparation: the up and down chains of the same key must
// never share digests, even when their delta values coincide.
func TestDirectionSeparation(t *testing.T) {
	h := hashx.New()
	// Symmetric domain: key at the midpoint has equal deltas both ways.
	p := mustParams(t, 0, 1000, 2)
	key := uint64(500) // deltaT(up) = 499 = deltaT(down)
	up, err := buildChainSide(h, p, key, Up)
	if err != nil {
		t.Fatal(err)
	}
	down, err := buildChainSide(h, p, key, Down)
	if err != nil {
		t.Fatal(err)
	}
	if up.Combined.Equal(down.Combined) {
		t.Fatal("up and down chains collide at the symmetric key")
	}
}
