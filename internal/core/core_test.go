package core

import (
	"math/rand"
	"sync"
	"testing"

	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		testKey = k
	})
	return testKey
}

func paperSchema() relation.Schema {
	return relation.Schema{
		Name:    "Emp",
		KeyName: "Salary",
		Cols: []relation.Column{
			{Name: "ID", Type: relation.TypeInt},
			{Name: "Name", Type: relation.TypeString},
			{Name: "Dept", Type: relation.TypeInt},
		},
	}
}

// paperRelation builds the Figure 1 Employee table over domain (0, 100000)
// — the running example of Section 3.1.
func paperRelation(t testing.TB) *relation.Relation {
	rel, err := relation.New(paperSchema(), 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		salary uint64
		id     int64
		name   string
		dept   int64
	}{
		{2000, 5, "A", 1}, {3500, 2, "C", 2}, {8010, 1, "D", 1},
		{12100, 4, "B", 3}, {25000, 3, "E", 2},
	}
	for _, r := range rows {
		_, err := rel.Insert(relation.Tuple{Key: r.salary, Attrs: []relation.Value{
			relation.IntVal(r.id), relation.StringVal(r.name), relation.IntVal(r.dept),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func paperParams(t testing.TB, base uint64) Params {
	p, err := NewParams(0, 100000, base)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildPaper(t testing.TB, base uint64) (*hashx.Hasher, *SignedRelation) {
	h := hashx.New()
	sr, err := Build(h, signKey(t), paperParams(t, base), paperRelation(t))
	if err != nil {
		t.Fatal(err)
	}
	return h, sr
}

func TestNewParamsValidation(t *testing.T) {
	if _, err := NewParams(10, 10, 2); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewParams(10, 11, 2); err == nil {
		t.Error("domain without interior accepted")
	}
	if _, err := NewParams(0, MaxSpan+1, 2); err == nil {
		t.Error("oversized span accepted")
	}
	if _, err := NewParams(0, 100, 1); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := NewParams(0, 100, 2); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestDeltaArithmetic(t *testing.T) {
	p := paperParams(t, 10)
	// Section 3.1 example: g(2000) = h^{100000-2000-1}(2000).
	if dt, _ := p.deltaT(2000, Up); dt != 97999 {
		t.Errorf("deltaT(2000, Up) = %d, want 97999", dt)
	}
	if dt, _ := p.deltaT(2000, Down); dt != 1999 {
		t.Errorf("deltaT(2000, Down) = %d, want 1999", dt)
	}
	if dc, _ := p.deltaC(10000, Up); dc != 90000 {
		t.Errorf("deltaC(10000, Up) = %d, want 90000", dc)
	}
	if dc, _ := p.deltaC(10000, Down); dc != 10000 {
		t.Errorf("deltaC(10000, Down) = %d, want 10000", dc)
	}
	if _, err := p.deltaT(100000, Up); err == nil {
		t.Error("deltaT at U must fail for Up")
	}
	if _, err := p.deltaT(0, Down); err == nil {
		t.Error("deltaT at L must fail for Down")
	}
	if _, err := p.deltaC(0, Up); err == nil {
		t.Error("bound at L must fail")
	}
	if _, err := p.deltaC(100000, Down); err == nil {
		t.Error("bound at U must fail")
	}
}

func TestBuildShape(t *testing.T) {
	_, sr := buildPaper(t, 10)
	if sr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", sr.Len())
	}
	if sr.Recs[0].Kind != KindDelimLeft || sr.Recs[0].Key() != 0 {
		t.Error("left delimiter malformed")
	}
	if sr.Recs[6].Kind != KindDelimRight || sr.Recs[6].Key() != 100000 {
		t.Error("right delimiter malformed")
	}
	for i := 1; i <= 5; i++ {
		if sr.Recs[i].Kind != KindRecord {
			t.Errorf("entry %d kind = %v", i, sr.Recs[i].Kind)
		}
	}
}

func TestBuildValidates(t *testing.T) {
	h, sr := buildPaper(t, 10)
	if err := sr.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("fresh signed relation invalid: %v", err)
	}
}

func TestValidateDetectsTampering(t *testing.T) {
	k := signKey(t)
	cases := []struct {
		name   string
		mutate func(sr *SignedRelation)
	}{
		{"attribute swap", func(sr *SignedRelation) {
			// Swap the names of the first two records (the paper's
			// authenticity example).
			sr.Recs[1].Tuple.Attrs[1], sr.Recs[2].Tuple.Attrs[1] =
				sr.Recs[2].Tuple.Attrs[1], sr.Recs[1].Tuple.Attrs[1]
		}},
		{"record removal", func(sr *SignedRelation) {
			sr.Recs = append(sr.Recs[:2], sr.Recs[3:]...)
		}},
		{"signature swap", func(sr *SignedRelation) {
			sr.Recs[1].Sig, sr.Recs[2].Sig = sr.Recs[2].Sig, sr.Recs[1].Sig
		}},
		{"key tamper", func(sr *SignedRelation) {
			sr.Recs[1].Tuple.Key = 2001
		}},
		{"reorder", func(sr *SignedRelation) {
			sr.Recs[1], sr.Recs[2] = sr.Recs[2], sr.Recs[1]
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h, sr := buildPaper(t, 10)
			c.mutate(sr)
			if err := sr.Validate(h, k.Public()); err == nil {
				t.Fatal("tampered relation validated")
			}
		})
	}
}

func TestRangeIndices(t *testing.T) {
	_, sr := buildPaper(t, 10)
	cases := []struct {
		lo, hi uint64
		a, b   int
	}{
		{1, 9999, 1, 4},      // the Figure 1 query: Salary < 10000
		{2000, 25000, 1, 6},  // whole table
		{4000, 8000, 3, 3},   // empty range between 3500 and 8010
		{25001, 99999, 6, 6}, // beyond the last record
		{1, 1999, 1, 1},      // before the first record
	}
	for _, c := range cases {
		a, b := sr.RangeIndices(c.lo, c.hi)
		if a != c.a || b != c.b {
			t.Errorf("RangeIndices(%d,%d) = (%d,%d), want (%d,%d)", c.lo, c.hi, a, b, c.a, c.b)
		}
	}
}

// TestBoundaryRoundTrip is the heart of the scheme: for every record and
// every legal bound, the boundary proof must reconstruct exactly g(r).
func TestBoundaryRoundTrip(t *testing.T) {
	for _, base := range []uint64{2, 3, 10} {
		h, sr := buildPaper(t, base)
		p := sr.Params
		for idx, rec := range sr.Recs {
			// Up: prove key < bound for every bound > key.
			if rec.Kind != KindDelimRight {
				for _, bound := range []uint64{rec.Key() + 1, rec.Key() + 17, 99999} {
					if bound <= p.L || bound >= p.U {
						continue
					}
					proof, err := sr.ProveBoundary(h, idx, Up, bound)
					if err != nil {
						t.Fatalf("base %d idx %d bound %d up: %v", base, idx, bound, err)
					}
					g, err := VerifyBoundary(h, p, proof, Up, bound)
					if err != nil {
						t.Fatalf("base %d idx %d bound %d up verify: %v", base, idx, bound, err)
					}
					if !g.Equal(rec.G) {
						t.Fatalf("base %d idx %d bound %d up: reconstructed g mismatch", base, idx, bound)
					}
				}
			}
			// Down: prove key > bound for every bound < key.
			if rec.Kind != KindDelimLeft {
				for _, bound := range []uint64{rec.Key() - 1, 1} {
					if bound <= p.L || bound >= p.U {
						continue
					}
					proof, err := sr.ProveBoundary(h, idx, Down, bound)
					if err != nil {
						t.Fatalf("base %d idx %d bound %d down: %v", base, idx, bound, err)
					}
					g, err := VerifyBoundary(h, p, proof, Down, bound)
					if err != nil {
						t.Fatalf("base %d idx %d bound %d down verify: %v", base, idx, bound, err)
					}
					if !g.Equal(rec.G) {
						t.Fatalf("base %d idx %d bound %d down: reconstructed g mismatch", base, idx, bound)
					}
				}
			}
		}
	}
}

// TestBoundaryRefusesFalseClaim checks Section 3.2 Case 1: a proof that a
// key lies outside a bound it actually satisfies cannot be generated.
func TestBoundaryRefusesFalseClaim(t *testing.T) {
	h, sr := buildPaper(t, 10)
	// Record 3 has key 8010. Proving 8010 < 8010 or 8010 < 5000 must fail.
	for _, bound := range []uint64{8010, 5000} {
		if _, err := sr.ProveBoundary(h, 3, Up, bound); err == nil {
			t.Errorf("up proof for false bound %d generated", bound)
		}
	}
	// Proving 8010 > 8010 or 8010 > 9000 must fail.
	for _, bound := range []uint64{8010, 9000} {
		if _, err := sr.ProveBoundary(h, 3, Down, bound); err == nil {
			t.Errorf("down proof for false bound %d generated", bound)
		}
	}
	// Boundary exactly adjacent (key = bound-1 for Up) is legal.
	if _, err := sr.ProveBoundary(h, 3, Up, 8011); err != nil {
		t.Errorf("tight up proof rejected: %v", err)
	}
	if _, err := sr.ProveBoundary(h, 3, Down, 8009); err != nil {
		t.Errorf("tight down proof rejected: %v", err)
	}
}

// TestBoundaryProofDoesNotLeakKey: the proof for a hidden boundary must
// not contain the raw key encoding anywhere.
func TestBoundaryProofDoesNotLeakKey(t *testing.T) {
	h, sr := buildPaper(t, 10)
	proof, err := sr.ProveBoundary(h, 3, Up, 10000) // key 8010 hidden
	if err != nil {
		t.Fatal(err)
	}
	// All transmitted digests are Hasher.Size() wide — none is the 8-byte
	// key — and reconstructing requires only bound-derived exponents.
	for _, d := range proof.Chain.Intermediates {
		if len(d) != h.Size() {
			t.Fatal("intermediate digest has unexpected width")
		}
	}
}

func TestEntryGMatchesOwner(t *testing.T) {
	for _, base := range []uint64{2, 10} {
		h, sr := buildPaper(t, base)
		for i := 1; i <= sr.Len(); i++ {
			rec := sr.Recs[i]
			g, err := EntryG(h, sr.Params, rec.Key(), rec.Kind, sr.EntryInfo(i), rec.AttrRoot)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(rec.G) {
				t.Fatalf("base %d entry %d: EntryG mismatch", base, i)
			}
		}
		// Delimiters too.
		for _, i := range []int{0, len(sr.Recs) - 1} {
			rec := sr.Recs[i]
			g, err := EntryG(h, sr.Params, rec.Key(), rec.Kind, sr.EntryInfo(i), rec.AttrRoot)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(rec.G) {
				t.Fatalf("base %d delimiter %d: EntryG mismatch", base, i)
			}
		}
	}
}

func TestEntryGWrongKindRejected(t *testing.T) {
	h, sr := buildPaper(t, 10)
	rec := sr.Recs[1]
	// Claiming a data record is a delimiter must change g (the kind byte
	// is bound into the digest).
	g, err := EntryG(h, sr.Params, rec.Key(), KindDelimLeft, sr.EntryInfo(1), rec.AttrRoot)
	if err != nil {
		t.Fatal(err)
	}
	if g.Equal(rec.G) {
		t.Fatal("kind byte not bound into g")
	}
}

func TestSigChainVerifies(t *testing.T) {
	h, sr := buildPaper(t, 10)
	pub := signKey(t).Public()
	for i := range sr.Recs {
		var prev, next hashx.Digest
		if i > 0 {
			prev = sr.Recs[i-1].G
		}
		if i < len(sr.Recs)-1 {
			next = sr.Recs[i+1].G
		}
		d := SigDigestFor(h, sr.Params, prev, sr.Recs[i].G, next)
		if !pub.Verify(d, sr.Recs[i].Sig) {
			t.Fatalf("signature %d does not verify via SigDigestFor", i)
		}
	}
}

func TestInsertMaintainsInvariants(t *testing.T) {
	h, sr := buildPaper(t, 10)
	k := signKey(t)
	resigned, err := sr.Insert(h, k, relation.Tuple{Key: 9000, Attrs: []relation.Value{
		relation.IntVal(9), relation.StringVal("F"), relation.IntVal(1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resigned != 3 {
		t.Fatalf("insert re-signed %d entries, want 3", resigned)
	}
	if sr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", sr.Len())
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("relation invalid after insert: %v", err)
	}
}

func TestInsertDuplicateKeys(t *testing.T) {
	h, sr := buildPaper(t, 10)
	k := signKey(t)
	for i := 0; i < 3; i++ {
		if _, err := sr.Insert(h, k, relation.Tuple{Key: 8010, Attrs: []relation.Value{
			relation.IntVal(int64(100 + i)), relation.StringVal("dup"), relation.IntVal(1),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("relation invalid after duplicate inserts: %v", err)
	}
	// All four records with key 8010 must have distinct row ids and
	// distinct g digests (the MHT(r.A) disambiguation of Section 4.1).
	var gs []hashx.Digest
	for _, rec := range sr.Recs {
		if rec.Kind == KindRecord && rec.Key() == 8010 {
			gs = append(gs, rec.G)
		}
	}
	if len(gs) != 4 {
		t.Fatalf("found %d records with key 8010, want 4", len(gs))
	}
	for i := range gs {
		for j := i + 1; j < len(gs); j++ {
			if gs[i].Equal(gs[j]) {
				t.Fatal("duplicate-key records share a g digest")
			}
		}
	}
}

func TestDeleteMaintainsInvariants(t *testing.T) {
	h, sr := buildPaper(t, 10)
	k := signKey(t)
	resigned, err := sr.Delete(h, k, 8010, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resigned != 2 {
		t.Fatalf("delete re-signed %d entries, want 2", resigned)
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("relation invalid after delete: %v", err)
	}
	if _, err := sr.Delete(h, k, 8010, 0); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestUpdateAttrsMaintainsInvariants(t *testing.T) {
	h, sr := buildPaper(t, 10)
	k := signKey(t)
	resigned, err := sr.UpdateAttrs(h, k, 3500, 0, []relation.Value{
		relation.IntVal(2), relation.StringVal("C2"), relation.IntVal(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resigned != 3 {
		t.Fatalf("update re-signed %d entries, want 3", resigned)
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("relation invalid after update: %v", err)
	}
	if _, err := sr.UpdateAttrs(h, k, 4444, 0, sr.Recs[1].Tuple.Attrs); err == nil {
		t.Fatal("update of missing record succeeded")
	}
}

// TestMutationsAtEdgePositions exercises inserts, deletes and updates
// adjacent to the delimiters, where re-signing must include a delimiter
// and the virtual end digests come into play.
func TestMutationsAtEdgePositions(t *testing.T) {
	h, sr := buildPaper(t, 10)
	k := signKey(t)
	attrs := []relation.Value{relation.IntVal(9), relation.StringVal("X"), relation.IntVal(1)}

	// Insert below the current minimum (next to the left delimiter).
	if _, err := sr.Insert(h, k, relation.Tuple{Key: 100, Attrs: attrs}); err != nil {
		t.Fatal(err)
	}
	// Insert above the current maximum (next to the right delimiter).
	if _, err := sr.Insert(h, k, relation.Tuple{Key: 99000, Attrs: attrs}); err != nil {
		t.Fatal(err)
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("invalid after edge inserts: %v", err)
	}
	// Update the first and last data records.
	for _, idx := range []int{1, sr.Len()} {
		rec := sr.Recs[idx]
		if _, err := sr.UpdateAttrs(h, k, rec.Key(), rec.Tuple.RowID, attrs); err != nil {
			t.Fatal(err)
		}
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("invalid after edge updates: %v", err)
	}
	// Delete first and last data records.
	first, last := sr.Recs[1], sr.Recs[sr.Len()]
	if _, err := sr.Delete(h, k, first.Key(), first.Tuple.RowID); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Delete(h, k, last.Key(), last.Tuple.RowID); err != nil {
		t.Fatal(err)
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("invalid after edge deletes: %v", err)
	}
}

// TestDrainToEmptyAndRefill deletes every record and rebuilds — the
// delimiter pair must stay consistent throughout.
func TestDrainToEmptyAndRefill(t *testing.T) {
	h, sr := buildPaper(t, 10)
	k := signKey(t)
	for sr.Len() > 0 {
		rec := sr.Recs[1]
		if _, err := sr.Delete(h, k, rec.Key(), rec.Tuple.RowID); err != nil {
			t.Fatal(err)
		}
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("invalid when drained: %v", err)
	}
	attrs := []relation.Value{relation.IntVal(1), relation.StringVal("r"), relation.IntVal(1)}
	for _, key := range []uint64{500, 100, 900} {
		if _, err := sr.Insert(h, k, relation.Tuple{Key: key, Attrs: attrs}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sr.Validate(h, k.Public()); err != nil {
		t.Fatalf("invalid after refill: %v", err)
	}
	if sr.Len() != 3 {
		t.Fatalf("Len = %d", sr.Len())
	}
}

func TestEmptyRelation(t *testing.T) {
	h := hashx.New()
	rel, err := relation.New(paperSchema(), 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Build(h, signKey(t), mustParams(t, 0, 1000, 2), rel)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Len() != 0 || len(sr.Recs) != 2 {
		t.Fatalf("empty relation shape wrong: %d recs", len(sr.Recs))
	}
	if err := sr.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("empty signed relation invalid: %v", err)
	}
	// Both delimiter boundary proofs must work: they are how an empty
	// query result over an empty table is proven complete.
	pl, err := sr.ProveBoundary(h, 0, Up, 500)
	if err != nil {
		t.Fatal(err)
	}
	if g, err := VerifyBoundary(h, sr.Params, pl, Up, 500); err != nil || !g.Equal(sr.Recs[0].G) {
		t.Fatalf("left delimiter boundary failed: %v", err)
	}
	pr, err := sr.ProveBoundary(h, 1, Down, 500)
	if err != nil {
		t.Fatal(err)
	}
	if g, err := VerifyBoundary(h, sr.Params, pr, Down, 500); err != nil || !g.Equal(sr.Recs[1].G) {
		t.Fatalf("right delimiter boundary failed: %v", err)
	}
}

func mustParams(t testing.TB, l, u, b uint64) Params {
	t.Helper()
	p, err := NewParams(l, u, b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLinearMatchesOptimizedAcceptance cross-checks the conceptual scheme
// against the optimized one on a small domain: both must accept exactly
// the same (key, bound, direction) combinations.
func TestLinearMatchesOptimizedAcceptance(t *testing.T) {
	h := hashx.New()
	p := mustParams(t, 0, 64, 2)
	for key := uint64(1); key < 64; key++ {
		for bound := uint64(1); bound < 64; bound++ {
			_, linErr := LinearProve(h, p, key, Up, bound)
			var optErr error
			if key < p.U {
				side, err := buildChainSide(h, p, key, Up)
				if err != nil {
					t.Fatal(err)
				}
				dc := newDigitChains(h, p, key, Up)
				_, optErr = dc.proveChain(h, side, bound)
			}
			if (linErr == nil) != (optErr == nil) {
				t.Fatalf("key %d bound %d: linear err=%v optimized err=%v", key, bound, linErr, optErr)
			}
		}
	}
}

func TestLinearRoundTrip(t *testing.T) {
	h := hashx.New()
	p := mustParams(t, 0, 1000, 2)
	g, err := LinearG(h, p, 123, Up)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := LinearProve(h, p, 123, Up, 400)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LinearExtend(h, p, inter, Up, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Fatal("linear chain round trip failed")
	}
	// A bound the key does not satisfy must be unprovable.
	if _, err := LinearProve(h, p, 123, Up, 100); err == nil {
		t.Fatal("linear proof for false claim generated")
	}
}

// TestBoundaryRandomised fuzzes boundary proofs over random relations,
// bounds and bases.
func TestBoundaryRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	k := signKey(t)
	for trial := 0; trial < 6; trial++ {
		base := []uint64{2, 3, 5, 10}[rng.Intn(4)]
		span := uint64(1<<uint(10+rng.Intn(10))) + uint64(rng.Intn(1000))
		p := mustParams(t, 0, span, base)
		rel, err := relation.New(paperSchema(), 0, span)
		if err != nil {
			t.Fatal(err)
		}
		n := 10 + rng.Intn(30)
		for i := 0; i < n; i++ {
			key := uint64(rng.Int63n(int64(span-2))) + 1
			rel.Insert(relation.Tuple{Key: key, Attrs: []relation.Value{
				relation.IntVal(int64(i)), relation.StringVal("r"), relation.IntVal(int64(i % 3)),
			}})
		}
		h := hashx.New()
		sr, err := Build(h, k, p, rel)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 40; probe++ {
			idx := rng.Intn(len(sr.Recs))
			rec := sr.Recs[idx]
			dir := Direction(rng.Intn(2))
			if (rec.Kind == KindDelimLeft && dir == Down) || (rec.Kind == KindDelimRight && dir == Up) {
				continue
			}
			bound := uint64(rng.Int63n(int64(span-2))) + 1
			proof, err := sr.ProveBoundary(h, idx, dir, bound)
			outside := (dir == Up && rec.Key() < bound) || (dir == Down && rec.Key() > bound)
			if !outside {
				if err == nil {
					t.Fatalf("trial %d: proof generated for false claim (key %d, bound %d, %v)", trial, rec.Key(), bound, dir)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			g, err := VerifyBoundary(h, p, proof, dir, bound)
			if err != nil {
				t.Fatalf("trial %d verify: %v", trial, err)
			}
			if !g.Equal(rec.G) {
				t.Fatalf("trial %d: g mismatch", trial)
			}
			// Verifying against a *different* bound must not reproduce g.
			other := bound + 1
			if other < span && ((dir == Up && rec.Key() < other) || (dir == Down && rec.Key() > other)) {
				if g2, err := VerifyBoundary(h, p, proof, dir, other); err == nil && g2.Equal(rec.G) {
					t.Fatalf("trial %d: proof for bound %d verified under bound %d", trial, bound, other)
				}
			}
		}
	}
}

// TestChainProofTamperRejected mutates every field of a valid chain proof
// and checks the reconstructed g no longer matches.
func TestChainProofTamperRejected(t *testing.T) {
	h, sr := buildPaper(t, 10)
	p := sr.Params
	proof, err := sr.ProveBoundary(h, 3, Up, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := sr.Recs[3].G
	mutations := []struct {
		name string
		fn   func(bp *BoundaryProof)
	}{
		{"flip intermediate", func(bp *BoundaryProof) { bp.Chain.Intermediates[0][0] ^= 1 }},
		{"flip other combined", func(bp *BoundaryProof) { bp.OtherCombined[0] ^= 1 }},
		{"flip attr root", func(bp *BoundaryProof) { bp.AttrRoot[0] ^= 1 }},
		{"claim delimiter", func(bp *BoundaryProof) { bp.Kind = KindDelimLeft }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			clone := proof
			clone.Chain.Intermediates = make([]hashx.Digest, len(proof.Chain.Intermediates))
			for i, d := range proof.Chain.Intermediates {
				clone.Chain.Intermediates[i] = d.Clone()
			}
			clone.OtherCombined = proof.OtherCombined.Clone()
			clone.AttrRoot = proof.AttrRoot.Clone()
			m.fn(&clone)
			g, err := VerifyBoundary(h, p, clone, Up, 10000)
			if err == nil && g.Equal(want) {
				t.Fatal("tampered proof reconstructed the correct g")
			}
		})
	}
}

func TestVerifyBoundaryShapeChecks(t *testing.T) {
	h, sr := buildPaper(t, 10)
	p := sr.Params
	proof, err := sr.ProveBoundary(h, 3, Up, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated intermediates.
	bad := proof
	bad.Chain.Intermediates = proof.Chain.Intermediates[:2]
	if _, err := VerifyBoundary(h, p, bad, Up, 10000); err == nil {
		t.Error("truncated intermediates accepted")
	}
	// Wrong direction for a delimiter kind.
	dl, err := sr.ProveBoundary(h, 0, Up, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBoundary(h, p, dl, Down, 10000); err == nil {
		t.Error("left delimiter accepted as upper bound")
	}
	// Out-of-domain bound.
	if _, err := VerifyBoundary(h, p, proof, Up, 0); err == nil {
		t.Error("bound at L accepted")
	}
}

func TestRecordClone(t *testing.T) {
	_, sr := buildPaper(t, 10)
	orig := sr.Recs[1]
	cl := orig.Clone()
	cl.G[0] ^= 0xff
	cl.Sig[0] ^= 0xff
	cl.Tuple.Attrs[1] = relation.StringVal("zzz")
	if orig.G[0] == cl.G[0] || orig.Sig[0] == cl.Sig[0] {
		t.Fatal("Clone aliased digests")
	}
	if orig.Tuple.Attrs[1].Str == "zzz" {
		t.Fatal("Clone aliased tuple")
	}
}
