package core

import (
	"fmt"

	"vcqr/internal/hashx"
)

// BoundaryProof proves that the entry adjacent to a query result lies
// strictly outside the query range, without revealing its key or
// attribute values (Figure 5 / Figure 8(a)). It carries everything the
// user needs to reconstruct g(boundary) for the signature-chain check:
//
//   - the chain proof in the direction that matters (Up for the left
//     boundary: key < alpha; Down for the right boundary: key > beta),
//   - the opaque combined digest of the *other* chain, and
//   - the opaque root of the attribute tree.
//
// Only digests cross the wire; the boundary record's key and attributes
// stay hidden — the precision property that lets the scheme coexist with
// access control (unlike the Devanbu baseline, which discloses boundary
// tuples).
type BoundaryProof struct {
	// Kind is the entry's class. Delimiter boundaries let the user verify
	// terminal conditions (Section 3.1's "Terminal" requirement).
	Kind Kind
	// Chain is the hidden-key chain proof in the relevant direction.
	Chain ChainProof
	// OtherCombined is the combined digest of the opposite chain; unused
	// (and ignored by the verifier) for delimiter kinds.
	OtherCombined hashx.Digest
	// AttrRoot is MHT(r.A) for the boundary record; ignored for
	// delimiters, whose attribute root is a public constant.
	AttrRoot hashx.Digest
}

// Size returns the digest count of the proof (traffic accounting).
func (bp BoundaryProof) Size() int {
	n := bp.Chain.Size()
	if bp.Kind == KindRecord {
		n += 2 // other-side combined digest + attribute root
	}
	return n
}

// ProveBoundary builds the boundary proof for entry idx of the signed
// relation in the given direction against a query bound. dir==Up proves
// Recs[idx].Key < bound (left boundary, bound = alpha); dir==Down proves
// Recs[idx].Key > bound (right boundary, bound = beta).
func (sr *SignedRelation) ProveBoundary(h *hashx.Hasher, idx int, dir Direction, bound uint64) (BoundaryProof, error) {
	if idx < 0 || idx >= len(sr.Recs) {
		return BoundaryProof{}, fmt.Errorf("core: boundary index %d out of range", idx)
	}
	rec := sr.Recs[idx]
	switch {
	case rec.Kind == KindDelimLeft && dir == Down,
		rec.Kind == KindDelimRight && dir == Up:
		return BoundaryProof{}, fmt.Errorf("core: delimiter %v has no %v chain", rec.Kind, dir)
	}
	side, err := buildChainSide(h, sr.Params, rec.Key(), dir)
	if err != nil {
		return BoundaryProof{}, err
	}
	dc := newDigitChains(h, sr.Params, rec.Key(), dir)
	chain, err := dc.proveChain(h, side, bound)
	if err != nil {
		return BoundaryProof{}, err
	}
	proof := BoundaryProof{Kind: rec.Kind, Chain: chain}
	if rec.Kind == KindRecord {
		if dir == Up {
			proof.OtherCombined = rec.DownCombined.Clone()
		} else {
			proof.OtherCombined = rec.UpCombined.Clone()
		}
		proof.AttrRoot = rec.AttrRoot
	}
	return proof, nil
}

// VerifyBoundary reconstructs g(boundary) implied by the proof and the
// query bound. The caller then folds the digest into the signature-chain
// check; a publisher that lied about the boundary key cannot produce chain
// intermediates that survive both this reconstruction and the signature.
func VerifyBoundary(h *hashx.Hasher, p Params, proof BoundaryProof, dir Direction, bound uint64) (hashx.Digest, error) {
	combined, err := verifyChain(h, p, proof.Chain, dir, bound)
	if err != nil {
		return nil, err
	}
	switch proof.Kind {
	case KindDelimLeft:
		if dir != Up {
			return nil, fmt.Errorf("%w: left delimiter cannot bound from above", ErrProofShape)
		}
		return recordG(h, KindDelimLeft, combined, markerNoChain(h), markerDelimAttr(h)), nil
	case KindDelimRight:
		if dir != Down {
			return nil, fmt.Errorf("%w: right delimiter cannot bound from below", ErrProofShape)
		}
		return recordG(h, KindDelimRight, markerNoChain(h), combined, markerDelimAttr(h)), nil
	case KindRecord:
		if len(proof.OtherCombined) != h.Size() || len(proof.AttrRoot) != h.Size() {
			return nil, fmt.Errorf("%w: missing boundary components", ErrProofShape)
		}
		var up, down hashx.Digest
		if dir == Up {
			up, down = combined, proof.OtherCombined
		} else {
			up, down = proof.OtherCombined, combined
		}
		return recordG(h, KindRecord, up, down, proof.AttrRoot), nil
	default:
		return nil, fmt.Errorf("%w: unknown boundary kind %d", ErrProofShape, proof.Kind)
	}
}

// EntryInfo returns the chain roots the publisher ships for result entry
// idx so the user can recompute g from the known key.
func (sr *SignedRelation) EntryInfo(idx int) EntryChainInfo {
	rec := sr.Recs[idx]
	return EntryChainInfo{UpRoot: rec.UpRoot.Clone(), DownRoot: rec.DownRoot.Clone()}
}
