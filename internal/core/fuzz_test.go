package core

import (
	"testing"

	"vcqr/internal/hashx"
	"vcqr/internal/mht"
)

// FuzzVerifyChain feeds arbitrary byte material into the chain-proof
// verifier: it must never panic and must never reconstruct the combined
// digest of a real record except from the genuine proof. (Run with
// `go test -fuzz=FuzzVerifyChain ./internal/core` for extended fuzzing;
// the seed corpus runs as part of the normal test suite.)
func FuzzVerifyChain(f *testing.F) {
	h := hashx.New()
	p, err := NewParams(0, 1<<16, 2)
	if err != nil {
		f.Fatal(err)
	}
	side, err := buildChainSide(h, p, 12345, Up)
	if err != nil {
		f.Fatal(err)
	}
	dc := newDigitChains(h, p, 12345, Up)
	genuine, err := dc.proveChain(h, side, 20000)
	if err != nil {
		f.Fatal(err)
	}
	// Seed corpus: genuine proof material and mutations of it.
	var blob []byte
	for _, d := range genuine.Intermediates {
		blob = append(blob, d...)
	}
	f.Add(blob, true, 0)
	f.Add(blob[:len(blob)/2], false, 3)
	f.Add([]byte{}, false, -1)
	f.Add(make([]byte, 1000), true, 99)

	want := side.Combined
	f.Fuzz(func(t *testing.T, material []byte, canonical bool, index int) {
		proof := ChainProof{Canonical: canonical, Index: index}
		// Slice the material into digest-width intermediates.
		sz := h.Size()
		for i := 0; i+sz <= len(material) && len(proof.Intermediates) < p.BP.Digits; i += sz {
			proof.Intermediates = append(proof.Intermediates, hashx.Digest(material[i:i+sz]))
		}
		if canonical {
			if len(material) >= sz {
				proof.RepRoot = hashx.Digest(material[:sz])
			}
		} else {
			if len(material) >= 2*sz {
				proof.CanonDigest = hashx.Digest(material[sz : 2*sz])
			}
			depth := repTreeDepth(p.BP.M())
			for i := 0; i < depth && (i+3)*sz <= len(material); i++ {
				proof.RepPath = append(proof.RepPath, mht.PathElem{
					Sibling: hashx.Digest(material[(i+2)*sz : (i+3)*sz]),
					Right:   index%2 == 0,
				})
			}
		}
		got, err := verifyChain(h, p, proof, Up, 20000)
		if err != nil {
			return // malformed proofs must error, not panic
		}
		if got.Equal(want) && len(material) < 100000 {
			// Reconstructing the genuine combined digest from fuzzed
			// material would be a forgery. The genuine proof itself is
			// not reproducible through this packing (indexes differ), so
			// any hit is a bug.
			t.Fatalf("fuzzed proof reconstructed the genuine combined digest")
		}
	})
}
