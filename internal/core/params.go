// Package core implements the completeness-verification scheme of Pang,
// Jain, Ramamritham and Tan, "Verifying Completeness of Relational Query
// Results in Data Publishing" (SIGMOD 2005).
//
// The owner signs each record of a relation sorted on key attribute K with
//
//	sig(r_i) = s(h(g(r_{i-1}) | g(r_i) | g(r_{i+1})))         (formula 1)
//
// where the record digest
//
//	g(r) = h^{U-r.K-1}(r.K) | h^{r.K-L-1}(r.K) | MHT(r.A)      (formula 3)
//
// contains two iterated-hash chains over the key and a Merkle tree over
// the non-key attributes. Releasing the intermediate chain digest
// h^{a-r.K-1}(r.K) proves r.K < a without revealing r.K: the user extends
// the chain by U-a steps and checks the result against the signature
// chain. Section 5.1's base-B digit decomposition (package basep) reduces
// the chain length from O(U-L) to O(B log_B(U-L)); this package implements
// both the conceptual linear scheme and the optimized one, the former for
// cross-checking and the ablation experiment.
package core

import (
	"errors"
	"fmt"

	"vcqr/internal/basep"
	"vcqr/internal/hashx"
)

// MaxSpan bounds the key domain span so that representation arithmetic in
// package basep cannot overflow uint64 even with non-canonical digits.
const MaxSpan = uint64(1) << 62

// DefaultBase is the default number base for the Section 5.1 optimization.
// The paper shows user computation is minimized at B in {2, 3} (Figure 10).
const DefaultBase = 2

var (
	// ErrSpan reports an unusable key domain.
	ErrSpan = errors.New("core: key domain must satisfy L+1 < U and U-L <= MaxSpan")
	// ErrKeyDomain reports a key outside the open interval (L, U).
	ErrKeyDomain = errors.New("core: key outside open domain (L, U)")
	// ErrBoundDomain reports a query bound outside (L, U).
	ErrBoundDomain = errors.New("core: query bound outside open domain (L, U)")
	// ErrNotOutside reports an attempt to prove a boundary condition that
	// is false — the cheating-publisher situation of Section 3.2, which by
	// construction has no proof.
	ErrNotOutside = errors.New("core: record key does not satisfy the boundary condition")
	// ErrProofShape reports a structurally malformed proof.
	ErrProofShape = errors.New("core: malformed proof")
)

// Params fixes the authenticated domain: the open key interval (L, U),
// the base-B digit parameters shared by the owner, publisher and user,
// and the publication version.
//
// Version addresses the freshness gap of the 2005 scheme: nothing in the
// paper stops a publisher from serving a stale (complete, authentic)
// snapshot. Here the version is folded into every formula-(1) signature
// digest, and users learn the current version over the same authenticated
// channel as the public key — so results from a superseded publication
// fail verification as soon as the user refreshes their parameters.
type Params struct {
	L, U    uint64
	BP      basep.Params
	Version uint64
}

// NewParams validates the domain and derives the digit budget
// m = ceil(log_B(U-L)) of Section 5.1.
func NewParams(l, u, base uint64) (Params, error) {
	if u <= l+1 || u-l > MaxSpan {
		return Params{}, ErrSpan
	}
	bp, err := basep.NewParams(base, u-l)
	if err != nil {
		return Params{}, err
	}
	return Params{L: l, U: u, BP: bp}, nil
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.U <= p.L+1 || p.U-p.L > MaxSpan {
		return ErrSpan
	}
	return p.BP.Validate()
}

// Direction selects which of the two iterated-hash chains of formula (3)
// is meant: the Up chain h^{U-K-1} proves K is *below* a bound (left
// boundary of a range), the Down chain h^{K-L-1} proves K is *above* a
// bound (right boundary).
type Direction int

// Chain directions.
const (
	Up   Direction = iota // delta_t = U - K - 1; proves K < bound
	Down                  // delta_t = K - L - 1; proves K > bound
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// deltaT returns the total chain length for a key in the given direction.
// Delimiter keys L (Up only) and U (Down only) are legal; interior keys
// are legal in both directions.
func (p Params) deltaT(key uint64, dir Direction) (uint64, error) {
	switch dir {
	case Up:
		if key >= p.U {
			return 0, fmt.Errorf("%w: key %d, up chain", ErrKeyDomain, key)
		}
		return p.U - key - 1, nil
	default:
		if key <= p.L {
			return 0, fmt.Errorf("%w: key %d, down chain", ErrKeyDomain, key)
		}
		return key - p.L - 1, nil
	}
}

// deltaC returns the user-side chain extension for a query bound: U-bound
// for the Up chain (bound = alpha) and bound-L for the Down chain
// (bound = beta). Bounds must lie in the open domain.
func (p Params) deltaC(bound uint64, dir Direction) (uint64, error) {
	if bound <= p.L || bound >= p.U {
		return 0, fmt.Errorf("%w: bound %d", ErrBoundDomain, bound)
	}
	if dir == Up {
		return p.U - bound, nil
	}
	return bound - p.L, nil
}

// preimage returns the canonical pre-image r|j for digit j of a key's
// chain in a direction. The direction bit keeps the two chains of formula
// (3) from sharing hash values even when their deltas coincide.
func preimage(key uint64, digit int, dir Direction) []byte {
	return hashx.U64Pair(key, uint64(digit)<<1|uint64(dir))
}
