package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// SignedRelation is the owner's authenticated form of a relation: the
// tuples sorted on K, bracketed by the two fictitious delimiter records
// (Section 3.1), each carrying its digest material and neighbour-chained
// signature. The owner distributes it to publishers; it contains no
// secrets.
type SignedRelation struct {
	Params Params
	Schema relation.Schema
	// Recs[0] is the left delimiter (key L), Recs[len-1] the right
	// delimiter (key U), and Recs[1..n] the data records in key order.
	Recs []SignedRecord

	// aggIdx is the optional per-epoch crypto index (see aggindex.go):
	// product trees over the entry signatures and their FDH values that
	// turn contiguous-range aggregation into an O(log n) operation.
	// Unexported so it never travels in gob snapshots — publishers
	// rebuild it at publish time. Owner-side mutators that edit Recs
	// without index bookkeeping detach it (correct-but-slow fallback).
	aggIdx *AggIndex
}

// ErrRelationMismatch reports a relation whose domain differs from Params.
var ErrRelationMismatch = errors.New("core: relation domain does not match params")

// Build signs a relation: it computes the chain structures and g(r) for
// every record, inserts the delimiters, and produces the neighbour-chained
// signatures of formula (1).
func Build(h *hashx.Hasher, key *sig.PrivateKey, p Params, rel *relation.Relation) (*SignedRelation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rel.L != p.L || rel.U != p.U {
		return nil, fmt.Errorf("%w: relation (%d,%d) vs params (%d,%d)", ErrRelationMismatch, rel.L, rel.U, p.L, p.U)
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	sr := &SignedRelation{Params: p, Schema: rel.Schema}
	sr.Recs = make([]SignedRecord, rel.Len()+2)
	left, err := makeDelim(h, p, KindDelimLeft)
	if err != nil {
		return nil, err
	}
	sr.Recs[0] = left
	right, err := makeDelim(h, p, KindDelimRight)
	if err != nil {
		return nil, err
	}
	sr.Recs[len(sr.Recs)-1] = right

	// Record digests are independent of each other; derive them in
	// parallel. Signing then needs the neighbours' g digests, so it runs
	// as a second parallel pass. The result is byte-identical to a
	// sequential build (everything is deterministic and indexed).
	if err := parallelRange(rel.Len(), func(i int) error {
		rec, err := makeRecord(h, p, rel.Tuples[i])
		if err != nil {
			return err
		}
		sr.Recs[i+1] = rec
		return nil
	}); err != nil {
		return nil, err
	}
	if err := parallelRange(len(sr.Recs), func(i int) error {
		sr.Recs[i].Sig = key.Sign(sr.sigDigest(h, i))
		return nil
	}); err != nil {
		return nil, err
	}
	return sr, nil
}

// parallelRange runs fn(0..n-1) across a bounded worker pool, returning
// the first error. Small inputs run inline.
func parallelRange(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		fail error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if fail != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return fail
}

// makeRecord derives the digest material for a data tuple.
func makeRecord(h *hashx.Hasher, p Params, t relation.Tuple) (SignedRecord, error) {
	if t.Key <= p.L || t.Key >= p.U {
		return SignedRecord{}, fmt.Errorf("%w: key %d", ErrKeyDomain, t.Key)
	}
	up, err := buildChainSide(h, p, t.Key, Up)
	if err != nil {
		return SignedRecord{}, err
	}
	down, err := buildChainSide(h, p, t.Key, Down)
	if err != nil {
		return SignedRecord{}, err
	}
	attrRoot := AttrRoot(h, t)
	return SignedRecord{
		Kind:         KindRecord,
		Tuple:        t.Clone(),
		UpRoot:       up.RepRoot(),
		DownRoot:     down.RepRoot(),
		UpCombined:   up.Combined,
		DownCombined: down.Combined,
		AttrRoot:     attrRoot,
		G:            recordG(h, KindRecord, up.Combined, down.Combined, attrRoot),
	}, nil
}

// makeDelim derives the digest material for a delimiter. The left
// delimiter sits at key L and has only an Up chain; the right delimiter
// sits at key U and has only a Down chain.
func makeDelim(h *hashx.Hasher, p Params, kind Kind) (SignedRecord, error) {
	var (
		key      uint64
		up, down hashx.Digest
		upRoot   hashx.Digest
		downRoot hashx.Digest
	)
	switch kind {
	case KindDelimLeft:
		key = p.L
		side, err := buildChainSide(h, p, key, Up)
		if err != nil {
			return SignedRecord{}, err
		}
		up, upRoot = side.Combined, side.RepRoot()
		down = markerNoChain(h)
	case KindDelimRight:
		key = p.U
		side, err := buildChainSide(h, p, key, Down)
		if err != nil {
			return SignedRecord{}, err
		}
		down, downRoot = side.Combined, side.RepRoot()
		up = markerNoChain(h)
	default:
		return SignedRecord{}, fmt.Errorf("core: makeDelim on kind %v", kind)
	}
	attrRoot := markerDelimAttr(h)
	return SignedRecord{
		Kind:         kind,
		Tuple:        relation.Tuple{Key: key},
		UpRoot:       upRoot,
		DownRoot:     downRoot,
		UpCombined:   up,
		DownCombined: down,
		AttrRoot:     attrRoot,
		G:            recordG(h, kind, up, down, attrRoot),
	}, nil
}

// sigDigest computes the formula (1) pre-signature digest for entry i,
// with the paper's h(L) / h(U) virtual neighbours at the two ends and the
// publication version bound in (see Params.Version).
func (sr *SignedRelation) sigDigest(h *hashx.Hasher, i int) hashx.Digest {
	var prev, next hashx.Digest
	if i == 0 {
		prev = virtualEndDigest(h, sr.Params.L)
	} else {
		prev = sr.Recs[i-1].G
	}
	if i == len(sr.Recs)-1 {
		next = virtualEndDigest(h, sr.Params.U)
	} else {
		next = sr.Recs[i+1].G
	}
	return h.SigDigest(versionedG(h, sr.Params, prev), sr.Recs[i].G, versionedG(h, sr.Params, next))
}

// versionedG binds the publication version to a neighbour digest before
// signing. Folding the version into the neighbour slots (rather than a
// fourth SigDigest input) keeps the signed payload at the paper's three
// components while making every signature version-specific.
func versionedG(h *hashx.Hasher, p Params, g hashx.Digest) hashx.Digest {
	if p.Version == 0 {
		return g // version 0: the paper's original, unversioned form
	}
	return h.Hash(hashx.U64(p.Version), g)
}

// SigDigestFor is the user-side counterpart of sigDigest: the digest a
// signature must verify against given the three reconstructed g values.
// Callers pass nil for prev/next at the virtual ends. The expected
// version comes from Params, which the user obtained over the
// authenticated channel — a stale publication fails here.
func SigDigestFor(h *hashx.Hasher, p Params, prev, cur, next hashx.Digest) hashx.Digest {
	if prev == nil {
		prev = virtualEndDigest(h, p.L)
	}
	if next == nil {
		next = virtualEndDigest(h, p.U)
	}
	return h.SigDigest(versionedG(h, p, prev), cur, versionedG(h, p, next))
}

// Len returns the number of data records (excluding delimiters).
func (sr *SignedRelation) Len() int { return len(sr.Recs) - 2 }

// RangeIndices returns the half-open interval [a, b) over sr.Recs of data
// records with keys in [lo, hi]. Delimiters never qualify because data
// keys are strictly inside (L, U).
func (sr *SignedRelation) RangeIndices(lo, hi uint64) (int, int) {
	a := 1
	for a < len(sr.Recs)-1 && sr.Recs[a].Key() < lo {
		a++
	}
	b := a
	for b < len(sr.Recs)-1 && sr.Recs[b].Key() <= hi {
		b++
	}
	return a, b
}

// Validate rebuilds every digest and checks every signature; used by
// publishers on receipt of a snapshot and by tests.
func (sr *SignedRelation) Validate(h *hashx.Hasher, pub *sig.PublicKey) error {
	if len(sr.Recs) < 2 {
		return errors.New("core: signed relation missing delimiters")
	}
	if sr.Recs[0].Kind != KindDelimLeft || sr.Recs[len(sr.Recs)-1].Kind != KindDelimRight {
		return errors.New("core: delimiters missing or mislabelled")
	}
	for i, rec := range sr.Recs {
		if i > 0 && i < len(sr.Recs)-1 {
			if rec.Kind != KindRecord {
				return fmt.Errorf("core: interior entry %d has kind %v", i, rec.Kind)
			}
			prev := sr.Recs[i-1]
			if prev.Kind == KindRecord {
				if prev.Key() > rec.Key() || (prev.Key() == rec.Key() && prev.Tuple.RowID >= rec.Tuple.RowID) {
					return fmt.Errorf("core: entries %d,%d out of order", i-1, i)
				}
			}
			want, err := makeRecord(h, sr.Params, rec.Tuple)
			if err != nil {
				return err
			}
			if !want.G.Equal(rec.G) {
				return fmt.Errorf("core: entry %d digest mismatch", i)
			}
		}
		if !pub.Verify(sr.sigDigest(h, i), rec.Sig) {
			return fmt.Errorf("core: entry %d signature invalid", i)
		}
	}
	return nil
}

// Clone returns a deep copy of the signed relation (used by publishers to
// keep a pre-delta snapshot and by tests). The crypto index is carried
// over by reference — it is persistent (immutable nodes), so the clone
// and the original can diverge via index updates without affecting each
// other; callers that mutate Recs directly must RefreshAggIndex (or
// detach) before serving aggregates.
func (sr *SignedRelation) Clone() *SignedRelation {
	out := &SignedRelation{Params: sr.Params, Schema: sr.Schema, aggIdx: sr.aggIdx}
	out.Recs = make([]SignedRecord, len(sr.Recs))
	for i, r := range sr.Recs {
		out.Recs[i] = r.Clone()
	}
	return out
}

// VerifyEntrySig checks the formula-(1) signature of entry i against the
// stored g digests of its neighbours. This is the cheap local check a
// publisher runs on records touched by an incremental update. When a
// crypto index is attached its per-record FDH cache answers without
// re-deriving the full-domain hash (the cached leaf is tag-checked
// against the recomputed signed digest, so staleness degrades to the
// slow path, never to a wrong verdict).
func (sr *SignedRelation) VerifyEntrySig(h *hashx.Hasher, pub *sig.PublicKey, i int) bool {
	if i < 0 || i >= len(sr.Recs) {
		return false
	}
	if ix := sr.aggIdx; ix != nil && ix.pub == pub && ix.Len() == len(sr.Recs) {
		return ix.VerifyEntry(h, sr, i)
	}
	return pub.Verify(sr.sigDigest(h, i), sr.Recs[i].Sig)
}

// CheckEntryDigests recomputes entry i's digest material from its tuple
// and compares against the stored values — the expensive half of
// publisher-side validation, catching an owner feed whose G digests do
// not match the tuples they claim to cover.
func (sr *SignedRelation) CheckEntryDigests(h *hashx.Hasher, i int) error {
	if i < 0 || i >= len(sr.Recs) {
		return fmt.Errorf("core: entry %d out of range", i)
	}
	rec := sr.Recs[i]
	var want SignedRecord
	var err error
	if rec.Kind == KindRecord {
		want, err = makeRecord(h, sr.Params, rec.Tuple)
	} else {
		want, err = makeDelim(h, sr.Params, rec.Kind)
	}
	if err != nil {
		return err
	}
	if !want.G.Equal(rec.G) || !want.UpRoot.Equal(rec.UpRoot) || !want.DownRoot.Equal(rec.DownRoot) {
		return fmt.Errorf("core: entry %d digest material inconsistent with its tuple", i)
	}
	return nil
}

// Insert adds a tuple to the signed relation, maintaining sort order and
// replica numbering, and re-signs the minimal set of entries: the new
// record and its two neighbours. It returns the number of signatures
// recomputed (always 3) — the Section 6.3 update-cost story.
func (sr *SignedRelation) Insert(h *hashx.Hasher, key *sig.PrivateKey, t relation.Tuple) (resigned int, err error) {
	sr.aggIdx = nil // owner-side edit: no index bookkeeping here
	if len(t.Attrs) != len(sr.Schema.Cols) {
		return 0, relation.ErrArity
	}
	if t.Key <= sr.Params.L || t.Key >= sr.Params.U {
		return 0, fmt.Errorf("%w: key %d", ErrKeyDomain, t.Key)
	}
	// Assign a replica number unique among equal keys.
	var replica uint64
	pos := 1
	for ; pos < len(sr.Recs)-1; pos++ {
		rec := sr.Recs[pos]
		if rec.Key() > t.Key {
			break
		}
		if rec.Key() == t.Key && rec.Tuple.RowID >= replica {
			replica = rec.Tuple.RowID + 1
		}
	}
	t.RowID = replica
	rec, err := makeRecord(h, sr.Params, t)
	if err != nil {
		return 0, err
	}
	sr.Recs = append(sr.Recs, SignedRecord{})
	copy(sr.Recs[pos+1:], sr.Recs[pos:])
	sr.Recs[pos] = rec
	return sr.resignAround(h, key, pos), nil
}

// Delete removes the record with (key, rowID) and re-signs its two former
// neighbours. It reports the number of signatures recomputed (2), or an
// error if the record does not exist.
func (sr *SignedRelation) Delete(h *hashx.Hasher, key *sig.PrivateKey, k, rowID uint64) (resigned int, err error) {
	sr.aggIdx = nil // owner-side edit: no index bookkeeping here
	pos := -1
	for i := 1; i < len(sr.Recs)-1; i++ {
		if sr.Recs[i].Key() == k && sr.Recs[i].Tuple.RowID == rowID {
			pos = i
			break
		}
	}
	if pos < 0 {
		return 0, fmt.Errorf("core: delete: record (%d,%d) not found", k, rowID)
	}
	sr.Recs = append(sr.Recs[:pos], sr.Recs[pos+1:]...)
	n := 0
	for _, i := range []int{pos - 1, pos} {
		if i >= 0 && i < len(sr.Recs) {
			sr.Recs[i].Sig = key.Sign(sr.sigDigest(h, i))
			n++
		}
	}
	return n, nil
}

// UpdateAttrs replaces the non-key attributes of the record with
// (key, rowID) and re-signs the record and its two neighbours (3
// signatures: the doubly-linked-list locality argument of Section 6.3).
func (sr *SignedRelation) UpdateAttrs(h *hashx.Hasher, key *sig.PrivateKey, k, rowID uint64, attrs []relation.Value) (resigned int, err error) {
	sr.aggIdx = nil // owner-side edit: no index bookkeeping here
	if len(attrs) != len(sr.Schema.Cols) {
		return 0, relation.ErrArity
	}
	for i := 1; i < len(sr.Recs)-1; i++ {
		if sr.Recs[i].Key() == k && sr.Recs[i].Tuple.RowID == rowID {
			t := sr.Recs[i].Tuple.Clone()
			t.Attrs = attrs
			rec, err := makeRecord(h, sr.Params, t)
			if err != nil {
				return 0, err
			}
			sr.Recs[i] = rec
			return sr.resignAround(h, key, i), nil
		}
	}
	return 0, fmt.Errorf("core: update: record (%d,%d) not found", k, rowID)
}

// resignAround recomputes the signatures of entry pos and its immediate
// neighbours; a change to g(r_i) invalidates exactly sig(r_{i-1}),
// sig(r_i), sig(r_{i+1}) by formula (1).
func (sr *SignedRelation) resignAround(h *hashx.Hasher, key *sig.PrivateKey, pos int) int {
	n := 0
	for _, i := range []int{pos - 1, pos, pos + 1} {
		if i >= 0 && i < len(sr.Recs) {
			sr.Recs[i].Sig = key.Sign(sr.sigDigest(h, i))
			n++
		}
	}
	return n
}
