package core

import (
	"fmt"

	"vcqr/internal/hashx"
	"vcqr/internal/mht"
	"vcqr/internal/relation"
)

// Kind tags the three classes of entries in a signed relation. Delimiters
// are "certified as such by the owner" (Section 3.1): the kind byte enters
// g(r), so a publisher cannot pass a real record off as a delimiter or
// vice versa.
type Kind byte

// Entry kinds.
const (
	KindRecord     Kind = 1
	KindDelimLeft  Kind = 2
	KindDelimRight Kind = 3
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRecord:
		return "record"
	case KindDelimLeft:
		return "delim-left"
	case KindDelimRight:
		return "delim-right"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Marker digests for chain directions that do not exist on delimiters
// (the left delimiter has no down chain, the right no up chain) and for
// delimiter attribute trees. They are public constants of the scheme.
func markerNoChain(h *hashx.Hasher) hashx.Digest { return h.Hash([]byte("core/no-chain")) }
func markerDelimAttr(h *hashx.Hasher) hashx.Digest {
	return h.Hash([]byte("core/delim-attr"))
}

// virtualEndDigest is the digest standing in for the non-existent
// neighbour beyond a delimiter: the paper's h(L) and h(U) in
// sig(r_0) = s(h(h(L) | g(r_0) | g(r_1))).
func virtualEndDigest(h *hashx.Hasher, bound uint64) hashx.Digest {
	return h.Hash([]byte("core/end"), hashx.U64(bound))
}

// AttrLeaves returns the leaf digests of the per-record attribute tree
// MHT(r.A): leaf 0 is the row identifier (the replica number that
// disambiguates duplicates), leaves 1..R are the encoded attribute values.
func AttrLeaves(h *hashx.Hasher, t relation.Tuple) []hashx.Digest {
	leaves := make([]hashx.Digest, len(t.Attrs)+1)
	leaves[0] = h.Leaf(hashx.U64(t.RowID))
	for i, a := range t.Attrs {
		leaves[i+1] = h.Leaf(a.Encode())
	}
	return leaves
}

// AttrTree builds the per-record attribute tree.
func AttrTree(h *hashx.Hasher, t relation.Tuple) *mht.Tree {
	return mht.BuildFromDigests(h, AttrLeaves(h, t))
}

// AttrRoot returns the root of the per-record attribute tree, the
// MHT(r.A) component of formula (3).
func AttrRoot(h *hashx.Hasher, t relation.Tuple) hashx.Digest {
	return AttrTree(h, t).Root()
}

// recordG computes g(r) from its components: the kind tag, the two
// per-direction combined chain digests, and the attribute-tree root.
// This is formula (3) with the concatenation hashed to a fixed width.
func recordG(h *hashx.Hasher, kind Kind, up, down, attrRoot hashx.Digest) hashx.Digest {
	return h.GDigest([]byte{byte(kind)}, up, down, attrRoot)
}

// SignedRecord is one entry of a signed relation as stored by the owner
// and shipped to the publisher: the tuple plus the digest material needed
// to build verification objects without re-deriving chains for every
// result entry.
type SignedRecord struct {
	Kind  Kind
	Tuple relation.Tuple

	// UpRoot and DownRoot are the roots of the non-canonical-
	// representation trees of the two chains; shipped per result entry.
	UpRoot, DownRoot hashx.Digest
	// UpCombined and DownCombined are the folded per-direction chain
	// digests h(h(delta_t) | rep-tree root). They are shipped opaquely
	// for Section 4.4 Case 2 entries, whose keys stay hidden.
	UpCombined, DownCombined hashx.Digest
	// AttrRoot is the root of MHT(r.A).
	AttrRoot hashx.Digest
	// G is the record digest g(r).
	G hashx.Digest
	// Sig is sig(r) per formula (1).
	Sig []byte
}

// Clone returns a deep copy of the record.
func (r SignedRecord) Clone() SignedRecord {
	out := r
	out.Tuple = r.Tuple.Clone()
	out.UpRoot = r.UpRoot.Clone()
	out.DownRoot = r.DownRoot.Clone()
	out.UpCombined = r.UpCombined.Clone()
	out.DownCombined = r.DownCombined.Clone()
	out.AttrRoot = r.AttrRoot.Clone()
	out.G = r.G.Clone()
	out.Sig = append([]byte(nil), r.Sig...)
	return out
}

// Key returns the record's sort-key value.
func (r SignedRecord) Key() uint64 { return r.Tuple.Key }

// EntryChainInfo is the per-result-entry digest material the publisher
// ships so the user can recompute g(r) from the known key: the two
// representation-tree roots (the third per-entry digest of formula (4),
// MHT(r.A) or the row-id leaf, travels with the attribute disclosure).
type EntryChainInfo struct {
	UpRoot, DownRoot hashx.Digest
}

// GFromComponents recomputes g(r) from opaque combined chain digests and
// an attribute root. This is the Section 4.4 Case 2 path: the record's key
// stays hidden, so the user cannot derive the chain digests and receives
// them as-is; the signature chain still binds them.
func GFromComponents(h *hashx.Hasher, kind Kind, upCombined, downCombined, attrRoot hashx.Digest) hashx.Digest {
	return recordG(h, kind, upCombined, downCombined, attrRoot)
}

// ErrDisclosure reports an inconsistent attribute disclosure.
var errDisclosure = fmt.Errorf("core: inconsistent attribute disclosure")

// AttrRootFromDisclosure rebuilds the root of MHT(r.A) from a partial
// disclosure: disclosed maps leaf index -> encoded leaf pre-image (leaf 0
// is the row id, leaf i+1 is attribute i), hidden supplies digests for
// every other leaf. This implements the projection mechanism of Section
// 4.2: projected-out attributes travel as digests, never as values.
func AttrRootFromDisclosure(h *hashx.Hasher, nLeaves int, disclosed map[int][]byte, hidden map[int]hashx.Digest) (hashx.Digest, error) {
	if len(disclosed)+len(hidden) != nLeaves {
		return nil, fmt.Errorf("%w: %d disclosed + %d hidden != %d leaves", errDisclosure, len(disclosed), len(hidden), nLeaves)
	}
	leaves := make([]hashx.Digest, nLeaves)
	for i := 0; i < nLeaves; i++ {
		if enc, ok := disclosed[i]; ok {
			if _, dup := hidden[i]; dup {
				return nil, fmt.Errorf("%w: leaf %d both disclosed and hidden", errDisclosure, i)
			}
			leaves[i] = h.Leaf(enc)
			continue
		}
		d, ok := hidden[i]
		if !ok || len(d) != h.Size() {
			return nil, fmt.Errorf("%w: leaf %d missing or malformed", errDisclosure, i)
		}
		leaves[i] = d
	}
	return mht.BuildFromDigests(h, leaves).Root(), nil
}

// EntryG recomputes g(r) for a record whose key and kind the user knows,
// given the representation-tree roots from the VO and the attribute root
// reconstructed from the (possibly partially disclosed) attributes.
// This is the Figure 8(b) procedure.
func EntryG(h *hashx.Hasher, p Params, key uint64, kind Kind, info EntryChainInfo, attrRoot hashx.Digest) (hashx.Digest, error) {
	var up, down hashx.Digest
	var err error
	switch kind {
	case KindDelimLeft:
		up, err = entryCombined(h, p, key, Up, info.UpRoot)
		down = markerNoChain(h)
	case KindDelimRight:
		up = markerNoChain(h)
		down, err = entryCombined(h, p, key, Down, info.DownRoot)
	default:
		up, err = entryCombined(h, p, key, Up, info.UpRoot)
		if err == nil {
			down, err = entryCombined(h, p, key, Down, info.DownRoot)
		}
	}
	if err != nil {
		return nil, err
	}
	return recordG(h, kind, up, down, attrRoot), nil
}
