package core

import (
	"fmt"

	"vcqr/internal/hashx"
)

// This file implements the *conceptual* scheme of Section 3.1 — formula
// (2), g(r) = h^{U-r-1}(r) with a single hash chain linear in the domain
// span — without the Section 5.1 base-B optimization. The paper notes it
// is prohibitively slow for realistic domains (2^32 hashes per digest for
// a four-byte key, "almost 60 hours"); it is retained here because:
//
//   - it cross-checks the optimized scheme in tests (both must accept and
//     reject the same boundary claims on small domains), and
//   - the E7 ablation benchmark measures exactly how much Section 5.1
//     buys at increasing domain sizes.

// LinearG computes the conceptual digest g(key) = h^{delta_t}(key) in the
// given direction: delta_t = U-key-1 (Up) or key-L-1 (Down).
func LinearG(h *hashx.Hasher, p Params, key uint64, dir Direction) (hashx.Digest, error) {
	dt, err := p.deltaT(key, dir)
	if err != nil {
		return nil, err
	}
	return h.Iterate(linearPreimage(key, dir), dt), nil
}

// LinearProve computes the intermediate digest the publisher releases to
// show key lies outside bound: h^{delta_e}(key) with
// delta_e = bound-key-1 (Up, proves key < bound) or key-bound-1 (Down,
// proves key > bound). When the condition is false the required exponent
// is negative — undefined — and ErrNotOutside is returned; this is the
// whole security argument of Section 3.2, Case 1.
func LinearProve(h *hashx.Hasher, p Params, key uint64, dir Direction, bound uint64) (hashx.Digest, error) {
	dt, err := p.deltaT(key, dir)
	if err != nil {
		return nil, err
	}
	dc, err := p.deltaC(bound, dir)
	if err != nil {
		return nil, err
	}
	if dt < dc {
		return nil, fmt.Errorf("%w: key %d vs bound %d (%s)", ErrNotOutside, key, bound, dir)
	}
	return h.Iterate(linearPreimage(key, dir), dt-dc), nil
}

// LinearExtend performs the user's side: extend the publisher's
// intermediate digest by delta_c = U-bound (Up) or bound-L (Down) steps,
// yielding the candidate g digest to compare against the signed value.
func LinearExtend(h *hashx.Hasher, p Params, intermediate hashx.Digest, dir Direction, bound uint64) (hashx.Digest, error) {
	dc, err := p.deltaC(bound, dir)
	if err != nil {
		return nil, err
	}
	return h.IterateFrom(intermediate, dc), nil
}

// linearPreimage domain-separates the conceptual chains from the base-B
// digit chains and from each other by direction.
func linearPreimage(key uint64, dir Direction) []byte {
	return hashx.U64Pair(key, uint64(dir)|0x8000000000000000)
}
