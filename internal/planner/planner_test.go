package planner_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/multiorder"
	"vcqr/internal/partition"
	"vcqr/internal/planner"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

// fixture: 120 employees, primary order on Salary, secondary on Dept
// (Dept = 1 is rare: high selectivity for the secondary ordering).
type pfix struct {
	h    *hashx.Hasher
	tab  *multiorder.Table
	pub  *engine.Publisher
	role accessctl.Role
}

func newPFix(t testing.TB) *pfix {
	t.Helper()
	h := hashx.New()
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 120, L: 0, U: 1 << 24, PhotoSize: 4, Depts: 12, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := multiorder.Build(h, signKey(t), rel, 2, []multiorder.OrderSpec{
		{Col: "Dept", L: 0, U: 64, Base: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	pub := engine.NewPublisher(h, signKey(t).Public(), accessctl.NewPolicy(role))
	for _, sr := range tab.All() {
		if err := pub.AddRelation(sr, false); err != nil {
			t.Fatal(err)
		}
	}
	return &pfix{h: h, tab: tab, pub: pub, role: role}
}

func TestPlannerPrefersSelectiveOrdering(t *testing.T) {
	f := newPFix(t)
	// Whole salary range + Dept = 1: the Dept ordering covers ~10
	// records, the primary covers all 120.
	q := engine.Query{
		Relation: "Emp",
		Filters:  []engine.Filter{{Col: "Dept", Op: engine.OpEq, Val: relation.IntVal(1)}},
	}
	plan, err := planner.Choose(f.tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ordering != "Dept" {
		t.Fatalf("plan chose %q (%s), want Dept", plan.Ordering, plan.Explain)
	}
	if plan.Cover >= 120 {
		t.Fatalf("secondary cover %d should be far below 120", plan.Cover)
	}
}

func TestPlannerPrefersPrimaryForTightRange(t *testing.T) {
	f := newPFix(t)
	// A tiny salary range with a non-selective Dept filter: primary wins.
	lo := f.tab.Primary.Recs[1].Key()
	q := engine.Query{
		Relation: "Emp", KeyLo: lo, KeyHi: lo + 10,
		Filters: []engine.Filter{{Col: "Dept", Op: engine.OpGe, Val: relation.IntVal(1)}},
	}
	plan, err := planner.Choose(f.tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ordering != "Salary" {
		t.Fatalf("plan chose %q (%s), want Salary", plan.Ordering, plan.Explain)
	}
}

// TestBothPlansAgree executes the same logical query under both orderings
// and checks the *verified* result sets coincide — the planner never
// changes answers, only costs.
func TestBothPlansAgree(t *testing.T) {
	f := newPFix(t)
	logical := engine.Query{
		Relation: "Emp", KeyLo: 1, KeyHi: 1 << 23, // lower half of salaries
		Filters: []engine.Filter{{Col: "Dept", Op: engine.OpEq, Val: relation.IntVal(2)}},
	}

	// Plan A: primary ordering, as stated.
	resA, err := f.pub.Execute("all", logical)
	if err != nil {
		t.Fatal(err)
	}
	vPrimary := verify.New(f.h, signKey(t).Public(), f.tab.Primary.Params, f.tab.Primary.Schema)
	rowsA, err := vPrimary.VerifyResult(logical, f.role, resA)
	if err != nil {
		t.Fatal(err)
	}

	// Plan B: whatever the planner picks (the Dept ordering here).
	plan, err := planner.Choose(f.tab, logical)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ordering != "Dept" {
		t.Fatalf("expected the Dept ordering, got %s", plan.Explain)
	}
	resB, err := f.pub.Execute("all", plan.Query)
	if err != nil {
		t.Fatal(err)
	}
	deptSR, err := f.tab.For("Dept")
	if err != nil {
		t.Fatal(err)
	}
	vDept := verify.New(f.h, signKey(t).Public(), deptSR.Params, deptSR.Schema)
	rowsB, err := vDept.VerifyResult(plan.Query, f.role, resB)
	if err != nil {
		t.Fatal(err)
	}

	// Compare the sets of primary keys.
	keysA := make([]uint64, 0, len(rowsA))
	for _, r := range rowsA {
		keysA = append(keysA, r.Key)
	}
	pkIdx := deptSR.Schema.ColIndex(multiorder.PrimaryKeyCol)
	keysB := make([]uint64, 0, len(rowsB))
	for _, r := range rowsB {
		for _, d := range r.Values {
			if d.Col == pkIdx {
				keysB = append(keysB, uint64(d.Val.Int))
			}
		}
	}
	sort.Slice(keysA, func(i, j int) bool { return keysA[i] < keysA[j] })
	sort.Slice(keysB, func(i, j int) bool { return keysB[i] < keysB[j] })
	if len(keysA) == 0 {
		t.Fatal("degenerate test: no matching rows")
	}
	if len(keysA) != len(keysB) {
		t.Fatalf("plans disagree: %d vs %d rows", len(keysA), len(keysB))
	}
	for i := range keysA {
		if keysA[i] != keysB[i] {
			t.Fatalf("plans disagree at %d: %d vs %d", i, keysA[i], keysB[i])
		}
	}
}

func TestPlannerValidation(t *testing.T) {
	f := newPFix(t)
	if _, err := planner.Choose(f.tab, engine.Query{Relation: "Wrong"}); err == nil {
		t.Fatal("wrong relation accepted")
	}
	// No filters: primary ordering is the only candidate and wins.
	plan, err := planner.Choose(f.tab, engine.Query{Relation: "Emp"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ordering != "Salary" {
		t.Fatalf("filterless query should use the primary ordering, got %s", plan.Ordering)
	}
	// Ne filters cannot become ranges; the primary still answers.
	plan, err = planner.Choose(f.tab, engine.Query{
		Relation: "Emp",
		Filters:  []engine.Filter{{Col: "Dept", Op: engine.OpNe, Val: relation.IntVal(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ordering != "Salary" {
		t.Fatalf("Ne filter should stay on primary, got %s", plan.Ordering)
	}
}

func TestPlanShards(t *testing.T) {
	h := hashx.New()
	rel, err := workload.Uniform(workload.UniformConfig{N: 40, L: 0, U: 1 << 20, PayloadSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	set, err := partition.Split(sr, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Full range: fan-out over all 4 shards covering every record.
	plan, err := planner.PlanShardQuery(set.Spec, set.Slices, engine.Query{Relation: sr.Schema.Name})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Legs) != 4 || plan.Cover != 40 {
		t.Fatalf("full-range plan: %+v", plan)
	}
	if !strings.Contains(plan.Explain, "fan-out over 4") {
		t.Fatalf("explain: %q", plan.Explain)
	}

	// A range inside shard 2: single-shard route with an exact cover.
	sl := set.Slices[2]
	lo, hi := sl.Recs[1].Key(), sl.Recs[len(sl.Recs)-2].Key()
	plan, err = planner.PlanShardQuery(set.Spec, set.Slices, engine.Query{Relation: sr.Schema.Name, KeyLo: lo, KeyHi: hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Legs) != 1 || plan.Legs[0].Sub.Shard != 2 || plan.Cover != sl.Len() {
		t.Fatalf("single-shard plan: %+v", plan)
	}
	if !strings.Contains(plan.Explain, "single-shard route") {
		t.Fatalf("explain: %q", plan.Explain)
	}
}
