package planner

import (
	"fmt"
	"strings"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/partition"
)

// Shard planning: once a relation is range-partitioned, answering a
// range query means choosing the covering shards and, per shard, the
// exact record interval to walk. The decomposition itself is forced by
// the cut keys (partition.Spec.Decompose); what the planner adds is the
// exact per-shard cover — computable at the publisher, which holds the
// slices — and the EXPLAIN rationale the vcbench shard sweep prints
// alongside its measurements. This mirrors Choose's role for multi-order
// publications: the verifiable answer is the same either way, the plan
// just says what it will cost.

// ShardLeg is one shard's part of a fan-out plan.
type ShardLeg struct {
	Sub partition.SubRange
	// Cover is the exact number of records the shard contributes to the
	// VO (covered entries, before any non-key filtering).
	Cover int
}

// ShardPlan is the fan-out plan for one range query over a partitioned
// relation.
type ShardPlan struct {
	Legs []ShardLeg
	// Cover is the total covered-record count across legs.
	Cover int
	// Explain is a human-readable rationale.
	Explain string
}

// PlanShards decomposes an effective range over a partition and counts
// the exact per-shard covers. slices must be the partition's shard
// slices in shard order (as pinned by the serving layer); lo and hi must
// already be the effective (rewritten) range.
func PlanShards(spec partition.Spec, slices []*core.SignedRelation, lo, hi uint64) (ShardPlan, error) {
	if err := spec.Validate(); err != nil {
		return ShardPlan{}, err
	}
	if len(slices) != spec.K() {
		return ShardPlan{}, fmt.Errorf("planner: %d slices for %d shards", len(slices), spec.K())
	}
	sub := spec.Decompose(lo, hi)
	if len(sub) == 0 {
		return ShardPlan{}, ErrNoPlan
	}
	plan := ShardPlan{Legs: make([]ShardLeg, len(sub))}
	var parts []string
	for i, sr := range sub {
		a, b := slices[sr.Shard].RangeIndices(sr.Lo, sr.Hi)
		plan.Legs[i] = ShardLeg{Sub: sr, Cover: b - a}
		plan.Cover += b - a
		parts = append(parts, fmt.Sprintf("shard %d covers %d", sr.Shard, b-a))
	}
	if len(sub) == 1 {
		plan.Explain = fmt.Sprintf("single-shard route: %s record(s) on shard %d of %d",
			fmt.Sprint(plan.Cover), sub[0].Shard, spec.K())
	} else {
		plan.Explain = fmt.Sprintf("fan-out over %d of %d shards (%s), %d records total",
			len(sub), spec.K(), strings.Join(parts, ", "), plan.Cover)
	}
	return plan, nil
}

// PlanShardQuery is PlanShards for a raw query: it computes the
// effective rewrite first (the same derivation publisher and verifier
// use) and then plans the fan-out.
func PlanShardQuery(spec partition.Spec, slices []*core.SignedRelation, q engine.Query) (ShardPlan, error) {
	if len(slices) == 0 {
		return ShardPlan{}, ErrNoPlan
	}
	// The unrestricted zero role: shard planning is policy-independent
	// (the role clamp only narrows the range, never the shard choice
	// logic), and the serving layer re-derives the clamped range itself.
	eff, err := engine.EffectiveQuery(slices[0].Params, slices[0].Schema, accessctl.Role{}, q)
	if err != nil {
		return ShardPlan{}, err
	}
	return PlanShards(spec, slices, eff.KeyLo, eff.KeyHi)
}
