// Package planner chooses which signed sort order should answer a query.
//
// A multipoint query (Section 4.4) — say "Salary < 10000 AND Dept = 1" —
// can be answered two ways once the owner signs multiple orderings
// (package multiorder):
//
//   - on the primary (Salary) ordering, with Dept=1 as a multipoint
//     filter: every covered record appears in the VO, filtered ones as
//     digests; or
//   - on the Dept ordering, with Dept=1 as the key range and the Salary
//     bound as a multipoint filter on the PrimaryKeyCol column.
//
// Both verify; they differ in how many records the VO must cover. The
// planner picks the ordering with the smallest cover — computable exactly
// at the publisher, which holds the data — and reports an EXPLAIN-style
// rationale. Verification is unchanged: the user checks the result
// against the ordering the plan names.
package planner

import (
	"errors"
	"fmt"

	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/multiorder"
	"vcqr/internal/relation"
)

// ErrNoPlan reports a query no ordering can answer.
var ErrNoPlan = errors.New("planner: no ordering can answer this query")

// Plan is the outcome: the query to execute (possibly rewritten against a
// secondary ordering) and the rationale.
type Plan struct {
	// Query is what the publisher should execute; Relation names the
	// chosen ordering.
	Query engine.Query
	// Ordering is the sort column the plan uses (the primary key
	// attribute or a secondary ordering column).
	Ordering string
	// Cover is the exact number of records the VO will cover.
	Cover int
	// Explain is a human-readable rationale.
	Explain string
}

// Choose evaluates every ordering that can express the query and returns
// the cheapest plan. The input query is phrased against the primary
// ordering: KeyLo/KeyHi bound the primary key attribute; Filters may
// reference any column.
func Choose(tab *multiorder.Table, q engine.Query) (Plan, error) {
	if q.Relation != tab.Primary.Schema.Name {
		return Plan{}, fmt.Errorf("planner: query names %q, table is %q", q.Relation, tab.Primary.Schema.Name)
	}
	best := Plan{Cover: -1}

	// Candidate 0: the primary ordering, as asked.
	primCover := coverSize(tab.Primary, normalizeLo(tab.Primary, q.KeyLo), normalizeHi(tab.Primary, q.KeyHi))
	best = Plan{
		Query:    q,
		Ordering: tab.Primary.Schema.KeyName,
		Cover:    primCover,
		Explain:  fmt.Sprintf("primary ordering on %s covers %d records", tab.Primary.Schema.KeyName, primCover),
	}

	// Candidates: one per secondary ordering with an equality or range
	// filter on its column.
	for _, f := range q.Filters {
		sr, err := tab.For(f.Col)
		if err != nil || sr == tab.Primary {
			continue
		}
		lo, hi, ok := filterRange(f, sr.Params)
		if !ok {
			continue
		}
		rewritten, err := rewriteForOrdering(tab, sr, q, f, lo, hi)
		if err != nil {
			continue
		}
		cover := coverSize(sr, lo, hi)
		if cover < best.Cover {
			best = Plan{
				Query:    rewritten,
				Ordering: f.Col,
				Cover:    cover,
				Explain: fmt.Sprintf("secondary ordering on %s covers %d records (primary would cover %d)",
					f.Col, cover, primCover),
			}
		}
	}
	if best.Cover < 0 {
		return Plan{}, ErrNoPlan
	}
	return best, nil
}

// normalizeLo/Hi apply the engine's range defaulting.
func normalizeLo(sr *core.SignedRelation, lo uint64) uint64 {
	if lo <= sr.Params.L {
		return sr.Params.L + 1
	}
	return lo
}

func normalizeHi(sr *core.SignedRelation, hi uint64) uint64 {
	if hi == 0 || hi >= sr.Params.U {
		return sr.Params.U - 1
	}
	return hi
}

// coverSize counts records in [lo, hi] on an ordering.
func coverSize(sr *core.SignedRelation, lo, hi uint64) int {
	a, b := sr.RangeIndices(lo, hi)
	return b - a
}

// filterRange converts a filter on the ordering column into a key range.
func filterRange(f engine.Filter, p core.Params) (uint64, uint64, bool) {
	if f.Val.Type != relation.TypeInt || f.Val.Int < 0 {
		return 0, 0, false
	}
	v := uint64(f.Val.Int)
	switch f.Op {
	case engine.OpEq:
		if v <= p.L || v >= p.U {
			return 0, 0, false
		}
		return v, v, true
	case engine.OpLe:
		return p.L + 1, min64(v, p.U-1), true
	case engine.OpLt:
		if v <= p.L+1 {
			return 0, 0, false
		}
		return p.L + 1, min64(v-1, p.U-1), true
	case engine.OpGe:
		return max64(v, p.L+1), p.U - 1, true
	case engine.OpGt:
		return max64(v+1, p.L+1), p.U - 1, true
	default:
		return 0, 0, false
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// rewriteForOrdering rephrases the query against a secondary ordering:
// the chosen filter becomes the key range; the primary-key bound becomes
// a filter on PrimaryKeyCol; remaining filters carry over; the projection
// is translated (PrimaryKeyCol is always included so the caller can
// recover the original key).
func rewriteForOrdering(tab *multiorder.Table, sr *core.SignedRelation, q engine.Query, used engine.Filter, lo, hi uint64) (engine.Query, error) {
	out := engine.Query{
		Relation: sr.Schema.Name,
		KeyLo:    lo,
		KeyHi:    hi,
		Distinct: q.Distinct,
	}
	// Primary-key range -> filters on PrimaryKeyCol.
	pLo := normalizeLo(tab.Primary, q.KeyLo)
	pHi := normalizeHi(tab.Primary, q.KeyHi)
	if pLo > tab.Primary.Params.L+1 {
		out.Filters = append(out.Filters, engine.Filter{
			Col: multiorder.PrimaryKeyCol, Op: engine.OpGe, Val: relation.IntVal(int64(pLo)),
		})
	}
	if pHi < tab.Primary.Params.U-1 {
		out.Filters = append(out.Filters, engine.Filter{
			Col: multiorder.PrimaryKeyCol, Op: engine.OpLe, Val: relation.IntVal(int64(pHi)),
		})
	}
	// Remaining filters carry over (they reference columns that exist on
	// the derived schema under the same names).
	for _, f := range q.Filters {
		if f.Col == used.Col && f.Op == used.Op && f.Val.Equal(used.Val) {
			continue
		}
		if sr.Schema.ColIndex(f.Col) < 0 {
			return engine.Query{}, fmt.Errorf("planner: filter column %q missing on ordering", f.Col)
		}
		out.Filters = append(out.Filters, f)
	}
	// Projection: translate, always including the primary key column.
	if q.Project != nil {
		out.Project = append([]string{multiorder.PrimaryKeyCol}, nil...)
		for _, c := range q.Project {
			if c == used.Col {
				continue // it is the ordering key now, returned implicitly
			}
			if sr.Schema.ColIndex(c) < 0 {
				return engine.Query{}, fmt.Errorf("planner: projected column %q missing on ordering", c)
			}
			out.Project = append(out.Project, c)
		}
	}
	return out, nil
}
