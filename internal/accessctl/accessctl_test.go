package accessctl

import (
	"testing"

	"vcqr/internal/relation"
)

func schema() relation.Schema {
	return relation.Schema{
		Name:    "Emp",
		KeyName: "Salary",
		Cols: []relation.Column{
			{Name: "Name", Type: relation.TypeString},
			{Name: "Dept", Type: relation.TypeInt},
			{Name: "Photo", Type: relation.TypeBytes},
			{Name: "vis_clerk", Type: relation.TypeBool},
		},
	}
}

func TestPolicyLookup(t *testing.T) {
	p := NewPolicy(Role{Name: "manager"}, Role{Name: "exec", KeyHi: 8999})
	if _, err := p.Role("manager"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Role("intern"); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestClampRange(t *testing.T) {
	cases := []struct {
		role   Role
		lo, hi uint64
		wLo    uint64
		wHi    uint64
		ok     bool
	}{
		{Role{}, 1, 100, 1, 100, true},                     // zero role: unrestricted
		{Role{KeyHi: 8999}, 1, 9999, 1, 8999, true},        // Figure 1 HR executive
		{Role{KeyHi: 8999}, 9000, 9999, 9000, 8999, false}, // fully outside rights
		{Role{KeyLo: 500}, 1, 100, 500, 100, false},        // below rights
		{Role{KeyLo: 10, KeyHi: 20}, 1, 100, 10, 20, true}, // both sides clamp
		{Role{KeyHi: Unbounded}, 5, 50, 5, 50, true},       // explicit unbounded
		{Role{KeyLo: 10, KeyHi: 20}, 15, 18, 15, 18, true}, // inside rights
	}
	for i, c := range cases {
		lo, hi, ok := c.role.ClampRange(c.lo, c.hi)
		if ok != c.ok || (ok && (lo != c.wLo || hi != c.wHi)) {
			t.Errorf("case %d: ClampRange(%d,%d) = (%d,%d,%v), want (%d,%d,%v)",
				i, c.lo, c.hi, lo, hi, ok, c.wLo, c.wHi, c.ok)
		}
	}
}

func TestColAllowed(t *testing.T) {
	all := Role{}
	if !all.ColAllowed("anything") {
		t.Error("nil Cols must allow everything")
	}
	limited := Role{Cols: []string{"Name", "Dept"}}
	if !limited.ColAllowed("Name") || limited.ColAllowed("Photo") {
		t.Error("column policy not enforced")
	}
}

func TestFilterCols(t *testing.T) {
	s := schema()
	limited := Role{Cols: []string{"Name", "Dept"}}
	// Requested nil: role's allowed set.
	got := limited.FilterCols(s, nil)
	if len(got) != 2 || got[0] != "Name" || got[1] != "Dept" {
		t.Errorf("FilterCols(nil) = %v", got)
	}
	// Requested superset: clipped.
	got = limited.FilterCols(s, []string{"Name", "Photo"})
	if len(got) != 1 || got[0] != "Name" {
		t.Errorf("FilterCols(superset) = %v", got)
	}
	// Unrestricted role, nil request: nil (all).
	if all := (Role{}).FilterCols(s, nil); all != nil {
		t.Errorf("unrestricted FilterCols(nil) = %v, want nil", all)
	}
	// Unknown requested column dropped.
	got = (Role{}).FilterCols(s, []string{"Name", "Bogus"})
	if len(got) != 1 || got[0] != "Name" {
		t.Errorf("FilterCols(unknown) = %v", got)
	}
}

func TestRecordVisible(t *testing.T) {
	s := schema()
	mk := func(vis bool) relation.Tuple {
		return relation.Tuple{Key: 1, Attrs: []relation.Value{
			relation.StringVal("A"), relation.IntVal(1),
			relation.BytesVal(nil), relation.BoolVal(vis),
		}}
	}
	clerk := Role{Name: "clerk", VisibilityCol: "vis_clerk"}
	if clerk.RecordVisible(s, mk(false)) {
		t.Error("hidden record visible to clerk")
	}
	if !clerk.RecordVisible(s, mk(true)) {
		t.Error("visible record hidden from clerk")
	}
	manager := Role{Name: "manager"}
	if !manager.RecordVisible(s, mk(false)) {
		t.Error("role without visibility column must see everything")
	}
	// Visibility column absent from the schema: policy vacuous.
	ghost := Role{Name: "ghost", VisibilityCol: "vis_ghost"}
	if !ghost.RecordVisible(s, mk(false)) {
		t.Error("missing visibility column must not hide records")
	}
}
