// Package accessctl models the access-control side of the data-publishing
// scenario (Sections 1 and 4.4): role-based row and column policies that
// the publisher enforces by query rewriting, plus the per-user-group
// visibility columns the owner adds for record-level policies that are not
// expressible as key ranges.
//
// The motivating example (Figure 1): the HR manager sees every record,
// while the HR executive sees only records with Salary < 9000. The
// executive's query "Salary < 10000" is rewritten to "Salary < 9000"; the
// scheme must then prove completeness of the *rewritten* range without
// leaking the out-of-range record — precisely what the Devanbu baseline
// cannot do.
package accessctl

import (
	"errors"
	"fmt"

	"vcqr/internal/relation"
)

// Unbounded marks a row policy with no restriction on that side.
const Unbounded = ^uint64(0)

// Role is one principal class with row, column, and record-level rights.
type Role struct {
	Name string
	// KeyLo and KeyHi bound the keys the role may see (inclusive).
	// Zero or Unbounded means no restriction on that side, so the zero
	// Role value grants unrestricted access.
	KeyLo, KeyHi uint64
	// Cols lists the non-key columns the role may see; nil means all.
	// The sort key K is always visible (the user needs it to verify
	// completeness, Section 4.2).
	Cols []string
	// VisibilityCol names the boolean column that flags record-level
	// visibility for this role's user group (Section 4.4, Case 2).
	// Empty means no record-level policy.
	VisibilityCol string
}

// ErrUnknownRole reports a role the policy does not define.
var ErrUnknownRole = errors.New("accessctl: unknown role")

// Policy maps role names to their rights.
type Policy struct {
	Roles map[string]Role
}

// NewPolicy builds a policy from roles.
func NewPolicy(roles ...Role) Policy {
	m := make(map[string]Role, len(roles))
	for _, r := range roles {
		m[r.Name] = r
	}
	return Policy{Roles: m}
}

// Role returns the named role.
func (p Policy) Role(name string) (Role, error) {
	r, ok := p.Roles[name]
	if !ok {
		return Role{}, fmt.Errorf("%w: %q", ErrUnknownRole, name)
	}
	return r, nil
}

// ClampRange intersects a requested key range with the role's row policy.
// The second return is false when the intersection is empty.
func (r Role) ClampRange(lo, hi uint64) (uint64, uint64, bool) {
	if r.KeyLo != 0 && r.KeyLo != Unbounded && lo < r.KeyLo {
		lo = r.KeyLo
	}
	if r.KeyHi != 0 && r.KeyHi != Unbounded && hi > r.KeyHi {
		hi = r.KeyHi
	}
	return lo, hi, lo <= hi
}

// ColAllowed reports whether the role may see the named column.
func (r Role) ColAllowed(name string) bool {
	if r.Cols == nil {
		return true
	}
	for _, c := range r.Cols {
		if c == name {
			return true
		}
	}
	return false
}

// FilterCols returns the subset of requested columns the role may see.
// nil requested means "all allowed".
func (r Role) FilterCols(schema relation.Schema, requested []string) []string {
	if requested == nil {
		if r.Cols == nil {
			return nil // all columns
		}
		out := make([]string, 0, len(r.Cols))
		for _, c := range r.Cols {
			if schema.ColIndex(c) >= 0 {
				out = append(out, c)
			}
		}
		return out
	}
	out := make([]string, 0, len(requested))
	for _, c := range requested {
		if r.ColAllowed(c) && schema.ColIndex(c) >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// RecordVisible evaluates the role's record-level policy on a tuple: true
// unless the role has a visibility column and the tuple's value in it is
// false.
func (r Role) RecordVisible(schema relation.Schema, t relation.Tuple) bool {
	if r.VisibilityCol == "" {
		return true
	}
	i := schema.ColIndex(r.VisibilityCol)
	if i < 0 {
		return true // no such column in this relation: policy vacuous
	}
	v := t.Attrs[i]
	return v.Type != relation.TypeBool || v.Bool
}
