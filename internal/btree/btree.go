// Package btree implements the B+-tree the paper proposes as the storage
// structure for the signature chain (Section 6.3): "our extended scheme
// can be incorporated into the B+-tree, by storing the signatures for each
// record along with its pointer in the leaf node".
//
// The point of this substrate is the update-cost argument: a record update
// invalidates exactly three signatures — its own and its two neighbours' —
// which is "conceptually similar to updating a doubly-linked list". With
// hundreds of entries per node, the three affected signatures usually live
// in ONE leaf, and in the worst case span two adjoining leaves; no path to
// the root is touched, unlike Merkle-hash-tree schemes whose every update
// propagates to the root digest. LeafSpan measures exactly that.
package btree

import (
	"errors"
	"fmt"
)

// DefaultOrder is the default fan-out. The paper notes "a B+-tree node
// typically contains hundreds of entries"; 128 keeps tests brisk while
// preserving the multi-entry-per-leaf property the argument rests on.
const DefaultOrder = 128

// Errors.
var (
	ErrNotFound = errors.New("btree: entry not found")
	ErrOrder    = errors.New("btree: order must be >= 3")
)

// Entry is one leaf record: the composite key (Key, RowID) and the
// record's chained signature.
type Entry struct {
	Key   uint64
	RowID uint64
	Sig   []byte
}

func entryLess(aK, aR, bK, bR uint64) bool {
	return aK < bK || (aK == bK && aR < bR)
}

// leaf and internal nodes.
type node struct {
	leaf     bool
	parent   *node
	entries  []Entry  // leaf payload
	keys     []uint64 // internal separator keys
	rows     []uint64 // rowid part of separators
	children []*node
	next     *node // leaf sibling chain
	prev     *node
}

// Tree is a B+-tree over (Key, RowID) storing signatures in its leaves.
type Tree struct {
	order int
	root  *node
	size  int
}

// New creates a tree with the given order (max children per internal
// node, max entries per leaf). Order 0 selects DefaultOrder.
func New(order int) (*Tree, error) {
	if order == 0 {
		order = DefaultOrder
	}
	if order < 3 {
		return nil, ErrOrder
	}
	return &Tree{order: order, root: &node{leaf: true}}, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = only a root leaf).
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// findLeaf descends to the leaf that owns (key, rowID).
func (t *Tree) findLeaf(key, rowID uint64) *node {
	n := t.root
	for !n.leaf {
		i := 0
		for i < len(n.keys) && !entryLess(key, rowID, n.keys[i], n.rows[i]) {
			i++
		}
		n = n.children[i]
	}
	return n
}

// position returns the index in leaf where (key,rowID) is or would be.
func position(l *node, key, rowID uint64) int {
	i := 0
	for i < len(l.entries) && entryLess(l.entries[i].Key, l.entries[i].RowID, key, rowID) {
		i++
	}
	return i
}

// Insert adds an entry; duplicate (Key, RowID) is an error.
func (t *Tree) Insert(e Entry) error {
	l := t.findLeaf(e.Key, e.RowID)
	i := position(l, e.Key, e.RowID)
	if i < len(l.entries) && l.entries[i].Key == e.Key && l.entries[i].RowID == e.RowID {
		return fmt.Errorf("btree: duplicate entry (%d, %d)", e.Key, e.RowID)
	}
	l.entries = append(l.entries, Entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	t.size++
	if len(l.entries) > t.order {
		t.splitLeaf(l)
	}
	return nil
}

// splitLeaf splits an over-full leaf and propagates upward.
func (t *Tree) splitLeaf(l *node) {
	mid := len(l.entries) / 2
	right := &node{leaf: true, entries: append([]Entry(nil), l.entries[mid:]...)}
	l.entries = l.entries[:mid]
	right.next = l.next
	if right.next != nil {
		right.next.prev = right
	}
	right.prev = l
	l.next = right
	sepK, sepR := right.entries[0].Key, right.entries[0].RowID
	t.insertInParent(l, sepK, sepR, right)
}

// insertInParent links a new right sibling after left under their parent.
func (t *Tree) insertInParent(left *node, sepK, sepR uint64, right *node) {
	if left == t.root {
		t.root = &node{
			keys:     []uint64{sepK},
			rows:     []uint64{sepR},
			children: []*node{left, right},
		}
		left.parent = t.root
		right.parent = t.root
		return
	}
	p := left.parent
	right.parent = p
	i := 0
	for i < len(p.children) && p.children[i] != left {
		i++
	}
	p.keys = append(p.keys, 0)
	p.rows = append(p.rows, 0)
	copy(p.keys[i+1:], p.keys[i:])
	copy(p.rows[i+1:], p.rows[i:])
	p.keys[i] = sepK
	p.rows[i] = sepR
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
	if len(p.children) > t.order {
		t.splitInternal(p)
	}
}

// splitInternal splits an over-full internal node.
func (t *Tree) splitInternal(n *node) {
	mid := len(n.keys) / 2
	sepK, sepR := n.keys[mid], n.rows[mid]
	right := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		rows:     append([]uint64(nil), n.rows[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.rows = n.rows[:mid]
	n.children = n.children[:mid+1]
	for _, c := range right.children {
		c.parent = right
	}
	t.insertInParent(n, sepK, sepR, right)
}

// Get returns the signature stored for (key, rowID).
func (t *Tree) Get(key, rowID uint64) ([]byte, error) {
	l := t.findLeaf(key, rowID)
	i := position(l, key, rowID)
	if i < len(l.entries) && l.entries[i].Key == key && l.entries[i].RowID == rowID {
		return l.entries[i].Sig, nil
	}
	return nil, ErrNotFound
}

// UpdateSig replaces the signature of (key, rowID) in place: the leaf-local
// write at the heart of the Section 6.3 argument.
func (t *Tree) UpdateSig(key, rowID uint64, sig []byte) error {
	l := t.findLeaf(key, rowID)
	i := position(l, key, rowID)
	if i < len(l.entries) && l.entries[i].Key == key && l.entries[i].RowID == rowID {
		l.entries[i].Sig = sig
		return nil
	}
	return ErrNotFound
}

// Delete removes (key, rowID). Underflowed leaves are merged with a
// sibling when possible; the tree stays balanced enough for correctness
// (search/scan) though it does not rebalance aggressively — deletions are
// rare relative to lookups in the published-database workload.
func (t *Tree) Delete(key, rowID uint64) error {
	l := t.findLeaf(key, rowID)
	i := position(l, key, rowID)
	if i >= len(l.entries) || l.entries[i].Key != key || l.entries[i].RowID != rowID {
		return ErrNotFound
	}
	l.entries = append(l.entries[:i], l.entries[i+1:]...)
	t.size--
	if len(l.entries) == 0 && l != t.root {
		t.removeLeaf(l)
	}
	return nil
}

// removeLeaf unlinks an empty node from its parent and, for leaves, the
// sibling chain. Empty parents are removed recursively; a root with a
// single internal child collapses.
func (t *Tree) removeLeaf(l *node) {
	if l.leaf {
		if l.prev != nil {
			l.prev.next = l.next
		}
		if l.next != nil {
			l.next.prev = l.prev
		}
	}
	p := l.parent
	if p == nil {
		return
	}
	i := 0
	for i < len(p.children) && p.children[i] != l {
		i++
	}
	p.children = append(p.children[:i], p.children[i+1:]...)
	sep := i
	if sep >= len(p.keys) && len(p.keys) > 0 {
		sep = len(p.keys) - 1
	}
	if len(p.keys) > 0 {
		p.keys = append(p.keys[:sep], p.keys[sep+1:]...)
		p.rows = append(p.rows[:sep], p.rows[sep+1:]...)
	}
	switch {
	case len(p.children) == 0:
		t.removeLeaf(p)
	case len(p.children) == 1 && p == t.root:
		t.root = p.children[0]
		t.root.parent = nil
	}
}

// Range calls fn for every entry with lo <= Key <= hi, in order; fn
// returning false stops the scan.
func (t *Tree) Range(lo, hi uint64, fn func(Entry) bool) {
	l := t.findLeaf(lo, 0)
	for l != nil {
		for _, e := range l.entries {
			if e.Key < lo {
				continue
			}
			if e.Key > hi {
				return
			}
			if !fn(e) {
				return
			}
		}
		l = l.next
	}
}

// LeafSpan returns how many distinct leaf nodes hold (key,rowID) and its
// chain neighbours (the previous and next entries in key order) — the
// quantity Section 6.3 argues is 1 most of the time and at most 2.
func (t *Tree) LeafSpan(key, rowID uint64) (int, error) {
	l := t.findLeaf(key, rowID)
	i := position(l, key, rowID)
	if i >= len(l.entries) || l.entries[i].Key != key || l.entries[i].RowID != rowID {
		return 0, ErrNotFound
	}
	leaves := map[*node]bool{l: true}
	if i == 0 && l.prev != nil {
		leaves[l.prev] = true
	}
	if i == len(l.entries)-1 && l.next != nil {
		leaves[l.next] = true
	}
	return len(leaves), nil
}

// Validate checks structural invariants: ordering within and across
// leaves, separator consistency, and the size count.
func (t *Tree) Validate() error {
	count := 0
	var prevK, prevR uint64
	first := true
	l := t.leftmostLeaf()
	for l != nil {
		for _, e := range l.entries {
			if !first && !entryLess(prevK, prevR, e.Key, e.RowID) {
				return fmt.Errorf("btree: entries out of order at (%d,%d)", e.Key, e.RowID)
			}
			prevK, prevR = e.Key, e.RowID
			first = false
			count++
		}
		l = l.next
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d != counted %d", t.size, count)
	}
	return nil
}

func (t *Tree) leftmostLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}
