package btree

import (
	"math/rand"
	"testing"
)

func TestNewOrderValidation(t *testing.T) {
	if _, err := New(2); err != ErrOrder {
		t.Errorf("order 2: %v", err)
	}
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("fresh tree shape wrong")
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 100; i++ {
		if err := tr.Insert(Entry{Key: i * 10, RowID: 0, Sig: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 100; i++ {
		sig, err := tr.Get(i*10, 0)
		if err != nil {
			t.Fatalf("Get(%d): %v", i*10, err)
		}
		if sig[0] != byte(i) {
			t.Fatalf("Get(%d) wrong payload", i*10)
		}
	}
	if _, err := tr.Get(5, 0); err != ErrNotFound {
		t.Fatal("missing entry found")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRejected(t *testing.T) {
	tr, _ := New(4)
	if err := tr.Insert(Entry{Key: 1, RowID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Entry{Key: 1, RowID: 2}); err == nil {
		t.Fatal("duplicate accepted")
	}
	// Same key, different rowid is fine (replica numbers).
	if err := tr.Insert(Entry{Key: 1, RowID: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInsertDeleteInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, _ := New(6)
	live := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(5000))
		if live[k] {
			if err := tr.Delete(k, 0); err != nil {
				t.Fatalf("delete %d: %v", k, err)
			}
			delete(live, k)
		} else {
			if err := tr.Insert(Entry{Key: k, RowID: 0, Sig: []byte{1}}); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
			live[k] = true
		}
		if i%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len %d != live %d", tr.Len(), len(live))
	}
	for k := range live {
		if _, err := tr.Get(k, 0); err != nil {
			t.Fatalf("live key %d missing", k)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr, _ := New(5)
	for i := uint64(1); i <= 50; i++ {
		tr.Insert(Entry{Key: i * 2}) // even keys 2..100
	}
	var got []uint64
	tr.Range(10, 30, func(e Entry) bool {
		got = append(got, e.Key)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Range(0, 1000, func(e Entry) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestUpdateSigInPlace(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 20; i++ {
		tr.Insert(Entry{Key: i, Sig: []byte{0}})
	}
	if err := tr.UpdateSig(7, 0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	sig, err := tr.Get(7, 0)
	if err != nil || sig[0] != 42 {
		t.Fatalf("updated sig not visible: %v %v", sig, err)
	}
	if err := tr.UpdateSig(999, 0, nil); err != ErrNotFound {
		t.Fatal("update of missing entry succeeded")
	}
}

// TestLeafSpan is the Section 6.3 claim: the three signatures affected by
// a record update live in at most two adjoining leaves, and in one leaf
// most of the time.
func TestLeafSpan(t *testing.T) {
	tr, _ := New(64)
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(Entry{Key: i, Sig: []byte{1}})
	}
	ones, twos := 0, 0
	for i := uint64(0); i < 10000; i += 7 {
		span, err := tr.LeafSpan(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		switch span {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Fatalf("LeafSpan(%d) = %d; must never exceed 2", i, span)
		}
	}
	if ones <= twos {
		t.Fatalf("expected span 1 to dominate: ones=%d twos=%d", ones, twos)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr, _ := New(4)
	if tr.Height() != 1 {
		t.Fatal("empty tree height")
	}
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(Entry{Key: i})
	}
	if h := tr.Height(); h < 4 {
		t.Fatalf("height %d suspiciously small for 1000 entries at order 4", h)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteToEmpty(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 50; i++ {
		tr.Insert(Entry{Key: i})
	}
	for i := uint64(0); i < 50; i++ {
		if err := tr.Delete(i, 0); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tree remains usable.
	if err := tr.Insert(Entry{Key: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get(7, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDescendingInsert(t *testing.T) {
	tr, _ := New(4)
	for i := 1000; i > 0; i-- {
		if err := tr.Insert(Entry{Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	tr.Range(1, 5, func(e Entry) bool { got = append(got, e.Key); return true })
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("Range after descending insert = %v", got)
	}
}
