package workload

import (
	"testing"
)

func TestEmployeesDeterministic(t *testing.T) {
	cfg := EmployeeConfig{N: 50, L: 0, U: 1 << 20, PhotoSize: 64, HiddenPct: 20, Seed: 1}
	a, err := Employees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Employees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 50 || b.Len() != 50 {
		t.Fatalf("lengths: %d, %d", a.Len(), b.Len())
	}
	for i := range a.Tuples {
		if a.Tuples[i].Key != b.Tuples[i].Key {
			t.Fatal("same seed must give same keys")
		}
	}
	c, err := Employees(EmployeeConfig{N: 50, L: 0, U: 1 << 20, PhotoSize: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tuples {
		if a.Tuples[i].Key != c.Tuples[i].Key {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical keys")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmployeesHiddenFraction(t *testing.T) {
	rel, err := Employees(EmployeeConfig{N: 500, L: 0, U: 1 << 20, HiddenPct: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	visIdx := rel.Schema.ColIndex("vis_clerk")
	hidden := 0
	for _, tp := range rel.Tuples {
		if !tp.Attrs[visIdx].Bool {
			hidden++
		}
	}
	if hidden < 100 || hidden > 200 {
		t.Fatalf("hidden = %d of 500, expected ~150", hidden)
	}
}

func TestStocks(t *testing.T) {
	rel, err := Stocks(200, 0, 1<<30, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 200 {
		t.Fatalf("Len = %d", rel.Len())
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRecordSize(t *testing.T) {
	rel, err := Uniform(UniformConfig{N: 20, L: 0, U: 1 << 20, PayloadSize: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples {
		// 8 key bytes + tag/len framing + payload.
		if tp.Size() < 512 || tp.Size() > 512+32 {
			t.Fatalf("record size %d, want ~512", tp.Size())
		}
	}
}

func TestRangeQueriesSelectivity(t *testing.T) {
	qs := RangeQueries(50, 0, 1<<20, 1000, 10, 9)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Lo > q.Hi || q.Lo == 0 || q.Hi >= 1<<20 {
			t.Fatalf("query [%d,%d] out of domain", q.Lo, q.Hi)
		}
	}
}

func TestZipfKeysInDomain(t *testing.T) {
	keys := ZipfKeys(1000, 100, 10000, 1.2, 5)
	for _, k := range keys {
		if k <= 100 || k >= 10000 {
			t.Fatalf("zipf key %d outside (100, 10000)", k)
		}
	}
}
