// Package workload generates the synthetic datasets and query mixes the
// benchmark harness uses to regenerate the paper's evaluation: an
// Employee table shaped like Figure 1, the stock-price scenario from the
// introduction, and parameterized uniform/zipf relations with controllable
// record sizes (the Mr axis of Figure 9).
//
// Everything is seeded: the same seed reproduces the same dataset, so
// experiment output is deterministic across runs.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"vcqr/internal/relation"
)

// EmployeeSchema is the Figure 1 table plus a clerk-visibility column.
func EmployeeSchema() relation.Schema {
	return relation.Schema{
		Name:    "Emp",
		KeyName: "Salary",
		Cols: []relation.Column{
			{Name: "ID", Type: relation.TypeInt},
			{Name: "Name", Type: relation.TypeString},
			{Name: "Dept", Type: relation.TypeInt},
			{Name: "Photo", Type: relation.TypeBytes},
			{Name: "vis_clerk", Type: relation.TypeBool},
		},
	}
}

// EmployeeConfig parameterizes the employee generator.
type EmployeeConfig struct {
	N         int    // number of records
	L, U      uint64 // salary domain (open interval)
	Depts     int    // number of departments
	PhotoSize int    // BLOB size in bytes (drives Mr)
	HiddenPct int    // percent of records with vis_clerk = false
	Seed      int64
}

// Employees generates an employee relation.
func Employees(cfg EmployeeConfig) (*relation.Relation, error) {
	if cfg.Depts <= 0 {
		cfg.Depts = 5
	}
	rel, err := relation.New(EmployeeSchema(), cfg.L, cfg.U)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.N; i++ {
		salary := uint64(rng.Int63n(int64(cfg.U-cfg.L-1))) + cfg.L + 1
		photo := make([]byte, cfg.PhotoSize)
		rng.Read(photo)
		vis := rng.Intn(100) >= cfg.HiddenPct
		if _, err := rel.Insert(relation.Tuple{Key: salary, Attrs: []relation.Value{
			relation.IntVal(int64(i)),
			relation.StringVal(fmt.Sprintf("emp-%04d", i)),
			relation.IntVal(int64(rng.Intn(cfg.Depts)) + 1),
			relation.BytesVal(photo),
			relation.BoolVal(vis),
		}}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// StockSchema models the introduction's financial-information-provider
// scenario: historical prices keyed by timestamp.
func StockSchema() relation.Schema {
	return relation.Schema{
		Name:    "Prices",
		KeyName: "Time",
		Cols: []relation.Column{
			{Name: "Symbol", Type: relation.TypeString},
			{Name: "Price", Type: relation.TypeFloat},
			{Name: "Volume", Type: relation.TypeInt},
		},
	}
}

// Stocks generates a price-history relation over [l, u) timestamps.
func Stocks(n int, l, u uint64, symbols []string, seed int64) (*relation.Relation, error) {
	if len(symbols) == 0 {
		symbols = []string{"ACME", "GLOBEX", "INITECH"}
	}
	rel, err := relation.New(StockSchema(), l, u)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	price := 100.0
	for i := 0; i < n; i++ {
		ts := uint64(rng.Int63n(int64(u-l-1))) + l + 1
		price *= 1 + (rng.Float64()-0.5)/50
		if _, err := rel.Insert(relation.Tuple{Key: ts, Attrs: []relation.Value{
			relation.StringVal(symbols[rng.Intn(len(symbols))]),
			relation.FloatVal(math.Round(price*100) / 100),
			relation.IntVal(int64(rng.Intn(100000))),
		}}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// UniformConfig parameterizes the generic record generator used for the
// Figure 9 sweep: record size is controlled by the payload column.
type UniformConfig struct {
	N           int
	L, U        uint64
	PayloadSize int // bytes per record payload (Mr - key size, approx.)
	Seed        int64
}

// UniformSchema is the minimal key+payload schema.
func UniformSchema() relation.Schema {
	return relation.Schema{
		Name:    "Uniform",
		KeyName: "K",
		Cols: []relation.Column{
			{Name: "Payload", Type: relation.TypeBytes},
		},
	}
}

// Uniform generates N records with uniformly random distinct-ish keys.
func Uniform(cfg UniformConfig) (*relation.Relation, error) {
	rel, err := relation.New(UniformSchema(), cfg.L, cfg.U)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.N; i++ {
		key := uint64(rng.Int63n(int64(cfg.U-cfg.L-1))) + cfg.L + 1
		payload := make([]byte, cfg.PayloadSize)
		rng.Read(payload)
		if _, err := rel.Insert(relation.Tuple{Key: key, Attrs: []relation.Value{
			relation.BytesVal(payload),
		}}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// RangeQueries yields nq random range queries over (l, u) whose expected
// selectivity picks about want records from a table of n.
type RangeQuery struct{ Lo, Hi uint64 }

// RangeQueries generates a deterministic query mix.
func RangeQueries(nq int, l, u uint64, n, want int, seed int64) []RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	span := u - l - 1
	width := span
	if n > 0 && want < n {
		width = span * uint64(want) / uint64(n)
		if width == 0 {
			width = 1
		}
	}
	out := make([]RangeQuery, nq)
	for i := range out {
		lo := uint64(rng.Int63n(int64(span))) + l + 1
		hi := lo + width
		if hi >= u {
			hi = u - 1
		}
		out[i] = RangeQuery{Lo: lo, Hi: hi}
	}
	return out
}

// ZipfKeys returns n keys drawn from a zipf distribution over (l, u) —
// a skewed alternative for robustness experiments.
func ZipfKeys(n int, l, u uint64, s float64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, u-l-2)
	out := make([]uint64, n)
	for i := range out {
		out[i] = l + 1 + z.Uint64()
	}
	return out
}

// --- live access statistics --------------------------------------------

// AccessStats is the live counterpart of this package's synthetic query
// mixes: a concurrent, decaying access-frequency tracker over opaque
// workload keys (the edge-cache tier keys it by cache entry). The cost
// model turns an observed count into a cache-admission decision
// (costmodel.CacheAdmission) — the point is to keep one-off cold ranges
// from polluting a byte-budgeted cache.
//
// Decay is generational: when the tracked key set outgrows its bound,
// every count is halved and zeroes are pruned, so sustained heat
// survives and ancient one-offs age out. The zero value is unusable;
// construct with NewAccessStats.
type AccessStats struct {
	mu      sync.Mutex
	max     int
	counts  map[string]uint32
	touches uint64
	decays  uint64
}

// NewAccessStats tracks at most max distinct keys (minimum 64) before a
// decay generation runs.
func NewAccessStats(max int) *AccessStats {
	if max < 64 {
		max = 64
	}
	return &AccessStats{max: max, counts: make(map[string]uint32, max/4)}
}

// Touch records one access and returns the key's decayed count,
// including this touch.
func (a *AccessStats) Touch(key string) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.touches++
	c := a.counts[key] + 1
	a.counts[key] = c
	if len(a.counts) > a.max {
		a.decays++
		for k, v := range a.counts {
			v /= 2
			if v == 0 {
				delete(a.counts, k)
			} else {
				a.counts[k] = v
			}
		}
	}
	return c
}

// Count returns a key's current decayed count without touching it.
func (a *AccessStats) Count(key string) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counts[key]
}

// Touches returns the total accesses recorded; Decays the generations
// the tracker has aged through.
func (a *AccessStats) Touches() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.touches
}

// Decays returns how many decay generations have run.
func (a *AccessStats) Decays() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decays
}
