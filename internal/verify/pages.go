package verify

import (
	"errors"
	"fmt"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
)

// Paged verification failures.
var (
	ErrPageTiling = errors.New("verify: pages do not tile the requested range")
	ErrPageEmpty  = errors.New("verify: paged result has no pages")
)

// VerifyPaged checks a paged result: the pages' sub-ranges must tile
// [KeyLo, KeyHi] exactly (adjacent, gap-free, in order), and every page
// must verify for its sub-range. Tiling plus per-page completeness gives
// completeness of the whole: no tuple can hide between pages.
func (v *Verifier) VerifyPaged(q engine.Query, role accessctl.Role, res *engine.PagedResult) ([]engine.Row, error) {
	if len(res.Pages) == 0 {
		return nil, ErrPageEmpty
	}
	// The overall range must be the expected rewrite of the user's query;
	// reuse the single-result check via the first page's query shape.
	if err := v.checkRewrite(q, role, engine.Query{
		Relation: q.Relation, KeyLo: res.KeyLo, KeyHi: res.KeyHi,
		Filters: q.Filters, Project: res.Pages[0].Effective.Project, Distinct: q.Distinct,
	}); err != nil {
		return nil, err
	}
	var out []engine.Row
	next := res.KeyLo
	for i, page := range res.Pages {
		if page == nil {
			return nil, fmt.Errorf("%w: page %d missing", ErrPageTiling, i)
		}
		eff := page.Effective
		if eff.KeyLo != next {
			return nil, fmt.Errorf("%w: page %d starts at %d, want %d", ErrPageTiling, i, eff.KeyLo, next)
		}
		if eff.KeyHi > res.KeyHi || (i == len(res.Pages)-1 && eff.KeyHi != res.KeyHi) {
			return nil, fmt.Errorf("%w: page %d ends at %d, range ends at %d", ErrPageTiling, i, eff.KeyHi, res.KeyHi)
		}
		// Verify the page against the page-shaped query; the role's
		// rewrite already happened at the overall level, so the page
		// query IS its effective query (pass an unrestricted clamp by
		// using the page bounds as the asked bounds).
		pageQ := q
		pageQ.KeyLo, pageQ.KeyHi = eff.KeyLo, eff.KeyHi
		rows, err := v.VerifyResult(pageQ, role, page)
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", i, err)
		}
		out = append(out, rows...)
		next = eff.KeyHi + 1
	}
	return out, nil
}
