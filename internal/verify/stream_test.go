package verify_test

import (
	"errors"
	"testing"

	"vcqr/internal/engine"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
)

// chunkify slices a result with a small chunk budget so streams span
// several entry chunks.
func chunkify(res *engine.Result) []*engine.Chunk {
	return engine.ChunkResult(res, 7)
}

// feed consumes chunks in order, returning the released rows and the
// first error with the index of the chunk that triggered it.
func feed(sv *verify.StreamVerifier, chunks []*engine.Chunk) ([]engine.Row, int, error) {
	var rows []engine.Row
	for i, c := range chunks {
		released, err := sv.Consume(c)
		if err != nil {
			return rows, i, err
		}
		rows = append(rows, released...)
	}
	return rows, len(chunks), nil
}

// TestStreamVerifyReleasesAllRows checks the happy path in both
// signature modes: the stream releases exactly the rows the whole-result
// verifier returns, in order, and Finish accepts.
func TestStreamVerifyReleasesAllRows(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	for _, aggregate := range []bool{true, false} {
		f.pub.Aggregate = aggregate
		res := f.query(t, q)
		want, err := f.v.VerifyResult(q, f.role, res)
		if err != nil {
			t.Fatalf("agg=%v: VerifyResult: %v", aggregate, err)
		}
		sv := f.v.NewStreamVerifier(q, f.role)
		rows, _, err := feed(sv, chunkify(res))
		if err != nil {
			t.Fatalf("agg=%v: stream rejected: %v", aggregate, err)
		}
		if err := sv.Finish(); err != nil {
			t.Fatalf("agg=%v: Finish: %v", aggregate, err)
		}
		if !sv.Done() {
			t.Fatalf("agg=%v: not done after footer", aggregate)
		}
		if len(rows) != len(want) {
			t.Fatalf("agg=%v: stream released %d rows, want %d", aggregate, len(rows), len(want))
		}
		for i := range rows {
			if rows[i].Key != want[i].Key {
				t.Fatalf("agg=%v: row %d key %d, want %d", aggregate, i, rows[i].Key, want[i].Key)
			}
		}
	}
	f.pub.Aggregate = true
}

// TestStreamVerifyEmptyRange checks the empty-range footer path.
func TestStreamVerifyEmptyRange(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 3, KeyHi: 3}
	res := f.query(t, q)
	if len(res.VO.Entries) != 0 {
		t.Skip("range unexpectedly non-empty")
	}
	sv := f.v.NewStreamVerifier(q, f.role)
	rows, _, err := feed(sv, chunkify(res))
	if err != nil {
		t.Fatalf("stream rejected: %v", err)
	}
	if err := sv.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty range released %d rows", len(rows))
	}
}

// TestStreamRejectsMutatedChunk checks mid-stream tampering with an
// entry's disclosed value. In individual-signature mode the mutation is
// caught inside the tampered chunk's own Consume; in aggregate mode at
// the footer. Both reject with ErrSignature.
func TestStreamRejectsMutatedChunk(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	for _, aggregate := range []bool{true, false} {
		f.pub.Aggregate = aggregate
		res := f.query(t, q)
		chunks := chunkify(res)
		if len(chunks) < 4 {
			t.Fatalf("need >= 2 entry chunks, got %d chunks", len(chunks))
		}
		// Tamper with the second entry chunk (mid-stream, not the first
		// or last piece).
		tampered := *chunks[2]
		tampered.Entries = append([]engine.VOEntry(nil), tampered.Entries...)
		e := tampered.Entries[0]
		e.Disclosed = append([]engine.DisclosedAttr(nil), e.Disclosed...)
		e.Disclosed[1] = engine.DisclosedAttr{Col: e.Disclosed[1].Col, Val: relation.StringVal("Mallory")}
		tampered.Entries[0] = e
		chunks[2] = &tampered

		sv := f.v.NewStreamVerifier(q, f.role)
		_, at, err := feed(sv, chunks)
		if !errors.Is(err, verify.ErrSignature) {
			t.Fatalf("agg=%v: mutated chunk error = %v", aggregate, err)
		}
		if aggregate {
			if at != len(chunks)-1 {
				t.Fatalf("agg: detected at chunk %d, want footer %d", at, len(chunks)-1)
			}
		} else if at != 2 {
			t.Fatalf("individual: detected at chunk %d, want 2 (the tampered chunk)", at)
		}
	}
	f.pub.Aggregate = true
}

// TestStreamRejectsDroppedChunk checks that removing one entry chunk
// fails immediately at the gap, before the footer.
func TestStreamRejectsDroppedChunk(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	res := f.query(t, q)
	chunks := chunkify(res)
	dropped := append(append([]*engine.Chunk(nil), chunks[:2]...), chunks[3:]...)
	sv := f.v.NewStreamVerifier(q, f.role)
	_, at, err := feed(sv, dropped)
	if !errors.Is(err, verify.ErrChunkSequence) {
		t.Fatalf("dropped chunk error = %v", err)
	}
	if at != 2 {
		t.Fatalf("detected at chunk %d, want 2 (first chunk after the gap)", at)
	}
	// The failure is latched: re-sending the correct chunk cannot revive
	// the stream, and Finish reports the original failure.
	if _, err := sv.Consume(chunks[2]); !errors.Is(err, verify.ErrChunkSequence) {
		t.Fatalf("post-failure Consume = %v, want latched error", err)
	}
	if err := sv.Finish(); !errors.Is(err, verify.ErrChunkSequence) {
		t.Fatalf("post-failure Finish = %v, want latched error", err)
	}
}

// TestStreamRejectsReorderedChunks checks that swapping two entry chunks
// fails at the first out-of-order chunk.
func TestStreamRejectsReorderedChunks(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	res := f.query(t, q)
	chunks := chunkify(res)
	chunks[1], chunks[2] = chunks[2], chunks[1]
	sv := f.v.NewStreamVerifier(q, f.role)
	_, at, err := feed(sv, chunks)
	if !errors.Is(err, verify.ErrChunkSequence) {
		t.Fatalf("reordered chunk error = %v", err)
	}
	if at != 1 {
		t.Fatalf("detected at chunk %d, want 1", at)
	}
}

// TestStreamRejectsTruncation checks that a stream ending before the
// footer — the truncation attack unique to streaming — is rejected by
// Finish, and that a stream cannot continue past its footer.
func TestStreamRejectsTruncation(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	res := f.query(t, q)
	chunks := chunkify(res)

	// Drop the footer.
	sv := f.v.NewStreamVerifier(q, f.role)
	if _, _, err := feed(sv, chunks[:len(chunks)-1]); err != nil {
		t.Fatalf("truncated prefix rejected early: %v", err)
	}
	if err := sv.Finish(); !errors.Is(err, verify.ErrStreamTruncated) {
		t.Fatalf("Finish after truncation = %v", err)
	}

	// A chunk after the footer is rejected too.
	sv = f.v.NewStreamVerifier(q, f.role)
	if _, _, err := feed(sv, chunks); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Consume(chunks[1]); !errors.Is(err, verify.ErrStreamEnded) {
		t.Fatalf("chunk after footer = %v", err)
	}
}

// TestStreamRejectsSwappedEntries checks in-chunk reordering: swapping
// two result entries breaks key order immediately.
func TestStreamRejectsSwappedEntries(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	res := f.query(t, q)
	chunks := chunkify(res)
	tampered := *chunks[1]
	tampered.Entries = append([]engine.VOEntry(nil), tampered.Entries...)
	tampered.Entries[0], tampered.Entries[1] = tampered.Entries[1], tampered.Entries[0]
	chunks[1] = &tampered
	sv := f.v.NewStreamVerifier(q, f.role)
	_, at, err := feed(sv, chunks)
	if !errors.Is(err, verify.ErrKeyOrder) {
		t.Fatalf("swapped entries error = %v", err)
	}
	if at != 1 {
		t.Fatalf("detected at chunk %d, want 1", at)
	}
}

// TestStreamRejectsOversizedChunk checks the client-side chunk cap: a
// malicious publisher packing the whole result into one giant chunk
// (defeating the O(chunk) memory bound) is rejected.
func TestStreamRejectsOversizedChunk(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	res := f.query(t, q)
	chunks := engine.ChunkResult(res, len(res.VO.Entries)) // one entries chunk
	huge := *chunks[1]
	huge.Entries = make([]engine.VOEntry, engine.MaxChunkRows+1)
	chunks[1] = &huge
	sv := f.v.NewStreamVerifier(q, f.role)
	_, _, err := feed(sv, chunks)
	if !errors.Is(err, verify.ErrChunkShape) {
		t.Fatalf("oversized chunk error = %v", err)
	}
}

// TestStreamRejectsPublisherAbort checks the in-band error chunk.
func TestStreamRejectsPublisherAbort(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1}
	sv := f.v.NewStreamVerifier(q, f.role)
	if _, err := sv.Consume(&engine.Chunk{Type: engine.ChunkError, Err: "disk on fire"}); err == nil {
		t.Fatal("error chunk accepted")
	}
}
