package verify

import (
	"errors"
	"fmt"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/obs"
	"vcqr/internal/sig"
)

// StreamVerifier consumes the chunks of a streamed result in order and
// verifies incrementally: per-entry reconstruction, key ordering, and the
// signature chain all advance as chunks arrive, with O(chunk) memory —
// the expected-digest product for the condensed signature accumulates in
// a single modular residue, never a digest list.
//
// Failure is fast: a malformed entry, an out-of-order key, a skipped
// sequence number or a bad per-entry signature rejects the stream the
// moment the offending chunk is consumed. The one check that must wait
// is the condensed signature itself, which only exists in the footer —
// so in aggregate mode the rows released before the footer are
// chain-consistent but not yet anchored to the owner's key, and a caller
// acting on them before Consume returns from the footer (or relying on
// Finish to catch truncation) trusts the publisher exactly that far. In
// individual-signature mode every released row is fully verified.
//
// Verification failures surface the same named errors as VerifyResult,
// plus the stream-shape errors below.
type StreamVerifier struct {
	v    *Verifier
	q    engine.Query
	role accessctl.Role

	started bool // header consumed
	done    bool // footer consumed
	seq     uint64
	eff     engine.Query

	entryIdx    int          // global entry index, for error messages
	gPrev       hashx.Digest // g of the entry before pending (gLeft initially)
	pending     pendingEntry // by value, overwritten in place: no per-entry allocation
	havePending bool
	lastKey     uint64 // key-order tracking across chunk boundaries
	haveKey     bool

	// Signature mode is established by the first chunk that reveals it:
	// entry chunks carrying Sigs switch to individual, the footer's
	// AggSig to aggregate. Until then both paths accumulate.
	individual bool
	agg        *sig.AggVerifier

	// hVerify records per-chunk verification cost when the parent
	// Verifier carries an obs registry; nil otherwise.
	hVerify *obs.Histogram

	rows []engine.Row // rows released by the current Consume call
	err  error        // sticky: first failure is terminal for the stream
}

// pendingEntry is the one-entry lookahead: entry i's signed digest binds
// g(i-1) | g(i) | g(i+1), so it can only be completed once its successor
// (or the right boundary) is known.
type pendingEntry struct {
	g   hashx.Digest
	row *engine.Row
	sig sig.Signature // individual mode: the entry's own signature
	idx int
}

// Stream-shape failures. All of them mean "reject the stream".
var (
	ErrChunkSequence   = errors.New("verify: chunk out of sequence")
	ErrChunkShape      = errors.New("verify: chunk malformed")
	ErrStreamEnded     = errors.New("verify: chunk after footer")
	ErrStreamTruncated = errors.New("verify: stream truncated before footer")
)

// NewStreamVerifier starts verification of one streamed query result.
// q and role are the user's own query and rights, checked against the
// publisher's claimed rewrite exactly as in VerifyResult.
func (v *Verifier) NewStreamVerifier(q engine.Query, role accessctl.Role) *StreamVerifier {
	return &StreamVerifier{v: v, q: q, role: role, agg: v.Pub.NewAggVerifier(),
		hVerify: v.Obs.Hist(obs.StageVerify)}
}

// Done reports whether the footer has been consumed successfully.
func (sv *StreamVerifier) Done() bool { return sv.done }

// Finish must be called when the transport reports end-of-stream. It
// rejects streams that ended before the footer — the truncation attack a
// non-streaming verifier never has to think about.
func (sv *StreamVerifier) Finish() error {
	if sv.err != nil {
		return sv.err
	}
	if !sv.done {
		return ErrStreamTruncated
	}
	return nil
}

// Consume verifies one chunk and returns the result rows it releases.
// Rows are released once their position in the signature chain is fixed
// (one entry of lookahead), so the final rows of a stream arrive with the
// footer. Any error is terminal for the stream.
func (sv *StreamVerifier) Consume(c *engine.Chunk) ([]engine.Row, error) {
	if sv.hVerify != nil {
		// Deferred-arg idiom: time.Now() is evaluated here, the record at
		// return — one observation per consumed chunk.
		defer sv.hVerify.ObserveSince(time.Now())
	}
	if err := sv.consume(c); err != nil {
		sv.err = err // latch: a rejected chunk cannot be retried or replaced
		return nil, err
	}
	return sv.rows, nil
}

func (sv *StreamVerifier) consume(c *engine.Chunk) error {
	if sv.err != nil {
		return sv.err
	}
	if sv.done {
		return ErrStreamEnded
	}
	if c.Type == engine.ChunkError {
		return fmt.Errorf("verify: publisher aborted stream: %s", c.Err)
	}
	if c.Seq != sv.seq {
		return fmt.Errorf("%w: got %d, want %d", ErrChunkSequence, c.Seq, sv.seq)
	}
	sv.seq++
	sv.rows = nil // fresh slice per call: released rows stay valid after the next Consume
	switch c.Type {
	case engine.ChunkHeader:
		return sv.consumeHeader(c)
	case engine.ChunkEntries:
		return sv.consumeEntries(c)
	case engine.ChunkFooter:
		return sv.consumeFooter(c)
	default:
		return fmt.Errorf("%w: unknown chunk type %d", ErrChunkShape, c.Type)
	}
}

func (sv *StreamVerifier) consumeHeader(c *engine.Chunk) error {
	if sv.started {
		return fmt.Errorf("%w: duplicate header", ErrChunkShape)
	}
	if err := sv.v.checkRewrite(sv.q, sv.role, c.Effective); err != nil {
		return err
	}
	if c.KeyLo != c.Effective.KeyLo || c.KeyHi != c.Effective.KeyHi {
		return fmt.Errorf("%w: VO range [%d,%d] vs effective [%d,%d]", ErrRewriteMismatch, c.KeyLo, c.KeyHi, c.Effective.KeyLo, c.Effective.KeyHi)
	}
	gLeft, err := core.VerifyBoundary(sv.v.H, sv.v.Params, c.Left, core.Up, c.KeyLo)
	if err != nil {
		return fmt.Errorf("%w: left: %v", ErrBoundary, err)
	}
	sv.started = true
	sv.eff = c.Effective
	sv.gPrev = gLeft
	return nil
}

func (sv *StreamVerifier) consumeEntries(c *engine.Chunk) error {
	if !sv.started {
		return fmt.Errorf("%w: entries before header", ErrChunkShape)
	}
	if len(c.Entries) == 0 {
		return fmt.Errorf("%w: empty entries chunk", ErrChunkShape)
	}
	if len(c.Entries) > engine.MaxChunkRows {
		// The O(chunk) memory bound must hold against a *malicious*
		// publisher too: a chunk packing the whole result would quietly
		// reintroduce materialize-then-ship on the client.
		return fmt.Errorf("%w: %d entries exceeds the %d-row chunk cap", ErrChunkShape, len(c.Entries), engine.MaxChunkRows)
	}
	if len(c.Sigs) > 0 {
		if len(c.Sigs) != len(c.Entries) {
			return fmt.Errorf("%w: %d signatures for %d entries", ErrSignature, len(c.Sigs), len(c.Entries))
		}
		if !sv.individual {
			if sv.entryIdx > 0 {
				// Earlier chunks carried no signatures; a mode switch
				// mid-stream means some entries would go unsigned.
				return fmt.Errorf("%w: per-entry signatures appeared mid-stream", ErrSignature)
			}
			sv.individual = true
			sv.agg = nil
		}
	} else if sv.individual {
		return fmt.Errorf("%w: per-entry signatures missing mid-stream", ErrSignature)
	}
	lastKey, haveKey := sv.lastKey, sv.haveKey
	for i, e := range c.Entries {
		g, row, key, hasKey, err := sv.v.entryG(sv.eff, sv.role, e)
		if err != nil {
			return fmt.Errorf("entry %d: %w", sv.entryIdx, err)
		}
		if hasKey {
			if key < sv.eff.KeyLo || key > sv.eff.KeyHi {
				return fmt.Errorf("%w: entry %d key %d", ErrKeyOutOfRange, sv.entryIdx, key)
			}
			if haveKey && key < lastKey {
				return fmt.Errorf("%w: entry %d", ErrKeyOrder, sv.entryIdx)
			}
			lastKey, haveKey = key, true
		}
		var esig sig.Signature
		if sv.individual {
			esig = c.Sigs[i]
		}
		if err := sv.advance(g, row, esig); err != nil {
			return err
		}
		sv.entryIdx++
	}
	sv.lastKey, sv.haveKey = lastKey, haveKey
	return nil
}

// advance shifts the one-entry lookahead window: the newly reconstructed
// g completes the pending entry's signed digest, then becomes pending
// itself.
func (sv *StreamVerifier) advance(g hashx.Digest, row *engine.Row, esig sig.Signature) error {
	if sv.havePending {
		if err := sv.completePending(g); err != nil {
			return err
		}
		sv.gPrev = sv.pending.g
	}
	sv.pending = pendingEntry{g: g, row: row, sig: esig, idx: sv.entryIdx}
	sv.havePending = true
	return nil
}

// completePending folds the pending entry's digest into the signature
// check, given its successor digest, and releases its row.
func (sv *StreamVerifier) completePending(gNext hashx.Digest) error {
	p := &sv.pending
	digest := core.SigDigestFor(sv.v.H, sv.v.Params, sv.gPrev, p.g, gNext)
	if sv.individual {
		if !sv.v.Pub.Verify(digest, p.sig) {
			return fmt.Errorf("%w: entry %d", ErrSignature, p.idx)
		}
	} else {
		sv.agg.Add(digest)
	}
	if p.row != nil {
		sv.rows = append(sv.rows, *p.row)
	}
	return nil
}

func (sv *StreamVerifier) consumeFooter(c *engine.Chunk) error {
	if !sv.started {
		return fmt.Errorf("%w: footer before header", ErrChunkShape)
	}
	gRight, err := core.VerifyBoundary(sv.v.H, sv.v.Params, c.Right, core.Down, sv.eff.KeyHi)
	if err != nil {
		return fmt.Errorf("%w: right: %v", ErrBoundary, err)
	}

	if sv.entryIdx == 0 {
		// Empty range: the single digest binds pred and succ as adjacent.
		if c.PredPrevG != nil && len(c.PredPrevG) != sv.v.H.Size() {
			return fmt.Errorf("%w: PredPrevG width", ErrEntry)
		}
		digest := core.SigDigestFor(sv.v.H, sv.v.Params, c.PredPrevG, sv.gPrev, gRight)
		switch {
		case c.AggSig != nil:
			sv.agg.Add(digest)
			if !sv.agg.Verify(c.AggSig) {
				return fmt.Errorf("%w: aggregate", ErrSignature)
			}
		case len(c.Sigs) == 1:
			if !sv.v.Pub.Verify(digest, c.Sigs[0]) {
				return fmt.Errorf("%w: entry 0", ErrSignature)
			}
		default:
			return fmt.Errorf("%w: no signatures in VO", ErrSignature)
		}
		sv.done = true
		return nil
	}

	// Complete the last entry against the right boundary.
	if err := sv.completePending(gRight); err != nil {
		return err
	}
	switch {
	case sv.individual:
		if c.AggSig != nil || len(c.Sigs) > 0 {
			return fmt.Errorf("%w: trailing signatures in footer", ErrSignature)
		}
	case c.AggSig != nil:
		if !sv.agg.Verify(c.AggSig) {
			return fmt.Errorf("%w: aggregate", ErrSignature)
		}
	default:
		return fmt.Errorf("%w: no signatures in VO", ErrSignature)
	}
	sv.done = true
	return nil
}
