package verify_test

import (
	"strings"
	"sync"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

// joinFixture builds the PK-FK pair from the paper's setting: an Emp
// relation signed on its Dept foreign key, and a Dept relation signed on
// its primary key.
type joinFixture struct {
	h        *hashx.Hasher
	pub      *engine.Publisher
	jv       *verify.JoinVerifier
	role     accessctl.Role
	empRel   *relation.Relation
	deptRel  *relation.Relation
	empSR    *core.SignedRelation
	deptSR   *core.SignedRelation
	empPars  core.Params
	deptPars core.Params
}

func newJoinFixture(t testing.TB, empDepts []uint64, deptIDs []uint64) *joinFixture {
	t.Helper()
	h := hashx.New()
	k := signKey(t)

	empSchema := relation.Schema{
		Name:    "EmpByDept",
		KeyName: "Dept", // foreign key is the sort key, per Section 4.3
		Cols: []relation.Column{
			{Name: "Name", Type: relation.TypeString},
		},
	}
	empRel, err := relation.New(empSchema, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range empDepts {
		if _, err := empRel.Insert(relation.Tuple{Key: d, Attrs: []relation.Value{
			relation.StringVal(strings.Repeat("e", 1) + string(rune('A'+i))),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	deptSchema := relation.Schema{
		Name:    "Dept",
		KeyName: "DeptID",
		Cols: []relation.Column{
			{Name: "DeptName", Type: relation.TypeString},
		},
	}
	deptRel, err := relation.New(deptSchema, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deptIDs {
		if _, err := deptRel.Insert(relation.Tuple{Key: d, Attrs: []relation.Value{
			relation.StringVal("dept"),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	empPars, err := core.NewParams(0, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	deptPars := empPars
	empSR, err := core.Build(h, k, empPars, empRel)
	if err != nil {
		t.Fatal(err)
	}
	deptSR, err := core.Build(h, k, deptPars, deptRel)
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	pub := engine.NewPublisher(h, k.Public(), accessctl.NewPolicy(role))
	if err := pub.AddRelation(empSR, false); err != nil {
		t.Fatal(err)
	}
	if err := pub.AddRelation(deptSR, false); err != nil {
		t.Fatal(err)
	}
	jv := &verify.JoinVerifier{
		R: verify.New(h, k.Public(), empPars, empSchema),
		S: verify.New(h, k.Public(), deptPars, deptSchema),
	}
	return &joinFixture{
		h: h, pub: pub, jv: jv, role: role,
		empRel: empRel, deptRel: deptRel, empSR: empSR, deptSR: deptSR,
		empPars: empPars, deptPars: deptPars,
	}
}

func TestPKFKJoinRoundTrip(t *testing.T) {
	// Employees in departments 10,10,20,30; departments 10,20,30,40.
	f := newJoinFixture(t, []uint64{10, 10, 20, 30}, []uint64{10, 20, 30, 40})
	q := engine.JoinQuery{R: "EmpByDept", S: "Dept", KeyLo: 1, KeyHi: 25}
	res, err := f.pub.ExecuteJoin("all", q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.jv.VerifyJoin(q, f.role, res)
	if err != nil {
		t.Fatal(err)
	}
	// Employees in dept 10 (x2) and 20 (x1) are in range; each joins one
	// department row.
	if len(rows) != 3 {
		t.Fatalf("joined rows = %d, want 3", len(rows))
	}
	for _, jr := range rows {
		if jr.RRow.Key != jr.SRow.Key {
			t.Fatalf("join key mismatch: %d vs %d", jr.RRow.Key, jr.SRow.Key)
		}
	}
}

func TestPKFKJoinDetectsWithheldS(t *testing.T) {
	f := newJoinFixture(t, []uint64{10, 20}, []uint64{10, 20})
	q := engine.JoinQuery{R: "EmpByDept", S: "Dept"}
	res, err := f.pub.ExecuteJoin("all", q)
	if err != nil {
		t.Fatal(err)
	}
	// Publisher withholds one S point result entirely.
	delete(res.S, 20)
	if _, err := f.jv.VerifyJoin(q, f.role, res); err == nil {
		t.Fatal("missing S point result accepted")
	}
}

func TestPKFKJoinDetectsSpuriousS(t *testing.T) {
	f := newJoinFixture(t, []uint64{10}, []uint64{10, 20})
	q := engine.JoinQuery{R: "EmpByDept", S: "Dept"}
	res, err := f.pub.ExecuteJoin("all", q)
	if err != nil {
		t.Fatal(err)
	}
	// Attach an unsolicited S result (information the user did not ask
	// for and cannot trustfully attribute).
	extra, err := f.pub.Execute("all", engine.Query{Relation: "Dept", KeyLo: 20, KeyHi: 20})
	if err != nil {
		t.Fatal(err)
	}
	res.S[20] = extra
	if _, err := f.jv.VerifyJoin(q, f.role, res); err == nil {
		t.Fatal("spurious S result accepted")
	}
}

func TestPKFKJoinDetectsEmptySPoint(t *testing.T) {
	// Simulate a referential-integrity violation: the publisher claims
	// the S point query returned nothing. Build a fixture where dept 20
	// exists so the honest point result is non-empty, then substitute an
	// empty-range result for a different key... which cannot verify for
	// [20,20], so the attack must be detected.
	f := newJoinFixture(t, []uint64{20}, []uint64{20})
	q := engine.JoinQuery{R: "EmpByDept", S: "Dept"}
	res, err := f.pub.ExecuteJoin("all", q)
	if err != nil {
		t.Fatal(err)
	}
	// The strongest move available: an honestly-proven empty range that
	// does not match the point query's bounds.
	fake, err := f.pub.Execute("all", engine.Query{Relation: "Dept", KeyLo: 500, KeyHi: 600})
	if err != nil {
		t.Fatal(err)
	}
	res.S[20] = fake
	if _, err := f.jv.VerifyJoin(q, f.role, res); err == nil {
		t.Fatal("mismatched S point result accepted")
	}
}

func TestBandJoinRoundTrip(t *testing.T) {
	// R keys {5, 50, 500}; S keys {40, 60}. Pairs r<=s:
	// 5-40, 5-60, 50-60 => 3 rows. maxS=60 so R partition is [1,60]
	// containing {5,50}; minR=5 so S partition is [5,999] = {40,60}.
	f := newJoinFixture(t, []uint64{5, 50, 500}, []uint64{40, 60})
	q := engine.BandJoinQuery{R: "EmpByDept", S: "Dept"}
	res, err := f.pub.ExecuteBandJoin("all", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Fatal("non-empty band join reported empty")
	}
	rows, err := f.jv.VerifyBandJoin(q, f.role, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("band join rows = %d, want 3", len(rows))
	}
	for _, jr := range rows {
		if jr.RRow.Key > jr.SRow.Key {
			t.Fatalf("band condition violated: %d > %d", jr.RRow.Key, jr.SRow.Key)
		}
	}
}

func TestBandJoinEmpty(t *testing.T) {
	// All R keys above all S keys: empty join.
	f := newJoinFixture(t, []uint64{500, 600}, []uint64{40, 60})
	q := engine.BandJoinQuery{R: "EmpByDept", S: "Dept"}
	res, err := f.pub.ExecuteBandJoin("all", q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty {
		t.Fatal("separated relations must give an empty join")
	}
	if _, err := f.jv.VerifyBandJoin(q, f.role, res); err != nil {
		t.Fatalf("valid empty band join rejected: %v", err)
	}
}

func TestBandJoinEmptyRelations(t *testing.T) {
	for _, c := range []struct {
		name  string
		rKeys []uint64
		sKeys []uint64
	}{
		{"empty S", []uint64{10, 20}, nil},
		{"empty R", nil, []uint64{10, 20}},
		{"both empty", nil, nil},
	} {
		t.Run(c.name, func(t *testing.T) {
			f := newJoinFixture(t, c.rKeys, c.sKeys)
			q := engine.BandJoinQuery{R: "EmpByDept", S: "Dept"}
			res, err := f.pub.ExecuteBandJoin("all", q)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Empty {
				t.Fatal("expected empty join")
			}
			if _, err := f.jv.VerifyBandJoin(q, f.role, res); err != nil {
				t.Fatalf("valid empty band join rejected: %v", err)
			}
		})
	}
}

func TestBandJoinTamperedBoundRejected(t *testing.T) {
	f := newJoinFixture(t, []uint64{5, 50, 500}, []uint64{40, 60})
	q := engine.BandJoinQuery{R: "EmpByDept", S: "Dept"}
	res, err := f.pub.ExecuteBandJoin("all", q)
	if err != nil {
		t.Fatal(err)
	}
	// Claim a smaller max(S): serve the R partition for [1, 40] (hiding
	// employee 50) with a fully consistent VO for that range.
	inner, err := f.pub.Execute("all", engine.Query{Relation: "EmpByDept", KeyLo: 1, KeyHi: 40})
	if err != nil {
		t.Fatal(err)
	}
	res.R = inner
	if _, err := f.jv.VerifyBandJoin(q, f.role, res); err == nil {
		t.Fatal("shrunk R partition accepted")
	}
}

func TestBandJoinFakeEmptyRejected(t *testing.T) {
	// Join is non-empty (5 <= 40) but the publisher claims empty with
	// pivot 4: S ∩ [5, 999] is NOT empty, so the proof cannot be built
	// honestly; build the nearest dishonest variant and check rejection.
	f := newJoinFixture(t, []uint64{5}, []uint64{40})
	q := engine.BandJoinQuery{R: "EmpByDept", S: "Dept"}
	sEmpty, err := f.pub.Execute("all", engine.Query{Relation: "Dept", KeyLo: 61}) // honestly empty above 60
	if err != nil {
		t.Fatal(err)
	}
	rEmpty, err := f.pub.Execute("all", engine.Query{Relation: "EmpByDept", KeyLo: 1, KeyHi: 4})
	if err != nil {
		t.Fatal(err)
	}
	fake := &engine.BandJoinResult{Empty: true, Pivot: 4, SEmpty: sEmpty, REmpty: rEmpty}
	if _, err := f.jv.VerifyBandJoin(q, f.role, fake); err == nil {
		t.Fatal("fake empty band join accepted")
	}
	// Variant with a consistent S range but non-empty result rows.
	sAbove, err := f.pub.Execute("all", engine.Query{Relation: "Dept", KeyLo: 5})
	if err != nil {
		t.Fatal(err)
	}
	fake2 := &engine.BandJoinResult{Empty: true, Pivot: 4, SEmpty: sAbove, REmpty: rEmpty}
	if _, err := f.jv.VerifyBandJoin(q, f.role, fake2); err == nil {
		t.Fatal("fake empty band join with non-empty S accepted")
	}
}
