package verify_test

import (
	"errors"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
	"vcqr/internal/verify"
)

func TestPagedRoundTrip(t *testing.T) {
	f := newVFix(t) // 30 records
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1}
	res, err := f.pub.ExecutePaged("all", q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) < 4 {
		t.Fatalf("30 records at page size 7 gave %d pages", len(res.Pages))
	}
	rows, err := f.v.VerifyPaged(q, f.role, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != f.sr.Len() {
		t.Fatalf("paged rows = %d, want %d", len(rows), f.sr.Len())
	}
	// Rows arrive in key order across pages.
	for i := 1; i < len(rows); i++ {
		if rows[i].Key < rows[i-1].Key {
			t.Fatal("rows out of order across pages")
		}
	}
}

func TestPagedSinglePage(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1}
	res, err := f.pub.ExecutePaged("all", q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 1 {
		t.Fatalf("oversized page size gave %d pages", len(res.Pages))
	}
	if _, err := f.v.VerifyPaged(q, f.role, res); err != nil {
		t.Fatal(err)
	}
}

func TestPagedDroppedPageDetected(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1}
	res, err := f.pub.ExecutePaged("all", q, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Drop a middle page: the tiling check must catch the gap.
	res.Pages = append(res.Pages[:1], res.Pages[2:]...)
	if _, err := f.v.VerifyPaged(q, f.role, res); !errors.Is(err, verify.ErrPageTiling) {
		t.Fatalf("dropped page: %v", err)
	}
}

func TestPagedTruncatedTailDetected(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1}
	res, err := f.pub.ExecutePaged("all", q, 7)
	if err != nil {
		t.Fatal(err)
	}
	res.Pages = res.Pages[:len(res.Pages)-1]
	if _, err := f.v.VerifyPaged(q, f.role, res); !errors.Is(err, verify.ErrPageTiling) {
		t.Fatalf("truncated tail: %v", err)
	}
}

func TestPagedEmptyRejected(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1}
	if _, err := f.v.VerifyPaged(q, f.role, &engine.PagedResult{KeyLo: 1, KeyHi: 1<<20 - 1}); !errors.Is(err, verify.ErrPageEmpty) {
		t.Fatalf("empty paged result: %v", err)
	}
	if _, err := f.pub.ExecutePaged("all", q, 0); err == nil {
		t.Fatal("page size 0 accepted")
	}
}

func TestPagedUnderRoleRewrite(t *testing.T) {
	// A role-restricted paged query: the overall range is clamped to the
	// role's rights and the tiling check runs against the clamped range.
	f := newVFix(t)
	limited := accessctl.Role{Name: "limited", KeyHi: 1 << 19}
	pub := engine.NewPublisher(f.h, signKey(t).Public(), accessctl.NewPolicy(limited))
	if err := pub.AddRelation(f.sr, false); err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1}
	res, err := pub.ExecutePaged("limited", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyHi != 1<<19 {
		t.Fatalf("overall KeyHi = %d, want clamp to %d", res.KeyHi, 1<<19)
	}
	rows, err := f.v.VerifyPaged(q, limited, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Key > 1<<19 {
			t.Fatalf("row %d outside the role's rights", r.Key)
		}
	}
	// Presenting the same pages to an unrestricted verifier expectation
	// must fail (the rewrite differs).
	if _, err := f.v.VerifyPaged(q, f.role, res); err == nil {
		t.Fatal("clamped pages accepted under unrestricted expectations")
	}
}

func TestPagedWithFiltersAndProjection(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{
		Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1,
		Project: []string{"Name"},
	}
	res, err := f.pub.ExecutePaged("all", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.v.VerifyPaged(q, f.role, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Values) != 1 {
			t.Fatal("projection not applied across pages")
		}
	}
}
