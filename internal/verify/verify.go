// Package verify is the user side of the data-publishing model (Figure
// 3): given the owner's public key and domain parameters (obtained over an
// authenticated channel) it checks a publisher's result against its
// verification object and either returns the verified rows or an error
// naming what failed.
//
// The checks implement the completeness analysis of Section 3.2 plus the
// precision requirement of Section 3: every covered record reconstructs a
// g digest, the signature chain binds consecutive digests, the boundary
// proofs place the adjacent records strictly outside the rewritten range,
// and nothing beyond the query's projection is accepted as disclosed.
package verify

import (
	"errors"
	"fmt"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/obs"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// Verification failures. All of them mean "reject the result".
var (
	ErrRewriteMismatch  = errors.New("verify: effective query does not match the expected rewrite")
	ErrBoundary         = errors.New("verify: boundary proof invalid")
	ErrEntry            = errors.New("verify: entry malformed")
	ErrKeyOutOfRange    = errors.New("verify: entry key outside effective range")
	ErrKeyOrder         = errors.New("verify: entry keys out of order")
	ErrFilterViolation  = errors.New("verify: result entry fails the query filters")
	ErrFilteredMatches  = errors.New("verify: filtered entry actually satisfies the query")
	ErrPrecision        = errors.New("verify: disclosure does not match the projection")
	ErrHiddenNotAllowed = errors.New("verify: hidden entry without a record-level policy")
	ErrVisibility       = errors.New("verify: hidden entry visibility disclosure invalid")
	ErrSignature        = errors.New("verify: signature check failed")
	ErrDistinct         = errors.New("verify: duplicate elision without DISTINCT")
)

// Verifier holds the user's trusted inputs: the owner's public key, the
// domain parameters, and the relation schema.
type Verifier struct {
	H      *hashx.Hasher
	Pub    *sig.PublicKey
	Params core.Params
	Schema relation.Schema

	// Obs, when set, receives the verifier-side cost (obs.StageVerify,
	// one observation per consumed chunk) — the live measurement of the
	// paper's client overhead claim. It never affects what is accepted.
	Obs *obs.Registry
}

// New constructs a verifier.
func New(h *hashx.Hasher, pub *sig.PublicKey, p core.Params, schema relation.Schema) *Verifier {
	return &Verifier{H: h, Pub: pub, Params: p, Schema: schema}
}

// VerifyResult checks a publisher result against the query the user
// issued and the user's knowledge of their own rights (role). On success
// it returns the verified result rows in key order.
//
// It is a thin drain over the incremental StreamVerifier: the result is
// sliced back into its chunk sequence and consumed in order, so the
// materialized and streaming verification paths enforce exactly the same
// checks.
func (v *Verifier) VerifyResult(q engine.Query, role accessctl.Role, res *engine.Result) ([]engine.Row, error) {
	sv := v.NewStreamVerifier(q, role)
	rows := make([]engine.Row, 0, len(res.VO.Entries))
	for _, c := range engine.ChunkResult(res, engine.DefaultChunkRows) {
		released, err := sv.Consume(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, released...)
	}
	if err := sv.Finish(); err != nil {
		return nil, err
	}
	return rows, nil
}

// checkRewrite recomputes the rewrite the publisher should have performed
// and compares. A publisher that silently narrows (hiding records) or
// widens (leaking records) the range is caught here; a lying *rewrite*
// combined with a consistent VO would still verify structurally, which is
// why the user must know their own rights — exactly the paper's trust
// model, where rewriting is mandated by the owner's policy.
func (v *Verifier) checkRewrite(q engine.Query, role accessctl.Role, eff engine.Query) error {
	lo, hi := q.KeyLo, q.KeyHi
	if lo <= v.Params.L {
		lo = v.Params.L + 1
	}
	if hi == 0 || hi >= v.Params.U {
		hi = v.Params.U - 1
	}
	lo, hi, ok := role.ClampRange(lo, hi)
	if !ok {
		return fmt.Errorf("%w: rewrite empties the range", ErrRewriteMismatch)
	}
	if eff.KeyLo != lo || eff.KeyHi != hi {
		return fmt.Errorf("%w: expected [%d,%d], got [%d,%d]", ErrRewriteMismatch, lo, hi, eff.KeyLo, eff.KeyHi)
	}
	wantCols := role.FilterCols(v.Schema, q.Project)
	if !sameCols(wantCols, eff.Project) {
		return fmt.Errorf("%w: projection", ErrRewriteMismatch)
	}
	if eff.Distinct != q.Distinct || len(eff.Filters) != len(q.Filters) {
		return fmt.Errorf("%w: flags or filters", ErrRewriteMismatch)
	}
	return nil
}

func sameCols(a, b []string) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// entryG reconstructs g for one VO entry and performs the per-entry
// semantic checks. It returns the row for EntryResult entries and the key
// when the entry discloses one.
func (v *Verifier) entryG(eff engine.Query, role accessctl.Role, e engine.VOEntry) (hashx.Digest, *engine.Row, uint64, bool, error) {
	nLeaves := len(v.Schema.Cols) + 1
	switch e.Mode {
	case engine.EntryResult, engine.EntryFilteredVisible:
		tuple, disclosed, err := v.openDisclosure(e)
		if err != nil {
			return nil, nil, 0, false, err
		}
		if e.Mode == engine.EntryResult {
			if err := v.checkResultDisclosure(eff, e); err != nil {
				return nil, nil, 0, false, err
			}
			if !passesDisclosed(v.Schema, eff, disclosed) {
				return nil, nil, 0, false, ErrFilterViolation
			}
		} else {
			if err := v.checkFilteredDisclosure(eff, e, disclosed); err != nil {
				return nil, nil, 0, false, err
			}
		}
		attrRoot, err := core.AttrRootFromDisclosure(v.H, nLeaves, tuple, hiddenMap(e, tuple, nLeaves))
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("%w: %v", ErrEntry, err)
		}
		g, err := core.EntryG(v.H, v.Params, e.Key, core.KindRecord, e.Chain, attrRoot)
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("%w: %v", ErrEntry, err)
		}
		var row *engine.Row
		if e.Mode == engine.EntryResult {
			row = &engine.Row{Key: e.Key, Values: e.Disclosed}
		}
		return g, row, e.Key, true, nil

	case engine.EntryFilteredHidden:
		if role.VisibilityCol == "" {
			return nil, nil, 0, false, ErrHiddenNotAllowed
		}
		visCol := v.Schema.ColIndex(role.VisibilityCol)
		if visCol < 0 {
			return nil, nil, 0, false, ErrHiddenNotAllowed
		}
		if len(e.Disclosed) != 1 || e.Disclosed[0].Col != visCol ||
			!e.Disclosed[0].Val.Equal(relation.BoolVal(false)) {
			return nil, nil, 0, false, ErrVisibility
		}
		tuple, _, err := v.openDisclosure(e)
		if err != nil {
			return nil, nil, 0, false, err
		}
		attrRoot, err := core.AttrRootFromDisclosure(v.H, nLeaves, tuple, hiddenMap(e, tuple, nLeaves))
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("%w: %v", ErrEntry, err)
		}
		if len(e.UpCombined) != v.H.Size() || len(e.DownCombined) != v.H.Size() {
			return nil, nil, 0, false, fmt.Errorf("%w: hidden entry chain digests", ErrEntry)
		}
		g := core.GFromComponents(v.H, core.KindRecord, e.UpCombined, e.DownCombined, attrRoot)
		return g, nil, 0, false, nil

	case engine.EntryElidedDup:
		if !eff.Distinct {
			return nil, nil, 0, false, ErrDistinct
		}
		if len(e.G) != v.H.Size() {
			return nil, nil, 0, false, fmt.Errorf("%w: elided dup digest", ErrEntry)
		}
		return e.G, nil, 0, false, nil

	default:
		return nil, nil, 0, false, fmt.Errorf("%w: unknown mode %d", ErrEntry, e.Mode)
	}
}

// openDisclosure converts an entry's disclosed attributes into the leaf
// pre-image map used for attribute-root reconstruction, rejecting
// duplicate or out-of-range columns.
func (v *Verifier) openDisclosure(e engine.VOEntry) (map[int][]byte, map[int]relation.Value, error) {
	pre := make(map[int][]byte, len(e.Disclosed))
	vals := make(map[int]relation.Value, len(e.Disclosed))
	for _, d := range e.Disclosed {
		if d.Col < 0 || d.Col >= len(v.Schema.Cols) {
			return nil, nil, fmt.Errorf("%w: disclosed column %d out of schema", ErrEntry, d.Col)
		}
		leaf := d.Col + 1
		if _, dup := pre[leaf]; dup {
			return nil, nil, fmt.Errorf("%w: column %d disclosed twice", ErrEntry, d.Col)
		}
		pre[leaf] = d.Val.Encode()
		vals[d.Col] = d.Val
	}
	return pre, vals, nil
}

// hiddenMap assigns the entry's hidden leaf digests to the leaf indexes
// not covered by the disclosure, in ascending order.
func hiddenMap(e engine.VOEntry, disclosed map[int][]byte, nLeaves int) map[int]hashx.Digest {
	hidden := make(map[int]hashx.Digest, len(e.HiddenLeaves))
	j := 0
	for i := 0; i < nLeaves && j < len(e.HiddenLeaves); i++ {
		if _, ok := disclosed[i]; ok {
			continue
		}
		hidden[i] = e.HiddenLeaves[j]
		j++
	}
	return hidden
}

// checkResultDisclosure enforces precision: a result entry must disclose
// exactly the projected columns — no more (information leak) and no less
// (unusable result).
func (v *Verifier) checkResultDisclosure(eff engine.Query, e engine.VOEntry) error {
	want := map[int]bool{}
	if eff.Project == nil {
		for i := range v.Schema.Cols {
			want[i] = true
		}
	} else {
		for _, name := range eff.Project {
			i := v.Schema.ColIndex(name)
			if i < 0 {
				return fmt.Errorf("%w: unknown projected column %q", ErrEntry, name)
			}
			want[i] = true
		}
	}
	if len(e.Disclosed) != len(want) {
		return fmt.Errorf("%w: %d disclosed, %d projected", ErrPrecision, len(e.Disclosed), len(want))
	}
	for _, d := range e.Disclosed {
		if !want[d.Col] {
			return fmt.Errorf("%w: column %d not projected", ErrPrecision, d.Col)
		}
	}
	return nil
}

// checkFilteredDisclosure validates a Case 1 entry: every filter column
// must be disclosed, and the disclosed values must fail at least one
// filter — otherwise the publisher is withholding a qualifying tuple.
func (v *Verifier) checkFilteredDisclosure(eff engine.Query, e engine.VOEntry, vals map[int]relation.Value) error {
	if len(eff.Filters) == 0 {
		return fmt.Errorf("%w: filtered entry in an unfiltered query", ErrFilteredMatches)
	}
	for _, f := range eff.Filters {
		col := v.Schema.ColIndex(f.Col)
		if _, ok := vals[col]; !ok {
			return fmt.Errorf("%w: filter column %q not disclosed", ErrEntry, f.Col)
		}
	}
	if passesDisclosed(v.Schema, eff, vals) {
		return ErrFilteredMatches
	}
	return nil
}

// passesDisclosed evaluates the query filters over disclosed values;
// missing columns count as failing (conservative: the result entry must
// disclose every filter column via the projection check or the values
// would be unusable anyway).
func passesDisclosed(schema relation.Schema, eff engine.Query, vals map[int]relation.Value) bool {
	for _, f := range eff.Filters {
		val, ok := vals[schema.ColIndex(f.Col)]
		if !ok || !f.Eval(val) {
			return false
		}
	}
	return true
}
