package verify

import (
	"errors"
	"fmt"

	"vcqr/internal/engine"
	"vcqr/internal/relation"
)

// Aggregate computation over *verified* rows (Section 4.2: "For some
// queries, the user may want to retain the duplicates, e.g. for the
// computation of SUM and AVG"). These helpers run entirely client-side:
// verification guarantees the rows are complete and authentic, so the
// aggregates computed from them are trustworthy without any additional
// protocol.

// ErrNoRows reports an aggregate over zero rows where undefined (AVG).
var ErrNoRows = errors.New("verify: aggregate over zero rows")

// Count returns the number of verified rows.
func Count(rows []engine.Row) int { return len(rows) }

// SumKeys sums the key attribute across rows.
func SumKeys(rows []engine.Row) uint64 {
	var s uint64
	for _, r := range rows {
		s += r.Key
	}
	return s
}

// AvgKeys averages the key attribute across rows.
func AvgKeys(rows []engine.Row) (float64, error) {
	if len(rows) == 0 {
		return 0, ErrNoRows
	}
	return float64(SumKeys(rows)) / float64(len(rows)), nil
}

// colValue finds the disclosed value of a column in a row.
func colValue(schema relation.Schema, row engine.Row, col string) (relation.Value, error) {
	idx := schema.ColIndex(col)
	if idx < 0 {
		return relation.Value{}, fmt.Errorf("verify: no column %q", col)
	}
	for _, d := range row.Values {
		if d.Col == idx {
			return d.Val, nil
		}
	}
	return relation.Value{}, fmt.Errorf("verify: column %q not disclosed in row", col)
}

// SumInt sums an integer column across rows; every row must disclose it.
func SumInt(schema relation.Schema, rows []engine.Row, col string) (int64, error) {
	var s int64
	for _, r := range rows {
		v, err := colValue(schema, r, col)
		if err != nil {
			return 0, err
		}
		if v.Type != relation.TypeInt {
			return 0, fmt.Errorf("verify: column %q is %v, not int", col, v.Type)
		}
		s += v.Int
	}
	return s, nil
}

// AvgInt averages an integer column across rows.
func AvgInt(schema relation.Schema, rows []engine.Row, col string) (float64, error) {
	if len(rows) == 0 {
		return 0, ErrNoRows
	}
	s, err := SumInt(schema, rows, col)
	if err != nil {
		return 0, err
	}
	return float64(s) / float64(len(rows)), nil
}

// MinMaxKeys returns the smallest and largest keys among rows.
func MinMaxKeys(rows []engine.Row) (lo, hi uint64, err error) {
	if len(rows) == 0 {
		return 0, 0, ErrNoRows
	}
	lo, hi = rows[0].Key, rows[0].Key
	for _, r := range rows[1:] {
		if r.Key < lo {
			lo = r.Key
		}
		if r.Key > hi {
			hi = r.Key
		}
	}
	return lo, hi, nil
}
