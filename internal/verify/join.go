package verify

import (
	"errors"
	"fmt"
	"sort"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
)

// Join verification failures.
var (
	ErrJoinIntegrity = errors.New("verify: join omits a matching S tuple (referential integrity)")
	ErrJoinSpurious  = errors.New("verify: join carries S results for keys not in R")
	ErrBandShape     = errors.New("verify: band join partitions inconsistent")
)

// JoinVerifier verifies the two sides of a join with their respective
// domain parameters and schemas.
type JoinVerifier struct {
	R, S *Verifier
}

// VerifyJoin checks a PK-FK join result (Section 4.3): the R-side range
// result is verified as usual; then every distinct foreign-key value in
// the R rows must come with a verified point result on S containing at
// least one tuple (referential integrity mandates a match, so an empty
// point result means the publisher withheld it).
func (jv *JoinVerifier) VerifyJoin(q engine.JoinQuery, role accessctl.Role, res *engine.JoinResult) ([]engine.JoinedRow, error) {
	rRows, err := jv.R.VerifyResult(engine.Query{
		Relation: q.R, KeyLo: q.KeyLo, KeyHi: q.KeyHi, Project: q.RProject,
	}, role, res.R)
	if err != nil {
		return nil, fmt.Errorf("join R side: %w", err)
	}
	need := map[uint64]bool{}
	for _, row := range rRows {
		need[row.Key] = true
	}
	for v := range res.S {
		if !need[v] {
			return nil, fmt.Errorf("%w: key %d", ErrJoinSpurious, v)
		}
	}
	sRows := make(map[uint64][]engine.Row, len(need))
	for v := range need {
		sRes, ok := res.S[v]
		if !ok {
			return nil, fmt.Errorf("%w: no S result for key %d", ErrJoinIntegrity, v)
		}
		rows, err := jv.S.VerifyResult(engine.Query{
			Relation: q.S, KeyLo: v, KeyHi: v, Project: q.SProject,
		}, role, sRes)
		if err != nil {
			return nil, fmt.Errorf("join S side (pk %d): %w", v, err)
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("%w: key %d has no S tuple", ErrJoinIntegrity, v)
		}
		sRows[v] = rows
	}
	var out []engine.JoinedRow
	for _, r := range rRows {
		for _, s := range sRows[r.Key] {
			out = append(out, engine.JoinedRow{RRow: r, SRow: s})
		}
	}
	return out, nil
}

// VerifyBandJoin checks an R.key <= S.key band join per the Section 4.3
// bullets: the R partition must be complete for (L, max(S.Aj)] and the S
// partition for [min(R.Ai), U); an empty join is attested by a pivot v
// with verified proofs that S has no key above v and R none at or below
// v. Returns the joined pairs.
func (jv *JoinVerifier) VerifyBandJoin(q engine.BandJoinQuery, role accessctl.Role, res *engine.BandJoinResult) ([]engine.JoinedRow, error) {
	if res.Empty {
		return nil, jv.verifyEmptyBand(q, role, res)
	}
	if res.R == nil || res.S == nil {
		return nil, fmt.Errorf("%w: missing partition", ErrBandShape)
	}
	// The partitions' stated ranges.
	rLo, rHi := res.R.Effective.KeyLo, res.R.Effective.KeyHi
	sLo, sHi := res.S.Effective.KeyLo, res.S.Effective.KeyHi
	if rLo != jv.R.Params.L+1 || sHi != jv.S.Params.U-1 {
		return nil, fmt.Errorf("%w: partitions do not span the domain ends", ErrBandShape)
	}
	rRows, err := jv.R.VerifyResult(engine.Query{
		Relation: q.R, KeyLo: rLo, KeyHi: rHi, Project: q.RProject,
	}, role, res.R)
	if err != nil {
		return nil, fmt.Errorf("band R partition: %w", err)
	}
	sRows, err := jv.S.VerifyResult(engine.Query{
		Relation: q.S, KeyLo: sLo, KeyHi: sHi, Project: q.SProject,
	}, role, res.S)
	if err != nil {
		return nil, fmt.Errorf("band S partition: %w", err)
	}
	if len(rRows) == 0 || len(sRows) == 0 {
		return nil, fmt.Errorf("%w: empty partition in a non-empty join", ErrBandShape)
	}
	// Cross-consistency: the R partition's upper bound must equal the
	// verified max(S), and the S partition's lower bound the verified
	// min(R) — the two bullets of Section 4.3.
	maxS := sRows[len(sRows)-1].Key
	minR := rRows[0].Key
	if rHi != maxS {
		return nil, fmt.Errorf("%w: R bound %d != max(S) %d", ErrBandShape, rHi, maxS)
	}
	if sLo != minR {
		return nil, fmt.Errorf("%w: S bound %d != min(R) %d", ErrBandShape, sLo, minR)
	}
	var out []engine.JoinedRow
	// sRows is sorted; for each r, pair with all s >= r.key.
	for _, r := range rRows {
		i := sort.Search(len(sRows), func(i int) bool { return sRows[i].Key >= r.Key })
		for ; i < len(sRows); i++ {
			out = append(out, engine.JoinedRow{RRow: r, SRow: sRows[i]})
		}
	}
	return out, nil
}

// verifyEmptyBand checks the pivot separation proofs.
func (jv *JoinVerifier) verifyEmptyBand(q engine.BandJoinQuery, role accessctl.Role, res *engine.BandJoinResult) error {
	v := res.Pivot
	// S ∩ [v+1, U-1] must be proven empty (unless vacuous: v+1 > U-1).
	if v+1 <= jv.S.Params.U-1 {
		if res.SEmpty == nil {
			return fmt.Errorf("%w: missing S emptiness proof", ErrBandShape)
		}
		rows, err := jv.S.VerifyResult(engine.Query{Relation: q.S, KeyLo: v + 1}, role, res.SEmpty)
		if err != nil {
			return fmt.Errorf("band S emptiness: %w", err)
		}
		if len(rows) != 0 {
			return fmt.Errorf("%w: S has keys above pivot %d", ErrBandShape, v)
		}
	}
	// R ∩ [L+1, v] must be proven empty (unless vacuous: v < L+1).
	if v >= jv.R.Params.L+1 {
		if res.REmpty == nil {
			return fmt.Errorf("%w: missing R emptiness proof", ErrBandShape)
		}
		rows, err := jv.R.VerifyResult(engine.Query{Relation: q.R, KeyLo: jv.R.Params.L + 1, KeyHi: v}, role, res.REmpty)
		if err != nil {
			return fmt.Errorf("band R emptiness: %w", err)
		}
		if len(rows) != 0 {
			return fmt.Errorf("%w: R has keys at or below pivot %d", ErrBandShape, v)
		}
	}
	return nil
}
