package verify

import (
	"errors"
	"fmt"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
)

// Union verification failures.
var (
	ErrUnionShape  = errors.New("verify: union result shape does not match the query")
	ErrUnionMember = errors.New("verify: union member missing despite non-empty rights")
)

// VerifyUnion checks a union-of-ranges result: every member range that
// intersects the caller's rights must carry a verified result; ranges
// entirely outside the rights must be nil. Rows concatenate in range
// order (ranges are disjoint and ascending, so no tuple is counted
// twice).
func (v *Verifier) VerifyUnion(uq engine.UnionQuery, role accessctl.Role, res *engine.UnionResult) ([]engine.Row, error) {
	if len(uq.Ranges) == 0 || len(res.Members) != len(uq.Ranges) {
		return nil, fmt.Errorf("%w: %d members for %d ranges", ErrUnionShape, len(res.Members), len(uq.Ranges))
	}
	for i, r := range uq.Ranges {
		if r.Lo > r.Hi {
			return nil, fmt.Errorf("%w: range %d inverted", ErrUnionShape, i)
		}
		if i > 0 && r.Lo <= uq.Ranges[i-1].Hi {
			return nil, fmt.Errorf("%w: ranges %d and %d overlap", ErrUnionShape, i-1, i)
		}
	}
	var out []engine.Row
	for i, r := range uq.Ranges {
		// Does this range survive the caller's own rights?
		lo, hi := r.Lo, r.Hi
		if lo <= v.Params.L {
			lo = v.Params.L + 1
		}
		if hi == 0 || hi >= v.Params.U {
			hi = v.Params.U - 1
		}
		_, _, allowed := role.ClampRange(lo, hi)
		member := res.Members[i]
		if !allowed {
			if member != nil {
				return nil, fmt.Errorf("%w: member %d present despite empty rights", ErrUnionShape, i)
			}
			continue
		}
		if member == nil {
			return nil, fmt.Errorf("%w: member %d", ErrUnionMember, i)
		}
		q := engine.Query{
			Relation: uq.Relation, KeyLo: r.Lo, KeyHi: r.Hi,
			Filters: uq.Filters, Project: uq.Project, Distinct: uq.Distinct,
		}
		rows, err := v.VerifyResult(q, role, member)
		if err != nil {
			return nil, fmt.Errorf("union member %d: %w", i, err)
		}
		out = append(out, rows...)
	}
	return out, nil
}
