package verify_test

import (
	"errors"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
	"vcqr/internal/verify"
)

func TestNotEqualDecomposition(t *testing.T) {
	uq, err := engine.NotEqual("Emp", 500, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(uq.Ranges) != 2 {
		t.Fatalf("ranges = %v", uq.Ranges)
	}
	if uq.Ranges[0] != (engine.KeyRange{Lo: 1, Hi: 499}) ||
		uq.Ranges[1] != (engine.KeyRange{Lo: 501, Hi: 999}) {
		t.Fatalf("ranges = %v", uq.Ranges)
	}
	// Edge keys produce a single range.
	uq, err = engine.NotEqual("Emp", 1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(uq.Ranges) != 1 || uq.Ranges[0].Lo != 2 {
		t.Fatalf("ranges at edge = %v", uq.Ranges)
	}
	if _, err := engine.NotEqual("Emp", 0, 0, 1000); err == nil {
		t.Fatal("key at L accepted")
	}
}

// TestNotEqualRoundTrip runs K != key end to end: the union result must
// contain every record except those with the excluded key.
func TestNotEqualRoundTrip(t *testing.T) {
	f := newVFix(t)
	// Pick an existing key to exclude.
	exclude := f.sr.Recs[3].Key()
	uq, err := engine.NotEqual("Emp", exclude, f.sr.Params.L, f.sr.Params.U)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.pub.ExecuteUnion("all", uq)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.v.VerifyUnion(uq, f.role, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != f.sr.Len()-1 {
		t.Fatalf("rows = %d, want %d", len(rows), f.sr.Len()-1)
	}
	for _, r := range rows {
		if r.Key == exclude {
			t.Fatalf("excluded key %d present", exclude)
		}
	}
}

func TestUnionOverlapRejected(t *testing.T) {
	f := newVFix(t)
	uq := engine.UnionQuery{Relation: "Emp", Ranges: []engine.KeyRange{
		{Lo: 1, Hi: 100}, {Lo: 50, Hi: 200},
	}}
	if _, err := f.pub.ExecuteUnion("all", uq); err == nil {
		t.Fatal("overlapping ranges accepted by publisher")
	}
	// Verifier independently rejects overlap.
	fake := &engine.UnionResult{Members: make([]*engine.Result, 2)}
	if _, err := f.v.VerifyUnion(uq, f.role, fake); !errors.Is(err, verify.ErrUnionShape) {
		t.Fatalf("verifier overlap: %v", err)
	}
}

func TestUnionMissingMemberRejected(t *testing.T) {
	f := newVFix(t)
	uq := engine.UnionQuery{Relation: "Emp", Ranges: []engine.KeyRange{
		{Lo: 1, Hi: 1000}, {Lo: 2000, Hi: 1 << 19},
	}}
	res, err := f.pub.ExecuteUnion("all", uq)
	if err != nil {
		t.Fatal(err)
	}
	res.Members[1] = nil // publisher silently drops a member
	if _, err := f.v.VerifyUnion(uq, f.role, res); !errors.Is(err, verify.ErrUnionMember) {
		t.Fatalf("missing member: %v", err)
	}
}

func TestUnionRespectsRowPolicy(t *testing.T) {
	// A member range entirely outside the role's rights must be nil; the
	// verifier knows that from its own policy knowledge.
	f := newVFix(t)
	limited := accessctl.Role{Name: "limited", KeyHi: 1 << 10}
	pub := engine.NewPublisher(f.h, signKey(t).Public(), accessctl.NewPolicy(limited))
	if err := pub.AddRelation(f.sr, false); err != nil {
		t.Fatal(err)
	}
	uq := engine.UnionQuery{Relation: "Emp", Ranges: []engine.KeyRange{
		{Lo: 1, Hi: 1 << 10},           // inside rights
		{Lo: 1<<10 + 1, Hi: 1<<20 - 1}, // entirely outside rights
	}}
	res, err := pub.ExecuteUnion("limited", uq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Members[1] != nil {
		t.Fatal("out-of-rights member should be nil")
	}
	if _, err := f.v.VerifyUnion(uq, limited, res); err != nil {
		t.Fatalf("legitimate union rejected: %v", err)
	}
	// A publisher ignoring the policy and answering the second member
	// anyway is rejected.
	full, err := f.pub.ExecuteUnion("all", uq)
	if err != nil {
		t.Fatal(err)
	}
	res.Members[1] = full.Members[1]
	if _, err := f.v.VerifyUnion(uq, limited, res); err == nil {
		t.Fatal("out-of-rights member accepted")
	}
}
