package verify

import (
	"errors"
	"fmt"

	"vcqr/internal/accessctl"
	"vcqr/internal/engine"
	"vcqr/internal/partition"
)

// ChunkVerifier is the incremental verification interface a streaming
// transport drives: one Consume per chunk in arrival order, then Finish
// at end-of-stream. StreamVerifier implements it for unpartitioned
// streams, ShardStreamVerifier for fan-out streams over a partitioned
// publication.
type ChunkVerifier interface {
	Consume(c *engine.Chunk) ([]engine.Row, error)
	Finish() error
}

// Shard-level stream failures. Like the chunk-shape errors, they mean
// "reject the stream"; unlike the signature errors they fire as early as
// the offending chunk, attributing the failure to a shard by index.
var (
	// ErrShardSequence reports chunks whose shard tags contradict the
	// authenticated partition spec: a hand-off that skips a covering
	// shard, goes backwards, or names a shard outside the cover.
	ErrShardSequence = errors.New("verify: shard chunks out of sequence")
	// ErrShardSpan reports an entry whose disclosed key lies outside the
	// span of the shard its chunk is tagged with.
	ErrShardSpan = errors.New("verify: entry key outside its shard's span")
	// ErrShardTruncated reports a footer that arrived while interior
	// covering shards had not delivered their chunks.
	ErrShardTruncated = errors.New("verify: stream ended before all covering shards")
	// ErrShardContinuity reports a footer whose per-shard accounting
	// does not match the chunks actually observed.
	ErrShardContinuity = errors.New("verify: footer shard accounting does not match observed chunks")
)

// ShardStreamVerifier verifies a fan-out stream from a range-partitioned
// publisher. Soundness comes entirely from the wrapped StreamVerifier —
// the signature chain spans shard hand-offs exactly as it spans chunk
// boundaries, so a dropped or reordered shard is caught no later than
// the footer's condensed signature. What the wrapper adds, using the
// partition spec obtained over the authenticated channel, is fail-fast
// attribution: shard tags must walk the covering shards in hand-off
// order, disclosed keys must lie inside the tagged shard's span, and the
// footer's per-shard accounting must match what was observed — so an
// interior shard whose chunks went missing is named the moment its slot
// is skipped, not after the whole stream has been consumed.
type ShardStreamVerifier struct {
	inner *StreamVerifier
	spec  partition.Spec
	sub   []partition.SubRange // covering sub-ranges, hand-off order

	pos     int  // index into sub of the shard currently delivering
	started bool // first entries chunk seen
	counts  map[int]uint64
	err     error
}

// NewShardStreamVerifier starts verification of one fan-out stream. The
// spec is the partition layout from the owner's authenticated parameters;
// q and role are the user's own query and rights, checked against the
// publisher's claimed rewrite exactly as in the unpartitioned verifier.
// Construction fails if the rewrite leaves an empty range (the same
// condition under which the publisher refuses the query).
func (v *Verifier) NewShardStreamVerifier(spec partition.Spec, q engine.Query, role accessctl.Role) (*ShardStreamVerifier, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eff, err := engine.EffectiveQuery(v.Params, v.Schema, role, q)
	if err != nil {
		return nil, err
	}
	sub := spec.Decompose(eff.KeyLo, eff.KeyHi)
	if len(sub) == 0 {
		return nil, fmt.Errorf("%w: effective range outside every shard span", partition.ErrSpec)
	}
	return &ShardStreamVerifier{
		inner:  v.NewStreamVerifier(q, role),
		spec:   spec,
		sub:    sub,
		counts: make(map[int]uint64, len(sub)),
	}, nil
}

// Done reports whether the footer has been consumed successfully.
func (sv *ShardStreamVerifier) Done() bool { return sv.inner.Done() }

// Finish must be called when the transport reports end-of-stream.
func (sv *ShardStreamVerifier) Finish() error {
	if sv.err != nil {
		return sv.err
	}
	return sv.inner.Finish()
}

// Consume verifies one chunk: the full chain/boundary/signature checks of
// the inner verifier first, then the shard bookkeeping. Any error is
// terminal for the stream.
func (sv *ShardStreamVerifier) Consume(c *engine.Chunk) ([]engine.Row, error) {
	if sv.err != nil {
		return nil, sv.err
	}
	rows, err := sv.inner.Consume(c)
	if err != nil {
		sv.err = err
		return nil, err
	}
	if err := sv.track(c); err != nil {
		sv.err = err
		return nil, err
	}
	return rows, nil
}

func (sv *ShardStreamVerifier) track(c *engine.Chunk) error {
	switch c.Type {
	case engine.ChunkHeader:
		if c.Shard != sv.sub[0].Shard {
			return fmt.Errorf("%w: header from shard %d, cover starts at %d", ErrShardSequence, c.Shard, sv.sub[0].Shard)
		}
		return nil

	case engine.ChunkEntries:
		switch {
		case c.Shard == sv.sub[sv.pos].Shard:
			// Still inside the current shard's run.
		case sv.pos+1 < len(sv.sub) && c.Shard == sv.sub[sv.pos+1].Shard:
			// Hand-off to the next covering shard. Skipping straight past
			// it would mean an interior shard delivered nothing — interior
			// shards always own at least one covered record, so a longer
			// jump is a dropped shard, rejected below.
			sv.pos++
		default:
			want := fmt.Sprintf("shard %d", sv.sub[sv.pos].Shard)
			if sv.pos+1 < len(sv.sub) {
				want += fmt.Sprintf(" or a hand-off to shard %d", sv.sub[sv.pos+1].Shard)
			}
			return fmt.Errorf("%w: entries from shard %d while expecting %s",
				ErrShardSequence, c.Shard, want)
		}
		span := sv.sub[sv.pos]
		for _, e := range c.Entries {
			if e.Mode == engine.EntryResult || e.Mode == engine.EntryFilteredVisible {
				if e.Key < span.Lo || e.Key > span.Hi {
					return fmt.Errorf("%w: key %d in shard %d covering [%d,%d]",
						ErrShardSpan, e.Key, span.Shard, span.Lo, span.Hi)
				}
			}
		}
		sv.started = true
		sv.counts[span.Shard] += uint64(len(c.Entries))
		return nil

	case engine.ChunkFooter:
		// Only the last covering shard may still be outstanding (its part
		// of the range can be legitimately empty of records); anything
		// earlier means interior shards went missing.
		if sv.started && sv.pos < len(sv.sub)-2 {
			return fmt.Errorf("%w: footer after shard %d of %d covering shards",
				ErrShardTruncated, sv.sub[sv.pos].Shard, len(sv.sub))
		}
		if len(c.ShardFeet) != len(sv.sub) {
			return fmt.Errorf("%w: footer accounts %d shards, cover is %d",
				ErrShardContinuity, len(c.ShardFeet), len(sv.sub))
		}
		for i, f := range c.ShardFeet {
			if f.Shard != sv.sub[i].Shard {
				return fmt.Errorf("%w: footer names shard %d at position %d, cover has %d",
					ErrShardContinuity, f.Shard, i, sv.sub[i].Shard)
			}
			if f.Entries != sv.counts[f.Shard] {
				return fmt.Errorf("%w: shard %d claims %d entries, observed %d",
					ErrShardContinuity, f.Shard, f.Entries, sv.counts[f.Shard])
			}
		}
		return nil

	default:
		return nil
	}
}
