package verify_test

import (
	"errors"
	"math/rand"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

// fixture for direct verifier tests: a 30-record employee relation with
// an all-access role.
type vfix struct {
	h    *hashx.Hasher
	sr   *core.SignedRelation
	pub  *engine.Publisher
	role accessctl.Role
	v    *verify.Verifier
}

func newVFix(t testing.TB) *vfix {
	t.Helper()
	h := hashx.New()
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 30, L: 0, U: 1 << 20, PhotoSize: 16, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	pub := engine.NewPublisher(h, signKey(t).Public(), accessctl.NewPolicy(role))
	if err := pub.AddRelation(sr, false); err != nil {
		t.Fatal(err)
	}
	return &vfix{
		h: h, sr: sr, pub: pub, role: role,
		v: verify.New(h, signKey(t).Public(), p, rel.Schema),
	}
}

func (f *vfix) query(t testing.TB, q engine.Query) *engine.Result {
	t.Helper()
	res, err := f.pub.Execute("all", q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRejectsOverDisclosure(t *testing.T) {
	// Precision: an entry disclosing more columns than projected must be
	// rejected even though the extra values are authentic.
	f := newVFix(t)
	qNarrow := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19, Project: []string{"Name"}}
	qWide := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	narrow := f.query(t, qNarrow)
	wide := f.query(t, qWide)
	if len(narrow.VO.Entries) == 0 || len(wide.VO.Entries) == 0 {
		t.Fatal("need non-empty results")
	}
	// Substitute the fully-disclosed entry for the projected one.
	narrow.VO.Entries[0] = wide.VO.Entries[0]
	_, err := f.v.VerifyResult(qNarrow, f.role, narrow)
	if err == nil {
		t.Fatal("over-disclosure accepted")
	}
	if !errors.Is(err, verify.ErrPrecision) && !errors.Is(err, verify.ErrEntry) {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

func TestRejectsMissingSignatures(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	res := f.query(t, q)
	res.VO.AggSig = nil
	res.VO.IndividualSigs = nil
	if _, err := f.v.VerifyResult(q, f.role, res); !errors.Is(err, verify.ErrSignature) {
		t.Fatalf("missing signatures: %v", err)
	}
}

func TestRejectsWrongIndividualSigCount(t *testing.T) {
	f := newVFix(t)
	f.pub.Aggregate = false
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	res := f.query(t, q)
	f.pub.Aggregate = true
	if len(res.VO.IndividualSigs) < 2 {
		t.Fatal("need multiple signatures")
	}
	res.VO.IndividualSigs = res.VO.IndividualSigs[:len(res.VO.IndividualSigs)-1]
	if _, err := f.v.VerifyResult(q, f.role, res); !errors.Is(err, verify.ErrSignature) {
		t.Fatalf("short signature list: %v", err)
	}
}

func TestRejectsReorderedEntries(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	res := f.query(t, q)
	if len(res.VO.Entries) < 2 {
		t.Fatal("need >= 2 entries")
	}
	es := res.VO.Entries
	es[0], es[1] = es[1], es[0]
	if _, err := f.v.VerifyResult(q, f.role, res); err == nil {
		t.Fatal("reordered entries accepted")
	}
}

func TestRejectsMalformedPredPrevG(t *testing.T) {
	f := newVFix(t)
	// An empty range whose predecessor is a real record.
	hiKey := f.sr.Recs[2].Key()
	loKey := hiKey + 1
	var hi uint64 = f.sr.Recs[3].Key() - 1
	if hi < loKey {
		t.Skip("adjacent keys; no empty gap at this seed")
	}
	q := engine.Query{Relation: "Emp", KeyLo: loKey, KeyHi: hi}
	res := f.query(t, q)
	if len(res.VO.Entries) != 0 {
		t.Fatal("expected empty result")
	}
	res.VO.PredPrevG = res.VO.PredPrevG[:4]
	if _, err := f.v.VerifyResult(q, f.role, res); err == nil {
		t.Fatal("malformed PredPrevG accepted")
	}
}

func TestRejectsEffectiveRangeMismatch(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	res := f.query(t, q)
	res.VO.KeyHi++ // VO range differs from effective query
	if _, err := f.v.VerifyResult(q, f.role, res); !errors.Is(err, verify.ErrRewriteMismatch) {
		t.Fatalf("VO/effective mismatch: %v", err)
	}
}

// TestRandomBitFlipsNeverVerify flips random bits across the VO's digest
// material and checks that no mutation yields an accepted result — the
// blanket soundness fuzz.
func TestRandomBitFlipsNeverVerify(t *testing.T) {
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		res := f.query(t, q) // fresh result each time
		vo := &res.VO
		// Collect mutation targets: every digest slice in the VO.
		var targets [][]byte
		for i := range vo.Entries {
			e := &vo.Entries[i]
			for _, d := range e.HiddenLeaves {
				targets = append(targets, d)
			}
			if e.Chain.UpRoot != nil {
				targets = append(targets, e.Chain.UpRoot)
			}
			if e.Chain.DownRoot != nil {
				targets = append(targets, e.Chain.DownRoot)
			}
		}
		for _, d := range vo.Left.Chain.Intermediates {
			targets = append(targets, d)
		}
		for _, d := range vo.Right.Chain.Intermediates {
			targets = append(targets, d)
		}
		if vo.Left.OtherCombined != nil {
			targets = append(targets, vo.Left.OtherCombined)
		}
		if vo.Left.AttrRoot != nil {
			targets = append(targets, vo.Left.AttrRoot)
		}
		targets = append(targets, vo.AggSig)
		tgt := targets[rng.Intn(len(targets))]
		tgt[rng.Intn(len(tgt))] ^= 1 << uint(rng.Intn(8))
		if _, err := f.v.VerifyResult(q, f.role, res); err == nil {
			t.Fatalf("trial %d: mutated VO verified", trial)
		}
	}
}

// TestHonestResultAlwaysVerifies is the complement of the fuzz above:
// across many random queries the honest publisher is never rejected.
func TestHonestResultAlwaysVerifies(t *testing.T) {
	f := newVFix(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		lo := uint64(rng.Intn(1<<20-2)) + 1
		hi := lo + uint64(rng.Intn(1<<18))
		if hi >= 1<<20 {
			hi = 1<<20 - 1
		}
		q := engine.Query{Relation: "Emp", KeyLo: lo, KeyHi: hi}
		switch trial % 3 {
		case 1:
			q.Project = []string{"Name", "Dept"}
		case 2:
			q.Filters = []engine.Filter{{Col: "Dept", Op: engine.OpLe, Val: relation.IntVal(2)}}
		}
		res := f.query(t, q)
		if _, err := f.v.VerifyResult(q, f.role, res); err != nil {
			t.Fatalf("trial %d [%d,%d]: honest result rejected: %v", trial, lo, hi, err)
		}
	}
}

func TestAggregateHelpers(t *testing.T) {
	schema := relation.Schema{
		Name: "T", KeyName: "K",
		Cols: []relation.Column{{Name: "V", Type: relation.TypeInt}, {Name: "S", Type: relation.TypeString}},
	}
	rows := []engine.Row{
		{Key: 10, Values: []engine.DisclosedAttr{{Col: 0, Val: relation.IntVal(5)}}},
		{Key: 20, Values: []engine.DisclosedAttr{{Col: 0, Val: relation.IntVal(7)}}},
		{Key: 30, Values: []engine.DisclosedAttr{{Col: 0, Val: relation.IntVal(9)}}},
	}
	if verify.Count(rows) != 3 {
		t.Error("Count")
	}
	if verify.SumKeys(rows) != 60 {
		t.Error("SumKeys")
	}
	if avg, err := verify.AvgKeys(rows); err != nil || avg != 20 {
		t.Errorf("AvgKeys = %v, %v", avg, err)
	}
	if s, err := verify.SumInt(schema, rows, "V"); err != nil || s != 21 {
		t.Errorf("SumInt = %v, %v", s, err)
	}
	if a, err := verify.AvgInt(schema, rows, "V"); err != nil || a != 7 {
		t.Errorf("AvgInt = %v, %v", a, err)
	}
	lo, hi, err := verify.MinMaxKeys(rows)
	if err != nil || lo != 10 || hi != 30 {
		t.Errorf("MinMaxKeys = %d, %d, %v", lo, hi, err)
	}
	// Error paths.
	if _, err := verify.AvgKeys(nil); !errors.Is(err, verify.ErrNoRows) {
		t.Error("AvgKeys(nil)")
	}
	if _, _, err := verify.MinMaxKeys(nil); !errors.Is(err, verify.ErrNoRows) {
		t.Error("MinMaxKeys(nil)")
	}
	if _, err := verify.SumInt(schema, rows, "Missing"); err == nil {
		t.Error("SumInt missing column")
	}
	if _, err := verify.SumInt(schema, rows, "S"); err == nil {
		t.Error("SumInt on undisclosed/wrong-typed column")
	}
	if _, err := verify.AvgInt(schema, nil, "V"); !errors.Is(err, verify.ErrNoRows) {
		t.Error("AvgInt(nil)")
	}
}

func TestVerifiedAggregateEndToEnd(t *testing.T) {
	// Duplicates retained (no DISTINCT): SUM over a verified multiset is
	// trustworthy, the Section 4.2 point.
	f := newVFix(t)
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1<<20 - 1, Project: []string{"Dept"}}
	res := f.query(t, q)
	rows, err := f.v.VerifyResult(q, f.role, res)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := verify.SumInt(f.sr.Schema, rows, "Dept")
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth.
	var want int64
	deptIdx := f.sr.Schema.ColIndex("Dept")
	for i := 1; i <= f.sr.Len(); i++ {
		want += f.sr.Recs[i].Tuple.Attrs[deptIdx].Int
	}
	if sum != want {
		t.Fatalf("verified SUM(Dept) = %d, ground truth %d", sum, want)
	}
}
