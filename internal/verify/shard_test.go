package verify_test

import (
	"errors"
	"io"
	"sync"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

var (
	shardKeyOnce sync.Once
	shardKey     *sig.PrivateKey
)

func shardSignKey(t testing.TB) *sig.PrivateKey {
	shardKeyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		shardKey = k
	})
	return shardKey
}

// shardFix is a partitioned publication plus everything needed to stream
// and verify against it.
type shardFix struct {
	sr   *core.SignedRelation
	set  *partition.Set
	pub  *engine.Publisher
	v    *verify.Verifier
	role accessctl.Role
	q    engine.Query
}

func newShardFix(t *testing.T, n, k int) *shardFix {
	t.Helper()
	key := shardSignKey(t)
	h := hashx.New()
	rel, err := workload.Uniform(workload.UniformConfig{
		N: n, L: 0, U: 1 << 20, PayloadSize: 8, Seed: int64(31*n + k),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, key, p, rel)
	if err != nil {
		t.Fatal(err)
	}
	set, err := partition.Split(sr, k)
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	return &shardFix{
		sr:   sr,
		set:  set,
		pub:  engine.NewPublisher(h, key.Public(), accessctl.NewPolicy(role)),
		v:    verify.New(h, key.Public(), sr.Params, sr.Schema),
		role: role,
		q:    engine.Query{Relation: sr.Schema.Name},
	}
}

// chunks produces the honest fan-out chunk sequence for f.q.
func (f *shardFix) chunks(t *testing.T, chunkRows int) []*engine.Chunk {
	t.Helper()
	eff, err := engine.EffectiveQuery(f.sr.Params, f.sr.Schema, f.role, f.q)
	if err != nil {
		t.Fatal(err)
	}
	sub := f.set.Spec.Decompose(eff.KeyLo, eff.KeyHi)
	slices := make([]engine.ShardSlice, len(sub))
	for i, s := range sub {
		slices[i] = engine.ShardSlice{Shard: s.Shard, SR: f.set.Slices[s.Shard], Lo: s.Lo, Hi: s.Hi}
	}
	st, err := f.pub.FanoutStream(f.role, eff, slices, nil, engine.StreamOpts{ChunkRows: chunkRows})
	if err != nil {
		t.Fatal(err)
	}
	var out []*engine.Chunk
	for {
		c, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
}

// verifyChunks feeds a chunk sequence to a fresh shard verifier.
func (f *shardFix) verifyChunks(t *testing.T, chunks []*engine.Chunk) (int, error) {
	t.Helper()
	sv, err := f.v.NewShardStreamVerifier(f.set.Spec, f.q, f.role)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, c := range chunks {
		released, err := sv.Consume(c)
		if err != nil {
			return rows, err
		}
		rows += len(released)
	}
	return rows, sv.Finish()
}

// renumber restamps Seq contiguously — the smart attacker who fixes the
// framing after dropping or reordering content.
func renumber(chunks []*engine.Chunk) []*engine.Chunk {
	out := make([]*engine.Chunk, len(chunks))
	for i, c := range chunks {
		cp := *c
		cp.Seq = uint64(i)
		out[i] = &cp
	}
	return out
}

func TestShardStreamHappyPath(t *testing.T) {
	f := newShardFix(t, 96, 4)
	chunks := f.chunks(t, 8)
	rows, err := f.verifyChunks(t, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if rows != f.sr.Len() {
		t.Fatalf("verified %d rows, want %d", rows, f.sr.Len())
	}
}

// dropShard removes every chunk tagged with the given shard (keeping
// header/footer, which the honest producer tags with first/last shard).
func dropShard(chunks []*engine.Chunk, shard int) []*engine.Chunk {
	var out []*engine.Chunk
	for _, c := range chunks {
		if c.Type == engine.ChunkEntries && c.Shard == shard {
			continue
		}
		out = append(out, c)
	}
	return out
}

func TestShardStreamDropInteriorNaive(t *testing.T) {
	f := newShardFix(t, 96, 4)
	interior := f.set.Spec.K() / 2
	_, err := f.verifyChunks(t, dropShard(f.chunks(t, 8), interior))
	if !errors.Is(err, verify.ErrChunkSequence) {
		t.Fatalf("naive interior drop: got %v, want ErrChunkSequence", err)
	}
}

func TestShardStreamDropInteriorRenumbered(t *testing.T) {
	f := newShardFix(t, 96, 4)
	interior := f.set.Spec.K() / 2
	_, err := f.verifyChunks(t, renumber(dropShard(f.chunks(t, 8), interior)))
	if !errors.Is(err, verify.ErrShardSequence) {
		t.Fatalf("renumbered interior drop: got %v, want ErrShardSequence", err)
	}
}

func TestShardStreamReorderShards(t *testing.T) {
	f := newShardFix(t, 96, 4)
	chunks := f.chunks(t, 64) // few chunks: one entries chunk per shard
	// Swap the entry runs of shards 1 and 2 wholesale.
	var a, b int = -1, -1
	for i, c := range chunks {
		if c.Type != engine.ChunkEntries {
			continue
		}
		if c.Shard == 1 && a < 0 {
			a = i
		}
		if c.Shard == 2 && b < 0 {
			b = i
		}
	}
	if a < 0 || b < 0 {
		t.Fatal("fixture did not produce one chunk per shard")
	}
	chunks[a], chunks[b] = chunks[b], chunks[a]
	_, err := f.verifyChunks(t, renumber(chunks))
	if !errors.Is(err, verify.ErrShardSequence) {
		t.Fatalf("reordered shards: got %v, want ErrShardSequence", err)
	}
}

func TestShardStreamRetaggedChunks(t *testing.T) {
	f := newShardFix(t, 96, 4)
	chunks := f.chunks(t, 8)
	// Retag one of shard 2's chunks as shard 1: the tag walk stays legal
	// only until the key-span check sees keys outside shard 1's span.
	for _, c := range chunks {
		if c.Type == engine.ChunkEntries && c.Shard == 2 {
			c.Shard = 1
			break
		}
	}
	_, err := f.verifyChunks(t, chunks)
	if !errors.Is(err, verify.ErrShardSpan) && !errors.Is(err, verify.ErrShardSequence) {
		t.Fatalf("retagged chunk: got %v, want ErrShardSpan or ErrShardSequence", err)
	}
}

func TestShardStreamTruncatedTail(t *testing.T) {
	f := newShardFix(t, 96, 4)
	chunks := f.chunks(t, 8)
	_, err := f.verifyChunks(t, chunks[:len(chunks)-1]) // drop the footer
	if !errors.Is(err, verify.ErrStreamTruncated) {
		t.Fatalf("truncated stream: got %v, want ErrStreamTruncated", err)
	}
}

func TestShardStreamDropTrailingShard(t *testing.T) {
	f := newShardFix(t, 96, 4)
	last := f.set.Spec.K() - 1
	chunks := renumber(dropShard(f.chunks(t, 8), last))
	_, err := f.verifyChunks(t, chunks)
	// The tag walk allows a legitimately empty last shard, so the drop is
	// caught by the footer: continuity accounting first, chain otherwise.
	if !errors.Is(err, verify.ErrShardContinuity) && !errors.Is(err, verify.ErrSignature) {
		t.Fatalf("dropped trailing shard: got %v, want ErrShardContinuity or ErrSignature", err)
	}
}

func TestShardStreamLyingFooterAccounting(t *testing.T) {
	f := newShardFix(t, 96, 4)
	chunks := f.chunks(t, 8)
	footer := chunks[len(chunks)-1]
	footer.ShardFeet[1].Entries++
	_, err := f.verifyChunks(t, chunks)
	if !errors.Is(err, verify.ErrShardContinuity) {
		t.Fatalf("lying footer: got %v, want ErrShardContinuity", err)
	}
}

func TestShardStreamMissingFooterAccounting(t *testing.T) {
	f := newShardFix(t, 96, 4)
	chunks := f.chunks(t, 8)
	chunks[len(chunks)-1].ShardFeet = nil
	_, err := f.verifyChunks(t, chunks)
	if !errors.Is(err, verify.ErrShardContinuity) {
		t.Fatalf("missing footer accounting: got %v, want ErrShardContinuity", err)
	}
}

// TestShardStreamSingleShardCover: a query entirely inside one shard
// verifies with a one-element cover.
func TestShardStreamSingleShardCover(t *testing.T) {
	f := newShardFix(t, 96, 4)
	sl := f.set.Slices[2]
	f.q = engine.Query{
		Relation: f.sr.Schema.Name,
		KeyLo:    sl.Recs[1].Key(),
		KeyHi:    sl.Recs[len(sl.Recs)-2].Key(),
	}
	rows, err := f.verifyChunks(t, f.chunks(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(sl.Recs)-2 {
		t.Fatalf("verified %d rows, want %d", rows, len(sl.Recs)-2)
	}
}
