package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/costmodel"
	"vcqr/internal/hashx"
)

// Fig9Row is one point of Figure 9: user traffic overhead (%) against
// record size, one series per result cardinality |Q|.
type Fig9Row struct {
	Mr          int     // record size, bytes
	Q           int     // result cardinality
	VOBytes     int     // measured authentication traffic
	ResultBytes int     // measured result payload
	MeasuredPct float64 // VOBytes / ResultBytes * 100
	ModelPct    float64 // formula (4) at paper constants * 100
}

// Fig9 regenerates Figure 9: for each record size Mr and result size |Q|,
// run a greater-than query against a signed uniform relation, account the
// VO bytes, and compare the overhead with the formula (4) model.
func (e *Env) Fig9() ([]Fig9Row, error) {
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	qs := []int{1, 2, 5, 10, 100}
	n := e.scale(160)
	if n < 120 {
		qs = []int{1, 2, 5, 10, 25}
	}
	model := costmodel.PaperDefaults()
	var rows []Fig9Row
	for _, mr := range sizes {
		h := hashx.New()
		payload := mr - 13 // tuple encoding: 8 key + 5 value framing
		if payload < 0 {
			payload = 0
		}
		sr, _, err := e.buildUniform(h, n, payload, 2, int64(mr))
		if err != nil {
			return nil, err
		}
		pub, _ := e.publisherFor(h, sr)
		for _, q := range qs {
			query, err := greaterThanQuery(sr, "Uniform", q)
			if err != nil {
				return nil, err
			}
			res, err := pub.Execute("all", query)
			if err != nil {
				return nil, err
			}
			acc := res.VO.Account(h.Size(), e.Key.Public().SigBytes())
			vo := acc.Bytes()
			payloadBytes := res.ResultBytes()
			rows = append(rows, Fig9Row{
				Mr:          mr,
				Q:           q,
				VOBytes:     vo,
				ResultBytes: payloadBytes,
				MeasuredPct: 100 * float64(vo) / float64(payloadBytes),
				ModelPct:    100 * model.TrafficOverhead(q, mr),
			})
		}
	}
	return rows, nil
}

// PrintFig9 renders the experiment like the paper's figure: one series
// per |Q|, overhead percentage per record size.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("Mr=%5dB  |Q|=%4d  VO=%6dB  result=%8dB  measured=%7.1f%%  model=%7.1f%%",
			r.Mr, r.Q, r.VOBytes, r.ResultBytes, r.MeasuredPct, r.ModelPct))
	}
	printTable(w, "E1 / Figure 9 — user traffic overhead vs record size (greater-than queries)", lines)
}
