package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/core"
	"vcqr/internal/hashx"
)

// AblationRow contrasts the conceptual linear chain (formula (2)) with
// the Section 5.1 base-B optimization at increasing domain sizes: the
// hash-operation counts for computing one record digest. The linear
// scheme is O(U-L); the optimized one is O(B log_B(U-L)) — the difference
// the paper quantifies as "2^32 hashes ... almost 60 hours" vs
// milliseconds.
type AblationRow struct {
	Span         uint64
	LinearHashes uint64
	BaseBHashes  uint64
	Speedup      float64
}

// Ablation runs E7: sweep domain sizes, count hashes for both digest
// constructions on the same key.
func (e *Env) Ablation() ([]AblationRow, error) {
	spans := []uint64{1 << 10, 1 << 14, 1 << 18, 1 << 22}
	if e.Short {
		spans = []uint64{1 << 10, 1 << 14, 1 << 18}
	}
	var rows []AblationRow
	for _, span := range spans {
		key := span / 3 // an arbitrary interior key
		p, err := core.NewParams(0, span, 2)
		if err != nil {
			return nil, err
		}
		hLin := hashx.New()
		if _, err := core.LinearG(hLin, p, key, core.Up); err != nil {
			return nil, err
		}
		lin := hLin.Ops()

		hOpt := hashx.New()
		if _, err := core.EntryG(hOpt, p, key, core.KindRecord,
			core.EntryChainInfo{UpRoot: hOpt.Hash([]byte("r")), DownRoot: hOpt.Hash([]byte("r"))},
			hOpt.Hash([]byte("a"))); err != nil {
			return nil, err
		}
		opt := hOpt.Ops()
		rows = append(rows, AblationRow{
			Span:         span,
			LinearHashes: lin,
			BaseBHashes:  opt,
			Speedup:      float64(lin) / float64(opt),
		})
	}
	return rows, nil
}

// PrintAblation renders E7.
func PrintAblation(w io.Writer, rows []AblationRow) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("span=2^%2d  linear=%10d hashes  base-B=%5d hashes  speedup=%10.0fx",
			log2(r.Span), r.LinearHashes, r.BaseBHashes, r.Speedup))
	}
	printTable(w, "E7 / Section 5.1 ablation — linear chain vs base-B digit chains (one digest, both directions)", lines)
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
