package experiments

import (
	"bytes"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	testEnv *Env
)

func env(t testing.TB) *Env {
	envOnce.Do(func() {
		e, err := NewEnv(true)
		if err != nil {
			t.Fatalf("env: %v", err)
		}
		testEnv = e
	})
	return testEnv
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// The figure's headline shape: overhead falls as |Q| grows, for every
	// record size, in both model and measurement.
	byMr := map[int][]Fig9Row{}
	for _, r := range rows {
		byMr[r.Mr] = append(byMr[r.Mr], r)
	}
	for mr, series := range byMr {
		for i := 1; i < len(series); i++ {
			if series[i].MeasuredPct >= series[i-1].MeasuredPct {
				t.Errorf("Mr=%d: measured overhead not falling at |Q|=%d (%.1f >= %.1f)",
					mr, series[i].Q, series[i].MeasuredPct, series[i-1].MeasuredPct)
			}
			if series[i].ModelPct >= series[i-1].ModelPct {
				t.Errorf("Mr=%d: model overhead not falling at |Q|=%d", mr, series[i].Q)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig9(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("printer produced nothing")
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	// Paper's finding: the model's optimum lies at B in {2, 3}; by B = 10
	// the cost clearly exceeds the optimum, for each |Q| series.
	series := map[int]map[uint64]float64{}
	for _, r := range rows {
		if series[r.Q] == nil {
			series[r.Q] = map[uint64]float64{}
		}
		series[r.Q][r.B] = r.ModelMs
	}
	for q, s := range series {
		minB := uint64(2)
		for b, c := range s {
			if c < s[minB] {
				minB = b
			}
		}
		if minB != 2 && minB != 3 {
			t.Errorf("|Q|=%d: model minimum at B=%d, paper says 2 or 3", q, minB)
		}
		if s[10] <= s[minB] {
			t.Errorf("|Q|=%d: cost at B=10 not above the optimum", q)
		}
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows)
}

func TestTable1Sane(t *testing.T) {
	r := env(t).Table1()
	if r.ChashMeasured <= 0 || r.CsignMeasured <= 0 {
		t.Fatal("non-positive measured constants")
	}
	// The paper's ratio claim: signature verification is much more
	// expensive than hashing (around 100x in 2005; well above 10x on any
	// hardware).
	if r.CsignMeasured < 10*r.ChashMeasured {
		t.Errorf("Csign/Chash = %.1f, expected >> 10",
			float64(r.CsignMeasured)/float64(r.ChashMeasured))
	}
	var buf bytes.Buffer
	PrintTable1(&buf, r)
}

func TestCuserValidatesPaperNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).Cuser()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Model within 10% of the paper's printed claims.
		ratio := r.ModelMs / r.PaperClaimMs
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("|Q|=%d: model %.1fms vs paper %.1fms", r.Q, r.ModelMs, r.PaperClaimMs)
		}
		// The implementation's hash count stays within a small constant of
		// the formula (our g hashes both directions plus the attribute
		// tree; the formula models the one-sided digest).
		if r.MeasuredHashes > 0 {
			f := float64(r.MeasuredHashes) / float64(r.FormulaHashes)
			if f < 0.5 || f > 4 {
				t.Errorf("|Q|=%d: measured hashes %d vs formula %d (ratio %.2f)",
					r.Q, r.MeasuredHashes, r.FormulaHashes, f)
			}
		}
	}
	var buf bytes.Buffer
	PrintCuser(&buf, rows)
}

func TestVOSizeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).VOSize()
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1: ours is independent of table size — same |Q| across n must
	// give (nearly) identical VO bytes.
	byQ := map[int][]VOSizeRow{}
	for _, r := range rows {
		byQ[r.Q] = append(byQ[r.Q], r)
	}
	for q, series := range byQ {
		for i := 1; i < len(series); i++ {
			a, b := series[i-1].OursBytes, series[i].OursBytes
			diff := a - b
			if diff < 0 {
				diff = -diff
			}
			if float64(diff) > 0.1*float64(a) {
				t.Errorf("|Q|=%d: ours VO varies with n: %d vs %d", q, a, b)
			}
			// Claim 2: devanbu grows with n.
			if series[i].DevanbuBytes <= series[i-1].DevanbuBytes {
				t.Errorf("|Q|=%d: devanbu VO not growing with n", q)
			}
		}
	}
	var buf bytes.Buffer
	PrintVOSize(&buf, rows)
}

func TestUpdateClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).Update()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OursSigsPerUpdate != 3 {
			t.Errorf("n=%d: ours %.1f sigs/update, paper says 3", r.N, r.OursSigsPerUpdate)
		}
		if r.OursLeafSpanMax > 2 {
			t.Errorf("n=%d: leaf span max %d, paper says at most 2 adjoining leaves", r.N, r.OursLeafSpanMax)
		}
		// Devanbu must propagate through at least log2(n) nodes.
		if r.DevNodesPerUpdate < 8 {
			t.Errorf("n=%d: devanbu %.1f nodes/update, expected >= log2(n)", r.N, r.DevNodesPerUpdate)
		}
	}
	var buf bytes.Buffer
	PrintUpdate(&buf, rows)
}

func TestAblationSpeedupGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).Ablation()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Errorf("speedup not growing with domain size: %v", rows)
		}
	}
	last := rows[len(rows)-1]
	if last.LinearHashes < uint64(last.Span)/2 {
		t.Errorf("linear hashes %d suspiciously small for span %d", last.LinearHashes, last.Span)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
}

func TestAllAttacksDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).Attacks()
	if err != nil {
		t.Fatal(err)
	}
	mounted := 0
	for _, r := range rows {
		if !r.Mounted {
			t.Errorf("attack %s could not be mounted: %s", r.Attack, r.Detail)
			continue
		}
		mounted++
		if !r.Detected {
			t.Errorf("attack %s NOT detected", r.Attack)
		}
	}
	if mounted < 8 {
		t.Errorf("only %d attacks mounted", mounted)
	}
	var buf bytes.Buffer
	PrintAttacks(&buf, rows)
}

func TestDeltaSyncLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).DeltaSync()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for name, ops := range map[string]int{
			"update": r.UpdateOps, "insert": r.InsertOps, "delete": r.DeleteOps,
		} {
			if ops != 3 {
				t.Errorf("n=%d: %s delta = %d ops, want 3 (Section 6.3 locality)", r.N, name, ops)
			}
		}
		if r.SnapshotOps <= 3*10 {
			t.Errorf("n=%d: snapshot suspiciously small", r.N)
		}
	}
	var buf bytes.Buffer
	PrintDeltaSync(&buf, rows)
}

func TestMultiOrderMultiplier(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	rows, err := env(t).MultiOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Multiplier != float64(r.Orders) {
			t.Errorf("orders=%d: multiplier %.1f, want %d (one signature set per sort order)",
				r.Orders, r.Multiplier, r.Orders)
		}
	}
	var buf bytes.Buffer
	PrintMultiOrder(&buf, rows)
}

func TestPrecisionScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	r, err := env(t).Precision()
	if err != nil {
		t.Fatal(err)
	}
	if r.OursRows != 3 {
		t.Errorf("ours rows = %d, want 3 (2000, 3500, 8010)", r.OursRows)
	}
	if len(r.OursLeakedKeys) != 0 {
		t.Errorf("ours leaked keys %v", r.OursLeakedKeys)
	}
	if len(r.DevanbuLeakedKeys) == 0 || !r.DevanbuLeakedTuple {
		t.Error("devanbu should have leaked the 12100 boundary tuple")
	}
	for _, k := range r.DevanbuLeakedKeys {
		if k != 12100 {
			t.Errorf("unexpected leaked key %d", k)
		}
	}
	var buf bytes.Buffer
	PrintPrecision(&buf, r)
}

// TestObsOverheadShape: the instrumentation-overhead experiment must run
// both sides, populate the streaming-path stage histograms on the
// enabled server, and produce sane latencies. The overhead percentage
// itself is hardware noise and deliberately unasserted here — the
// committed BENCH_obs.json records the bound.
func TestObsOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	r, err := env(t).Obs()
	if err != nil {
		t.Fatal(err)
	}
	if r.EnabledNS <= 0 || r.DisabledNS <= 0 {
		t.Fatalf("non-positive latencies: %+v", r)
	}
	want := map[string]bool{"stream_total": false, "stream_chunk": false}
	for _, s := range r.Stages {
		if _, ok := want[s.Stage]; ok {
			want[s.Stage] = true
		}
		if s.Count == 0 {
			t.Errorf("stage %s reported with zero observations", s.Stage)
		}
	}
	for stage, seen := range want {
		if !seen {
			t.Errorf("enabled run did not populate %s: %+v", stage, r.Stages)
		}
	}
	var buf bytes.Buffer
	PrintObs(&buf, r)
	if buf.Len() == 0 {
		t.Fatal("printer produced nothing")
	}
}

// TestShardingSweep: the partitioned-publisher sweep must verify its
// cross-shard streams at every K and show query and delta throughput
// rising with K on the same data. Exact ratios are hardware-dependent;
// the shape (monotone improvement, K=4 clearly above 1x) is not.
func TestShardingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sharding sweep is slow")
	}
	rows, err := env(t).Sharding()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].K != 1 {
		t.Fatalf("unexpected sweep shape: %+v", rows)
	}
	for i, r := range rows {
		if r.StreamRows == 0 || r.StreamShards != r.K {
			t.Fatalf("K=%d stream: %+v", r.K, r)
		}
		if i > 0 && r.QueryPerSec <= rows[i-1].QueryPerSec*0.9 {
			t.Fatalf("query throughput not rising: K=%d %.0f q/s after K=%d %.0f q/s",
				r.K, r.QueryPerSec, rows[i-1].K, rows[i-1].QueryPerSec)
		}
	}
	k4 := rows[2]
	if k4.QuerySpeed < 1.5 {
		t.Fatalf("K=4 query speedup %.2fx — partition isolation not paying off", k4.QuerySpeed)
	}
	if k4.DeltaSpeed < 1.5 {
		t.Fatalf("K=4 delta speedup %.2fx — per-shard clones not paying off", k4.DeltaSpeed)
	}
}
