package experiments

import (
	"fmt"
	"io"
	"time"

	"vcqr/internal/costmodel"
	"vcqr/internal/hashx"
	"vcqr/internal/sig"
)

// Table1Result reports the measured cost parameters of Table 1 next to
// the paper's 2005 values.
type Table1Result struct {
	ChashMeasured time.Duration
	CsignMeasured time.Duration
	ChashPaper    time.Duration
	CsignPaper    time.Duration
	Mdigest       int // bits
	Msign         int // bits
}

// MeasureConstants times one hash operation and one signature
// verification on this machine.
func MeasureConstants(key *sig.PrivateKey) (chash, csign time.Duration) {
	h := hashx.New()
	m := hashx.U64Pair(12345, 7)
	const hn = 50000
	start := time.Now()
	d := h.First(m)
	for i := 1; i < hn; i++ {
		d = h.Next(d)
	}
	chash = time.Since(start) / hn
	_ = d

	dg := h.Hash([]byte("bench"))
	s := key.Sign(dg)
	const sn = 500
	start = time.Now()
	for i := 0; i < sn; i++ {
		key.Public().Verify(dg, s)
	}
	csign = time.Since(start) / sn
	return chash, csign
}

// Table1 runs E3.
func (e *Env) Table1() Table1Result {
	chash, csign := MeasureConstants(e.Key)
	paper := costmodel.PaperDefaults()
	return Table1Result{
		ChashMeasured: chash,
		CsignMeasured: csign,
		ChashPaper:    paper.Chash,
		CsignPaper:    paper.Csign,
		Mdigest:       hashx.DefaultSize * 8,
		Msign:         e.Key.Public().SigBytes() * 8,
	}
}

// PrintTable1 renders the parameter table.
func PrintTable1(w io.Writer, r Table1Result) {
	printTable(w, "E3 / Table 1 — cost parameters (measured vs paper)", []string{
		fmt.Sprintf("Chash    measured=%-12v paper=%v", r.ChashMeasured, r.ChashPaper),
		fmt.Sprintf("Csign    measured=%-12v paper=%v  (verify/hash ratio measured=%.0fx, paper says ~100x)",
			r.CsignMeasured, r.CsignPaper,
			float64(r.CsignMeasured)/float64(maxDur(r.ChashMeasured, 1))),
		fmt.Sprintf("Mdigest  %d bits (paper: 128)", r.Mdigest),
		fmt.Sprintf("Msign    %d bits (paper: 1024)", r.Msign),
	})
}

func maxDur(d time.Duration, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}
