package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/costmodel"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/planner"
	"vcqr/internal/relation"
	"vcqr/internal/server"
	"vcqr/internal/verify"
)

// E-shard: the partitioned-publisher sweep. One relation is signed once,
// split K ∈ {1,2,4,8} ways (splitting is free — the global chain is
// untouched), and each configuration serves the *same* workload:
//
//   - a serving loop interleaving live owner deltas with a hot set of
//     point queries (the headline: query throughput under updates, where
//     per-shard epochs keep K-1 shards' VO caches hot across every
//     cutover and the delta clone shrinks from n to n/K records);
//   - one cross-shard range stream, drained through the shard-aware
//     incremental verifier (correctness: the fan-out verifies at every K);
//   - a pure delta stream (update throughput: clone-bound, ~linear in K).
//
// Every configuration applies the identical pre-generated delta
// sequence, so the K=1 row is a true baseline on the same data and the
// reported ratios are like-for-like.

// ShardRow is one K configuration's measurements.
type ShardRow struct {
	K int
	// Serving loop: queries answered per second while the delta stream
	// lands, and the speedup over K=1.
	QueryPerSec float64
	QuerySpeed  float64
	// Pure delta throughput and speedup over K=1.
	DeltaPerSec float64
	DeltaSpeed  float64
	// Cross-shard stream: covering shards, verified rows, total latency.
	StreamShards int
	StreamRows   int
	StreamTotal  time.Duration
	// Plan is the planner's EXPLAIN for the cross-shard stream query.
	Plan string
	// Model is the costmodel's predicted serving-loop speedup at this K.
	Model float64
}

// shardWorkload is the fixed workload every K configuration replays.
type shardWorkload struct {
	master  *core.SignedRelation
	deltas  []delta.Delta
	queries []engine.Query
	rounds  int // serving-loop rounds (one delta + all queries each)
	tail    int // extra deltas for the pure-delta phase
}

// mintShardWorkload pre-generates the delta sequence and the hot query
// set. Deltas are attribute updates to randomly chosen records; each is
// diffed against the immediately preceding state, so replaying the
// sequence in order is valid from the initial snapshot on any server.
func (e *Env) mintShardWorkload(h *hashx.Hasher, n int) (*shardWorkload, error) {
	sr, _, err := e.buildUniform(h, n, 32, 2, 4242)
	if err != nil {
		return nil, err
	}
	w := &shardWorkload{master: sr, rounds: 24, tail: 16}
	if e.Short {
		w.rounds, w.tail = 8, 8
	}

	// Hot set: evenly spaced point queries (single-shard at every K).
	const hot = 64
	for i := 0; i < hot; i++ {
		rec := sr.Recs[1+(i*(n-1))/hot]
		w.queries = append(w.queries, engine.Query{
			Relation: sr.Schema.Name, KeyLo: rec.Key(), KeyHi: rec.Key(),
		})
	}

	// Delta sequence: one-record updates on an owner-side scratch copy.
	scratch := sr.Clone()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < w.rounds+w.tail; i++ {
		idx := 1 + rng.Intn(scratch.Len())
		rec := scratch.Recs[idx]
		attrs := append([]relation.Value(nil), rec.Tuple.Attrs...)
		attrs[0] = relation.BytesVal([]byte(fmt.Sprintf("update-%d", i)))
		before := scratch.Clone()
		if _, err := scratch.UpdateAttrs(h, e.Key, rec.Key(), rec.Tuple.RowID, attrs); err != nil {
			return nil, err
		}
		w.deltas = append(w.deltas, delta.Diff(before, scratch))
	}
	return w, nil
}

// Sharding runs the K sweep.
func (e *Env) Sharding() ([]ShardRow, error) {
	h := hashx.New()
	n := e.scale(16384)
	w, err := e.mintShardWorkload(h, n)
	if err != nil {
		return nil, err
	}
	role := accessctl.Role{Name: "all"}
	v := verify.New(h, e.Key.Public(), w.master.Params, w.master.Schema)

	mp := costmodel.PaperDefaults()
	// Measured serving constants for the model line (coarse: the model
	// predicts shape, the sweep measures reality).
	const cscan, cclone = 5 * time.Nanosecond, 600 * time.Nanosecond

	var rows []ShardRow
	for _, k := range []int{1, 2, 4, 8} {
		set, err := partition.Split(w.master, k)
		if err != nil {
			return nil, err
		}
		srv := server.New(server.Config{Hasher: h, Pub: e.Key.Public(), Policy: accessctl.NewPolicy(role)})
		if err := srv.AddPartition(set, false); err != nil {
			srv.Close()
			return nil, err
		}

		row := ShardRow{K: k}

		// Phase A: serving loop — one delta, then the hot set, per round.
		start := time.Now()
		for r := 0; r < w.rounds; r++ {
			if _, err := srv.ApplyDelta(w.deltas[r]); err != nil {
				srv.Close()
				return nil, fmt.Errorf("sharding k=%d delta %d: %w", k, r, err)
			}
			for _, q := range w.queries {
				if _, err := srv.Query("all", q); err != nil {
					srv.Close()
					return nil, fmt.Errorf("sharding k=%d query: %w", k, err)
				}
			}
		}
		row.QueryPerSec = float64(w.rounds*len(w.queries)) / time.Since(start).Seconds()

		// Phase B: one cross-shard range stream, fully verified. The
		// planner's EXPLAIN records the exact per-shard covers.
		q := engine.Query{Relation: w.master.Schema.Name}
		plan, err := planner.PlanShardQuery(set.Spec, set.Slices, q)
		if err != nil {
			srv.Close()
			return nil, err
		}
		row.Plan = plan.Explain
		sv, err := v.NewShardStreamVerifier(set.Spec, q, role)
		if err != nil {
			srv.Close()
			return nil, err
		}
		start = time.Now()
		st, err := srv.QueryStream("all", q, 0)
		if err != nil {
			srv.Close()
			return nil, err
		}
		verifiedRows := 0
		for {
			c, err := st.Next()
			if err != nil {
				break
			}
			released, err := sv.Consume(c)
			if err != nil {
				srv.Close()
				return nil, fmt.Errorf("sharding k=%d stream rejected: %w", k, err)
			}
			verifiedRows += len(released)
		}
		if err := sv.Finish(); err != nil {
			srv.Close()
			return nil, fmt.Errorf("sharding k=%d stream: %w", k, err)
		}
		row.StreamTotal = time.Since(start)
		row.StreamRows = verifiedRows
		row.StreamShards = len(set.Spec.Decompose(1, w.master.Params.U-1))
		if verifiedRows != n {
			srv.Close()
			return nil, fmt.Errorf("sharding k=%d: stream verified %d rows, want %d", k, verifiedRows, n)
		}

		// Phase C: pure delta throughput.
		start = time.Now()
		for i := w.rounds; i < w.rounds+w.tail; i++ {
			if _, err := srv.ApplyDelta(w.deltas[i]); err != nil {
				srv.Close()
				return nil, fmt.Errorf("sharding k=%d tail delta: %w", k, err)
			}
		}
		row.DeltaPerSec = float64(w.tail) / time.Since(start).Seconds()

		// Model prediction for the serving loop at this K: one delta plus
		// the hot set, with (K-1)/K of the hot set served from cache.
		modelRound := func(k int) time.Duration {
			cold := float64(len(w.queries)) / float64(k)
			return mp.FanoutDeltaCost(n, k, cclone) +
				time.Duration(cold*float64(mp.FanoutQueryCost(n, k, 1, 2, cscan)))
		}
		row.Model = costmodel.FanoutSpeedup(modelRound(1), modelRound(k))

		srv.Close()
		rows = append(rows, row)
	}
	base := rows[0]
	for i := range rows {
		rows[i].QuerySpeed = rows[i].QueryPerSec / base.QueryPerSec
		rows[i].DeltaSpeed = rows[i].DeltaPerSec / base.DeltaPerSec
	}
	return rows, nil
}

// PrintSharding writes the shard sweep.
func PrintSharding(w io.Writer, rows []ShardRow) {
	out := make([]string, 0, len(rows)+2)
	for _, r := range rows {
		out = append(out, fmt.Sprintf(
			"K=%-2d  query %9.0f q/s (%4.2fx, model %4.2fx)   delta %7.1f/s (%4.2fx)   stream %d shards %6d rows in %v",
			r.K, r.QueryPerSec, r.QuerySpeed, r.Model, r.DeltaPerSec, r.DeltaSpeed, r.StreamShards, r.StreamRows, r.StreamTotal))
	}
	for _, r := range rows {
		if r.K == 4 {
			out = append(out, "plan (K=4): "+r.Plan)
			out = append(out, fmt.Sprintf("query throughput at K=4: %.2fx vs K=1 (live-delta serving loop, same data)", r.QuerySpeed))
			out = append(out, fmt.Sprintf("delta throughput at K=4: %.2fx vs K=1", r.DeltaSpeed))
		}
	}
	printTable(w, "E-shard: K-way partitioned serving (query+delta throughput, verified cross-shard streams)", out)
}
