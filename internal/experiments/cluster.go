package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/cluster"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/server"
	"vcqr/internal/verify"
	"vcqr/internal/wire"
)

// E-cluster: the distributed serving tier, end to end over real TCP.
// One relation is signed once and split K ways; the slices are placed
// across N shard-node processes' worth of servers behind a coordinator,
// and the experiment measures what an operator cares about:
//
//   - cross-node verified stream throughput (every stream drained
//     through the unmodified shard-aware verifier), with the
//     single-process partitioned server on the same data as the
//     baseline — the fan-out's wire overhead, quantified;
//   - online span migration under live owner deltas: copy/cutover
//     latency of Rebalance, how many copy rounds the catch-up needed,
//     and — the invariant — how many in-flight queries were rejected
//     during the move (must be zero);
//   - R-way replication: verified-stream throughput at R ∈ {1,2,3}
//     over the same three nodes (what the extra copies cost and buy),
//     then availability through a SIGKILL-equivalent node death at
//     R=2 under live load — queries issued, mid-stream failovers the
//     coordinator absorbed, lease demotions, and the invariant: how
//     many queries failed after one bounded retry (must be zero).
type ClusterResult struct {
	Records, Shards, Nodes int

	// Cross-node verified streaming.
	StreamQueries int
	StreamRows    int
	StreamQPS     float64
	// The same queries against one process hosting all shards.
	SingleQPS float64

	// The online migration.
	RebalancedShard         int
	CopyRounds              int
	Copy, Cutover           time.Duration
	QueriesDuringMigration  uint64
	RejectedDuringMigration uint64
	DeltasDuringMigration   uint64

	// The R-sweep: same data, same node count, rising replication.
	ReplicaNodes int
	ReplicaQPS   []ReplicaQPSRow

	// The kill drill at R = KillReplicas.
	KillReplicas  int
	KillQueries   uint64 // queries issued while the drill ran
	KillRetried   uint64 // first attempt failed, bounded retry taken
	KillFailed    uint64 // failed after the retry too — must be zero
	KillFailovers uint64 // sub-streams re-pinned to a sibling replica
	KillDemotions uint64 // lease expiries observed by routing
}

// ReplicaQPSRow is one point of the R-sweep: verified cross-node stream
// throughput at replication factor R.
type ReplicaQPSRow struct {
	R   int
	QPS float64
}

// Cluster runs the distributed-serving experiment.
func (e *Env) Cluster() (*ClusterResult, error) {
	const k, nNodes = 4, 2
	n := e.scale(768)
	h := hashx.New()
	sr, _, err := e.buildUniform(h, n, 16, 2, 11)
	if err != nil {
		return nil, err
	}
	master := sr.Clone()
	set, err := partition.Split(sr, k)
	if err != nil {
		return nil, err
	}
	role := accessctl.Role{Name: "all"}
	pub := e.Key.Public()
	v := verify.New(h, pub, sr.Params, sr.Schema)

	// N shard nodes on real listeners.
	urls := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		s := server.New(server.Config{Hasher: h, Pub: pub, Policy: accessctl.NewPolicy(role)})
		hs, err := server.Serve("127.0.0.1:0", s)
		if err != nil {
			return nil, err
		}
		defer hs.Shutdown(shutdownCtx())
		urls[i] = "http://" + hs.Addr()
	}
	coord, err := cluster.New(cluster.Config{
		Hasher: h, Pub: pub, Params: sr.Params, Schema: sr.Schema,
		Policy: accessctl.NewPolicy(role), Spec: set.Spec, Nodes: urls,
	})
	if err != nil {
		return nil, err
	}
	if err := coord.Place(set); err != nil {
		return nil, err
	}
	coordS, err := serveHandler(coord.Handler())
	if err != nil {
		return nil, err
	}
	defer coordS.close()

	// Baseline: the same partitioned publication in one process.
	single := server.New(server.Config{Hasher: h, Pub: pub, Policy: accessctl.NewPolicy(role)})
	if err := single.AddPartition(set, false); err != nil {
		return nil, err
	}
	singleS, err := server.Serve("127.0.0.1:0", single)
	if err != nil {
		return nil, err
	}
	defer singleS.Shutdown(shutdownCtx())

	res := &ClusterResult{Records: n, Shards: k, Nodes: nNodes}
	q := engine.Query{Relation: sr.Schema.Name}
	iters := 24
	if e.Short {
		iters = 6
	}

	runStreams := func(url string) (int, float64, error) {
		rows := 0
		start := time.Now()
		for i := 0; i < iters; i++ {
			sv, err := v.NewShardStreamVerifier(set.Spec, q, role)
			if err != nil {
				return 0, 0, err
			}
			cl := &wire.Client{BaseURL: url}
			stats, err := cl.QueryStreamWith(sv, role.Name, q, 64, nil)
			if err != nil {
				return 0, 0, fmt.Errorf("stream rejected: %w", err)
			}
			rows += stats.Rows
		}
		return rows, float64(iters) / time.Since(start).Seconds(), nil
	}
	var qps float64
	if res.StreamRows, qps, err = runStreams(coordS.url); err != nil {
		return nil, err
	}
	res.StreamQueries = iters
	res.StreamQPS = qps
	if _, res.SingleQPS, err = runStreams("http://" + singleS.Addr()); err != nil {
		return nil, err
	}

	// Online migration of shard 1 under live deltas and live queries.
	migrating := 1
	sl := set.Slices[migrating]
	victim := sl.Recs[len(sl.Recs)/2]
	victimIdx := -1
	for i, rec := range master.Recs {
		if rec.Key() == victim.Key() && rec.Tuple.RowID == victim.Tuple.RowID {
			victimIdx = i
			break
		}
	}
	if victimIdx < 0 {
		return nil, fmt.Errorf("experiments: migration victim not found")
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var queries, rejected, deltas atomic.Uint64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				sv, err := v.NewShardStreamVerifier(set.Spec, q, role)
				if err != nil {
					rejected.Add(1)
					continue
				}
				cl := &wire.Client{BaseURL: coordS.url}
				if _, err := cl.QueryStreamWith(sv, role.Name, q, 64, nil); err != nil {
					rejected.Add(1)
				}
				queries.Add(1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := 0
		for !stop.Load() {
			seq++
			before := master.Clone()
			rec := master.Recs[victimIdx]
			if _, err := master.UpdateAttrs(h, e.Key, rec.Key(), rec.Tuple.RowID,
				[]relation.Value{relation.BytesVal([]byte(fmt.Sprintf("live-%d", seq)))}); err != nil {
				return
			}
			if _, err := coord.ApplyDelta(delta.Diff(before, master)); err != nil {
				return
			}
			deltas.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rep, err := coord.Rebalance(migrating, urls[0])
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return nil, fmt.Errorf("experiments: rebalance: %w", err)
	}
	res.RebalancedShard = migrating
	res.CopyRounds = rep.CopyRounds
	res.Copy = rep.CopyDuration
	res.Cutover = rep.CutoverDuration
	res.QueriesDuringMigration = queries.Load()
	res.RejectedDuringMigration = rejected.Load()
	res.DeltasDuringMigration = deltas.Load()

	// Sanity: the migrated cluster must still verify end to end.
	sv, err := v.NewShardStreamVerifier(set.Spec, q, role)
	if err != nil {
		return nil, err
	}
	cl := &wire.Client{BaseURL: coordS.url}
	if _, err := cl.QueryStreamWith(sv, role.Name, q, 64, nil); err != nil {
		return nil, fmt.Errorf("experiments: post-migration stream rejected: %w", err)
	}

	// R-way replication over three fresh nodes: the sweep, then the
	// kill drill. Each R gets its own publication of the same slices —
	// the verifier and spec are unchanged, only placement widens.
	const repNodes = 3
	res.ReplicaNodes = repNodes
	buildRep := func(r int, ttl time.Duration) (*cluster.Coordinator, *handlerServer, []*server.HTTPServer, error) {
		nodes := make([]*server.HTTPServer, 0, repNodes)
		urls := make([]string, repNodes)
		fail := func(err error) (*cluster.Coordinator, *handlerServer, []*server.HTTPServer, error) {
			for _, hs := range nodes {
				hs.Shutdown(shutdownCtx())
			}
			return nil, nil, nil, err
		}
		for i := 0; i < repNodes; i++ {
			s := server.New(server.Config{Hasher: h, Pub: pub, Policy: accessctl.NewPolicy(role)})
			hs, err := server.Serve("127.0.0.1:0", s)
			if err != nil {
				return fail(err)
			}
			nodes = append(nodes, hs)
			urls[i] = "http://" + hs.Addr()
		}
		rc, err := cluster.New(cluster.Config{
			Hasher: h, Pub: pub, Params: sr.Params, Schema: sr.Schema,
			Policy: accessctl.NewPolicy(role), Spec: set.Spec, Nodes: urls,
			Replicas: r, LeaseTTL: ttl,
		})
		if err != nil {
			return fail(err)
		}
		if err := rc.Place(set); err != nil {
			return fail(err)
		}
		cs, err := serveHandler(rc.Handler())
		if err != nil {
			return fail(err)
		}
		return rc, cs, nodes, nil
	}
	teardown := func(rc *cluster.Coordinator, cs *handlerServer, nodes []*server.HTTPServer) {
		cs.close()
		rc.Close()
		for _, hs := range nodes {
			hs.Shutdown(shutdownCtx())
		}
	}

	for _, r := range []int{1, 2, 3} {
		rc, cs, nodes, err := buildRep(r, 0)
		if err != nil {
			return nil, err
		}
		_, qps, serr := runStreams(cs.url)
		teardown(rc, cs, nodes)
		if serr != nil {
			return nil, fmt.Errorf("experiments: R=%d sweep: %w", r, serr)
		}
		res.ReplicaQPS = append(res.ReplicaQPS, ReplicaQPSRow{R: r, QPS: qps})
	}

	// The drill: R=2, short leases, live query load, one node dies the
	// hard way. A query fails only when its bounded retry fails too.
	res.KillReplicas = 2
	rc, cs, nodes, err := buildRep(2, 300*time.Millisecond)
	if err != nil {
		return nil, err
	}
	stopHB := rc.StartHeartbeats(100 * time.Millisecond)
	var killStop atomic.Bool
	var killWG sync.WaitGroup
	var killQ, killRetried, killFailed atomic.Uint64
	runOnce := func() error {
		sv, err := v.NewShardStreamVerifier(set.Spec, q, role)
		if err != nil {
			return err
		}
		kcl := &wire.Client{BaseURL: cs.url}
		_, err = kcl.QueryStreamWith(sv, role.Name, q, 64, nil)
		return err
	}
	for w := 0; w < 2; w++ {
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			for !killStop.Load() {
				killQ.Add(1)
				if err := runOnce(); err != nil {
					killRetried.Add(1)
					if err := runOnce(); err != nil {
						killFailed.Add(1)
					}
				}
			}
		}()
	}
	time.Sleep(250 * time.Millisecond) // healthy-load warm-up
	nodes[repNodes-1].Kill()           // listener and every connection, abruptly
	time.Sleep(900 * time.Millisecond) // lease expiry plus post-death load
	killStop.Store(true)
	killWG.Wait()
	stopHB()
	st := rc.Stats()
	teardown(rc, cs, nodes)
	res.KillQueries = killQ.Load()
	res.KillRetried = killRetried.Load()
	res.KillFailed = killFailed.Load()
	res.KillFailovers = st.Failovers
	res.KillDemotions = st.Demotions
	return res, nil
}

// PrintCluster renders the cluster experiment.
func PrintCluster(w io.Writer, r *ClusterResult) {
	fmt.Fprintf(w, "\nE-cluster: coordinator + %d shard nodes over TCP (%d records, %d shards)\n",
		r.Nodes, r.Records, r.Shards)
	fmt.Fprintf(w, "  cross-node verified streams : %d queries, %d rows, %.1f q/s\n",
		r.StreamQueries, r.StreamRows, r.StreamQPS)
	fmt.Fprintf(w, "  single-process baseline     : %.1f q/s (fan-out wire overhead %.0f%%)\n",
		r.SingleQPS, 100*(1-r.StreamQPS/r.SingleQPS))
	fmt.Fprintf(w, "  rebalance shard %d           : copy %v (%d rounds), cutover %v\n",
		r.RebalancedShard, r.Copy.Round(time.Millisecond), r.CopyRounds, r.Cutover.Round(time.Millisecond))
	fmt.Fprintf(w, "  during migration            : %d queries (%d rejected), %d live deltas\n",
		r.QueriesDuringMigration, r.RejectedDuringMigration, r.DeltasDuringMigration)
	if r.RejectedDuringMigration == 0 {
		fmt.Fprintln(w, "  zero rejected in-flight queries across the cutover ✓")
	}
	if len(r.ReplicaQPS) > 0 {
		fmt.Fprintf(w, "  R-way sweep (%d nodes)       :", r.ReplicaNodes)
		for _, row := range r.ReplicaQPS {
			fmt.Fprintf(w, "  R=%d %.1f q/s", row.R, row.QPS)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  node kill at R=%d            : %d queries (%d retried, %d failed), %d failovers, %d demotions\n",
			r.KillReplicas, r.KillQueries, r.KillRetried, r.KillFailed, r.KillFailovers, r.KillDemotions)
		if r.KillFailed == 0 {
			fmt.Fprintln(w, "  zero failed queries through the node death ✓")
		}
	}
}

// handlerServer runs an arbitrary handler on a real listener (the
// server package's Serve is bound to its own type).
type handlerServer struct {
	url string
	hs  *http.Server
}

func serveHandler(h http.Handler) (*handlerServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return &handlerServer{url: "http://" + ln.Addr().String(), hs: hs}, nil
}

func (s *handlerServer) close() { s.hs.Close() }

// shutdownCtx bounds experiment teardown.
func shutdownCtx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = cancel // teardown path; the timeout is the bound
	return ctx
}
