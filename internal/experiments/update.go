package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"vcqr/internal/baseline/devanbu"
	"vcqr/internal/btree"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
)

// UpdateRow compares the per-update maintenance cost of the two schemes
// (Section 6.3): the chained-signature scheme re-signs 3 records whose
// signatures live in at most 2 adjoining B+-tree leaves; the Merkle-tree
// baseline recomputes the path to the root and re-signs the root — a
// serialization hot-spot.
type UpdateRow struct {
	N int
	// Ours.
	OursSigsPerUpdate  float64
	OursLeafSpanAvg    float64
	OursLeafSpanMax    int
	OursRootTouchedPct float64 // always 0: no global structure
	// Devanbu.
	DevNodesPerUpdate float64
	DevRootTouchedPct float64 // always 100
}

// Update runs E6: apply random attribute updates to signed relations of
// increasing size and account the work.
func (e *Env) Update() ([]UpdateRow, error) {
	ns := []int{1024, 4096}
	if e.Short {
		ns = []int{256, 1024}
	}
	const updates = 50
	var rows []UpdateRow
	for _, n := range ns {
		h := hashx.New()
		sr, rel, err := e.buildUniform(h, n, 32, 2, int64(n)+1)
		if err != nil {
			return nil, err
		}
		st, err := devanbu.Build(h, e.Key, rel)
		if err != nil {
			return nil, err
		}
		// Mirror the signature chain into a B+-tree as Section 6.3
		// proposes, to measure leaf locality.
		bt, err := btree.New(128)
		if err != nil {
			return nil, err
		}
		for i := 1; i <= sr.Len(); i++ {
			rec := sr.Recs[i]
			if err := bt.Insert(btree.Entry{Key: rec.Key(), RowID: rec.Tuple.RowID, Sig: rec.Sig}); err != nil {
				return nil, err
			}
		}
		rng := rand.New(rand.NewSource(int64(n)))
		var sigsTotal, spanTotal, devNodes int
		spanMax := 0
		for u := 0; u < updates; u++ {
			idx := rng.Intn(sr.Len()) + 1
			rec := sr.Recs[idx]
			attrs := []relation.Value{relation.BytesVal([]byte{byte(u), byte(u >> 8)})}
			resigned, err := sr.UpdateAttrs(h, e.Key, rec.Key(), rec.Tuple.RowID, attrs)
			if err != nil {
				return nil, err
			}
			sigsTotal += resigned
			span, err := bt.LeafSpan(rec.Key(), rec.Tuple.RowID)
			if err != nil {
				return nil, err
			}
			spanTotal += span
			if span > spanMax {
				spanMax = span
			}
			dIdx := rng.Intn(n)
			work, err := st.Update(h, e.Key, dIdx, relation.Tuple{
				Key:   st.Tuples[dIdx+1].Key,
				Attrs: attrs,
			})
			if err != nil {
				return nil, err
			}
			devNodes += work
		}
		rows = append(rows, UpdateRow{
			N:                 n,
			OursSigsPerUpdate: float64(sigsTotal) / updates,
			OursLeafSpanAvg:   float64(spanTotal) / updates,
			OursLeafSpanMax:   spanMax,
			DevNodesPerUpdate: float64(devNodes) / updates,
			DevRootTouchedPct: 100,
		})
	}
	return rows, nil
}

// PrintUpdate renders E6.
func PrintUpdate(w io.Writer, rows []UpdateRow) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf(
			"n=%5d  ours: %.1f sigs/update, leaf span avg %.2f max %d, root touched 0%%   devanbu: %.1f tree nodes/update + 1 root re-sign, root touched %.0f%%",
			r.N, r.OursSigsPerUpdate, r.OursLeafSpanAvg, r.OursLeafSpanMax, r.DevNodesPerUpdate, r.DevRootTouchedPct))
	}
	printTable(w, "E6 / Section 6.3 — update cost: local re-signing vs root propagation", lines)
}
