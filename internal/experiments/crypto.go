package experiments

import (
	"fmt"
	"io"
	"time"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// E-crypto: the aggregation fast path, measured at the crypto layer —
// the exact work the server performs per query to condense per-record
// RSA signatures, with everything else (boundary proofs, disclosure,
// transport) stripped away so the asymptotic change is visible:
//
//   - naive: the pre-index path — decode and fold |Q| signatures,
//     O(|Q|) modular multiplications per query;
//   - tree: the product-tree path — one O(log n) range lookup per
//     covering shard plus K-1 multiplications to combine partials.
//
// The sweep runs |Q| ∈ {2^4 .. 2^16} × K ∈ {1, 4, 8} on the same signed
// relation, then measures the delta-cutover side: deriving the next
// epoch's index incrementally (O(ops · log n) persistent tree updates)
// against rebuilding it from scratch (O(n)).

// CryptoAggRow is one point of the aggregation sweep.
type CryptoAggRow struct {
	// Q is the result size (covered records aggregated).
	Q int `json:"q"`
	// K is the shard count the range was served across.
	K int `json:"k"`
	// NaiveNs and TreeNs are per-query aggregation costs.
	NaiveNs int64 `json:"naive_ns"`
	TreeNs  int64 `json:"tree_ns"`
	// Speedup is NaiveNs / TreeNs.
	Speedup float64 `json:"speedup"`
}

// CryptoDeltaRow compares index maintenance strategies across one
// owner-update cutover.
type CryptoDeltaRow struct {
	// N is the relation size; Ops the delta's operation count.
	N   int `json:"n"`
	Ops int `json:"delta_ops"`
	// IncrementalNs is a full delta.Apply with in-lock-step index
	// maintenance (clone + validate + O(ops log n) tree updates).
	IncrementalNs int64 `json:"incremental_apply_ns"`
	// RebuildApplyNs is the same cutover under a rebuild strategy: the
	// delta applied without an index, then BuildAggIndex from scratch.
	RebuildApplyNs int64 `json:"rebuild_apply_ns"`
	// RebuildIndexNs isolates the O(n) index build itself.
	RebuildIndexNs int64 `json:"rebuild_index_ns"`
	// Speedup is RebuildApplyNs / IncrementalNs.
	Speedup float64 `json:"speedup"`
}

// CryptoResult is the machine-readable output of E-crypto
// (BENCH_crypto.json).
type CryptoResult struct {
	N     int             `json:"n"`
	Msign int             `json:"msign_bits"`
	Short bool            `json:"short"`
	Agg   []CryptoAggRow  `json:"aggregation"`
	Delta *CryptoDeltaRow `json:"delta"`
}

// cryptoCover is one shard's contribution to a query range: its index
// and the covered entry interval.
type cryptoCover struct {
	ix   *core.AggIndex
	a, b int
}

// timeOp runs fn repeatedly for at least minDuration (and at least once)
// and returns the per-op cost.
func timeOp(fn func()) int64 {
	const minDuration = 50 * time.Millisecond
	fn() // warm up
	iters := 0
	start := time.Now()
	for {
		fn()
		iters++
		if d := time.Since(start); d >= minDuration {
			return d.Nanoseconds() / int64(iters)
		}
	}
}

// Crypto runs the aggregation fast-path sweep.
func (e *Env) Crypto() (*CryptoResult, error) {
	h := hashx.New()
	n := e.scale(1 << 16)
	sr, _, err := e.buildUniform(h, n, 8, 2, 1205)
	if err != nil {
		return nil, err
	}
	pub := e.Key.Public()
	res := &CryptoResult{N: n, Msign: pub.SigBytes() * 8, Short: e.Short}

	// Per-K shard slices, each with its own index (K=1 is the whole
	// relation). Splitting shares record structs, so memory stays O(n).
	covers := map[int][]*core.SignedRelation{}
	for _, k := range []int{1, 4, 8} {
		if k == 1 {
			master := sr.Clone()
			if err := master.BuildAggIndex(h, pub); err != nil {
				return nil, err
			}
			covers[1] = []*core.SignedRelation{master}
			continue
		}
		set, err := partition.Split(sr.Clone(), k)
		if err != nil {
			return nil, err
		}
		for _, sl := range set.Slices {
			if err := sl.BuildAggIndex(h, pub); err != nil {
				return nil, err
			}
		}
		covers[k] = set.Slices
	}

	for q := 16; q <= 1<<16; q *= 4 {
		if q > n {
			break
		}
		// The naive reference: fold the last q records' signatures, the
		// O(|Q|) loop the serving path ran before the index existed.
		sigs := make([]sig.Signature, 0, q)
		for i := n + 1 - q; i <= n; i++ {
			sigs = append(sigs, sig.Signature(sr.Recs[i].Sig))
		}
		naiveNs := timeOp(func() {
			if _, err := pub.Aggregate(sigs); err != nil {
				panic(err)
			}
		})
		// Sanity reference for every K: the tree products must equal the
		// naive aggregate.
		want, err := pub.Aggregate(sigs)
		if err != nil {
			return nil, err
		}

		for _, k := range []int{1, 4, 8} {
			cov, err := coverLast(covers[k], q)
			if err != nil {
				return nil, err
			}
			got, err := combineCover(pub, cov)
			if err != nil {
				return nil, err
			}
			if !got.Equal(want) {
				return nil, fmt.Errorf("crypto: tree aggregate != naive at q=%d k=%d", q, k)
			}
			treeNs := timeOp(func() {
				if _, err := combineCover(pub, cov); err != nil {
					panic(err)
				}
			})
			res.Agg = append(res.Agg, CryptoAggRow{
				Q: q, K: k, NaiveNs: naiveNs, TreeNs: treeNs,
				Speedup: float64(naiveNs) / float64(treeNs),
			})
		}
	}

	dr, err := e.cryptoDelta(h, sr)
	if err != nil {
		return nil, err
	}
	res.Delta = dr
	return res, nil
}

// coverLast maps "the last q data records" onto the slices, returning
// one (index, interval) pair per covering slice in shard order.
func coverLast(slices []*core.SignedRelation, q int) ([]cryptoCover, error) {
	var rev []cryptoCover
	remaining := q
	for i := len(slices) - 1; i >= 0 && remaining > 0; i-- {
		sl := slices[i]
		ix := sl.AggIndex()
		if ix == nil {
			return nil, fmt.Errorf("crypto: slice %d lost its index", i)
		}
		// Data records of a slice (or the whole relation) occupy
		// [1, len-2]; context records and delimiters sit at the ends.
		owned := len(sl.Recs) - 2
		take := owned
		if take > remaining {
			take = remaining
		}
		b := len(sl.Recs) - 1
		rev = append(rev, cryptoCover{ix: ix, a: b - take, b: b})
		remaining -= take
	}
	if remaining > 0 {
		return nil, fmt.Errorf("crypto: %d records uncovered", remaining)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// combineCover produces the condensed signature over a shard cover: one
// O(log n) tree lookup per shard, combined with K-1 multiplications —
// the fan-out fast path in miniature.
func combineCover(pub *sig.PublicKey, cov []cryptoCover) (sig.Signature, error) {
	if len(cov) == 1 {
		return cov[0].ix.RangeAggregate(cov[0].a, cov[0].b)
	}
	agg := pub.NewAggregator()
	for _, c := range cov {
		part, err := c.ix.RangeAggregate(c.a, c.b)
		if err != nil {
			return nil, err
		}
		if err := agg.Add(part); err != nil {
			return nil, err
		}
	}
	return agg.Sum()
}

// cryptoDelta measures one owner-update cutover under the incremental
// and rebuild index-maintenance strategies.
func (e *Env) cryptoDelta(h *hashx.Hasher, sr *core.SignedRelation) (*CryptoDeltaRow, error) {
	pub := e.Key.Public()
	owner := sr.Clone()
	target := owner.Recs[len(owner.Recs)/2]
	// A real value change: FDH signing is deterministic, so re-signing
	// identical attributes would diff to an empty delta.
	if _, err := owner.UpdateAttrs(h, e.Key, target.Key(), target.Tuple.RowID,
		[]relation.Value{relation.BytesVal([]byte("cutover!"))}); err != nil {
		return nil, err
	}
	d := delta.Diff(sr, owner)
	if d.Size() == 0 {
		return nil, fmt.Errorf("crypto: cutover delta is empty")
	}

	indexed := sr.Clone()
	if err := indexed.BuildAggIndex(h, pub); err != nil {
		return nil, err
	}
	plain := sr.Clone()

	incNs := timeOp(func() {
		next := indexed.Clone()
		if err := delta.Apply(h, pub, next, d); err != nil {
			panic(err)
		}
		if next.AggIndex() == nil {
			panic("crypto: incremental apply dropped the index")
		}
	})
	rebuildApplyNs := timeOp(func() {
		next := plain.Clone()
		if err := delta.Apply(h, pub, next, d); err != nil {
			panic(err)
		}
		if err := next.BuildAggIndex(h, pub); err != nil {
			panic(err)
		}
	})
	rebuildIndexNs := timeOp(func() {
		if _, err := core.BuildAggIndex(h, pub, plain); err != nil {
			panic(err)
		}
	})
	return &CryptoDeltaRow{
		N: sr.Len(), Ops: d.Size(),
		IncrementalNs:  incNs,
		RebuildApplyNs: rebuildApplyNs,
		RebuildIndexNs: rebuildIndexNs,
		Speedup:        float64(rebuildApplyNs) / float64(incNs),
	}, nil
}

// PrintCrypto writes the E-crypto tables.
func PrintCrypto(w io.Writer, r *CryptoResult) {
	rows := make([]string, 0, len(r.Agg)+2)
	for _, a := range r.Agg {
		rows = append(rows, fmt.Sprintf(
			"|Q|=%-6d K=%d   naive %10s   tree %10s   speedup %8.1fx",
			a.Q, a.K, time.Duration(a.NaiveNs), time.Duration(a.TreeNs), a.Speedup))
	}
	printTable(w, fmt.Sprintf("E-crypto: condensed-signature aggregation, n=%d, Msign=%d (per query)", r.N, r.Msign), rows)
	if d := r.Delta; d != nil {
		printTable(w, "E-crypto: delta cutover index maintenance", []string{
			fmt.Sprintf("incremental apply (O(ops log n) updates) %12s", time.Duration(d.IncrementalNs)),
			fmt.Sprintf("apply + full index rebuild (O(n))        %12s", time.Duration(d.RebuildApplyNs)),
			fmt.Sprintf("index rebuild alone                      %12s", time.Duration(d.RebuildIndexNs)),
			fmt.Sprintf("cutover speedup %3.1fx over %d ops on n=%d", d.Speedup, d.Ops, d.N),
		})
	}
}
