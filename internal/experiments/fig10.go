package experiments

import (
	"fmt"
	"io"
	"time"

	"vcqr/internal/costmodel"
	"vcqr/internal/hashx"
	"vcqr/internal/verify"
)

// Fig10Row is one point of Figure 10: user computation overhead against
// the number base B, one series per result cardinality.
type Fig10Row struct {
	B          uint64
	Q          int
	MeasuredMs float64 // wall-clock verification time
	Hashes     uint64  // measured hash operations during verification
	ModelMs    float64 // formula (5) at paper constants (Chash = 50us)
	ModelAtHW  float64 // formula (5) at this machine's measured Chash/Csign
}

// Fig10 regenerates Figure 10: verification cost as a function of B for
// |Q| in {1, 5, 10}. Wall-clock numbers on modern hardware are ~three
// orders of magnitude below the paper's 2005 constants, so the harness
// also evaluates the model at measured constants — the curve *shape*
// (minimum at B in {2,3}, rising beyond) is the reproduced result.
func (e *Env) Fig10() ([]Fig10Row, error) {
	chash, csign := MeasureConstants(e.Key)
	n := e.scale(40)
	qs := []int{1, 5, 10}
	var rows []Fig10Row
	for b := uint64(2); b <= 10; b++ {
		h := hashx.New()
		sr, _, err := e.buildUniform(h, n, 32, b, int64(b))
		if err != nil {
			return nil, err
		}
		pub, role := e.publisherFor(h, sr)
		v := verify.New(h, e.Key.Public(), sr.Params, sr.Schema)
		for _, q := range qs {
			if q > n {
				continue
			}
			query, err := greaterThanQuery(sr, "Uniform", q)
			if err != nil {
				return nil, err
			}
			res, err := pub.Execute("all", query)
			if err != nil {
				return nil, err
			}
			// Warm up once, then measure the best of three runs.
			if _, err := v.VerifyResult(query, role, res); err != nil {
				return nil, err
			}
			best := time.Duration(1 << 62)
			var hashes uint64
			for rep := 0; rep < 3; rep++ {
				h.ResetOps()
				start := time.Now()
				if _, err := v.VerifyResult(query, role, res); err != nil {
					return nil, err
				}
				el := time.Since(start)
				if el < best {
					best = el
					hashes = h.Ops()
				}
			}
			model := costmodel.PaperDefaults()
			model.B = b
			hw := model
			hw.Chash, hw.Csign = chash, csign
			rows = append(rows, Fig10Row{
				B:          b,
				Q:          q,
				MeasuredMs: float64(best.Microseconds()) / 1000,
				Hashes:     hashes,
				ModelMs:    float64(model.UserCost(q).Microseconds()) / 1000,
				ModelAtHW:  float64(hw.UserCost(q).Microseconds()) / 1000,
			})
		}
	}
	return rows, nil
}

// PrintFig10 renders the B sweep.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("B=%2d  |Q|=%3d  measured=%8.3fms (%6d hashes)  model(paper)=%9.2fms  model(this hw)=%8.3fms",
			r.B, r.Q, r.MeasuredMs, r.Hashes, r.ModelMs, r.ModelAtHW))
	}
	printTable(w, "E2 / Figure 10 — user computation overhead vs base B", lines)
}
