package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/delta"
	"vcqr/internal/hashx"
	"vcqr/internal/multiorder"
	"vcqr/internal/relation"
	"vcqr/internal/workload"
)

// DeltaRow reports E10: incremental-sync traffic in record operations,
// against the full-snapshot alternative, for each mutation type. The
// Section 6.3 locality argument predicts a constant ~3 ops per mutation
// regardless of table size.
type DeltaRow struct {
	N           int
	SnapshotOps int // records a full snapshot would ship
	UpdateOps   int // delta ops for one attribute update
	InsertOps   int // delta ops for one insert
	DeleteOps   int // delta ops for one delete
}

// DeltaSync runs E10.
func (e *Env) DeltaSync() ([]DeltaRow, error) {
	ns := []int{256, 1024}
	if e.Short {
		ns = []int{128, 512}
	}
	var rows []DeltaRow
	for _, n := range ns {
		h := hashx.New()
		sr, _, err := e.buildUniform(h, n, 32, 2, int64(n)+7)
		if err != nil {
			return nil, err
		}
		row := DeltaRow{N: n, SnapshotOps: len(sr.Recs)}

		attrs := []relation.Value{relation.BytesVal([]byte{0xbe, 0xef})}

		before := sr.Clone()
		rec := sr.Recs[n/2]
		if _, err := sr.UpdateAttrs(h, e.Key, rec.Key(), rec.Tuple.RowID, attrs); err != nil {
			return nil, err
		}
		row.UpdateOps = delta.Diff(before, sr).Size()

		before = sr.Clone()
		if _, err := sr.Insert(h, e.Key, relation.Tuple{Key: rec.Key() + 1, Attrs: attrs}); err != nil {
			return nil, err
		}
		row.InsertOps = delta.Diff(before, sr).Size()

		before = sr.Clone()
		victim := sr.Recs[n/3]
		if _, err := sr.Delete(h, e.Key, victim.Key(), victim.Tuple.RowID); err != nil {
			return nil, err
		}
		row.DeleteOps = delta.Diff(before, sr).Size()

		rows = append(rows, row)
	}
	return rows, nil
}

// PrintDeltaSync renders E10.
func PrintDeltaSync(w io.Writer, rows []DeltaRow) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf(
			"n=%5d  snapshot=%5d records  update-delta=%d ops  insert-delta=%d ops  delete-delta=%d ops",
			r.N, r.SnapshotOps, r.UpdateOps, r.InsertOps, r.DeleteOps))
	}
	printTable(w, "E10 / delta sync — per-mutation sync traffic vs full snapshot (Section 6.3 locality, deployed)", lines)
}

// MultiOrderRow reports E11: the signing-cost multiplier of supporting
// range verification on k attributes — the Section 6.3 observation
// ("analogous to creating B+-trees on those attributes") and the baseline
// the paper's future-work multi-dimensional indices target.
type MultiOrderRow struct {
	N          int
	Orders     int
	Signatures int
	Multiplier float64
}

// MultiOrder runs E11 with 1, 2 and 3 orderings over the employee table.
func (e *Env) MultiOrder() ([]MultiOrderRow, error) {
	n := e.scale(120)
	specsAll := []multiorder.OrderSpec{
		{Col: "Dept", L: 0, U: 64, Base: 2},
		{Col: "ID", L: 0, U: 1 << 20, Base: 2},
	}
	var rows []MultiOrderRow
	for k := 0; k <= len(specsAll); k++ {
		h := hashx.New()
		rel, err := workload.Employees(workload.EmployeeConfig{
			N: n, L: 0, U: 1 << 32, PhotoSize: 8, Seed: 77,
		})
		if err != nil {
			return nil, err
		}
		// ID column must be positive and inside its declared domain; the
		// generator assigns 0..n-1, so shift by one.
		idIdx := rel.Schema.ColIndex("ID")
		for i := range rel.Tuples {
			rel.Tuples[i].Attrs[idIdx] = relation.IntVal(rel.Tuples[i].Attrs[idIdx].Int + 1)
		}
		tab, err := multiorder.Build(h, e.Key, rel, 2, specsAll[:k])
		if err != nil {
			return nil, err
		}
		rows = append(rows, MultiOrderRow{
			N:          n,
			Orders:     1 + k,
			Signatures: tab.Signatures,
			Multiplier: tab.CostMultiplier(),
		})
	}
	return rows, nil
}

// PrintMultiOrder renders E11.
func PrintMultiOrder(w io.Writer, rows []MultiOrderRow) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("n=%4d  orders=%d  signatures=%5d  multiplier=%.1fx",
			r.N, r.Orders, r.Signatures, r.Multiplier))
	}
	printTable(w, "E11 / multiple sort orders — signing-cost multiplier per verifiable attribute", lines)
}
