// Package experiments implements the benchmark harness that regenerates
// every table and figure of the paper's evaluation (Section 6), plus the
// comparative and ablation experiments indexed in DESIGN.md (E1-E9).
//
// Each experiment returns typed rows and offers a tabular printer; the
// cmd/vcbench driver and the repository-root benchmarks are thin wrappers
// around this package. All workloads are seeded and deterministic.
package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/workload"
)

// Env carries the shared experiment environment: the owner key (generated
// once — RSA keygen is slow) and the scale knob.
type Env struct {
	Key *sig.PrivateKey
	// Short reduces dataset sizes for quick runs (go test, CI).
	Short bool
}

// NewEnv creates the environment.
func NewEnv(short bool) (*Env, error) {
	key, err := sig.Generate(sig.DefaultBits, nil)
	if err != nil {
		return nil, err
	}
	return &Env{Key: key, Short: short}, nil
}

// scale shrinks a size in Short mode.
func (e *Env) scale(n int) int {
	if e.Short && n > 64 {
		return n / 4
	}
	return n
}

// buildUniform signs a uniform relation of n records with the given
// payload size over a 32-bit key domain at base B.
func (e *Env) buildUniform(h *hashx.Hasher, n, payload int, base uint64, seed int64) (*core.SignedRelation, *relation.Relation, error) {
	rel, err := workload.Uniform(workload.UniformConfig{
		N: n, L: 0, U: 1 << 32, PayloadSize: payload, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	p, err := core.NewParams(0, 1<<32, base)
	if err != nil {
		return nil, nil, err
	}
	sr, err := core.Build(h, e.Key, p, rel)
	if err != nil {
		return nil, nil, err
	}
	return sr, rel, nil
}

// publisherFor wraps a signed relation in a single-role publisher.
func (e *Env) publisherFor(h *hashx.Hasher, sr *core.SignedRelation) (*engine.Publisher, accessctl.Role) {
	role := accessctl.Role{Name: "all"}
	pub := engine.NewPublisher(h, e.Key.Public(), accessctl.NewPolicy(role))
	// Ingest validation is an O(n) rebuild; experiments skip it.
	_ = pub.AddRelation(sr, false)
	return pub, role
}

// greaterThanQuery returns a query selecting the top q records of sr:
// the Section 3 greater-than predicate, which formula (4)/(5) model.
func greaterThanQuery(sr *core.SignedRelation, name string, q int) (engine.Query, error) {
	n := sr.Len()
	if q > n {
		return engine.Query{}, fmt.Errorf("experiments: want %d results from %d records", q, n)
	}
	lo := sr.Recs[n-q+1].Key() // index n-q+1 is the (q)th record from the end
	return engine.Query{Relation: name, KeyLo: lo}, nil
}

// printTable writes rows with a header through a tab-ish formatter.
func printTable(w io.Writer, header string, rows []string) {
	fmt.Fprintln(w, header)
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
	fmt.Fprintln(w)
}
