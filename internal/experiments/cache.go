package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/cache"
	"vcqr/internal/cluster"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/server"
	"vcqr/internal/verify"
	"vcqr/internal/wire"
)

// E-cache: the shared verified-VO edge-cache tier, end to end over real
// TCP. One relation is signed and split K ways over shard nodes; the
// same nodes sit behind two coordinators — one fronted by a cache peer,
// one bare — and both serve the same query sequences so the tier's
// effect is isolated:
//
//   - hot-range (Zipf) workload: each distinct stream is verified once
//     through the unmodified shard-aware verifier, then the throughput
//     loops drain raw bytes and require them byte-identical to the
//     verified reference — every served byte is covered by a
//     verification while the measurement stays serving-bound, the way a
//     CDN-style tier is actually exercised;
//   - uniform workload: no locality, the honest lower bound — the tier
//     must not pessimize cold traffic;
//   - singleflight storm: concurrent identical queries against a cold
//     cache must reach origin at most once per (epoch, shard) key.
type CacheResult struct {
	Records, Shards, Nodes, Peers int

	// Hot-range (Zipf over HotRanges distinct ranges).
	HotRanges    int
	HotQueries   int
	HotCachedQPS float64
	HotOriginQPS float64
	HotSpeedup   float64
	HotHitRatio  float64

	// Uniform (every query a fresh range).
	UniQueries   int
	UniCachedQPS float64
	UniOriginQPS float64

	// Singleflight storm.
	StormQueries          int
	StormOriginSubStreams uint64
	StormCollapsed        uint64

	// Peer-side totals after the run.
	PeerEntries int
	PeerBytes   int64
}

// rawStream POSTs a stream request and returns the raw frame bytes.
func rawStream(hc *http.Client, url string, req wire.StreamRequest) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return nil, err
	}
	resp, err := hc.Post(url+"/stream", "application/octet-stream", &body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stream returned %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Cache runs the edge-cache tier experiment.
func (e *Env) Cache() (*CacheResult, error) {
	const k, nNodes, chunkRows = 4, 2, 64
	n := e.scale(768)
	h := hashx.New()
	sr, _, err := e.buildUniform(h, n, 16, 2, 11)
	if err != nil {
		return nil, err
	}
	set, err := partition.Split(sr, k)
	if err != nil {
		return nil, err
	}
	role := accessctl.Role{Name: "all"}
	pub := e.Key.Public()
	v := verify.New(h, pub, sr.Params, sr.Schema)

	// Shard nodes on real listeners.
	nodes := make([]*server.Server, nNodes)
	urls := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		s := server.New(server.Config{Hasher: h, Pub: pub, Policy: accessctl.NewPolicy(role)})
		hs, err := server.Serve("127.0.0.1:0", s)
		if err != nil {
			return nil, err
		}
		defer hs.Shutdown(shutdownCtx())
		nodes[i] = s
		urls[i] = "http://" + hs.Addr()
	}

	// One cache peer on a real listener.
	peer := cache.NewServer(0)
	peerS, err := serveHandler(peer.Handler())
	if err != nil {
		return nil, err
	}
	defer peerS.close()
	cc := cache.NewClient(cache.Config{Peers: []string{peerS.url}})

	newCoord := func(withCache bool) (*cluster.Coordinator, error) {
		cfg := cluster.Config{
			Hasher: h, Pub: pub, Params: sr.Params, Schema: sr.Schema,
			Policy: accessctl.NewPolicy(role), Spec: set.Spec, Nodes: urls,
		}
		if withCache {
			cfg.Cache = cc
		}
		return cluster.New(cfg)
	}
	cached, err := newCoord(true)
	if err != nil {
		return nil, err
	}
	if err := cached.Place(set); err != nil {
		return nil, err
	}
	bare, err := newCoord(false)
	if err != nil {
		return nil, err
	}
	// The bare coordinator adopts the placement instead of re-installing.
	if _, err := bare.Recover(); err != nil {
		return nil, err
	}
	cachedS, err := serveHandler(cached.Handler())
	if err != nil {
		return nil, err
	}
	defer cachedS.close()
	bareS, err := serveHandler(bare.Handler())
	if err != nil {
		return nil, err
	}
	defer bareS.close()

	res := &CacheResult{Records: n, Shards: k, Nodes: nNodes, Peers: 1}
	relName := sr.Schema.Name
	hc := &http.Client{}

	// Hot-range workload: hotRanges sub-ranges of the key domain, drawn
	// Zipf so a few carry most of the traffic.
	const hotRanges = 16
	res.HotRanges = hotRanges
	domain := uint64(1) << 32
	rangeQuery := func(i int) engine.Query {
		width := domain / hotRanges
		lo := uint64(i) * width
		return engine.Query{Relation: relName, KeyLo: lo, KeyHi: lo + width - 1}
	}

	// Verify each distinct stream once through the unmodified verifier
	// and keep the reference bytes; also pin cached == bare byte-for-byte.
	refs := make([][]byte, hotRanges)
	for i := 0; i < hotRanges; i++ {
		q := rangeQuery(i)
		sv, err := v.NewShardStreamVerifier(set.Spec, q, role)
		if err != nil {
			return nil, err
		}
		cl := &wire.Client{BaseURL: bareS.url, HTTP: hc}
		if _, err := cl.QueryStreamWith(sv, role.Name, q, chunkRows, nil); err != nil {
			return nil, fmt.Errorf("experiments: range %d rejected by verifier: %w", i, err)
		}
		req := wire.StreamRequest{Role: role.Name, Query: q, ChunkRows: chunkRows}
		if refs[i], err = rawStream(hc, bareS.url, req); err != nil {
			return nil, err
		}
		got, err := rawStream(hc, cachedS.url, req)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, refs[i]) {
			return nil, fmt.Errorf("experiments: cached stream for range %d differs from bare coordinator", i)
		}
	}

	// Warm the admission gate (cost-model default: cache on the second
	// sighting) and let the async fills land before timing.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < hotRanges; i++ {
			if _, err := rawStream(hc, cachedS.url, wire.StreamRequest{Role: role.Name, Query: rangeQuery(i), ChunkRows: chunkRows}); err != nil {
				return nil, err
			}
		}
	}
	settle := time.Now().Add(2 * time.Second)
	for prev := -1; ; {
		cur := peer.Store().Stats().Entries
		if cur == prev || time.Now().After(settle) {
			break
		}
		prev = cur
		time.Sleep(10 * time.Millisecond)
	}

	iters := 400
	if e.Short {
		iters = 80
	}
	res.HotQueries = iters
	zipfDraws := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		z := rand.NewZipf(rng, 1.2, 1, hotRanges-1)
		out := make([]int, iters)
		for i := range out {
			out[i] = int(z.Uint64())
		}
		return out
	}
	runLoop := func(url string, draws []int) (float64, error) {
		start := time.Now()
		for _, d := range draws {
			got, err := rawStream(hc, url, wire.StreamRequest{Role: role.Name, Query: rangeQuery(d), ChunkRows: chunkRows})
			if err != nil {
				return 0, err
			}
			if !bytes.Equal(got, refs[d]) {
				return 0, fmt.Errorf("experiments: stream for range %d differs from its verified reference", d)
			}
		}
		return float64(len(draws)) / time.Since(start).Seconds(), nil
	}
	draws := zipfDraws(1)
	preHot := cached.Stats().Cache
	if res.HotOriginQPS, err = runLoop(bareS.url, draws); err != nil {
		return nil, err
	}
	if res.HotCachedQPS, err = runLoop(cachedS.url, draws); err != nil {
		return nil, err
	}
	postHot := cached.Stats().Cache
	res.HotSpeedup = res.HotCachedQPS / res.HotOriginQPS
	if asked := (postHot.Hits - preHot.Hits) + (postHot.Misses - preHot.Misses); asked > 0 {
		res.HotHitRatio = float64(postHot.Hits-preHot.Hits) / float64(asked)
	}

	// Uniform workload: every query its own narrow range — no locality,
	// nothing for the tier to reuse.
	uniIters := iters / 2
	res.UniQueries = uniIters
	uniQuery := func(i int) engine.Query {
		width := domain / uint64(uniIters+1)
		lo := uint64(i) * width
		return engine.Query{Relation: relName, KeyLo: lo, KeyHi: lo + width/2}
	}
	runUni := func(url string) (float64, error) {
		start := time.Now()
		for i := 0; i < uniIters; i++ {
			if _, err := rawStream(hc, url, wire.StreamRequest{Role: role.Name, Query: uniQuery(i), ChunkRows: chunkRows}); err != nil {
				return 0, err
			}
		}
		return float64(uniIters) / time.Since(start).Seconds(), nil
	}
	if res.UniOriginQPS, err = runUni(bareS.url); err != nil {
		return nil, err
	}
	if res.UniCachedQPS, err = runUni(cachedS.url); err != nil {
		return nil, err
	}

	// Singleflight storm: cold the tier, then fire concurrent identical
	// full-range queries and count how many sub-streams reached origin.
	for s := 0; s < k; s++ {
		cc.Invalidate(relName, s, 0)
	}
	cc.Invalidate(relName, cache.StreamShard, 0)
	originStreams := func() uint64 {
		var total uint64
		for _, s := range nodes {
			total += s.Stats().ShardStreams
		}
		return total
	}
	before := originStreams()
	preStorm := cached.Stats().Cache
	const storm = 64
	res.StormQueries = storm
	full := engine.Query{Relation: relName}
	startCh := make(chan struct{})
	var wg sync.WaitGroup
	var stormErr atomic.Value
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-startCh
			if _, err := rawStream(hc, cachedS.url, wire.StreamRequest{Role: role.Name, Query: full, ChunkRows: chunkRows}); err != nil {
				stormErr.Store(err)
			}
		}()
	}
	close(startCh)
	wg.Wait()
	if err, _ := stormErr.Load().(error); err != nil {
		return nil, fmt.Errorf("experiments: storm query: %w", err)
	}
	postStorm := cached.Stats().Cache
	res.StormOriginSubStreams = originStreams() - before
	res.StormCollapsed = postStorm.Collapsed - preStorm.Collapsed

	st := peer.Store().Stats()
	res.PeerEntries = st.Entries
	res.PeerBytes = st.Bytes
	return res, nil
}

// PrintCache renders the edge-cache experiment.
func PrintCache(w io.Writer, r *CacheResult) {
	fmt.Fprintf(w, "\nE-cache: coordinator + %d shard nodes + %d cache peer (%d records, %d shards)\n",
		r.Nodes, r.Peers, r.Records, r.Shards)
	fmt.Fprintf(w, "  hot-range (Zipf over %d)    : cached %.1f q/s vs origin %.1f q/s — %.1fx, hit ratio %.0f%%\n",
		r.HotRanges, r.HotCachedQPS, r.HotOriginQPS, r.HotSpeedup, 100*r.HotHitRatio)
	fmt.Fprintf(w, "  uniform (no locality)       : cached %.1f q/s vs origin %.1f q/s\n",
		r.UniCachedQPS, r.UniOriginQPS)
	fmt.Fprintf(w, "  singleflight storm          : %d concurrent queries, %d origin sub-streams (%d shard keys), %d collapsed\n",
		r.StormQueries, r.StormOriginSubStreams, r.Shards, r.StormCollapsed)
	fmt.Fprintf(w, "  peer after run              : %d entries, %d bytes\n", r.PeerEntries, r.PeerBytes)
	if r.HotSpeedup >= 5 {
		fmt.Fprintln(w, "  hot-range speedup >= 5x over the no-cache cluster path ✓")
	}
	if r.StormOriginSubStreams <= uint64(r.Shards) {
		fmt.Fprintln(w, "  storm reached origin at most once per (epoch, shard) key ✓")
	}
}
