package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/server"
	"vcqr/internal/verify"
	"vcqr/internal/wire"
)

// This file benchmarks the serving path the way users reach it: through
// internal/server's HTTP front end and the wire client, not by calling
// the engine directly. Two experiments:
//
//   - Serving (E-server): /query cold and cached, and /batch, end to end
//     over a loopback listener, with client-side verification included —
//     the real per-request cost a capacity planner needs.
//
//   - StreamCompare (E-stream): the same range query answered
//     materialized (/query + whole-result verify) and streamed
//     (/stream + incremental verify), comparing total latency, time to
//     first verified row, and bytes on the wire.

// servingEnv is one live loopback deployment: a server over a signed
// relation plus everything a verifying client needs.
type servingEnv struct {
	hs     *server.HTTPServer
	srv    *server.Server
	client *wire.Client
	v      *verify.Verifier
	role   accessctl.Role
	sr     *core.SignedRelation
	name   string
}

func (e *Env) newServingEnv(n int) (*servingEnv, error) {
	h := hashx.New()
	sr, _, err := e.buildUniform(h, n, 64, 2, 77)
	if err != nil {
		return nil, err
	}
	role := accessctl.Role{Name: "all"}
	srv := server.New(server.Config{
		Hasher: h,
		Pub:    e.Key.Public(),
		Policy: accessctl.NewPolicy(role),
	})
	if err := srv.AddRelation(sr, false); err != nil {
		return nil, err
	}
	hs, err := server.Serve("127.0.0.1:0", srv)
	if err != nil {
		return nil, err
	}
	return &servingEnv{
		hs:     hs,
		srv:    srv,
		client: &wire.Client{BaseURL: "http://" + hs.Addr()},
		v:      verify.New(h, e.Key.Public(), sr.Params, sr.Schema),
		role:   role,
		sr:     sr,
		name:   sr.Schema.Name,
	}, nil
}

func (se *servingEnv) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = se.hs.Shutdown(ctx)
}

// ServingRow is one end-to-end measurement of the HTTP serving path.
type ServingRow struct {
	Mode    string
	Rows    int
	Latency time.Duration
}

// Serving measures the server's HTTP endpoints end to end: a cold
// /query (VO assembled), the same query again (VO cache hit), and a
// /batch of disjoint ranges — every response verified client-side.
func (e *Env) Serving() ([]ServingRow, error) {
	n := e.scale(4096)
	se, err := e.newServingEnv(n)
	if err != nil {
		return nil, err
	}
	defer se.close()

	q, err := greaterThanQuery(se.sr, se.name, n/4)
	if err != nil {
		return nil, err
	}
	var rows []ServingRow
	run := func(mode string) error {
		start := time.Now()
		res, err := se.client.Query("all", q)
		if err != nil {
			return err
		}
		verified, err := se.v.VerifyResult(q, se.role, res)
		if err != nil {
			return err
		}
		rows = append(rows, ServingRow{Mode: mode, Rows: len(verified), Latency: time.Since(start)})
		return nil
	}
	if err := run("query-cold"); err != nil {
		return nil, err
	}
	if err := run("query-cached"); err != nil {
		return nil, err
	}

	// A batch of four disjoint quarters, served from one epoch snapshot.
	span := (se.sr.Params.U - se.sr.Params.L) / 4
	var qs []engine.Query
	for i := uint64(0); i < 4; i++ {
		qs = append(qs, engine.Query{
			Relation: se.name,
			KeyLo:    se.sr.Params.L + i*span + 1,
			KeyHi:    se.sr.Params.L + (i+1)*span,
		})
	}
	start := time.Now()
	results, errs, err := se.client.QueryBatch("all", qs)
	if err != nil {
		return nil, err
	}
	total := 0
	for i, res := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		verified, err := se.v.VerifyResult(qs[i], se.role, res)
		if err != nil {
			return nil, err
		}
		total += len(verified)
	}
	rows = append(rows, ServingRow{Mode: "batch-4", Rows: total, Latency: time.Since(start)})
	return rows, nil
}

// PrintServing writes the serving measurements.
func PrintServing(w io.Writer, rows []ServingRow) {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%-14s %8d rows  %12v", r.Mode, r.Rows, r.Latency))
	}
	printTable(w, "E-server: HTTP serving path (verify included)", out)
}

// StreamRow compares one query answered materialized vs streamed.
type StreamRow struct {
	ResultRows int
	// Materialized: one /query round trip plus whole-result verification.
	MatTotal time.Duration
	MatBytes int
	// Streamed: /stream chunks through the incremental verifier.
	StreamTotal    time.Duration
	StreamFirstRow time.Duration
	StreamBytes    int64
	Chunks         int
}

// StreamCompare answers the same range queries materialized and
// streamed. The headline numbers: time to first verified row (streams
// win as results grow) and peak memory (streams hold one chunk, the
// materialized path the whole result — visible here only as bytes, the
// allocation side lives in BenchmarkStreamQuery).
func (e *Env) StreamCompare() ([]StreamRow, error) {
	n := e.scale(4096)
	se, err := e.newServingEnv(n)
	if err != nil {
		return nil, err
	}
	defer se.close()

	var rows []StreamRow
	for _, q := range []int{n / 16, n / 4, n} {
		if q == 0 {
			continue
		}
		query, err := greaterThanQuery(se.sr, se.name, q)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		res, err := se.client.Query("all", query)
		if err != nil {
			return nil, err
		}
		verified, err := se.v.VerifyResult(query, se.role, res)
		if err != nil {
			return nil, err
		}
		matTotal := time.Since(start)
		blob, err := wire.EncodeResult(res)
		if err != nil {
			return nil, err
		}

		start = time.Now()
		var firstRow time.Duration
		stats, err := se.client.QueryStream(se.v, se.role, "all", query, 0, func(engine.Row) error {
			if firstRow == 0 {
				firstRow = time.Since(start)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if stats.Rows != len(verified) {
			return nil, fmt.Errorf("experiments: stream returned %d rows, materialized %d", stats.Rows, len(verified))
		}
		rows = append(rows, StreamRow{
			ResultRows:     stats.Rows,
			MatTotal:       matTotal,
			MatBytes:       len(blob),
			StreamTotal:    time.Since(start),
			StreamFirstRow: firstRow,
			StreamBytes:    stats.Bytes,
			Chunks:         stats.Chunks,
		})
	}
	return rows, nil
}

// PrintStreamCompare writes the streaming-vs-materialized comparison.
func PrintStreamCompare(w io.Writer, rows []StreamRow) {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf(
			"|Q|=%-6d  materialized %10v %8dB   streamed %10v (first row %v) %8dB in %d chunks",
			r.ResultRows, r.MatTotal, r.MatBytes, r.StreamTotal, r.StreamFirstRow, r.StreamBytes, r.Chunks))
	}
	printTable(w, "E-stream: streaming vs materialized (HTTP + verify, end to end)", out)
}
