package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/accessctl"
	"vcqr/internal/baseline/devanbu"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
)

// PrecisionResult reports E9: the Figure 1 access-control scenario. The
// HR executive (rights: Salary < 9000) queries Salary < 10000. Under the
// Devanbu scheme, proving completeness requires disclosing the first
// record beyond the range boundary — the 12100 salary record the
// executive must not see. Under this paper's scheme the proof discloses
// nothing beyond the rewritten range.
type PrecisionResult struct {
	// OursRows is the verified result count for the executive.
	OursRows int
	// OursLeakedKeys lists out-of-rights keys visible anywhere in our
	// result (must be empty).
	OursLeakedKeys []uint64
	// DevanbuLeakedKeys lists out-of-rights keys the baseline disclosed
	// (the boundary tuples).
	DevanbuLeakedKeys []uint64
	// DevanbuLeakedTuple is true when a full out-of-rights tuple (all
	// attributes) was shipped.
	DevanbuLeakedTuple bool
}

// Precision runs E9 on the exact Figure 1 table.
func (e *Env) Precision() (PrecisionResult, error) {
	h := hashx.New()
	schema := relation.Schema{
		Name:    "Emp",
		KeyName: "Salary",
		Cols: []relation.Column{
			{Name: "Name", Type: relation.TypeString},
			{Name: "Dept", Type: relation.TypeInt},
		},
	}
	rel, err := relation.New(schema, 0, 100000)
	if err != nil {
		return PrecisionResult{}, err
	}
	for _, r := range []struct {
		salary uint64
		name   string
		dept   int64
	}{
		{2000, "A", 1}, {3500, "C", 2}, {8010, "D", 1}, {12100, "B", 3}, {25000, "E", 2},
	} {
		if _, err := rel.Insert(relation.Tuple{Key: r.salary, Attrs: []relation.Value{
			relation.StringVal(r.name), relation.IntVal(r.dept),
		}}); err != nil {
			return PrecisionResult{}, err
		}
	}
	p, err := core.NewParams(0, 100000, 2)
	if err != nil {
		return PrecisionResult{}, err
	}
	sr, err := core.Build(h, e.Key, p, rel)
	if err != nil {
		return PrecisionResult{}, err
	}
	exec := accessctl.Role{Name: "exec", KeyHi: 8999}
	pub := engine.NewPublisher(h, e.Key.Public(), accessctl.NewPolicy(exec))
	if err := pub.AddRelation(sr, false); err != nil {
		return PrecisionResult{}, err
	}

	out := PrecisionResult{}

	// Ours: the executive's query, rewritten to Salary < 9000.
	q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 9999}
	res, err := pub.Execute("exec", q)
	if err != nil {
		return PrecisionResult{}, err
	}
	rows, err := verify.New(h, e.Key.Public(), p, schema).VerifyResult(q, exec, res)
	if err != nil {
		return PrecisionResult{}, err
	}
	out.OursRows = len(rows)
	for _, entry := range res.VO.Entries {
		if entry.Key > 8999 {
			out.OursLeakedKeys = append(out.OursLeakedKeys, entry.Key)
		}
	}

	// Devanbu: proving completeness of Salary < 9000 forces disclosure of
	// the next record, salary 12100 — outside the executive's rights.
	st, err := devanbu.Build(h, e.Key, rel)
	if err != nil {
		return PrecisionResult{}, err
	}
	dres, err := st.Query(h, 1, 8999)
	if err != nil {
		return PrecisionResult{}, err
	}
	if _, err := devanbu.Verify(h, e.Key.Public(), dres); err != nil {
		return PrecisionResult{}, err
	}
	for _, t := range dres.Tuples {
		if t.Key > 8999 && t.Key < 100000 {
			out.DevanbuLeakedKeys = append(out.DevanbuLeakedKeys, t.Key)
			if len(t.Attrs) > 0 {
				out.DevanbuLeakedTuple = true
			}
		}
	}
	return out, nil
}

// PrintPrecision renders E9.
func PrintPrecision(w io.Writer, r PrecisionResult) {
	ours := "nothing outside the executive's rights"
	if len(r.OursLeakedKeys) > 0 {
		ours = fmt.Sprintf("LEAKED %v — FAILURE", r.OursLeakedKeys)
	}
	printTable(w, "E9 / Figure 1 — access-control precision (HR executive, rights Salary < 9000)", []string{
		fmt.Sprintf("ours:    %d verified rows; discloses %s", r.OursRows, ours),
		fmt.Sprintf("devanbu: discloses out-of-rights boundary keys %v (full tuple: %v)",
			r.DevanbuLeakedKeys, r.DevanbuLeakedTuple),
	})
}
