package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/verify"
	"vcqr/internal/workload"
)

// AttackRow records the outcome of one adversarial attempt.
type AttackRow struct {
	Attack   string
	Mounted  bool   // the adversary managed to produce a response at all
	Detected bool   // the verifier rejected it
	Detail   string // rejection error
}

// Attacks runs E8: the full Section 3.2 attack matrix (plus the
// authenticity, access-control and replay threats) against a realistic
// relation. Every mounted attack must be detected.
func (e *Env) Attacks() ([]AttackRow, error) {
	h := hashx.New()
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: 60, L: 0, U: 1 << 20, PhotoSize: 32, HiddenPct: 10, Seed: 4,
	})
	if err != nil {
		return nil, err
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		return nil, err
	}
	sr, err := core.Build(h, e.Key, p, rel)
	if err != nil {
		return nil, err
	}
	roles := map[string]accessctl.Role{
		"manager": {Name: "manager"},
		"exec":    {Name: "exec", KeyHi: 1 << 18},
	}
	pub := engine.NewPublisher(h, e.Key.Public(), accessctl.NewPolicy(roles["manager"], roles["exec"]))
	if err := pub.AddRelation(sr, false); err != nil {
		return nil, err
	}
	adv := engine.NewAdversary(pub)
	v := verify.New(h, e.Key.Public(), p, rel.Schema)

	var rows []AttackRow
	for _, attack := range engine.Attacks() {
		q := engine.Query{Relation: "Emp", KeyLo: 1, KeyHi: 1 << 19}
		role := "manager"
		switch attack {
		case engine.AttackHideAsFiltered:
			q.Filters = []engine.Filter{{Col: "Dept", Op: engine.OpLe, Val: relation.IntVal(3)}}
		case engine.AttackWidenRewrite:
			role = "exec"
		}
		res, err := adv.Execute(role, q, attack)
		if err != nil {
			rows = append(rows, AttackRow{Attack: attack, Mounted: false, Detail: err.Error()})
			continue
		}
		_, verr := v.VerifyResult(q, roles[role], res)
		row := AttackRow{Attack: attack, Mounted: true, Detected: verr != nil}
		if verr != nil {
			row.Detail = verr.Error()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAttacks renders E8.
func PrintAttacks(w io.Writer, rows []AttackRow) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		status := "NOT DETECTED — FAILURE"
		if !r.Mounted {
			status = "could not be mounted: " + r.Detail
		} else if r.Detected {
			status = "detected: " + truncate(r.Detail, 80)
		}
		lines = append(lines, fmt.Sprintf("%-18s %s", r.Attack, status))
	}
	printTable(w, "E8 / Section 3.2 — adversarial publisher attack matrix", lines)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
