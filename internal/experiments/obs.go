package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/hashx"
	"vcqr/internal/obs"
	"vcqr/internal/server"
	"vcqr/internal/verify"
)

// This file measures what the observability layer itself costs: the same
// streamed-and-verified query served by two servers over one signed
// relation — one with the default enabled obs registry, one with
// obs.Disabled() — interleaved iteration by iteration so drift hits both
// sides equally. The workload is BenchmarkStreamQuery's streamed case
// (top-512 range, 64-row chunks, incremental verify), and the headline
// number is the overhead percentage on the best (minimum) iteration,
// which the PR's acceptance bound holds to <=2%. Minimum, not mean:
// scheduler and GC noise on a ~20ms RSA-dominated op is one-sided and
// several percent wide, an order of magnitude above the few microseconds
// of atomic counter updates being measured — the fastest iteration of
// each side is the cleanest view of the code's actual cost. The medians
// are reported alongside as the noise floor.

// ObsStage summarizes one stage histogram from the instrumented run.
type ObsStage struct {
	Stage  string
	Count  uint64
	MeanNS int64
	P50NS  int64
	P95NS  int64
}

// ObsResult is the instrumentation-overhead measurement.
type ObsResult struct {
	Rows  int // rows streamed and verified per iteration
	Iters int // timed iterations per side

	// Best (minimum) nanoseconds per streamed+verified query — the
	// headline comparison.
	EnabledNS  int64
	DisabledNS int64
	// Median nanoseconds per side, reported as the noise floor.
	EnabledMedianNS  int64
	DisabledMedianNS int64
	// OverheadPct = (min enabled - min disabled) / min disabled * 100.
	// Negative values mean the difference drowned in scheduler noise.
	OverheadPct float64

	// Stages are the server-side histograms the enabled run populated,
	// proving the timers fired on the measured path.
	Stages []ObsStage
}

// Obs runs the overhead experiment (vcbench -exp obs).
func (e *Env) Obs() (*ObsResult, error) {
	n := e.scale(4096)
	h := hashx.New()
	sr, _, err := e.buildUniform(h, n, 64, 2, 77)
	if err != nil {
		return nil, err
	}
	role := accessctl.Role{Name: "all"}
	mk := func(reg *obs.Registry) (*server.Server, error) {
		s := server.New(server.Config{
			Hasher: h,
			Pub:    e.Key.Public(),
			Policy: accessctl.NewPolicy(role),
			Obs:    reg,
		})
		if err := s.AddRelation(sr, false); err != nil {
			return nil, err
		}
		return s, nil
	}
	on, err := mk(nil) // nil -> fresh enabled registry
	if err != nil {
		return nil, err
	}
	defer on.Close()
	off, err := mk(obs.Disabled())
	if err != nil {
		return nil, err
	}
	defer off.Close()

	v := verify.New(h, e.Key.Public(), sr.Params, sr.Schema)
	q, err := greaterThanQuery(sr, sr.Schema.Name, n/8)
	if err != nil {
		return nil, err
	}
	wantRows := n / 8

	runOnce := func(s *server.Server) (time.Duration, error) {
		start := time.Now()
		st, err := s.QueryStream("all", q, 64)
		if err != nil {
			return 0, err
		}
		sv := v.NewStreamVerifier(q, role)
		rows := 0
		for {
			c, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, err
			}
			released, err := sv.Consume(c)
			if err != nil {
				return 0, err
			}
			rows += len(released)
		}
		if err := sv.Finish(); err != nil {
			return 0, err
		}
		if rows != wantRows {
			return 0, fmt.Errorf("experiments: streamed %d rows, want %d", rows, wantRows)
		}
		return time.Since(start), nil
	}

	iters := 41
	if e.Short {
		iters = 9
	}
	// Warm both sides (page cache, signature caches) outside the clock.
	for i := 0; i < 3; i++ {
		if _, err := runOnce(on); err != nil {
			return nil, err
		}
		if _, err := runOnce(off); err != nil {
			return nil, err
		}
	}
	enabled := make([]time.Duration, 0, iters)
	disabled := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		// Alternate which side goes first so per-pair drift (frequency
		// scaling, GC debt from the previous iteration) cancels out.
		first, second := off, on
		if i%2 == 1 {
			first, second = on, off
		}
		d1, err := runOnce(first)
		if err != nil {
			return nil, err
		}
		d2, err := runOnce(second)
		if err != nil {
			return nil, err
		}
		if first == off {
			disabled, enabled = append(disabled, d1), append(enabled, d2)
		} else {
			enabled, disabled = append(enabled, d1), append(disabled, d2)
		}
	}
	en, dis := fastest(enabled), fastest(disabled)
	res := &ObsResult{
		Rows:             wantRows,
		Iters:            iters,
		EnabledNS:        int64(en),
		DisabledNS:       int64(dis),
		EnabledMedianNS:  int64(median(enabled)),
		DisabledMedianNS: int64(median(disabled)),
		OverheadPct:      float64(en-dis) / float64(dis) * 100,
	}
	snap := on.Obs().Snapshot()
	names := make([]string, 0, len(snap))
	for name, s := range snap {
		if s.Count() > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		s := snap[name]
		res.Stages = append(res.Stages, ObsStage{
			Stage:  name,
			Count:  s.Count(),
			MeanNS: int64(s.Mean()),
			P50NS:  int64(s.Quantile(0.5)),
			P95NS:  int64(s.Quantile(0.95)),
		})
	}
	return res, nil
}

// median returns the middle element (odd lengths; even lengths take the
// lower middle — close enough for a latency summary).
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// fastest returns the minimum iteration.
func fastest(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// PrintObs writes the overhead measurement and the stage summary.
func PrintObs(w io.Writer, r *ObsResult) {
	rows := []string{
		fmt.Sprintf("streamed+verified query, %d rows, best of %d interleaved iterations/side", r.Rows, r.Iters),
		fmt.Sprintf("obs disabled  %12v /op   (median %v)", time.Duration(r.DisabledNS), time.Duration(r.DisabledMedianNS)),
		fmt.Sprintf("obs enabled   %12v /op   (median %v)", time.Duration(r.EnabledNS), time.Duration(r.EnabledMedianNS)),
		fmt.Sprintf("overhead      %+.2f%% on the best iteration", r.OverheadPct),
	}
	printTable(w, "E-obs: instrumentation overhead (stream + verify, in process)", rows)
	out := make([]string, 0, len(r.Stages))
	for _, s := range r.Stages {
		out = append(out, fmt.Sprintf("%-28s n=%-6d mean %10s  p50 %10s  p95 %10s",
			s.Stage, s.Count, obs.FormatNS(s.MeanNS), obs.FormatNS(s.P50NS), obs.FormatNS(s.P95NS)))
	}
	printTable(w, "stage histograms populated by the instrumented run", out)
}
