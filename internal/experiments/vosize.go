package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/baseline/devanbu"
	"vcqr/internal/hashx"
)

// VOSizeRow compares authentication traffic between this scheme and the
// Devanbu baseline for the same query over the same data: the Section 6.1
// claim that our VO is linear in the result size while the baseline also
// grows logarithmically with the table — and ships the two boundary
// tuples besides.
type VOSizeRow struct {
	N            int // table size
	Q            int // result size
	OursBytes    int
	DevanbuBytes int
	// DevanbuPayload is the inflated payload the baseline forces: every
	// attribute of every result tuple, projection notwithstanding.
	DevanbuPayload int
}

// VOSize runs E5 across table sizes and result sizes.
func (e *Env) VOSize() ([]VOSizeRow, error) {
	ns := []int{256, 1024, 4096}
	if e.Short {
		ns = []int{256, 1024}
	}
	qs := []int{1, 10, 100}
	const payload = 512 - 13
	var rows []VOSizeRow
	for _, n := range ns {
		h := hashx.New()
		sr, rel, err := e.buildUniform(h, n, payload, 2, int64(n))
		if err != nil {
			return nil, err
		}
		st, err := devanbu.Build(h, e.Key, rel)
		if err != nil {
			return nil, err
		}
		pub, _ := e.publisherFor(h, sr)
		for _, q := range qs {
			query, err := greaterThanQuery(sr, "Uniform", q)
			if err != nil {
				return nil, err
			}
			// Same range for both schemes. The baseline needs a bounded
			// range strictly inside the domain.
			lo := query.KeyLo
			hi := sr.Params.U - 1
			res, err := pub.Execute("all", query)
			if err != nil {
				return nil, err
			}
			ours := res.VO.Account(h.Size(), e.Key.Public().SigBytes()).Bytes()
			dres, err := st.Query(h, lo, hi)
			if err != nil {
				return nil, err
			}
			dv := dres.VOBytes(h.Size(), e.Key.Public().SigBytes())
			dpay := 0
			for _, t := range dres.Tuples[1 : len(dres.Tuples)-1] {
				dpay += t.Size()
			}
			rows = append(rows, VOSizeRow{
				N: n, Q: q, OursBytes: ours, DevanbuBytes: dv, DevanbuPayload: dpay,
			})
		}
	}
	return rows, nil
}

// PrintVOSize renders E5.
func PrintVOSize(w io.Writer, rows []VOSizeRow) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("n=%5d  |Q|=%4d  ours=%6dB  devanbu=%6dB (VO incl. 2 boundary tuples)  devanbu payload=%7dB",
			r.N, r.Q, r.OursBytes, r.DevanbuBytes, r.DevanbuPayload))
	}
	printTable(w, "E5 / Section 6.1 — VO size: ours (independent of n) vs Devanbu (log n + boundary tuples)", lines)
}
