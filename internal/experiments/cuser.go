package experiments

import (
	"fmt"
	"io"

	"vcqr/internal/costmodel"
	"vcqr/internal/hashx"
	"vcqr/internal/verify"
)

// CuserRow is one line of the Section 6.2 validation: the paper's
// closed-form Cuser claims next to the model and the implementation.
type CuserRow struct {
	Q            int
	PaperClaimMs float64 // the numbers printed in Section 6.2
	ModelMs      float64 // formula (5) at paper constants
	// MeasuredHashes compares the implementation's hash count for a real
	// greater-than verification against the formula's hash count; the
	// ratio is the honest accounting of our two-sided g(r) (the paper's
	// formula models the one-sided greater-than digest).
	MeasuredHashes uint64
	FormulaHashes  int
}

// Cuser runs E4: validate the three Section 6.2 numbers against formula
// (5) and compare the implementation's hash counts for small Q.
func (e *Env) Cuser() ([]CuserRow, error) {
	model := costmodel.PaperDefaults()
	claims := map[int]float64{1: 15.5, 100: 689, 1000: 6810}
	n := e.scale(120)
	h := hashx.New()
	sr, _, err := e.buildUniform(h, n, 32, 2, 99)
	if err != nil {
		return nil, err
	}
	pub, role := e.publisherFor(h, sr)
	v := verify.New(h, e.Key.Public(), sr.Params, sr.Schema)
	var rows []CuserRow
	for _, q := range []int{1, 100, 1000} {
		row := CuserRow{
			Q:             q,
			PaperClaimMs:  claims[q],
			ModelMs:       float64(model.UserCost(q).Microseconds()) / 1000,
			FormulaHashes: model.UserHashes(q),
		}
		if q <= n {
			query, err := greaterThanQuery(sr, "Uniform", q)
			if err != nil {
				return nil, err
			}
			res, err := pub.Execute("all", query)
			if err != nil {
				return nil, err
			}
			h.ResetOps()
			if _, err := v.VerifyResult(query, role, res); err != nil {
				return nil, err
			}
			row.MeasuredHashes = h.Ops()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintCuser renders E4.
func PrintCuser(w io.Writer, rows []CuserRow) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		meas := "-"
		if r.MeasuredHashes > 0 {
			meas = fmt.Sprintf("%d (%.1fx formula; ours hashes both chains of formula (3))",
				r.MeasuredHashes, float64(r.MeasuredHashes)/float64(r.FormulaHashes))
		}
		lines = append(lines, fmt.Sprintf("|Q|=%5d  paper=%8.1fms  model=%8.1fms  formulaHashes=%7d  measuredHashes=%s",
			r.Q, r.PaperClaimMs, r.ModelMs, r.FormulaHashes, meas))
	}
	printTable(w, "E4 / Section 6.2 — Cuser closed-form validation", lines)
}
