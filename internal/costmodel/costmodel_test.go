package costmodel

import (
	"testing"
	"time"
)

func TestM(t *testing.T) {
	p := PaperDefaults()
	if m := p.M(); m != 32 {
		t.Fatalf("m for 32-bit domain at B=2 = %d, want 32", m)
	}
	p.B = 10
	if m := p.M(); m != 10 {
		t.Fatalf("m for 32-bit domain at B=10 = %d, want 10", m)
	}
}

// TestSection62Numbers reproduces the closed-form evaluation of Section
// 6.2: "formula (5) reduces to Cuser = 6.8(n-a+1) + 8.7 msec. Thus, Cuser
// is roughly 15.5 msec, 689 msec and 6.81 sec for result size of 1, 100
// and 1000 records."
func TestSection62Numbers(t *testing.T) {
	p := PaperDefaults()
	cases := []struct {
		q    int
		want time.Duration
		tol  time.Duration
	}{
		{1, 15500 * time.Microsecond, 500 * time.Microsecond},
		{100, 689 * time.Millisecond, 10 * time.Millisecond},
		{1000, 6810 * time.Millisecond, 100 * time.Millisecond},
	}
	for _, c := range cases {
		got := p.UserCost(c.q)
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > c.tol {
			t.Errorf("UserCost(%d) = %v, paper says ~%v", c.q, got, c.want)
		}
	}
}

// TestPerEntrySlope checks the 6.8 ms-per-record slope of Section 6.2.
func TestPerEntrySlope(t *testing.T) {
	p := PaperDefaults()
	slope := p.UserCost(101) - p.UserCost(100)
	want := 6800 * time.Microsecond
	diff := slope - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 200*time.Microsecond {
		t.Errorf("per-entry slope = %v, paper says 6.8 ms", slope)
	}
}

// TestOptimalB reproduces the Figure 10 finding: user computation is
// minimized at B = 2 or 3.
func TestOptimalB(t *testing.T) {
	p := PaperDefaults()
	for _, q := range []int{1, 5, 10, 100} {
		b := p.OptimalB(q)
		if b != 2 && b != 3 {
			t.Errorf("OptimalB(q=%d) = %d, paper says 2 or 3", q, b)
		}
	}
}

// TestUserCostMonotonicInB: beyond the optimum, cost grows with B for
// fixed domain (fewer digits but longer per-digit chains dominate) — the
// rising right side of Figure 10.
func TestUserCostMonotonicInB(t *testing.T) {
	p := PaperDefaults()
	prev := time.Duration(0)
	for b := uint64(3); b <= 10; b++ {
		p.B = b
		c := p.UserCost(10)
		if b > 3 && c < prev {
			t.Errorf("UserCost not rising at B=%d: %v < %v", b, c, prev)
		}
		prev = c
	}
}

// TestTrafficOverheadShape reproduces the Figure 9 qualitative claims:
// overhead drops sharply as |Q| grows past 1, stabilizes around |Q| = 5,
// and at Mr >= 512 bytes the per-entry overhead is within 25%.
func TestTrafficOverheadShape(t *testing.T) {
	p := PaperDefaults()
	// Decreasing in |Q|.
	for _, mr := range []int{256, 512, 1024, 2048} {
		prev := p.TrafficOverhead(1, mr)
		for _, q := range []int{2, 5, 10, 100} {
			cur := p.TrafficOverhead(q, mr)
			if cur >= prev {
				t.Errorf("overhead not decreasing at q=%d mr=%d: %.3f >= %.3f", q, mr, cur, prev)
			}
			prev = cur
		}
	}
	// The paper's 25% claim at |Q| = 5, Mr >= 512 reads on the
	// *per-entry* overhead: each additional result entry costs 3 digests
	// (formula (4)), and 3*Mdigest/8 = 48 bytes is well within 25% of a
	// 512-byte record. The total overhead still includes the amortizing
	// fixed part (boundary proofs + signature).
	perEntry := float64(3*p.Mdigest/8) / 512
	if perEntry > 0.25 {
		t.Errorf("per-entry overhead at mr=512 = %.3f, paper says within 25%%", perEntry)
	}
	// And the fixed part amortizes: by |Q| = 100 the total overhead at
	// Mr = 512 is close to the per-entry floor.
	if ov := p.TrafficOverhead(100, 512); ov > 0.15 {
		t.Errorf("overhead at q=100 mr=512 = %.3f, should approach the 9%% floor", ov)
	}
	// Decreasing in record size.
	if p.TrafficOverhead(5, 2048) >= p.TrafficOverhead(5, 512) {
		t.Error("overhead must fall with record size")
	}
}

func TestTrafficBitsFormula(t *testing.T) {
	p := PaperDefaults() // m=32, log2 m = 5
	// [32 + 4 + 3*1 + 5]*128 + 1024 = 44*128 + 1024 = 6656.
	if got := p.TrafficBits(1); got != 6656 {
		t.Fatalf("TrafficBits(1) = %d, want 6656", got)
	}
	if got := p.TrafficBytes(1); got != 832 {
		t.Fatalf("TrafficBytes(1) = %d, want 832", got)
	}
}

func TestUserHashesConsistent(t *testing.T) {
	p := PaperDefaults()
	for _, q := range []int{1, 10, 100} {
		want := time.Duration(p.UserHashes(q))*p.Chash + p.Csign
		if got := p.UserCost(q); got != want {
			t.Fatalf("UserCost(%d) inconsistent with UserHashes", q)
		}
	}
}

func TestDegenerateParams(t *testing.T) {
	p := Params{B: 1, Span: 0, Mdigest: 128, Msign: 1024}
	if p.M() != 1 {
		t.Error("degenerate M must clamp to 1")
	}
	if p.TrafficBits(1) <= 0 {
		t.Error("traffic must stay positive")
	}
}
