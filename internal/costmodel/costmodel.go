// Package costmodel implements the analytic cost model of Section 6:
// formula (4) for the authentication traffic Muser, formula (5) for the
// user computation cost Cuser, and the Table 1 parameters. The benchmark
// harness evaluates the model at the paper's constants (Chash = 50 us,
// Csign = 5 ms, Mdigest = 128 bits, Msign = 1024 bits) to regenerate
// Figures 9 and 10, and at measured constants to compare against the
// implementation.
package costmodel

import (
	"math"
	"time"
)

// Params carries the Table 1 parameters.
type Params struct {
	Chash   time.Duration // cost of one hash operation
	Csign   time.Duration // cost of one signature verification
	Mdigest int           // digest size in bits
	Msign   int           // signature size in bits
	B       uint64        // number base of the Section 5.1 optimization
	Span    uint64        // key domain span U - L
}

// PaperDefaults returns the constants the paper uses (Table 1, with a
// 32-bit integer key domain as in Section 6.2).
func PaperDefaults() Params {
	return Params{
		Chash:   50 * time.Microsecond,
		Csign:   5 * time.Millisecond,
		Mdigest: 128,
		Msign:   1024,
		B:       2,
		Span:    1 << 32,
	}
}

// M returns m = ceil(log_B(span)), the highest digit index.
func (p Params) M() int {
	if p.Span <= 1 || p.B < 2 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(p.Span)) / math.Log(float64(p.B))))
}

// log2ceil returns ceil(log2(m)) with a minimum of 1, matching the
// ceil(log2 m) audit-path terms in Section 6.
func log2ceil(m int) int {
	if m <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(m))))
}

// TrafficBits evaluates formula (4): the authentication traffic to the
// user, in bits, for a greater-than query returning q entries:
//
//	Muser = [m + 4 + 3q + ceil(log2 m)] * Mdigest + Msign
func (p Params) TrafficBits(q int) int {
	m := p.M()
	return (m+4+3*q+log2ceil(m))*p.Mdigest + p.Msign
}

// TrafficBytes is TrafficBits in bytes.
func (p Params) TrafficBytes(q int) int { return p.TrafficBits(q) / 8 }

// TrafficOverhead evaluates the Figure 9 y-axis: Muser divided by the
// result payload (q records of mr bytes), as a fraction (multiply by 100
// for percent).
func (p Params) TrafficOverhead(q, mr int) float64 {
	return float64(p.TrafficBytes(q)) / float64(q*mr)
}

// UserCost evaluates formula (5): the user computation cost for a
// greater-than query with q result entries:
//
//	Cuser = [2q(B(m+1)+2) + B(m+1) + ceil(log2 m) + 3] * Chash + Csign
func (p Params) UserCost(q int) time.Duration {
	m := p.M()
	b := int(p.B)
	hashes := 2*q*(b*(m+1)+2) + b*(m+1) + log2ceil(m) + 3
	return time.Duration(hashes)*p.Chash + p.Csign
}

// UserHashes returns just the hash-operation count of formula (5),
// for comparison with the implementation's measured hash counter.
func (p Params) UserHashes(q int) int {
	m := p.M()
	b := int(p.B)
	return 2*q*(b*(m+1)+2) + b*(m+1) + log2ceil(m) + 3
}

// OptimalB scans bases 2..16 for the B minimizing UserCost at result size
// q — the paper's Figure 10 analysis, which finds the minimum at
// 2 < B < 3 (so B = 2 or 3 in integers).
func (p Params) OptimalB(q int) uint64 {
	best := uint64(2)
	bestCost := time.Duration(math.MaxInt64)
	for b := uint64(2); b <= 16; b++ {
		trial := p
		trial.B = b
		if c := trial.UserCost(q); c < bestCost {
			bestCost = c
			best = b
		}
	}
	return best
}

// --- Partitioned-publisher serving model -------------------------------
//
// The Section 6 formulas model the *user's* costs, which partitioning
// leaves untouched: a fan-out answer is one chain-contiguous VO, so
// Muser and Cuser are exactly the unpartitioned formulas (4) and (5).
// What partitioning changes is the *publisher's* side, which the paper
// treats as essentially free (the publisher is assumed powerful). At
// serving scale it is not free, and two publisher costs dominate:
//
//   - locating the cover: a scan of the shard's record directory,
//     linear in the shard's size n/K instead of n;
//   - applying a live update: two clones of the relation being updated
//     (copy-on-write epoch + validation scratch), again n/K records
//     instead of n.
//
// The models below are deliberately coarse — per-record scan and clone
// constants measured on the serving hardware are the inputs — but they
// predict the shape the vcbench shard sweep measures: query cost falls
// toward the boundary-proof floor as K grows, delta cost falls
// near-linearly in 1/K.

// FanoutQueryCost models the publisher-side cost of assembling one
// range-VO leg on a shard of an n-record relation partitioned K ways:
// cover location (a linear scan of n/K records at cscan each), the two
// boundary-proof chain constructions (2·B·(m+1) hashes), and per-entry
// digest work for q covered entries over attrs attribute leaves.
func (p Params) FanoutQueryCost(n, k, q, attrs int, cscan time.Duration) time.Duration {
	if k < 1 {
		k = 1
	}
	m := p.M()
	scan := time.Duration(n/k) * cscan
	boundaries := time.Duration(2*int(p.B)*(m+1)) * p.Chash
	entries := time.Duration(q*(attrs+2)) * p.Chash
	return scan + boundaries + entries
}

// FanoutDeltaCost models one live record update on a K-way partition:
// the copy-on-write clone plus validation scratch (2·n/K record copies
// at cclone each) and the three neighbourhood signature verifications
// (Section 6.3's locality argument, at Csign each).
func (p Params) FanoutDeltaCost(n, k int, cclone time.Duration) time.Duration {
	if k < 1 {
		k = 1
	}
	return time.Duration(2*(n/k))*cclone + 3*p.Csign
}

// FanoutSpeedup evaluates the model's predicted K-way speedup for a
// metric that is cost(K=1)/cost(K): the shape vcbench's shard sweep
// compares its measurements against.
func FanoutSpeedup(costK1, costK time.Duration) float64 {
	if costK <= 0 {
		return 0
	}
	return float64(costK1) / float64(costK)
}

// --- edge-cache admission ----------------------------------------------
//
// The shared verified-VO cache tier (internal/cache) stores encoded
// chunk-frame byte ranges under a byte budget. Caching a range that is
// never asked for again is pure loss: the fill costs one put plus the
// bytes it evicts, and the paper's trust model gives caching no
// correctness value — only the repeat hit pays. The admission rule is
// therefore frequency-based: a range must have been observed at least
// CacheMinAccesses times (within the access tracker's decay window,
// workload.AccessStats) before a miss tees an origin sub-stream into a
// fill.

// CacheMinAccesses returns the admission threshold: the number of
// observed accesses at which the expected repeat traffic amortizes a
// fill. fillCost is the one-time cost of recording and putting an entry
// (origin assembly is paid either way on the admitting miss); hitSaving
// is what one later hit saves over origin. The threshold is
// 1 + ceil(fillCost/hitSaving) — with a cheap fill it settles at 2:
// admit on the second access, i.e. on first evidence of heat.
func CacheMinAccesses(fillCost, hitSaving time.Duration) uint32 {
	if hitSaving <= 0 {
		return 2
	}
	repeats := int(math.Ceil(float64(fillCost) / float64(hitSaving)))
	if repeats < 1 {
		repeats = 1
	}
	return uint32(1 + repeats)
}

// CacheEntryCap bounds one cache entry to a fraction of the peer's byte
// budget, so a single giant range cannot evict the whole working set;
// the floor keeps typical chunk runs admissible.
func CacheEntryCap(budget int64) int {
	cap := budget / 16
	const floor = 1 << 20
	if cap < floor {
		cap = floor
	}
	return int(cap)
}
