package delta_test

import (
	"errors"
	"sync"
	"testing"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/workload"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

func build(t testing.TB, n int) (*hashx.Hasher, *core.SignedRelation) {
	t.Helper()
	h := hashx.New()
	rel, err := workload.Employees(workload.EmployeeConfig{
		N: n, L: 0, U: 1 << 20, PhotoSize: 8, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	return h, sr
}

func someAttrs(sr *core.SignedRelation) []relation.Value {
	return sr.Recs[1].Tuple.Attrs
}

func TestDiffEmpty(t *testing.T) {
	_, sr := build(t, 10)
	d := delta.Diff(sr, sr)
	if d.Size() != 0 {
		t.Fatalf("self-diff has %d ops", d.Size())
	}
}

func TestUpdateSyncRoundTrip(t *testing.T) {
	h, ownerCopy := build(t, 20)
	publisherCopy := ownerCopy.Clone()

	// Owner updates one record: 3 re-signs -> 3 upserts in the delta.
	target := ownerCopy.Recs[5]
	if _, err := ownerCopy.UpdateAttrs(h, signKey(t), target.Key(), target.Tuple.RowID, someAttrs(ownerCopy)); err != nil {
		t.Fatal(err)
	}
	d := delta.Diff(publisherCopy, ownerCopy)
	if d.Size() != 3 {
		t.Fatalf("update delta has %d ops, want 3 (the Section 6.3 locality)", d.Size())
	}
	if err := delta.Apply(h, signKey(t).Public(), publisherCopy, d); err != nil {
		t.Fatal(err)
	}
	if err := publisherCopy.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("publisher copy invalid after delta: %v", err)
	}
}

func TestInsertAndDeleteSync(t *testing.T) {
	h, ownerCopy := build(t, 20)
	publisherCopy := ownerCopy.Clone()

	if _, err := ownerCopy.Insert(h, signKey(t), relation.Tuple{Key: 777, Attrs: someAttrs(ownerCopy)}); err != nil {
		t.Fatal(err)
	}
	victim := ownerCopy.Recs[10]
	if _, err := ownerCopy.Delete(h, signKey(t), victim.Key(), victim.Tuple.RowID); err != nil {
		t.Fatal(err)
	}
	d := delta.Diff(publisherCopy, ownerCopy)
	// Insert: new record + 2 neighbours; delete: 2 neighbours + 1 delete.
	// Neighbour sets may overlap, so just bound it.
	if d.Size() == 0 || d.Size() > 7 {
		t.Fatalf("delta size = %d, expected small and positive", d.Size())
	}
	if err := delta.Apply(h, signKey(t).Public(), publisherCopy, d); err != nil {
		t.Fatal(err)
	}
	if err := publisherCopy.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("publisher copy invalid: %v", err)
	}
	if publisherCopy.Len() != ownerCopy.Len() {
		t.Fatalf("lengths diverged: %d vs %d", publisherCopy.Len(), ownerCopy.Len())
	}
}

func TestDeltaMuchSmallerThanSnapshot(t *testing.T) {
	h, ownerCopy := build(t, 200)
	publisherCopy := ownerCopy.Clone()
	target := ownerCopy.Recs[50]
	if _, err := ownerCopy.UpdateAttrs(h, signKey(t), target.Key(), target.Tuple.RowID, someAttrs(ownerCopy)); err != nil {
		t.Fatal(err)
	}
	d := delta.Diff(publisherCopy, ownerCopy)
	if d.Size() >= ownerCopy.Len()/10 {
		t.Fatalf("delta %d ops for a 1-record update over %d records", d.Size(), ownerCopy.Len())
	}
}

func TestApplyRejectsForgedUpsert(t *testing.T) {
	h, ownerCopy := build(t, 20)
	publisherCopy := ownerCopy.Clone()
	target := ownerCopy.Recs[5]
	if _, err := ownerCopy.UpdateAttrs(h, signKey(t), target.Key(), target.Tuple.RowID, someAttrs(ownerCopy)); err != nil {
		t.Fatal(err)
	}
	d := delta.Diff(publisherCopy, ownerCopy)
	// Tamper with one upsert's tuple: digest check must fail.
	for i := range d.Ops {
		if d.Ops[i].Kind == delta.OpUpsert {
			d.Ops[i].Rec.Tuple.Attrs[1] = relation.StringVal("forged")
			break
		}
	}
	if err := delta.Apply(h, signKey(t).Public(), publisherCopy, d); !errors.Is(err, delta.ErrValidation) {
		t.Fatalf("forged upsert: %v", err)
	}
	// The failed apply must not have mutated the publisher copy.
	if err := publisherCopy.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("publisher copy corrupted by failed apply: %v", err)
	}
}

func TestApplyRejectsUnsignedInsert(t *testing.T) {
	h, ownerCopy := build(t, 20)
	publisherCopy := ownerCopy.Clone()
	// An adversary (or corrupted owner feed) inserts a record with a
	// stolen signature from another record.
	forged := ownerCopy.Recs[3].Clone()
	forged.Tuple.Key = 999
	d := delta.Delta{Relation: ownerCopy.Schema.Name, Ops: []delta.Op{
		{Kind: delta.OpUpsert, Key: 999, RowID: forged.Tuple.RowID, Rec: forged},
	}}
	if err := delta.Apply(h, signKey(t).Public(), publisherCopy, d); !errors.Is(err, delta.ErrValidation) {
		t.Fatalf("forged insert: %v", err)
	}
}

func TestApplyRejectsWrongRelation(t *testing.T) {
	h, sr := build(t, 5)
	d := delta.Delta{Relation: "Other"}
	if err := delta.Apply(h, signKey(t).Public(), sr, d); !errors.Is(err, delta.ErrRelationName) {
		t.Fatalf("wrong relation: %v", err)
	}
}

func TestApplyRejectsDeleteOfMissing(t *testing.T) {
	h, sr := build(t, 5)
	d := delta.Delta{Relation: sr.Schema.Name, Ops: []delta.Op{
		{Kind: delta.OpDelete, Key: 31337, RowID: 0},
	}}
	if err := delta.Apply(h, signKey(t).Public(), sr, d); !errors.Is(err, delta.ErrBadOp) {
		t.Fatalf("missing delete: %v", err)
	}
}

func TestRepeatedSyncConverges(t *testing.T) {
	h, ownerCopy := build(t, 40)
	publisherCopy := ownerCopy.Clone()
	for round := 0; round < 5; round++ {
		before := ownerCopy.Clone()
		switch round % 3 {
		case 0:
			if _, err := ownerCopy.Insert(h, signKey(t), relation.Tuple{
				Key: uint64(1000 + round*17), Attrs: someAttrs(ownerCopy),
			}); err != nil {
				t.Fatal(err)
			}
		case 1:
			rec := ownerCopy.Recs[1+round]
			if _, err := ownerCopy.UpdateAttrs(h, signKey(t), rec.Key(), rec.Tuple.RowID, someAttrs(ownerCopy)); err != nil {
				t.Fatal(err)
			}
		case 2:
			rec := ownerCopy.Recs[ownerCopy.Len()]
			if _, err := ownerCopy.Delete(h, signKey(t), rec.Key(), rec.Tuple.RowID); err != nil {
				t.Fatal(err)
			}
		}
		d := delta.Diff(before, ownerCopy)
		if err := delta.Apply(h, signKey(t).Public(), publisherCopy, d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := publisherCopy.Validate(h, signKey(t).Public()); err != nil {
		t.Fatalf("diverged after repeated sync: %v", err)
	}
	// Final convergence: a diff between the copies must be empty.
	if d := delta.Diff(publisherCopy, ownerCopy); d.Size() != 0 {
		t.Fatalf("copies diverged: %d residual ops", d.Size())
	}
}

// TestApplySliceEdgeValidation: a shard slice (context records at both
// ends, see internal/partition) accepts an update to an interior record
// whose re-sign neighbourhood reaches the slice edge — the edge context's
// signature is unverifiable locally and must be skipped, while a forged
// interior record is still rejected.
func TestApplySliceEdgeValidation(t *testing.T) {
	h, sr := build(t, 12)
	key := signKey(t)

	// Carve a slice owning records 4..8 with contexts at 3 and 9.
	slice := &core.SignedRelation{Params: sr.Params, Schema: sr.Schema}
	for i := 3; i <= 9; i++ {
		slice.Recs = append(slice.Recs, sr.Recs[i].Clone())
	}

	// Owner updates the slice's first owned record (global 4): re-signs
	// records 3, 4, 5. Record 3 is the slice's left context.
	next := sr.Clone()
	k, rowID := next.Recs[4].Key(), next.Recs[4].Tuple.RowID
	if _, err := next.UpdateAttrs(h, key, k, rowID, someAttrs(sr)); err != nil {
		t.Fatal(err)
	}
	var d delta.Delta
	d.Relation = sr.Schema.Name
	for i := 3; i <= 5; i++ {
		rec := next.Recs[i]
		d.Ops = append(d.Ops, delta.Op{Kind: delta.OpUpsert, Key: rec.Key(), RowID: rec.Tuple.RowID, Rec: rec.Clone()})
	}

	// Apply would fail on the slice (edge signature binds global record 2);
	// ApplySlice must succeed.
	broken := slice.Clone()
	if err := delta.Apply(h, key.Public(), broken, d); err == nil {
		t.Fatal("Apply on a shard slice should fail at the edge signature")
	}
	if err := delta.ApplySlice(h, key.Public(), slice, d); err != nil {
		t.Fatalf("ApplySlice: %v", err)
	}
	if !slice.Recs[1].G.Equal(next.Recs[4].G) {
		t.Fatal("slice did not take the update")
	}

	// A forged interior record is still rejected by the slice variant.
	forged := d
	forged.Ops = append([]delta.Op(nil), d.Ops...)
	bad := forged.Ops[1]
	bad.Rec = bad.Rec.Clone()
	bad.Rec.Tuple.Attrs = append([]relation.Value(nil), bad.Rec.Tuple.Attrs...)
	bad.Rec.Tuple.Attrs[0] = relation.IntVal(999999)
	forged.Ops[1] = bad
	fresh := slice.Clone()
	if err := delta.ApplySlice(h, key.Public(), fresh, forged); !errors.Is(err, delta.ErrValidation) {
		t.Fatalf("forged op on slice: got %v, want ErrValidation", err)
	}
}
