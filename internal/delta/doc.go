// Package delta implements incremental owner-to-publisher
// synchronization for signed relations — the deployment counterpart of
// Section 6.3's update-cost argument. A record change invalidates only
// three signatures, so the owner ships just the touched records instead
// of a fresh snapshot; the publisher applies them and re-validates
// exactly the affected neighbourhood.
//
// # Where this package sits among the system invariants
//
// The one global signature chain is owned by internal/partition: a
// delta never re-signs anything itself — it *carries* the owner's
// re-signed records (neighbour re-signs appear as upserts of otherwise
// unchanged records), and ApplyOps only splices them into the record
// sequence, maintaining the crypto index in lock-step.
//
// Mirrored boundaries are the reason the slice-aware entry points
// exist. A partition shard slice cannot validate its context records
// alone — their signatures bind records on neighbouring shards — so
// ApplySlice and ValidateTouched(slice=true) check all digest material
// but defer exactly those signatures. Who picks them up depends on the
// deployment: the in-process partitioned server stitches mirrors across
// its co-resident slices and re-validates every affected seam before
// publishing (internal/server); the distributed tier stages per-node,
// pushes cross-node mirror fixes, and re-proves seams from shipped edge
// material at the coordinator (internal/cluster). Either way the deltas
// observe the all-or-nothing contract of Apply: a rejected batch leaves
// the published epoch untouched.
//
// Epoch pinning is owned by the serving layer: every Apply variant here
// runs on a clone and the serving layer swaps the result in as a fresh
// copy-on-write epoch, so in-flight queries keep verifying against the
// epoch they pinned — a delta can never invalidate a running stream.
package delta
