package delta

import (
	"errors"
	"fmt"
	"sort"

	"vcqr/internal/core"
	"vcqr/internal/hashx"
	"vcqr/internal/sig"
)

// OpKind distinguishes the two record-level operations.
type OpKind byte

// Operation kinds.
const (
	OpUpsert OpKind = 1
	OpDelete OpKind = 2
)

// Op is one record-level change. Upserts carry the full signed record
// (tuple, digest material, new signature); deletes carry only the
// identity. Neighbour re-signs show up as upserts of otherwise-unchanged
// records with fresh signatures.
type Op struct {
	Kind       OpKind
	Key, RowID uint64
	Rec        core.SignedRecord // meaningful for OpUpsert
}

// Delta is an ordered batch of changes for one relation.
type Delta struct {
	Relation string
	Ops      []Op
}

// Errors.
var (
	ErrRelationName = errors.New("delta: relation name mismatch")
	ErrBadOp        = errors.New("delta: malformed operation")
	ErrValidation   = errors.New("delta: post-apply validation failed")
)

// Diff computes the Ops that transform old into new: upserts for added
// records and for records whose signature or digest material changed,
// deletes for removed records. Both snapshots must be forms of the same
// relation. Delimiter re-signs are included (they border edge updates).
func Diff(old, new *core.SignedRelation) Delta {
	d := Delta{Relation: new.Schema.Name}
	type ident struct {
		k, r uint64
		kind core.Kind
	}
	index := func(sr *core.SignedRelation) map[ident]core.SignedRecord {
		m := make(map[ident]core.SignedRecord, len(sr.Recs))
		for _, rec := range sr.Recs {
			m[ident{rec.Key(), rec.Tuple.RowID, rec.Kind}] = rec
		}
		return m
	}
	oldIdx := index(old)
	newIdx := index(new)
	for id, rec := range newIdx {
		prev, ok := oldIdx[id]
		if !ok || !sig.Signature(prev.Sig).Equal(sig.Signature(rec.Sig)) || !prev.G.Equal(rec.G) {
			d.Ops = append(d.Ops, Op{Kind: OpUpsert, Key: id.k, RowID: id.r, Rec: rec.Clone()})
		}
	}
	for id := range oldIdx {
		if _, ok := newIdx[id]; !ok && id.kind == core.KindRecord {
			d.Ops = append(d.Ops, Op{Kind: OpDelete, Key: id.k, RowID: id.r})
		}
	}
	// Deterministic order: deletes first (frees identities), then
	// upserts by key.
	sort.Slice(d.Ops, func(i, j int) bool {
		a, b := d.Ops[i], d.Ops[j]
		if a.Kind != b.Kind {
			return a.Kind == OpDelete
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.RowID < b.RowID
	})
	return d
}

// Apply integrates a delta into the publisher's copy and validates the
// touched neighbourhood: every affected entry and its immediate
// neighbours get their digest material recomputed and their signatures
// checked against the owner's public key. On any failure the relation is
// left unchanged (apply-then-validate runs on a scratch copy).
func Apply(h *hashx.Hasher, pub *sig.PublicKey, sr *core.SignedRelation, d Delta) error {
	return apply(h, pub, sr, d, false)
}

// ApplySlice is Apply for a partition shard slice (internal/partition):
// a contiguous run of the global record sequence whose first and last
// entries are context records mirroring the neighbouring shards. Their
// signatures bind records outside the slice, so they cannot be checked
// locally; the slice variant still recomputes their digest material but
// skips the signature check on non-delimiter edge entries. The skipped
// checks are not lost: each record's signature is verified by the shard
// that owns it, and the serving layer re-validates the cross-shard seams
// after stitching mirrors (see internal/server).
func ApplySlice(h *hashx.Hasher, pub *sig.PublicKey, sr *core.SignedRelation, d Delta) error {
	return apply(h, pub, sr, d, true)
}

func apply(h *hashx.Hasher, pub *sig.PublicKey, sr *core.SignedRelation, d Delta, slice bool) error {
	scratch := sr.Clone()
	touched, err := ApplyOps(scratch, d)
	if err != nil {
		return err
	}
	if err := ValidateTouched(h, pub, scratch, touched, slice); err != nil {
		return err
	}
	sr.Recs = scratch.Recs
	// The crypto index followed the ops on the scratch copy (ApplyOps
	// keeps it in lock-step); adopt it with the records so the next epoch
	// keeps the O(log n) aggregation path without a rebuild.
	sr.SetAggIndex(scratch.AggIndex())
	return nil
}

// ApplyOps mutates sr in place with the delta's operations and returns
// the indexes whose entries (or neighbourhoods) were affected — the set
// ValidateTouched must check. No cryptographic validation happens here;
// callers that need the all-or-nothing contract pass a scratch clone
// (Apply and ApplySlice do). The split exists for multi-shard
// transactions: the serving layer applies every shard's sub-batch,
// stitches the cross-shard mirrors, and only then validates — edge
// neighbourhoods cannot be checked before their mirrors are fresh.
//
// When sr carries a crypto index (core.AggIndex), it is maintained in
// lock-step: record inserts and deletes become O(log n) tree updates at
// the same positions, and the touched entries' leaves are recomputed at
// the end — the delta-cutover half of the aggregation fast path, costing
// O(ops · log n) instead of an O(n) index rebuild. Because the index is
// persistent, the pre-delta epoch's index (shared via Clone) is never
// disturbed.
func ApplyOps(sr *core.SignedRelation, d Delta) ([]int, error) {
	if d.Relation != sr.Schema.Name {
		return nil, fmt.Errorf("%w: delta for %q, relation %q", ErrRelationName, d.Relation, sr.Schema.Name)
	}
	scratch := sr
	touched := map[int]bool{}
	markAround := func(i int) {
		for _, j := range []int{i - 1, i, i + 1} {
			if j >= 0 && j < len(scratch.Recs) {
				touched[j] = true
			}
		}
	}
	for _, op := range d.Ops {
		switch op.Kind {
		case OpDelete:
			pos := findEntry(scratch, op.Key, op.RowID, core.KindRecord)
			if pos < 0 {
				return nil, fmt.Errorf("%w: delete of missing record (%d, %d)", ErrBadOp, op.Key, op.RowID)
			}
			scratch.Recs = append(scratch.Recs[:pos], scratch.Recs[pos+1:]...)
			scratch.AggIndexDeleteAt(pos)
			// Renumber: everything at/after pos shifted.
			shifted := map[int]bool{}
			for i := range touched {
				if i > pos {
					shifted[i-1] = true
				} else {
					shifted[i] = true
				}
			}
			touched = shifted
			markAround(pos - 1)
			markAround(pos)
		case OpUpsert:
			if op.Rec.Kind == core.KindRecord &&
				(op.Rec.Key() != op.Key || op.Rec.Tuple.RowID != op.RowID) {
				return nil, fmt.Errorf("%w: upsert identity mismatch", ErrBadOp)
			}
			pos := findEntry(scratch, op.Key, op.RowID, op.Rec.Kind)
			if pos >= 0 {
				scratch.Recs[pos] = op.Rec.Clone()
				markAround(pos)
				continue
			}
			if op.Rec.Kind != core.KindRecord {
				return nil, fmt.Errorf("%w: delimiter upsert for absent delimiter", ErrBadOp)
			}
			pos = insertPos(scratch, op.Key, op.RowID)
			scratch.Recs = append(scratch.Recs, core.SignedRecord{})
			copy(scratch.Recs[pos+1:], scratch.Recs[pos:])
			scratch.Recs[pos] = op.Rec.Clone()
			scratch.AggIndexInsertAt(pos)
			shifted := map[int]bool{}
			for i := range touched {
				if i >= pos {
					shifted[i+1] = true
				} else {
					shifted[i] = true
				}
			}
			touched = shifted
			markAround(pos)
		default:
			return nil, fmt.Errorf("%w: kind %d", ErrBadOp, op.Kind)
		}
	}
	out := make([]int, 0, len(touched))
	for i := range touched {
		if i >= 0 && i < len(scratch.Recs) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	// Re-signed entries changed their σ leaves, and their neighbours'
	// signed digests changed with them: refresh exactly the touched
	// neighbourhood's index leaves.
	scratch.RefreshAggIndex(out)
	return out, nil
}

// ValidateTouched checks the digest material and signatures of the given
// entries against the owner's key — the post-apply half of Apply. With
// slice set, the first and last entries are treated as shard-slice
// context records: their digest material is still checked, but their
// signatures bind records outside the slice and are skipped (the owning
// shard, or the serving layer's seam re-validation, checks them).
func ValidateTouched(h *hashx.Hasher, pub *sig.PublicKey, sr *core.SignedRelation, touched []int, slice bool) error {
	for _, i := range touched {
		if i < 0 || i >= len(sr.Recs) {
			continue
		}
		if err := sr.CheckEntryDigests(h, i); err != nil {
			return fmt.Errorf("%w: %v", ErrValidation, err)
		}
		if slice && (i == 0 || i == len(sr.Recs)-1) && sr.Recs[i].Kind == core.KindRecord {
			continue
		}
		if !sr.VerifyEntrySig(h, pub, i) {
			return fmt.Errorf("%w: entry %d signature", ErrValidation, i)
		}
	}
	return nil
}

// findEntry locates an entry by identity.
func findEntry(sr *core.SignedRelation, key, rowID uint64, kind core.Kind) int {
	for i, rec := range sr.Recs {
		if rec.Kind == kind && rec.Key() == key && rec.Tuple.RowID == rowID {
			return i
		}
	}
	return -1
}

// insertPos returns the sorted insertion index for a data record.
func insertPos(sr *core.SignedRelation, key, rowID uint64) int {
	pos := 1
	for ; pos < len(sr.Recs)-1; pos++ {
		rec := sr.Recs[pos]
		if rec.Key() > key || (rec.Key() == key && rec.Tuple.RowID > rowID) {
			break
		}
	}
	return pos
}

// Size returns the operation count — the sync-traffic metric (a snapshot
// would be O(n) records; a k-record update is O(k) upserts plus their
// neighbours).
func (d Delta) Size() int { return len(d.Ops) }
