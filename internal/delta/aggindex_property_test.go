package delta_test

import (
	"math/big"
	"math/rand"
	"testing"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
)

// This file is the property-test half of the crypto fast path: a
// tree-backed aggregate must equal the naive O(|Q|) fold for EVERY
// contiguous range — before and after arbitrary delta sequences, at
// every shard count. If the index ever drifts from the records it
// summarizes, the server would emit condensed signatures honest clients
// reject, so these tests treat any mismatch as fatal.

// naiveAggregate is the O(b-a) reference: fold the raw signatures.
func naiveAggregate(t *testing.T, pub *sig.PublicKey, sr *core.SignedRelation, a, b int) sig.Signature {
	t.Helper()
	agg := pub.NewAggregator()
	for i := a; i < b; i++ {
		if err := agg.Add(sig.Signature(sr.Recs[i].Sig)); err != nil {
			t.Fatalf("naive aggregate at %d: %v", i, err)
		}
	}
	s, err := agg.Sum()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// naiveFDH is the O(b-a) reference for the FDH product: recompute every
// entry's signed digest from its neighbours and fold the full-domain
// hashes.
func naiveFDH(h *hashx.Hasher, pub *sig.PublicKey, sr *core.SignedRelation, a, b int) *big.Int {
	acc := big.NewInt(1)
	for i := a; i < b; i++ {
		var prev, next hashx.Digest
		if i > 0 {
			prev = sr.Recs[i-1].G
		}
		if i < len(sr.Recs)-1 {
			next = sr.Recs[i+1].G
		}
		d := core.SigDigestFor(h, sr.Params, prev, sr.Recs[i].G, next)
		acc.Mul(acc, pub.FDH(d))
		acc.Mod(acc, pub.N)
	}
	return acc
}

// checkIndexedRanges draws random contiguous ranges and checks every
// index product against its naive reference, plus the one-exponentiation
// range verification in both the accepting and rejecting direction.
// slice marks a partition shard slice: its two context records'
// signatures bind digests outside the slice, so the VerifyRange
// accept-check only applies to ranges inside the owned region [1, n-1)
// (see AggIndex.VerifyRange).
func checkIndexedRanges(t *testing.T, rng *rand.Rand, h *hashx.Hasher, pub *sig.PublicKey, sr *core.SignedRelation, rounds int, slice bool) {
	t.Helper()
	ix := sr.AggIndex()
	if ix == nil {
		t.Fatal("relation lost its crypto index")
	}
	if ix.Len() != len(sr.Recs) {
		t.Fatalf("index covers %d entries, relation has %d", ix.Len(), len(sr.Recs))
	}
	n := len(sr.Recs)
	for r := 0; r < rounds; r++ {
		a := rng.Intn(n)
		b := a + 1 + rng.Intn(n-a)
		tree, err := ix.RangeAggregate(a, b)
		if err != nil {
			t.Fatalf("RangeAggregate(%d,%d): %v", a, b, err)
		}
		if !tree.Equal(naiveAggregate(t, pub, sr, a, b)) {
			t.Fatalf("RangeAggregate(%d,%d) != naive fold", a, b)
		}
		if got, want := ix.RangeFDH(a, b), naiveFDH(h, pub, sr, a, b); got.Cmp(want) != 0 {
			t.Fatalf("RangeFDH(%d,%d) != naive FDH product", a, b)
		}
		if !slice || (a >= 1 && b <= n-1) {
			if !ix.VerifyRange(a, b, tree) {
				t.Fatalf("VerifyRange(%d,%d) rejected the honest aggregate", a, b)
			}
		}
		bad := tree.Clone()
		bad[len(bad)-1] ^= 1
		if ix.VerifyRange(a, b, bad) {
			t.Fatalf("VerifyRange(%d,%d) accepted a tampered aggregate", a, b)
		}
	}
}

// TestAggIndexRandomDeltas drives the unpartitioned incremental path:
// random owner edit batches flow to an indexed publisher copy through
// delta.Apply, whose ApplyOps maintains the index in lock-step. After
// every cutover the index must still be attached (no silent rebuild
// fallback) and agree with the naive fold on random ranges.
func TestAggIndexRandomDeltas(t *testing.T) {
	h, owner := build(t, 40)
	pub := signKey(t).Public()

	publisher := owner.Clone()
	if err := publisher.BuildAggIndex(h, pub); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	checkIndexedRanges(t, rng, h, pub, publisher, 24, false)

	for round := 0; round < 8; round++ {
		prev := owner.Clone()
		edits := 1 + rng.Intn(3)
		for e := 0; e < edits; e++ {
			switch rng.Intn(3) {
			case 0:
				tup := relation.Tuple{Key: 1 + uint64(rng.Intn(1<<20-2)), Attrs: someAttrs(owner)}
				if _, err := owner.Insert(h, signKey(t), tup); err != nil {
					t.Fatal(err)
				}
			case 1:
				if owner.Len() <= 5 {
					continue
				}
				rec := owner.Recs[1+rng.Intn(owner.Len())]
				if _, err := owner.Delete(h, signKey(t), rec.Key(), rec.Tuple.RowID); err != nil {
					t.Fatal(err)
				}
			default:
				rec := owner.Recs[1+rng.Intn(owner.Len())]
				if _, err := owner.UpdateAttrs(h, signKey(t), rec.Key(), rec.Tuple.RowID, someAttrs(owner)); err != nil {
					t.Fatal(err)
				}
			}
		}
		d := delta.Diff(prev, owner)
		if err := delta.Apply(h, pub, publisher, d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkIndexedRanges(t, rng, h, pub, publisher, 16, false)
	}

	// End-to-end anchor: after all the incremental maintenance, the
	// index must equal an index built from scratch on the final records.
	fresh := publisher.Clone()
	if err := fresh.BuildAggIndex(h, pub); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		a := rng.Intn(len(publisher.Recs))
		b := a + 1 + rng.Intn(len(publisher.Recs)-a)
		inc, err := publisher.AggIndex().RangeAggregate(a, b)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := fresh.AggIndex().RangeAggregate(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !inc.Equal(scratch) {
			t.Fatalf("incrementally maintained index diverged from a fresh build at [%d,%d)", a, b)
		}
	}
}

// TestAggIndexShardedDeltas runs the same property at every shard count
// 1..4: each shard slice gets its own index, random ranges on every
// slice must match the naive fold, and an interior delta applied through
// delta.ApplySlice must keep that shard's index attached and exact.
func TestAggIndexShardedDeltas(t *testing.T) {
	h, master := build(t, 60)
	pub := signKey(t).Public()
	rng := rand.New(rand.NewSource(31))

	for shards := 1; shards <= 4; shards++ {
		var slices []*core.SignedRelation
		if shards == 1 {
			slices = []*core.SignedRelation{master.Clone()}
		} else {
			set, err := partition.Split(master.Clone(), shards)
			if err != nil {
				t.Fatalf("split k=%d: %v", shards, err)
			}
			slices = set.Slices
		}
		for si, sl := range slices {
			if err := sl.BuildAggIndex(h, pub); err != nil {
				t.Fatalf("k=%d shard %d: %v", shards, si, err)
			}
			checkIndexedRanges(t, rng, h, pub, sl, 12, shards > 1)
		}

		// An interior update on every slice (far enough from the edges
		// that no mirror is involved), shipped as a real delta.
		for si, sl := range slices {
			if len(sl.Recs) < 9 {
				continue
			}
			pos := 3 + rng.Intn(len(sl.Recs)-7) // re-signs stay in [2, len-3]
			rec := sl.Recs[pos]
			ownerSlice := sl.Clone()
			if _, err := ownerSlice.UpdateAttrs(h, signKey(t), rec.Key(), rec.Tuple.RowID, someAttrs(master)); err != nil {
				t.Fatalf("k=%d shard %d: %v", shards, si, err)
			}
			d := delta.Diff(sl, ownerSlice)
			if d.Size() == 0 {
				t.Fatalf("k=%d shard %d: empty interior delta", shards, si)
			}
			if err := delta.ApplySlice(h, pub, sl, d); err != nil {
				t.Fatalf("k=%d shard %d: apply: %v", shards, si, err)
			}
			checkIndexedRanges(t, rng, h, pub, sl, 12, shards > 1)
		}
	}
}
