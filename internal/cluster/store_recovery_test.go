package cluster_test

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/cluster"
	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/server"
	"vcqr/internal/store"
	"vcqr/internal/verify"
	"vcqr/internal/wire"
	"vcqr/internal/workload"
)

// durableNode is one shard node backed by a disk store, with enough
// handles to SIGKILL it (drop everything without flushing) and restart
// it from the same directory.
type durableNode struct {
	s  *server.Server
	ts *httptest.Server
	ns *store.NodeStore
}

func openDurableNode(t *testing.T, h *hashx.Hasher, dir string, crash *store.Crasher) (*durableNode, *store.LoadReport, *server.RecoverReport) {
	t.Helper()
	ns, lrep, err := store.OpenNode(dir, store.Options{Hasher: h, SnapshotEvery: -1, Crash: crash})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{
		Hasher: h, Pub: signKey(t).Public(),
		Policy: accessctl.NewPolicy(accessctl.Role{Name: "all"}),
		Store:  ns,
	})
	rrep, err := s.RecoverHosted()
	if err != nil {
		t.Fatal(err)
	}
	return &durableNode{s: s, ts: httptest.NewServer(s.Handler()), ns: ns}, lrep, rrep
}

func (n *durableNode) kill() {
	n.ts.Close()
	n.s.Close()
	n.ns.Close()
}

// coordOver builds a coordinator over the given node URLs for an
// already-signed publication.
func coordOver(t *testing.T, h *hashx.Hasher, sr *core.SignedRelation, spec partition.Spec, urls []string, clog *store.CoordLog) *cluster.Coordinator {
	t.Helper()
	coord, err := cluster.New(cluster.Config{
		Hasher: h, Pub: signKey(t).Public(),
		Params: sr.Params, Schema: sr.Schema,
		Policy: accessctl.NewPolicy(accessctl.Role{Name: "all"}),
		Spec:   spec, Nodes: urls, Log: clog,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

func buildSigned(t *testing.T, h *hashx.Hasher, n, k int) (*core.SignedRelation, *partition.Set) {
	t.Helper()
	rel, err := workload.Uniform(workload.UniformConfig{
		N: n, L: 0, U: 1 << 20, PayloadSize: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	set, err := partition.Split(sr, k)
	if err != nil {
		t.Fatal(err)
	}
	return sr, set
}

func mintDeltaOn(t *testing.T, h *hashx.Hasher, owner *core.SignedRelation, idx int, payload []byte) delta.Delta {
	t.Helper()
	before := owner.Clone()
	rec := owner.Recs[idx]
	if _, err := owner.UpdateAttrs(h, signKey(t), rec.Key(), rec.Tuple.RowID,
		[]relation.Value{relation.BytesVal(payload)}); err != nil {
		t.Fatal(err)
	}
	return delta.Diff(before, owner)
}

func verifyShardStream(t *testing.T, h *hashx.Hasher, sr *core.SignedRelation, spec partition.Spec, url string, q engine.Query) int {
	t.Helper()
	role := accessctl.Role{Name: "all"}
	v := verify.New(h, signKey(t).Public(), sr.Params, sr.Schema)
	sv, err := v.NewShardStreamVerifier(spec, q, role)
	if err != nil {
		t.Fatal(err)
	}
	cl := &wire.Client{BaseURL: url}
	rows := 0
	if _, err := cl.QueryStreamWith(sv, "all", q, 8, func(engine.Row) error {
		rows++
		return nil
	}); err != nil {
		t.Fatalf("stream rejected by unmodified verifier: %v", err)
	}
	return rows
}

// TestClusterCrashRecoveryMatrix is the durability acceptance: a node
// is killed at each of the five crash points around a committed delta
// (or the compacting snapshot after one), restarted from its data
// directory with ZERO slices re-transferred, adopted by a fresh
// coordinator via Recover, and must then serve a merged stream that is
// byte-identical to an untouched control cluster's — pre-delta state
// when the crash beat the WAL append, post-delta state when the record
// was durable — under the UNMODIFIED shard stream verifier.
func TestClusterCrashRecoveryMatrix(t *testing.T) {
	h := hashx.New()
	sr, set := buildSigned(t, h, 96, 3)
	q := engine.Query{Relation: "Uniform"}
	req := wire.StreamRequest{Role: "all", Query: q, ChunkRows: 8}

	// One global record interior to shard 1, the delta's target.
	sl1 := set.Slices[1]
	mid := sl1.Recs[len(sl1.Recs)/2]
	midIdx := -1
	for i, rec := range sr.Recs {
		if rec.Key() == mid.Key() && rec.Tuple.RowID == mid.Tuple.RowID {
			midIdx = i
		}
	}
	if midIdx < 0 {
		t.Fatal("target record not found in the master chain")
	}

	for _, p := range store.CrashPoints {
		t.Run(p.String(), func(t *testing.T) {
			// Control cluster: memory-only node, never crashed.
			ctlSrv := server.New(server.Config{
				Hasher: h, Pub: signKey(t).Public(),
				Policy: accessctl.NewPolicy(accessctl.Role{Name: "all"}),
			})
			defer ctlSrv.Close()
			ctlTS := httptest.NewServer(ctlSrv.Handler())
			defer ctlTS.Close()
			ctlCoord := coordOver(t, h, sr, set.Spec, []string{ctlTS.URL}, nil)
			defer ctlCoord.Close()
			if err := ctlCoord.Place(set); err != nil {
				t.Fatal(err)
			}
			ctlFront := httptest.NewServer(ctlCoord.Handler())
			defer ctlFront.Close()

			// Device under test: a durable node.
			dir := t.TempDir()
			crash := &store.Crasher{}
			node, _, _ := openDurableNode(t, h, dir, crash)
			coord := coordOver(t, h, sr, set.Spec, []string{node.ts.URL}, nil)
			if err := coord.Place(set); err != nil {
				t.Fatal(err)
			}
			front := httptest.NewServer(coord.Handler())

			preBytes := streamBody(t, ctlFront.URL, req)
			if got := streamBody(t, front.URL, req); !bytes.Equal(got, preBytes) {
				t.Fatal("durable and control clusters diverge before any crash")
			}

			owner := sr.Clone()
			d := mintDeltaOn(t, h, owner, midIdx, []byte("crash-matrix-v2"))
			durable := false
			switch p {
			case store.CrashBeforeAppend, store.CrashMidRecord, store.CrashAfterAppend:
				// The injected death hits the node's commit append: the
				// coordinator must see the delta refused either way.
				crash.Arm(p)
				if _, err := coord.ApplyDelta(d); err == nil {
					t.Fatal("delta acknowledged although the commit log append died")
				}
				durable = p == store.CrashAfterAppend
			case store.CrashBeforeRename, store.CrashAfterRename:
				// The delta commits cleanly; the death hits the compacting
				// snapshot afterwards.
				if _, err := coord.ApplyDelta(d); err != nil {
					t.Fatal(err)
				}
				crash.Arm(p)
				if err := node.ns.Snapshot(); !errors.Is(err, store.ErrCrash) {
					t.Fatalf("armed snapshot returned %v", err)
				}
				durable = true
			}

			// SIGKILL the node and its control plane; restart from disk.
			front.Close()
			coord.Close()
			node.kill()
			node2, lrep, rrep := openDurableNode(t, h, dir, crash)
			defer node2.kill()
			if p == store.CrashMidRecord && !errors.Is(lrep.TornTail, store.ErrWALTorn) {
				t.Fatalf("mid-record crash not reported as torn tail: %v", lrep.TornTail)
			}
			if p == store.CrashAfterRename && (lrep.SnapshotSeq == 0 || lrep.Skipped == 0) {
				t.Fatalf("double-apply guard did not engage: %+v", lrep)
			}
			if len(rrep.Refused) != 0 || len(rrep.Published) != 3 {
				t.Fatalf("recovery published %v refused %v, want all 3 slices", rrep.Published, rrep.Refused)
			}
			// The zero-re-transfer claim: every slice came off the WAL.
			if st := node2.s.Stats(); st.Installs != 0 {
				t.Fatalf("restart re-transferred %d slices", st.Installs)
			}

			coord2 := coordOver(t, h, sr, set.Spec, []string{node2.ts.URL}, nil)
			defer coord2.Close()
			if _, err := coord2.Recover(); err != nil {
				t.Fatalf("coordinator adoption of the recovered node: %v", err)
			}
			front2 := httptest.NewServer(coord2.Handler())
			defer front2.Close()

			expected := preBytes
			if durable {
				// The record was durable, so recovery yields the
				// post-delta state — the control gets there by actually
				// committing.
				if _, err := ctlCoord.ApplyDelta(d); err != nil {
					t.Fatal(err)
				}
				expected = streamBody(t, ctlFront.URL, req)
			}
			if got := streamBody(t, front2.URL, req); !bytes.Equal(got, expected) {
				t.Fatalf("recovered stream differs from control after %s crash", p)
			}
			if rows := verifyShardStream(t, h, sr, set.Spec, front2.URL, q); rows != 96 {
				t.Fatalf("verified %d rows, want 96", rows)
			}

			if !durable {
				// The refused delta was lost honestly; re-ingesting it on
				// the recovered cluster must succeed — over the WAL, not a
				// re-transfer.
				if _, err := coord2.ApplyDelta(d); err != nil {
					t.Fatalf("re-applying the lost delta after recovery: %v", err)
				}
				if _, err := ctlCoord.ApplyDelta(d); err != nil {
					t.Fatal(err)
				}
				if got := streamBody(t, front2.URL, req); !bytes.Equal(got, streamBody(t, ctlFront.URL, req)) {
					t.Fatal("post-recovery delta diverged from control")
				}
				if st := node2.s.Stats(); st.Installs != 0 {
					t.Fatalf("post-recovery delta re-transferred %d slices", st.Installs)
				}
			}
		})
	}
}

// TestRecoverUsesPersistedRoutingLog pins the regression the durable
// coordinator log fixes: two replicas of a shard with byte-identical
// content but divergent histories (one took the replica-set's deltas,
// the other is a fresh re-add with no writes since install). Node-order
// adoption guesses the fresh copy as primary; the persisted routing
// table names the true one. Before the log existed there was no right
// answer on restart.
func TestRecoverUsesPersistedRoutingLog(t *testing.T) {
	logDir := t.TempDir()
	clog, _, err := store.OpenCoord(logDir, store.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := newClusterCfg(t, 48, 1, 2, nil, func(cfg *cluster.Config) { cfg.Log = clog })
	urlA, urlB := f.urls[0], f.urls[1]

	// Grow to R=2, then write: both copies take the delta and stay
	// digest-identical.
	if err := f.coord.AddReplica(0, urlB); err != nil {
		t.Fatal(err)
	}
	sl := f.set.Slices[0]
	mid := sl.Recs[len(sl.Recs)/2]
	d := f.mintDelta(f.globalIndexOf(mid.Key(), mid.Tuple.RowID), []byte("written-once"))
	if _, err := f.coord.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	// Promote B: drop A and re-add it. A's copy is now a fresh install
	// (digest == install digest, zero deltas); B carries the write
	// history. The routing table [B, A] is persisted.
	if err := f.coord.DropReplica(0, urlA); err != nil {
		t.Fatal(err)
	}
	if err := f.coord.AddReplica(0, urlA); err != nil {
		t.Fatal(err)
	}
	f.coord.Close()
	clog.Close()

	// Restart WITHOUT the log: configured node order adopts A — the
	// copy with no write history — as primary. This is the guess the
	// log replaces (kept here as the regression's "before" picture).
	bare := coordOver(t, f.h, f.owner, f.spec, f.urls, nil)
	rep, err := bare.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assigned[0] != urlA {
		t.Fatalf("node-order adoption picked %s; fixture no longer exercises the guess", rep.Assigned[0])
	}
	bare.Close()

	// Restart WITH the log: the persisted table is the deterministic
	// lookup — primary B, replica A, nothing ambiguous.
	clog2, crep, err := store.OpenCoord(logDir, store.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer clog2.Close()
	if crep.RoutingEpoch == 0 {
		t.Fatal("routing epochs were not persisted")
	}
	logged := coordOver(t, f.h, f.owner, f.spec, f.urls, clog2)
	defer logged.Close()
	rep2, err := logged.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Assigned[0] != urlB {
		t.Fatalf("logged adoption picked %s as primary, want %s (the persisted primary)", rep2.Assigned[0], urlB)
	}
	if len(rep2.Replicas[0]) != 2 || rep2.Replicas[0][0] != urlB {
		t.Fatalf("replica set %v, want primary-first [%s %s]", rep2.Replicas[0], urlB, urlA)
	}
	if len(rep2.Ambiguous) != 0 || len(rep2.Diverged) != 0 {
		t.Fatalf("identical copies misreported: %+v", rep2)
	}
}

// TestCoordinatorStagedTokenBracket: a delta whose commit fan-out never
// ran still resolves its durable bracket — a commit interrupted between
// begin and end surfaces the relation in the next Recover's OpenStaged
// exactly once.
func TestCoordinatorStagedTokenBracket(t *testing.T) {
	logDir := t.TempDir()
	clog, _, err := store.OpenCoord(logDir, store.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := newClusterCfg(t, 48, 2, 2, nil, func(cfg *cluster.Config) { cfg.Log = clog })
	sl := f.set.Slices[0]
	mid := sl.Recs[len(sl.Recs)/2]
	d := f.mintDelta(f.globalIndexOf(mid.Key(), mid.Tuple.RowID), []byte("bracketed-delta"))
	if _, err := f.coord.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	// A completed delta leaves no open bracket.
	if n := len(clog.OpenStaged()); n != 0 {
		t.Fatalf("%d staged transactions open after a clean commit", n)
	}
	// Simulate dying inside the fan-out: write the begin by hand, as
	// the crashed incarnation would have.
	if err := clog.LogStagedBegin("Uniform", map[string]uint64{f.urls[0]: 1}); err != nil {
		t.Fatal(err)
	}
	f.coord.Close()
	clog.Close()

	clog2, crep, err := store.OpenCoord(logDir, store.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer clog2.Close()
	if len(crep.OpenStaged) != 1 || crep.OpenStaged[0] != "Uniform" {
		t.Fatalf("open staged after restart: %v", crep.OpenStaged)
	}
	next := coordOver(t, f.h, f.owner, f.spec, f.urls, clog2)
	defer next.Close()
	rep, err := next.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OpenStaged) != 1 || rep.OpenStaged[0] != "Uniform" {
		t.Fatalf("Recover did not surface the open bracket: %+v", rep)
	}
	// Recover closed it: a second recovery sees nothing.
	rep, err = next.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OpenStaged) != 0 {
		t.Fatalf("bracket not closed after Recover: %v", rep.OpenStaged)
	}
}
