package cluster_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/cache"
	"vcqr/internal/cluster"
	"vcqr/internal/engine"
	"vcqr/internal/server"
	"vcqr/internal/wire"
)

// cacheFix is a running cluster fronted by one edge-cache peer.
type cacheFix struct {
	*fix
	cc  *cache.Client
	srv *cache.Server
}

func newCachedCluster(t *testing.T, n, k, nNodes int) *cacheFix {
	t.Helper()
	srv := cache.NewServer(0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	// MinAccesses 1 admits on first sight so tests warm deterministically.
	cc := cache.NewClient(cache.Config{Peers: []string{ts.URL}, MinAccesses: 1})
	f := newClusterCfg(t, n, k, nNodes, nil, func(cfg *cluster.Config) { cfg.Cache = cc })
	return &cacheFix{fix: f, cc: cc, srv: srv}
}

// waitEntries polls the peer store until it holds at least n entries —
// fills are pushed asynchronously after the origin stream settles.
func (cf *cacheFix) waitEntries(n int) {
	cf.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for cf.srv.Store().Stats().Entries < n {
		if time.Now().After(deadline) {
			cf.t.Fatalf("cache peer has %d entries, want >= %d", cf.srv.Store().Stats().Entries, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// streamRows drives a coordinator stream through the unmodified verifier
// and returns the verified rows for payload inspection.
func (cf *cacheFix) streamRows(url string, q engine.Query, chunkRows int) ([]engine.Row, error) {
	sv, err := cf.v.NewShardStreamVerifier(cf.spec, q, cf.role)
	if err != nil {
		return nil, err
	}
	client := &wire.Client{BaseURL: url}
	var rows []engine.Row
	_, err = client.QueryStreamWith(sv, cf.role.Name, q, chunkRows, func(r engine.Row) error {
		rows = append(rows, r)
		return nil
	})
	return rows, err
}

// hasPayload reports whether any verified row carries the payload.
func hasPayload(rows []engine.Row, payload string) bool {
	for _, row := range rows {
		for _, attr := range row.Values {
			if string(attr.Val.Bytes) == payload {
				return true
			}
		}
	}
	return false
}

// TestClusterCachedStreamByteIdentical is the cache-tier acceptance pin:
// with the edge cache in the path, both serving modes — a whole-stream
// hit served verbatim and per-shard sub-stream hits replayed through the
// merge — must emit raw frame bytes identical to the uncached
// single-process /stream output, and the unmodified
// verify.ShardStreamVerifier must accept them.
func TestClusterCachedStreamByteIdentical(t *testing.T) {
	cf := newCachedCluster(t, 96, 3, 2)
	coordTS := httptest.NewServer(cf.coord.Handler())
	defer coordTS.Close()

	single := server.New(server.Config{
		Hasher: cf.h, Pub: signKey(t).Public(), Policy: accessctl.NewPolicy(cf.role),
	})
	defer single.Close()
	if err := single.AddPartition(cf.set, true); err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	q := engine.Query{Relation: "Uniform"}
	req := wire.StreamRequest{Role: "all", Query: q, ChunkRows: 8}
	want := streamBody(t, singleTS.URL, req)

	// Cold pass: every shard misses; the stream is teed into fills.
	if !bytes.Equal(streamBody(t, coordTS.URL, req), want) {
		t.Fatal("cold cached-cluster stream differs from single-process stream")
	}
	cf.waitEntries(4) // 3 sub-streams + 1 whole stream

	// Warm pass: the whole merged stream is served verbatim from cache.
	if !bytes.Equal(streamBody(t, coordTS.URL, req), want) {
		t.Fatal("whole-stream cache hit differs from single-process stream")
	}
	st := cf.coord.Stats()
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatalf("warm pass did not hit the cache: %+v", st.Cache)
	}
	rows, err := cf.verifyStream(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("cached stream rejected by unmodified verifier: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows, want 96", rows)
	}

	// Drop only the whole-stream group: the next query must replay the
	// three cached sub-streams through the merge — still byte-identical.
	cf.cc.Invalidate("Uniform", cache.StreamShard, 0)
	pre := cf.coord.Stats().Cache.Hits
	if !bytes.Equal(streamBody(t, coordTS.URL, req), want) {
		t.Fatal("sub-stream replay differs from single-process stream")
	}
	if got := cf.coord.Stats().Cache.Hits; got-pre < 3 {
		t.Fatalf("replay pass hit %d cached sub-streams, want 3", got-pre)
	}
	if rows, err := cf.verifyStream(coordTS.URL, q, 8); err != nil || rows != 96 {
		t.Fatalf("replayed stream: rows=%d err=%v", rows, err)
	}
}

// TestCacheDeltaInvalidationExact: a two-phase delta commit must retire
// exactly the touched shard's cached entries and every whole-stream
// entry, leave the untouched shards' entries serving, and never let a
// pre-delta entry answer a post-delta query.
func TestCacheDeltaInvalidationExact(t *testing.T) {
	cf := newCachedCluster(t, 96, 3, 2)
	coordTS := httptest.NewServer(cf.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	// Warm all shards and the whole-stream entry.
	if _, err := cf.verifyStream(coordTS.URL, q, 8); err != nil {
		t.Fatal(err)
	}
	cf.waitEntries(4)
	oldEpochs := cf.coord.Stats().ContentEpochs

	// Interior update to shard 1 (hosted alone on node 1).
	sl1 := cf.set.Slices[1]
	mid := sl1.Recs[len(sl1.Recs)/2]
	d := cf.mintDelta(cf.globalIndexOf(mid.Key(), mid.Tuple.RowID), []byte("cached-delta-v2"))
	if _, err := cf.coord.ApplyDelta(d); err != nil {
		t.Fatalf("delta rejected: %v", err)
	}

	// Epoch bump is exact: shard 1 moved, shards 0 and 2 did not.
	newEpochs := cf.coord.Stats().ContentEpochs
	if newEpochs[1] != oldEpochs[1]+1 || newEpochs[0] != oldEpochs[0] || newEpochs[2] != oldEpochs[2] {
		t.Fatalf("content epochs %v -> %v: want only shard 1 bumped", oldEpochs, newEpochs)
	}
	// The pushed invalidation swept shard 1's old-epoch entries and the
	// whole-stream group; the other shards' entries survive.
	staleTag := fmt.Sprintf("\x00s1\x00e%d\x00", oldEpochs[1])
	streamTag := fmt.Sprintf("\x00s%d\x00", cache.StreamShard)
	for _, ks := range cf.srv.Store().Keys() {
		if strings.Contains(ks, staleTag) {
			t.Fatalf("pre-delta shard 1 entry survived the commit: %q", ks)
		}
		if strings.Contains(ks, streamTag) {
			t.Fatalf("whole-stream entry survived the commit: %q", ks)
		}
	}
	if cf.srv.Store().Stats().Entries == 0 {
		t.Fatal("invalidation swept untouched shards' entries too")
	}

	// The very next verified query sees the new payload — shard 1 comes
	// from origin (its old key is unaskable), the others from cache.
	pre := cf.coord.Stats().Cache.Hits
	rows, err := cf.streamRows(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("post-delta stream rejected: %v", err)
	}
	if len(rows) != 96 || !hasPayload(rows, "cached-delta-v2") {
		t.Fatalf("post-delta stream is stale: %d rows, payload present=%v", len(rows), hasPayload(rows, "cached-delta-v2"))
	}
	if got := cf.coord.Stats().Cache.Hits; got-pre < 2 {
		t.Fatalf("untouched shards did not serve from cache after the delta (hits +%d)", got-pre)
	}
}

// TestCacheDeltaUnderLiveTraffic: cached readers hammer the coordinator
// while a delta commits; every stream verifies, and the first query
// issued after ApplyDelta returns must carry the new payload — zero
// stale reads through the cutover.
func TestCacheDeltaUnderLiveTraffic(t *testing.T) {
	cf := newCachedCluster(t, 96, 3, 2)
	coordTS := httptest.NewServer(cf.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	if _, err := cf.verifyStream(coordTS.URL, q, 8); err != nil {
		t.Fatal(err)
	}
	cf.waitEntries(4)

	var stop atomic.Bool
	var queriesRun atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := cf.verifyStream(coordTS.URL, q, 8); err != nil {
					t.Errorf("cached query during delta rejected: %v", err)
					return
				}
				queriesRun.Add(1)
			}
		}()
	}

	sl1 := cf.set.Slices[1]
	mid := sl1.Recs[len(sl1.Recs)/2]
	d := cf.mintDelta(cf.globalIndexOf(mid.Key(), mid.Tuple.RowID), []byte("live-delta-v2"))
	if _, err := cf.coord.ApplyDelta(d); err != nil {
		t.Fatalf("delta rejected: %v", err)
	}

	// The moment ApplyDelta returns, a verified read must be fresh.
	rows, err := cf.streamRows(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("post-commit stream rejected: %v", err)
	}
	if !hasPayload(rows, "live-delta-v2") {
		t.Fatal("stale read: post-commit stream misses the delta payload")
	}

	stop.Store(true)
	wg.Wait()
	if queriesRun.Load() == 0 {
		t.Fatal("no background queries completed")
	}
}

// TestCacheRebalanceInvalidation: an online migration under live cached
// traffic must reject nothing, bump the migrated shard's content epoch at
// cutover, and keep post-migration streams fresh and verifiable.
func TestCacheRebalanceInvalidation(t *testing.T) {
	cf := newCachedCluster(t, 96, 3, 2)
	coordTS := httptest.NewServer(cf.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	if _, err := cf.verifyStream(coordTS.URL, q, 8); err != nil {
		t.Fatal(err)
	}
	cf.waitEntries(4)
	oldEpochs := cf.coord.Stats().ContentEpochs

	var stop atomic.Bool
	var queriesRun atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := cf.verifyStream(coordTS.URL, q, 16); err != nil {
					t.Errorf("cached query during migration rejected: %v", err)
					return
				}
				queriesRun.Add(1)
			}
		}()
	}

	// Live delta interleaved with the migration, as in the uncached pin.
	sl1 := cf.set.Slices[1]
	deltaIdx := cf.globalIndexOf(sl1.Recs[2].Key(), sl1.Recs[2].Tuple.RowID)
	if _, err := cf.coord.ApplyDelta(cf.mintDelta(deltaIdx, []byte("pre-migration"))); err != nil {
		t.Fatal(err)
	}
	rep, err := cf.coord.Rebalance(1, cf.urls[0])
	if err != nil {
		t.Fatalf("rebalance failed: %v", err)
	}
	if rep.DrainErr != "" {
		t.Fatalf("drain failed: %s", rep.DrainErr)
	}
	stop.Store(true)
	wg.Wait()
	if queriesRun.Load() == 0 {
		t.Fatal("no queries completed during migration")
	}

	// Cutover bumped the migrated shard past the delta's bump.
	newEpochs := cf.coord.Stats().ContentEpochs
	if newEpochs[1] < oldEpochs[1]+2 {
		t.Fatalf("content epochs %v -> %v: want shard 1 bumped by delta and cutover", oldEpochs, newEpochs)
	}
	rows, err := cf.streamRows(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("post-migration stream rejected: %v", err)
	}
	if len(rows) != 96 || !hasPayload(rows, "pre-migration") {
		t.Fatal("post-migration stream lost the delta payload")
	}
}

// TestCachePoisonedEntriesFallThrough: corrupting every resident cache
// entry must not fail a single query — the digest compare rejects the
// poison, the coordinator falls through to origin, and the unmodified
// verifier accepts the result.
func TestCachePoisonedEntriesFallThrough(t *testing.T) {
	cf := newCachedCluster(t, 96, 3, 2)
	coordTS := httptest.NewServer(cf.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	if _, err := cf.verifyStream(coordTS.URL, q, 8); err != nil {
		t.Fatal(err)
	}
	cf.waitEntries(4)

	// Flip a byte in every entry, keeping the stored digest: the peer is
	// now fully poisoned.
	store := cf.srv.Store()
	for _, ks := range store.Keys() {
		b, sum, ok := store.Get(ks)
		if !ok {
			continue
		}
		bad := append([]byte(nil), b...)
		bad[len(bad)/2] ^= 0xff
		store.Put(ks, "Uniform", 0, 0, sum, bad)
	}

	rows, err := cf.verifyStream(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("query over a poisoned cache rejected: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows over a poisoned cache, want 96", rows)
	}
	st := cf.coord.Stats()
	if st.Cache.Fallthroughs == 0 {
		t.Fatalf("poison was not detected: %+v", st.Cache)
	}
}

// TestCacheDeadPeerFailsToOrigin: the cache tier is an optimization, so
// a dead peer — refusing connections, hung at the transport, or hung
// mid-exchange — must read as a miss and fail toward origin within the
// peer budget, never wedge the query path. The hung-peer row is the
// regression pin for the nil-Config.HTTP bug: peer traffic used to ride
// http.DefaultClient, whose missing timeout blocked the first lookup
// forever.
func TestCacheDeadPeerFailsToOrigin(t *testing.T) {
	cases := []struct {
		name string
		// peer returns the peer URL and the cache-client HTTP override
		// (nil = the default bounded client the fix installs).
		peer func(t *testing.T) (string, *http.Client)
	}{
		{"refused-connection", func(t *testing.T) (string, *http.Client) {
			// A peer that is simply gone: closed listener, nil HTTP — the
			// default client path.
			ts := httptest.NewServer(cache.NewServer(0).Handler())
			ts.Close()
			return ts.URL, nil
		}},
		{"hung-peer-default-client", func(t *testing.T) (string, *http.Client) {
			// A peer that accepts and never answers, against the default
			// client: only the PeerTimeout budget gets the query to origin.
			block := make(chan struct{})
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				<-block
			}))
			t.Cleanup(ts.Close)
			t.Cleanup(func() { close(block) }) // unblock handlers before Close
			return ts.URL, nil
		}},
		{"injected-kill", func(t *testing.T) (string, *http.Client) {
			ts := httptest.NewServer(cache.NewServer(0).Handler())
			t.Cleanup(ts.Close)
			inj := cluster.NewInjector(nil)
			inj.Set(cluster.Fault{Path: "/cache", Stage: cluster.StageRoundTrip, Mode: cluster.Kill})
			return ts.URL, &http.Client{Transport: inj, Timeout: 250 * time.Millisecond}
		}},
		{"injected-hang", func(t *testing.T) (string, *http.Client) {
			ts := httptest.NewServer(cache.NewServer(0).Handler())
			t.Cleanup(ts.Close)
			inj := cluster.NewInjector(nil)
			inj.Set(cluster.Fault{Path: "/cache", Stage: cluster.StageRoundTrip, Mode: cluster.Hang})
			return ts.URL, &http.Client{Transport: inj, Timeout: 250 * time.Millisecond}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			url, hc := tc.peer(t)
			cc := cache.NewClient(cache.Config{
				Peers:       []string{url},
				HTTP:        hc,
				MinAccesses: 1,
				PeerTimeout: 250 * time.Millisecond,
			})
			f := newClusterCfg(t, 96, 3, 2, nil, func(cfg *cluster.Config) { cfg.Cache = cc })
			coordTS := httptest.NewServer(f.coord.Handler())
			defer coordTS.Close()

			q := engine.Query{Relation: "Uniform"}
			t0 := time.Now()
			rows, err := f.verifyStream(coordTS.URL, q, 8)
			elapsed := time.Since(t0)
			if err != nil {
				t.Fatalf("query with a dead cache peer failed: %v", err)
			}
			if rows != 96 {
				t.Fatalf("verified %d rows, want 96", rows)
			}
			// One whole-stream probe plus three sub-stream probes, each
			// bounded by the 250ms budget, plus origin time: 4 seconds is
			// generous, and infinity is the bug.
			if elapsed > 4*time.Second {
				t.Fatalf("query took %v against a dead peer; budget not enforced", elapsed)
			}
			if cc.Stats().PeerErrors == 0 {
				t.Fatal("dead peer produced no peer errors; the tier was never consulted")
			}
		})
	}
}

// TestCacheSingleflightStorm: 64 concurrent identical queries against a
// cold cache must reach origin at most once per (epoch, shard) key — the
// whole fan-out runs once, everyone else rides the flight.
func TestCacheSingleflightStorm(t *testing.T) {
	cf := newCachedCluster(t, 96, 3, 2)
	coordTS := httptest.NewServer(cf.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	origin := func() uint64 {
		var n uint64
		for _, s := range cf.nodes {
			n += s.Stats().ShardStreams
		}
		return n
	}
	before := origin()

	const storm = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Uint64
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rows, err := cf.verifyStream(coordTS.URL, q, 16)
			if err != nil || rows != 96 {
				t.Errorf("storm query: rows=%d err=%v", rows, err)
				failures.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d storm queries failed", failures.Load())
	}

	// 3 covering shards, one origin sub-stream each.
	if got := origin() - before; got > 3 {
		t.Fatalf("storm reached origin %d times, want <= 3 (once per shard key)", got)
	}
	st := cf.coord.Stats()
	if st.Cache.Collapsed == 0 {
		t.Fatalf("no lookups collapsed onto the flight: %+v", st.Cache)
	}
}
