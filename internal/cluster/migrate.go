package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"vcqr/internal/obs"
	"vcqr/internal/wire"
)

// Migration errors.
var (
	// ErrMigrateSameNode refuses a rebalance whose target already hosts
	// the shard per the routing table.
	ErrMigrateSameNode = errors.New("cluster: shard already assigned to the target node")
	// ErrMigrateDiverged aborts a cutover whose final digest compare
	// found the source and target copies unequal — the transfer raced
	// something it should not have, or was tampered with.
	ErrMigrateDiverged = errors.New("cluster: migration cutover digest compare failed")
	// ErrMigrateUnsettled aborts a migration whose source would not hold
	// still long enough to copy (sustained delta pressure beyond the
	// catch-up budget).
	ErrMigrateUnsettled = errors.New("cluster: source shard would not settle within the catch-up budget")
	// ErrRecoverIncomplete reports a recovery that found no copy of some
	// shard on any node.
	ErrRecoverIncomplete = errors.New("cluster: recovery found shards with no hosting node")
)

// copyRounds bounds the unlocked catch-up loop: how many times a copy is
// re-taken because a live delta moved the source mid-transfer before the
// migration gives up. The final round always runs under the control
// lock, where deltas wait, so the bound only limits wasted work.
const copyRounds = 3

// RebalanceReport summarizes one completed migration.
type RebalanceReport struct {
	Relation string
	Shard    int
	From, To string
	Records  int
	// CopyRounds counts transfers taken (>1 means live deltas landed on
	// the source mid-copy and the migration caught up).
	CopyRounds int
	// CopyDuration is wall time spent transferring outside the control
	// lock; CutoverDuration is the exclusive window during which deltas
	// waited — the number an operator watches.
	CopyDuration, CutoverDuration time.Duration
	// RoutingEpoch is the table version after the swing.
	RoutingEpoch uint64
	// DrainErr carries a non-fatal failure removing the source copy
	// after the swing (the copy keeps serving pinned streams either
	// way; remove it manually if set).
	DrainErr string
}

// Rebalance migrates one shard's slice to another node while serving:
//
//	copy     — transfer source → target (validated, digest-compared,
//	           AggIndex rebuilt on arrival); live deltas keep landing on
//	           the source, and queries keep routing to it.
//	catch-up — if the source's digest moved during a copy, copy again
//	           (bounded), still without blocking anything.
//	cutover  — take the control lock (deltas wait; queries do not), take
//	           a final copy if the source moved again, prove source and
//	           target identical by digest compare, and swing the routing
//	           table atomically, bumping the routing epoch.
//	drain    — release the lock and remove the source copy. Streams
//	           pinned on it finish unharmed; a query that raced the
//	           swing gets the node's not-hosting refusal and retries
//	           against the fresh table.
//
// On any failure before the swing the routing table is untouched, the
// target copy is removed, and live traffic never noticed.
func (c *Coordinator) Rebalance(shard int, to string) (*RebalanceReport, error) {
	rel := c.spec.Relation
	ref := wire.ShardRef{Relation: rel, Shard: shard}
	toCl, err := c.client(to)
	if err != nil {
		return nil, err
	}
	from, err := c.routeFor(shard)
	if err != nil {
		return nil, err
	}
	for _, url := range c.replicaSet(shard) {
		if url == to {
			return nil, fmt.Errorf("%w: shard %d at %s", ErrMigrateSameNode, shard, to)
		}
	}
	fromCl, err := c.client(from)
	if err != nil {
		return nil, err
	}
	rep := &RebalanceReport{Relation: rel, Shard: shard, From: from, To: to}
	abort := func(err error) (*RebalanceReport, error) {
		// Forget the partial copy — unless the routing table points at
		// the target meanwhile (a concurrent duplicate rebalance already
		// swung there); removing the live-routed copy would take the
		// shard offline.
		if cur, rerr := c.routeFor(shard); rerr != nil || cur != to {
			toCl.ShardRemove(ref)
		}
		return nil, err
	}

	// copy + catch-up, outside the lock: deltas and queries flow.
	copyStart := time.Now()
	var settled wire.DigestResponse
	ok := false
	for round := 0; round < copyRounds && !ok; round++ {
		before, err := fromCl.ShardDigest(ref)
		if err != nil {
			return abort(fmt.Errorf("cluster: migration source digest: %w", err))
		}
		if err := c.transfer(fromCl, toCl, ref); err != nil {
			return abort(fmt.Errorf("cluster: migration transfer: %w", err))
		}
		rep.CopyRounds++
		after, err := fromCl.ShardDigest(ref)
		if err != nil {
			return abort(fmt.Errorf("cluster: migration source digest: %w", err))
		}
		if after.Digest.Equal(before.Digest) {
			settled, ok = after, true
		}
	}
	rep.CopyDuration = time.Since(copyStart)
	c.obs.Hist(obs.StageRebalCopy).Observe(rep.CopyDuration)

	// cutover, under the lock: deltas wait, queries do not.
	cutStart := time.Now()
	c.ctl.Lock()
	// Re-validate the premise under the lock: a concurrent rebalance of
	// the same shard may have swung the table while we were copying.
	if cur, rerr := c.routeFor(shard); rerr != nil || cur != from {
		c.ctl.Unlock()
		return abort(fmt.Errorf("cluster: routing for shard %d changed to %q during the copy (concurrent rebalance?); migration aborted", shard, cur))
	}
	current, err := fromCl.ShardDigest(ref)
	if err != nil {
		c.ctl.Unlock()
		return abort(fmt.Errorf("cluster: migration source digest: %w", err))
	}
	if !ok || !current.Digest.Equal(settled.Digest) {
		// One final copy with the delta path quiesced; if the source
		// still will not settle, something other than deltas is mutating
		// it and the migration must not guess.
		if err := c.transfer(fromCl, toCl, ref); err != nil {
			c.ctl.Unlock()
			return abort(fmt.Errorf("cluster: migration catch-up transfer: %w", err))
		}
		rep.CopyRounds++
		again, err := fromCl.ShardDigest(ref)
		if err != nil {
			c.ctl.Unlock()
			return abort(fmt.Errorf("cluster: migration source digest: %w", err))
		}
		if !again.Digest.Equal(current.Digest) {
			c.ctl.Unlock()
			return abort(fmt.Errorf("%w: shard %d", ErrMigrateUnsettled, shard))
		}
		current = again
	}
	// The decisive digest compare: target must hold exactly the bytes
	// the source holds, or the swing does not happen.
	target, err := toCl.ShardDigest(ref)
	if err != nil {
		c.ctl.Unlock()
		return abort(fmt.Errorf("cluster: migration target digest: %w", err))
	}
	if !target.Digest.Equal(current.Digest) {
		c.ctl.Unlock()
		return abort(fmt.Errorf("%w: shard %d: source %x target %x",
			ErrMigrateDiverged, shard, current.Digest, target.Digest))
	}
	rep.Records = target.Records
	c.mu.Lock()
	// Swing the primary; sibling replicas (R > 1) keep their place in
	// the set — Rebalance moves one copy, not the whole set.
	if len(c.route[shard]) == 0 {
		c.route[shard] = []string{to}
	} else {
		c.route[shard][0] = to
	}
	c.mu.Unlock()
	rep.RoutingEpoch = c.repoch.Add(1)
	c.persistRouting()
	c.ctl.Unlock()
	rep.CutoverDuration = time.Since(cutStart)
	c.obs.Hist(obs.StageRebalCutover).Observe(rep.CutoverDuration)
	// Retire the shard's cached entries outside the exclusive window (the
	// invalidation broadcast is network I/O): the copies were proven
	// byte-identical, so an entry served in this gap is still correct —
	// the bump is hygiene for the new hosting, not a correctness race.
	c.bumpShards(shard)
	// Migrations land in the slow log like any request, compared against
	// the threshold by their copy+cutover sum.
	c.obs.Slow.Record(obs.SlowEntry{
		Trace: obs.NewTraceID(), Op: "rebalance",
		Detail: fmt.Sprintf("relation=%s shard=%d from=%s to=%s rounds=%d", rel, shard, from, to, rep.CopyRounds),
		Start:  copyStart, NS: int64(rep.CopyDuration + rep.CutoverDuration),
		Stages: []obs.StageDur{
			{Stage: obs.StageRebalCopy, NS: int64(rep.CopyDuration)},
			{Stage: obs.StageRebalCutover, NS: int64(rep.CutoverDuration)},
		},
	})

	// drain: double-serving ends. In-flight streams hold their pinned
	// epochs; only new pins move to the target.
	if err := fromCl.ShardRemove(ref); err != nil {
		rep.DrainErr = err.Error()
	}
	c.migrations.Add(1)
	return rep, nil
}

// transfer pipes one shard slice from a source node to a target node.
// The target validates structure, every locally-checkable signature and
// the slice digest before hosting (and rebuilds the crypto index on
// publish), so a tampered or truncated transfer never installs.
func (c *Coordinator) transfer(from, to *wire.Client, ref wire.ShardRef) error {
	body, err := from.ShardFetch(ref)
	if err != nil {
		return err
	}
	defer body.Close()
	_, err = to.ShardInstall(body)
	return err
}

// RecoveryReport summarizes a routing-table rebuild.
type RecoveryReport struct {
	// Assigned maps shard → primary node URL adopted into the routing
	// table; Replicas maps shard → the full adopted replica set
	// (primary first).
	Assigned map[int]string
	Replicas map[int][]string
	// DroppedCopies lists diverged copies removed from losing nodes
	// ("shard@node"). Copies identical to the winner are NOT dropped —
	// under replication, double-hosting is the normal state, and every
	// digest-identical copy is adopted into the shard's replica set.
	DroppedCopies []string
	// Diverged lists shards whose copies disagreed by digest — evidence
	// of a migration interrupted between copy and swing. The copy that
	// has been written to since its install wins; verify with the
	// operator handbook's recovery checklist.
	Diverged []int
	// Ambiguous lists diverged shards where neither the
	// written-since-install signal nor the persisted routing log singled
	// out one copy (both copies took writes and no log names a primary).
	// The keep is deterministic (configured node order) but must be
	// operator-verified.
	Ambiguous []int
	// OpenStaged lists relations whose two-phase delta commit was begun
	// but never resolved per the coordinator's durable log — crash
	// windows where some nodes may hold the committed state and others
	// the pre-delta state. Divergence Recover observes on these
	// relations is explained, not Byzantine.
	OpenStaged []string `json:",omitempty"`
}

// Recover rebuilds the routing table by inventorying every node — the
// restart path after a coordinator crash. Every shard must be hosted
// somewhere; a shard hosted on several nodes is resolved by digest
// compare. Identical copies are a replica set — the normal state under
// R-way replication — and are all adopted; with a durable coordinator
// log configured, the logged table decides which copy is primary (a
// deterministic lookup), otherwise configured node order does.
// Divergent copies keep the one whose current digest differs from its
// install digest — the copy the cluster has been writing to — and drop
// the idle transfer (an interrupted migration's leftover). If that
// signal does not single out one copy, the logged primary wins; only
// when neither source decides is the shard reported Ambiguous.
func (c *Coordinator) Recover() (*RecoveryReport, error) {
	rel := c.spec.Relation
	type copyAt struct {
		url string
		hs  wire.HostedShard
	}
	candidates := map[int][]copyAt{}
	// The persisted routing table, when a coordinator log is configured:
	// the deterministic lookup that replaces node-order guessing for
	// copies the digests cannot tell apart.
	var logRoute [][]string
	if c.clog != nil {
		if _, r, ok := c.clog.Routing(); ok {
			logRoute = r
		}
	}
	loggedSet := func(shard int) []string {
		if shard < len(logRoute) {
			return logRoute[shard]
		}
		return nil
	}
	for _, url := range c.nodes {
		cl, err := c.client(url)
		if err != nil {
			return nil, err
		}
		inv, err := cl.Hosted()
		if err != nil {
			return nil, fmt.Errorf("cluster: inventorying %s: %w", url, err)
		}
		info, hosts := inv.Relations[rel]
		if !hosts {
			continue
		}
		if !info.Spec.Same(c.spec) {
			return nil, fmt.Errorf("%w: %s hosts v%d, coordinator has v%d",
				ErrSpecMismatch, url, info.Spec.Version, c.spec.Version)
		}
		for _, hs := range info.Shards {
			candidates[hs.Shard] = append(candidates[hs.Shard], copyAt{url: url, hs: hs})
		}
	}

	rep := &RecoveryReport{Assigned: map[int]string{}, Replicas: map[int][]string{}}
	assign := make([][]string, c.spec.K())
	missing := []int{}
	for shard := 0; shard < c.spec.K(); shard++ {
		copies := candidates[shard]
		if len(copies) == 0 {
			missing = append(missing, shard)
			continue
		}
		// Order copies by the persisted replica set (primary first), then
		// configured node order for unlogged hosts: when digests agree —
		// including the equal-digest, divergent-deltas-since-install case
		// that node order used to guess on — the adopted primary is the
		// one the logged table names.
		if pset := loggedSet(shard); len(pset) > 0 {
			rank := map[string]int{}
			for i, u := range pset {
				rank[u] = i
			}
			sort.SliceStable(copies, func(a, b int) bool {
				ra, oka := rank[copies[a].url]
				rb, okb := rank[copies[b].url]
				switch {
				case oka && okb:
					return ra < rb
				case oka:
					return true
				default:
					return false
				}
			})
		}
		winner := copies[0]
		if len(copies) > 1 {
			diverged := false
			for _, cp := range copies[1:] {
				if !cp.hs.Digest.Equal(winner.hs.Digest) {
					diverged = true
				}
			}
			if diverged {
				rep.Diverged = append(rep.Diverged, shard)
				// The written-to copy is the one whose content moved since
				// its install (absolute delta counters are incomparable
				// across copies with different install times). Exactly one
				// such copy → it wins; otherwise the logged primary decides
				// (copies[0] after the persisted-order sort); only with
				// neither signal is the keep flagged for the operator.
				written := []copyAt{}
				for _, cp := range copies {
					if len(cp.hs.InstallDigest) > 0 && !cp.hs.Digest.Equal(cp.hs.InstallDigest) {
						written = append(written, cp)
					}
				}
				loggedPrimary := false
				if pset := loggedSet(shard); len(pset) > 0 {
					for _, cp := range copies {
						if cp.url == pset[0] {
							loggedPrimary = true
						}
					}
				}
				switch {
				case len(written) == 1:
					winner = written[0]
				case loggedPrimary:
					// winner already is the logged primary via the sort.
				default:
					rep.Ambiguous = append(rep.Ambiguous, shard)
				}
			}
		}
		// Every copy digest-identical to the winner joins the replica
		// set; diverged losers are dropped.
		set := []string{winner.url}
		for _, cp := range copies {
			if cp.url == winner.url {
				continue
			}
			if cp.hs.Digest.Equal(winner.hs.Digest) {
				set = append(set, cp.url)
				continue
			}
			if cl, err := c.client(cp.url); err == nil {
				if err := cl.ShardRemove(wire.ShardRef{Relation: rel, Shard: shard}); err == nil {
					rep.DroppedCopies = append(rep.DroppedCopies, fmt.Sprintf("%d@%s", shard, cp.url))
				}
			}
		}
		assign[shard] = set
		rep.Assigned[shard] = winner.url
		rep.Replicas[shard] = append([]string(nil), set...)
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		return rep, fmt.Errorf("%w: shards %v", ErrRecoverIncomplete, missing)
	}
	c.mu.Lock()
	c.route = assign
	c.mu.Unlock()
	c.repoch.Add(1)
	c.persistRouting()
	// Recovery adopts whatever the nodes hold — possibly bytes written
	// while this coordinator was down — so every shard's cached entries
	// are suspect.
	c.bumpAllShards()
	// Surface (and close) delta commits the log says were in flight when
	// the previous incarnation died: the inventory above already adopted
	// whatever state each node durably committed, so the ambiguity is
	// resolved — but the operator should know it existed.
	if c.clog != nil {
		for relName := range c.clog.OpenStaged() {
			rep.OpenStaged = append(rep.OpenStaged, relName)
			if err := c.clog.LogStagedEnd(relName, false); err != nil {
				c.persistFailures.Add(1)
			}
		}
		sort.Strings(rep.OpenStaged)
	}
	sort.Ints(rep.Diverged)
	sort.Ints(rep.Ambiguous)
	sort.Strings(rep.DroppedCopies)
	return rep, nil
}

// AddReplica copies a shard's slice from its primary to a new node and
// joins that node to the shard's replica set — the grow-R path, and the
// repair path after a replica was dropped. The copy follows the
// Rebalance discipline (bounded catch-up outside the control lock, the
// decisive digest compare under it) so the joined copy is proven
// byte-identical at join time; no routing swing happens — the primary
// stays, the set grows.
func (c *Coordinator) AddReplica(shard int, to string) error {
	toCl, err := c.client(to)
	if err != nil {
		return err
	}
	from, err := c.routeFor(shard)
	if err != nil {
		return err
	}
	for _, url := range c.replicaSet(shard) {
		if url == to {
			return fmt.Errorf("%w: shard %d at %s", ErrReplicaExists, shard, to)
		}
	}
	fromCl, err := c.client(from)
	if err != nil {
		return err
	}
	ref := wire.ShardRef{Relation: c.spec.Relation, Shard: shard}
	abort := func(err error) error {
		toCl.ShardRemove(ref)
		return err
	}
	ok := false
	var settled wire.DigestResponse
	for round := 0; round < copyRounds && !ok; round++ {
		before, err := fromCl.ShardDigest(ref)
		if err != nil {
			return abort(fmt.Errorf("cluster: replica source digest: %w", err))
		}
		if err := c.transfer(fromCl, toCl, ref); err != nil {
			return abort(fmt.Errorf("cluster: replica transfer: %w", err))
		}
		after, err := fromCl.ShardDigest(ref)
		if err != nil {
			return abort(fmt.Errorf("cluster: replica source digest: %w", err))
		}
		if after.Digest.Equal(before.Digest) {
			settled, ok = after, true
		}
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	current, err := fromCl.ShardDigest(ref)
	if err != nil {
		return abort(fmt.Errorf("cluster: replica source digest: %w", err))
	}
	if !ok || !current.Digest.Equal(settled.Digest) {
		if err := c.transfer(fromCl, toCl, ref); err != nil {
			return abort(fmt.Errorf("cluster: replica catch-up transfer: %w", err))
		}
		again, err := fromCl.ShardDigest(ref)
		if err != nil {
			return abort(fmt.Errorf("cluster: replica source digest: %w", err))
		}
		if !again.Digest.Equal(current.Digest) {
			return abort(fmt.Errorf("%w: shard %d", ErrMigrateUnsettled, shard))
		}
		current = again
	}
	target, err := toCl.ShardDigest(ref)
	if err != nil {
		return abort(fmt.Errorf("cluster: replica target digest: %w", err))
	}
	if !target.Digest.Equal(current.Digest) {
		return abort(fmt.Errorf("%w: shard %d: source %x target %x",
			ErrMigrateDiverged, shard, current.Digest, target.Digest))
	}
	c.mu.Lock()
	joined := false
	if shard >= 0 && shard < len(c.route) {
		already := false
		for _, url := range c.route[shard] {
			if url == to {
				already = true
			}
		}
		if !already {
			c.route[shard] = append(c.route[shard], to)
			joined = true
		}
	}
	c.mu.Unlock()
	if !joined {
		return abort(fmt.Errorf("%w: shard %d at %s", ErrReplicaExists, shard, to))
	}
	c.repoch.Add(1)
	c.persistRouting()
	return nil
}

// DropReplica removes one node from a shard's replica set and drains its
// copy. Dropping the primary promotes the next sibling. The last replica
// cannot be dropped — that is what Rebalance (move) is for.
func (c *Coordinator) DropReplica(shard int, url string) error {
	if _, err := c.client(url); err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	c.mu.Lock()
	if shard < 0 || shard >= len(c.route) {
		c.mu.Unlock()
		return fmt.Errorf("%w: shard %d of %d", ErrNoRoute, shard, len(c.route))
	}
	set := c.route[shard]
	idx := -1
	for i, u := range set {
		if u == url {
			idx = i
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: %s does not host a replica of shard %d", url, shard)
	}
	if len(set) == 1 {
		c.mu.Unlock()
		return fmt.Errorf("%w: shard %d", ErrLastReplica, shard)
	}
	c.route[shard] = append(append([]string(nil), set[:idx]...), set[idx+1:]...)
	c.mu.Unlock()
	c.repoch.Add(1)
	c.persistRouting()
	// Drain: streams pinned on the dropped copy finish unharmed; only
	// new pins avoid it. Removal is best-effort — an unreachable node's
	// copy stays where it is until the node returns or is rebuilt.
	if cl, err := c.client(url); err == nil {
		cl.ShardRemove(wire.ShardRef{Relation: c.spec.Relation, Shard: shard})
	}
	return nil
}
