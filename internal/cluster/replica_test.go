package cluster_test

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/cluster"
	"vcqr/internal/engine"
	"vcqr/internal/server"
	"vcqr/internal/wire"
)

// newReplicaCluster is the replication fixture: nNodes nodes at R
// replicas per shard, the coordinator's node traffic routed through a
// fresh fault injector. A non-zero timeout bounds every coordinator→node
// exchange — required by Hang faults, whose only exit (besides Release)
// is the request deadline.
func newReplicaCluster(t *testing.T, n, k, nNodes, r int, timeout time.Duration, mod func(*cluster.Config)) (*fix, *cluster.Injector) {
	inj := cluster.NewInjector(nil)
	hc := &http.Client{Transport: inj, Timeout: timeout}
	f := newClusterCfg(t, n, k, nNodes, hc, func(cfg *cluster.Config) {
		cfg.Replicas = r
		if mod != nil {
			mod(cfg)
		}
	})
	return f, inj
}

// singleBaseline serves the same publication from one process and
// returns its raw /stream bytes — the byte-identity reference every
// failover case is compared against.
func singleBaseline(t *testing.T, f *fix, req wire.StreamRequest) []byte {
	t.Helper()
	single := server.New(server.Config{
		Hasher: f.h, Pub: signKey(t).Public(), Policy: accessctl.NewPolicy(f.role),
	})
	t.Cleanup(func() { single.Close() })
	if err := single.AddPartition(f.set, true); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(single.Handler())
	t.Cleanup(ts.Close)
	return streamBody(t, ts.URL, req)
}

// TestReplicaFailoverMatrix is the fault-injection acceptance table: at
// R=2, a sub-stream killed or hung at every protocol stage — connection,
// before the hello, mid-chunk, before the foot — must fail over to the
// sibling replica with the merged stream byte-identical to the
// single-process output and accepted by the unmodified verifier. A
// delay fault is the control row: slow is not dead, and must neither
// fail over nor quarantine.
func TestReplicaFailoverMatrix(t *testing.T) {
	f, inj := newReplicaCluster(t, 96, 3, 3, 2, 1500*time.Millisecond, nil)
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()

	q := engine.Query{Relation: "Uniform"} // full range: all 3 shards
	req := wire.StreamRequest{Role: "all", Query: q, ChunkRows: 8}
	want := singleBaseline(t, f, req)

	cases := []struct {
		name         string
		fault        cluster.Fault
		wantFailover bool
	}{
		{"kill-roundtrip", cluster.Fault{Stage: cluster.StageRoundTrip, Mode: cluster.Kill}, true},
		{"kill-before-hello", cluster.Fault{Stage: cluster.StageBeforeHello, Mode: cluster.Kill}, true},
		{"kill-mid-chunk", cluster.Fault{Stage: cluster.StageMidChunk, Mode: cluster.Kill}, true},
		{"kill-before-foot", cluster.Fault{Stage: cluster.StageBeforeFoot, Mode: cluster.Kill}, true},
		{"hang-roundtrip", cluster.Fault{Stage: cluster.StageRoundTrip, Mode: cluster.Hang}, true},
		{"hang-mid-chunk", cluster.Fault{Stage: cluster.StageMidChunk, Mode: cluster.Hang}, true},
		{"delay-mid-chunk", cluster.Fault{Stage: cluster.StageMidChunk, Mode: cluster.Delay, Delay: 30 * time.Millisecond}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer inj.Clear()
			before := f.coord.Stats().Failovers
			fired := inj.Fired()

			// One faulted raw-bytes run pins byte identity; one faulted
			// verified run pins acceptance by the unmodified verifier.
			fault := tc.fault
			fault.Path = "/shard/stream"
			fault.Times = 1
			inj.Set(fault)
			got := streamBody(t, coordTS.URL, req)
			if !bytes.Equal(got, want) {
				t.Fatalf("faulted stream (%d bytes) differs from single-process stream (%d bytes)", len(got), len(want))
			}
			inj.Set(fault)
			rows, err := f.verifyStream(coordTS.URL, q, 8)
			if err != nil {
				t.Fatalf("faulted stream rejected by unmodified verifier: %v", err)
			}
			if rows != 96 {
				t.Fatalf("verified %d rows, want 96", rows)
			}

			if inj.Fired() != fired+2 {
				t.Fatalf("fault fired %d times, want 2", inj.Fired()-fired)
			}
			delta := f.coord.Stats().Failovers - before
			if tc.wantFailover && delta < 2 {
				t.Fatalf("failovers moved by %d across two faulted queries, want >= 2", delta)
			}
			if !tc.wantFailover && delta != 0 {
				t.Fatalf("failovers moved by %d on a delay fault, want 0", delta)
			}
		})
	}
	if qn := f.coord.Stats().Quarantines; qn != 0 {
		t.Fatalf("crash/hang faults quarantined %d nodes; only Byzantine evidence may", qn)
	}
}

// TestReplicaNodeDeathZeroFailedQueries is the availability acceptance:
// at R=2 under live query load and owner ingest, a SIGKILL-equivalent
// node death (client connections severed, listener closed) causes zero
// failed queries — in-flight streams fail over, new queries route around
// the corpse, and the lapsed lease demotes it. Writes prefer refusal
// over divergence while the dead replica is still in the sets, and
// resume once the operator drops it.
func TestReplicaNodeDeathZeroFailedQueries(t *testing.T) {
	f, _ := newReplicaCluster(t, 96, 3, 3, 2, 0, func(cfg *cluster.Config) {
		cfg.LeaseTTL = 250 * time.Millisecond
	})
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()
	stopHB := f.coord.StartHeartbeats(60 * time.Millisecond)
	defer stopHB()

	q := engine.Query{Relation: "Uniform"}
	var stop atomic.Bool
	var failures, attempts atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				attempts.Add(1)
				if _, err := f.verifyStream(coordTS.URL, q, 8); err == nil {
					continue
				}
				// Bounded retry: a stream torn by a racing epoch bump
				// re-pins fresh; only a failed retry is a failed query.
				if _, err := f.verifyStream(coordTS.URL, q, 8); err != nil {
					t.Errorf("query failed after retry: %v", err)
					failures.Add(1)
					return
				}
			}
		}()
	}

	// Live ingest before the death.
	sl0 := f.set.Slices[0]
	if _, err := f.coord.ApplyDelta(f.mintDelta(f.globalIndexOf(sl0.Recs[3].Key(), sl0.Recs[3].Tuple.RowID), []byte("pre-kill"))); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	// SIGKILL equivalent: node 2 (primary of shard 2, backup of shard 1)
	// drops every connection and stops listening.
	dead := f.urls[2]
	f.srvs[2].CloseClientConnections()
	f.srvs[2].Close()

	// Writes now refuse rather than fork: the dead node is still in two
	// replica sets, and a delta that cannot reach every honest replica
	// must not commit anywhere.
	sl1 := f.set.Slices[1]
	d := f.mintDelta(f.globalIndexOf(sl1.Recs[3].Key(), sl1.Recs[3].Tuple.RowID), []byte("post-kill"))
	if _, err := f.coord.ApplyDelta(d); err == nil {
		t.Fatal("delta committed with a dead replica still in the write set")
	}

	// The lapsed lease demotes the corpse (lazily, on observation).
	deadline := time.Now().Add(5 * time.Second)
	for {
		state := ""
		for _, ns := range f.coord.NodeStats() {
			if ns.URL == dead {
				state = ns.State
			}
		}
		if state == cluster.NodeExpired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead node never demoted (state %q)", state)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Operator repair: drop the dead replica from its sets; the exact
	// delta that was refused now lands.
	for shard, set := range f.coord.ReplicaSets() {
		for _, url := range set {
			if url == dead {
				if err := f.coord.DropReplica(shard, dead); err != nil {
					t.Fatalf("dropping dead replica of shard %d: %v", shard, err)
				}
			}
		}
	}
	if _, err := f.coord.ApplyDelta(d); err != nil {
		t.Fatalf("delta still refused after dropping the dead replica: %v", err)
	}

	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d queries failed through node death at R=2", failures.Load())
	}
	if attempts.Load() == 0 {
		t.Fatal("no queries ran")
	}
	st := f.coord.Stats()
	if st.Failovers == 0 {
		t.Fatal("node death caused no failovers — the dead replica was never routed to")
	}
	if st.Demotions == 0 {
		t.Fatal("lease lapse recorded no demotion")
	}

	// The surviving cluster serves the full, delta'd, verifying stream.
	rows, err := f.verifyStream(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("post-death stream rejected: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows, want 96", rows)
	}
	res, err := f.coord.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, row := range res.Rows() {
		for _, attr := range row.Values {
			if string(attr.Val.Bytes) == "post-kill" {
				found++
			}
		}
	}
	if found != 1 {
		t.Fatalf("re-applied delta payload present %d times, want exactly 1", found)
	}
}

// TestByzantineReplicaQuarantined: a replica whose sub-streams are
// corrupted (hello digest and seam material mutated in flight) must be
// caught by the seam check, attributed by its own control-plane
// self-contradiction, quarantined, and routed around — with the merged
// stream byte-identical to the single-process output and the unmodified
// verifier never seeing the corruption. Writes exclude the quarantined
// copy, and the drop → re-add → reinstate runbook restores it.
func TestByzantineReplicaQuarantined(t *testing.T) {
	f, inj := newReplicaCluster(t, 96, 3, 3, 2, 0, nil)
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()

	q := engine.Query{Relation: "Uniform"}
	req := wire.StreamRequest{Role: "all", Query: q, ChunkRows: 8}
	want := singleBaseline(t, f, req)

	// Node 1 (primary of shard 1) lies on every sub-stream it serves.
	liar := f.urls[1]
	inj.Set(cluster.Fault{
		Node: liar, Path: "/shard/stream",
		Stage: cluster.StageBeforeHello, Mode: cluster.Corrupt,
	})

	got := streamBody(t, coordTS.URL, req)
	if !bytes.Equal(got, want) {
		t.Fatalf("stream through a Byzantine replica (%d bytes) differs from single-process stream (%d bytes)", len(got), len(want))
	}
	rows, err := f.verifyStream(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("stream rejected by unmodified verifier: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows, want 96", rows)
	}

	st := f.coord.Stats()
	if st.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want exactly 1", st.Quarantines)
	}
	if st.HandoffRetries == 0 {
		t.Fatal("corrupted seam material caused no hand-off retry")
	}
	var liarStat cluster.NodeStat
	for _, ns := range f.coord.NodeStats() {
		if ns.URL == liar {
			liarStat = ns
		}
	}
	if liarStat.State != cluster.NodeQuarantined || liarStat.QuarantineReason == "" {
		t.Fatalf("liar node state %q (reason %q), want quarantined with a recorded reason", liarStat.State, liarStat.QuarantineReason)
	}
	// Quarantine drains; it does not delete — the sets still name the node.
	inSets := 0
	for _, set := range f.coord.ReplicaSets() {
		for _, url := range set {
			if url == liar {
				inSets++
			}
		}
	}
	if inSets == 0 {
		t.Fatal("quarantine removed the node from its replica sets; it must only drain it")
	}

	// A write while quarantined lands on the honest replicas only.
	sl1 := f.set.Slices[1]
	if _, err := f.coord.ApplyDelta(f.mintDelta(f.globalIndexOf(sl1.Recs[3].Key(), sl1.Recs[3].Tuple.RowID), []byte("while-quarantined"))); err != nil {
		t.Fatalf("delta refused while a replica is quarantined: %v", err)
	}
	if rows, err := f.verifyStream(coordTS.URL, q, 8); err != nil || rows != 96 {
		t.Fatalf("post-delta stream: rows=%d err=%v", rows, err)
	}

	// Runbook recovery: stop the corruption, drop and re-copy every
	// replica the node hosted (its copies missed the quarantined-era
	// delta and its mirror fixes), then reinstate.
	inj.Clear()
	for shard, set := range f.coord.ReplicaSets() {
		for _, url := range set {
			if url != liar {
				continue
			}
			if err := f.coord.DropReplica(shard, liar); err != nil {
				t.Fatalf("dropping shard %d from the quarantined node: %v", shard, err)
			}
			if err := f.coord.AddReplica(shard, liar); err != nil {
				t.Fatalf("re-adding shard %d to the repaired node: %v", shard, err)
			}
		}
	}
	if !f.coord.Reinstate(liar) {
		t.Fatal("Reinstate returned false for a quarantined node")
	}
	if f.coord.Reinstate(liar) {
		t.Fatal("Reinstate returned true for a node not quarantined")
	}

	// The reinstated cluster is fully convergent: every shard's replicas
	// hold digest-identical copies and the stream still verifies.
	for shard, set := range f.coord.ReplicaSets() {
		ref := wire.ShardRef{Relation: "Uniform", Shard: shard}
		var first wire.DigestResponse
		for i, url := range set {
			resp, err := (&wire.Client{BaseURL: url}).ShardDigest(ref)
			if err != nil {
				t.Fatalf("digest of shard %d at %s: %v", shard, url, err)
			}
			if i == 0 {
				first = resp
			} else if !resp.Digest.Equal(first.Digest) {
				t.Fatalf("shard %d replicas diverged after reinstate: %x vs %x", shard, first.Digest, resp.Digest)
			}
		}
	}
	if rows, err := f.verifyStream(coordTS.URL, q, 8); err != nil || rows != 96 {
		t.Fatalf("post-reinstate stream: rows=%d err=%v", rows, err)
	}
	if qn := f.coord.Stats().Quarantines; qn != 1 {
		t.Fatalf("quarantines = %d after recovery, want still 1", qn)
	}
}

// TestLeaseExpiryDemotesWithoutDroppingStreams drives the lease state
// machine on an injected clock: a node whose heartbeats fail is demoted
// exactly when its lease lapses — not a tick earlier — while a stream
// opened before the lapse keeps draining from it, new queries route to
// live siblings without a failover, and the next successful heartbeat
// promotes it back.
func TestLeaseExpiryDemotesWithoutDroppingStreams(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	f, inj := newReplicaCluster(t, 96, 3, 3, 2, 0, func(cfg *cluster.Config) {
		cfg.LeaseTTL = 10 * time.Second
		cfg.Clock = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}
	})

	f.coord.HeartbeatOnce()
	st := f.coord.Stats()
	if st.LeaseRenewals != 3 {
		t.Fatalf("lease renewals = %d after one round over 3 nodes, want 3", st.LeaseRenewals)
	}
	for _, ns := range f.coord.NodeStats() {
		if ns.State != cluster.NodeLive || ns.LeaseExpiry.IsZero() {
			t.Fatalf("node %s after grant: state %q expiry %v", ns.URL, ns.State, ns.LeaseExpiry)
		}
	}

	// A stream pinned while every lease is current; node 2 serves shard 2.
	q := engine.Query{Relation: "Uniform"}
	stream, err := f.coord.QueryStream("all", q, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := stream.Next(); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}

	// Node 2's heartbeats start failing; the others renew. Mid-TTL the
	// failing node is still live — a dropped heartbeat inside the TTL
	// costs nothing.
	inj.Set(cluster.Fault{Node: f.urls[2], Path: "/node/lease", Stage: cluster.StageRoundTrip, Mode: cluster.Kill})
	advance(6 * time.Second)
	f.coord.HeartbeatOnce()
	if got := nodeState(f.coord, f.urls[2]); got != cluster.NodeLive {
		t.Fatalf("node 2 state %q mid-TTL after one missed heartbeat, want live", got)
	}

	// Past the TTL it demotes — lazily, on the next observation.
	advance(5 * time.Second)
	if got := nodeState(f.coord, f.urls[2]); got != cluster.NodeExpired {
		t.Fatalf("node 2 state %q past its TTL, want expired", got)
	}
	if got := nodeState(f.coord, f.urls[0]); got != cluster.NodeLive {
		t.Fatalf("node 0 state %q with a current lease, want live", got)
	}
	if d := f.coord.Stats().Demotions; d != 1 {
		t.Fatalf("demotions = %d, want 1", d)
	}

	// New queries route around the demoted node by selection, not
	// failover: every shard still has a live replica.
	res, err := f.coord.Query("all", q)
	if err != nil {
		t.Fatalf("query with a demoted node: %v", err)
	}
	if rows, err := f.v.VerifyResult(q, f.role, res); err != nil || len(rows) != 96 {
		t.Fatalf("query with a demoted node: rows=%d err=%v", len(rows), err)
	}
	if fo := f.coord.Stats().Failovers; fo != 0 {
		t.Fatalf("failovers = %d; demotion must reroute by selection, not failover", fo)
	}

	// The pre-expiry stream keeps draining from the demoted node:
	// demotion removes it from selection, never from service.
	chunks := 2
	for {
		_, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("in-flight stream dropped after demotion at chunk %d: %v", chunks, err)
		}
		chunks++
	}
	if chunks < 12 { // 96 rows at 8 per chunk, plus framing
		t.Fatalf("drained %d chunks, want the full stream", chunks)
	}

	// A successful heartbeat promotes it back.
	inj.Clear()
	advance(1 * time.Second)
	f.coord.HeartbeatOnce()
	if got := nodeState(f.coord, f.urls[2]); got != cluster.NodeLive {
		t.Fatalf("node 2 state %q after a renewed lease, want live", got)
	}
	if p := f.coord.Stats().Promotions; p != 1 {
		t.Fatalf("promotions = %d, want 1", p)
	}
}

// nodeState reads one node's lease state from the coordinator's stats.
func nodeState(c *cluster.Coordinator, url string) string {
	for _, ns := range c.NodeStats() {
		if ns.URL == url {
			return ns.State
		}
	}
	return ""
}

// TestReplicaDeltaWriteAll: at R=2 both delta shapes (interior and
// seam-crossing) must leave every shard's replicas digest-identical —
// the write-all fan-out plus cross-replica staging checks — and the
// published stream verifying with both payloads.
func TestReplicaDeltaWriteAll(t *testing.T) {
	f, _ := newReplicaCluster(t, 96, 3, 3, 2, 0, nil)

	sl1 := f.set.Slices[1]
	mid := sl1.Recs[len(sl1.Recs)/2]
	if _, err := f.coord.ApplyDelta(f.mintDelta(f.globalIndexOf(mid.Key(), mid.Tuple.RowID), []byte("interior-v2"))); err != nil {
		t.Fatalf("interior delta rejected: %v", err)
	}
	sl0 := f.set.Slices[0]
	edge := sl0.Recs[len(sl0.Recs)-2]
	if _, err := f.coord.ApplyDelta(f.mintDelta(f.globalIndexOf(edge.Key(), edge.Tuple.RowID), []byte("seam-v2"))); err != nil {
		t.Fatalf("seam-crossing delta rejected: %v", err)
	}

	for shard, set := range f.coord.ReplicaSets() {
		if len(set) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", shard, len(set))
		}
		ref := wire.ShardRef{Relation: "Uniform", Shard: shard}
		a, err := (&wire.Client{BaseURL: set[0]}).ShardDigest(ref)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (&wire.Client{BaseURL: set[1]}).ShardDigest(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Digest.Equal(b.Digest) {
			t.Fatalf("shard %d replicas diverged after deltas: %x vs %x", shard, a.Digest, b.Digest)
		}
	}

	q := engine.Query{Relation: "Uniform"}
	res, err := f.coord.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.v.VerifyResult(q, f.role, res)
	if err != nil {
		t.Fatalf("post-delta result rejected: %v", err)
	}
	if len(rows) != 96 {
		t.Fatalf("verified %d rows, want 96", len(rows))
	}
	found := 0
	for _, row := range res.Rows() {
		for _, attr := range row.Values {
			if s := string(attr.Val.Bytes); s == "interior-v2" || s == "seam-v2" {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d updated payloads, want 2", found)
	}
}

// TestAddDropReplica covers the membership operations: adding a replica
// copies the current content, duplicates are refused, dropping the
// primary promotes the sibling, and the last copy cannot be dropped.
func TestAddDropReplica(t *testing.T) {
	f := newCluster(t, 60, 3, 2, nil) // R=1: shard 1 lives alone on node 1
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	if err := f.coord.AddReplica(1, f.urls[0]); err != nil {
		t.Fatalf("adding a replica: %v", err)
	}
	if err := f.coord.AddReplica(1, f.urls[0]); !errors.Is(err, cluster.ErrReplicaExists) {
		t.Fatalf("duplicate add: %v, want ErrReplicaExists", err)
	}
	sets := f.coord.ReplicaSets()
	if len(sets[1]) != 2 || sets[1][0] != f.urls[1] || sets[1][1] != f.urls[0] {
		t.Fatalf("replica set after add: %v", sets[1])
	}
	if rows, err := f.verifyStream(coordTS.URL, q, 8); err != nil || rows != 60 {
		t.Fatalf("stream after add: rows=%d err=%v", rows, err)
	}

	// Dropping the primary promotes the sibling and drains the copy.
	if err := f.coord.DropReplica(1, f.urls[1]); err != nil {
		t.Fatalf("dropping the primary: %v", err)
	}
	if got := f.coord.Stats().Routing[1]; got != f.urls[0] {
		t.Fatalf("shard 1 primary %s after drop, want promoted sibling %s", got, f.urls[0])
	}
	if hosted := f.nodes[1].Stats().Hosted["Uniform"]; len(hosted) != 0 {
		t.Fatalf("node 1 still hosts %d shards after the drop's drain", len(hosted))
	}
	if rows, err := f.verifyStream(coordTS.URL, q, 8); err != nil || rows != 60 {
		t.Fatalf("stream after drop: rows=%d err=%v", rows, err)
	}

	if err := f.coord.DropReplica(1, f.urls[0]); !errors.Is(err, cluster.ErrLastReplica) {
		t.Fatalf("dropping the last replica: %v, want ErrLastReplica", err)
	}
}

// TestReplicaAwareRecover: a fresh coordinator inventorying an R=2
// cluster must adopt the digest-identical double-hosted copies as
// replica sets — double-hosted is the normal replicated state, not a
// torn migration — dropping nothing.
func TestReplicaAwareRecover(t *testing.T) {
	f, _ := newReplicaCluster(t, 96, 3, 3, 2, 0, nil)

	// Writes before the crash keep the copies identical (write-all).
	sl1 := f.set.Slices[1]
	if _, err := f.coord.ApplyDelta(f.mintDelta(f.globalIndexOf(sl1.Recs[2].Key(), sl1.Recs[2].Tuple.RowID), []byte("pre-crash"))); err != nil {
		t.Fatal(err)
	}

	coord2, err := cluster.New(cluster.Config{
		Hasher:   f.h,
		Pub:      signKey(t).Public(),
		Params:   f.owner.Params,
		Schema:   f.owner.Schema,
		Policy:   accessctl.NewPolicy(f.role),
		Spec:     f.spec,
		Nodes:    f.urls,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord2.Recover()
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(rep.Diverged) != 0 {
		t.Fatalf("identical replicas reported as diverged: %+v", rep)
	}
	if len(rep.DroppedCopies) != 0 {
		t.Fatalf("recovery dropped healthy replicas: %v", rep.DroppedCopies)
	}
	for shard := 0; shard < 3; shard++ {
		if len(rep.Replicas[shard]) != 2 {
			t.Fatalf("shard %d recovered with %d replicas, want 2: %v", shard, len(rep.Replicas[shard]), rep.Replicas[shard])
		}
	}
	sets := coord2.ReplicaSets()
	for shard, set := range sets {
		if len(set) != 2 {
			t.Fatalf("recovered coordinator routes shard %d to %d replicas, want 2", shard, len(set))
		}
	}

	q := engine.Query{Relation: "Uniform"}
	res, err := coord2.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := f.v.VerifyResult(q, f.role, res); err != nil || len(rows) != 96 {
		t.Fatalf("post-recovery result: rows=%d err=%v", len(rows), err)
	}
}
