package cluster

import (
	"fmt"
	"sort"
	"time"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/partition"
	"vcqr/internal/wire"
)

// ApplyDelta routes an owner update batch across the shard nodes with
// the same all-or-nothing contract the in-process partitioned server
// gives, held across processes by a two-phase protocol:
//
//  1. prepare — each affected node stages its shards' sub-batches:
//     apply on clones, stitch co-hosted mirrors, validate everything
//     locally checkable. Nothing publishes.
//  2. mirror fixes — for every seam whose sides stage on different
//     nodes, the coordinator pushes the owning side's staged edge
//     record to the neighbour, which validates the adjacent signature
//     against it and stages the fix.
//  3. seam checks — the coordinator re-proves every affected seam from
//     staged edge material (partition.CheckSeam): the digest compare
//     plus both hand-off signatures, exactly the validations the nodes
//     deferred.
//  4. commit — each node publishes its staged slices.
//
// Replication makes the write path write-all: each shard's sub-batch
// goes to every non-quarantined replica, and the staged edge material
// must agree across a shard's replicas before anything commits —
// identical copies staging identical ops stage identical edges, so any
// disagreement means the copies had already diverged and committing
// would fork them (ErrReplicaDiverged). A replica that is unreachable
// fails the delta: availability under node death is the read path's
// property (failover); the write path prefers refusal over divergence —
// drop or re-prove the dead replica to restore writes (see
// docs/OPERATIONS.md).
//
// Any failure before commit aborts every staged transaction and leaves
// all published epochs untouched. The commit fan-out itself is not
// atomic across nodes — the same per-shard non-atomicity the in-process
// publish has — and readers absorb it the same way, by re-pinning on an
// observed hand-off mismatch. A coordinator crash mid-protocol leaves
// only staged state, which the next prepare discards.
func (c *Coordinator) ApplyDelta(d delta.Delta) (uint64, error) {
	if d.Relation != c.spec.Relation {
		return 0, fmt.Errorf("%w: %q", engine.ErrUnknownRelation, d.Relation)
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	sp := obs.StartSpan("")
	defer func() {
		c.obs.Hist(obs.StageDeltaApply).Observe(sp.Elapsed())
		c.obs.Slow.Finish(sp, "delta", fmt.Sprintf("relation=%s ops=%d", d.Relation, len(d.Ops)))
	}()

	epoch, err := c.applyDelta(d)
	if err != nil {
		c.errors.Add(1)
		return 0, err
	}
	c.deltasApplied.Add(1)
	return epoch, nil
}

func (c *Coordinator) applyDelta(d delta.Delta) (uint64, error) {
	k := c.spec.K()

	// Route every op to its owning shard, preserving op order per shard.
	shardOps := map[int][]delta.Op{}
	for _, op := range d.Ops {
		var shard int
		switch {
		case op.Kind == delta.OpUpsert && op.Rec.Kind == core.KindDelimLeft:
			shard = 0
		case op.Kind == delta.OpUpsert && op.Rec.Kind == core.KindDelimRight:
			shard = k - 1
		default:
			var err error
			shard, err = c.spec.ShardFor(op.Key)
			if err != nil {
				return 0, fmt.Errorf("cluster: delta rejected: %w", err)
			}
		}
		shardOps[shard] = append(shardOps[shard], op)
	}
	if len(shardOps) == 0 {
		return 0, fmt.Errorf("cluster: empty delta")
	}

	// Fan each shard's sub-batch to every writable replica. opsShards
	// marks shards carrying ops (as opposed to neighbours staged only by
	// co-hosted stitching or mirror fixes) — the set whose cross-replica
	// agreement is checkable already at prepare.
	opsShards := map[int]bool{}
	nodeOps := map[string][]delta.Op{}
	for _, shard := range sortedInts(shardOps) {
		opsShards[shard] = true
		urls, err := c.writeReplicas(shard)
		if err != nil {
			return 0, err
		}
		for _, url := range urls {
			nodeOps[url] = append(nodeOps[url], shardOps[shard]...)
		}
	}

	// Phase 1: prepare on every affected node. stagedOn[shard][url] is
	// the staged edge material per replica; a shard's replicas must
	// converge on identical material before commit.
	tPhase := time.Now()
	tokens := map[string]uint64{}
	stagedOn := map[int]map[string]partition.Edges{}
	record := func(shard int, url string, e partition.Edges) {
		if stagedOn[shard] == nil {
			stagedOn[shard] = map[string]partition.Edges{}
		}
		stagedOn[shard][url] = e
	}
	// canon returns one replica's staged edges for a shard. The records a
	// caller reads from it (owned records, for mirror pushes and seam
	// checks) are replica-independent: stitching and mirror fixes touch
	// only context records, and the cross-replica agreement checks make
	// any drift an abort rather than a silent choice.
	canon := func(shard int) (partition.Edges, bool) {
		m := stagedOn[shard]
		if len(m) == 0 {
			return partition.Edges{}, false
		}
		urls := sortedKeys(m)
		return m[urls[0]], true
	}
	abort := func() {
		for url, tok := range tokens {
			if cl, err := c.client(url); err == nil {
				cl.NodeTx(wire.TxRequest{Relation: d.Relation, Token: tok, Commit: false})
			}
		}
	}
	for _, url := range sortedKeys(nodeOps) {
		cl, err := c.client(url)
		if err != nil {
			abort()
			return 0, err
		}
		resp, err := cl.NodeDeltaPrepare(delta.Delta{Relation: d.Relation, Ops: nodeOps[url]})
		if err != nil {
			abort()
			return 0, fmt.Errorf("cluster: prepare on %s: %w", url, err)
		}
		tokens[url] = resp.Token
		for _, m := range resp.Modified {
			if opsShards[m.Shard] {
				// Identical copies staging identical sub-batches must stage
				// identical owned records. Context records are exempt until
				// the mirror-fix phase: a replica co-hosting the neighbouring
				// ops-shard stitches its context during prepare, a sibling
				// that does not converges in phase 2 — the full six-record
				// agreement is re-checked there.
				for prior, e := range stagedOn[m.Shard] {
					if !ownedEdgesEqual(e, m.Edges) {
						abort()
						return 0, fmt.Errorf("%w: shard %d staged differently on %s and %s",
							ErrReplicaDiverged, m.Shard, prior, url)
					}
				}
			}
			record(m.Shard, url, m.Edges)
		}
	}

	c.obs.Hist(obs.StageDeltaPrepare).ObserveSince(tPhase)

	// Phase 2: cross-node mirror fixes. A staged shard's edge records
	// must be mirrored by every replica of its neighbours; replicas
	// stitched during prepare (co-hosted on a preparing node) are already
	// accurate, the rest get a pushed fix — which opens a fresh staging
	// transaction on nodes not yet in the delta (token 0).
	tPhase = time.Now()
	modified := make([]int, 0, len(stagedOn))
	for i := range stagedOn {
		modified = append(modified, i)
	}
	sort.Ints(modified)
	currentEdgesOn := func(shard int, url string) (partition.Edges, error) {
		if e, ok := stagedOn[shard][url]; ok {
			return e, nil
		}
		cl, err := c.client(url)
		if err != nil {
			return partition.Edges{}, err
		}
		resp, err := cl.ShardEdges(wire.ShardRef{Relation: d.Relation, Shard: shard})
		if err != nil {
			return partition.Edges{}, err
		}
		return resp.Edges, nil
	}
	pushMirror := func(neighbour int, url string, left bool, want core.SignedRecord) error {
		edges, err := currentEdgesOn(neighbour, url)
		if err != nil {
			return err
		}
		cur := edges.Head[0]
		if !left {
			cur = edges.Tail[2]
		}
		if partition.SameRecord(cur, want) {
			return nil // mirror already accurate (or co-hosted stitch fixed it)
		}
		cl, err := c.client(url)
		if err != nil {
			return err
		}
		resp, err := cl.NodeMirror(wire.MirrorRequest{
			Token: tokens[url], Relation: d.Relation, Shard: neighbour, Left: left, Rec: want,
		})
		if err != nil {
			return fmt.Errorf("mirror fix for shard %d on %s: %w", neighbour, url, err)
		}
		tokens[url] = resp.Token
		record(neighbour, url, resp.Edges)
		return nil
	}
	pushMirrors := func(neighbour int, left bool, want core.SignedRecord) error {
		urls, err := c.writeReplicas(neighbour)
		if err != nil {
			return err
		}
		for _, url := range urls {
			if err := pushMirror(neighbour, url, left, want); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range modified {
		e, _ := canon(i)
		if i > 0 {
			// Left neighbour's right context must mirror shard i's first
			// owned record — on every replica of the neighbour.
			if err := pushMirrors(i-1, false, e.Head[1]); err != nil {
				abort()
				return 0, fmt.Errorf("cluster: delta rejected: %w", err)
			}
		}
		if i < k-1 {
			// Right neighbour's left context must mirror shard i's last
			// owned record — on every replica of the neighbour.
			if err := pushMirrors(i+1, true, e.Tail[1]); err != nil {
				abort()
				return 0, fmt.Errorf("cluster: delta rejected: %w", err)
			}
		}
	}

	// With the mirror fixes in, every staged shard's replicas must hold
	// identical edge material — the write-all agreement that keeps R
	// copies one logical slice.
	for _, shard := range sortedInts(stagedOn) {
		m := stagedOn[shard]
		urls := sortedKeys(m)
		for _, url := range urls[1:] {
			if !edgesEqual(m[urls[0]], m[url]) {
				abort()
				return 0, fmt.Errorf("%w: shard %d staged differently on %s and %s after mirror fixes",
					ErrReplicaDiverged, shard, urls[0], url)
			}
		}
	}

	c.obs.Hist(obs.StageDeltaMirror).ObserveSince(tPhase)

	// Phase 3: seam checks over staged edge material — the validations
	// the nodes deferred, plus the digest compare, for every seam
	// adjacent to anything staged.
	tPhase = time.Now()
	currentEdges := func(shard int) (partition.Edges, error) {
		if e, ok := canon(shard); ok {
			return e, nil
		}
		url, err := c.routeFor(shard)
		if err != nil {
			return partition.Edges{}, err
		}
		return currentEdgesOn(shard, url)
	}
	seams := map[int]bool{} // seam x joins shards x and x+1
	for _, i := range modified {
		if i > 0 {
			seams[i-1] = true
		}
		if i < k-1 {
			seams[i] = true
		}
	}
	for _, x := range sortedInts(seams) {
		left, err := currentEdges(x)
		if err != nil {
			abort()
			return 0, err
		}
		right, err := currentEdges(x + 1)
		if err != nil {
			abort()
			return 0, err
		}
		if err := partition.CheckSeam(c.h, c.pub, c.params, left, right); err != nil {
			abort()
			return 0, fmt.Errorf("cluster: delta rejected: seam %d-%d: %w", x, x+1, err)
		}
	}

	c.obs.Hist(obs.StageDeltaSeam).ObserveSince(tPhase)

	// Phase 4: commit everywhere. Failures here are partial by nature;
	// report them with the nodes that did commit so the operator can
	// reconcile (the staged-versus-published divergence is visible in
	// /shard/digest). Each shard's content epoch is bumped once, at the
	// first committing node staging it — the bump retires cached bytes,
	// and one retirement per shard is exact.
	tPhase = time.Now()
	defer func() { c.obs.Hist(obs.StageDeltaCommit).ObserveSince(tPhase) }()
	// Durably bracket the commit fan-out: if the coordinator dies inside
	// it, the next incarnation finds the open staged record in its log
	// and knows any divergence it inventories is an in-flight commit —
	// some nodes durably committed, some did not — rather than guessing
	// from digests alone. A coordinator that cannot log the bracket
	// aborts rather than committing with amnesia; a partial-commit
	// failure below deliberately leaves the record open.
	if c.clog != nil {
		if err := c.clog.LogStagedBegin(d.Relation, tokens); err != nil {
			abort()
			return 0, fmt.Errorf("cluster: delta rejected: staged-token log append: %w", err)
		}
	}
	var epoch uint64
	committed := make([]string, 0, len(tokens))
	bumped := map[int]bool{}
	for _, url := range sortedKeys(tokens) {
		cl, err := c.client(url)
		if err == nil {
			var resp wire.OKResponse
			resp, err = cl.NodeTx(wire.TxRequest{Relation: d.Relation, Token: tokens[url], Commit: true})
			if resp.Epoch > epoch {
				epoch = resp.Epoch
			}
		}
		if err != nil {
			return 0, fmt.Errorf("cluster: commit on %s failed after %d of %d nodes committed (%v): %w",
				url, len(committed), len(tokens), committed, err)
		}
		committed = append(committed, url)
		var touched []int
		for shard, on := range stagedOn {
			if _, here := on[url]; here && !bumped[shard] {
				touched = append(touched, shard)
				bumped[shard] = true
			}
		}
		sort.Ints(touched)
		c.bumpShards(touched...)
	}
	if c.clog != nil {
		if err := c.clog.LogStagedEnd(d.Relation, true); err != nil {
			c.persistFailures.Add(1)
		}
	}
	return epoch, nil
}

// sortedInts returns a map's int keys in ascending order.
func sortedInts[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
