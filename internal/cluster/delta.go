package cluster

import (
	"fmt"
	"sort"
	"time"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/partition"
	"vcqr/internal/wire"
)

// ApplyDelta routes an owner update batch across the shard nodes with
// the same all-or-nothing contract the in-process partitioned server
// gives, held across processes by a two-phase protocol:
//
//  1. prepare — each affected node stages its shards' sub-batches:
//     apply on clones, stitch co-hosted mirrors, validate everything
//     locally checkable. Nothing publishes.
//  2. mirror fixes — for every seam whose sides stage on different
//     nodes, the coordinator pushes the owning side's staged edge
//     record to the neighbour, which validates the adjacent signature
//     against it and stages the fix.
//  3. seam checks — the coordinator re-proves every affected seam from
//     staged edge material (partition.CheckSeam): the digest compare
//     plus both hand-off signatures, exactly the validations the nodes
//     deferred.
//  4. commit — each node publishes its staged slices.
//
// Any failure before commit aborts every staged transaction and leaves
// all published epochs untouched. The commit fan-out itself is not
// atomic across nodes — the same per-shard non-atomicity the in-process
// publish has — and readers absorb it the same way, by re-pinning on an
// observed hand-off mismatch. A coordinator crash mid-protocol leaves
// only staged state, which the next prepare discards.
func (c *Coordinator) ApplyDelta(d delta.Delta) (uint64, error) {
	if d.Relation != c.spec.Relation {
		return 0, fmt.Errorf("%w: %q", engine.ErrUnknownRelation, d.Relation)
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	sp := obs.StartSpan("")
	defer func() {
		c.obs.Hist(obs.StageDeltaApply).Observe(sp.Elapsed())
		c.obs.Slow.Finish(sp, "delta", fmt.Sprintf("relation=%s ops=%d", d.Relation, len(d.Ops)))
	}()

	epoch, err := c.applyDelta(d)
	if err != nil {
		c.errors.Add(1)
		return 0, err
	}
	c.deltasApplied.Add(1)
	return epoch, nil
}

func (c *Coordinator) applyDelta(d delta.Delta) (uint64, error) {
	k := c.spec.K()

	// Route every op to its owning shard, then group shards by node,
	// preserving op order within each node's batch.
	nodeOps := map[string][]delta.Op{}
	for _, op := range d.Ops {
		var shard int
		switch {
		case op.Kind == delta.OpUpsert && op.Rec.Kind == core.KindDelimLeft:
			shard = 0
		case op.Kind == delta.OpUpsert && op.Rec.Kind == core.KindDelimRight:
			shard = k - 1
		default:
			var err error
			shard, err = c.spec.ShardFor(op.Key)
			if err != nil {
				return 0, fmt.Errorf("cluster: delta rejected: %w", err)
			}
		}
		url, err := c.routeFor(shard)
		if err != nil {
			return 0, err
		}
		nodeOps[url] = append(nodeOps[url], op)
	}
	if len(nodeOps) == 0 {
		return 0, fmt.Errorf("cluster: empty delta")
	}

	// Phase 1: prepare on every affected node.
	tPhase := time.Now()
	tokens := map[string]uint64{}
	staged := map[int]partition.Edges{} // staged seam material per shard
	stagedAt := map[int]string{}        // which node stages which shard
	abort := func() {
		for url, tok := range tokens {
			if cl, err := c.client(url); err == nil {
				cl.NodeTx(wire.TxRequest{Relation: d.Relation, Token: tok, Commit: false})
			}
		}
	}
	for _, url := range sortedKeys(nodeOps) {
		cl, err := c.client(url)
		if err != nil {
			abort()
			return 0, err
		}
		resp, err := cl.NodeDeltaPrepare(delta.Delta{Relation: d.Relation, Ops: nodeOps[url]})
		if err != nil {
			abort()
			return 0, fmt.Errorf("cluster: prepare on %s: %w", url, err)
		}
		tokens[url] = resp.Token
		for _, m := range resp.Modified {
			staged[m.Shard] = m.Edges
			stagedAt[m.Shard] = url
		}
	}

	c.obs.Hist(obs.StageDeltaPrepare).ObserveSince(tPhase)

	// Phase 2: cross-node mirror fixes. A staged shard's edge records
	// must be mirrored by its neighbours; neighbours staged on the same
	// node were stitched during prepare, the rest get a pushed fix.
	tPhase = time.Now()
	modified := make([]int, 0, len(staged))
	for i := range staged {
		modified = append(modified, i)
	}
	sort.Ints(modified)
	currentEdges := func(shard int) (partition.Edges, string, error) {
		if e, ok := staged[shard]; ok {
			return e, stagedAt[shard], nil
		}
		url, err := c.routeFor(shard)
		if err != nil {
			return partition.Edges{}, "", err
		}
		cl, err := c.client(url)
		if err != nil {
			return partition.Edges{}, "", err
		}
		resp, err := cl.ShardEdges(wire.ShardRef{Relation: d.Relation, Shard: shard})
		if err != nil {
			return partition.Edges{}, "", err
		}
		return resp.Edges, url, nil
	}
	pushMirror := func(neighbour int, left bool, want core.SignedRecord) error {
		edges, url, err := currentEdges(neighbour)
		if err != nil {
			return err
		}
		cur := edges.Head[0]
		if !left {
			cur = edges.Tail[2]
		}
		if partition.SameRecord(cur, want) {
			return nil // mirror already accurate (or co-hosted stitch fixed it)
		}
		cl, err := c.client(url)
		if err != nil {
			return err
		}
		resp, err := cl.NodeMirror(wire.MirrorRequest{
			Token: tokens[url], Relation: d.Relation, Shard: neighbour, Left: left, Rec: want,
		})
		if err != nil {
			return fmt.Errorf("mirror fix for shard %d on %s: %w", neighbour, url, err)
		}
		tokens[url] = resp.Token
		staged[neighbour] = resp.Edges
		stagedAt[neighbour] = url
		return nil
	}
	for _, i := range modified {
		e := staged[i]
		if i > 0 {
			// Left neighbour's right context must mirror shard i's first
			// owned record.
			if err := pushMirror(i-1, false, e.Head[1]); err != nil {
				abort()
				return 0, fmt.Errorf("cluster: delta rejected: %w", err)
			}
		}
		if i < k-1 {
			// Right neighbour's left context must mirror shard i's last
			// owned record.
			if err := pushMirror(i+1, true, e.Tail[1]); err != nil {
				abort()
				return 0, fmt.Errorf("cluster: delta rejected: %w", err)
			}
		}
	}

	c.obs.Hist(obs.StageDeltaMirror).ObserveSince(tPhase)

	// Phase 3: seam checks over staged edge material — the validations
	// the nodes deferred, plus the digest compare, for every seam
	// adjacent to anything staged.
	tPhase = time.Now()
	stagedNow := make([]int, 0, len(staged))
	for i := range staged {
		stagedNow = append(stagedNow, i)
	}
	sort.Ints(stagedNow)
	seams := map[int]bool{} // seam x joins shards x and x+1
	for _, i := range stagedNow {
		if i > 0 {
			seams[i-1] = true
		}
		if i < k-1 {
			seams[i] = true
		}
	}
	seamList := make([]int, 0, len(seams))
	for x := range seams {
		seamList = append(seamList, x)
	}
	sort.Ints(seamList)
	for _, x := range seamList {
		left, _, err := currentEdges(x)
		if err != nil {
			abort()
			return 0, err
		}
		right, _, err := currentEdges(x + 1)
		if err != nil {
			abort()
			return 0, err
		}
		if err := partition.CheckSeam(c.h, c.pub, c.params, left, right); err != nil {
			abort()
			return 0, fmt.Errorf("cluster: delta rejected: seam %d-%d: %w", x, x+1, err)
		}
	}

	c.obs.Hist(obs.StageDeltaSeam).ObserveSince(tPhase)

	// Phase 4: commit everywhere. Failures here are partial by nature;
	// report them with the nodes that did commit so the operator can
	// reconcile (the staged-versus-published divergence is visible in
	// /shard/digest).
	tPhase = time.Now()
	defer func() { c.obs.Hist(obs.StageDeltaCommit).ObserveSince(tPhase) }()
	var epoch uint64
	committed := make([]string, 0, len(tokens))
	for _, url := range sortedKeys(tokens) {
		cl, err := c.client(url)
		if err == nil {
			var resp wire.OKResponse
			resp, err = cl.NodeTx(wire.TxRequest{Relation: d.Relation, Token: tokens[url], Commit: true})
			if resp.Epoch > epoch {
				epoch = resp.Epoch
			}
		}
		if err != nil {
			return 0, fmt.Errorf("cluster: commit on %s failed after %d of %d nodes committed (%v): %w",
				url, len(committed), len(tokens), committed, err)
		}
		committed = append(committed, url)
		// The instant this node publishes, its shards' served bytes can
		// change; bump their content epochs so the edge cache's old keys
		// die with the old epoch — exact invalidation, keyed to the same
		// per-node non-atomicity readers already absorb by re-pinning.
		var touched []int
		for shard, at := range stagedAt {
			if at == url {
				touched = append(touched, shard)
			}
		}
		sort.Ints(touched)
		c.bumpShards(touched...)
	}
	return epoch, nil
}
