package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"vcqr/internal/wire"
)

// This file is the deterministic fault-injection seam the replication
// tier's tests are built on. An Injector is an http.RoundTripper that a
// test hands the coordinator (cluster.Config.HTTP); it can kill, hang,
// delay or corrupt traffic to a chosen node — either the whole round
// trip, or at a precise stage *inside* a shard sub-stream (before the
// hello, mid-chunk, before the foot) by parsing the node-frame protocol
// as it flows. Faults fire on exact frame boundaries, so every failover
// path is a table-driven test, not timing luck. Production code never
// constructs an Injector; it is exported because the cache tier's tests
// (and any out-of-package chaos harness) drive the same seam.

// FaultStage selects where inside a matched exchange a fault fires.
type FaultStage int

const (
	// StageRoundTrip faults the whole exchange before any bytes move —
	// indistinguishable from a connection refused / dead host.
	StageRoundTrip FaultStage = iota
	// StageBeforeHello fires before the sub-stream's hello frame is
	// delivered: the stream opened at the transport level but dies (or
	// stalls, or lies) before the coordinator learns the slice identity.
	StageBeforeHello
	// StageMidChunk fires after the first entries chunk has been
	// delivered — the merge has consumed real bytes when the fault hits.
	StageMidChunk
	// StageBeforeFoot fires when the foot frame arrives, before it is
	// delivered: the stream dies with every chunk shipped but the
	// signature material missing.
	StageBeforeFoot
)

// FaultMode selects what happens at the chosen stage.
type FaultMode int

const (
	// Kill severs the exchange: a transport error at StageRoundTrip, an
	// unexpected EOF mid-body otherwise — what a SIGKILL'd node looks
	// like from the coordinator.
	Kill FaultMode = iota
	// Hang blocks until the request context is cancelled or the
	// injector's Release is called — what a wedged (not dead) node looks
	// like; the slow-vs-dead distinction leases exist for.
	Hang
	// Delay sleeps Fault.Delay once at the stage, then proceeds.
	Delay
	// Corrupt flips bytes in the frame at the stage — on a hello, the
	// claimed slice digest and seam material are mutated, the Byzantine
	// replica the quarantine path must catch. Other frames get a payload
	// byte flipped.
	Corrupt
)

// Fault arms one fault. Zero values mean "match everything": an empty
// Node matches every node, an empty Path every endpoint.
type Fault struct {
	// Node matches targets whose URL starts with it (a node base URL).
	Node string
	// Path matches the request path exactly ("/shard/stream", ...).
	Path  string
	Stage FaultStage
	Mode  FaultMode
	// Delay is the sleep for Mode Delay.
	Delay time.Duration
	// Times bounds how often the fault fires; 0 = every match.
	Times int
}

// ErrInjectedKill is the transport error a StageRoundTrip Kill returns —
// recognizably synthetic in test failure output.
var ErrInjectedKill = errors.New("cluster: injected fault: connection killed")

// Injector is the fault-injecting transport. Arm faults with Set, drop
// them with Clear, unblock hung exchanges with Release. Safe for
// concurrent use; matching is first-armed-first-matched.
type Injector struct {
	inner http.RoundTripper

	mu      sync.Mutex
	faults  []*armedFault
	release chan struct{}
	// fired counts faults that actually triggered, for test asserts.
	fired int
}

type armedFault struct {
	f    Fault
	left int // remaining firings; -1 = unlimited
}

// NewInjector wraps a transport (nil = http.DefaultTransport).
func NewInjector(inner http.RoundTripper) *Injector {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Injector{inner: inner, release: make(chan struct{})}
}

// Set arms a fault.
func (in *Injector) Set(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	left := -1
	if f.Times > 0 {
		left = f.Times
	}
	in.faults = append(in.faults, &armedFault{f: f, left: left})
}

// Clear disarms every fault (hung exchanges stay hung until Release).
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = nil
}

// Release unblocks every current and future Hang until the next Set of
// a Hang fault re-arms blocking.
func (in *Injector) Release() {
	in.mu.Lock()
	defer in.mu.Unlock()
	select {
	case <-in.release:
	default:
		close(in.release)
	}
}

// Fired reports how many faults have triggered.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// claim finds and consumes the first armed fault matching the request.
func (in *Injector) claim(req *http.Request) (Fault, chan struct{}, bool) {
	target := req.URL.Scheme + "://" + req.URL.Host
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, af := range in.faults {
		if af.left == 0 {
			continue
		}
		if af.f.Node != "" && !strings.HasPrefix(target, af.f.Node) && !strings.HasPrefix(af.f.Node, target) {
			continue
		}
		if af.f.Path != "" && req.URL.Path != af.f.Path {
			continue
		}
		if af.left > 0 {
			af.left--
		}
		in.fired++
		return af.f, in.release, true
	}
	return Fault{}, nil, false
}

// RoundTrip applies at most one armed fault to the exchange.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	f, release, ok := in.claim(req)
	if !ok {
		return in.inner.RoundTrip(req)
	}
	if f.Stage == StageRoundTrip {
		switch f.Mode {
		case Kill:
			return nil, fmt.Errorf("%w: %s%s", ErrInjectedKill, req.URL.Host, req.URL.Path)
		case Hang:
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-release:
				return in.inner.RoundTrip(req)
			}
		case Delay:
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-time.After(f.Delay):
			}
			return in.inner.RoundTrip(req)
		case Corrupt:
			// Whole-exchange corruption only makes sense on framed
			// bodies; treat as a frame-stage corrupt of the first frame.
			f.Stage = StageBeforeHello
		}
	}
	resp, err := in.inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	resp.Body = &faultBody{
		inner:   resp.Body,
		ctx:     req.Context(),
		fault:   f,
		release: release,
	}
	return resp, nil
}

// faultBody wraps a node-frame response body, parsing frames as they
// flow so a fault fires on an exact protocol boundary.
type faultBody struct {
	inner   io.ReadCloser
	ctx     context.Context
	fault   Fault
	release chan struct{}

	buf    bytes.Buffer // bytes cleared for delivery
	frames int          // frames delivered so far
	chunks int          // entry chunks delivered so far
	done   bool         // fault already fired (Delay/Corrupt pass-through)
	err    error        // sticky
}

func (fb *faultBody) Read(p []byte) (int, error) {
	for fb.buf.Len() == 0 {
		if fb.err != nil {
			return 0, fb.err
		}
		if err := fb.pump(); err != nil {
			fb.err = err
			if fb.buf.Len() == 0 {
				return 0, err
			}
			break
		}
	}
	return fb.buf.Read(p)
}

// pump moves one frame from the wire into buf, firing the armed fault
// when the frame crosses the configured stage.
func (fb *faultBody) pump() error {
	var hdr [4]byte
	if _, err := io.ReadFull(fb.inner, hdr[:]); err != nil {
		return err
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	body := make([]byte, n)
	if _, err := io.ReadFull(fb.inner, body); err != nil {
		return err
	}
	frame := append(hdr[:], body...)

	// Classify: the frame protocols here are NodeFrame sub-streams; a
	// frame that does not decode as one (transfer frames, lease acks) is
	// classified positionally only.
	nf, _ := wire.ReadNodeFrame(bytes.NewReader(frame))
	at := false
	if !fb.done {
		switch fb.fault.Stage {
		case StageBeforeHello:
			at = fb.frames == 0
		case StageMidChunk:
			at = fb.chunks == 1 // first chunk delivered, fault the next frame
		case StageBeforeFoot:
			at = nf != nil && nf.Foot != nil
		}
	}
	if at {
		fb.done = true
		switch fb.fault.Mode {
		case Kill:
			fb.inner.Close()
			return io.ErrUnexpectedEOF
		case Hang:
			select {
			case <-fb.ctx.Done():
				return fb.ctx.Err()
			case <-fb.release:
			}
		case Delay:
			select {
			case <-fb.ctx.Done():
				return fb.ctx.Err()
			case <-time.After(fb.fault.Delay):
			}
		case Corrupt:
			frame = corruptFrame(frame, nf)
		}
	}
	fb.frames++
	if nf != nil && nf.Chunk != nil {
		fb.chunks++
	}
	fb.buf.Write(frame)
	return nil
}

// corruptFrame mutates one frame. A hello gets its claimed slice digest
// and seam material flipped — a replica lying about what it hosts, which
// the quarantine path must attribute; any other frame gets a payload
// byte flipped, garbage the decoder or verifier rejects.
func corruptFrame(frame []byte, nf *wire.NodeFrame) []byte {
	if nf != nil && nf.Hello != nil {
		h := *nf.Hello
		if len(h.Digest) > 0 {
			h.Digest = h.Digest.Clone()
			h.Digest[0] ^= 0x01
		}
		// Flip the head and tail hand-off records so the corruption breaks
		// the seam with whichever neighbour the cover pairs this shard with.
		if len(h.Edges.Head[0].G) > 0 {
			h.Edges.Head[0].G = h.Edges.Head[0].G.Clone()
			h.Edges.Head[0].G[0] ^= 0x01
		}
		if len(h.Edges.Tail[1].G) > 0 {
			h.Edges.Tail[1].G = h.Edges.Tail[1].G.Clone()
			h.Edges.Tail[1].G[0] ^= 0x01
		}
		var buf bytes.Buffer
		if wire.WriteNodeFrame(&buf, &wire.NodeFrame{Hello: &h}) == nil {
			return buf.Bytes()
		}
	}
	out := append([]byte(nil), frame...)
	if len(out) > 4 {
		out[len(out)-1] ^= 0x01
	}
	return out
}

func (fb *faultBody) Close() error { return fb.inner.Close() }
