package cluster_test

import (
	"bytes"
	"encoding/gob"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/cluster"
	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/server"
	"vcqr/internal/sig"
	"vcqr/internal/verify"
	"vcqr/internal/wire"
	"vcqr/internal/workload"
)

var (
	ownerKey *sig.PrivateKey
	keyOnce  sync.Once
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

// fix is a running cluster: nNodes shard-node servers plus a
// coordinator, with the owner-side master copy for minting deltas and
// the client-side verifier.
type fix struct {
	t     *testing.T
	h     *hashx.Hasher
	owner *core.SignedRelation // owner's evolving master (global chain)
	set   *partition.Set
	spec  partition.Spec
	role  accessctl.Role

	nodes []*server.Server
	urls  []string
	srvs  []*httptest.Server // for SIGKILL-equivalent death (CloseClientConnections)
	coord *cluster.Coordinator
	v     *verify.Verifier
}

func newCluster(t *testing.T, n, k, nNodes int, hc *http.Client) *fix {
	return newClusterCfg(t, n, k, nNodes, hc, nil)
}

// newClusterCfg is newCluster with a hook to adjust the coordinator
// config before construction (cache tier, observability, ...).
func newClusterCfg(t *testing.T, n, k, nNodes int, hc *http.Client, mod func(*cluster.Config)) *fix {
	t.Helper()
	h := hashx.New()
	rel, err := workload.Uniform(workload.UniformConfig{
		N: n, L: 0, U: 1 << 20, PayloadSize: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	set, err := partition.Split(sr, k)
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	f := &fix{
		t: t, h: h, owner: sr.Clone(), set: set, spec: set.Spec, role: role,
		v: verify.New(h, signKey(t).Public(), sr.Params, sr.Schema),
	}
	for i := 0; i < nNodes; i++ {
		s := server.New(server.Config{
			Hasher: h,
			Pub:    signKey(t).Public(),
			Policy: accessctl.NewPolicy(role),
		})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		f.nodes = append(f.nodes, s)
		f.urls = append(f.urls, ts.URL)
		f.srvs = append(f.srvs, ts)
	}
	cfg := cluster.Config{
		Hasher: h,
		Pub:    signKey(t).Public(),
		Params: sr.Params,
		Schema: sr.Schema,
		Policy: accessctl.NewPolicy(role),
		Spec:   set.Spec,
		Nodes:  f.urls,
		HTTP:   hc,
	}
	if mod != nil {
		mod(&cfg)
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Place(set); err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	return f
}

// mintDelta routes an owner-side attribute update through delta.Diff —
// the exact batch the coordinator's ingest endpoint receives.
func (f *fix) mintDelta(idx int, payload []byte) delta.Delta {
	f.t.Helper()
	before := f.owner.Clone()
	rec := f.owner.Recs[idx]
	if _, err := f.owner.UpdateAttrs(f.h, signKey(f.t), rec.Key(), rec.Tuple.RowID,
		[]relation.Value{relation.BytesVal(payload)}); err != nil {
		f.t.Fatal(err)
	}
	return delta.Diff(before, f.owner)
}

// streamBody POSTs a wire.StreamRequest and returns the raw frame bytes.
func streamBody(t *testing.T, url string, req wire.StreamRequest) []byte {
	t.Helper()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/stream", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream returned %s", resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// verifyStream drives a coordinator stream through the UNMODIFIED
// shard-aware verifier and returns the verified row count.
func (f *fix) verifyStream(url string, q engine.Query, chunkRows int) (int, error) {
	sv, err := f.v.NewShardStreamVerifier(f.spec, q, f.role)
	if err != nil {
		return 0, err
	}
	client := &wire.Client{BaseURL: url}
	rows := 0
	_, err = client.QueryStreamWith(sv, f.role.Name, q, chunkRows, func(engine.Row) error {
		rows++
		return nil
	})
	return rows, err
}

// TestClusterStreamByteIdentical is the acceptance pin: a query spanning
// 3 shards hosted on 2 separate node processes must return a stream (a)
// accepted by the unmodified verify.ShardStreamVerifier and (b)
// byte-identical — raw HTTP frame bytes — to the single-process
// partitioned server's /stream output on the same data.
func TestClusterStreamByteIdentical(t *testing.T) {
	f := newCluster(t, 96, 3, 2, nil)
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()

	// The same publication served by one process.
	single := server.New(server.Config{
		Hasher: f.h, Pub: signKey(t).Public(), Policy: accessctl.NewPolicy(f.role),
	})
	defer single.Close()
	if err := single.AddPartition(f.set, true); err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	q := engine.Query{Relation: "Uniform"} // full range: all 3 shards
	req := wire.StreamRequest{Role: "all", Query: q, ChunkRows: 8}
	got := streamBody(t, coordTS.URL, req)
	want := streamBody(t, singleTS.URL, req)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster stream (%d bytes) differs from single-process stream (%d bytes)", len(got), len(want))
	}

	rows, err := f.verifyStream(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("cluster stream rejected by unmodified verifier: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows, want 96", rows)
	}

	// Sub-ranges and single-shard covers too.
	sub := engine.Query{Relation: "Uniform", KeyLo: f.owner.Recs[10].Key(), KeyHi: f.owner.Recs[90].Key()}
	req.Query = sub
	if !bytes.Equal(streamBody(t, coordTS.URL, req), streamBody(t, singleTS.URL, req)) {
		t.Fatal("sub-range cluster stream differs from single-process stream")
	}

	st := f.coord.Stats()
	if st.Fanouts == 0 || st.Streams < 3 {
		t.Fatalf("coordinator counters off: %+v", st)
	}
	// Per-node inventories visible in node /statsz.
	if hosted := f.nodes[0].Stats().Hosted["Uniform"]; len(hosted) != 2 {
		t.Fatalf("node 0 hosts %d shards, want 2 (round-robin of 3 over 2)", len(hosted))
	}
}

// TestClusterMaterializedQuery: the coordinator's /query path collects
// the merged stream and verifies with the whole-result verifier.
func TestClusterMaterializedQuery(t *testing.T) {
	f := newCluster(t, 60, 3, 2, nil)
	q := engine.Query{Relation: "Uniform"}
	res, err := f.coord.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.v.VerifyResult(q, f.role, res)
	if err != nil {
		t.Fatalf("cluster result rejected: %v", err)
	}
	if len(rows) != 60 {
		t.Fatalf("verified %d rows, want 60", len(rows))
	}
	if _, err := f.coord.Query("all", engine.Query{Relation: "Uniform", Distinct: true}); err == nil {
		t.Fatal("DISTINCT accepted by the coordinator")
	}
}

// globalIndexOf maps a record identity to its index in the owner master.
func (f *fix) globalIndexOf(key, rowID uint64) int {
	for i, rec := range f.owner.Recs {
		if rec.Key() == key && rec.Tuple.RowID == rowID {
			return i
		}
	}
	f.t.Fatalf("record (%d,%d) not in master", key, rowID)
	return -1
}

// TestClusterDelta drives both delta shapes through the two-phase
// protocol: an interior update (single node) and a seam-crossing update
// whose re-sign neighbourhood spans two shards hosted on different
// nodes, forcing a cross-node mirror fix.
func TestClusterDelta(t *testing.T) {
	f := newCluster(t, 96, 3, 2, nil)
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	// Interior to shard 1 (hosted alone on node 1).
	sl1 := f.set.Slices[1]
	mid := sl1.Recs[len(sl1.Recs)/2]
	d := f.mintDelta(f.globalIndexOf(mid.Key(), mid.Tuple.RowID), []byte("interior-v2"))
	if _, err := f.coord.ApplyDelta(d); err != nil {
		t.Fatalf("interior delta rejected: %v", err)
	}

	// Seam-crossing: update shard 0's last owned record; the owner
	// re-signs its neighbours, including shard 1's first owned record —
	// ops land on both nodes and shard 1's mirror of shard 0's edge
	// must be fixed across processes.
	sl0 := f.set.Slices[0]
	edge := sl0.Recs[len(sl0.Recs)-2]
	d = f.mintDelta(f.globalIndexOf(edge.Key(), edge.Tuple.RowID), []byte("seam-v2"))
	if len(d.Ops) < 2 {
		t.Fatalf("edge update minted only %d ops", len(d.Ops))
	}
	if _, err := f.coord.ApplyDelta(d); err != nil {
		t.Fatalf("seam-crossing delta rejected: %v", err)
	}

	// The post-delta publication must verify end to end and carry both
	// new payloads.
	rows, err := f.verifyStream(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("post-delta stream rejected: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows, want 96", rows)
	}
	res, err := f.coord.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, row := range res.Rows() {
		for _, attr := range row.Values {
			if string(attr.Val.Bytes) == "interior-v2" || string(attr.Val.Bytes) == "seam-v2" {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d updated payloads, want 2", found)
	}
}

// TestClusterRebalanceUnderLoad is the online-migration acceptance: a
// shard migrates between nodes while queries stream and owner deltas
// land, with zero rejected in-flight queries, and the routing swing is
// reflected in node inventories and coordinator stats.
func TestClusterRebalanceUnderLoad(t *testing.T) {
	f := newCluster(t, 96, 3, 2, nil)
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()
	q := engine.Query{Relation: "Uniform"}

	// Background query load: every stream must verify; count failures.
	var stop atomic.Bool
	var queryErrs atomic.Uint64
	var queriesRun atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := f.verifyStream(coordTS.URL, q, 16); err != nil {
					t.Errorf("query during migration rejected: %v", err)
					queryErrs.Add(1)
					return
				}
				queriesRun.Add(1)
			}
		}()
	}

	// Live delta ingest interleaved with the migration (interior to the
	// migrating shard, so every copy round has fresh bytes to chase).
	sl1 := f.set.Slices[1]
	deltaIdx := f.globalIndexOf(sl1.Recs[2].Key(), sl1.Recs[2].Tuple.RowID)
	if _, err := f.coord.ApplyDelta(f.mintDelta(deltaIdx, []byte("pre-migration"))); err != nil {
		t.Fatal(err)
	}

	// Shard 1 lives on node 1 (round-robin); migrate it to node 0.
	rep, err := f.coord.Rebalance(1, f.urls[0])
	if err != nil {
		t.Fatalf("rebalance failed: %v", err)
	}
	if rep.From != f.urls[1] || rep.To != f.urls[0] {
		t.Fatalf("unexpected migration endpoints: %+v", rep)
	}
	if rep.DrainErr != "" {
		t.Fatalf("drain failed: %s", rep.DrainErr)
	}

	// Deltas after the swing must land on the target.
	if _, err := f.coord.ApplyDelta(f.mintDelta(deltaIdx, []byte("post-migration"))); err != nil {
		t.Fatalf("post-migration delta rejected: %v", err)
	}

	stop.Store(true)
	wg.Wait()
	if queryErrs.Load() != 0 {
		t.Fatalf("%d queries rejected during migration", queryErrs.Load())
	}
	if queriesRun.Load() == 0 {
		t.Fatal("no queries completed during migration")
	}

	// Placement: node 0 hosts shards 0, 1, 2; node 1 hosts nothing.
	if hosted := f.nodes[0].Stats().Hosted["Uniform"]; len(hosted) != 3 {
		t.Fatalf("node 0 hosts %d shards after migration, want 3", len(hosted))
	}
	if hosted := f.nodes[1].Stats().Hosted["Uniform"]; len(hosted) != 0 {
		t.Fatalf("node 1 still hosts %d shards after drain", len(hosted))
	}
	st := f.coord.Stats()
	if st.Migrations != 1 || st.Routing[1] != f.urls[0] {
		t.Fatalf("coordinator stats after migration: %+v", st)
	}

	// And the moved publication still verifies, with the latest payload.
	rows, err := f.verifyStream(coordTS.URL, q, 8)
	if err != nil {
		t.Fatalf("post-migration stream rejected: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows, want 96", rows)
	}
}

// hookTransport fires a callback once, after the first response whose
// request path matches — but only once armed, so fixture setup traffic
// passes through untouched.
type hookTransport struct {
	path  string
	armed atomic.Bool
	once  sync.Once
	hook  func()
	inner http.RoundTripper
}

func (h *hookTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := h.inner.RoundTrip(req)
	if err == nil && req.URL.Path == h.path && h.armed.Load() {
		h.once.Do(h.hook)
	}
	return resp, err
}

// TestDeltaMidMigrationLandsOneSide: a delta that arrives at the source
// after the first copy round must land on exactly one side — the source
// — and force the migration to re-copy before the swing. The final
// publication carries the delta exactly once and verifies.
func TestDeltaMidMigrationLandsOneSide(t *testing.T) {
	ht := &hookTransport{path: "/shard/install", inner: http.DefaultTransport}
	f := newCluster(t, 96, 3, 2, &http.Client{Transport: ht})
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()

	sl1 := f.set.Slices[1]
	deltaIdx := f.globalIndexOf(sl1.Recs[2].Key(), sl1.Recs[2].Tuple.RowID)
	ht.hook = func() {
		// Fires during Rebalance's first (unlocked) copy round — the
		// control lock is free, so this lands immediately, on the source.
		if _, err := f.coord.ApplyDelta(f.mintDelta(deltaIdx, []byte("mid-migration"))); err != nil {
			t.Errorf("mid-migration delta rejected: %v", err)
		}
	}
	ht.armed.Store(true)

	rep, err := f.coord.Rebalance(1, f.urls[0])
	if err != nil {
		t.Fatalf("rebalance failed: %v", err)
	}
	if rep.CopyRounds < 2 {
		t.Fatalf("migration did not re-copy after the mid-flight delta (rounds=%d)", rep.CopyRounds)
	}

	q := engine.Query{Relation: "Uniform"}
	res, err := f.coord.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.v.VerifyResult(q, f.role, res); err != nil {
		t.Fatalf("post-migration result rejected: %v", err)
	}
	found := 0
	for _, row := range res.Rows() {
		for _, attr := range row.Values {
			if string(attr.Val.Bytes) == "mid-migration" {
				found++
			}
		}
	}
	if found != 1 {
		t.Fatalf("mid-migration payload present %d times, want exactly 1", found)
	}
}

// TestCoordinatorCrashRecovery: a migration interrupted between the
// target install and the routing swing leaves the shard double-hosted;
// a delta then lands on the source, so the copies diverge. A fresh
// coordinator's Recover must catch the divergence by digest compare,
// keep the written-to source copy, and drop the stale transfer.
func TestCoordinatorCrashRecovery(t *testing.T) {
	f := newCluster(t, 96, 3, 2, nil)
	ref := wire.ShardRef{Relation: "Uniform", Shard: 1}
	srcURL, dstURL := f.urls[1], f.urls[0]
	sl1 := f.set.Slices[1]

	// History before the migration: the source has already absorbed
	// writes since its own install, so any recovery rule based on
	// absolute per-copy delta counts would be comparing different
	// baselines — the written-since-install digest signal must not be.
	pre := f.mintDelta(f.globalIndexOf(sl1.Recs[1].Key(), sl1.Recs[1].Tuple.RowID), []byte("pre-copy"))
	if _, err := f.coord.ApplyDelta(pre); err != nil {
		t.Fatal(err)
	}

	// The interrupted migration: copy shard 1 to the target by hand
	// (exactly what Rebalance's copy phase does), then "crash" before
	// any routing swing.
	src := &wire.Client{BaseURL: srcURL}
	dst := &wire.Client{BaseURL: dstURL}
	body, err := src.ShardFetch(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ShardInstall(body); err != nil {
		body.Close()
		t.Fatalf("install on target: %v", err)
	}
	body.Close()

	// The owner keeps writing; the old coordinator (still routing to the
	// source) applies it there. The copies now diverge.
	d := f.mintDelta(f.globalIndexOf(sl1.Recs[2].Key(), sl1.Recs[2].Tuple.RowID), []byte("diverge"))
	if _, err := f.coord.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}

	// A fresh coordinator recovers from node inventories alone.
	coord2, err := cluster.New(cluster.Config{
		Hasher: f.h,
		Pub:    signKey(t).Public(),
		Params: f.owner.Params,
		Schema: f.owner.Schema,
		Policy: accessctl.NewPolicy(f.role),
		Spec:   f.spec,
		Nodes:  f.urls,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord2.Recover()
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(rep.Diverged) != 1 || rep.Diverged[0] != 1 {
		t.Fatalf("divergence not detected: %+v", rep)
	}
	if rep.Assigned[1] != srcURL {
		t.Fatalf("recovery chose %s for shard 1, want the written-to source %s", rep.Assigned[1], srcURL)
	}
	// The stale transfer is gone from the target.
	if hosted := f.nodes[0].Stats().Hosted["Uniform"]; len(hosted) != 2 {
		t.Fatalf("target still hosts %d shards, want its original 2", len(hosted))
	}

	// And the recovered cluster serves the delta'd, verifying state.
	q := engine.Query{Relation: "Uniform"}
	res, err := coord2.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.v.VerifyResult(q, f.role, res); err != nil {
		t.Fatalf("post-recovery result rejected: %v", err)
	}
}

// TestTamperedTransferRejected: a node must refuse to install a shard
// whose transfer was tampered with — here a flipped signature byte with
// a freshly recomputed slice digest (the digest names truncation and
// corruption; the signature validation names forgery).
func TestTamperedTransferRejected(t *testing.T) {
	f := newCluster(t, 60, 3, 2, nil)

	tampered := f.set.Slices[1].Clone()
	tampered.Recs[2].Sig[0] ^= 0x01
	var buf bytes.Buffer
	man := wire.ShardManifest{Spec: f.spec, Shard: 1}
	if err := wire.WriteShardTransfer(&buf, f.h, man, tampered); err != nil {
		t.Fatal(err)
	}
	_, err := (&wire.Client{BaseURL: f.urls[0]}).ShardInstall(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("tampered transfer installed")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("signature")) {
		t.Fatalf("tampered transfer rejected without naming the signature failure: %v", err)
	}
}
