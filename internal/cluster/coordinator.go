package cluster

import (
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/cache"
	"vcqr/internal/core"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/obs"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/sig"
	"vcqr/internal/store"
	"vcqr/internal/wire"
)

// Cluster errors. Each is an operator-facing condition; see
// docs/OPERATIONS.md for remediations.
var (
	// ErrDistinct refuses DISTINCT queries at the coordinator: duplicate
	// elision is a cross-shard sequential pass, which a distributed
	// fan-out cannot provide. Route DISTINCT queries at a single-process
	// publisher of the same publication.
	ErrDistinct = errors.New("cluster: DISTINCT queries are not served across shard nodes")
	// ErrUnknownNode names a node URL outside the coordinator's
	// configured set.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrNoRoute reports a shard with no assigned node — the routing
	// table is incomplete (failed placement or recovery).
	ErrNoRoute = errors.New("cluster: shard has no assigned node")
	// ErrRoutingStale reports a routing-epoch mismatch that retrying did
	// not clear: a node keeps refusing a shard the current routing table
	// assigns to it. The table and the node disagree about placement —
	// usually an out-of-band removal or a half-finished migration.
	ErrRoutingStale = errors.New("cluster: routing epoch stale: node refuses an assigned shard")
	// ErrClusterPin reports a cross-node epoch set whose hand-offs would
	// not settle while pinning — sustained boundary churn; retry the
	// query.
	ErrClusterPin = errors.New("cluster: shard hand-offs unstable while pinning cross-node epoch set")
	// ErrSpecMismatch reports nodes hosting slices of different
	// partition layouts (spec versions) for one relation.
	ErrSpecMismatch = errors.New("cluster: nodes disagree on the partition spec")
)

// Config parameterizes a Coordinator. Everything here arrives over the
// owner's authenticated channel (wire.ClientParams) except the node set,
// which is deployment configuration.
type Config struct {
	Hasher *hashx.Hasher
	Pub    *sig.PublicKey
	Params core.Params
	Schema relation.Schema
	Policy accessctl.Policy
	// Spec is the authenticated partition layout the coordinator owns.
	Spec partition.Spec
	// Nodes are the shard-node base URLs.
	Nodes []string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Individual switches to one-signature-per-entry VOs; must match the
	// nodes' serving mode.
	Individual bool
	// ChunkRows bounds entries per chunk on node sub-streams when the
	// client request does not choose; 0 = engine.DefaultChunkRows.
	ChunkRows int
	// Cache is the optional edge-cache tier client (internal/cache):
	// sub-streams and whole merged streams are served from and filled
	// into it. Nil disables the tier entirely.
	Cache *cache.Client
	// Obs receives the coordinator's stage histograms and slow-query log;
	// nil builds a fresh enabled registry (obs.Disabled() opts out).
	Obs *obs.Registry
	// SlowThreshold overrides the slow-query retention threshold when
	// non-zero (negative disables retention).
	SlowThreshold time.Duration
	// Replicas is the replication factor R: Place installs every shard's
	// slice on R distinct nodes and queries pick the least-loaded live
	// replica. 0 or 1 keeps single-copy placement (the pre-replication
	// behavior); values beyond len(Nodes) are clamped.
	Replicas int
	// LeaseTTL is how long one acknowledged heartbeat keeps a node live
	// for routing; 0 = DefaultLeaseTTL. Expiry demotes a node — it is
	// skipped while live siblings exist — but never deletes it.
	LeaseTTL time.Duration
	// Clock overrides lease time (deterministic expiry tests); nil =
	// time.Now.
	Clock func() time.Time
	// Advertise identifies this coordinator in lease grants (its URL in
	// deployments, any tag in tests). Nodes let a different coordinator
	// name take over a lease regardless of sequence numbers.
	Advertise string
	// Log is the coordinator's durable log (internal/store): every
	// routing-table swing is recorded at its epoch, and two-phase delta
	// commits bracket their commit fan-out with staged-token records —
	// what lets Recover resolve ambiguous crash windows by reading its
	// own log instead of guessing. Nil keeps the coordinator
	// memory-only (the pre-durability behaviour).
	Log *store.CoordLog
}

// DefaultLeaseTTL is the lease duration when Config.LeaseTTL is zero.
const DefaultLeaseTTL = 15 * time.Second

// Coordinator owns the routing table of one partitioned publication and
// serves the user-facing API over remote shard nodes. All exported
// methods may be called concurrently.
type Coordinator struct {
	h         *hashx.Hasher
	pub       *sig.PublicKey
	params    core.Params
	schema    relation.Schema
	policy    accessctl.Policy
	spec      partition.Spec
	aggregate bool
	chunkRows int

	nodes   []string
	clients map[string]*wire.Client

	// mu guards the routing table; repoch counts its versions. Queries
	// read the table lock-free of ctl; migrations swing it atomically.
	// route[shard] is the shard's replica set; index 0 is the primary
	// (the compatibility face of Routing() and the write path's seam
	// canon), the rest are siblings queries fail over to.
	mu     sync.RWMutex
	route  [][]string
	repoch atomic.Uint64

	// Replication: per-node lease/health state (see replica.go), the
	// replication factor, and the heartbeat identity.
	replicas  int
	leaseTTL  time.Duration
	clock     func() time.Time
	advertise string
	health    map[string]*nodeHealth
	hbSeq     atomic.Uint64

	// ctl serializes control-plane writes: distributed deltas and
	// migration cutovers. Queries never take it.
	ctl sync.Mutex

	// cache is the optional edge-cache tier; cepochs holds one content
	// epoch per shard, bumped on every commit/cutover that can change the
	// shard's served bytes. Cache keys bind these epochs, which is what
	// makes invalidation exact: a bumped shard's old entries become
	// unreachable by key even before the pushed group invalidation lands.
	cache   *cache.Client
	cepochs []atomic.Uint64

	// clog is the durable coordinator log (nil = memory-only);
	// persistFailures counts best-effort appends that failed.
	clog            *store.CoordLog
	persistFailures atomic.Uint64

	queries, streams, fanouts, errors atomic.Uint64
	handoffRetries, routingRetries    atomic.Uint64
	deltasApplied, migrations         atomic.Uint64
	failovers, demotions, promotions  atomic.Uint64
	quarantines, leaseRenewals        atomic.Uint64

	// obs holds the coordinator's stage histograms and slow log; the hot
	// pin/merge paths cache their histogram pointers.
	obs  *obs.Registry
	hPin *obs.Histogram // pin_feeds
}

// New builds a coordinator. The routing table starts empty; fill it with
// Place (fresh deployment) or Recover (adopt what nodes already host).
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	if cfg.Hasher == nil {
		cfg.Hasher = hashx.New()
	}
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(cfg.Nodes) {
		replicas = len(cfg.Nodes)
	}
	leaseTTL := cfg.LeaseTTL
	if leaseTTL <= 0 {
		leaseTTL = DefaultLeaseTTL
	}
	c := &Coordinator{
		h:         cfg.Hasher,
		pub:       cfg.Pub,
		params:    cfg.Params,
		schema:    cfg.Schema,
		policy:    cfg.Policy,
		spec:      cfg.Spec,
		aggregate: !cfg.Individual,
		chunkRows: cfg.ChunkRows,
		nodes:     append([]string(nil), cfg.Nodes...),
		clients:   make(map[string]*wire.Client, len(cfg.Nodes)),
		route:     make([][]string, cfg.Spec.K()),
		replicas:  replicas,
		leaseTTL:  leaseTTL,
		clock:     cfg.Clock,
		advertise: cfg.Advertise,
		health:    make(map[string]*nodeHealth, len(cfg.Nodes)),
		cache:     cfg.Cache,
		clog:      cfg.Log,
		cepochs:   make([]atomic.Uint64, cfg.Spec.K()),
	}
	if c.advertise == "" {
		c.advertise = "coordinator"
	}
	for _, url := range c.nodes {
		c.clients[url] = &wire.Client{BaseURL: url, HTTP: cfg.HTTP}
		c.health[url] = &nodeHealth{}
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.SlowThreshold != 0 {
		reg.Slow.SetThreshold(cfg.SlowThreshold)
	}
	c.obs = reg
	c.hPin = reg.Hist(obs.StagePinFeeds)
	registerCoordinator(c)
	return c, nil
}

// Obs returns the coordinator's observability registry.
func (c *Coordinator) Obs() *obs.Registry { return c.obs }

// Close unregisters the coordinator from the process expvar aggregate.
func (c *Coordinator) Close() { unregisterCoordinator(c) }

// Spec returns the authenticated partition layout.
func (c *Coordinator) Spec() partition.Spec { return c.spec }

// RoutingEpoch returns the routing table's version counter.
func (c *Coordinator) RoutingEpoch() uint64 { return c.repoch.Load() }

// Routing snapshots the routing table as one node URL per shard — the
// primary of each replica set, which is what single-copy deployments
// always had. ReplicaSets exposes the full sets.
func (c *Coordinator) Routing() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.route))
	for i, set := range c.route {
		if len(set) > 0 {
			out[i] = set[0]
		}
	}
	return out
}

// ReplicaSets snapshots every shard's replica set; index 0 of each set
// is the primary.
func (c *Coordinator) ReplicaSets() [][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([][]string, len(c.route))
	for i, set := range c.route {
		out[i] = append([]string(nil), set...)
	}
	return out
}

// client resolves a node URL to its wire client.
func (c *Coordinator) client(url string) (*wire.Client, error) {
	cl := c.clients[url]
	if cl == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, url)
	}
	return cl, nil
}

// routeFor resolves a shard to its primary node — the control-plane
// anchor (migration source, seam canon). The read path goes through
// pickReplica instead.
func (c *Coordinator) routeFor(shard int) (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if shard < 0 || shard >= len(c.route) {
		return "", fmt.Errorf("%w: shard %d of %d", ErrNoRoute, shard, len(c.route))
	}
	if len(c.route[shard]) == 0 || c.route[shard][0] == "" {
		return "", fmt.Errorf("%w: shard %d", ErrNoRoute, shard)
	}
	return c.route[shard][0], nil
}

// contentEpochs snapshots the per-shard content epoch vector. Reads are
// per-entry atomic, not jointly: a vector observed mid-bump simply
// yields a cache key nobody fills twice — never a stale hit.
func (c *Coordinator) contentEpochs() []uint64 {
	out := make([]uint64, len(c.cepochs))
	for i := range c.cepochs {
		out[i] = c.cepochs[i].Load()
	}
	return out
}

// bumpShards advances the named shards' content epochs and pushes the
// epoch-exact invalidations to the cache tier: each shard's group keeps
// only entries at the fresh epoch, and every whole-stream entry of the
// relation dies with them (a merged stream depends on all covering
// shards, so any bump kills its key). The bump is the correctness
// mechanism — old keys become unaskable the moment the epoch moves; the
// pushed invalidation only reclaims the bytes.
func (c *Coordinator) bumpShards(shards ...int) {
	if len(shards) == 0 {
		return
	}
	keeps := make([]uint64, len(shards))
	for i, s := range shards {
		keeps[i] = c.cepochs[s].Add(1)
	}
	if c.cache == nil {
		return
	}
	for i, s := range shards {
		c.cache.Invalidate(c.spec.Relation, s, keeps[i])
	}
	c.cache.Invalidate(c.spec.Relation, cache.StreamShard, 0)
}

// bumpAllShards is bumpShards over the whole key space — placement and
// recovery rewrite the routing table wholesale, so every shard's cached
// bytes are suspect.
func (c *Coordinator) bumpAllShards() {
	all := make([]int, c.spec.K())
	for i := range all {
		all[i] = i
	}
	c.bumpShards(all...)
}

// cacheSubKey names one covering shard's sub-stream bytes: everything
// that shapes them (spec version, shard, content epoch, role, raw query,
// sub-range, first/last anchors, chunking) is in the key.
func (c *Coordinator) cacheSubKey(roleName string, q engine.Query, sr partition.SubRange, first, last bool, chunkRows int) cache.Key {
	if chunkRows == 0 {
		chunkRows = c.chunkRows
	}
	return cache.Key{
		Relation:    c.spec.Relation,
		SpecVersion: c.spec.Version,
		Shard:       sr.Shard,
		Epoch:       c.cepochs[sr.Shard].Load(),
		Role:        roleName,
		Query:       q,
		Lo:          sr.Lo,
		Hi:          sr.Hi,
		First:       first,
		Last:        last,
		ChunkRows:   chunkRows,
	}
}

// cacheStreamKey names a whole merged stream: the full content-epoch
// vector stands in for a single shard epoch, so a bump of any shard
// retires the key.
func (c *Coordinator) cacheStreamKey(roleName string, q engine.Query, chunkRows int) cache.Key {
	if chunkRows == 0 {
		chunkRows = c.chunkRows
	}
	return cache.Key{
		Relation:    c.spec.Relation,
		SpecVersion: c.spec.Version,
		Shard:       cache.StreamShard,
		Epochs:      c.contentEpochs(),
		Role:        roleName,
		Query:       q,
		ChunkRows:   chunkRows,
	}
}

// Place distributes a validated partition set across the nodes
// round-robin and installs every slice on R distinct nodes (replica r of
// shard i lands on node (i+r) mod N) — the fresh-deployment path. The
// set must match the coordinator's spec. With Replicas 1 the layout is
// exactly the pre-replication placement.
func (c *Coordinator) Place(set *partition.Set) error {
	if !set.Spec.Same(c.spec) {
		return fmt.Errorf("%w: placing v%d over coordinator v%d", ErrSpecMismatch, set.Spec.Version, c.spec.Version)
	}
	if len(set.Slices) != c.spec.K() {
		return fmt.Errorf("%w: %d slices for %d shards", partition.ErrSetInvalid, len(set.Slices), c.spec.K())
	}
	assign := make([][]string, c.spec.K())
	for i, sl := range set.Slices {
		for r := 0; r < c.replicas; r++ {
			url := c.nodes[(i+r)%len(c.nodes)]
			if err := c.installSlice(url, i, sl); err != nil {
				return fmt.Errorf("cluster: installing shard %d replica %d on %s: %w", i, r, url, err)
			}
			assign[i] = append(assign[i], url)
		}
	}
	c.mu.Lock()
	c.route = assign
	c.mu.Unlock()
	c.repoch.Add(1)
	c.persistRouting()
	c.bumpAllShards()
	return nil
}

// persistRouting logs the current routing table at its epoch to the
// durable coordinator log. Best-effort: queries route from memory, so
// a failed append costs recovery determinism on the next cold start,
// never serving correctness — it is counted and surfaced in Stats.
func (c *Coordinator) persistRouting() {
	if c.clog == nil {
		return
	}
	route := c.ReplicaSets()
	if err := c.clog.LogRouting(c.repoch.Load(), route); err != nil {
		c.persistFailures.Add(1)
	}
}

// installSlice streams one local slice to a node's install endpoint.
func (c *Coordinator) installSlice(url string, shard int, sl *core.SignedRelation) error {
	cl, err := c.client(url)
	if err != nil {
		return err
	}
	pr, pw := io.Pipe()
	go func() {
		man := wire.ShardManifest{Spec: c.spec, Shard: shard}
		pw.CloseWithError(wire.WriteShardTransfer(pw, c.h, man, sl))
	}()
	_, err = cl.ShardInstall(pr)
	pr.Close()
	return err
}

// plan resolves the role, validates and rewrites the query, and
// decomposes it over the spec.
func (c *Coordinator) plan(roleName string, q engine.Query) (accessctl.Role, engine.Query, []partition.SubRange, error) {
	role, err := c.policy.Role(roleName)
	if err != nil {
		return role, engine.Query{}, nil, err
	}
	if q.Relation != c.spec.Relation {
		return role, engine.Query{}, nil, fmt.Errorf("%w: %q", engine.ErrUnknownRelation, q.Relation)
	}
	if err := q.Validate(c.schema); err != nil {
		return role, engine.Query{}, nil, err
	}
	if q.Distinct {
		return role, engine.Query{}, nil, ErrDistinct
	}
	eff, err := engine.EffectiveQuery(c.params, c.schema, role, q)
	if err != nil {
		return role, engine.Query{}, nil, err
	}
	sub := c.spec.Decompose(eff.KeyLo, eff.KeyHi)
	if len(sub) > 1 {
		c.fanouts.Add(1)
	}
	return role, eff, sub, nil
}

// QueryStream answers one query as a verifiable chunk stream merged from
// per-node shard sub-streams. The stream is byte-identical to what a
// single process serving the same slices would emit, so the unmodified
// client verifiers accept it unchanged.
func (c *Coordinator) QueryStream(roleName string, q engine.Query, chunkRows int) (engine.ResultStream, error) {
	return c.queryStreamTraced(roleName, q, chunkRows, nil)
}

// queryStreamTraced is QueryStream carrying an optional request span: the
// span's trace ID propagates to every shard node (one trace stitches the
// whole fan-out) and the per-node sub-stream breakdowns land on the span
// as they arrive. A nil span serves untraced with zero overhead beyond
// the histogram observations.
func (c *Coordinator) queryStreamTraced(roleName string, q engine.Query, chunkRows int, span *obs.Span) (engine.ResultStream, error) {
	c.queries.Add(1)
	c.streams.Add(1)
	_, eff, sub, err := c.plan(roleName, q)
	if err != nil {
		c.errors.Add(1)
		return nil, err
	}
	if chunkRows == 0 {
		chunkRows = c.chunkRows
	}
	tPin := time.Now()
	feeds, prevG, err := c.pinFeeds(roleName, q, sub, chunkRows, span)
	c.hPin.ObserveSince(tPin)
	span.Add(obs.StagePinFeeds, time.Since(tPin))
	if err != nil {
		c.errors.Add(1)
		return nil, err
	}
	st, err := engine.MergeShards(c.pub, c.aggregate, eff, feeds, prevG)
	if err != nil {
		c.errors.Add(1)
		closeFeeds(feeds)
		return nil, err
	}
	return st, nil
}

// pinRetries bounds the cross-node pin loop. Retries are rarer and
// costlier than in-process re-pins (each opens fresh sub-streams), so
// the bound is smaller than the server's.
const pinRetries = 8

// pinFeeds opens one sub-stream per covering shard and checks every
// adjacent hand-off by digest compare — the cross-process pinCover. A
// mismatch (boundary delta or migration mid-cutover) closes everything
// and re-pins; a node's not-hosting refusal re-reads the routing table
// (a migration may have swung mid-query) and retries. When the cover
// does not start at shard 0, the preceding shard's edge material is
// pinned with the set (and hand-off-checked against the first feed), so
// the empty-range predecessor digest is epoch-consistent with the cover
// — exactly the in-process pinCover contract.
//
// With a cache tier configured, each covering shard is first looked up
// by its epoch-exact key: a validated hit replays into the merge, a
// leader miss tees the node sub-stream into an async fill. Cached feeds
// pass through the same seam checks as live ones; a seam mismatch while
// any cached feed is in the set drops the suspect entries and re-pins
// with the cache bypassed — a forged-but-digest-consistent entry costs
// one retry, never a wrong or stale answer.
func (c *Coordinator) pinFeeds(roleName string, q engine.Query, sub []partition.SubRange, chunkRows int, span *obs.Span) ([]engine.ShardFeed, engine.PrevG, error) {
	var trace string
	if span != nil {
		trace = span.Trace
	}
	var lastErr error
	bypassCache := false
	for attempt := 0; attempt < pinRetries; attempt++ {
		repoch := c.repoch.Load()
		feeds := make([]engine.ShardFeed, 0, len(sub))
		hellos := make([]wire.NodeHello, 0, len(sub))
		// urls records which node served each feed ("" for cache hits) so
		// a failed seam check can be attributed to a lying replica.
		urls := make([]string, 0, len(sub))
		ok := true
		// staleRouting classifies a not-hosting refusal: transparent
		// retry when the table moved under us, hard error otherwise.
		staleRouting := func(shard int, url string, err error) error {
			c.routingRetries.Add(1)
			if c.repoch.Load() == repoch {
				return fmt.Errorf("%w: shard %d at %s (routing epoch %d): %v",
					ErrRoutingStale, shard, url, repoch, err)
			}
			lastErr = err
			ok = false
			return nil
		}
		// cachedKeys tracks entries serving this attempt; a seam failure
		// with cached feeds in play drops them and re-pins cache-free.
		var cachedKeys []string
		for i, sr := range sub {
			var fill *cache.Fill
			served := false
			if c.cache != nil && !bypassCache {
				k := c.cacheSubKey(roleName, q, sr, i == 0, i == len(sub)-1, chunkRows)
				tGet := time.Now()
				hit, f := c.cache.Lookup(k)
				span.Add(obs.StageCacheGet, time.Since(tGet))
				if hit != nil {
					feeds = append(feeds, &replayFeed{shard: sr.Shard, hit: hit})
					hellos = append(hellos, hit.Hello)
					urls = append(urls, "")
					cachedKeys = append(cachedKeys, k.String())
					served = true
				}
				fill = f
			}
			if !served {
				ff, url, err := c.openFeed(wire.ShardStreamRequest{
					Role: roleName, Query: q, Shard: sr.Shard,
					Lo: sr.Lo, Hi: sr.Hi,
					First: i == 0, Last: i == len(sub)-1,
					ChunkRows: chunkRows, RoutingEpoch: repoch,
					Trace: trace,
				}, fill, span)
				if err != nil {
					closeFeeds(feeds)
					if wire.IsNotHosting(err) {
						// Every usable replica refused the shard: the table
						// and the replica set disagree about placement.
						if herr := staleRouting(sr.Shard, "(all replicas)", err); herr != nil {
							return nil, nil, herr
						}
						break
					}
					return nil, nil, err
				}
				feeds = append(feeds, ff)
				hellos = append(hellos, ff.hello)
				urls = append(urls, url)
			}
			tSeam := time.Now()
			seamOK := i == 0 || hellos[i-1].Edges.HandoffOK(hellos[i].Edges)
			if i > 0 {
				c.obs.Hist(obs.StageSeamCheck).ObserveSince(tSeam)
			}
			if !seamOK {
				// A boundary change is mid-cutover somewhere between these
				// two nodes' pins — or a replica lying about its seam
				// material, or a digest-consistent forged cache entry.
				// Attribute first (a Byzantine replica caught here is
				// quarantined, so the re-pin lands on a sibling), then
				// re-pin the whole set, without the cache if it was in play.
				c.handoffRetries.Add(1)
				lastErr = fmt.Errorf("hand-off between shards %d and %d disagrees", sub[i-1].Shard, sr.Shard)
				ok = false
				c.investigateSeam(sub[i-1].Shard, urls[i-1], hellos[i-1])
				c.investigateSeam(sr.Shard, urls[i], hellos[i])
				if len(cachedKeys) > 0 {
					bypassCache = true
					for _, ks := range cachedKeys {
						c.cache.DropAsync(ks)
					}
				}
				break
			}
		}
		var prevG engine.PrevG
		if ok && sub[0].Shard > 0 {
			// Pin the preceding shard's seam material with the cover: the
			// empty-range corner may need g(pred-1) from it, and a lazy
			// fetch at footer time could observe a later epoch than the
			// pinned first slice.
			prev := sub[0].Shard - 1
			resp, url, err := c.probeEdges(prev)
			switch {
			case err != nil && wire.IsNotHosting(err):
				if herr := staleRouting(prev, url, err); herr != nil {
					closeFeeds(feeds)
					return nil, nil, herr
				}
			case err != nil:
				closeFeeds(feeds)
				return nil, nil, fmt.Errorf("cluster: shard %d at %s: %w", prev, url, err)
			case !resp.Edges.HandoffOK(hellos[0].Edges):
				c.handoffRetries.Add(1)
				lastErr = fmt.Errorf("hand-off between shards %d and %d disagrees", prev, sub[0].Shard)
				ok = false
				c.investigateSeam(sub[0].Shard, urls[0], hellos[0])
				if len(cachedKeys) > 0 {
					bypassCache = true
					for _, ks := range cachedKeys {
						c.cache.DropAsync(ks)
					}
				}
			default:
				g := resp.Edges.Tail[0].G
				prevG = func() (hashx.Digest, error) { return g, nil }
			}
		}
		if ok {
			return feeds, prevG, nil
		}
		closeFeeds(feeds)
		runtime.Gosched()
	}
	return nil, nil, fmt.Errorf("%w: %v", ErrClusterPin, lastErr)
}

// openFeed opens one shard sub-stream on the best usable replica. A
// candidate that dies at the transport level (or hangs past the client
// budget) before delivering its hello is skipped for the next sibling —
// the pre-hello failover path; a candidate that answers not-hosting is
// likewise skipped, and only when every candidate refused does the
// not-hosting surface (the caller's stale-routing classification).
// The successful feed is wrapped for mid-stream failover: its hello's
// digest pins the slice content, so a later death can be resumed
// byte-exactly on any sibling holding the identical slice.
func (c *Coordinator) openFeed(req wire.ShardStreamRequest, fill *cache.Fill, span *obs.Span) (*failoverFeed, string, error) {
	tried := make(map[string]bool)
	allRefused := true
	var lastErr error
	failedOver := false
	for {
		url, perr := c.pickReplica(req.Shard, tried)
		if perr != nil {
			if fill != nil {
				fill.Abort()
			}
			if lastErr == nil {
				return nil, "", perr
			}
			if allRefused {
				return nil, "", lastErr
			}
			return nil, "", fmt.Errorf("cluster: shard %d: every replica failed: %w", req.Shard, lastErr)
		}
		tried[url] = true
		cl := c.clients[url]
		if cl == nil {
			continue
		}
		var tee io.Writer
		if fill != nil {
			tee = fill
		}
		t0 := time.Now()
		ns, err := cl.ShardStreamTee(req, tee)
		if err != nil {
			if wire.IsNotHosting(err) {
				lastErr = err
				continue
			}
			allRefused = false
			failedOver = true
			lastErr = fmt.Errorf("cluster: shard %d at %s: %w", req.Shard, url, err)
			if fill != nil {
				// The fill may hold partial bytes from the dead attempt;
				// it cannot back the sibling's stream.
				fill.Abort()
				fill = nil
			}
			continue
		}
		if failedOver {
			c.failovers.Add(1)
			c.obs.Hist(obs.StageFailover).ObserveSince(t0)
			span.Add(obs.StageFailover, time.Since(t0))
		}
		hello := ns.Hello()
		if nh := c.health[url]; nh != nil {
			nh.inflight.Add(1)
		}
		rf := &remoteFeed{
			ns: ns, shard: req.Shard, relation: c.spec.Relation,
			url: url, span: span,
			hWait: c.obs.Hist(obs.Labeled(obs.StageSubStream, "node", url)),
		}
		return &failoverFeed{
			c: c, f: rf, fill: fill, req: req,
			hello: hello, digest: hello.Digest.Clone(),
			tried: tried, span: span,
		}, url, nil
	}
}

// probeEdges reads a shard's edge material from the first replica that
// answers — the control-plane analogue of openFeed's candidate loop.
func (c *Coordinator) probeEdges(shard int) (wire.EdgeResponse, string, error) {
	tried := make(map[string]bool)
	var lastErr error
	var lastURL string
	for {
		url, perr := c.pickReplica(shard, tried)
		if perr != nil {
			if lastErr != nil {
				return wire.EdgeResponse{}, lastURL, lastErr
			}
			return wire.EdgeResponse{}, "", perr
		}
		tried[url] = true
		cl := c.clients[url]
		if cl == nil {
			continue
		}
		resp, err := cl.ShardEdges(wire.ShardRef{Relation: c.spec.Relation, Shard: shard})
		if err != nil {
			lastErr, lastURL = err, url
			continue
		}
		return resp, url, nil
	}
}

func closeFeeds(feeds []engine.ShardFeed) {
	for _, f := range feeds {
		f.Close()
	}
}

// Query answers one materialized query by collecting its merged stream.
func (c *Coordinator) Query(roleName string, q engine.Query) (*engine.Result, error) {
	sp := obs.StartSpan("")
	defer func() {
		c.obs.Slow.Finish(sp, "query", fmt.Sprintf("role=%s relation=%s", roleName, q.Relation))
	}()
	st, err := c.queryStreamTraced(roleName, q, 0, sp)
	if err != nil {
		return nil, err
	}
	res, err := engine.Collect(st)
	if err != nil {
		c.errors.Add(1)
		return nil, err
	}
	return res, nil
}

// NodeStat is one node's lease/health view in Stats and /statsz.
type NodeStat struct {
	URL string
	// State is live, expired or quarantined (see replica.go).
	State string
	// LeaseRenewals counts acknowledged heartbeats; LeaseEpoch is the
	// routing epoch the node last echoed; LeaseExpiry is the current
	// grant's deadline (zero until a first grant).
	LeaseRenewals uint64
	LeaseEpoch    uint64
	LeaseExpiry   time.Time
	// Hosted is the node's self-reported hosted-shard count at the last
	// heartbeat; Inflight is the coordinator-side open sub-stream gauge.
	Hosted   int
	Inflight int64
	// LastErr is the last heartbeat failure, cleared on renewal.
	LastErr string `json:",omitempty"`
	// QuarantineReason records why the node was drained, when it is.
	QuarantineReason string `json:",omitempty"`
}

// NodeStats snapshots every node's lease/health view.
func (c *Coordinator) NodeStats() []NodeStat {
	out := make([]NodeStat, 0, len(c.nodes))
	for _, url := range c.nodes {
		nh := c.health[url]
		if nh == nil {
			continue
		}
		nh.mu.Lock()
		ns := NodeStat{
			URL:              url,
			State:            c.stateLocked(nh),
			LeaseRenewals:    nh.renewals,
			LeaseEpoch:       nh.leaseEpoch,
			Hosted:           nh.hosted,
			Inflight:         nh.inflight.Load(),
			LastErr:          nh.lastErr,
			QuarantineReason: nh.reason,
		}
		if nh.granted {
			ns.LeaseExpiry = nh.expiry
		}
		nh.mu.Unlock()
		out = append(out, ns)
	}
	return out
}

// Stats is the coordinator's /statsz snapshot.
type Stats struct {
	Queries, Streams, Fanouts, Errors uint64
	// HandoffRetries counts cross-node epoch-set re-pins; RoutingRetries
	// counts pins retried after a node's stale-routing refusal.
	HandoffRetries, RoutingRetries uint64
	DeltasApplied, Migrations      uint64
	// Failovers counts sub-streams re-pinned to a sibling replica (both
	// pre-hello skips of dead candidates and mid-stream digest-pinned
	// re-opens). Demotions/Promotions count lease-expiry transitions;
	// Quarantines counts nodes drained on Byzantine evidence;
	// LeaseRenewals counts acknowledged heartbeats.
	Failovers, Demotions, Promotions uint64
	Quarantines, LeaseRenewals       uint64
	RoutingEpoch                     uint64
	SpecVersion                      uint64
	// Routing maps shard index to its primary node URL (the single-copy
	// compatibility view); ReplicaSets carries the full sets when R > 1.
	Routing []string
	// Replicas is the configured replication factor.
	Replicas    int
	ReplicaSets [][]string
	// Nodes is the per-node lease/health view.
	Nodes []NodeStat
	// Cache carries the edge-cache tier counters when the tier is
	// configured.
	Cache *cache.ClientStats
	// Log carries the durable coordinator-log counters when persistence
	// is configured; PersistFailures counts best-effort appends that
	// failed (recovery determinism degraded, serving unaffected).
	Log             *store.CoordStats `json:",omitempty"`
	PersistFailures uint64            `json:",omitempty"`
	// ContentEpochs is the per-shard content epoch vector cache keys bind.
	ContentEpochs []uint64
}

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	var cs *cache.ClientStats
	if c.cache != nil {
		snap := c.cache.Stats()
		cs = &snap
	}
	var ls *store.CoordStats
	if c.clog != nil {
		snap := c.clog.Stats()
		ls = &snap
	}
	return Stats{
		Cache:           cs,
		Log:             ls,
		PersistFailures: c.persistFailures.Load(),
		ContentEpochs:   c.contentEpochs(),
		Queries:         c.queries.Load(),
		Streams:         c.streams.Load(),
		Fanouts:         c.fanouts.Load(),
		Errors:          c.errors.Load(),
		HandoffRetries:  c.handoffRetries.Load(),
		RoutingRetries:  c.routingRetries.Load(),
		DeltasApplied:   c.deltasApplied.Load(),
		Migrations:      c.migrations.Load(),
		Failovers:       c.failovers.Load(),
		Demotions:       c.demotions.Load(),
		Promotions:      c.promotions.Load(),
		Quarantines:     c.quarantines.Load(),
		LeaseRenewals:   c.leaseRenewals.Load(),
		RoutingEpoch:    c.repoch.Load(),
		SpecVersion:     c.spec.Version,
		Routing:         c.Routing(),
		Replicas:        c.replicas,
		ReplicaSets:     c.ReplicaSets(),
		Nodes:           c.NodeStats(),
	}
}

// sortedNodeURLs returns the deterministic node processing order used by
// control-plane operations.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- process-wide expvar aggregation ---------------------------------
//
// The same publish-once/registry pattern internal/server uses for
// vcqr_server: coordinator mode was the one serving flavor with no
// process expvar, which left /debug/vars empty of serving counters on a
// coordinator — fixed by aggregating every live Coordinator here.

var (
	coordRegistryMu sync.Mutex
	coordRegistry   = map[*Coordinator]struct{}{}
	coordPublishVar sync.Once
)

func registerCoordinator(c *Coordinator) {
	coordPublishVar.Do(func() {
		expvar.Publish("vcqr_coordinator", expvar.Func(func() any {
			coordRegistryMu.Lock()
			defer coordRegistryMu.Unlock()
			var agg Stats
			for co := range coordRegistry {
				st := co.Stats()
				agg.Queries += st.Queries
				agg.Streams += st.Streams
				agg.Fanouts += st.Fanouts
				agg.Errors += st.Errors
				agg.HandoffRetries += st.HandoffRetries
				agg.RoutingRetries += st.RoutingRetries
				agg.DeltasApplied += st.DeltasApplied
				agg.Migrations += st.Migrations
				agg.Failovers += st.Failovers
				agg.Demotions += st.Demotions
				agg.Promotions += st.Promotions
				agg.Quarantines += st.Quarantines
				agg.LeaseRenewals += st.LeaseRenewals
			}
			return agg
		}))
	})
	coordRegistryMu.Lock()
	coordRegistry[c] = struct{}{}
	coordRegistryMu.Unlock()
}

func unregisterCoordinator(c *Coordinator) {
	coordRegistryMu.Lock()
	delete(coordRegistry, c)
	coordRegistryMu.Unlock()
}
