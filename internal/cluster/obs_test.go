package cluster_test

import (
	"bufio"
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/wire"
)

// scrape GETs a Prometheus text endpoint into name{labels} -> value.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %s", resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterTraceAndMetrics is the observability acceptance pin: one
// client-supplied trace ID must span the coordinator and both shard-node
// processes, the per-node stage histograms must surface in the
// coordinator's /metrics (as node-labeled series and in the merged
// cluster aggregate), and the stream carrying all of this must still be
// accepted by the UNMODIFIED shard-aware verifier — with the timing
// trailer strictly appended after the byte-identical stream.
func TestClusterTraceAndMetrics(t *testing.T) {
	f := newCluster(t, 96, 3, 2, nil)
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()
	defer f.coord.Close()
	const trace = "aaaabbbbccccdddd"

	// Retain everything in the node slow logs so the propagated trace is
	// observable without synthetic delays.
	for _, n := range f.nodes {
		n.Obs().Slow.SetThreshold(time.Nanosecond)
	}
	f.coord.Obs().Slow.SetThreshold(time.Nanosecond)

	// Verified stream with tracing + timing on, via the unmodified
	// shard-aware verifier.
	q := engine.Query{Relation: "Uniform"} // full range: 3 shards, 2 nodes
	sv, err := f.v.NewShardStreamVerifier(f.spec, q, f.role)
	if err != nil {
		t.Fatal(err)
	}
	client := &wire.Client{BaseURL: coordTS.URL, Trace: trace, Timing: true}
	rows := 0
	stats, err := client.QueryStreamWith(sv, "all", q, 8, func(engine.Row) error {
		rows++
		return nil
	})
	if err != nil {
		t.Fatalf("traced stream rejected by unmodified verifier: %v", err)
	}
	if rows != 96 {
		t.Fatalf("verified %d rows, want 96", rows)
	}

	// The trailer echoes the client's trace and carries coordinator
	// stages plus the per-node breakdowns each node self-reported.
	if stats.Trace != trace {
		t.Fatalf("trailer trace = %q, want %q", stats.Trace, trace)
	}
	stages := map[string]bool{}
	for _, sd := range stats.Timing {
		stages[sd.Stage] = true
	}
	for _, want := range []string{obs.StagePinFeeds, obs.StageStreamTotal} {
		if !stages[want] {
			t.Fatalf("trailer missing coordinator stage %q: %+v", want, stats.Timing)
		}
	}
	for _, url := range f.urls {
		if !stages[obs.Labeled(obs.StageSubStream, "node", url)] {
			t.Fatalf("trailer missing node %s sub-stream breakdown: %+v", url, stats.Timing)
		}
	}

	// One trace ID spans the processes: every node retained a substream
	// slow-log entry under the client's trace.
	for i, n := range f.nodes {
		found := false
		for _, e := range n.Obs().Slow.Entries() {
			if e.Op == "substream" && e.Trace == trace {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d slow log has no substream entry for trace %q: %+v",
				i, trace, n.Obs().Slow.Entries())
		}
	}
	// And the coordinator's own slow log closed the same trace.
	found := false
	for _, e := range f.coord.Obs().Slow.Entries() {
		if e.Op == "stream" && e.Trace == trace {
			found = true
		}
	}
	if !found {
		t.Fatalf("coordinator slow log missing trace %q", trace)
	}

	// The coordinator /metrics aggregate shows its own stages, each
	// node's histograms as node-labeled series, and the cluster merge.
	m := scrape(t, coordTS.URL+"/metrics")
	if m[`vcqr_stage_seconds_count{stage="pin_feeds",role="coordinator"}`] < 1 {
		t.Fatalf("coordinator pin_feeds histogram empty: %v", m)
	}
	var nodeSub float64
	for _, url := range f.urls {
		key := `vcqr_node_stage_seconds_count{stage="substream",node="` + url + `"}`
		if m[key] < 1 {
			t.Fatalf("per-node substream histogram missing for %s", url)
		}
		nodeSub += m[key]
	}
	if nodeSub < 3 {
		t.Fatalf("3 shard sub-streams should be visible across the nodes, got %v", nodeSub)
	}
	if got := m[`vcqr_cluster_stage_seconds_count{stage="substream"}`]; got < nodeSub {
		t.Fatalf("cluster aggregate substream count %v < node sum %v", got, nodeSub)
	}
	if m[`vcqr_node_scrape_errors`] != 0 {
		t.Fatalf("node scrapes failed: %v", m[`vcqr_node_scrape_errors`])
	}

	// Timing is strictly additive: the timed stream is the plain stream
	// plus one trailing frame, so the byte-identity surface is untouched.
	plainReq := wire.StreamRequest{Role: "all", Query: q, ChunkRows: 8}
	timedReq := plainReq
	timedReq.Trace, timedReq.Timing = trace, true
	plain := streamBody(t, coordTS.URL, plainReq)
	timed := streamBody(t, coordTS.URL, timedReq)
	if !bytes.HasPrefix(timed, plain) {
		t.Fatal("timed stream does not extend the plain stream byte-for-byte")
	}
	if len(timed) <= len(plain) {
		t.Fatal("timed stream carries no trailer")
	}
}

// TestCoordinatorMetricsJSON pins the coordinator's scrapeable export.
func TestCoordinatorMetricsJSON(t *testing.T) {
	f := newCluster(t, 60, 3, 2, nil)
	coordTS := httptest.NewServer(f.coord.Handler())
	defer coordTS.Close()
	defer f.coord.Close()
	if _, err := f.coord.Query("all", engine.Query{Relation: "Uniform"}); err != nil {
		t.Fatal(err)
	}
	cl := &wire.Client{BaseURL: coordTS.URL}
	e, err := cl.ObsExport()
	if err != nil {
		t.Fatal(err)
	}
	if e.Role != "coordinator" {
		t.Fatalf("role = %q", e.Role)
	}
	if e.Counters["queries"] != 1 {
		t.Fatalf("queries counter = %d", e.Counters["queries"])
	}
	if e.Hists[obs.StagePinFeeds].Count() < 1 {
		t.Fatal("pin_feeds histogram empty in export")
	}
}
