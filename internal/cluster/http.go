package cluster

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"vcqr/internal/delta"
	"vcqr/internal/wire"
)

// Handler returns the coordinator's HTTP API. The user-facing endpoints
// (/query, /stream, /delta, /healthz, /statsz) speak exactly the wire
// protocol a single-process vcserve speaks, so vcquery and owner tooling
// work against a coordinator unchanged; /admin adds the control plane an
// operator drives:
//
//	POST /query            gob wire.Request       -> gob wire.Response
//	POST /stream           gob wire.StreamRequest -> chunk frames
//	POST /delta            gob delta.Delta        -> gob wire.DeltaResponse
//	GET  /healthz          "ok"
//	GET  /statsz           JSON cluster.Stats
//	GET  /admin/routing    JSON routing table
//	POST /admin/rebalance  ?shard=N&to=URL        -> JSON RebalanceReport
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/query", wire.QueryHandler(c.Query))
	mux.HandleFunc("/stream", c.handleStream)
	mux.HandleFunc("/delta", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var resp wire.DeltaResponse
		var d delta.Delta
		if err := gob.NewDecoder(r.Body).Decode(&d); err != nil {
			resp.Err = err.Error()
		} else if epoch, err := c.ApplyDelta(d); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Epoch = epoch
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		gob.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Stats())
	})
	mux.HandleFunc("/admin/routing", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			RoutingEpoch uint64
			Routing      []string
		}{c.RoutingEpoch(), c.Routing()})
	})
	mux.HandleFunc("/admin/rebalance", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		shard, err := strconv.Atoi(r.FormValue("shard"))
		if err != nil {
			http.Error(w, "shard must be an integer", http.StatusBadRequest)
			return
		}
		to := r.FormValue("to")
		if to == "" {
			http.Error(w, "to must name a node URL", http.StatusBadRequest)
			return
		}
		rep, err := c.Rebalance(shard, to)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	return mux
}

// handleStream serves one merged cross-node stream, flushing per frame —
// the same contract as the single-process /stream endpoint, over the
// same verifiers.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req wire.StreamRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := c.QueryStream(req.Role, req.Query, req.ChunkRows)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := wire.WriteStream(flushWriter{w}, st); err != nil {
		c.errors.Add(1)
	}
}

// flushWriter adapts the response writer so wire.WriteStream flushes
// after every frame.
type flushWriter struct{ w http.ResponseWriter }

func (fw flushWriter) Write(p []byte) (int, error) { return fw.w.Write(p) }
func (fw flushWriter) Flush() {
	if f, ok := fw.w.(http.Flusher); ok {
		f.Flush()
	}
}
