package cluster

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/wire"
)

// Handler returns the coordinator's HTTP API. The user-facing endpoints
// (/query, /stream, /delta, /healthz, /statsz) speak exactly the wire
// protocol a single-process vcserve speaks, so vcquery and owner tooling
// work against a coordinator unchanged; /admin adds the control plane an
// operator drives:
//
//	POST /query            gob wire.Request       -> gob wire.Response
//	POST /stream           gob wire.StreamRequest -> chunk frames
//	POST /delta            gob delta.Delta        -> gob wire.DeltaResponse
//	GET  /healthz          "ok"
//	GET  /statsz           JSON cluster.Stats
//	GET  /metrics          Prometheus text: coordinator counters and stage
//	                       histograms, per-node scraped histograms, and the
//	                       merged cluster-wide aggregates
//	GET  /metrics.json     obs.Export (coordinator's own registry)
//	GET  /debug/...        expvar, pprof, slow-query log
//	GET  /admin/routing    JSON routing table
//	POST /admin/rebalance  ?shard=N&to=URL        -> JSON RebalanceReport
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/query", wire.QueryHandler(c.Query))
	mux.HandleFunc("/stream", c.handleStream)
	mux.HandleFunc("/delta", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var resp wire.DeltaResponse
		var d delta.Delta
		if err := gob.NewDecoder(r.Body).Decode(&d); err != nil {
			resp.Err = err.Error()
		} else if epoch, err := c.ApplyDelta(d); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Epoch = epoch
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		gob.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Stats())
	})
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/metrics.json", c.handleMetricsJSON)
	obs.RegisterDebug(mux, c.obs.Slow)
	mux.HandleFunc("/admin/routing", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			RoutingEpoch uint64
			Routing      []string
		}{c.RoutingEpoch(), c.Routing()})
	})
	mux.HandleFunc("/admin/rebalance", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		shard, err := strconv.Atoi(r.FormValue("shard"))
		if err != nil {
			http.Error(w, "shard must be an integer", http.StatusBadRequest)
			return
		}
		to := r.FormValue("to")
		if to == "" {
			http.Error(w, "to must name a node URL", http.StatusBadRequest)
			return
		}
		rep, err := c.Rebalance(shard, to)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	return mux
}

// handleStream serves one merged cross-node stream, flushing per frame —
// the same contract as the single-process /stream endpoint, over the
// same verifiers.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req wire.StreamRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The span's trace ID (client-supplied or minted here) rides every
	// shard sub-request, so one ID stitches coordinator and nodes.
	sp := obs.StartSpan(req.Trace)
	st, err := c.queryStreamTraced(req.Role, req.Query, req.ChunkRows, sp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	fw := flushWriter{w}
	werr := wire.WriteStream(fw, st)
	if werr != nil {
		c.errors.Add(1)
	}
	total := sp.Elapsed()
	c.obs.Observe(obs.StageFanoutMerge, total)
	sp.Add(obs.StageStreamTotal, total)
	if werr == nil && req.Timing {
		// Advisory trailer after the footer, only on request — same
		// contract as the single-process server, with the per-node
		// breakdowns (collected at each feed's foot) included.
		tc := &engine.Chunk{Type: engine.ChunkTiming, Trace: sp.Trace, Timing: sp.Stages()}
		if err := wire.WriteChunkFrame(fw, tc); err == nil {
			fw.Flush()
		}
	}
	c.obs.Slow.Finish(sp, "stream",
		fmt.Sprintf("role=%s relation=%s", req.Role, req.Query.Relation))
}

// handleMetrics serves the cluster-wide Prometheus exposition. Three
// histogram families share the bucket geometry that makes node snapshots
// mergeable (internal/obs):
//
//	vcqr_stage_seconds{role="coordinator",stage}  this process
//	vcqr_node_stage_seconds{node,stage}           each scraped node, as-is
//	vcqr_cluster_stage_seconds{stage}             coordinator + all nodes,
//	                                              merged per stage
//
// A node that fails to scrape is skipped and counted in
// vcqr_node_scrape_errors — a partial cluster view beats a failed scrape.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, cv := range []struct {
		name, help string
		v          uint64
	}{
		{"vcqr_queries_total", "Queries served.", st.Queries},
		{"vcqr_streams_total", "Streamed queries served.", st.Streams},
		{"vcqr_fanouts_total", "Queries decomposed over more than one shard.", st.Fanouts},
		{"vcqr_errors_total", "Serving errors.", st.Errors},
		{"vcqr_handoff_retries_total", "Cross-node epoch-set re-pins.", st.HandoffRetries},
		{"vcqr_routing_retries_total", "Pins retried after stale-routing refusals.", st.RoutingRetries},
		{"vcqr_deltas_applied_total", "Distributed deltas committed.", st.DeltasApplied},
		{"vcqr_migrations_total", "Shard migrations completed.", st.Migrations},
	} {
		obs.WriteCounterFamily(w, cv.name, cv.help,
			[]obs.CounterSeries{{Labels: [][2]string{{"role", "coordinator"}}, Value: float64(cv.v)}})
	}
	obs.WriteGaugeFamily(w, "vcqr_routing_epoch", "Routing table version.",
		[]obs.CounterSeries{{Labels: [][2]string{{"role", "coordinator"}}, Value: float64(st.RoutingEpoch)}})
	own := c.obs.Snapshot()
	obs.WriteHistogramFamily(w, "vcqr_stage_seconds",
		"Per-stage serving latency (seconds).",
		obs.HistFamily(own, "role", "coordinator"))

	// Scrape every node's /metrics.json and render both the per-node
	// series and the merged cluster aggregate.
	var nodeSeries []obs.HistSeries
	sets := []map[string]obs.Snapshot{own}
	var scrapeErrs uint64
	for _, url := range c.nodes {
		cl, err := c.client(url)
		if err != nil {
			scrapeErrs++
			continue
		}
		e, err := cl.ObsExport()
		if err != nil {
			scrapeErrs++
			continue
		}
		nodeSeries = append(nodeSeries, obs.HistFamily(e.Hists, "node", url)...)
		sets = append(sets, e.Hists)
	}
	obs.WriteGaugeFamily(w, "vcqr_node_scrape_errors", "Nodes that failed the last /metrics scrape.",
		[]obs.CounterSeries{{Value: float64(scrapeErrs)}})
	obs.WriteHistogramFamily(w, "vcqr_node_stage_seconds",
		"Per-stage latency as reported by each shard node (seconds).", nodeSeries)
	obs.WriteHistogramFamily(w, "vcqr_cluster_stage_seconds",
		"Per-stage latency merged across the coordinator and every node (seconds).",
		obs.HistFamily(obs.MergeAll(sets...)))
}

// handleMetricsJSON serves the coordinator's own registry as an
// obs.Export (nodes serve their own; merging is the scraper's job).
func (c *Coordinator) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	obs.WriteExport(w, obs.Export{
		Role:     "coordinator",
		BoundsNS: obs.BucketBounds(),
		Hists:    c.obs.Snapshot(),
		Counters: map[string]uint64{
			"queries":         st.Queries,
			"streams":         st.Streams,
			"fanouts":         st.Fanouts,
			"errors":          st.Errors,
			"handoff_retries": st.HandoffRetries,
			"routing_retries": st.RoutingRetries,
			"deltas_applied":  st.DeltasApplied,
			"migrations":      st.Migrations,
		},
	})
}

// flushWriter adapts the response writer so wire.WriteStream flushes
// after every frame.
type flushWriter struct{ w http.ResponseWriter }

func (fw flushWriter) Write(p []byte) (int, error) { return fw.w.Write(p) }
func (fw flushWriter) Flush() {
	if f, ok := fw.w.(http.Flusher); ok {
		f.Flush()
	}
}
