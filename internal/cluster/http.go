package cluster

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"vcqr/internal/cache"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/wire"
)

// Handler returns the coordinator's HTTP API. The user-facing endpoints
// (/query, /stream, /delta, /healthz, /statsz) speak exactly the wire
// protocol a single-process vcserve speaks, so vcquery and owner tooling
// work against a coordinator unchanged; /admin adds the control plane an
// operator drives:
//
//	POST /query            gob wire.Request       -> gob wire.Response
//	POST /stream           gob wire.StreamRequest -> chunk frames
//	POST /delta            gob delta.Delta        -> gob wire.DeltaResponse
//	GET  /healthz          "ok"
//	GET  /statsz           JSON cluster.Stats
//	GET  /metrics          Prometheus text: coordinator counters and stage
//	                       histograms, per-node scraped histograms, and the
//	                       merged cluster-wide aggregates
//	GET  /metrics.json     obs.Export (coordinator's own registry)
//	GET  /debug/...        expvar, pprof, slow-query log
//	GET  /admin/routing    JSON routing table
//	POST /admin/rebalance  ?shard=N&to=URL        -> JSON RebalanceReport
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/query", wire.QueryHandler(c.Query))
	mux.HandleFunc("/stream", c.handleStream)
	mux.HandleFunc("/delta", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var resp wire.DeltaResponse
		var d delta.Delta
		if err := gob.NewDecoder(r.Body).Decode(&d); err != nil {
			resp.Err = err.Error()
		} else if epoch, err := c.ApplyDelta(d); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Epoch = epoch
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		gob.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Stats())
	})
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/metrics.json", c.handleMetricsJSON)
	obs.RegisterDebug(mux, c.obs.Slow)
	mux.HandleFunc("/admin/routing", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			RoutingEpoch uint64
			Routing      []string
			Replicas     int
			ReplicaSets  [][]string
			Nodes        []NodeStat
		}{c.RoutingEpoch(), c.Routing(), c.replicas, c.ReplicaSets(), c.NodeStats()})
	})
	mux.HandleFunc("/admin/replica", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		shard, err := strconv.Atoi(r.FormValue("shard"))
		if err != nil {
			http.Error(w, "shard must be an integer", http.StatusBadRequest)
			return
		}
		add, drop := r.FormValue("add"), r.FormValue("drop")
		switch {
		case add != "" && drop == "":
			err = c.AddReplica(shard, add)
		case drop != "" && add == "":
			err = c.DropReplica(shard, drop)
		default:
			http.Error(w, "exactly one of add= or drop= must name a node URL", http.StatusBadRequest)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Shard       int
			ReplicaSets [][]string
		}{shard, c.ReplicaSets()})
	})
	mux.HandleFunc("/admin/reinstate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		node := r.FormValue("node")
		if node == "" {
			http.Error(w, "node must name a node URL", http.StatusBadRequest)
			return
		}
		if !c.Reinstate(node) {
			http.Error(w, "node unknown or not quarantined", http.StatusConflict)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/admin/rebalance", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		shard, err := strconv.Atoi(r.FormValue("shard"))
		if err != nil {
			http.Error(w, "shard must be an integer", http.StatusBadRequest)
			return
		}
		to := r.FormValue("to")
		if to == "" {
			http.Error(w, "to must name a node URL", http.StatusBadRequest)
			return
		}
		rep, err := c.Rebalance(shard, to)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	return mux
}

// handleStream serves one merged cross-node stream, flushing per frame —
// the same contract as the single-process /stream endpoint, over the
// same verifiers.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req wire.StreamRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The span's trace ID (client-supplied or minted here) rides every
	// shard sub-request, so one ID stitches coordinator and nodes.
	sp := obs.StartSpan(req.Trace)
	detail := fmt.Sprintf("role=%s relation=%s", req.Role, req.Query.Relation)
	// With a cache tier configured, a whole merged stream may be served
	// straight from cached chunk-frame bytes — no decode, no merge, no
	// re-encode. The bytes are a verbatim tee of a previous run's output
	// under the same epoch vector, so they are byte-identical to what the
	// origin path would emit and the client's unmodified verifier is the
	// final check on them.
	var fill *cache.Fill
	if c.cache != nil {
		k := c.cacheStreamKey(req.Role, req.Query, req.ChunkRows)
		tGet := time.Now()
		raw, f := c.cache.LookupStream(k)
		sp.Add(obs.StageCacheGet, time.Since(tGet))
		if raw != nil {
			c.serveCachedStream(w, raw, req.Timing, sp, detail)
			return
		}
		fill = f
		detail += " cache=miss"
	}
	st, err := c.queryStreamTraced(req.Role, req.Query, req.ChunkRows, sp)
	if err != nil {
		if fill != nil {
			fill.Abort()
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	fw := flushWriter{w}
	var sink io.Writer = fw
	if fill != nil {
		sink = teeFlushWriter{fw: fw, fill: fill}
	}
	werr := wire.WriteStream(sink, st)
	if fill != nil {
		if werr == nil {
			tFill := time.Now()
			fill.Commit()
			sp.Add(obs.StageCacheFill, time.Since(tFill))
		} else {
			// An errored stream wrote an in-band error chunk (or died on a
			// disconnect); neither is a cacheable entry.
			fill.Abort()
		}
	}
	if werr != nil {
		c.errors.Add(1)
	}
	total := sp.Elapsed()
	c.obs.Observe(obs.StageFanoutMerge, total)
	sp.Add(obs.StageStreamTotal, total)
	if werr == nil && req.Timing {
		// Advisory trailer after the footer, only on request — same
		// contract as the single-process server, with the per-node
		// breakdowns (collected at each feed's foot) included. Written
		// outside the tee: the trailer is per-request advisory data and
		// must never enter a cached entry.
		tc := &engine.Chunk{Type: engine.ChunkTiming, Trace: sp.Trace, Timing: sp.Stages()}
		if err := wire.WriteChunkFrame(fw, tc); err == nil {
			fw.Flush()
		}
	}
	c.obs.Slow.Finish(sp, "stream", detail)
}

// serveCachedStream writes a cached merged stream verbatim, then the
// freshly built timing trailer if the request asked for one (the trailer
// is never cached — it describes this request, not the fill).
func (c *Coordinator) serveCachedStream(w http.ResponseWriter, raw []byte, timing bool, sp *obs.Span, detail string) {
	c.queries.Add(1)
	c.streams.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	fw := flushWriter{w}
	if _, err := fw.Write(raw); err != nil {
		c.errors.Add(1)
		c.obs.Slow.Finish(sp, "stream", detail+" cache=hit")
		return
	}
	fw.Flush()
	sp.Add(obs.StageStreamTotal, sp.Elapsed())
	if timing {
		tc := &engine.Chunk{Type: engine.ChunkTiming, Trace: sp.Trace, Timing: sp.Stages()}
		if err := wire.WriteChunkFrame(fw, tc); err == nil {
			fw.Flush()
		}
	}
	c.obs.Slow.Finish(sp, "stream", detail+" cache=hit")
}

// teeFlushWriter mirrors every stream byte into an edge-cache fill while
// preserving the per-frame flush behavior toward the client.
type teeFlushWriter struct {
	fw   flushWriter
	fill *cache.Fill
}

func (t teeFlushWriter) Write(p []byte) (int, error) {
	n, err := t.fw.Write(p)
	if err == nil && n == len(p) {
		t.fill.Write(p)
	}
	return n, err
}

func (t teeFlushWriter) Flush() { t.fw.Flush() }

// handleMetrics serves the cluster-wide Prometheus exposition. Three
// histogram families share the bucket geometry that makes node snapshots
// mergeable (internal/obs):
//
//	vcqr_stage_seconds{role="coordinator",stage}  this process
//	vcqr_node_stage_seconds{node,stage}           each scraped node, as-is
//	vcqr_cluster_stage_seconds{stage}             coordinator + all nodes,
//	                                              merged per stage
//
// A node that fails to scrape is skipped and counted in
// vcqr_node_scrape_errors — a partial cluster view beats a failed scrape.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, cv := range []struct {
		name, help string
		v          uint64
	}{
		{"vcqr_queries_total", "Queries served.", st.Queries},
		{"vcqr_streams_total", "Streamed queries served.", st.Streams},
		{"vcqr_fanouts_total", "Queries decomposed over more than one shard.", st.Fanouts},
		{"vcqr_errors_total", "Serving errors.", st.Errors},
		{"vcqr_handoff_retries_total", "Cross-node epoch-set re-pins.", st.HandoffRetries},
		{"vcqr_routing_retries_total", "Pins retried after stale-routing refusals.", st.RoutingRetries},
		{"vcqr_deltas_applied_total", "Distributed deltas committed.", st.DeltasApplied},
		{"vcqr_migrations_total", "Shard migrations completed.", st.Migrations},
		{"vcqr_failovers_total", "Sub-streams re-pinned to a sibling replica.", st.Failovers},
		{"vcqr_demotions_total", "Nodes demoted on lease expiry.", st.Demotions},
		{"vcqr_promotions_total", "Demoted nodes promoted back on lease renewal.", st.Promotions},
		{"vcqr_quarantines_total", "Nodes quarantined on Byzantine evidence.", st.Quarantines},
		{"vcqr_lease_renewals_total", "Acknowledged lease heartbeats.", st.LeaseRenewals},
	} {
		obs.WriteCounterFamily(w, cv.name, cv.help,
			[]obs.CounterSeries{{Labels: [][2]string{{"role", "coordinator"}}, Value: float64(cv.v)}})
	}
	obs.WriteGaugeFamily(w, "vcqr_routing_epoch", "Routing table version.",
		[]obs.CounterSeries{{Labels: [][2]string{{"role", "coordinator"}}, Value: float64(st.RoutingEpoch)}})
	if st.Cache != nil {
		cs := st.Cache
		for _, cv := range []struct {
			name, help string
			v          uint64
		}{
			{"vcqr_cache_hits_total", "Validated edge-cache hits.", cs.Hits},
			{"vcqr_cache_misses_total", "Edge-cache misses (fall-throughs included).", cs.Misses},
			{"vcqr_cache_collapsed_total", "Misses collapsed onto another lookup's in-flight fill.", cs.Collapsed},
			{"vcqr_cache_fills_total", "Entries pushed to cache peers.", cs.Fills},
			{"vcqr_cache_fill_drops_total", "Fills discarded (aborted, oversized, empty).", cs.FillDrops},
			{"vcqr_cache_fallthroughs_total", "Cache entries rejected by digest or structural checks.", cs.Fallthroughs},
			{"vcqr_cache_invalidations_total", "Epoch-scoped group invalidations pushed.", cs.Invalidations},
			{"vcqr_cache_peer_errors_total", "Cache-protocol I/O failures.", cs.PeerErrors},
			{"vcqr_cache_admission_denied_total", "Fills skipped by the cost-model admission gate.", cs.AdmissionsDenied},
		} {
			obs.WriteCounterFamily(w, cv.name, cv.help,
				[]obs.CounterSeries{{Labels: [][2]string{{"role", "coordinator"}}, Value: float64(cv.v)}})
		}
		// Per-peer resident state, scraped live; a down peer is skipped
		// (its keys fall through to origin, which is the design).
		peerStats := c.cache.PeerStats()
		var ev, by, en []obs.CounterSeries
		for _, url := range sortedKeys(peerStats) {
			ps := peerStats[url]
			if ps == nil {
				continue
			}
			l := [][2]string{{"peer", url}}
			ev = append(ev, obs.CounterSeries{Labels: l, Value: float64(ps.Evictions)})
			by = append(by, obs.CounterSeries{Labels: l, Value: float64(ps.Bytes)})
			en = append(en, obs.CounterSeries{Labels: l, Value: float64(ps.Entries)})
		}
		obs.WriteCounterFamily(w, "vcqr_cache_evictions_total", "Entries evicted by each peer's byte-budget LRU.", ev)
		obs.WriteGaugeFamily(w, "vcqr_cache_bytes", "Bytes resident on each cache peer.", by)
		obs.WriteGaugeFamily(w, "vcqr_cache_entries", "Entries resident on each cache peer.", en)
	}
	own := c.obs.Snapshot()
	obs.WriteHistogramFamily(w, "vcqr_stage_seconds",
		"Per-stage serving latency (seconds).",
		obs.HistFamily(own, "role", "coordinator"))

	// Scrape every node's /metrics.json and render both the per-node
	// series and the merged cluster aggregate.
	var nodeSeries []obs.HistSeries
	sets := []map[string]obs.Snapshot{own}
	var scrapeErrs uint64
	for _, url := range c.nodes {
		cl, err := c.client(url)
		if err != nil {
			scrapeErrs++
			continue
		}
		e, err := cl.ObsExport()
		if err != nil {
			scrapeErrs++
			continue
		}
		nodeSeries = append(nodeSeries, obs.HistFamily(e.Hists, "node", url)...)
		sets = append(sets, e.Hists)
	}
	obs.WriteGaugeFamily(w, "vcqr_node_scrape_errors", "Nodes that failed the last /metrics scrape.",
		[]obs.CounterSeries{{Value: float64(scrapeErrs)}})
	obs.WriteHistogramFamily(w, "vcqr_node_stage_seconds",
		"Per-stage latency as reported by each shard node (seconds).", nodeSeries)
	obs.WriteHistogramFamily(w, "vcqr_cluster_stage_seconds",
		"Per-stage latency merged across the coordinator and every node (seconds).",
		obs.HistFamily(obs.MergeAll(sets...)))
}

// handleMetricsJSON serves the coordinator's own registry as an
// obs.Export (nodes serve their own; merging is the scraper's job).
func (c *Coordinator) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	counters := map[string]uint64{
		"queries":         st.Queries,
		"streams":         st.Streams,
		"fanouts":         st.Fanouts,
		"errors":          st.Errors,
		"handoff_retries": st.HandoffRetries,
		"routing_retries": st.RoutingRetries,
		"deltas_applied":  st.DeltasApplied,
		"migrations":      st.Migrations,
		"failovers":       st.Failovers,
		"demotions":       st.Demotions,
		"promotions":      st.Promotions,
		"quarantines":     st.Quarantines,
		"lease_renewals":  st.LeaseRenewals,
	}
	if st.Cache != nil {
		counters["cache_hits"] = st.Cache.Hits
		counters["cache_misses"] = st.Cache.Misses
		counters["cache_collapsed"] = st.Cache.Collapsed
		counters["cache_fills"] = st.Cache.Fills
		counters["cache_fallthroughs"] = st.Cache.Fallthroughs
		counters["cache_invalidations"] = st.Cache.Invalidations
	}
	obs.WriteExport(w, obs.Export{
		Role:     "coordinator",
		BoundsNS: obs.BucketBounds(),
		Hists:    c.obs.Snapshot(),
		Counters: counters,
	})
}

// flushWriter adapts the response writer so wire.WriteStream flushes
// after every frame.
type flushWriter struct{ w http.ResponseWriter }

func (fw flushWriter) Write(p []byte) (int, error) { return fw.w.Write(p) }
func (fw flushWriter) Flush() {
	if f, ok := fw.w.(http.Flusher); ok {
		f.Flush()
	}
}
