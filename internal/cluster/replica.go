package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vcqr/internal/partition"
	"vcqr/internal/wire"
)

// Replication errors.
var (
	// ErrNoReplica reports a shard with no usable replica left: every
	// node in its set is quarantined or was already tried this attempt.
	ErrNoReplica = errors.New("cluster: no usable replica for shard")
	// ErrReplicaExists refuses adding a replica to a node already in the
	// shard's set.
	ErrReplicaExists = errors.New("cluster: node already hosts a replica of the shard")
	// ErrLastReplica refuses dropping a shard's only replica — that would
	// take the shard offline; migrate it instead.
	ErrLastReplica = errors.New("cluster: refusing to drop the last replica of a shard")
	// ErrReplicaQuorum aborts a delta when every replica of an affected
	// shard is quarantined — there is no honest copy left to write.
	ErrReplicaQuorum = errors.New("cluster: every replica of an affected shard is quarantined")
	// ErrReplicaDiverged aborts a delta whose replicas staged different
	// edge material for the same shard from the same ops — the copies
	// were not identical going in, and committing would fork them.
	ErrReplicaDiverged = errors.New("cluster: replicas staged divergent edge material")
)

// Node lease states as reported in Stats and /statsz.
const (
	// NodeLive: the node holds a current lease (or has never been
	// heartbeated — a coordinator without StartHeartbeats runs every node
	// as live-by-default, the pre-replication behavior).
	NodeLive = "live"
	// NodeExpired: the node's lease lapsed. It is demoted — skipped by
	// replica selection while any live sibling exists — but never
	// deleted: its slices keep serving pinned streams, and a renewed
	// heartbeat promotes it back.
	NodeExpired = "expired"
	// NodeQuarantined: the node was caught serving material it disagrees
	// with itself about (or its siblings unanimously contradict). It is
	// drained from selection until an operator reinstates it.
	NodeQuarantined = "quarantined"
)

// nodeHealth is the coordinator's view of one node. Lease state is
// advisory routing input — nothing here touches verification, which
// stays with the client-side verifier; a wrong liveness guess costs a
// failover, never a wrong answer.
type nodeHealth struct {
	mu sync.Mutex
	// granted: a lease has been granted at least once; until then the
	// node is live-by-default so coordinators that never heartbeat keep
	// the old behavior.
	granted bool
	expiry  time.Time
	demoted bool
	// quarantined nodes stay out of selection until reinstated.
	quarantined bool
	reason      string
	leaseEpoch  uint64
	renewals    uint64
	hosted      int
	lastErr     string

	// inflight gauges coordinator-side open sub-streams on the node —
	// the least-loaded selection signal. Atomic, outside mu: the hot
	// feed paths touch only this field.
	inflight atomic.Int64
}

// now resolves the injected clock (deterministic lease-expiry tests)
// falling back to the wall clock.
func (c *Coordinator) now() time.Time {
	if c.clock != nil {
		return c.clock()
	}
	return time.Now()
}

// stateLocked classifies a node and records the demotion transition the
// first time an expired lease is observed — lazily, so an injected-clock
// jump demotes on the next selection without waiting for a heartbeat
// tick. Caller holds nh.mu.
func (c *Coordinator) stateLocked(nh *nodeHealth) string {
	if nh.quarantined {
		return NodeQuarantined
	}
	if !nh.granted || c.now().Before(nh.expiry) {
		return NodeLive
	}
	if !nh.demoted {
		nh.demoted = true
		c.demotions.Add(1)
	}
	return NodeExpired
}

func (c *Coordinator) nodeState(url string) string {
	nh := c.health[url]
	if nh == nil {
		return NodeQuarantined // not ours; never select
	}
	nh.mu.Lock()
	defer nh.mu.Unlock()
	return c.stateLocked(nh)
}

// quarantineNode marks a node suspect and drains it from selection. The
// transition is one-way until Reinstate; repeated evidence does not
// re-count.
func (c *Coordinator) quarantineNode(url, reason string) {
	nh := c.health[url]
	if nh == nil {
		return
	}
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if nh.quarantined {
		return
	}
	nh.quarantined = true
	nh.reason = reason
	c.quarantines.Add(1)
}

// Reinstate clears a node's quarantine — the operator action after the
// node has been repaired or the evidence explained (see
// docs/OPERATIONS.md). Returns false if the node is unknown or was not
// quarantined.
func (c *Coordinator) Reinstate(url string) bool {
	nh := c.health[url]
	if nh == nil {
		return false
	}
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if !nh.quarantined {
		return false
	}
	nh.quarantined = false
	nh.reason = ""
	return true
}

// replicaSet snapshots one shard's replica set (index 0 is the primary).
func (c *Coordinator) replicaSet(shard int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if shard < 0 || shard >= len(c.route) {
		return nil
	}
	return append([]string(nil), c.route[shard]...)
}

// pickReplica chooses the serving replica for one shard: the live,
// non-quarantined member with the fewest coordinator-side in-flight
// sub-streams, skipping anything in avoid (already tried this attempt).
// With no live member left it falls back to an expired one — a lapsed
// lease means "probably down", and probably-down beats certainly-failing
// the query. Quarantined nodes are never selected.
func (c *Coordinator) pickReplica(shard int, avoid map[string]bool) (string, error) {
	set := c.replicaSet(shard)
	if len(set) == 0 || (len(set) == 1 && set[0] == "") {
		return "", fmt.Errorf("%w: shard %d", ErrNoRoute, shard)
	}
	pick := func(state string) string {
		best := ""
		var bestLoad int64
		for _, url := range set {
			if url == "" || avoid[url] || c.nodeState(url) != state {
				continue
			}
			load := c.health[url].inflight.Load()
			if best == "" || load < bestLoad {
				best, bestLoad = url, load
			}
		}
		return best
	}
	if url := pick(NodeLive); url != "" {
		return url, nil
	}
	if url := pick(NodeExpired); url != "" {
		return url, nil
	}
	return "", fmt.Errorf("%w %d (set %v)", ErrNoReplica, shard, set)
}

// writeReplicas returns the replicas a delta must reach for one shard:
// every non-quarantined member. A quarantined copy is excluded (it will
// diverge and be dropped or re-proven by the operator); an expired one
// is not — a write that cannot reach all honest replicas must fail
// rather than fork them.
func (c *Coordinator) writeReplicas(shard int) ([]string, error) {
	set := c.replicaSet(shard)
	out := make([]string, 0, len(set))
	for _, url := range set {
		if url != "" && c.nodeState(url) != NodeQuarantined {
			out = append(out, url)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: shard %d", ErrReplicaQuorum, shard)
	}
	return out, nil
}

// HeartbeatOnce runs one lease round: every node gets a renewal carrying
// the current routing epoch and a per-coordinator sequence number (the
// node ignores reordered stale heartbeats by Seq). A node that answers
// is leased for LeaseTTL from now; one that does not simply keeps its
// old expiry and demotes when it lapses — expiry is the only demotion
// trigger, so a single dropped heartbeat inside the TTL costs nothing.
func (c *Coordinator) HeartbeatOnce() {
	seq := c.hbSeq.Add(1)
	req := wire.LeaseRequest{
		Coordinator: c.advertise,
		Epoch:       c.repoch.Load(),
		TTLMillis:   c.leaseTTL.Milliseconds(),
		Seq:         seq,
	}
	for _, url := range c.nodes {
		nh := c.health[url]
		cl := c.clients[url]
		if nh == nil || cl == nil {
			continue
		}
		resp, err := cl.NodeLease(req)
		nh.mu.Lock()
		if err != nil {
			nh.lastErr = err.Error()
			c.stateLocked(nh) // record the demotion transition promptly
		} else {
			nh.lastErr = ""
			nh.granted = true
			nh.expiry = c.now().Add(c.leaseTTL)
			nh.leaseEpoch = resp.Epoch
			nh.hosted = resp.Hosted
			nh.renewals++
			if nh.demoted {
				nh.demoted = false
				c.promotions.Add(1)
			}
			c.leaseRenewals.Add(1)
		}
		nh.mu.Unlock()
	}
}

// StartHeartbeats renews leases on a background ticker (interval 0
// defaults to LeaseTTL/3, the classic renew-early cadence). The returned
// stop function is idempotent.
func (c *Coordinator) StartHeartbeats(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = c.leaseTTL / 3
		if interval <= 0 {
			interval = 5 * time.Second
		}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		c.HeartbeatOnce()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.HeartbeatOnce()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ownedEdgesEqual compares only the owned records of two edge snapshots
// (Head[1..2], Tail[0..1]) — the prepare-time replica-agreement
// predicate. The context records (Head[0], Tail[2]) are excluded: a
// replica that co-hosts the neighbouring ops-shard stitches its context
// during prepare, while a sibling that does not waits for the mirror-fix
// phase — an honest, transient difference. Owned records come from the
// ops themselves and have no such excuse.
func ownedEdgesEqual(a, b partition.Edges) bool {
	return partition.SameRecord(a.Head[1], b.Head[1]) &&
		partition.SameRecord(a.Head[2], b.Head[2]) &&
		partition.SameRecord(a.Tail[0], b.Tail[0]) &&
		partition.SameRecord(a.Tail[1], b.Tail[1])
}

// edgesEqual compares the full six-record seam material of two edge
// snapshots — the "same staged state" predicate for replica agreement.
func edgesEqual(a, b partition.Edges) bool {
	for i := range a.Head {
		if !partition.SameRecord(a.Head[i], b.Head[i]) {
			return false
		}
	}
	for i := range a.Tail {
		if !partition.SameRecord(a.Tail[i], b.Tail[i]) {
			return false
		}
	}
	return true
}

// investigateSeam attributes a failed hand-off check to a lying replica,
// if one can be identified without trusting any single node:
//
//  1. Self-contradiction: the node's control-plane edge probe, at the
//     same epoch the hello pinned, disagrees with the hello it just
//     sent. No honest node contradicts itself about one epoch — the
//     sub-stream was corrupted by the node or its path. Quarantine.
//  2. Sibling consensus: the hello claimed a slice digest no sibling
//     replica holds while at least one sibling disagrees. One unanimous
//     dissent is evidence enough to drain the node; its copies remain
//     for the operator, and a wrongly drained honest node costs
//     capacity, never correctness.
//
// Inconclusive evidence (epoch moved between hello and probe, probe
// unreachable, no siblings) quarantines nobody: the pin loop re-pins and
// the client verifier remains the integrity boundary either way.
// Returns true when a node was quarantined.
func (c *Coordinator) investigateSeam(shard int, url string, hello wire.NodeHello) bool {
	if url == "" {
		return false // cached feed: no node sent these bytes
	}
	cl := c.clients[url]
	if cl == nil {
		return false
	}
	ref := wire.ShardRef{Relation: c.spec.Relation, Shard: shard}
	if resp, err := cl.ShardEdges(ref); err == nil && resp.Epoch == hello.Epoch {
		if !edgesEqual(resp.Edges, hello.Edges) {
			c.quarantineNode(url, fmt.Sprintf(
				"shard %d: sub-stream hello disagrees with the node's own edge probe at epoch %d",
				shard, hello.Epoch))
			return true
		}
	}
	if len(hello.Digest) == 0 {
		return false
	}
	agree, disagree := 0, 0
	for _, sib := range c.replicaSet(shard) {
		if sib == "" || sib == url {
			continue
		}
		scl := c.clients[sib]
		if scl == nil || c.nodeState(sib) == NodeQuarantined {
			continue
		}
		dresp, err := scl.ShardDigest(ref)
		if err != nil {
			continue
		}
		if dresp.Digest.Equal(hello.Digest) {
			agree++
		} else {
			disagree++
		}
	}
	if agree == 0 && disagree > 0 {
		c.quarantineNode(url, fmt.Sprintf(
			"shard %d: hello digest %x contradicted by all %d reachable sibling replicas",
			shard, hello.Digest, disagree))
		return true
	}
	return false
}
