package cluster

import (
	"io"
	"time"

	"vcqr/internal/cache"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/obs"
	"vcqr/internal/wire"
)

// remoteFeed adapts one node sub-stream to the engine's ShardFeed seam:
// the hello maps to the head, the wire foot to the feed foot. The
// adapter adds nothing to the merge semantics — those live in
// engine.MergeShards, which is what keeps the remote fan-out
// byte-identical to the local one. What it does add is the coordinator's
// per-node observation point: every wait on the node accumulates into
// the node-labeled substream histogram, and the node's advisory foot
// timing lands on the request span.
type remoteFeed struct {
	ns       *wire.NodeStream
	shard    int
	relation string

	// url labels the node; hWait is the coordinator-side wait histogram
	// (obs.Labeled(StageSubStream, "node", url)); span, when the request
	// is traced, receives the node's own foot breakdown.
	url    string
	span   *obs.Span
	hWait  *obs.Histogram
	waitNS int64
}

func (f *remoteFeed) Head() (engine.ShardHead, error) {
	hello := f.ns.Hello()
	return engine.ShardHead{Shard: f.shard, Left: hello.Left}, nil
}

func (f *remoteFeed) Next() (*engine.Chunk, error) {
	t0 := time.Now()
	c, err := f.ns.Next()
	f.waitNS += int64(time.Since(t0))
	return c, err
}

func (f *remoteFeed) Foot() (engine.ShardFeedFoot, error) {
	t0 := time.Now()
	foot, err := f.ns.Foot()
	f.waitNS += int64(time.Since(t0))
	// One observation per sub-stream: the total time this feed spent
	// waiting on its node, attributed to the node by label.
	f.hWait.Observe(time.Duration(f.waitNS))
	if err != nil {
		return engine.ShardFeedFoot{}, err
	}
	// The node's advisory self-report (assembly vs total on its side)
	// joins the trace labeled with the node, so a slow-log entry shows
	// where inside the node the time went, not just that the wait was
	// long.
	for _, sd := range foot.Timing {
		f.span.AddNS(obs.Labeled(sd.Stage, "node", f.url), sd.NS)
	}
	return engine.ShardFeedFoot{
		Entries:   foot.Entries,
		Partial:   foot.Partial,
		Right:     foot.Right,
		PredSig:   foot.PredSig,
		PredPrevG: foot.PredPrevG,
		NeedPrevG: foot.NeedPrevG,
	}, nil
}

func (f *remoteFeed) Close() error { return f.ns.Close() }

// replayFeed replays a validated edge-cache hit into the merge seam. The
// decoded hello/chunks/foot came from a byte-exact tee of a real node
// sub-stream, so the merge — and therefore the merged stream the client
// verifies — is byte-identical to the origin path. The cached foot's
// advisory timing is deliberately not folded into the live span: it
// described the run that filled the entry, not this one.
type replayFeed struct {
	shard int
	hit   *cache.Hit
	i     int
}

func (f *replayFeed) Head() (engine.ShardHead, error) {
	return engine.ShardHead{Shard: f.shard, Left: f.hit.Hello.Left}, nil
}

func (f *replayFeed) Next() (*engine.Chunk, error) {
	if f.i >= len(f.hit.Chunks) {
		return nil, io.EOF
	}
	c := f.hit.Chunks[f.i]
	f.i++
	return c, nil
}

func (f *replayFeed) Foot() (engine.ShardFeedFoot, error) {
	foot := f.hit.Foot
	return engine.ShardFeedFoot{
		Entries:   foot.Entries,
		Partial:   foot.Partial,
		Right:     foot.Right,
		PredSig:   foot.PredSig,
		PredPrevG: foot.PredPrevG,
		NeedPrevG: foot.NeedPrevG,
	}, nil
}

func (f *replayFeed) Close() error { return nil }

// failoverFeed wraps a remoteFeed with mid-stream replica failover and
// the optional edge-cache fill lifecycle:
//
//   - The hello's slice digest (captured at open) pins the content this
//     feed committed to. When the live sub-stream dies mid-merge, every
//     untried sibling replica is offered the same request; one whose
//     hello carries the identical digest holds byte-identical slice
//     content, so its chunk sequence (same query, same chunking) is
//     byte-identical too — the already-delivered prefix is skipped and
//     the merge continues as if nothing happened. The merged stream the
//     client verifies never observes the failover.
//   - A sibling at a different digest is NOT resumable: a delta landed
//     between the pin and the death, and old content epochs exist only
//     on the node that pinned them. The feed then surfaces the original
//     error and the client-side retry re-pins at the fresh epoch — an
//     honest failure, never a spliced stream (see DESIGN.md,
//     "Replication").
//   - A fill (cache tee of the raw bytes) commits only on a cleanly
//     drained foot with no failover: after a failover the tee holds the
//     dead stream's partial bytes and is aborted. Commit/Abort are
//     idempotent, so the merger's close-everything error path is safe
//     over a committed feed.
type failoverFeed struct {
	c    *Coordinator
	f    *remoteFeed
	fill *cache.Fill

	// req re-opens the sub-stream on a sibling; hello/digest pin what
	// the original replica promised; tried accumulates every node
	// offered this sub-range (seeded by openFeed's candidate loop).
	req    wire.ShardStreamRequest
	hello  wire.NodeHello
	digest hashx.Digest
	tried  map[string]bool

	delivered int
	span      *obs.Span
	closed    bool
}

func (ff *failoverFeed) Head() (engine.ShardHead, error) {
	return engine.ShardHead{Shard: ff.f.shard, Left: ff.hello.Left}, nil
}

func (ff *failoverFeed) Next() (*engine.Chunk, error) {
	for {
		ch, err := ff.f.Next()
		if err == nil {
			ff.delivered++
			return ch, nil
		}
		if err == io.EOF {
			return nil, err
		}
		if !ff.failover() {
			return nil, err
		}
	}
}

// failover re-pins the live sub-stream onto a digest-identical sibling,
// skipping the already-delivered chunk prefix. Returns false when no
// sibling can resume byte-exactly (none left, or none at the pinned
// digest) — the caller then surfaces the original error.
func (ff *failoverFeed) failover() bool {
	t0 := time.Now()
	if ff.fill != nil {
		ff.fill.Abort()
		ff.fill = nil
	}
	if len(ff.digest) == 0 {
		return false // node predates digest-carrying hellos; nothing pins content
	}
	for {
		url, err := ff.c.pickReplica(ff.req.Shard, ff.tried)
		if err != nil {
			return false
		}
		ff.tried[url] = true
		cl := ff.c.clients[url]
		if cl == nil {
			continue
		}
		req := ff.req
		req.RoutingEpoch = ff.c.repoch.Load()
		ns, err := cl.ShardStreamTee(req, nil)
		if err != nil {
			continue
		}
		hello := ns.Hello()
		if !hello.Digest.Equal(ff.digest) {
			ns.Close() // different content version — not byte-resumable
			continue
		}
		skipped := true
		for i := 0; i < ff.delivered; i++ {
			if _, serr := ns.Next(); serr != nil {
				skipped = false
				break
			}
		}
		if !skipped {
			ns.Close()
			continue
		}
		old := ff.f
		ff.f = &remoteFeed{
			ns: ns, shard: old.shard, relation: old.relation,
			url: url, span: old.span,
			hWait:  ff.c.obs.Hist(obs.Labeled(obs.StageSubStream, "node", url)),
			waitNS: old.waitNS,
		}
		if nh := ff.c.health[url]; nh != nil {
			nh.inflight.Add(1)
		}
		if nh := ff.c.health[old.url]; nh != nil {
			nh.inflight.Add(-1)
		}
		old.Close()
		ff.c.failovers.Add(1)
		ff.c.obs.Hist(obs.StageFailover).ObserveSince(t0)
		ff.span.Add(obs.StageFailover, time.Since(t0))
		return true
	}
}

func (ff *failoverFeed) Foot() (engine.ShardFeedFoot, error) {
	foot, err := ff.f.Foot()
	if err != nil {
		if ff.fill != nil {
			ff.fill.Abort()
			ff.fill = nil
		}
		return foot, err
	}
	if ff.fill != nil {
		tFill := time.Now()
		ff.fill.Commit()
		ff.span.Add(obs.StageCacheFill, time.Since(tFill))
		ff.fill = nil
	}
	return foot, nil
}

func (ff *failoverFeed) Close() error {
	if ff.fill != nil {
		ff.fill.Abort()
		ff.fill = nil
	}
	if !ff.closed {
		ff.closed = true
		if nh := ff.c.health[ff.f.url]; nh != nil {
			nh.inflight.Add(-1)
		}
	}
	return ff.f.Close()
}
