package cluster

import (
	"io"
	"time"

	"vcqr/internal/cache"
	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/wire"
)

// remoteFeed adapts one node sub-stream to the engine's ShardFeed seam:
// the hello maps to the head, the wire foot to the feed foot. The
// adapter adds nothing to the merge semantics — those live in
// engine.MergeShards, which is what keeps the remote fan-out
// byte-identical to the local one. What it does add is the coordinator's
// per-node observation point: every wait on the node accumulates into
// the node-labeled substream histogram, and the node's advisory foot
// timing lands on the request span.
type remoteFeed struct {
	ns       *wire.NodeStream
	shard    int
	relation string

	// url labels the node; hWait is the coordinator-side wait histogram
	// (obs.Labeled(StageSubStream, "node", url)); span, when the request
	// is traced, receives the node's own foot breakdown.
	url    string
	span   *obs.Span
	hWait  *obs.Histogram
	waitNS int64
}

func (f *remoteFeed) Head() (engine.ShardHead, error) {
	hello := f.ns.Hello()
	return engine.ShardHead{Shard: f.shard, Left: hello.Left}, nil
}

func (f *remoteFeed) Next() (*engine.Chunk, error) {
	t0 := time.Now()
	c, err := f.ns.Next()
	f.waitNS += int64(time.Since(t0))
	return c, err
}

func (f *remoteFeed) Foot() (engine.ShardFeedFoot, error) {
	t0 := time.Now()
	foot, err := f.ns.Foot()
	f.waitNS += int64(time.Since(t0))
	// One observation per sub-stream: the total time this feed spent
	// waiting on its node, attributed to the node by label.
	f.hWait.Observe(time.Duration(f.waitNS))
	if err != nil {
		return engine.ShardFeedFoot{}, err
	}
	// The node's advisory self-report (assembly vs total on its side)
	// joins the trace labeled with the node, so a slow-log entry shows
	// where inside the node the time went, not just that the wait was
	// long.
	for _, sd := range foot.Timing {
		f.span.AddNS(obs.Labeled(sd.Stage, "node", f.url), sd.NS)
	}
	return engine.ShardFeedFoot{
		Entries:   foot.Entries,
		Partial:   foot.Partial,
		Right:     foot.Right,
		PredSig:   foot.PredSig,
		PredPrevG: foot.PredPrevG,
		NeedPrevG: foot.NeedPrevG,
	}, nil
}

func (f *remoteFeed) Close() error { return f.ns.Close() }

// replayFeed replays a validated edge-cache hit into the merge seam. The
// decoded hello/chunks/foot came from a byte-exact tee of a real node
// sub-stream, so the merge — and therefore the merged stream the client
// verifies — is byte-identical to the origin path. The cached foot's
// advisory timing is deliberately not folded into the live span: it
// described the run that filled the entry, not this one.
type replayFeed struct {
	shard int
	hit   *cache.Hit
	i     int
}

func (f *replayFeed) Head() (engine.ShardHead, error) {
	return engine.ShardHead{Shard: f.shard, Left: f.hit.Hello.Left}, nil
}

func (f *replayFeed) Next() (*engine.Chunk, error) {
	if f.i >= len(f.hit.Chunks) {
		return nil, io.EOF
	}
	c := f.hit.Chunks[f.i]
	f.i++
	return c, nil
}

func (f *replayFeed) Foot() (engine.ShardFeedFoot, error) {
	foot := f.hit.Foot
	return engine.ShardFeedFoot{
		Entries:   foot.Entries,
		Partial:   foot.Partial,
		Right:     foot.Right,
		PredSig:   foot.PredSig,
		PredPrevG: foot.PredPrevG,
		NeedPrevG: foot.NeedPrevG,
	}, nil
}

func (f *replayFeed) Close() error { return nil }

// fillFeed wraps a remoteFeed whose raw bytes are being teed into an
// edge-cache fill: a cleanly drained foot commits the fill, anything
// else (error, early close) aborts it. Commit/Abort are idempotent, so
// the merger's close-everything error path is safe over a committed
// feed.
type fillFeed struct {
	*remoteFeed
	fill *cache.Fill
}

func (f *fillFeed) Foot() (engine.ShardFeedFoot, error) {
	foot, err := f.remoteFeed.Foot()
	if err != nil {
		f.fill.Abort()
		return foot, err
	}
	tFill := time.Now()
	f.fill.Commit()
	f.span.Add(obs.StageCacheFill, time.Since(tFill))
	return foot, nil
}

func (f *fillFeed) Close() error {
	f.fill.Abort()
	return f.remoteFeed.Close()
}
