package cluster

import (
	"time"

	"vcqr/internal/engine"
	"vcqr/internal/obs"
	"vcqr/internal/wire"
)

// remoteFeed adapts one node sub-stream to the engine's ShardFeed seam:
// the hello maps to the head, the wire foot to the feed foot. The
// adapter adds nothing to the merge semantics — those live in
// engine.MergeShards, which is what keeps the remote fan-out
// byte-identical to the local one. What it does add is the coordinator's
// per-node observation point: every wait on the node accumulates into
// the node-labeled substream histogram, and the node's advisory foot
// timing lands on the request span.
type remoteFeed struct {
	ns       *wire.NodeStream
	shard    int
	relation string

	// url labels the node; hWait is the coordinator-side wait histogram
	// (obs.Labeled(StageSubStream, "node", url)); span, when the request
	// is traced, receives the node's own foot breakdown.
	url    string
	span   *obs.Span
	hWait  *obs.Histogram
	waitNS int64
}

func (f *remoteFeed) Head() (engine.ShardHead, error) {
	hello := f.ns.Hello()
	return engine.ShardHead{Shard: f.shard, Left: hello.Left}, nil
}

func (f *remoteFeed) Next() (*engine.Chunk, error) {
	t0 := time.Now()
	c, err := f.ns.Next()
	f.waitNS += int64(time.Since(t0))
	return c, err
}

func (f *remoteFeed) Foot() (engine.ShardFeedFoot, error) {
	t0 := time.Now()
	foot, err := f.ns.Foot()
	f.waitNS += int64(time.Since(t0))
	// One observation per sub-stream: the total time this feed spent
	// waiting on its node, attributed to the node by label.
	f.hWait.Observe(time.Duration(f.waitNS))
	if err != nil {
		return engine.ShardFeedFoot{}, err
	}
	// The node's advisory self-report (assembly vs total on its side)
	// joins the trace labeled with the node, so a slow-log entry shows
	// where inside the node the time went, not just that the wait was
	// long.
	for _, sd := range foot.Timing {
		f.span.AddNS(obs.Labeled(sd.Stage, "node", f.url), sd.NS)
	}
	return engine.ShardFeedFoot{
		Entries:   foot.Entries,
		Partial:   foot.Partial,
		Right:     foot.Right,
		PredSig:   foot.PredSig,
		PredPrevG: foot.PredPrevG,
		NeedPrevG: foot.NeedPrevG,
	}, nil
}

func (f *remoteFeed) Close() error { return f.ns.Close() }
