package cluster

import (
	"vcqr/internal/engine"
	"vcqr/internal/wire"
)

// remoteFeed adapts one node sub-stream to the engine's ShardFeed seam:
// the hello maps to the head, the wire foot to the feed foot. The
// adapter adds nothing — all merge semantics live in engine.MergeShards,
// which is what keeps the remote fan-out byte-identical to the local
// one.
type remoteFeed struct {
	ns       *wire.NodeStream
	shard    int
	relation string
}

func (f *remoteFeed) Head() (engine.ShardHead, error) {
	hello := f.ns.Hello()
	return engine.ShardHead{Shard: f.shard, Left: hello.Left}, nil
}

func (f *remoteFeed) Next() (*engine.Chunk, error) { return f.ns.Next() }

func (f *remoteFeed) Foot() (engine.ShardFeedFoot, error) {
	foot, err := f.ns.Foot()
	if err != nil {
		return engine.ShardFeedFoot{}, err
	}
	return engine.ShardFeedFoot{
		Entries:   foot.Entries,
		Partial:   foot.Partial,
		Right:     foot.Right,
		PredSig:   foot.PredSig,
		PredPrevG: foot.PredPrevG,
		NeedPrevG: foot.NeedPrevG,
	}, nil
}

func (f *remoteFeed) Close() error { return f.ns.Close() }
