// Package cluster is the distributed serving tier: a coordinator that
// owns the authenticated partition layout ([partition.Spec]) and fans
// queries out to shard nodes — separate internal/server processes, each
// hosting one or more shard slices behind the wire protocol.
//
// # Why remote shard nodes stay untrusted
//
// The paper's publisher/owner split is exactly what makes a distributed
// tier safe to build from untrusted parts. Every node is a publisher in
// miniature: anything it serves is checked by the user against the
// owner's key, so the coordinator never needs to *trust* a node — not
// its entries, not its partial condensed signature, not its boundary
// proofs. A lying node produces a merged stream the unmodified
// verify.ShardStreamVerifier rejects; the cluster protocol only needs
// integrity signals for fail-fast operation, not integrity guarantees:
//
//   - hand-off consistency between nodes travels as the same digest
//     compare the in-process server uses (partition.Edges.HandoffOK over
//     each sub-stream's hello frame), with bounded re-pinning when a
//     boundary change is observed mid-cutover;
//   - shard transfers carry a slice digest (partition.SliceDigest) and
//     are signature-validated on arrival, so a tampered transfer is
//     rejected by name before it can serve anything;
//   - seam health after a distributed delta is re-proved from shipped
//     edge material (partition.CheckSeam) at the coordinator.
//
// # The three invariants, held across processes
//
// One global signature chain (owned by internal/partition): slices move
// between nodes verbatim — no re-signing, ever. Mirrored boundaries:
// adjacent slices' context records stay byte-identical copies of each
// other's edge records; cross-node deltas stage on every affected node,
// get their mirrors stitched by coordinator-pushed fixes, and commit
// only after every affected seam re-validates. Epoch pinning (owned by
// internal/server): each node pins its slice for a sub-stream's whole
// life, and the coordinator's merge consumes one pinned sub-stream per
// covering shard, so a cluster stream verifies against a consistent
// epoch set no matter what cuts over mid-drain.
//
// # Online span migration
//
// Rebalance moves a hot shard's slice between nodes while serving:
// copy (transfer + validate + AggIndex rebuild on the target, live
// deltas still landing on the source), catch-up (re-copy until the
// source digest holds still), cutover (a short exclusive window in
// which deltas wait, a final digest compare proves the copies
// identical, and the routing table swings atomically), then drain (the
// source copy is removed; its pinned in-flight streams finish
// unharmed). A query that races the swing gets the node's "not hosting"
// refusal and is retried against the fresh routing table — zero
// rejected in-flight queries, by construction rather than by luck.
// Recover rebuilds a crashed coordinator's routing table from node
// inventories, using slice digests (current vs at-install) to resolve
// double-hosted shards left behind by an interrupted migration.
//
// DESIGN.md ("Distributed serving") documents the trust model, the
// migration state machine and the failure-mode table; docs/OPERATIONS.md
// is the operator's handbook for running a coordinator and its nodes.
package cluster
