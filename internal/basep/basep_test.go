package basep

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustParams(t *testing.T, b, span uint64) Params {
	t.Helper()
	p, err := NewParams(b, span)
	if err != nil {
		t.Fatalf("NewParams(%d, %d): %v", b, span, err)
	}
	return p
}

func TestNewParamsDigitCounts(t *testing.T) {
	cases := []struct {
		b, span uint64
		digits  int
	}{
		{2, 1, 1},
		{2, 2, 2},
		{2, 255, 8},
		{2, 256, 9},
		{2, 1 << 32, 33},
		{10, 9, 1},
		{10, 10, 2},
		{10, 99999, 5},
		{10, 100000, 6},
		{16, 1 << 32, 9},
	}
	for _, c := range cases {
		p := mustParams(t, c.b, c.span)
		if p.Digits != c.digits {
			t.Errorf("NewParams(%d, %d).Digits = %d, want %d", c.b, c.span, p.Digits, c.digits)
		}
		// Every delta in [0, span) must be representable canonically.
		if _, err := Canonical(p, c.span-1); err != nil {
			t.Errorf("Canonical(B=%d span=%d, max delta): %v", c.b, c.span, err)
		}
	}
}

func TestNewParamsBadBase(t *testing.T) {
	if _, err := NewParams(1, 100); err != ErrBase {
		t.Errorf("base 1 should fail with ErrBase, got %v", err)
	}
	if _, err := NewParams(0, 100); err != ErrBase {
		t.Errorf("base 0 should fail with ErrBase, got %v", err)
	}
}

func TestNewParamsFullUint64(t *testing.T) {
	p := mustParams(t, 2, ^uint64(0))
	if p.Digits != 64 {
		t.Fatalf("full-domain binary needs 64 digits, got %d", p.Digits)
	}
	r, err := Canonical(p, ^uint64(0))
	if err != nil {
		t.Fatalf("Canonical(max uint64): %v", err)
	}
	if r.Value() != ^uint64(0) {
		t.Fatal("round trip of max uint64 failed")
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	f := func(delta uint32, b8 uint8) bool {
		b := uint64(b8%9) + 2 // base in [2, 10]
		p, err := NewParams(b, 1<<32)
		if err != nil {
			return false
		}
		r, err := Canonical(p, uint64(delta))
		if err != nil {
			return false
		}
		return r.Value() == uint64(delta) && r.IsCanonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalOverflow(t *testing.T) {
	p := Params{B: 10, Digits: 3} // representable: 0..999
	if _, err := Canonical(p, 999); err != nil {
		t.Errorf("999 should fit in 3 decimal digits: %v", err)
	}
	if _, err := Canonical(p, 1000); err != ErrOverflow {
		t.Errorf("1000 should overflow 3 decimal digits, got %v", err)
	}
}

func TestPreferredPreservesValue(t *testing.T) {
	// Every *valid* preferred representation must stand for the same delta.
	p := mustParams(t, 10, 100000)
	canon, _ := Canonical(p, 5555)
	for i := 0; i < p.M(); i++ {
		rep, valid := Preferred(canon, i)
		if !valid {
			continue
		}
		if rep.Value() != 5555 {
			t.Errorf("preferred rep %d stands for %d, want 5555", i, rep.Value())
		}
		if rep.IsCanonical() {
			t.Errorf("preferred rep %d should be non-canonical", i)
		}
	}
}

func TestPreferredPaperExample(t *testing.T) {
	// Section 5.1 running example: deltaT = 5555 in base 10, the publisher
	// returns digits corresponding to 5555 = 15 + 14*10 + 14*100 + 4*1000
	// (preferred representation at index 2) when deltaC = 2828.
	p := Params{B: 10, Digits: 4}
	canon, _ := Canonical(p, 5555)
	rep, valid := Preferred(canon, 2)
	if !valid {
		t.Fatal("rep 2 of 5555 must be valid")
	}
	want := []uint64{15, 14, 14, 4}
	for i, d := range want {
		if rep.Digits[i] != d {
			t.Fatalf("rep 2 digits = %v, want %v", rep.Digits, want)
		}
	}
}

func TestPreferredInvalid(t *testing.T) {
	// deltaT = 3 + 2B + 0B^2 + 3B^3: representation 1 is invalid because
	// digit 2 would become -1 (the paper's own example of invalidity).
	p := Params{B: 10, Digits: 4}
	canon, _ := Canonical(p, 3+2*10+0*100+3*1000)
	rep, valid := Preferred(canon, 1)
	if valid {
		t.Fatal("representation 1 must be invalid when digit 2 is 0")
	}
	if rep.Digits[2] != InvalidDigit {
		t.Fatal("invalid representation must mark the undefined digit")
	}
	// Representation 0 borrows from digit 1 (=2) and is valid.
	if _, valid := Preferred(canon, 0); !valid {
		t.Fatal("representation 0 must be valid when digit 1 > 0")
	}
}

func TestPreferredIndexPanics(t *testing.T) {
	p := Params{B: 10, Digits: 4}
	canon, _ := Canonical(p, 5555)
	for _, idx := range []int{-1, 3, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Preferred(canon, %d) should panic", idx)
				}
			}()
			Preferred(canon, idx)
		}()
	}
}

func TestSelectCanonicalFastPath(t *testing.T) {
	// deltaT = 5555, deltaC = 4321: digits dominate (5>=1,5>=2,5>=3,5>=4).
	p := Params{B: 10, Digits: 4}
	sel, err := Select(p, 5555, 4321)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Canonical || sel.Index != -1 {
		t.Fatalf("expected canonical selection, got %+v", sel)
	}
	wantE := []uint64{4, 3, 2, 1}
	for i := range wantE {
		if sel.DeltaE[i] != wantE[i] {
			t.Fatalf("DeltaE = %v, want %v", sel.DeltaE, wantE)
		}
	}
}

func TestSelectPaperExample(t *testing.T) {
	// Section 5.1: deltaT = 5555, deltaC = 2828. Canonical digits of
	// deltaC are (8,2,8,2); digit 0 and digit 2 exceed deltaT's, so a
	// non-canonical representation is required. The publisher should use a
	// representation under which deltaE is non-negative everywhere.
	p := Params{B: 10, Digits: 4}
	sel, err := Select(p, 5555, 2828)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Canonical {
		t.Fatal("canonical representation cannot dominate (8,2,8,2)")
	}
	if sel.DeltaT.Value() != 5555 {
		t.Fatalf("selected representation stands for %d, want 5555", sel.DeltaT.Value())
	}
	var sum, pow uint64 = 0, 1
	for i, e := range sel.DeltaE {
		sum += e * pow
		if i < len(sel.DeltaE)-1 {
			pow *= 10
		}
	}
	if sum != 5555-2828 {
		t.Fatalf("deltaE stands for %d, want %d", sum, 5555-2828)
	}
	// The paper picks imax = 2 here: 5+5*10+5*100 = 555 < 828+2*10+8*100 = ...
	// prefix at i=2: deltaT 555 vs deltaC 828 -> deficient; at i=3 equal
	// values 5555 vs 2828 -> not deficient. So Index must be 2.
	if sel.Index != 2 {
		t.Errorf("Index = %d, want 2", sel.Index)
	}
}

func TestSelectOrderError(t *testing.T) {
	p := Params{B: 10, Digits: 4}
	if _, err := Select(p, 100, 101); err != ErrOrder {
		t.Fatalf("deltaC > deltaT must fail with ErrOrder, got %v", err)
	}
}

func TestSelectEqualDeltas(t *testing.T) {
	p := Params{B: 10, Digits: 4}
	sel, err := Select(p, 2828, 2828)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sel.DeltaE {
		if e != 0 {
			t.Fatalf("equal deltas must give all-zero DeltaE, got %v", sel.DeltaE)
		}
	}
}

func TestSelectZero(t *testing.T) {
	p := Params{B: 2, Digits: 8}
	sel, err := Select(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Canonical {
		t.Fatal("0/0 must select canonical")
	}
}

// TestSelectLemma is the property-based check of the paper's lemma: for
// every 0 <= deltaC <= deltaT there exists a valid representation of
// deltaT whose digitwise difference from canonical deltaC is non-negative,
// and Select finds it.
func TestSelectLemma(t *testing.T) {
	bases := []uint64{2, 3, 4, 7, 10, 16}
	rng := rand.New(rand.NewSource(42))
	for _, b := range bases {
		p, err := NewParams(b, 1<<32)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 2000; trial++ {
			dt := rng.Uint64() % (1 << 32)
			dc := rng.Uint64() % (dt + 1)
			sel, err := Select(p, dt, dc)
			if err != nil {
				t.Fatalf("B=%d deltaT=%d deltaC=%d: %v", b, dt, dc, err)
			}
			if got := sel.DeltaT.Value(); got != dt {
				t.Fatalf("B=%d: representation value %d != deltaT %d", b, got, dt)
			}
			// deltaE digits must reconstruct deltaT when the user adds
			// canonical deltaC digits.
			for i := range sel.DeltaE {
				if sel.DeltaE[i]+sel.DeltaC.Digits[i] != sel.DeltaT.Digits[i] {
					t.Fatalf("B=%d: digit %d: deltaE+deltaC != deltaT", b, i)
				}
			}
			// Digit bounds from the lemma's proof: deltaE_0 < 2B, others
			// < 2B-1 (non-canonical case) or < B (canonical case).
			for i, e := range sel.DeltaE {
				if e >= 2*b {
					t.Fatalf("B=%d: deltaE[%d]=%d out of bound 2B", b, i, e)
				}
			}
		}
	}
}

func TestSelectExhaustiveSmallDomain(t *testing.T) {
	// Exhaustive verification over a small domain: every (deltaT, deltaC)
	// pair with deltaC <= deltaT < 625 in base 5.
	p, err := NewParams(5, 625)
	if err != nil {
		t.Fatal(err)
	}
	for dt := uint64(0); dt < 625; dt++ {
		for dc := uint64(0); dc <= dt; dc++ {
			sel, err := Select(p, dt, dc)
			if err != nil {
				t.Fatalf("deltaT=%d deltaC=%d: %v", dt, dc, err)
			}
			if sel.DeltaT.Value() != dt {
				t.Fatalf("deltaT=%d deltaC=%d: wrong representation", dt, dc)
			}
		}
	}
}

func TestUserExponents(t *testing.T) {
	p := Params{B: 10, Digits: 4}
	exp, err := UserExponents(p, 2828)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{8, 2, 8, 2}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("UserExponents = %v, want %v", exp, want)
		}
	}
	if _, err := UserExponents(p, 10000); err == nil {
		t.Fatal("out-of-range deltaC must error")
	}
}

func TestRepClone(t *testing.T) {
	p := Params{B: 10, Digits: 4}
	r, _ := Canonical(p, 1234)
	c := r.Clone()
	c.Digits[0] = 99
	if r.Digits[0] == 99 {
		t.Fatal("Clone must not alias digits")
	}
}

func BenchmarkSelect(b *testing.B) {
	p, _ := NewParams(2, 1<<32)
	rng := rand.New(rand.NewSource(1))
	dts := make([]uint64, 1024)
	dcs := make([]uint64, 1024)
	for i := range dts {
		dts[i] = rng.Uint64() % (1 << 32)
		dcs[i] = rng.Uint64() % (dts[i] + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Select(p, dts[i%1024], dcs[i%1024]); err != nil {
			b.Fatal(err)
		}
	}
}
