// Package basep implements the base-B polynomial representations at the
// heart of the Section 5.1 optimization of Pang et al. (SIGMOD 2005).
//
// Any delta in [0, U-L) is written as
//
//	delta = d_0 + d_1*B + d_2*B^2 + ... + d_m*B^m
//
// The canonical representation has 0 <= d_i < B. In addition the scheme
// defines m "preferred non-canonical representations" (one per index
// 0 <= i < m) obtained by borrowing: add B to digit 0, add B-1 to digits
// 1..i, subtract 1 from digit i+1. A representation is valid when every
// digit is non-negative.
//
// The publisher must express delta_t = U-r-1 in a representation whose
// digitwise difference from the canonical representation of delta_c = U-a
// is non-negative everywhere (so that every per-digit hash chain can be
// extended by the user). The paper's lemma guarantees that either the
// canonical representation works, or the preferred representation at
// imax — the largest index whose prefix value falls short of delta_c's
// prefix — does. Select implements that choice.
package basep

import (
	"errors"
	"fmt"
)

// MinBase is the smallest meaningful base. B must exceed 1 for the digit
// decomposition to terminate.
const MinBase = 2

// MaxDigits caps m+1. 64 digits at B=2 covers the full uint64 domain.
const MaxDigits = 64

var (
	// ErrBase reports a base smaller than MinBase.
	ErrBase = errors.New("basep: base must be >= 2")
	// ErrOverflow reports a delta that does not fit in m+1 canonical digits.
	ErrOverflow = errors.New("basep: delta does not fit in the digit budget")
	// ErrOrder reports Select called with deltaC > deltaT.
	ErrOrder = errors.New("basep: deltaC exceeds deltaT")
)

// Params fixes the base B and the number of digits m+1 used for a domain.
// All representations for one signed relation share the same Params.
type Params struct {
	B      uint64 // number base, >= 2
	Digits int    // m+1: number of digit positions (indices 0..m)
}

// NewParams derives Params for a domain span (U - L): the smallest m such
// that B^(m+1) > span, i.e. m = ceil(log_B(span)) as in the paper.
func NewParams(b uint64, span uint64) (Params, error) {
	if b < MinBase {
		return Params{}, ErrBase
	}
	digits := 1
	// Count how many base-b digits span-1 (the largest representable
	// delta) needs. Guard against overflow of pow.
	pow := b
	for digits < MaxDigits {
		if pow > span {
			break
		}
		// pow*b may overflow uint64; detect before multiplying.
		if pow > (^uint64(0))/b {
			digits++
			break
		}
		pow *= b
		digits++
	}
	return Params{B: b, Digits: digits}, nil
}

// M returns m, the highest digit index (Digits-1).
func (p Params) M() int { return p.Digits - 1 }

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.B < MinBase {
		return ErrBase
	}
	if p.Digits < 1 || p.Digits > MaxDigits {
		return fmt.Errorf("basep: digit count %d out of range [1,%d]", p.Digits, MaxDigits)
	}
	return nil
}

// Rep is a (possibly non-canonical) representation of a delta value:
// Digits[i] is the coefficient of B^i. Representation digits are always
// non-negative here; invalid preferred representations are reported via
// the ok return of Preferred rather than with negative digits.
type Rep struct {
	Params Params
	Digits []uint64
}

// Value returns the delta this representation stands for.
// It panics on overflow, which cannot happen for representations produced
// by this package from in-range deltas.
func (r Rep) Value() uint64 {
	var v, pow uint64 = 0, 1
	for i, d := range r.Digits {
		v += d * pow
		if i < len(r.Digits)-1 {
			pow *= r.Params.B
		}
	}
	return v
}

// Clone returns an independent copy of r.
func (r Rep) Clone() Rep {
	d := make([]uint64, len(r.Digits))
	copy(d, r.Digits)
	return Rep{Params: r.Params, Digits: d}
}

// Canonical returns the canonical base-B representation of delta:
// 0 <= digit < B everywhere.
func Canonical(p Params, delta uint64) (Rep, error) {
	if err := p.Validate(); err != nil {
		return Rep{}, err
	}
	digits := make([]uint64, p.Digits)
	for i := 0; i < p.Digits; i++ {
		digits[i] = delta % p.B
		delta /= p.B
	}
	if delta != 0 {
		return Rep{}, ErrOverflow
	}
	return Rep{Params: p, Digits: digits}, nil
}

// IsCanonical reports whether every digit is below B.
func (r Rep) IsCanonical() bool {
	for _, d := range r.Digits {
		if d >= r.Params.B {
			return false
		}
	}
	return true
}

// Preferred returns the i-th preferred non-canonical representation of the
// canonical representation canon (0 <= i < m), and whether it is valid.
// When invalid (the borrow would drive digit i+1 negative) the returned
// representation has digit i+1 replaced by the sentinel InvalidDigit; the
// owner still derives a digest for it by dropping the undefined component
// (Section 5.1, "Signature Construction by Owner").
func Preferred(canon Rep, i int) (Rep, bool) {
	m := canon.Params.M()
	if i < 0 || i >= m {
		panic(fmt.Sprintf("basep: preferred index %d out of range [0,%d)", i, m))
	}
	r := canon.Clone()
	b := canon.Params.B
	r.Digits[0] += b
	for j := 1; j <= i; j++ {
		r.Digits[j] += b - 1
	}
	valid := r.Digits[i+1] > 0
	if valid {
		r.Digits[i+1]--
	} else {
		r.Digits[i+1] = InvalidDigit
	}
	return r, valid
}

// InvalidDigit marks the undefined digit position of an invalid preferred
// representation. Digest construction skips this position.
const InvalidDigit = ^uint64(0)

// Selection is the outcome of the publisher's representation choice for a
// boundary record: which representation of deltaT it uses and the
// digitwise exponents deltaE the intermediate digests are iterated to.
type Selection struct {
	// Canonical is true when the canonical representation of deltaT
	// dominates deltaC digitwise and is used directly.
	Canonical bool
	// Index is the preferred-representation index imax when Canonical is
	// false; -1 otherwise.
	Index int
	// DeltaT is the chosen representation of deltaT.
	DeltaT Rep
	// DeltaE holds the per-digit exponents deltaE_i = DeltaT_i - deltaC_i,
	// all non-negative by the paper's lemma. The publisher publishes
	// h^{DeltaE[i]}(r|i); the user extends by deltaC_i.
	DeltaE []uint64
	// DeltaC is the canonical representation of deltaC (the part the user
	// can compute alone).
	DeltaC Rep
}

// Select chooses the representation of deltaT = (chain length for the
// hidden boundary key) that digitwise dominates the canonical
// representation of deltaC = (chain length the user will add). It returns
// ErrOrder when deltaC > deltaT — the situation a *cheating* publisher is
// in, which by design has no solution.
func Select(p Params, deltaT, deltaC uint64) (Selection, error) {
	if deltaC > deltaT {
		return Selection{}, ErrOrder
	}
	ct, err := Canonical(p, deltaT)
	if err != nil {
		return Selection{}, err
	}
	cc, err := Canonical(p, deltaC)
	if err != nil {
		return Selection{}, err
	}
	// Fast path: canonical representation already dominates digitwise.
	if dominates(ct, cc) {
		return Selection{
			Canonical: true,
			Index:     -1,
			DeltaT:    ct,
			DeltaE:    digitDiff(ct, cc),
			DeltaC:    cc,
		}, nil
	}
	// Otherwise pick imax: the largest index whose prefix value of deltaT
	// falls short of deltaC's prefix value, then advance to the first
	// valid preferred representation at or after it (the paper proves one
	// exists because deltaT >= deltaC).
	imax := largestDeficientPrefix(ct, cc)
	if imax < 0 {
		// Cannot happen when dominance failed and deltaT >= deltaC, but
		// guard against arithmetic bugs rather than panicking downstream.
		return Selection{}, fmt.Errorf("basep: internal: no deficient prefix for deltaT=%d deltaC=%d", deltaT, deltaC)
	}
	m := p.M()
	for ; imax < m; imax++ {
		rep, valid := Preferred(ct, imax)
		if !valid {
			continue
		}
		if !dominates(rep, cc) {
			continue
		}
		return Selection{
			Canonical: false,
			Index:     imax,
			DeltaT:    rep,
			DeltaE:    digitDiff(rep, cc),
			DeltaC:    cc,
		}, nil
	}
	return Selection{}, fmt.Errorf("basep: internal: no valid dominating representation for deltaT=%d deltaC=%d (lemma violation)", deltaT, deltaC)
}

// dominates reports whether a's digits are >= b's digits everywhere,
// treating InvalidDigit as absent (never dominating).
func dominates(a, b Rep) bool {
	for i := range a.Digits {
		if a.Digits[i] == InvalidDigit {
			return false
		}
		if a.Digits[i] < b.Digits[i] {
			return false
		}
	}
	return true
}

// digitDiff returns a-b per digit; caller guarantees dominance.
func digitDiff(a, b Rep) []uint64 {
	out := make([]uint64, len(a.Digits))
	for i := range out {
		out[i] = a.Digits[i] - b.Digits[i]
	}
	return out
}

// largestDeficientPrefix returns the largest index i such that
// sum_{j<=i} ct_j B^j < sum_{j<=i} cc_j B^j, or -1 if none.
func largestDeficientPrefix(ct, cc Rep) int {
	imax := -1
	var pt, pc, pow uint64 = 0, 0, 1
	for i := 0; i < len(ct.Digits); i++ {
		pt += ct.Digits[i] * pow
		pc += cc.Digits[i] * pow
		if pt < pc {
			imax = i
		}
		if i < len(ct.Digits)-1 {
			pow *= ct.Params.B
		}
	}
	return imax
}

// UserExponents returns the canonical digits of deltaC: how many extra
// iterations the user applies to each received intermediate digest. This
// is the only representation arithmetic the user performs.
func UserExponents(p Params, deltaC uint64) ([]uint64, error) {
	cc, err := Canonical(p, deltaC)
	if err != nil {
		return nil, err
	}
	return cc.Digits, nil
}
