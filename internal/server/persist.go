package server

import (
	"fmt"
	"sort"

	"vcqr/internal/partition"
	"vcqr/internal/store"
)

// Cold-start recovery: republish what the durable store replayed from
// disk — but only after proving it. The store is untrusted by
// construction (like every other tier), so each recovered slice runs
// the full install-time validation plus a condensed-signature
// self-check (AggIndex.VerifyRange over the owned region) against the
// owner's public key before a byte of it is served. A slice a
// corrupted or rolled-back disk cannot prove is dropped — durably, via
// the store's own log — and the coordinator re-installs it: an honest
// refusal, never a wrong answer.

// RecoverReport lists what cold-start recovery published and refused.
type RecoverReport struct {
	// Published lists slices that passed the self-check and now serve
	// ("relation/shard"); Refused lists dropped ones with reasons.
	Published, Refused []string
}

// RecoverHosted verifies and republishes every slice the configured
// durable store recovered. Call once at startup, before serving.
func (s *Server) RecoverHosted() (*RecoverReport, error) {
	if s.nstore == nil {
		return nil, fmt.Errorf("server: no durable store configured")
	}
	rep := &RecoverReport{}
	recovered := s.nstore.Recovered()
	names := make([]string, 0, len(recovered))
	for name := range recovered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rr := recovered[name]
		for _, sh := range rr.Shards {
			if err := s.recoverSlice(name, rr.Spec, sh); err != nil {
				rep.Refused = append(rep.Refused, fmt.Sprintf("%s/%d: %v", name, sh.Shard, err))
				// Make the refusal durable too, so the next restart does
				// not re-litigate a slice the coordinator has since
				// re-installed elsewhere. Best-effort: a failed drop only
				// costs a repeat refusal.
				s.nstore.Drop(name, sh.Shard)
				continue
			}
			rep.Published = append(rep.Published, fmt.Sprintf("%s/%d", name, sh.Shard))
		}
	}
	return rep, nil
}

// recoverSlice proves one recovered slice and publishes it. The
// publish path mirrors InstallShard's locking but appends nothing: the
// slice is already durable — that is where it came from.
func (s *Server) recoverSlice(name string, spec partition.Spec, sh store.RecoveredShard) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if sh.Shard < 0 || sh.Shard >= spec.K() {
		return fmt.Errorf("shard %d of %d", sh.Shard, spec.K())
	}
	sl := sh.Slice
	if err := s.validateSlice(spec, sh.Shard, sl); err != nil {
		return err
	}
	// The condensed-signature self-check: aggregate the owned region
	// [1, len-1) and verify it with one public-key exponentiation —
	// exactly the check an unmodified client would run on a VO drawn
	// from this slice. The two context records' signatures bind records
	// on other shards and are covered by the coordinator's seam checks,
	// as at install time.
	if sl.AggIndex() == nil {
		if err := sl.BuildAggIndex(s.h, s.pub); err != nil {
			return err
		}
	}
	ix := sl.AggIndex()
	n := len(sl.Recs)
	agg, err := ix.RangeAggregate(1, n-1)
	if err != nil {
		return err
	}
	if !ix.VerifyRange(1, n-1, agg) {
		return fmt.Errorf("recovered slice fails condensed-signature self-check")
	}

	s.partMu.RLock()
	defer s.partMu.RUnlock()
	s.nodeMu.Lock()
	defer s.nodeMu.Unlock()
	if s.parts[name] != nil {
		return fmt.Errorf("%w: %q (partitioned)", ErrAlreadyHosted, name)
	}
	if _, _, plain := s.store.View(name); plain {
		return fmt.Errorf("%w: %q", ErrAlreadyHosted, name)
	}
	nt := s.nodeRels[name]
	if nt == nil {
		nt = &nodeTable{
			spec:   spec,
			params: sl.Params,
			schema: sl.Schema,
			hosted: map[int]*hostedShard{},
		}
		s.nodeRels[name] = nt
	}
	nt.mu.Lock()
	defer nt.mu.Unlock()
	if spec.Version > nt.spec.Version {
		nt.spec = spec
	}
	s.store.AddNamed(shardName(name, sh.Shard), sl)
	hs := &hostedShard{installDigest: sh.InstallDigest, digest: partition.SliceDigest(s.h, sl)}
	hs.deltas.Store(sh.Deltas)
	nt.hosted[sh.Shard] = hs
	return nil
}

// storeStats snapshots the durable store for Stats; nil when the node
// runs memory-only.
func (s *Server) storeStats() *store.NodeStats {
	if s.nstore == nil {
		return nil
	}
	st := s.nstore.Stats()
	return &st
}
