// Package server is the concurrent publisher-serving subsystem of the
// Figure 3 deployment: the layer that turns the single-threaded
// engine.Publisher reproduction into a system that serves many users at
// once while the owner streams updates.
//
// Three mechanisms make it safe and fast under concurrency:
//
//   - Sharded copy-on-write epochs (Store): readers load an immutable
//     snapshot through an atomic pointer — no read locks — while writers
//     clone, validate, and swap. The paper's security argument is what
//     makes the old epoch servable during a cutover: any internally
//     consistent signed relation yields VOs that verify against the
//     owner's key, regardless of when the user reads them.
//
//   - Live delta ingest (Store.ApplyDelta): internal/delta batches are
//     applied to a clone with exactly the affected neighbourhood
//     re-validated, then cut over atomically. A rejected delta leaves
//     the published epoch untouched.
//
//   - A VO cache (voCache): assembling a VO costs boundary proofs,
//     per-entry digests, and an RSA aggregation; hot queries skip all of
//     it. Keys include the epoch, so a cutover invalidates implicitly —
//     stale entries age out of the LRU instead of needing purge logic.
//
// The HTTP front end (http.go) exposes query, batch-query, delta-ingest
// and health/stats endpoints and shuts down gracefully.
package server

import (
	"expvar"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/obs"
	"vcqr/internal/sig"
	"vcqr/internal/store"
)

// Config parameterizes a Server.
type Config struct {
	Hasher *hashx.Hasher
	Pub    *sig.PublicKey
	Policy accessctl.Policy
	// CacheSize bounds the VO cache in entries; 0 means DefaultCacheSize,
	// negative disables caching.
	CacheSize int
	// Individual switches the executor to one-signature-per-entry VOs
	// (the pre-Section-5.2 mode); default is condensed signatures.
	Individual bool
	// Obs is the stage-latency registry (internal/obs). Nil creates a
	// fresh enabled registry; pass obs.Disabled() to serve with
	// instrumentation off (the baseline of vcbench -exp obs).
	Obs *obs.Registry
	// SlowThreshold sets the slow-query log's retention threshold: 0
	// keeps the obs default (100ms), negative disables the log.
	SlowThreshold time.Duration
	// Store is the node-mode durable store (internal/store). When set,
	// every install, remove and delta commit is appended to its WAL —
	// and synced — before the node acknowledges it, and RecoverHosted
	// republishes what the store replayed at cold start. Nil keeps the
	// node memory-only (the pre-durability behaviour; tests and the
	// in-process modes).
	Store *store.NodeStore
}

// DefaultCacheSize is the VO-cache bound when Config.CacheSize is 0.
const DefaultCacheSize = 1024

// Server is a goroutine-safe publisher: an epoch store, a stateless
// query executor, and a VO cache. All exported methods may be called
// concurrently.
type Server struct {
	h      *hashx.Hasher
	pub    *sig.PublicKey
	policy accessctl.Policy
	exec   *engine.Publisher
	store  *Store
	cache  *voCache

	// parts registers the range-partitioned relations; their shard
	// slices live in the store under internal per-shard names.
	partMu sync.RWMutex
	parts  map[string]*partTable

	// nodeRels registers the shard slices hosted in node mode (node.go),
	// installed and removed one at a time by a cluster coordinator.
	nodeMu   sync.RWMutex
	nodeRels map[string]*nodeTable
	// stagedTokens mints tokens for two-phase distributed deltas.
	stagedTokens atomic.Uint64
	// nstore is the durable node store (nil = memory-only node);
	// installs counts slice transfers accepted over the wire — a
	// restarted node that recovered from its WAL serves with this still
	// at zero, the no-re-transfer signal store_smoke.sh asserts.
	nstore   *store.NodeStore
	installs atomic.Uint64

	queries, batches, deltasApplied, errors atomic.Uint64
	streams, streamChunks, streamBytes      atomic.Uint64
	shardStreams                            atomic.Uint64
	// subInflight gauges currently-open fan-out sub-streams — the load
	// signal leases report back to the coordinator's replica selection.
	subInflight atomic.Int64
	// lease is the node's view of its most recent coordinator lease
	// (node.go); advisory /statsz state, never consulted when serving.
	lease nodeLease

	// obs is the stage-latency registry; the h* fields are its hot-path
	// histograms, resolved once (nil when the registry is disabled).
	obs     *obs.Registry
	hCache  *obs.Histogram // cache_lookup
	hVO     *obs.Histogram // vo_assemble
	hQuery  *obs.Histogram // query_total
	hChunk  *obs.Histogram // stream_chunk
	hStream *obs.Histogram // stream_total
	hWire   *obs.Histogram // wire_encode
	hDelta  *obs.Histogram // delta_apply
}

// New creates a server. The executor publisher carries no relations of
// its own — every query pins an epoch snapshot from the store and runs
// through engine.ExecuteOn.
func New(cfg Config) *Server {
	if cfg.Hasher == nil {
		cfg.Hasher = hashx.New()
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	exec := engine.NewPublisher(cfg.Hasher, cfg.Pub, cfg.Policy)
	exec.Aggregate = !cfg.Individual
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.SlowThreshold != 0 {
		reg.Slow.SetThreshold(cfg.SlowThreshold)
	}
	exec.Obs = reg
	s := &Server{
		h:        cfg.Hasher,
		pub:      cfg.Pub,
		policy:   cfg.Policy,
		exec:     exec,
		store:    NewStore(cfg.Hasher, cfg.Pub),
		cache:    newVOCache(size),
		parts:    map[string]*partTable{},
		nodeRels: map[string]*nodeTable{},
		nstore:   cfg.Store,
		obs:      reg,
		hCache:   reg.Hist(obs.StageCacheLookup),
		hVO:      reg.Hist(obs.StageVOAssemble),
		hQuery:   reg.Hist(obs.StageQueryTotal),
		hChunk:   reg.Hist(obs.StageStreamChunk),
		hStream:  reg.Hist(obs.StageStreamTotal),
		hWire:    reg.Hist(obs.StageWireEncode),
		hDelta:   reg.Hist(obs.StageDeltaApply),
	}
	register(s)
	return s
}

// Obs exposes the server's stage-latency registry (for the /metrics
// handlers, vcquery's verifier wiring, and tests).
func (s *Server) Obs() *obs.Registry { return s.obs }

// Close unregisters the server from the process-wide expvar aggregate.
func (s *Server) Close() { unregister(s) }

// AddRelation publishes a relation snapshot (optionally validating every
// signature first, as a publisher receiving an untrusted feed must).
// The partition registry lock is held across the duplicate check and the
// store write so a concurrent AddPartition of the same name cannot
// interleave and silently shadow this relation in the query router.
func (s *Server) AddRelation(sr *core.SignedRelation, validate bool) error {
	s.partMu.Lock()
	defer s.partMu.Unlock()
	if s.parts[sr.Schema.Name] != nil || s.nodeFor(sr.Schema.Name) != nil {
		return fmt.Errorf("%w: %q", ErrAlreadyHosted, sr.Schema.Name)
	}
	return s.store.AddRelation(sr, validate)
}

// ApplyDelta ingests an owner update batch live and returns the new
// epoch. Concurrent queries are never blocked: in-flight ones finish on
// the pre-delta snapshot, later ones see the post-delta epoch, and both
// produce VOs that verify.
func (s *Server) ApplyDelta(d delta.Delta) (uint64, error) {
	sp := obs.StartSpan("")
	defer func() {
		s.hDelta.Observe(sp.Elapsed())
		s.obs.Slow.Finish(sp, "delta", fmt.Sprintf("relation=%s ops=%d", d.Relation, len(d.Ops)))
	}()
	var epoch uint64
	var err error
	if pt := s.partFor(d.Relation); pt != nil {
		epoch, err = s.applyPartitionedDelta(pt, d)
	} else {
		epoch, err = s.store.ApplyDelta(d)
	}
	if err != nil {
		s.errors.Add(1)
		return 0, err
	}
	s.deltasApplied.Add(1)
	return epoch, nil
}

// Query answers one select-project query for a role, serving from the
// VO cache when the same (relation, role, query, epoch) was assembled
// before.
func (s *Server) Query(role string, q engine.Query) (*engine.Result, error) {
	s.queries.Add(1)
	sp := obs.StartSpan("")
	defer func() {
		s.hQuery.Observe(sp.Elapsed())
		s.obs.Slow.Finish(sp, "query", fmt.Sprintf("role=%s relation=%s", role, q.Relation))
	}()
	if pt := s.partFor(q.Relation); pt != nil {
		return s.queryPartitioned(pt, role, q)
	}
	sr, epoch, ok := s.store.View(q.Relation)
	if !ok {
		s.errors.Add(1)
		return nil, fmt.Errorf("%w: %q", engine.ErrUnknownRelation, q.Relation)
	}
	return s.queryOn(sr, epoch, role, q)
}

// queryOn answers one query against a pinned epoch snapshot, through
// the VO cache.
func (s *Server) queryOn(sr *core.SignedRelation, epoch uint64, role string, q engine.Query) (*engine.Result, error) {
	key := cacheKey(epoch, role, q)
	t0 := time.Now()
	res, ok := s.cache.Get(key)
	s.hCache.ObserveSince(t0)
	if ok {
		return res, nil
	}
	t0 = time.Now()
	res, err := s.exec.ExecuteOn(sr, role, q)
	s.hVO.ObserveSince(t0)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	s.cache.Put(key, res)
	return res, nil
}

// QueryStream answers one query as a chunk stream with bounded memory:
// the VO is assembled and shipped ≤chunkRows entries at a time instead
// of being materialized. The relation's epoch snapshot is pinned when
// the stream is created and stays pinned (GC-rooted by the stream) until
// the stream is dropped, so a delta cutover mid-stream never mixes
// epochs — the whole stream verifies against the epoch that answered
// its first chunk. Streams bypass the VO cache: their point is not to
// hold whole results in memory.
//
// Chunks from this API are independently retainable (no buffer reuse) —
// in-process consumers may collect them. The HTTP /stream handler uses
// QueryStreamOpts with engine.StreamOpts.ReuseChunks instead, because
// it serializes each chunk before pulling the next.
func (s *Server) QueryStream(role string, q engine.Query, chunkRows int) (engine.ResultStream, error) {
	return s.QueryStreamOpts(role, q, engine.StreamOpts{ChunkRows: chunkRows})
}

// QueryStreamOpts is QueryStream with full stream options. Callers that
// set opts.ReuseChunks must treat every chunk as valid only until the
// next Next call (see engine.StreamOpts).
func (s *Server) QueryStreamOpts(role string, q engine.Query, opts engine.StreamOpts) (engine.ResultStream, error) {
	s.queries.Add(1)
	s.streams.Add(1)
	if pt := s.partFor(q.Relation); pt != nil {
		var prevUsed bool
		st, err := s.partitionedStream(pt, role, q, opts, &prevUsed)
		if err != nil {
			s.errors.Add(1)
			return nil, err
		}
		return s.timed(st), nil
	}
	sr, _, ok := s.store.View(q.Relation)
	if !ok {
		s.errors.Add(1)
		return nil, fmt.Errorf("%w: %q", engine.ErrUnknownRelation, q.Relation)
	}
	st, err := s.exec.ExecuteStreamOn(sr, role, q, opts)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	return s.timed(st), nil
}

// timed wraps a result stream so per-chunk assembly and whole-stream
// drain latency land in the registry. The wrapper changes no chunk
// bytes; it forwards Close so abandoning consumers still release
// fan-out workers.
func (s *Server) timed(st engine.ResultStream) *timedStream {
	return &timedStream{st: st, hChunk: s.hChunk, hTotal: s.hStream, start: time.Now()}
}

// timedStream decorates a ResultStream with stage timing: every Next is
// one stream_chunk observation (VO/stream assembly), and the terminal
// Next (io.EOF or error) closes the stream_total observation.
type timedStream struct {
	st             engine.ResultStream
	hChunk, hTotal *obs.Histogram
	start          time.Time
	assembleNS     int64
	finished       bool
}

func (t *timedStream) Next() (*engine.Chunk, error) {
	t0 := time.Now()
	c, err := t.st.Next()
	d := time.Since(t0)
	t.hChunk.Observe(d)
	t.assembleNS += int64(d)
	if err != nil && !t.finished {
		t.finished = true
		t.hTotal.ObserveSince(t.start)
	}
	return c, err
}

// Close forwards to the underlying stream (fan-out worker release).
func (t *timedStream) Close() error {
	if c, ok := t.st.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// breakdown reports the drain's stage split for timing trailers and the
// slow-query log: total wall time, assembly share, and the remainder
// (frame encode + flush + client backpressure on the serving path).
func (t *timedStream) breakdown() (total, assemble, remainder time.Duration) {
	total = time.Since(t.start)
	assemble = time.Duration(t.assembleNS)
	if total > assemble {
		remainder = total - assemble
	}
	return total, assemble, remainder
}

// accountStreamChunk records one shipped chunk frame in the stats.
func (s *Server) accountStreamChunk(bytes int) {
	s.streamChunks.Add(1)
	s.streamBytes.Add(uint64(bytes))
}

// pinned is one relation snapshot held for the duration of a batch.
type pinned struct {
	sr    *core.SignedRelation
	epoch uint64
	ok    bool
}

// QueryBatch answers several queries for one role in a single call.
// Each relation's snapshot is pinned on first use, so every query
// touching the same relation is answered on one epoch even if a delta
// cutover lands mid-batch — the cross-range consistency the batch API
// exists for. Per-item failures do not fail the batch: results[i] is
// nil exactly when errs[i] is non-nil.
func (s *Server) QueryBatch(role string, qs []engine.Query) ([]*engine.Result, []error) {
	s.batches.Add(1)
	sp := obs.StartSpan("")
	defer func() {
		s.obs.Slow.Finish(sp, "batch", fmt.Sprintf("role=%s queries=%d", role, len(qs)))
	}()
	results := make([]*engine.Result, len(qs))
	errs := make([]error, len(qs))
	pins := map[string]pinned{}
	for i, q := range qs {
		s.queries.Add(1)
		func() {
			defer s.hQuery.ObserveSince(time.Now())
			if pt := s.partFor(q.Relation); pt != nil {
				// Partitioned relations pin per item; single-shard items
				// still hit the per-shard VO cache.
				results[i], errs[i] = s.queryPartitioned(pt, role, q)
				return
			}
			pin, seen := pins[q.Relation]
			if !seen {
				pin.sr, pin.epoch, pin.ok = s.store.View(q.Relation)
				pins[q.Relation] = pin
			}
			if !pin.ok {
				s.errors.Add(1)
				errs[i] = fmt.Errorf("%w: %q", engine.ErrUnknownRelation, q.Relation)
				return
			}
			results[i], errs[i] = s.queryOn(pin.sr, pin.epoch, role, q)
		}()
	}
	return results, errs
}

// Epoch returns the store's cutover counter.
func (s *Server) Epoch() uint64 { return s.store.Epoch() }

// Stats is a point-in-time server snapshot, served on /statsz and
// aggregated into the process expvar.
type Stats struct {
	Queries, Batches, DeltasApplied, Errors uint64
	// Streams counts /stream queries; StreamChunks and StreamBytes
	// account the shipped frames — the per-chunk traffic a capacity
	// planner multiplies out instead of per-result peaks.
	Streams, StreamChunks, StreamBytes uint64
	Epoch                              uint64
	Relations                          map[string]int
	// Partitions carries the per-shard counters of every partitioned
	// relation: sub-queries and deltas routed per shard, per-shard
	// epochs, fan-out and hand-off-retry totals.
	Partitions map[string]PartitionStats `json:",omitempty"`
	// Hosted carries the node-mode inventory: one line per shard slice
	// this process hosts for a cluster coordinator, with the slice's
	// epoch, record count, committed distributed deltas, and served
	// sub-streams. ShardStreams totals the fan-out sub-streams served.
	Hosted       map[string][]NodeShardStat `json:",omitempty"`
	ShardStreams uint64                     `json:",omitempty"`
	// Installs counts shard slices accepted over the transfer wire.
	// Always rendered (no omitempty): a node that rejoined from its WAL
	// proves the zero-re-transfer claim with an explicit "Installs":0.
	Installs uint64
	// Store is the durable-store view (WAL appends, snapshots, cold
	// starts, replay depth); nil when the node runs memory-only.
	Store *store.NodeStats `json:",omitempty"`
	// Lease is the node-mode lease view: which coordinator last
	// heartbeated this node, at which routing epoch, and whether the
	// lease is still live — what scripts/replica_smoke.sh and operators
	// assert on. Nil outside node mode.
	Lease *NodeLeaseStat `json:",omitempty"`
	Cache CacheStats
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	rels := map[string]int{}
	for name, n := range s.store.Relations() {
		if strings.ContainsRune(name, 0) {
			continue // internal shard entry, reported under Partitions
		}
		rels[name] = n
	}
	s.partMu.RLock()
	for name, pt := range s.parts {
		total := 0
		for i := 0; i < pt.spec.K(); i++ {
			if sl, _, ok := s.store.View(shardName(name, i)); ok {
				total += sl.Len()
			}
		}
		rels[name] = total
	}
	s.partMu.RUnlock()
	return Stats{
		Queries:       s.queries.Load(),
		Batches:       s.batches.Load(),
		DeltasApplied: s.deltasApplied.Load(),
		Errors:        s.errors.Load(),
		Streams:       s.streams.Load(),
		StreamChunks:  s.streamChunks.Load(),
		StreamBytes:   s.streamBytes.Load(),
		Epoch:         s.store.Epoch(),
		Relations:     rels,
		Partitions:    s.partitionStats(),
		Hosted:        s.nodeStats(),
		ShardStreams:  s.shardStreams.Load(),
		Installs:      s.installs.Load(),
		Store:         s.storeStats(),
		Lease:         s.leaseStat(),
		Cache:         s.cache.Stats(),
	}
}

// --- process-wide expvar aggregation ---------------------------------

var (
	registryMu sync.Mutex
	registry   = map[*Server]struct{}{}
	publishVar sync.Once
)

// register adds the server to the expvar aggregate. The expvar name is
// published once per process (expvar panics on duplicates), so tests may
// create as many servers as they like.
func register(s *Server) {
	publishVar.Do(func() {
		expvar.Publish("vcqr_server", expvar.Func(func() any {
			registryMu.Lock()
			defer registryMu.Unlock()
			var agg Stats
			for srv := range registry {
				st := srv.Stats()
				agg.Queries += st.Queries
				agg.Batches += st.Batches
				agg.DeltasApplied += st.DeltasApplied
				agg.Errors += st.Errors
				agg.Streams += st.Streams
				agg.StreamChunks += st.StreamChunks
				agg.StreamBytes += st.StreamBytes
				// Node-mode servers count fan-out sub-streams; folding them
				// in keeps the aggregate meaningful for every serving mode.
				agg.ShardStreams += st.ShardStreams
				agg.Cache.Hits += st.Cache.Hits
				agg.Cache.Misses += st.Cache.Misses
				agg.Cache.Evictions += st.Cache.Evictions
				agg.Cache.Entries += st.Cache.Entries
			}
			return agg
		}))
	})
	registryMu.Lock()
	registry[s] = struct{}{}
	registryMu.Unlock()
}

func unregister(s *Server) {
	registryMu.Lock()
	delete(registry, s)
	registryMu.Unlock()
}
