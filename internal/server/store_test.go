package server_test

import (
	"sync"
	"testing"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/hashx"
	"vcqr/internal/relation"
	"vcqr/internal/server"
	"vcqr/internal/sig"
	"vcqr/internal/workload"
)

var (
	keyOnce  sync.Once
	ownerKey *sig.PrivateKey
)

func signKey(t testing.TB) *sig.PrivateKey {
	keyOnce.Do(func() {
		k, err := sig.Generate(sig.DefaultBits, nil)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		ownerKey = k
	})
	return ownerKey
}

// build signs an n-record uniform relation (single Payload column).
func build(t testing.TB, n int) (*hashx.Hasher, *core.SignedRelation) {
	t.Helper()
	h := hashx.New()
	rel, err := workload.Uniform(workload.UniformConfig{
		N: n, L: 0, U: 1 << 20, PayloadSize: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Build(h, signKey(t), p, rel)
	if err != nil {
		t.Fatal(err)
	}
	return h, sr
}

// ownerUpdate mutates one record on an owner copy and returns the delta
// a publisher would receive.
func ownerUpdate(t testing.TB, h *hashx.Hasher, ownerCopy *core.SignedRelation, idx int, payload []byte) delta.Delta {
	t.Helper()
	before := ownerCopy.Clone()
	rec := ownerCopy.Recs[idx]
	if _, err := ownerCopy.UpdateAttrs(h, signKey(t), rec.Key(), rec.Tuple.RowID,
		[]relation.Value{relation.BytesVal(payload)}); err != nil {
		t.Fatal(err)
	}
	return delta.Diff(before, ownerCopy)
}

func TestStoreViewAndEpochCutover(t *testing.T) {
	h, sr := build(t, 32)
	ownerCopy := sr.Clone()
	st := server.NewStore(h, signKey(t).Public())

	if _, _, ok := st.View("Uniform"); ok {
		t.Fatal("empty store should not host Uniform")
	}
	if err := st.AddRelation(sr, true); err != nil {
		t.Fatal(err)
	}
	old, epoch0, ok := st.View("Uniform")
	if !ok || epoch0 == 0 {
		t.Fatalf("View after add: ok=%v epoch=%d", ok, epoch0)
	}

	d := ownerUpdate(t, h, ownerCopy, 3, []byte("new-payload"))
	epoch1, err := st.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, epoch1)
	}

	// The pre-delta snapshot we pinned is untouched (copy-on-write): its
	// record 3 still carries the original payload.
	cur, _, _ := st.View("Uniform")
	if old.Recs[3].Tuple.Attrs[0].Equal(cur.Recs[3].Tuple.Attrs[0]) {
		t.Fatal("delta did not change the published record")
	}
	if !cur.Recs[3].Tuple.Attrs[0].Equal(relation.BytesVal([]byte("new-payload"))) {
		t.Fatal("published record does not carry the delta payload")
	}
}

func TestStoreRejectsTamperedDelta(t *testing.T) {
	h, sr := build(t, 16)
	ownerCopy := sr.Clone()
	st := server.NewStore(h, signKey(t).Public())
	if err := st.AddRelation(sr, false); err != nil {
		t.Fatal(err)
	}
	epoch0 := st.Epoch()

	d := ownerUpdate(t, h, ownerCopy, 2, []byte("legit"))
	// A man-in-the-middle swaps the payload without the owner's key: the
	// record's digest material no longer matches and apply must fail.
	for i := range d.Ops {
		if d.Ops[i].Kind == delta.OpUpsert && len(d.Ops[i].Rec.Tuple.Attrs) > 0 {
			d.Ops[i].Rec.Tuple.Attrs[0] = relation.BytesVal([]byte("evil"))
			break
		}
	}
	if _, err := st.ApplyDelta(d); err == nil {
		t.Fatal("tampered delta accepted")
	}
	if st.Epoch() != epoch0 {
		t.Fatal("rejected delta advanced the epoch")
	}
	cur, _, _ := st.View("Uniform")
	if !cur.Recs[2].Tuple.Attrs[0].Equal(sr.Recs[2].Tuple.Attrs[0]) {
		t.Fatal("rejected delta mutated the published relation")
	}
}

func TestStoreDeltaKeepsSiblingEpoch(t *testing.T) {
	h, uni := build(t, 8)
	ownerCopy := uni.Clone()
	emp, err := workload.Employees(workload.EmployeeConfig{
		N: 8, L: 0, U: 1 << 20, PhotoSize: 8, HiddenPct: 0, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewParams(0, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	empSR, err := core.Build(h, signKey(t), p, emp)
	if err != nil {
		t.Fatal(err)
	}

	st := server.NewStore(h, signKey(t).Public())
	if err := st.AddRelation(uni, false); err != nil {
		t.Fatal(err)
	}
	if err := st.AddRelation(empSR, false); err != nil {
		t.Fatal(err)
	}
	_, empEpoch0, _ := st.View("Emp")

	if _, err := st.ApplyDelta(ownerUpdate(t, h, ownerCopy, 2, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if _, empEpoch1, _ := st.View("Emp"); empEpoch1 != empEpoch0 {
		t.Fatalf("delta to Uniform bumped Emp's epoch %d -> %d (would invalidate its cache)", empEpoch0, empEpoch1)
	}
	if _, uniEpoch, _ := st.View("Uniform"); uniEpoch <= empEpoch0 {
		t.Fatalf("Uniform epoch %d did not advance past %d", uniEpoch, empEpoch0)
	}
}

func TestStoreDeltaForUnhostedRelation(t *testing.T) {
	h, _ := build(t, 4)
	st := server.NewStore(h, signKey(t).Public())
	if _, err := st.ApplyDelta(delta.Delta{Relation: "nope"}); err == nil {
		t.Fatal("delta for unhosted relation accepted")
	}
}
