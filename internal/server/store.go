package server

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/hashx"
	"vcqr/internal/sig"
)

// numShards spreads unrelated relations across independent writer locks
// so a delta landing on one relation never stalls ingest on another.
// Readers are lock-free regardless, so the count only bounds writer
// parallelism; 16 is plenty for a per-process publisher.
const numShards = 16

// relEntry pairs a hosted relation with the value of the global cutover
// counter at its last change — the per-relation epoch the VO cache keys
// on. Stamping epochs per relation (not per shard) means a delta to one
// relation never invalidates cache entries of a shard sibling.
type relEntry struct {
	sr    *core.SignedRelation
	epoch uint64
}

// snapshot is one immutable epoch of a shard: the relation set as of the
// last cutover. Readers load it atomically and keep querying it even
// while a writer prepares the next epoch — the paper's guarantee makes
// this safe, because a VO assembled from any internally consistent signed
// relation verifies against the owner's key no matter when it was read.
type snapshot struct {
	rels map[string]relEntry
}

// shard is one lock domain of the store. The atomic pointer is the
// reader path; the mutex serializes writers only.
type shard struct {
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]
}

// Store holds signed relations in sharded copy-on-write epochs. Readers
// call View and get an immutable snapshot without taking any lock;
// writers (AddRelation, ApplyDelta) clone what they change, validate the
// clone, and publish a new epoch with a single atomic swap. A query that
// started on epoch e keeps its snapshot alive (GC-rooted) until it
// finishes, so updates never invalidate in-flight VO assembly.
type Store struct {
	h      *hashx.Hasher
	pub    *sig.PublicKey
	shards [numShards]shard
	// epochs counts cutovers across all shards; it feeds stats and the
	// VO-cache key, so any swap anywhere advances it.
	epochs atomic.Uint64
}

// NewStore creates an empty store validating against the owner's key.
func NewStore(h *hashx.Hasher, pub *sig.PublicKey) *Store {
	s := &Store{h: h, pub: pub}
	for i := range s.shards {
		s.shards[i].snap.Store(&snapshot{rels: map[string]relEntry{}})
	}
	return s
}

// shardFor maps a relation name to its lock domain.
func (s *Store) shardFor(name string) *shard {
	f := fnv.New32a()
	f.Write([]byte(name))
	return &s.shards[f.Sum32()%numShards]
}

// View returns the relation's current snapshot and its per-relation
// epoch, or false if the relation is not hosted. The returned relation
// is immutable: the store never mutates a published snapshot, it only
// swaps in successors.
func (s *Store) View(name string) (*core.SignedRelation, uint64, bool) {
	e, ok := s.shardFor(name).snap.Load().rels[name]
	return e.sr, e.epoch, ok
}

// AddRelation validates (optionally) and publishes a relation as a new
// epoch of its shard. The caller must not retain or mutate sr afterwards
// — it belongs to the store's published snapshot from here on.
func (s *Store) AddRelation(sr *core.SignedRelation, validate bool) error {
	if validate {
		if err := sr.Validate(s.h, s.pub); err != nil {
			return fmt.Errorf("server: ingest validation: %w", err)
		}
	}
	_ = s.AddNamed(sr.Schema.Name, sr)
	return nil
}

// AddNamed publishes a relation snapshot under an explicit store key,
// returning the new epoch. The partition layer uses it to host each
// shard slice of one relation as an independent entry — giving every
// shard its own epoch and writer lock. No validation happens here:
// slices cannot be validated in isolation (their edge signatures bind
// records the slice does not hold), so callers validate the whole set
// first (partition.Set.Validate) or at the delta layer.
//
// Publishing builds the snapshot's crypto index (core.AggIndex) when it
// does not carry one: the O(n) cost lands here, at publish time, so
// every query on the epoch gets O(log n) signature aggregation and every
// delta cutover derives the successor index incrementally. A build
// failure (malformed signature bytes on an unvalidated feed) publishes
// without an index — the correct-but-slow path.
func (s *Store) AddNamed(name string, sr *core.SignedRelation) uint64 {
	if sr.AggIndex() == nil {
		_ = sr.BuildAggIndex(s.h, s.pub)
	}
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.publish(sh, name, sr)
}

// ApplyDelta applies an owner update batch to the named relation live:
// the current epoch is cloned, the delta applied and its touched
// neighbourhood re-validated against the owner's key (delta.Apply), and
// the result cut over atomically. Queries in flight keep verifying on
// the old epoch; queries arriving after the swap see the new one. On any
// validation failure the published epoch is untouched.
func (s *Store) ApplyDelta(d delta.Delta) (uint64, error) {
	sh := s.shardFor(d.Relation)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.snap.Load().rels[d.Relation]
	if !ok {
		return 0, fmt.Errorf("server: delta for unhosted relation %q", d.Relation)
	}
	next := cur.sr.Clone()
	if err := delta.Apply(s.h, s.pub, next, d); err != nil {
		return 0, fmt.Errorf("server: delta rejected: %w", err)
	}
	return s.publish(sh, d.Relation, next), nil
}

// publish swaps in a new shard snapshot with the given relation stamped
// at a fresh epoch; sibling relations keep their epochs. Must be called
// with the shard's writer lock held.
func (s *Store) publish(sh *shard, name string, sr *core.SignedRelation) uint64 {
	old := sh.snap.Load()
	rels := make(map[string]relEntry, len(old.rels)+1)
	for k, v := range old.rels {
		rels[k] = v
	}
	epoch := s.epochs.Add(1)
	rels[name] = relEntry{sr: sr, epoch: epoch}
	sh.snap.Store(&snapshot{rels: rels})
	return epoch
}

// Remove unpublishes a store entry, reporting whether it existed. The
// removed snapshot stays valid for readers that already pinned it —
// removal swaps the shard's map, it never mutates a published epoch —
// which is what lets a migration drain a shard from a node while
// in-flight streams finish on their pinned slices.
func (s *Store) Remove(name string) bool {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.snap.Load()
	if _, ok := old.rels[name]; !ok {
		return false
	}
	rels := make(map[string]relEntry, len(old.rels)-1)
	for k, v := range old.rels {
		if k != name {
			rels[k] = v
		}
	}
	s.epochs.Add(1)
	sh.snap.Store(&snapshot{rels: rels})
	return true
}

// Epoch returns the global cutover counter.
func (s *Store) Epoch() uint64 { return s.epochs.Load() }

// Relations lists the hosted relation names and record counts across all
// shards (one consistent snapshot per shard, not across shards — fine
// for stats).
func (s *Store) Relations() map[string]int {
	out := map[string]int{}
	for i := range s.shards {
		for name, e := range s.shards[i].snap.Load().rels {
			out[name] = e.sr.Len()
		}
	}
	return out
}
