package server_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vcqr/internal/engine"
	"vcqr/internal/wire"
)

func TestServerHTTPStreamVerifyRoundTrip(t *testing.T) {
	s, _, v, role := newServer(t, 64)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &wire.Client{BaseURL: ts.URL}

	q := engine.Query{Relation: "Uniform", KeyLo: 1}
	var got []uint64
	stats, err := client.QueryStream(v, role, "all", q, 8, func(r engine.Row) error {
		got = append(got, r.Key)
		return nil
	})
	if err != nil {
		t.Fatalf("stream rejected: %v", err)
	}
	if stats.Rows != 64 || len(got) != 64 {
		t.Fatalf("stream released %d rows (callback saw %d), want 64", stats.Rows, len(got))
	}
	// 64 rows at 8 per chunk: header + 8 entry chunks + footer.
	if stats.Chunks != 10 {
		t.Fatalf("stream used %d chunks, want 10", stats.Chunks)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("rows released out of key order")
		}
	}

	// Per-chunk accounting landed in the stats.
	st := s.Stats()
	if st.Streams != 1 {
		t.Fatalf("Streams = %d, want 1", st.Streams)
	}
	if st.StreamChunks != uint64(stats.Chunks) {
		t.Fatalf("StreamChunks = %d, want %d", st.StreamChunks, stats.Chunks)
	}
	if st.StreamBytes != uint64(stats.Bytes) {
		t.Fatalf("StreamBytes = %d, want %d", st.StreamBytes, stats.Bytes)
	}

	// Pre-stream failures use the HTTP status, not a mangled stream.
	if _, err := client.QueryStream(v, role, "all", engine.Query{Relation: "nope", KeyLo: 1}, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "publisher returned") {
		t.Fatalf("unknown relation over /stream = %v", err)
	}
}

// TestStreamPinsEpochAcrossDelta interleaves a delta cutover with an
// in-flight stream: the stream was created on the pre-delta epoch and
// every subsequent chunk must come from that same snapshot, or the
// signature chain would mix epochs and fail. Served directly (no HTTP)
// so the interleaving is deterministic.
func TestStreamPinsEpochAcrossDelta(t *testing.T) {
	s, h, v, role := newServer(t, 64)

	q := engine.Query{Relation: "Uniform", KeyLo: 1}
	st, err := s.QueryStream("all", q, 4)
	if err != nil {
		t.Fatal(err)
	}
	sv := v.NewStreamVerifier(q, role)

	// Consume the header and the first entries chunk on the old epoch.
	for i := 0; i < 2; i++ {
		c, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sv.Consume(c); err != nil {
			t.Fatalf("chunk %d rejected: %v", i, err)
		}
	}

	// Cut over to a new epoch mid-stream: mutate a record in the middle
	// of the streamed range on an owner copy and apply the diff.
	_, owner := build(t, 64)
	epochBefore := s.Epoch()
	d := ownerUpdate(t, h, owner, 32, []byte("mid-stream update"))
	if _, err := s.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() == epochBefore {
		t.Fatal("delta did not advance the epoch")
	}

	// The rest of the stream must still verify — on the pinned epoch.
	rows := 0
	for {
		c, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		released, err := sv.Consume(c)
		if err != nil {
			t.Fatalf("post-delta chunk rejected: %v", err)
		}
		rows += len(released)
	}
	if err := sv.Finish(); err != nil {
		t.Fatal(err)
	}

	// A fresh query sees the post-delta epoch and verifies too.
	res, err := s.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyResult(q, role, res); err != nil {
		t.Fatalf("post-delta query rejected: %v", err)
	}
}

// TestConcurrentStreamsAndDeltas hammers /stream from several clients
// while deltas cut over continuously; every stream must verify end to
// end on whatever epoch it pinned. Run with -race.
func TestConcurrentStreamsAndDeltas(t *testing.T) {
	s, h, v, role := newServer(t, 64)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		streamers = 4
		perWorker = 5
		deltas    = 10
	)
	var wg sync.WaitGroup
	errc := make(chan error, streamers*perWorker+deltas)

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, owner := build(t, 64)
		for i := 0; i < deltas; i++ {
			d := ownerUpdate(t, h, owner, 1+i%62, []byte{byte(i)})
			if _, err := s.ApplyDelta(d); err != nil {
				errc <- err
				return
			}
		}
	}()

	q := engine.Query{Relation: "Uniform", KeyLo: 1}
	for w := 0; w < streamers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &wire.Client{BaseURL: ts.URL}
			for i := 0; i < perWorker; i++ {
				stats, err := client.QueryStream(v, role, "all", q, 4, nil)
				if err != nil {
					errc <- err
					return
				}
				if stats.Rows != 64 {
					errc <- io.ErrShortBuffer
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent stream/delta failure: %v", err)
	}

	st := s.Stats()
	if st.Streams != streamers*perWorker {
		t.Fatalf("Streams = %d, want %d", st.Streams, streamers*perWorker)
	}
	if st.DeltasApplied != deltas {
		t.Fatalf("DeltasApplied = %d, want %d", st.DeltasApplied, deltas)
	}
}

// TestStreamRowBudgetClamped checks the server clamps absurd chunk-row
// requests instead of materializing.
func TestStreamRowBudgetClamped(t *testing.T) {
	s, _, _, _ := newServer(t, 8)
	st, err := s.QueryStream("all", engine.Query{Relation: "Uniform", KeyLo: 1}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Entries) > engine.MaxChunkRows {
			t.Fatalf("chunk carries %d entries, cap %d", len(c.Entries), engine.MaxChunkRows)
		}
	}
}
