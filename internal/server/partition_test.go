package server_test

import (
	"errors"
	"net/http/httptest"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/core"
	"vcqr/internal/delta"
	"vcqr/internal/engine"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/server"
	"vcqr/internal/verify"
	"vcqr/internal/wire"
)

// partFix is a running partitioned server plus the owner-side master
// copy used to mint deltas and the client-side verifier.
type partFix struct {
	h     *hashx.Hasher
	s     *server.Server
	set   *partition.Set
	owner *core.SignedRelation // owner's evolving master (global chain)
	v     *verify.Verifier
	role  accessctl.Role
}

func newPartServer(t testing.TB, n, k int) *partFix {
	t.Helper()
	h, sr := build(t, n)
	set, err := partition.Split(sr, k)
	if err != nil {
		t.Fatal(err)
	}
	role := accessctl.Role{Name: "all"}
	s := server.New(server.Config{
		Hasher: h,
		Pub:    signKey(t).Public(),
		Policy: accessctl.NewPolicy(role),
	})
	t.Cleanup(s.Close)
	if err := s.AddPartition(set, true); err != nil {
		t.Fatal(err)
	}
	return &partFix{
		h:     h,
		s:     s,
		set:   set,
		owner: sr.Clone(),
		v:     verify.New(h, signKey(t).Public(), sr.Params, sr.Schema),
		role:  role,
	}
}

// TestPartitionedStreamEndToEnd is the acceptance path: a range query
// spanning >=3 shards round-trips over HTTP /stream and verifies with
// the shard-aware verifier.
func TestPartitionedStreamEndToEnd(t *testing.T) {
	f := newPartServer(t, 96, 4)
	ts := httptest.NewServer(f.s.Handler())
	defer ts.Close()
	client := &wire.Client{BaseURL: ts.URL}

	// Span shards 0..2 (three shards): from the first record up to the
	// middle of shard 2.
	sl2 := f.set.Slices[2]
	q := engine.Query{
		Relation: "Uniform",
		KeyLo:    1,
		KeyHi:    sl2.Recs[len(sl2.Recs)/2].Key(),
	}
	sv, err := f.v.NewShardStreamVerifier(f.set.Spec, q, f.role)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	stats, err := client.QueryStreamWith(sv, "all", q, 8, func(engine.Row) error {
		rows++
		return nil
	})
	if err != nil {
		t.Fatalf("stream rejected: %v", err)
	}
	if rows != stats.Rows || rows == 0 {
		t.Fatalf("row accounting: fn saw %d, stats %d", rows, stats.Rows)
	}
	// Cross-check against the materialized path through the same server.
	res, err := client.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	verified, err := f.v.VerifyResult(q, f.role, res)
	if err != nil {
		t.Fatalf("materialized partitioned result rejected: %v", err)
	}
	if len(verified) != rows {
		t.Fatalf("stream verified %d rows, materialized %d", rows, len(verified))
	}

	st := f.s.Stats()
	ps, ok := st.Partitions["Uniform"]
	if !ok || len(ps.Shards) != 4 {
		t.Fatalf("partition stats missing: %+v", st.Partitions)
	}
	if ps.Fanouts < 2 {
		t.Fatalf("fan-out counter = %d, want >= 2", ps.Fanouts)
	}
	for i := 0; i < 3; i++ {
		if ps.Shards[i].Queries == 0 {
			t.Fatalf("shard %d has no routed queries: %+v", i, ps.Shards)
		}
	}
	if st.Relations["Uniform"] != 96 {
		t.Fatalf("stats report %d records, want 96", st.Relations["Uniform"])
	}
}

// mintDelta routes an owner-side attribute update through delta.Diff —
// the exact batch a publisher would receive.
func (f *partFix) mintDelta(t testing.TB, idx int, payload []byte) delta.Delta {
	t.Helper()
	before := f.owner.Clone()
	rec := f.owner.Recs[idx]
	if _, err := f.owner.UpdateAttrs(f.h, signKey(t), rec.Key(), rec.Tuple.RowID,
		[]relation.Value{relation.BytesVal(payload)}); err != nil {
		t.Fatal(err)
	}
	return delta.Diff(before, f.owner)
}

// globalIndexOfShardRecord maps shard s's owned record r (1-based within
// the slice) to its index in the owner's master sequence.
func (f *partFix) globalIndexOf(t testing.TB, key, rowID uint64) int {
	t.Helper()
	for i, rec := range f.owner.Recs {
		if rec.Key() == key && rec.Tuple.RowID == rowID {
			return i
		}
	}
	t.Fatalf("record (%d,%d) not in master", key, rowID)
	return -1
}

// TestPartitionedDeltaIsolation: a delta interior to shard 1 must bump
// only shard 1's epoch, leave the other shards' cached VOs hot, and
// queries spanning the delta'd shard must still verify.
func TestPartitionedDeltaIsolation(t *testing.T) {
	f := newPartServer(t, 96, 4)

	// One cacheable point query per shard.
	queries := make([]engine.Query, 4)
	for i := range queries {
		sl := f.set.Slices[i]
		mid := sl.Recs[len(sl.Recs)/2]
		queries[i] = engine.Query{Relation: "Uniform", KeyLo: mid.Key(), KeyHi: mid.Key()}
	}
	run := func() {
		for i, q := range queries {
			res, err := f.s.Query("all", q)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if _, err := f.v.VerifyResult(q, f.role, res); err != nil {
				t.Fatalf("query %d rejected: %v", i, err)
			}
		}
	}
	run() // cold: 4 misses
	run() // hot: 4 hits
	before := f.s.Stats()

	// Interior update to shard 1: pick the middle owned record of slice 1
	// (its re-sign neighbourhood stays inside the shard).
	sl1 := f.set.Slices[1]
	midRec := sl1.Recs[len(sl1.Recs)/2]
	d := f.mintDelta(t, f.globalIndexOf(t, midRec.Key(), midRec.Tuple.RowID), []byte("v2"))
	if _, err := f.s.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}

	run() // shard 1 re-assembles; shards 0, 2, 3 must hit cache
	after := f.s.Stats()
	misses := after.Cache.Misses - before.Cache.Misses
	hits := after.Cache.Hits - before.Cache.Hits
	if misses != 1 {
		t.Fatalf("delta to shard 1 caused %d cache misses, want exactly 1", misses)
	}
	if hits != 3 {
		t.Fatalf("expected 3 cache hits after isolated delta, got %d", hits)
	}
	ps := after.Partitions["Uniform"]
	if ps.Shards[1].Deltas != 1 {
		t.Fatalf("shard 1 delta counter = %d", ps.Shards[1].Deltas)
	}
	for _, i := range []int{0, 2, 3} {
		if ps.Shards[i].Deltas != 0 {
			t.Fatalf("shard %d saw a delta", i)
		}
		if ps.Shards[i].Epoch != before.Partitions["Uniform"].Shards[i].Epoch {
			t.Fatalf("shard %d epoch moved on an interior delta to shard 1", i)
		}
	}
}

// TestPartitionedBoundaryDelta: an update to a shard's edge record
// re-signs across the hand-off; both shards and their mirrors must stay
// consistent, and cross-shard queries must keep verifying.
func TestPartitionedBoundaryDelta(t *testing.T) {
	f := newPartServer(t, 64, 4)

	// Shard 1's first owned record: its neighbourhood reaches shard 0.
	edge := f.set.Slices[1].Recs[1]
	d := f.mintDelta(t, f.globalIndexOf(t, edge.Key(), edge.Tuple.RowID), []byte("edge-v2"))
	if _, err := f.s.ApplyDelta(d); err != nil {
		t.Fatalf("boundary delta rejected: %v", err)
	}

	// Full-range query across all shards must verify post-delta.
	q := engine.Query{Relation: "Uniform"}
	res, err := f.s.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.v.VerifyResult(q, f.role, res)
	if err != nil {
		t.Fatalf("cross-shard query rejected after boundary delta: %v", err)
	}
	if len(rows) != 64 {
		t.Fatalf("got %d rows, want 64", len(rows))
	}
	ps := f.s.Stats().Partitions["Uniform"]
	if ps.Shards[0].Deltas+ps.Shards[1].Deltas < 2 {
		t.Fatalf("boundary delta should touch both shards: %+v", ps.Shards)
	}
}

// TestPartitionedInsertDelete: inserts and deletes route to the owning
// shard and keep the partitioned publication verifiable end to end.
func TestPartitionedInsertDelete(t *testing.T) {
	f := newPartServer(t, 64, 4)

	// Insert a key owned by shard 2.
	lo, hi := f.set.Spec.Span(2)
	key := (lo + hi) / 2
	before := f.owner.Clone()
	if _, err := f.owner.Insert(f.h, signKey(t), relation.Tuple{
		Key: key, Attrs: []relation.Value{relation.BytesVal([]byte("inserted"))},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.s.ApplyDelta(delta.Diff(before, f.owner)); err != nil {
		t.Fatalf("insert delta rejected: %v", err)
	}

	// Delete a record owned by shard 0.
	victim := f.set.Slices[0].Recs[2]
	before = f.owner.Clone()
	if _, err := f.owner.Delete(f.h, signKey(t), victim.Key(), victim.Tuple.RowID); err != nil {
		t.Fatal(err)
	}
	if _, err := f.s.ApplyDelta(delta.Diff(before, f.owner)); err != nil {
		t.Fatalf("delete delta rejected: %v", err)
	}

	q := engine.Query{Relation: "Uniform"}
	res, err := f.s.Query("all", q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.v.VerifyResult(q, f.role, res)
	if err != nil {
		t.Fatalf("post-delta cross-shard query rejected: %v", err)
	}
	if len(rows) != 64 {
		t.Fatalf("got %d rows, want 64 (one insert, one delete)", len(rows))
	}
}

// TestPartitionedShardUnderflow: a delta draining a shard of its last
// owned record is rejected by name and leaves every epoch untouched.
func TestPartitionedShardUnderflow(t *testing.T) {
	// 4 records, 4 shards: each shard owns exactly one record.
	f := newPartServer(t, 4, 4)
	victim := f.set.Slices[1].Recs[1]
	before := f.owner.Clone()
	if _, err := f.owner.Delete(f.h, signKey(t), victim.Key(), victim.Tuple.RowID); err != nil {
		t.Fatal(err)
	}
	epochBefore := f.s.Stats().Epoch
	_, err := f.s.ApplyDelta(delta.Diff(before, f.owner))
	if !errors.Is(err, server.ErrShardUnderflow) {
		t.Fatalf("draining delta: got %v, want ErrShardUnderflow", err)
	}
	if f.s.Stats().Epoch != epochBefore {
		t.Fatal("rejected delta advanced an epoch")
	}
}

// TestPartitionedStreamPinsEpochs: a stream opened before a delta keeps
// verifying against its pinned per-shard epochs even while the delta
// cuts over mid-drain.
func TestPartitionedStreamPinsEpochs(t *testing.T) {
	f := newPartServer(t, 96, 4)
	q := engine.Query{Relation: "Uniform"}
	st, err := f.s.QueryStream("all", q, 8)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := f.v.NewShardStreamVerifier(f.set.Spec, q, f.role)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the header, then land a delta on shard 2 mid-stream.
	c, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Consume(c); err != nil {
		t.Fatal(err)
	}
	sl2 := f.set.Slices[2]
	midRec := sl2.Recs[len(sl2.Recs)/2]
	d := f.mintDelta(t, f.globalIndexOf(t, midRec.Key(), midRec.Tuple.RowID), []byte("mid-stream"))
	if _, err := f.s.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	// The rest of the stream must still verify: its slices were pinned.
	for {
		c, err := st.Next()
		if err != nil {
			break
		}
		if _, err := sv.Consume(c); err != nil {
			t.Fatalf("pinned stream rejected after concurrent delta: %v", err)
		}
	}
	if err := sv.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedRejectsDuplicateHosting: one name cannot be both a
// plain relation and a partition.
func TestPartitionedRejectsDuplicateHosting(t *testing.T) {
	f := newPartServer(t, 16, 2)
	_, sr := build(t, 16)
	if err := f.s.AddRelation(sr, false); !errors.Is(err, server.ErrAlreadyHosted) {
		t.Fatalf("duplicate hosting: got %v, want ErrAlreadyHosted", err)
	}
	set2, err := partition.Split(sr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.s.AddPartition(set2, false); !errors.Is(err, server.ErrAlreadyHosted) {
		t.Fatalf("duplicate partition hosting: got %v, want ErrAlreadyHosted", err)
	}

	// And the reverse order: a partition cannot shadow a relation that is
	// already hosted plain.
	h2, sr2 := build(t, 16)
	plain := server.New(server.Config{
		Hasher: h2,
		Pub:    signKey(t).Public(),
		Policy: accessctl.NewPolicy(accessctl.Role{Name: "all"}),
	})
	t.Cleanup(plain.Close)
	if err := plain.AddRelation(sr2, false); err != nil {
		t.Fatal(err)
	}
	if err := plain.AddPartition(set2, false); !errors.Is(err, server.ErrAlreadyHosted) {
		t.Fatalf("partition shadowing a plain relation: got %v, want ErrAlreadyHosted", err)
	}
}

// TestPartitionedBatch: batch items against a partitioned relation are
// answered per shard and verify independently.
func TestPartitionedBatch(t *testing.T) {
	f := newPartServer(t, 64, 4)
	var qs []engine.Query
	for i := 0; i < 4; i++ {
		lo, hi := f.set.Spec.Span(i)
		qs = append(qs, engine.Query{Relation: "Uniform", KeyLo: lo, KeyHi: hi})
	}
	results, errs := f.s.QueryBatch("all", qs)
	total := 0
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("batch item %d: %v", i, errs[i])
		}
		rows, err := f.v.VerifyResult(qs[i], f.role, res)
		if err != nil {
			t.Fatalf("batch item %d rejected: %v", i, err)
		}
		total += len(rows)
	}
	if total != 64 {
		t.Fatalf("batch verified %d rows total, want 64", total)
	}
}
