package server_test

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"vcqr/internal/accessctl"
	"vcqr/internal/hashx"
	"vcqr/internal/partition"
	"vcqr/internal/relation"
	"vcqr/internal/server"
	"vcqr/internal/store"
	"vcqr/internal/wire"
)

// openStore opens the durable node store for a test directory.
func openStore(t *testing.T, h *hashx.Hasher, dir string) *store.NodeStore {
	t.Helper()
	ns, _, err := store.OpenNode(dir, store.Options{Hasher: h, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

// A node restarted from disk must prove every recovered slice against
// the owner's public key, then serve streams the unmodified shard
// verifier accepts — with zero slices re-transferred.
func TestRecoverHostedServesVerifiedStream(t *testing.T) {
	h, sr := build(t, 48)
	set, err := partition.Split(sr, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	ns := openStore(t, h, dir)
	for i, sl := range set.Slices {
		if err := ns.LogInstall("Uniform", set.Spec, i, sl, partition.SliceDigest(h, sl)); err != nil {
			t.Fatal(err)
		}
	}
	ns.Close()

	ns2 := openStore(t, h, dir)
	defer ns2.Close()
	role := accessctl.Role{Name: "all"}
	s := server.New(server.Config{
		Hasher: h, Pub: signKey(t).Public(),
		Policy: accessctl.NewPolicy(role), Store: ns2,
	})
	defer s.Close()
	rep, err := s.RecoverHosted()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Uniform/0", "Uniform/1"}; !reflect.DeepEqual(rep.Published, want) {
		t.Fatalf("published %v, want %v (refused %v)", rep.Published, want, rep.Refused)
	}
	st := s.Stats()
	if st.Installs != 0 {
		t.Fatalf("recovery counted %d installs; the zero-re-transfer signal must stay 0", st.Installs)
	}
	if st.Store == nil || st.Store.ColdStarts != 1 {
		t.Fatalf("store stats missing from the node's view: %+v", st.Store)
	}

	// The recovered node answers the shard wire protocol with exactly
	// the installed bytes: digest-identical slices, correct inventory.
	// (The coordinator-level recovery matrix drives full verified
	// streams over a recovered node; here the node's own surface is the
	// subject.)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &wire.Client{BaseURL: ts.URL}
	for shard, sl := range set.Slices {
		dg, err := cl.ShardDigest(wire.ShardRef{Relation: "Uniform", Shard: shard})
		if err != nil {
			t.Fatalf("shard %d digest: %v", shard, err)
		}
		if !dg.Digest.Equal(partition.SliceDigest(h, sl)) {
			t.Fatalf("shard %d serves different bytes than were installed", shard)
		}
	}
	inv := s.HostedInventory()
	if info := inv.Relations["Uniform"]; len(info.Shards) != 2 {
		t.Fatalf("inventory lists %d shards, want 2", len(info.Shards))
	}
}

// A corrupted slice on disk fails the condensed-signature self-check
// and is refused — durably, so the next restart does not resurrect it.
// The untouched sibling slice still serves.
func TestRecoverHostedRefusesTamperedSlice(t *testing.T) {
	h, sr := build(t, 48)
	set, err := partition.Split(sr, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Tamper one owned payload without re-signing: the digest in the
	// install record matches the tampered bytes (a consistent-looking
	// disk), but no signature covers them.
	evil := set.Slices[0].Clone()
	evil.Recs[3].Tuple.Attrs[0] = relation.BytesVal([]byte("tampered-on-disk"))
	ns := openStore(t, h, dir)
	if err := ns.LogInstall("Uniform", set.Spec, 0, evil, partition.SliceDigest(h, evil)); err != nil {
		t.Fatal(err)
	}
	if err := ns.LogInstall("Uniform", set.Spec, 1, set.Slices[1], partition.SliceDigest(h, set.Slices[1])); err != nil {
		t.Fatal(err)
	}
	ns.Close()

	ns2 := openStore(t, h, dir)
	role := accessctl.Role{Name: "all"}
	s := server.New(server.Config{
		Hasher: h, Pub: signKey(t).Public(),
		Policy: accessctl.NewPolicy(role), Store: ns2,
	})
	rep, err := s.RecoverHosted()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Refused) != 1 || len(rep.Published) != 1 || rep.Published[0] != "Uniform/1" {
		t.Fatalf("refusal off: published %v refused %v", rep.Published, rep.Refused)
	}
	inv := s.HostedInventory()
	if info := inv.Relations["Uniform"]; len(info.Shards) != 1 || info.Shards[0].Shard != 1 {
		t.Fatalf("tampered slice served anyway: %+v", info.Shards)
	}
	s.Close()
	ns2.Close()

	// The refusal was logged: a third cold start never sees shard 0.
	ns3 := openStore(t, h, dir)
	defer ns3.Close()
	rec := ns3.Recovered()["Uniform"]
	if len(rec.Shards) != 1 || rec.Shards[0].Shard != 1 {
		t.Fatalf("refused slice resurrected: %+v", rec.Shards)
	}
}

// The install and remove wire paths append before acknowledging: what a
// coordinator installed (and did not remove) is exactly what a restart
// recovers.
func TestServerDurableInstallRemove(t *testing.T) {
	h, sr := build(t, 48)
	set, err := partition.Split(sr, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ns := openStore(t, h, dir)
	role := accessctl.Role{Name: "all"}
	s := server.New(server.Config{
		Hasher: h, Pub: signKey(t).Public(),
		Policy: accessctl.NewPolicy(role), Store: ns,
	})
	for i, sl := range set.Slices {
		man := wire.ShardManifest{
			Spec: set.Spec, Shard: i, Params: sr.Params, Schema: sr.Schema,
			Records: len(sl.Recs),
		}
		if err := s.InstallShard(man, sl.Clone()); err != nil {
			t.Fatalf("install shard %d: %v", i, err)
		}
	}
	if err := s.RemoveShard(wire.ShardRef{Relation: "Uniform", Shard: 2}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Installs != 3 {
		t.Fatalf("installs counter %d, want 3", st.Installs)
	}
	s.Close()
	ns.Close()

	ns2 := openStore(t, h, dir)
	defer ns2.Close()
	s2 := server.New(server.Config{
		Hasher: h, Pub: signKey(t).Public(),
		Policy: accessctl.NewPolicy(role), Store: ns2,
	})
	defer s2.Close()
	rep, err := s2.RecoverHosted()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Uniform/0", "Uniform/1"}; !reflect.DeepEqual(rep.Published, want) {
		t.Fatalf("recovered %v, want %v (shard 2 was removed before the restart)", rep.Published, want)
	}
}
